/// Ablation benches for the design choices called out in DESIGN.md §4:
///   1. DPsize with vs. without the s1 = s2 successor-list optimization
///      (Section 2.1 of the paper).
///   2. DPsub's connectivity test: plan-table presence vs. bitset-BFS.
///   3. DPccp on pre-BFS-numbered vs. adversarially shuffled input (cost
///      of the internal renumbering + relabeling).
///   4. Plan-table backend: dense array vs. hash map, on the access
///      pattern DPsub generates.

#include <cstdio>
#include <string>

#include "common.h"
#include "cost/cost_model.h"
#include "graph/generators.h"
#include "plan/plan_table.h"
#include "util/random.h"
#include "util/stopwatch.h"

namespace joinopt {
namespace {

/// MeasureSeconds + the machine-readable JSON line (JOINOPT_BENCH_JSON),
/// keyed by the registry name so ablation variants stay distinguishable.
double MeasureCell(const std::string& algorithm, const char* shape, int n,
                   const QueryGraph& graph, const CostModel& cost_model) {
  OptimizerStats stats;
  const double seconds =
      bench::MeasureSeconds(bench::Orderer(algorithm), graph, cost_model,
                            &stats);
  bench::EmitBenchJson(algorithm, shape, n, stats, seconds);
  return seconds;
}

void AblateDPsizeEqualSizeOptimization() {
  std::printf("\n[1] DPsize equal-size optimization (clique queries)\n");
  std::printf("%4s  %14s  %14s  %8s\n", "n", "optimized_s", "unoptimized_s",
              "speedup");
  const CoutCostModel cost_model;
  for (const int n : {8, 10, 12}) {
    Result<QueryGraph> graph = MakeCliqueQuery(n);
    JOINOPT_CHECK(graph.ok());
    const double with = MeasureCell("DPsize", "clique", n, *graph, cost_model);
    const double without =
        MeasureCell("DPsizeBasic", "clique", n, *graph, cost_model);
    std::printf("%4d  %14s  %14s  %7.2fx\n", n,
                bench::FormatSeconds(with).c_str(),
                bench::FormatSeconds(without).c_str(), without / with);
  }
}

void AblateDPsubConnectivityTest() {
  std::printf("\n[2] DPsub connectivity test (chain queries)\n");
  std::printf("%4s  %14s  %14s  %8s\n", "n", "table_s", "bfs_s", "speedup");
  const CoutCostModel cost_model;
  for (const int n : {12, 15, 18}) {
    Result<QueryGraph> graph = MakeChainQuery(n);
    JOINOPT_CHECK(graph.ok());
    const double with_table =
        MeasureCell("DPsub", "chain", n, *graph, cost_model);
    const double with_bfs =
        MeasureCell("DPsubBFS", "chain", n, *graph, cost_model);
    std::printf("%4d  %14s  %14s  %7.2fx\n", n,
                bench::FormatSeconds(with_table).c_str(),
                bench::FormatSeconds(with_bfs).c_str(), with_bfs / with_table);
  }
}

void AblateDPccpRenumbering() {
  std::printf("\n[3] DPccp: BFS-prenumbered vs shuffled input (chains)\n");
  std::printf("%4s  %14s  %14s  %8s\n", "n", "prenumbered_s", "shuffled_s",
              "overhead");
  const CoutCostModel cost_model;
  Random rng(7);
  for (const int n : {16, 24, 32}) {
    Result<QueryGraph> graph = MakeChainQuery(n);
    JOINOPT_CHECK(graph.ok());
    const QueryGraph shuffled = ShuffleLabels(*graph, rng);
    const double pre = MeasureCell("DPccp", "chain", n, *graph, cost_model);
    const double shuf =
        MeasureCell("DPccp", "chain_shuffled", n, shuffled, cost_model);
    std::printf("%4d  %14s  %14s  %7.2fx\n", n,
                bench::FormatSeconds(pre).c_str(),
                bench::FormatSeconds(shuf).c_str(), shuf / pre);
  }
}

void AblatePlanTableBackend() {
  std::printf("\n[4] Plan table backend (DPsub access pattern, n=16)\n");
  const int n = 16;
  const uint64_t limit = (uint64_t{1} << n) - 1;
  for (const bool dense : {true, false}) {
    const Stopwatch stopwatch;
    PlanTable table(n, dense ? 20 : 0);
    uint64_t hits = 0;
    for (uint64_t mask = 1; mask <= limit; ++mask) {
      table.Register(NodeSet::FromMask(mask), static_cast<double>(mask), 1.0,
                     kInvalidPlanRef, kInvalidPlanRef,
                     JoinOperator::kUnspecified);
      // Probe a few subsets like DPsub's inner loop would.
      hits += table.Find(NodeSet::FromMask(mask & (mask - 1))) != kInvalidPlanRef;
      hits += table.Find(NodeSet::FromMask(mask >> 1)) != kInvalidPlanRef;
    }
    std::printf("  %-6s  %10s  (probe hits %llu)\n", dense ? "dense" : "sparse",
                bench::FormatSeconds(stopwatch.ElapsedSeconds()).c_str(),
                static_cast<unsigned long long>(hits));
  }
}

}  // namespace
}  // namespace joinopt

int main() {
  joinopt::bench::RequireValidEnv();
  std::printf("Ablation benches (DESIGN.md §4)\n");
  joinopt::AblateDPsizeEqualSizeOptimization();
  joinopt::AblateDPsubConnectivityTest();
  joinopt::AblateDPccpRenumbering();
  joinopt::AblatePlanTableBackend();
  return 0;
}
