#include "common.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>

#include "analytics/counts.h"
#include "cost/cost_model.h"
#include "util/env.h"
#include "util/stopwatch.h"

namespace joinopt {
namespace bench {

uint64_t InnerCounterBudget() {
  static const uint64_t budget = [] {
    // Default admits every Figure 3/12 cell except DPsize at star-20
    // (6e10) and clique-20 (3e11) — the cells that took 4791 s and
    // 21294 s on the paper's 2006 testbed. The override parses strictly
    // (a typo'd value used to be swallowed by atof and silently fall
    // back here); RequireValidEnv turns the error into exit 3 at
    // startup, so by this point the value is known well-formed.
    constexpr double kDefault = 4e9;
    const Result<double> parsed =
        EnvDouble("JOINOPT_MAX_INNER", kDefault, /*require_positive=*/true);
    if (!parsed.ok()) {
      std::fprintf(stderr, "%s\n", parsed.status().ToString().c_str());
      std::exit(3);
    }
    return static_cast<uint64_t>(*parsed);
  }();
  return budget;
}

void RequireValidEnv() {
  const Status limits = ValidateLimitEnv();
  if (!limits.ok()) {
    std::fprintf(stderr, "%s\n", limits.ToString().c_str());
    std::exit(3);
  }
}

const JoinOrderer& Orderer(const std::string& name) {
  const JoinOrderer* orderer = OptimizerRegistry::Get(name);
  if (orderer == nullptr) {
    std::fprintf(stderr, "benchmark requested unregistered orderer: %s\n",
                 name.c_str());
    std::abort();
  }
  return *orderer;
}

double MeasureSeconds(const JoinOrderer& orderer, const QueryGraph& graph,
                      const CostModel& cost_model, OptimizerStats* last_stats,
                      const OptimizeOptions& options) {
  constexpr double kTargetSeconds = 0.2;
  const Stopwatch total;
  int runs = 0;
  do {
    const Result<OptimizationResult> result =
        orderer.Optimize(graph, cost_model, options);
    if (!result.ok()) {
      std::fprintf(stderr, "benchmark optimizer %s failed: %s\n",
                   std::string(orderer.name()).c_str(),
                   result.status().ToString().c_str());
      std::abort();
    }
    if (last_stats != nullptr) {
      *last_stats = result->stats;
    }
    ++runs;
  } while (total.ElapsedSeconds() < kTargetSeconds);
  return total.ElapsedSeconds() / runs;
}

std::optional<uint64_t> PredictedInner(const std::string& algorithm,
                                       QueryShape shape, int n) {
  if (algorithm == "DPsize") {
    return PredictedInnerCounterDPsize(shape, n);
  }
  if (algorithm == "DPsub") {
    return PredictedInnerCounterDPsub(shape, n);
  }
  if (algorithm == "DPccp") {
    return PredictedInnerCounterDPccp(shape, n);
  }
  return std::nullopt;
}

void EmitBenchJsonLine(const std::string& line) {
  const char* sink = std::getenv("JOINOPT_BENCH_JSON");
  if (sink == nullptr || sink[0] == '\0') {
    return;
  }
  std::FILE* out = stdout;
  const bool to_stdout = std::string(sink) == "-";
  if (!to_stdout) {
    out = std::fopen(sink, "a");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot append to JOINOPT_BENCH_JSON sink %s\n",
                   sink);
      return;
    }
  }
  std::fprintf(out, "%s\n", line.c_str());
  if (to_stdout) {
    std::fflush(out);
  } else {
    std::fclose(out);
  }
}

void EmitBenchJson(const std::string& algorithm, const std::string& shape,
                   int n, const OptimizerStats& stats, double seconds) {
  char buffer[512];
  std::snprintf(
      buffer, sizeof(buffer),
      "{\"algorithm\":\"%s\",\"shape\":\"%s\",\"n\":%d,"
      "\"inner_counter\":%" PRIu64 ",\"csg_cmp_pair_counter\":%" PRIu64
      ",\"ono_lohman_counter\":%" PRIu64 ",\"create_join_tree_calls\":%" PRIu64
      ",\"plans_stored\":%" PRIu64 ",\"elapsed_s\":%.9g"
      ",\"best_effort\":%s,\"memo_coverage\":%.9g}",
      algorithm.c_str(), shape.c_str(), n, stats.inner_counter,
      stats.csg_cmp_pair_counter, stats.ono_lohman_counter,
      stats.create_join_tree_calls, stats.plans_stored, seconds,
      stats.best_effort ? "true" : "false", stats.memo_coverage);
  EmitBenchJsonLine(buffer);
}

std::string FormatSeconds(double seconds) {
  char buffer[64];
  if (seconds < 1e-3) {
    std::snprintf(buffer, sizeof(buffer), "%.2g", seconds);
  } else if (seconds < 1.0) {
    std::snprintf(buffer, sizeof(buffer), "%.2g", seconds);
  } else if (seconds < 100.0) {
    std::snprintf(buffer, sizeof(buffer), "%.3g", seconds);
  } else {
    std::snprintf(buffer, sizeof(buffer), "%.0f", seconds);
  }
  return buffer;
}

void RunRelativePerformanceFigure(const std::string& figure, QueryShape shape,
                                  int max_n) {
  const CoutCostModel cost_model;
  const JoinOrderer& dpsize = Orderer("DPsize");
  const JoinOrderer& dpsub = Orderer("DPsub");
  const JoinOrderer& dpccp = Orderer("DPccp");
  const uint64_t budget = InnerCounterBudget();
  const std::string shape_name = std::string(QueryShapeName(shape));

  std::printf("%s: runtime relative to DPccp, %s queries (budget %.2g)\n",
              figure.c_str(), shape_name.c_str(),
              static_cast<double>(budget));
  std::printf("%4s  %12s  %12s  %10s  %14s\n", "n", "DPsize/DPccp",
              "DPsub/DPccp", "DPccp", "DPccp_time_s");

  for (int n = 2; n <= max_n; ++n) {
    Result<QueryGraph> graph = MakeShapeQuery(shape, n);
    if (!graph.ok()) {
      std::fprintf(stderr, "graph generation failed: %s\n",
                   graph.status().ToString().c_str());
      std::abort();
    }
    OptimizerStats stats;
    const double ccp_seconds =
        MeasureSeconds(dpccp, *graph, cost_model, &stats);
    EmitBenchJson("DPccp", shape_name, n, stats, ccp_seconds);

    std::string size_cell = "skipped";
    if (*PredictedInner("DPsize", shape, n) <= budget) {
      const double size_seconds =
          MeasureSeconds(dpsize, *graph, cost_model, &stats);
      EmitBenchJson("DPsize", shape_name, n, stats, size_seconds);
      char buffer[32];
      std::snprintf(buffer, sizeof(buffer), "%.3g",
                    size_seconds / ccp_seconds);
      size_cell = buffer;
    }
    std::string sub_cell = "skipped";
    if (*PredictedInner("DPsub", shape, n) <= budget) {
      const double sub_seconds =
          MeasureSeconds(dpsub, *graph, cost_model, &stats);
      EmitBenchJson("DPsub", shape_name, n, stats, sub_seconds);
      char buffer[32];
      std::snprintf(buffer, sizeof(buffer), "%.3g", sub_seconds / ccp_seconds);
      sub_cell = buffer;
    }
    std::printf("%4d  %12s  %12s  %10s  %14s\n", n, size_cell.c_str(),
                sub_cell.c_str(), "1", FormatSeconds(ccp_seconds).c_str());
    std::fflush(stdout);
  }
}

}  // namespace bench
}  // namespace joinopt
