#ifndef JOINOPT_BENCH_COMMON_H_
#define JOINOPT_BENCH_COMMON_H_

#include <cstdint>
#include <optional>
#include <string>

#include "core/optimizer.h"
#include "core/registry.h"
#include "graph/generators.h"

namespace joinopt {
namespace bench {

/// Work budget for a single benchmark cell, in predicted InnerCounter
/// iterations. Cells whose closed-form prediction exceeds the budget are
/// skipped and reported as such (the paper's own star-20/clique-20 DPsize
/// cells ran for hours on 2006 hardware). Override with the environment
/// variable JOINOPT_MAX_INNER (e.g. JOINOPT_MAX_INNER=1e12 to run
/// everything). Call RequireValidEnv() at startup first: a malformed
/// override is a startup error, never a silent fallback.
uint64_t InnerCounterBudget();

/// Validates the JOINOPT limit knobs (JOINOPT_MAX_INNER, and the
/// ValidateLimitEnv set) at benchmark startup; prints the typed error and
/// exits with code 3 on the first malformed variable. Every bench main
/// calls this before doing any work, mirroring the JOINOPT_FAULT_*
/// startup contract of the harness binaries.
void RequireValidEnv();

/// Looks up `name` in the OptimizerRegistry; aborts the process with a
/// diagnostic when it is not registered. Benchmarks only request names
/// they know exist, so a miss is a programming error.
const JoinOrderer& Orderer(const std::string& name);

/// Measures one optimizer on one graph: runs Optimize repeatedly until
/// ~0.2 s of cumulative runtime (at least once) and returns the mean
/// wall-clock seconds per optimization. Aborts the process on optimizer
/// failure — benchmark inputs are all valid by construction. When
/// `last_stats` is non-null, the final run's stats are stored there.
/// `options` configures each run (the thread-scaling cells pass
/// OptimizeOptions::threads).
double MeasureSeconds(const JoinOrderer& orderer, const QueryGraph& graph,
                      const CostModel& cost_model,
                      OptimizerStats* last_stats = nullptr,
                      const OptimizeOptions& options = OptimizeOptions());

/// Predicted InnerCounter for gating, per algorithm name ("DPsize",
/// "DPsub", "DPccp"). Other names get no prediction (never skipped).
std::optional<uint64_t> PredictedInner(const std::string& algorithm,
                                       QueryShape shape, int n);

/// Emits one machine-readable JSON line describing a measured benchmark
/// cell — {"algorithm", "shape", "n", counters, "elapsed_s",
/// "best_effort", "memo_coverage"} — to the
/// sink named by the environment variable JOINOPT_BENCH_JSON: "-" means
/// stdout, any other value is a file path opened in append mode. No-op
/// when the variable is unset, so human-readable output stays clean by
/// default.
void EmitBenchJson(const std::string& algorithm, const std::string& shape,
                   int n, const OptimizerStats& stats, double seconds);

/// Lower-level sink for benches whose cells are not (algorithm, shape, n)
/// rows: appends `line` (a complete one-line JSON object, no trailing
/// newline) verbatim to the JOINOPT_BENCH_JSON sink under the same
/// resolution rules as EmitBenchJson. No-op when the variable is unset.
void EmitBenchJsonLine(const std::string& line);

/// Runs the relative-performance experiment behind Figures 8-11: for each
/// n in [2, max_n], times DPsize, DPsub, and DPccp on `shape` and prints
/// one row with the runtimes normalized to DPccp ( = 1.0), skipping cells
/// over budget. `figure` is the caption label. Each measured cell is also
/// reported through EmitBenchJson.
void RunRelativePerformanceFigure(const std::string& figure, QueryShape shape,
                                  int max_n);

/// Formats seconds the way Figure 12 does ("7.7e-6", "0.048", "4791").
std::string FormatSeconds(double seconds);

}  // namespace bench
}  // namespace joinopt

#endif  // JOINOPT_BENCH_COMMON_H_
