/// Extension bench: estimate quality and its effect on plan choice.
/// For random queries, materialize a synthetic database, MEASURE the
/// true per-edge selectivities and row counts from the data, and compare
///   (a) the annotated-stats optimum vs the measured-stats optimum
///       (both costed under measured stats): the plan-regression factor
///       caused by imperfect statistics, and
///   (b) the estimated final cardinality vs the executed row count.
/// DP makes the *search* exact; this bench shows the remaining error
/// source is the statistics — the classic division of labor the paper
/// assumes.

#include <cmath>
#include <cstdio>

#include "common.h"
#include "cost/cost_model.h"
#include "cost/statistics.h"
#include "exec/executor.h"
#include "graph/generators.h"
#include "plan/plan_validator.h"

namespace joinopt {
namespace {

/// Cost of `tree`'s join structure re-priced under `graph`'s statistics.
double RecostPlan(const JoinTree& tree, const QueryGraph& graph,
                  const CostModel& cost_model) {
  const CardinalityEstimator estimator(graph);
  std::vector<double> cards(tree.nodes().size());
  std::vector<double> costs(tree.nodes().size());
  for (size_t i = 0; i < tree.nodes().size(); ++i) {
    const JoinTreeNode& node = tree.nodes()[i];
    if (node.IsLeaf()) {
      cards[i] = graph.cardinality(node.relation);
      costs[i] = 0.0;
      continue;
    }
    const NodeSet left_set = tree.nodes()[node.left].relations;
    const NodeSet right_set = tree.nodes()[node.right].relations;
    cards[i] = estimator.JoinCardinality(left_set, cards[node.left],
                                         right_set, cards[node.right]);
    costs[i] = costs[node.left] + costs[node.right] +
               cost_model.JoinCost(cards[node.left], cards[node.right],
                                   cards[i]);
  }
  return costs.back();
}

}  // namespace
}  // namespace joinopt

int main() {
  joinopt::bench::RequireValidEnv();
  using namespace joinopt;  // NOLINT(build/namespaces)

  const CoutCostModel cost_model;
  const JoinOrderer& optimizer = bench::Orderer("DPccp");
  std::printf(
      "Estimate quality on random connected graphs (n = 8, 4 extra "
      "edges)\n%6s  %16s  %16s  %14s\n",
      "seed", "plan_regression", "card_q_error", "rows(actual)");

  double worst_regression = 1.0;
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    WorkloadConfig config;
    config.seed = seed;
    config.min_cardinality = 50;
    config.max_cardinality = 1500;
    config.min_selectivity = 0.005;
    config.max_selectivity = 0.2;
    Result<QueryGraph> annotated = MakeRandomConnectedQuery(8, 4, config);
    JOINOPT_CHECK(annotated.ok());
    DatabaseGenOptions gen_options;
    gen_options.seed = seed * 7 + 1;
    Result<Database> database = GenerateDatabase(*annotated, gen_options);
    JOINOPT_CHECK(database.ok());
    Result<QueryGraph> measured = MeasureStatistics(*annotated, *database);
    JOINOPT_CHECK(measured.ok());

    Result<OptimizationResult> by_annotation =
        optimizer.Optimize(*annotated, cost_model);
    Result<OptimizationResult> by_measurement =
        optimizer.Optimize(*measured, cost_model);
    JOINOPT_CHECK(by_annotation.ok() && by_measurement.ok());

    // Re-price the annotation-chosen plan under the true statistics.
    const double annotated_plan_true_cost =
        RecostPlan(by_annotation->plan, *measured, cost_model);
    const double regression =
        annotated_plan_true_cost / by_measurement->cost;
    worst_regression = std::max(worst_regression, regression);

    Result<Table> rows = ExecutePlan(by_measurement->plan, *database);
    JOINOPT_CHECK(rows.ok());
    const double actual = std::max<double>(
        1.0, static_cast<double>(rows->row_count()));
    const double q_error =
        std::max(by_measurement->cardinality / actual,
                 actual / std::max(1.0, by_measurement->cardinality));

    std::printf("%6llu  %16.4f  %16.4f  %14lld\n",
                static_cast<unsigned long long>(seed), regression, q_error,
                static_cast<long long>(rows->row_count()));
  }
  std::printf(
      "\nworst plan regression from annotated stats: %.4fx\n"
      "(1.0 = the annotated-stats plan was already optimal under the "
      "true stats)\n",
      worst_regression);
  return 0;
}
