/// Extension bench: plan QUALITY of the non-exact strategies (left-deep
/// DP, GOO, IDP1 at several block sizes) relative to the DPccp optimum,
/// plus their enumeration effort — quantifying what the exactness of the
/// paper's algorithms buys. Random connected graphs, seed-averaged.

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include <memory>

#include "common.h"
#include "core/idp.h"
#include "cost/cost_model.h"
#include "graph/generators.h"

int main() {
  joinopt::bench::RequireValidEnv();
  using namespace joinopt;  // NOLINT(build/namespaces)

  const CoutCostModel cost_model;
  // Block sizes beyond IDP1's registry default are registered on the fly —
  // the Register hook exists exactly for parameterized variants like this.
  OptimizerRegistry::Register("IDP1(k=2)", std::make_unique<IDP1>(2));
  OptimizerRegistry::Register("IDP1(k=4)", std::make_unique<IDP1>(4));
  OptimizerRegistry::Register("IDP1(k=8)", std::make_unique<IDP1>(8));
  const JoinOrderer& exact = bench::Orderer("DPccp");

  const struct {
    const JoinOrderer* orderer;
    const char* label;
  } contenders[] = {
      {&bench::Orderer("DPsizeLinear"), "left-deep"},
      {&bench::Orderer("GOO"), "GOO"},
      {&bench::Orderer("IDP1(k=2)"), "IDP1(k=2)"},
      {&bench::Orderer("IDP1(k=4)"), "IDP1(k=4)"},
      {&bench::Orderer("IDP1(k=8)"), "IDP1(k=8)"},
  };

  std::printf(
      "Plan quality vs DPccp optimum (geometric-mean cost ratio over 20\n"
      "random connected graphs, n = 12, 6 extra edges; 1.0 = optimal)\n\n");
  std::printf("%-12s  %14s  %18s\n", "strategy", "cost_ratio_gm",
              "mean_inner_counter");

  for (const auto& contender : contenders) {
    double log_ratio_sum = 0.0;
    uint64_t inner_total = 0;
    int instances = 0;
    for (uint64_t seed = 1; seed <= 20; ++seed) {
      WorkloadConfig config;
      config.seed = seed;
      Result<QueryGraph> graph = MakeRandomConnectedQuery(12, 6, config);
      JOINOPT_CHECK(graph.ok());
      Result<OptimizationResult> optimal = exact.Optimize(*graph, cost_model);
      Result<OptimizationResult> candidate =
          contender.orderer->Optimize(*graph, cost_model);
      JOINOPT_CHECK(optimal.ok() && candidate.ok());
      log_ratio_sum += std::log(candidate->cost / optimal->cost);
      inner_total += candidate->stats.inner_counter;
      ++instances;
    }
    std::printf("%-12s  %14.4f  %18" PRIu64 "\n", contender.label,
                std::exp(log_ratio_sum / instances), inner_total / instances);
  }
  std::printf(
      "\n(DPccp itself: ratio 1.0 by definition; its inner counter equals "
      "#ccp, the lower bound.)\n");
  return 0;
}
