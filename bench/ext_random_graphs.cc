/// Extension bench (beyond the paper's four families): DPccp's
/// adaptivity claim on graphs BETWEEN the extremes. Sweeps random
/// connected graphs from tree-sparse to clique-dense at fixed n and
/// reports each algorithm's InnerCounter and runtime vs. the #ccp lower
/// bound. The paper's thesis predicts DPccp == lower bound everywhere
/// while DPsize degrades with density and DPsub with sparsity.

#include <cinttypes>
#include <cstdio>
#include <string>

#include "analytics/brute_force.h"
#include "common.h"
#include "cost/cost_model.h"
#include "graph/generators.h"

int main() {
  joinopt::bench::RequireValidEnv();
  using namespace joinopt;  // NOLINT(build/namespaces)

  constexpr int kRelations = 14;
  const CoutCostModel cost_model;
  const JoinOrderer& dpsize = bench::Orderer("DPsize");
  const JoinOrderer& dpsub = bench::Orderer("DPsub");
  const JoinOrderer& dpccp = bench::Orderer("DPccp");

  std::printf(
      "Random connected graphs, n = %d, density sweep (seed-averaged x3)\n",
      kRelations);
  std::printf("%12s  %10s | %12s %12s %12s | %10s %10s %10s\n", "extra_edges",
              "#ccp", "I_DPsize", "I_DPsub", "I_DPccp", "t_size", "t_sub",
              "t_ccp");

  const int max_extra = kRelations * (kRelations - 1) / 2 - (kRelations - 1);
  for (const int extra :
       {0, 2, 5, 10, 20, 40, 60, max_extra}) {
    uint64_t ccp = 0, inner_size = 0, inner_sub = 0, inner_ccp = 0;
    double time_size = 0, time_sub = 0, time_ccp = 0;
    for (const uint64_t seed : {1u, 2u, 3u}) {
      WorkloadConfig config;
      config.seed = seed;
      Result<QueryGraph> graph =
          MakeRandomConnectedQuery(kRelations, extra, config);
      JOINOPT_CHECK(graph.ok());

      Result<OptimizationResult> size_result =
          dpsize.Optimize(*graph, cost_model);
      Result<OptimizationResult> sub_result =
          dpsub.Optimize(*graph, cost_model);
      Result<OptimizationResult> ccp_result =
          dpccp.Optimize(*graph, cost_model);
      JOINOPT_CHECK(size_result.ok() && sub_result.ok() && ccp_result.ok());
      ccp += ccp_result->stats.ono_lohman_counter;
      inner_size += size_result->stats.inner_counter;
      inner_sub += sub_result->stats.inner_counter;
      inner_ccp += ccp_result->stats.inner_counter;
      const std::string shape = "random+" + std::to_string(extra);
      OptimizerStats stats;
      double seconds = bench::MeasureSeconds(dpsize, *graph, cost_model,
                                             &stats);
      bench::EmitBenchJson("DPsize", shape, kRelations, stats, seconds);
      time_size += seconds;
      seconds = bench::MeasureSeconds(dpsub, *graph, cost_model, &stats);
      bench::EmitBenchJson("DPsub", shape, kRelations, stats, seconds);
      time_sub += seconds;
      seconds = bench::MeasureSeconds(dpccp, *graph, cost_model, &stats);
      bench::EmitBenchJson("DPccp", shape, kRelations, stats, seconds);
      time_ccp += seconds;
    }
    std::printf("%12d  %10" PRIu64 " | %12" PRIu64 " %12" PRIu64 " %12" PRIu64
                " | %10s %10s %10s\n",
                extra, ccp / 3, inner_size / 3, inner_sub / 3, inner_ccp / 3,
                bench::FormatSeconds(time_size / 3).c_str(),
                bench::FormatSeconds(time_sub / 3).c_str(),
                bench::FormatSeconds(time_ccp / 3).c_str());
    std::fflush(stdout);
  }
  return 0;
}
