/// Reproduces Figure 10: runtime of DPsize/DPsub relative to DPccp on
/// star queries. Expected shape: both existing algorithms blow up —
/// DPsize by orders of magnitude (its per-size pair lists explode),
/// DPsub by a smaller but still exponential factor. DPccp's advantage
/// here is the paper's headline result (stars are the data-warehouse
/// case). DPsize cells beyond the work budget are skipped; raise
/// JOINOPT_MAX_INNER to run them.

#include "common.h"

int main() {
  joinopt::bench::RequireValidEnv();
  joinopt::bench::RunRelativePerformanceFigure(
      "Figure 10", joinopt::QueryShape::kStar, /*max_n=*/20);
  return 0;
}
