/// Reproduces Figure 11: runtime of DPsize/DPsub relative to DPccp on
/// clique queries. Expected shape: DPsub within a small constant of
/// DPccp (its enumeration is perfect on dense graphs; DPccp pays up to
/// ~30% enumeration overhead and can even be slightly slower), DPsize
/// orders of magnitude worse.

#include "common.h"

int main() {
  joinopt::bench::RequireValidEnv();
  joinopt::bench::RunRelativePerformanceFigure(
      "Figure 11", joinopt::QueryShape::kClique, /*max_n=*/18);
  return 0;
}
