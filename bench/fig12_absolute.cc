/// Reproduces Figure 12: sample absolute running times (seconds) of
/// DPsize, DPsub, and DPccp for chain, cycle, star, and clique queries at
/// n in {5, 10, 15, 20}.
///
/// Absolute numbers will differ from the paper's 2006 testbed; the shape
/// to verify is the ordering within each row and the growth down each
/// column (e.g. star-20: DPsize >> DPsub >> DPccp; the paper reports
/// 4791 s / 42.7 s / 1.00 s). Cells whose predicted InnerCounter exceeds
/// JOINOPT_MAX_INNER are skipped — the paper's star-20 and clique-20
/// DPsize cells are ~6e10 and ~3e11 iterations; set
/// JOINOPT_MAX_INNER=1e12 and expect minutes if you want them.

#include <cstdio>
#include <string>

#include "common.h"
#include "cost/cost_model.h"
#include "graph/generators.h"

namespace joinopt {
namespace {

void PrintRow(const QueryGraph& graph, QueryShape shape, int n) {
  const CoutCostModel cost_model;
  const uint64_t budget = bench::InnerCounterBudget();

  const auto cell = [&](const std::string& algorithm) -> std::string {
    if (*bench::PredictedInner(algorithm, shape, n) > budget) {
      return "skipped";
    }
    OptimizerStats stats;
    const double seconds = bench::MeasureSeconds(bench::Orderer(algorithm),
                                                 graph, cost_model, &stats);
    bench::EmitBenchJson(algorithm, std::string(QueryShapeName(shape)), n,
                         stats, seconds);
    return bench::FormatSeconds(seconds);
  };
  std::printf("%4d  %12s  %12s  %12s\n", n, cell("DPsize").c_str(),
              cell("DPsub").c_str(), cell("DPccp").c_str());
  std::fflush(stdout);
}

}  // namespace
}  // namespace joinopt

int main() {
  joinopt::bench::RequireValidEnv();
  using joinopt::MakeShapeQuery;
  using joinopt::QueryShape;
  std::printf("Figure 12: sample absolute running times (s)\n");
  for (const QueryShape shape : {QueryShape::kChain, QueryShape::kCycle,
                                 QueryShape::kStar, QueryShape::kClique}) {
    std::printf("\n%s queries\n%4s  %12s  %12s  %12s\n",
                std::string(joinopt::QueryShapeName(shape)).c_str(), "n",
                "DPsize", "DPsub", "DPccp");
    for (const int n : {5, 10, 15, 20}) {
      auto graph = MakeShapeQuery(shape, n);
      JOINOPT_CHECK(graph.ok());
      joinopt::PrintRow(*graph, shape, n);
    }
  }
  return 0;
}
