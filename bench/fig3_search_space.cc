/// Reproduces Figure 3 of Moerkotte & Neumann (VLDB 2006): the size of
/// the search space for chain, cycle, star, and clique queries — #ccp and
/// the InnerCounter of DPsub and DPsize for n in {2, 5, 10, 15, 20}.
///
/// Two sources are printed per cell: the closed-form prediction (always)
/// and the counter measured by actually running the algorithm (when the
/// predicted work fits the JOINOPT_MAX_INNER budget). A reproduction
/// succeeds when measured == predicted == the paper's table.

#include <cinttypes>
#include <cstdio>
#include <string>

#include "analytics/counts.h"
#include "common.h"
#include "cost/cost_model.h"
#include "graph/generators.h"

namespace joinopt {
namespace {

constexpr int kSizes[] = {2, 5, 10, 15, 20};

std::string MeasuredOrDash(const std::string& algorithm, QueryShape shape,
                           int n) {
  const uint64_t predicted =
      *bench::PredictedInner(algorithm, shape, n);
  if (predicted > bench::InnerCounterBudget()) {
    return "-";
  }
  Result<QueryGraph> graph = MakeShapeQuery(shape, n);
  JOINOPT_CHECK(graph.ok());
  const CoutCostModel cost_model;
  Result<OptimizationResult> result =
      bench::Orderer(algorithm).Optimize(*graph, cost_model);
  JOINOPT_CHECK(result.ok());
  bench::EmitBenchJson(algorithm, std::string(QueryShapeName(shape)), n,
                       result->stats, result->stats.elapsed_seconds);
  return std::to_string(result->stats.inner_counter);
}

void PrintShape(QueryShape shape) {
  std::printf("\n%s queries\n", std::string(QueryShapeName(shape)).c_str());
  std::printf("%4s  %14s  %14s  %14s | %14s  %14s  %14s\n", "n", "#ccp",
              "DPsub", "DPsize", "meas #ccp", "meas DPsub", "meas DPsize");
  for (const int n : kSizes) {
    std::printf(
        "%4d  %14" PRIu64 "  %14" PRIu64 "  %14" PRIu64
        " | %14s  %14s  %14s\n",
        n, CcpCountUnordered(shape, n), PredictedInnerCounterDPsub(shape, n),
        PredictedInnerCounterDPsize(shape, n),
        MeasuredOrDash("DPccp", shape, n).c_str(),
        MeasuredOrDash("DPsub", shape, n).c_str(),
        MeasuredOrDash("DPsize", shape, n).c_str());
    std::fflush(stdout);
  }
}

}  // namespace
}  // namespace joinopt

int main() {
  joinopt::bench::RequireValidEnv();
  std::printf(
      "Figure 3: size of the search space for different graph structures\n"
      "(#ccp is the Ono-Lohman count = unordered csg-cmp-pairs; measured\n"
      " columns rerun the real algorithms; '-' = over JOINOPT_MAX_INNER "
      "budget)\n");
  for (const joinopt::QueryShape shape :
       {joinopt::QueryShape::kChain, joinopt::QueryShape::kCycle,
        joinopt::QueryShape::kStar, joinopt::QueryShape::kClique}) {
    joinopt::PrintShape(shape);
  }
  return 0;
}
