/// Reproduces Figure 8: runtime of DPsize/DPsub relative to DPccp on
/// chain queries. Expected shape: DPsize tracks DPccp closely (within a
/// small constant), DPsub degrades exponentially.

#include "common.h"

int main() {
  joinopt::bench::RequireValidEnv();
  joinopt::bench::RunRelativePerformanceFigure(
      "Figure 8", joinopt::QueryShape::kChain, /*max_n=*/20);
  return 0;
}
