/// Reproduces Figure 9: runtime of DPsize/DPsub relative to DPccp on
/// cycle queries. Expected shape: like chains — DPsize competitive,
/// DPsub exponentially worse.

#include "common.h"

int main() {
  joinopt::bench::RequireValidEnv();
  joinopt::bench::RunRelativePerformanceFigure(
      "Figure 9", joinopt::QueryShape::kCycle, /*max_n=*/20);
  return 0;
}
