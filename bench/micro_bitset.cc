/// Microbenchmarks of the bitset substrate: NodeSet algebra, element
/// iteration, and the Vance-Maier subset enumeration that DPsub's inner
/// loop and EnumerateCsgRec are built on.

#include <benchmark/benchmark.h>

#include "bitset/node_set.h"
#include "bitset/subset_iterator.h"

namespace joinopt {
namespace {

void BM_NodeSetUnionIntersect(benchmark::State& state) {
  NodeSet a = NodeSet::Of({0, 3, 7, 12, 31});
  NodeSet b = NodeSet::Of({1, 3, 8, 12, 63});
  for (auto _ : state) {
    benchmark::DoNotOptimize(a | b);
    benchmark::DoNotOptimize(a & b);
    benchmark::DoNotOptimize(a - b);
  }
}
BENCHMARK(BM_NodeSetUnionIntersect);

void BM_NodeSetIterate(benchmark::State& state) {
  const int bits = static_cast<int>(state.range(0));
  NodeSet s;
  for (int i = 0; i < bits; ++i) {
    s.Add(i * (63 / (bits > 1 ? bits - 1 : 1)));
  }
  for (auto _ : state) {
    int sum = 0;
    for (int v : s) {
      sum += v;
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * bits);
}
BENCHMARK(BM_NodeSetIterate)->Arg(4)->Arg(16)->Arg(64);

void BM_SubsetEnumeration(benchmark::State& state) {
  const int bits = static_cast<int>(state.range(0));
  const NodeSet superset = NodeSet::Prefix(bits);
  for (auto _ : state) {
    uint64_t count = 0;
    for (SubsetIterator it(superset); !it.Done(); it.Next()) {
      ++count;
    }
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * ((1 << bits) - 1));
}
BENCHMARK(BM_SubsetEnumeration)->Arg(8)->Arg(12)->Arg(16)->Arg(20);

void BM_ProperSubsetEnumeration(benchmark::State& state) {
  const int bits = static_cast<int>(state.range(0));
  const NodeSet superset = NodeSet::Prefix(bits);
  for (auto _ : state) {
    uint64_t count = 0;
    for (ProperSubsetIterator it(superset); !it.Done(); it.Next()) {
      ++count;
    }
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * ((1 << bits) - 2));
}
BENCHMARK(BM_ProperSubsetEnumeration)->Arg(8)->Arg(16);

}  // namespace
}  // namespace joinopt
