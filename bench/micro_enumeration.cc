/// Microbenchmarks of the Section 3 enumeration machinery: connected-
/// subset enumeration (EnumerateCsg) and csg-cmp-pair enumeration
/// (EnumerateCsgCmpPairs), per query-graph family. The paper's constant-
/// overhead-per-pair requirement (Section 3.1) shows up here as flat
/// ns/pair across shapes and sizes.

#include <benchmark/benchmark.h>

#include "analytics/counts.h"
#include "enumerate/cmp.h"
#include "enumerate/csg.h"
#include "graph/generators.h"

namespace joinopt {
namespace {

QueryShape ShapeFromIndex(int64_t index) {
  switch (index) {
    case 0:
      return QueryShape::kChain;
    case 1:
      return QueryShape::kCycle;
    case 2:
      return QueryShape::kStar;
    default:
      return QueryShape::kClique;
  }
}

void BM_EnumerateCsg(benchmark::State& state) {
  const QueryShape shape = ShapeFromIndex(state.range(0));
  const int n = static_cast<int>(state.range(1));
  Result<QueryGraph> graph = MakeShapeQuery(shape, n);
  JOINOPT_CHECK(graph.ok());
  uint64_t emitted = 0;
  for (auto _ : state) {
    emitted = 0;
    EnumerateCsg(*graph, [&emitted](NodeSet) { ++emitted; });
    benchmark::DoNotOptimize(emitted);
  }
  state.SetItemsProcessed(state.iterations() * emitted);
  state.SetLabel(std::string(QueryShapeName(shape)) + " #csg=" +
                 std::to_string(emitted));
}
BENCHMARK(BM_EnumerateCsg)
    ->Args({0, 16})
    ->Args({1, 16})
    ->Args({2, 16})
    ->Args({3, 16});

void BM_EnumerateCsgCmpPairs(benchmark::State& state) {
  const QueryShape shape = ShapeFromIndex(state.range(0));
  const int n = static_cast<int>(state.range(1));
  Result<QueryGraph> graph = MakeShapeQuery(shape, n);
  JOINOPT_CHECK(graph.ok());
  uint64_t pairs = 0;
  for (auto _ : state) {
    pairs = 0;
    EnumerateCsgCmpPairs(*graph, [&pairs](NodeSet, NodeSet) { ++pairs; });
    benchmark::DoNotOptimize(pairs);
  }
  state.SetItemsProcessed(state.iterations() * pairs);
  state.SetLabel(std::string(QueryShapeName(shape)) + " #ccp=" +
                 std::to_string(pairs));
}
BENCHMARK(BM_EnumerateCsgCmpPairs)
    ->Args({0, 16})
    ->Args({1, 16})
    ->Args({2, 16})
    ->Args({3, 14})
    ->Args({0, 32})
    ->Args({0, 64});

}  // namespace
}  // namespace joinopt
