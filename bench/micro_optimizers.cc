/// Microbenchmarks of the end-to-end optimizers on moderate query sizes
/// (the region where all three are fast enough for google-benchmark's
/// statistics): chain-14, star-12, clique-10 — one friendly and one
/// hostile shape per algorithm.

#include <benchmark/benchmark.h>

#include "core/dpccp.h"
#include "core/dpsize.h"
#include "core/dpsub.h"
#include "core/greedy.h"
#include "core/ikkbz.h"
#include "core/lindp.h"
#include "core/top_down.h"
#include "cost/cost_model.h"
#include "graph/generators.h"
#include "hyper/dphyp.h"

namespace joinopt {
namespace {

template <typename Orderer>
void RunOptimizer(benchmark::State& state, QueryShape shape, int n) {
  Result<QueryGraph> graph = MakeShapeQuery(shape, n);
  JOINOPT_CHECK(graph.ok());
  const CoutCostModel cost_model;
  const Orderer orderer;
  for (auto _ : state) {
    Result<OptimizationResult> result = orderer.Optimize(*graph, cost_model);
    JOINOPT_CHECK(result.ok());
    benchmark::DoNotOptimize(result->cost);
  }
}

void BM_DPsize_Chain14(benchmark::State& state) {
  RunOptimizer<DPsize>(state, QueryShape::kChain, 14);
}
void BM_DPsub_Chain14(benchmark::State& state) {
  RunOptimizer<DPsub>(state, QueryShape::kChain, 14);
}
void BM_DPccp_Chain14(benchmark::State& state) {
  RunOptimizer<DPccp>(state, QueryShape::kChain, 14);
}
void BM_DPsize_Star12(benchmark::State& state) {
  RunOptimizer<DPsize>(state, QueryShape::kStar, 12);
}
void BM_DPsub_Star12(benchmark::State& state) {
  RunOptimizer<DPsub>(state, QueryShape::kStar, 12);
}
void BM_DPccp_Star12(benchmark::State& state) {
  RunOptimizer<DPccp>(state, QueryShape::kStar, 12);
}
void BM_DPsize_Clique10(benchmark::State& state) {
  RunOptimizer<DPsize>(state, QueryShape::kClique, 10);
}
void BM_DPsub_Clique10(benchmark::State& state) {
  RunOptimizer<DPsub>(state, QueryShape::kClique, 10);
}
void BM_DPccp_Clique10(benchmark::State& state) {
  RunOptimizer<DPccp>(state, QueryShape::kClique, 10);
}
void BM_Greedy_Clique10(benchmark::State& state) {
  RunOptimizer<GreedyOperatorOrdering>(state, QueryShape::kClique, 10);
}
void BM_DPccp_Chain40(benchmark::State& state) {
  RunOptimizer<DPccp>(state, QueryShape::kChain, 40);
}
void BM_TDBasic_Chain14(benchmark::State& state) {
  RunOptimizer<TDBasic>(state, QueryShape::kChain, 14);
}
void BM_LinDP_Chain40(benchmark::State& state) {
  RunOptimizer<LinDP>(state, QueryShape::kChain, 40);
}
void BM_IKKBZ_Star40(benchmark::State& state) {
  RunOptimizer<IKKBZ>(state, QueryShape::kStar, 40);
}

/// DPhyp on the hypergraph lift of a simple graph: the successor's
/// overhead relative to BM_DPccp_* on the same shapes.
void RunDPhyp(benchmark::State& state, QueryShape shape, int n) {
  Result<QueryGraph> graph = MakeShapeQuery(shape, n);
  JOINOPT_CHECK(graph.ok());
  const Hypergraph hyper = Hypergraph::FromQueryGraph(*graph);
  const CoutCostModel cost_model;
  const DPhyp dphyp;
  for (auto _ : state) {
    Result<OptimizationResult> result = dphyp.Optimize(hyper, cost_model);
    JOINOPT_CHECK(result.ok());
    benchmark::DoNotOptimize(result->cost);
  }
}
void BM_DPhyp_Chain14(benchmark::State& state) {
  RunDPhyp(state, QueryShape::kChain, 14);
}
void BM_DPhyp_Star12(benchmark::State& state) {
  RunDPhyp(state, QueryShape::kStar, 12);
}
void BM_DPhyp_Clique10(benchmark::State& state) {
  RunDPhyp(state, QueryShape::kClique, 10);
}

BENCHMARK(BM_DPsize_Chain14);
BENCHMARK(BM_DPsub_Chain14);
BENCHMARK(BM_DPccp_Chain14);
BENCHMARK(BM_DPsize_Star12);
BENCHMARK(BM_DPsub_Star12);
BENCHMARK(BM_DPccp_Star12);
BENCHMARK(BM_DPsize_Clique10);
BENCHMARK(BM_DPsub_Clique10);
BENCHMARK(BM_DPccp_Clique10);
BENCHMARK(BM_Greedy_Clique10);
BENCHMARK(BM_DPccp_Chain40);
BENCHMARK(BM_TDBasic_Chain14);
BENCHMARK(BM_LinDP_Chain40);
BENCHMARK(BM_IKKBZ_Star40);
BENCHMARK(BM_DPhyp_Chain14);
BENCHMARK(BM_DPhyp_Star12);
BENCHMARK(BM_DPhyp_Clique10);

}  // namespace
}  // namespace joinopt
