/// Microbenchmarks of the end-to-end optimizers on moderate query sizes
/// (the region where all three are fast enough for google-benchmark's
/// statistics): chain-14, star-12, clique-10 — one friendly and one
/// hostile shape per algorithm.
///
/// The *_Limits and *_Traced variants pin down the overhead of the
/// unified pipeline: a run with a (never-tripping) deadline + memo budget
/// must stay within noise of the plain run, and the null-sink fast path
/// is what keeps the plain run free of tracing cost.
///
/// Besides the google-benchmark registrations, `--thread-scaling` runs an
/// explicit thread sweep of the parallel orderers (serial baselines +
/// DPsizePar/DPsubPar at 1/2/4/8 threads on clique-16) and emits one
/// JOINOPT_BENCH_JSON line per cell — the seed of the BENCH_parallel.json
/// perf trajectory (see tools/ci.sh) — and `--conv-head-to-head` runs the
/// DPccp-vs-DPconv clique-16 duel the same way (ci.sh fails the build if
/// the DPconv cell is slower than DPccp's).

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>

#include "common.h"
#include "cost/cost_model.h"
#include "graph/generators.h"
#include "hyper/dphyp.h"

namespace joinopt {
namespace {

void RunOptimizer(benchmark::State& state, const char* algorithm,
                  QueryShape shape, int n,
                  const OptimizeOptions& options = OptimizeOptions()) {
  Result<QueryGraph> graph = MakeShapeQuery(shape, n);
  JOINOPT_CHECK(graph.ok());
  const CoutCostModel cost_model;
  const JoinOrderer& orderer = bench::Orderer(algorithm);
  for (auto _ : state) {
    Result<OptimizationResult> result =
        orderer.Optimize(*graph, cost_model, options);
    JOINOPT_CHECK(result.ok());
    benchmark::DoNotOptimize(result->cost);
  }
}

/// Generous limits that never trip on these sizes: measures the pure
/// bookkeeping cost of the governor (countdown ticks + budget compares).
OptimizeOptions GenerousLimits() {
  OptimizeOptions options;
  options.deadline_seconds = 3600.0;
  options.memo_entry_budget = uint64_t{1} << 40;
  return options;
}

/// A sink that observes every hook: measures the traced-path cost
/// relative to the null-sink fast path.
class CountingSink final : public TraceSink {
 public:
  void OnCsgCmpPair(NodeSet, NodeSet) override { ++pairs_; }
  void OnPlanInserted(NodeSet, double, double) override { ++inserts_; }
  void OnPruned(NodeSet, double, double) override { ++prunes_; }
  uint64_t total() const { return pairs_ + inserts_ + prunes_; }

 private:
  uint64_t pairs_ = 0;
  uint64_t inserts_ = 0;
  uint64_t prunes_ = 0;
};

void BM_DPsize_Chain14(benchmark::State& state) {
  RunOptimizer(state, "DPsize", QueryShape::kChain, 14);
}
void BM_DPsub_Chain14(benchmark::State& state) {
  RunOptimizer(state, "DPsub", QueryShape::kChain, 14);
}
void BM_DPccp_Chain14(benchmark::State& state) {
  RunOptimizer(state, "DPccp", QueryShape::kChain, 14);
}
void BM_DPsize_Star12(benchmark::State& state) {
  RunOptimizer(state, "DPsize", QueryShape::kStar, 12);
}
void BM_DPsub_Star12(benchmark::State& state) {
  RunOptimizer(state, "DPsub", QueryShape::kStar, 12);
}
void BM_DPccp_Star12(benchmark::State& state) {
  RunOptimizer(state, "DPccp", QueryShape::kStar, 12);
}
void BM_DPsize_Clique10(benchmark::State& state) {
  RunOptimizer(state, "DPsize", QueryShape::kClique, 10);
}
void BM_DPsub_Clique10(benchmark::State& state) {
  RunOptimizer(state, "DPsub", QueryShape::kClique, 10);
}
void BM_DPconv_Clique10(benchmark::State& state) {
  RunOptimizer(state, "DPconv", QueryShape::kClique, 10);
}
void BM_DPccp_Clique10(benchmark::State& state) {
  RunOptimizer(state, "DPccp", QueryShape::kClique, 10);
}
void BM_Greedy_Clique10(benchmark::State& state) {
  RunOptimizer(state, "GOO", QueryShape::kClique, 10);
}
void BM_DPccp_Chain40(benchmark::State& state) {
  RunOptimizer(state, "DPccp", QueryShape::kChain, 40);
}
void BM_TDBasic_Chain14(benchmark::State& state) {
  RunOptimizer(state, "TDBasic", QueryShape::kChain, 14);
}
void BM_LinDP_Chain40(benchmark::State& state) {
  RunOptimizer(state, "LinDP", QueryShape::kChain, 40);
}
void BM_IKKBZ_Star40(benchmark::State& state) {
  RunOptimizer(state, "IKKBZ", QueryShape::kStar, 40);
}

// Pipeline-overhead probes: same workloads as the plain DPccp/DPsub
// cells above, with limits armed (never tripping) or a live trace sink.
void BM_DPccp_Clique10_Limits(benchmark::State& state) {
  RunOptimizer(state, "DPccp", QueryShape::kClique, 10, GenerousLimits());
}
void BM_DPsub_Clique10_Limits(benchmark::State& state) {
  RunOptimizer(state, "DPsub", QueryShape::kClique, 10, GenerousLimits());
}
void BM_DPccp_Chain14_Limits(benchmark::State& state) {
  RunOptimizer(state, "DPccp", QueryShape::kChain, 14, GenerousLimits());
}
void BM_DPccp_Clique10_Traced(benchmark::State& state) {
  CountingSink sink;
  OptimizeOptions options;
  options.trace = &sink;
  RunOptimizer(state, "DPccp", QueryShape::kClique, 10, options);
  benchmark::DoNotOptimize(sink.total());
}
void BM_DPsub_Clique10_Traced(benchmark::State& state) {
  CountingSink sink;
  OptimizeOptions options;
  options.trace = &sink;
  RunOptimizer(state, "DPsub", QueryShape::kClique, 10, options);
  benchmark::DoNotOptimize(sink.total());
}

/// DPhyp on the hypergraph lift of a simple graph: the successor's
/// overhead relative to BM_DPccp_* on the same shapes. (DPhyp is reached
/// through the registry adapter for QueryGraph callers; this benchmark
/// exercises the native Hypergraph entry point.)
void RunDPhyp(benchmark::State& state, QueryShape shape, int n) {
  Result<QueryGraph> graph = MakeShapeQuery(shape, n);
  JOINOPT_CHECK(graph.ok());
  const Hypergraph hyper = Hypergraph::FromQueryGraph(*graph);
  const CoutCostModel cost_model;
  const DPhyp dphyp;
  for (auto _ : state) {
    Result<OptimizationResult> result = dphyp.Optimize(hyper, cost_model);
    JOINOPT_CHECK(result.ok());
    benchmark::DoNotOptimize(result->cost);
  }
}
void BM_DPhyp_Chain14(benchmark::State& state) {
  RunDPhyp(state, QueryShape::kChain, 14);
}
void BM_DPhyp_Star12(benchmark::State& state) {
  RunDPhyp(state, QueryShape::kStar, 12);
}
void BM_DPhyp_Clique10(benchmark::State& state) {
  RunDPhyp(state, QueryShape::kClique, 10);
}

BENCHMARK(BM_DPsize_Chain14);
BENCHMARK(BM_DPsub_Chain14);
BENCHMARK(BM_DPccp_Chain14);
BENCHMARK(BM_DPsize_Star12);
BENCHMARK(BM_DPsub_Star12);
BENCHMARK(BM_DPccp_Star12);
BENCHMARK(BM_DPsize_Clique10);
BENCHMARK(BM_DPsub_Clique10);
BENCHMARK(BM_DPconv_Clique10);
BENCHMARK(BM_DPccp_Clique10);
BENCHMARK(BM_Greedy_Clique10);
BENCHMARK(BM_DPccp_Chain40);
BENCHMARK(BM_TDBasic_Chain14);
BENCHMARK(BM_LinDP_Chain40);
BENCHMARK(BM_IKKBZ_Star40);
BENCHMARK(BM_DPccp_Clique10_Limits);
BENCHMARK(BM_DPsub_Clique10_Limits);
BENCHMARK(BM_DPccp_Chain14_Limits);
BENCHMARK(BM_DPccp_Clique10_Traced);
BENCHMARK(BM_DPsub_Clique10_Traced);
BENCHMARK(BM_DPhyp_Chain14);
BENCHMARK(BM_DPhyp_Star12);
BENCHMARK(BM_DPhyp_Clique10);

/// The --thread-scaling sweep: serial DPsize/DPsub baselines, then each
/// parallel orderer at 1/2/4/8 threads on the same clique. The thread
/// count is encoded in the emitted algorithm name ("DPsubPar@4") so the
/// JSON lines stay self-describing; wall-clock scaling is bounded by the
/// machine's core count, while the counters must not move at all (the
/// determinism contract).
int RunThreadScaling() {
  constexpr int kN = 16;
  const Result<QueryGraph> graph = MakeShapeQuery(QueryShape::kClique, kN);
  JOINOPT_CHECK(graph.ok());
  const CoutCostModel cost_model;
  std::printf("thread scaling, clique-%d, Cout\n", kN);
  std::printf("%-12s  %10s  %14s\n", "cell", "seconds", "inner");

  const auto run_cell = [&](const char* algorithm, int threads) {
    OptimizeOptions options;
    options.threads = threads;
    OptimizerStats stats;
    const double seconds = bench::MeasureSeconds(
        bench::Orderer(algorithm), *graph, cost_model, &stats, options);
    char cell[32];
    if (threads > 0) {
      std::snprintf(cell, sizeof(cell), "%s@%d", algorithm, threads);
    } else {
      std::snprintf(cell, sizeof(cell), "%s", algorithm);
    }
    bench::EmitBenchJson(cell, "clique", kN, stats, seconds);
    std::printf("%-12s  %10.4f  %14llu\n", cell, seconds,
                static_cast<unsigned long long>(stats.inner_counter));
  };

  run_cell("DPsize", 0);
  run_cell("DPsub", 0);
  for (const char* algorithm : {"DPsizePar", "DPsubPar"}) {
    for (int threads : {1, 2, 4, 8}) {
      run_cell(algorithm, threads);
    }
  }
  return 0;
}

/// The --conv-head-to-head sweep: serial DPccp vs DPconv on clique-16
/// under Cout — the paper-suite shape where csg-cmp enumeration pays
/// O(3^n) while the subset convolution stays near O(2^n·n²). One JSON
/// line per cell, BENCH_parallel.json-style; tools/ci.sh guards that the
/// DPconv cell's wall-clock never exceeds DPccp's, and that both report
/// the same optimal cost bit-for-bit.
int RunConvHeadToHead() {
  constexpr int kN = 16;
  const Result<QueryGraph> graph = MakeShapeQuery(QueryShape::kClique, kN);
  JOINOPT_CHECK(graph.ok());
  const CoutCostModel cost_model;
  std::printf("conv head-to-head, clique-%d, Cout\n", kN);
  std::printf("%-12s  %10s  %14s  %22s\n", "cell", "seconds", "inner",
              "cost");

  double costs[2] = {0.0, 0.0};
  const char* const cells[2] = {"DPccp", "DPconv"};
  for (int i = 0; i < 2; ++i) {
    OptimizerStats stats;
    const double seconds = bench::MeasureSeconds(
        bench::Orderer(cells[i]), *graph, cost_model, &stats);
    Result<OptimizationResult> result =
        bench::Orderer(cells[i]).Optimize(*graph, cost_model);
    JOINOPT_CHECK(result.ok());
    costs[i] = result->cost;
    bench::EmitBenchJson(cells[i], "clique", kN, stats, seconds);
    std::printf("%-12s  %10.4f  %14llu  %22.17g\n", cells[i], seconds,
                static_cast<unsigned long long>(stats.inner_counter),
                costs[i]);
  }
  if (costs[0] != costs[1]) {
    std::fprintf(stderr,
                 "conv head-to-head: cost mismatch DPccp %.17g vs "
                 "DPconv %.17g\n",
                 costs[0], costs[1]);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace joinopt

int main(int argc, char** argv) {
  joinopt::bench::RequireValidEnv();
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--thread-scaling") == 0) {
      return joinopt::RunThreadScaling();
    }
    if (std::strcmp(argv[i], "--conv-head-to-head") == 0) {
      return joinopt::RunConvHeadToHead();
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
