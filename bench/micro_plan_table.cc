/// Memo-representation microbench (DESIGN.md "Memory layout of the
/// memo"): measures the plan table's two index backends against a
/// hash-map-of-AoS-entries baseline — the representation this library
/// used before the layered slab refactor — on the access patterns the
/// DPs actually generate, plus a clique-16 end-to-end cell so the
/// representation's effect on a full optimization is one diffable
/// number. ci.sh emits the JSON lines as BENCH_memo.json.

#include <cstdio>
#include <string>
#include <unordered_map>

#include "common.h"
#include "cost/cost_model.h"
#include "graph/generators.h"
#include "plan/plan_table.h"
#include "util/stopwatch.h"

namespace joinopt {
namespace {

constexpr int kBits = 16;
constexpr uint64_t kLimit = (uint64_t{1} << kBits) - 1;

/// Stand-in for the pre-refactor representation: one ~56-byte
/// array-of-structs entry per set, stored in node-based hash map slots.
struct AosEntry {
  NodeSet left;
  NodeSet right;
  double cost = 0.0;
  double cardinality = 0.0;
  JoinOperator op = JoinOperator::kUnspecified;
};
using AosTable = std::unordered_map<NodeSet, AosEntry, NodeSetHash>;

void EmitMicroCell(const char* algorithm, uint64_t ops, double seconds) {
  OptimizerStats stats;
  stats.inner_counter = ops;
  bench::EmitBenchJson(algorithm, "mask16", kBits, stats, seconds);
  std::printf("  %-22s  %10s  (%llu ops, %6.1f Mops/s)\n", algorithm,
              bench::FormatSeconds(seconds).c_str(),
              static_cast<unsigned long long>(ops),
              static_cast<double>(ops) / seconds / 1e6);
}

/// Insert every nonempty mask over 16 relations, the DPsubCP fill
/// pattern (the densest the memo ever gets).
void BenchInserts() {
  std::printf("[1] insert throughput (all %llu masks, n=%d)\n",
              static_cast<unsigned long long>(kLimit), kBits);
  for (const bool dense : {true, false}) {
    const Stopwatch stopwatch;
    PlanTable table(kBits, dense ? 20 : 0);
    for (uint64_t mask = 1; mask <= kLimit; ++mask) {
      table.Register(NodeSet::FromMask(mask), static_cast<double>(mask), 1.0,
                     kInvalidPlanRef, kInvalidPlanRef,
                     JoinOperator::kUnspecified);
    }
    JOINOPT_CHECK(table.populated_count() == kLimit);
    EmitMicroCell(dense ? "memo-insert-slab-dense" : "memo-insert-slab-sparse",
                  kLimit, stopwatch.ElapsedSeconds());
  }
  {
    const Stopwatch stopwatch;
    AosTable table;
    for (uint64_t mask = 1; mask <= kLimit; ++mask) {
      AosEntry& entry = table[NodeSet::FromMask(mask)];
      entry.cost = static_cast<double>(mask);
      entry.cardinality = 1.0;
    }
    JOINOPT_CHECK(table.size() == kLimit);
    EmitMicroCell("memo-insert-hashmap-aos", kLimit,
                  stopwatch.ElapsedSeconds());
  }
}

/// DPsub's probe pattern: for every mask, look up two strict subsets and
/// read their costs. The slab backends resolve a 4-byte ref and read one
/// column; the AoS map hashes into 56-byte nodes.
void BenchProbes() {
  std::printf("[2] probe throughput (2 subset probes per mask)\n");
  for (const bool dense : {true, false}) {
    PlanTable table(kBits, dense ? 20 : 0);
    for (uint64_t mask = 1; mask <= kLimit; ++mask) {
      table.Register(NodeSet::FromMask(mask), static_cast<double>(mask), 1.0,
                     kInvalidPlanRef, kInvalidPlanRef,
                     JoinOperator::kUnspecified);
    }
    const Stopwatch stopwatch;
    double checksum = 0.0;
    for (uint64_t mask = 1; mask <= kLimit; ++mask) {
      const PlanRef a = table.Find(NodeSet::FromMask(mask & (mask - 1)));
      if (a != kInvalidPlanRef) {
        checksum += table.cost(a);
      }
      const PlanRef b = table.Find(NodeSet::FromMask(mask >> 1));
      if (b != kInvalidPlanRef) {
        checksum += table.cost(b);
      }
    }
    const double seconds = stopwatch.ElapsedSeconds();
    JOINOPT_CHECK(checksum > 0.0);
    EmitMicroCell(dense ? "memo-probe-slab-dense" : "memo-probe-slab-sparse",
                  2 * kLimit, seconds);
  }
  {
    AosTable table;
    for (uint64_t mask = 1; mask <= kLimit; ++mask) {
      AosEntry& entry = table[NodeSet::FromMask(mask)];
      entry.cost = static_cast<double>(mask);
      entry.cardinality = 1.0;
    }
    const Stopwatch stopwatch;
    double checksum = 0.0;
    for (uint64_t mask = 1; mask <= kLimit; ++mask) {
      auto a = table.find(NodeSet::FromMask(mask & (mask - 1)));
      if (a != table.end()) {
        checksum += a->second.cost;
      }
      auto b = table.find(NodeSet::FromMask(mask >> 1));
      if (b != table.end()) {
        checksum += b->second.cost;
      }
    }
    const double seconds = stopwatch.ElapsedSeconds();
    JOINOPT_CHECK(checksum > 0.0);
    EmitMicroCell("memo-probe-hashmap-aos", 2 * kLimit, seconds);
  }
}

/// End-to-end: the representation's bottom line on the workload ROADMAP
/// Open item 3 is about. DPsizePar@1 vs serial DPsize isolates the
/// parallel path's representation overhead with zero scheduling noise;
/// ci.sh enforces the ratio stays under 1.15x (via BENCH_parallel.json,
/// which measures the same cells through micro_optimizers).
void BenchCliqueEndToEnd() {
  std::printf("[3] clique-16 end-to-end (Cout)\n");
  const Result<QueryGraph> graph = MakeCliqueQuery(16);
  JOINOPT_CHECK(graph.ok());
  const CoutCostModel cost_model;
  OptimizerStats stats;
  const double serial = bench::MeasureSeconds(bench::Orderer("DPsize"), *graph,
                                              cost_model, &stats);
  bench::EmitBenchJson("DPsize", "clique", 16, stats, serial);
  std::printf("  %-22s  %10s\n", "DPsize", bench::FormatSeconds(serial).c_str());
  OptimizeOptions options;
  options.threads = 1;
  const double par1 = bench::MeasureSeconds(bench::Orderer("DPsizePar"),
                                            *graph, cost_model, &stats,
                                            options);
  bench::EmitBenchJson("DPsizePar@1", "clique", 16, stats, par1);
  std::printf("  %-22s  %10s  (%.2fx of serial)\n", "DPsizePar@1",
              bench::FormatSeconds(par1).c_str(), par1 / serial);
}

}  // namespace
}  // namespace joinopt

int main() {
  joinopt::bench::RequireValidEnv();
  std::printf("Plan-table representation microbench (n=%d mask space)\n",
              joinopt::kBits);
  joinopt::BenchInserts();
  joinopt::BenchProbes();
  joinopt::BenchCliqueEndToEnd();
  return 0;
}
