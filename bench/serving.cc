/// serving — throughput and hit-rate cells for the optimizer service.
///
/// Streams a fixed recurring query pool (all seven workload families)
/// through serve::OptimizerService at several plan-cache capacities —
/// uncached, a cache smaller than the pool (so the segmented LRU has to
/// choose victims), and a cache that holds the whole pool — and reports
/// throughput, hit rate, per-request latency percentiles (p50/p95/p99
/// over queue + execution time), and eviction counts per cell. One more
/// cell drives an overload burst against a single worker to record the
/// shedding behavior under pressure, and a warm-start cell restarts the
/// full-cache service from its drain-time snapshot (serve/snapshot.h)
/// to record the recovered hit rate — the persistence payoff in the
/// same units as the rest of the sweep.
///
/// Each cell is also emitted as one JSON line
/// ({"bench":"serving","cache_capacity":...}) through the
/// JOINOPT_BENCH_JSON sink; tools/ci.sh collects them as
/// BENCH_serving.json so hit-rate or throughput regressions are diffable
/// across commits.

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "bench/common.h"
#include "joinopt.h"
#include "serve/client.h"
#include "serve/server.h"
#include "testing/workloads.h"
#include "util/random.h"

namespace joinopt {
namespace bench {
namespace {

constexpr uint64_t kSeed = 20060912;
constexpr int kPoolSize = 32;
constexpr uint64_t kQueries = 1500;

struct PoolQuery {
  QueryGraph graph;
  std::string orderer;
};

std::vector<PoolQuery> MakePool() {
  std::vector<PoolQuery> pool;
  pool.reserve(kPoolSize);
  const char* const kOrderers[] = {"DPsize", "DPsub", "DPccp", "DPhyp"};
  for (int i = 0; i < kPoolSize; ++i) {
    Random rng(kSeed * 7919 + static_cast<uint64_t>(i));
    std::string family;
    Result<QueryGraph> drawn = testing::DrawWorkloadGraph(rng, &family);
    if (!drawn.ok()) {
      std::fprintf(stderr, "serving: pool generator failed: %s\n",
                   drawn.status().ToString().c_str());
      std::exit(1);
    }
    pool.push_back({std::move(*drawn), kOrderers[rng.Uniform(4)]});
  }
  return pool;
}

struct Cell {
  uint64_t cache_capacity = 0;
  uint64_t queries = 0;
  double elapsed_s = 0.0;
  serve::PlanCache::Stats cache;
  serve::ServiceStats service;
  /// Per-request end-to-end latencies (queue wait + execution), seconds.
  std::vector<double> latencies;
  /// Entries recovered from the snapshot at startup (warm-start cell).
  uint64_t restored = 0;
};

/// Nearest-rank percentile over an unsorted sample (copied: Report needs
/// several ranks from the same cell).
double Percentile(std::vector<double> sample, double p) {
  if (sample.empty()) {
    return 0.0;
  }
  std::sort(sample.begin(), sample.end());
  const double rank = p * static_cast<double>(sample.size());
  size_t index = static_cast<size_t>(std::ceil(rank));
  index = index == 0 ? 0 : index - 1;
  return sample[std::min(index, sample.size() - 1)];
}

/// One measured cell. With a nonempty `snapshot_path` the service loads
/// the snapshot before the stream (warm start) and writes one at drain.
Cell RunCell(const std::vector<PoolQuery>& pool, uint64_t cache_capacity,
             const std::string& snapshot_path = "") {
  serve::ServiceConfig config;
  config.workers = 4;
  config.queue_depth = 64;
  config.cache_enabled = cache_capacity > 0;
  config.cache.capacity = cache_capacity;
  config.cache.shards = 4;
  config.snapshot_path = snapshot_path;
  auto service = serve::OptimizerService::Create(config);
  if (!service.ok()) {
    std::fprintf(stderr, "serving: service creation failed: %s\n",
                 service.status().ToString().c_str());
    std::exit(1);
  }
  Cell cell;
  cell.latencies.reserve(kQueries);
  Stopwatch watch;
  std::vector<std::future<serve::ServeResponse>> window;
  for (uint64_t q = 0; q < kQueries; ++q) {
    Random rng(kSeed * 1000003 + q);
    const PoolQuery& pick = pool[rng.Uniform(kPoolSize)];
    serve::ServeRequest request;
    request.graph = pick.graph;
    request.orderer = pick.orderer;
    request.threads = 1;
    window.push_back((*service)->Submit(std::move(request)));
    if (window.size() == 32 || q + 1 == kQueries) {
      for (auto& future : window) {
        const serve::ServeResponse response = future.get();
        if (!response.status.ok()) {
          std::fprintf(stderr, "serving: query failed: %s\n",
                       response.status.ToString().c_str());
          std::exit(1);
        }
        cell.latencies.push_back(response.queue_seconds +
                                 response.exec_seconds);
      }
      window.clear();
    }
  }
  cell.cache_capacity = cache_capacity;
  cell.queries = kQueries;
  cell.elapsed_s = watch.ElapsedSeconds();
  cell.restored = (*service)->LoadStats().restored;
  (*service)->Shutdown();
  cell.cache = (*service)->CacheSnapshot();
  cell.service = (*service)->Snapshot();
  return cell;
}

/// The shedding cell: one slow worker, a short queue, and a burst several
/// times the depth with a deadline the predictor cannot meet. Records how
/// much of the burst was shed (typed, immediately) vs served.
Cell RunOverloadCell(const std::vector<PoolQuery>& pool) {
  serve::ServiceConfig config;
  config.workers = 1;
  config.queue_depth = 8;
  config.cache_enabled = false;
  auto service = serve::OptimizerService::Create(config);
  if (!service.ok()) {
    std::fprintf(stderr, "serving: service creation failed: %s\n",
                 service.status().ToString().c_str());
    std::exit(1);
  }
  constexpr int kBurst = 64;
  Stopwatch watch;
  std::vector<std::future<serve::ServeResponse>> futures;
  futures.reserve(kBurst);
  for (int b = 0; b < kBurst; ++b) {
    Random rng(kSeed * 777767 + static_cast<uint64_t>(b));
    serve::ServeRequest request;
    request.graph = pool[rng.Uniform(kPoolSize)].graph;
    request.orderer = pool[rng.Uniform(kPoolSize)].orderer;
    request.deadline_seconds = 0.05;
    futures.push_back((*service)->Submit(std::move(request)));
  }
  Cell cell;
  cell.latencies.reserve(kBurst);
  for (auto& future : futures) {
    const serve::ServeResponse response = future.get();
    cell.latencies.push_back(response.queue_seconds + response.exec_seconds);
  }
  cell.cache_capacity = 0;
  cell.queries = kBurst;
  cell.elapsed_s = watch.ElapsedSeconds();
  (*service)->Shutdown();
  cell.cache = (*service)->CacheSnapshot();
  cell.service = (*service)->Snapshot();
  return cell;
}

#ifndef _WIN32
/// The wire cell: the same recurring stream against the same full-size
/// cache, but every request crosses the TCP loopback through the wire
/// protocol — framing, CRC, a real poll() server — so this cell prices
/// the transport against the in-process "full" cell. Latencies here are
/// client-observed end-to-end round trips over one persistent
/// connection, not server-side queue + execution time.
Cell RunWireCell(const std::vector<PoolQuery>& pool) {
  serve::ServiceConfig config;
  config.workers = 4;
  config.queue_depth = 64;
  config.cache.capacity = 256;
  config.cache.shards = 4;
  auto service = serve::OptimizerService::Create(config);
  if (!service.ok()) {
    std::fprintf(stderr, "serving: service creation failed: %s\n",
                 service.status().ToString().c_str());
    std::exit(1);
  }
  serve::WireServerConfig server_config;
  server_config.listen = {"127.0.0.1", 0};
  auto server = serve::WireServer::Create(server_config, service->get());
  if (!server.ok()) {
    std::fprintf(stderr, "serving: wire server bind failed: %s\n",
                 server.status().ToString().c_str());
    std::exit(1);
  }
  (*server)->Start();
  serve::WireClientConfig client_config;
  client_config.server = {"127.0.0.1", (*server)->port()};
  client_config.io_timeout_seconds = 30.0;
  serve::WireClient client(client_config);
  Cell cell;
  cell.latencies.reserve(kQueries);
  Stopwatch watch;
  for (uint64_t q = 0; q < kQueries; ++q) {
    Random rng(kSeed * 1000003 + q);
    const PoolQuery& pick = pool[rng.Uniform(kPoolSize)];
    serve::ServeRequest request;
    request.graph = pick.graph;
    request.orderer = pick.orderer;
    request.threads = 1;
    Stopwatch call;
    const serve::ServeResponse response = client.Call(request);
    if (!response.status.ok()) {
      std::fprintf(stderr, "serving: wire query failed: %s\n",
                   response.status.ToString().c_str());
      std::exit(1);
    }
    cell.latencies.push_back(call.ElapsedSeconds());
  }
  cell.cache_capacity = 256;
  cell.queries = kQueries;
  cell.elapsed_s = watch.ElapsedSeconds();
  (*server)->Stop();
  (*service)->Shutdown();
  cell.cache = (*service)->CacheSnapshot();
  cell.service = (*service)->Snapshot();
  return cell;
}
#endif  // !_WIN32

void Report(const char* label, const Cell& cell) {
  const uint64_t lookups = cell.cache.hits + cell.cache.misses +
                           cell.cache.stale;
  const double hit_rate =
      lookups == 0 ? 0.0
                   : static_cast<double>(cell.cache.hits) /
                         static_cast<double>(lookups);
  const uint64_t shed = cell.service.shed_queue_full +
                        cell.service.shed_predicted_deadline +
                        cell.service.shed_queue_expired +
                        cell.service.shed_shutdown;
  const double p50 = Percentile(cell.latencies, 0.50);
  const double p95 = Percentile(cell.latencies, 0.95);
  const double p99 = Percentile(cell.latencies, 0.99);
  std::printf("%-10s  capacity %5" PRIu64 "  %6" PRIu64
              " queries  %8.1f q/s  hit rate %5.1f%%  p50 %7.1fus  "
              "p95 %7.1fus  p99 %7.1fus  evictions %5" PRIu64
              "  shed %4" PRIu64 "  restored %3" PRIu64 "\n",
              label, cell.cache_capacity, cell.queries,
              static_cast<double>(cell.queries) / cell.elapsed_s,
              100.0 * hit_rate, 1e6 * p50, 1e6 * p95, 1e6 * p99,
              cell.cache.evicted_probation + cell.cache.evicted_protected,
              shed, cell.restored);
  char json[640];
  std::snprintf(json, sizeof(json),
                "{\"bench\":\"serving\",\"cell\":\"%s\",\"cache_capacity\":%"
                PRIu64 ",\"queries\":%" PRIu64 ",\"elapsed_s\":%.9g"
                ",\"throughput_qps\":%.9g,\"hits\":%" PRIu64 ",\"misses\":%"
                PRIu64 ",\"stale\":%" PRIu64 ",\"hit_rate\":%.6g"
                ",\"latency_p50_s\":%.9g,\"latency_p95_s\":%.9g"
                ",\"latency_p99_s\":%.9g,\"evictions\":%" PRIu64
                ",\"shed\":%" PRIu64 ",\"restored\":%" PRIu64 "}",
                label, cell.cache_capacity, cell.queries, cell.elapsed_s,
                static_cast<double>(cell.queries) / cell.elapsed_s,
                cell.cache.hits, cell.cache.misses, cell.cache.stale,
                hit_rate, p50, p95, p99,
                cell.cache.evicted_probation + cell.cache.evicted_protected,
                shed, cell.restored);
  EmitBenchJsonLine(json);
}

int Main() {
  RequireValidEnv();
  const std::vector<PoolQuery> pool = MakePool();
  std::printf("serving: %d-query pool, %" PRIu64 " query stream, 4 workers\n",
              kPoolSize, kQueries);
  // The hit-rate sweep: uncached baseline, a cache smaller than the pool
  // (eviction pressure), and one that holds the whole pool. The full
  // cell writes a drain-time snapshot that the warm-start cell below
  // recovers from.
  const std::string snapshot_path =
      (std::filesystem::temp_directory_path() / "joinopt_bench_serving.snap")
          .string();
  std::remove(snapshot_path.c_str());
  Report("uncached", RunCell(pool, 0));
  Report("small", RunCell(pool, 16));
  Report("full", RunCell(pool, 256, snapshot_path));
  // Warm start: a fresh service restores the full cell's snapshot before
  // its first request, so even the first touch of every fingerprint is a
  // hit — the recovered hit rate should be ~1.0.
  Report("warm_start", RunCell(pool, 256, snapshot_path));
  Report("overload", RunOverloadCell(pool));
#ifndef _WIN32
  // The transport tax: the full-cache stream again, but over TCP.
  Report("wire", RunWireCell(pool));
#endif
  std::remove(snapshot_path.c_str());
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace joinopt

int main() { return joinopt::bench::Main(); }
