/// serving — throughput and hit-rate cells for the optimizer service.
///
/// Streams a fixed recurring query pool (all seven workload families)
/// through serve::OptimizerService at several plan-cache capacities —
/// uncached, a cache smaller than the pool (so the segmented LRU has to
/// choose victims), and a cache that holds the whole pool — and reports
/// throughput, hit rate, and eviction counts per cell. One more cell
/// drives an overload burst against a single worker to record the
/// shedding behavior under pressure.
///
/// Each cell is also emitted as one JSON line
/// ({"bench":"serving","cache_capacity":...}) through the
/// JOINOPT_BENCH_JSON sink; tools/ci.sh collects them as
/// BENCH_serving.json so hit-rate or throughput regressions are diffable
/// across commits.

#include <cinttypes>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/common.h"
#include "joinopt.h"
#include "testing/workloads.h"
#include "util/random.h"

namespace joinopt {
namespace bench {
namespace {

constexpr uint64_t kSeed = 20060912;
constexpr int kPoolSize = 32;
constexpr uint64_t kQueries = 1500;

struct PoolQuery {
  QueryGraph graph;
  std::string orderer;
};

std::vector<PoolQuery> MakePool() {
  std::vector<PoolQuery> pool;
  pool.reserve(kPoolSize);
  const char* const kOrderers[] = {"DPsize", "DPsub", "DPccp", "DPhyp"};
  for (int i = 0; i < kPoolSize; ++i) {
    Random rng(kSeed * 7919 + static_cast<uint64_t>(i));
    std::string family;
    Result<QueryGraph> drawn = testing::DrawWorkloadGraph(rng, &family);
    if (!drawn.ok()) {
      std::fprintf(stderr, "serving: pool generator failed: %s\n",
                   drawn.status().ToString().c_str());
      std::exit(1);
    }
    pool.push_back({std::move(*drawn), kOrderers[rng.Uniform(4)]});
  }
  return pool;
}

struct Cell {
  uint64_t cache_capacity = 0;
  uint64_t queries = 0;
  double elapsed_s = 0.0;
  serve::PlanCache::Stats cache;
  serve::ServiceStats service;
};

Cell RunCell(const std::vector<PoolQuery>& pool, uint64_t cache_capacity) {
  serve::ServiceConfig config;
  config.workers = 4;
  config.queue_depth = 64;
  config.cache_enabled = cache_capacity > 0;
  config.cache.capacity = cache_capacity;
  config.cache.shards = 4;
  auto service = serve::OptimizerService::Create(config);
  if (!service.ok()) {
    std::fprintf(stderr, "serving: service creation failed: %s\n",
                 service.status().ToString().c_str());
    std::exit(1);
  }
  Stopwatch watch;
  std::vector<std::future<serve::ServeResponse>> window;
  for (uint64_t q = 0; q < kQueries; ++q) {
    Random rng(kSeed * 1000003 + q);
    const PoolQuery& pick = pool[rng.Uniform(kPoolSize)];
    serve::ServeRequest request;
    request.graph = pick.graph;
    request.orderer = pick.orderer;
    request.threads = 1;
    window.push_back((*service)->Submit(std::move(request)));
    if (window.size() == 32 || q + 1 == kQueries) {
      for (auto& future : window) {
        const serve::ServeResponse response = future.get();
        if (!response.status.ok()) {
          std::fprintf(stderr, "serving: query failed: %s\n",
                       response.status.ToString().c_str());
          std::exit(1);
        }
      }
      window.clear();
    }
  }
  Cell cell;
  cell.cache_capacity = cache_capacity;
  cell.queries = kQueries;
  cell.elapsed_s = watch.ElapsedSeconds();
  (*service)->Shutdown();
  cell.cache = (*service)->CacheSnapshot();
  cell.service = (*service)->Snapshot();
  return cell;
}

/// The shedding cell: one slow worker, a short queue, and a burst several
/// times the depth with a deadline the predictor cannot meet. Records how
/// much of the burst was shed (typed, immediately) vs served.
Cell RunOverloadCell(const std::vector<PoolQuery>& pool) {
  serve::ServiceConfig config;
  config.workers = 1;
  config.queue_depth = 8;
  config.cache_enabled = false;
  auto service = serve::OptimizerService::Create(config);
  if (!service.ok()) {
    std::fprintf(stderr, "serving: service creation failed: %s\n",
                 service.status().ToString().c_str());
    std::exit(1);
  }
  constexpr int kBurst = 64;
  Stopwatch watch;
  std::vector<std::future<serve::ServeResponse>> futures;
  futures.reserve(kBurst);
  for (int b = 0; b < kBurst; ++b) {
    Random rng(kSeed * 777767 + static_cast<uint64_t>(b));
    serve::ServeRequest request;
    request.graph = pool[rng.Uniform(kPoolSize)].graph;
    request.orderer = pool[rng.Uniform(kPoolSize)].orderer;
    request.deadline_seconds = 0.05;
    futures.push_back((*service)->Submit(std::move(request)));
  }
  for (auto& future : futures) {
    (void)future.get();
  }
  Cell cell;
  cell.cache_capacity = 0;
  cell.queries = kBurst;
  cell.elapsed_s = watch.ElapsedSeconds();
  (*service)->Shutdown();
  cell.cache = (*service)->CacheSnapshot();
  cell.service = (*service)->Snapshot();
  return cell;
}

void Report(const char* label, const Cell& cell) {
  const uint64_t lookups = cell.cache.hits + cell.cache.misses +
                           cell.cache.stale;
  const double hit_rate =
      lookups == 0 ? 0.0
                   : static_cast<double>(cell.cache.hits) /
                         static_cast<double>(lookups);
  const uint64_t shed = cell.service.shed_queue_full +
                        cell.service.shed_predicted_deadline +
                        cell.service.shed_queue_expired +
                        cell.service.shed_shutdown;
  std::printf("%-10s  capacity %5" PRIu64 "  %6" PRIu64
              " queries  %8.1f q/s  hit rate %5.1f%%  evictions %5" PRIu64
              "  shed %4" PRIu64 "\n",
              label, cell.cache_capacity, cell.queries,
              static_cast<double>(cell.queries) / cell.elapsed_s,
              100.0 * hit_rate,
              cell.cache.evicted_probation + cell.cache.evicted_protected,
              shed);
  char json[512];
  std::snprintf(json, sizeof(json),
                "{\"bench\":\"serving\",\"cell\":\"%s\",\"cache_capacity\":%"
                PRIu64 ",\"queries\":%" PRIu64 ",\"elapsed_s\":%.9g"
                ",\"throughput_qps\":%.9g,\"hits\":%" PRIu64 ",\"misses\":%"
                PRIu64 ",\"stale\":%" PRIu64 ",\"hit_rate\":%.6g"
                ",\"evictions\":%" PRIu64 ",\"shed\":%" PRIu64 "}",
                label, cell.cache_capacity, cell.queries, cell.elapsed_s,
                static_cast<double>(cell.queries) / cell.elapsed_s,
                cell.cache.hits, cell.cache.misses, cell.cache.stale,
                hit_rate,
                cell.cache.evicted_probation + cell.cache.evicted_protected,
                shed);
  EmitBenchJsonLine(json);
}

int Main() {
  RequireValidEnv();
  const std::vector<PoolQuery> pool = MakePool();
  std::printf("serving: %d-query pool, %" PRIu64 " query stream, 4 workers\n",
              kPoolSize, kQueries);
  // The hit-rate sweep: uncached baseline, a cache smaller than the pool
  // (eviction pressure), and one that holds the whole pool.
  Report("uncached", RunCell(pool, 0));
  Report("small", RunCell(pool, 16));
  Report("full", RunCell(pool, 256));
  Report("overload", RunOverloadCell(pool));
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace joinopt

int main() { return joinopt::bench::Main(); }
