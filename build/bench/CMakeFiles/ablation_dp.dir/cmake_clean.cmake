file(REMOVE_RECURSE
  "CMakeFiles/ablation_dp.dir/ablation_dp.cc.o"
  "CMakeFiles/ablation_dp.dir/ablation_dp.cc.o.d"
  "ablation_dp"
  "ablation_dp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_dp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
