# Empty dependencies file for ablation_dp.
# This may be replaced when dependencies are built.
