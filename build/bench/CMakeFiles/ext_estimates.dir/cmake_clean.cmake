file(REMOVE_RECURSE
  "CMakeFiles/ext_estimates.dir/ext_estimates.cc.o"
  "CMakeFiles/ext_estimates.dir/ext_estimates.cc.o.d"
  "ext_estimates"
  "ext_estimates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_estimates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
