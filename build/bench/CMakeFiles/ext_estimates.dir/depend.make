# Empty dependencies file for ext_estimates.
# This may be replaced when dependencies are built.
