# Empty compiler generated dependencies file for ext_heuristics.
# This may be replaced when dependencies are built.
