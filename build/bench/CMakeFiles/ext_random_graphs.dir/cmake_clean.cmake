file(REMOVE_RECURSE
  "CMakeFiles/ext_random_graphs.dir/ext_random_graphs.cc.o"
  "CMakeFiles/ext_random_graphs.dir/ext_random_graphs.cc.o.d"
  "ext_random_graphs"
  "ext_random_graphs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_random_graphs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
