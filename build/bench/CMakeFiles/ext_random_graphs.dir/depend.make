# Empty dependencies file for ext_random_graphs.
# This may be replaced when dependencies are built.
