file(REMOVE_RECURSE
  "CMakeFiles/fig10_star.dir/fig10_star.cc.o"
  "CMakeFiles/fig10_star.dir/fig10_star.cc.o.d"
  "fig10_star"
  "fig10_star.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_star.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
