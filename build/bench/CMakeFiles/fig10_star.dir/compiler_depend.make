# Empty compiler generated dependencies file for fig10_star.
# This may be replaced when dependencies are built.
