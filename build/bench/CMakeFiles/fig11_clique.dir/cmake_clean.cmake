file(REMOVE_RECURSE
  "CMakeFiles/fig11_clique.dir/fig11_clique.cc.o"
  "CMakeFiles/fig11_clique.dir/fig11_clique.cc.o.d"
  "fig11_clique"
  "fig11_clique.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_clique.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
