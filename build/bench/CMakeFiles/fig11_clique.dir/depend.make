# Empty dependencies file for fig11_clique.
# This may be replaced when dependencies are built.
