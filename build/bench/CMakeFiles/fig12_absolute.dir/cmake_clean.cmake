file(REMOVE_RECURSE
  "CMakeFiles/fig12_absolute.dir/fig12_absolute.cc.o"
  "CMakeFiles/fig12_absolute.dir/fig12_absolute.cc.o.d"
  "fig12_absolute"
  "fig12_absolute.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_absolute.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
