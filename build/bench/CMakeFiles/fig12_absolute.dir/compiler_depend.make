# Empty compiler generated dependencies file for fig12_absolute.
# This may be replaced when dependencies are built.
