# Empty compiler generated dependencies file for fig3_search_space.
# This may be replaced when dependencies are built.
