file(REMOVE_RECURSE
  "CMakeFiles/fig8_chain.dir/fig8_chain.cc.o"
  "CMakeFiles/fig8_chain.dir/fig8_chain.cc.o.d"
  "fig8_chain"
  "fig8_chain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_chain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
