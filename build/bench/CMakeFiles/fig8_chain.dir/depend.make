# Empty dependencies file for fig8_chain.
# This may be replaced when dependencies are built.
