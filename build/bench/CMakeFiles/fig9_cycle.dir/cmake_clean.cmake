file(REMOVE_RECURSE
  "CMakeFiles/fig9_cycle.dir/fig9_cycle.cc.o"
  "CMakeFiles/fig9_cycle.dir/fig9_cycle.cc.o.d"
  "fig9_cycle"
  "fig9_cycle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_cycle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
