# Empty dependencies file for fig9_cycle.
# This may be replaced when dependencies are built.
