file(REMOVE_RECURSE
  "CMakeFiles/micro_bitset.dir/micro_bitset.cc.o"
  "CMakeFiles/micro_bitset.dir/micro_bitset.cc.o.d"
  "micro_bitset"
  "micro_bitset.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_bitset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
