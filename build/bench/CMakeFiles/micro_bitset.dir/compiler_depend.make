# Empty compiler generated dependencies file for micro_bitset.
# This may be replaced when dependencies are built.
