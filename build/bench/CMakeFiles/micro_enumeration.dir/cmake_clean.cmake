file(REMOVE_RECURSE
  "CMakeFiles/micro_enumeration.dir/micro_enumeration.cc.o"
  "CMakeFiles/micro_enumeration.dir/micro_enumeration.cc.o.d"
  "micro_enumeration"
  "micro_enumeration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_enumeration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
