# Empty compiler generated dependencies file for micro_enumeration.
# This may be replaced when dependencies are built.
