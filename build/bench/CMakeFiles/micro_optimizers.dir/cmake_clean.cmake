file(REMOVE_RECURSE
  "CMakeFiles/micro_optimizers.dir/micro_optimizers.cc.o"
  "CMakeFiles/micro_optimizers.dir/micro_optimizers.cc.o.d"
  "micro_optimizers"
  "micro_optimizers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_optimizers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
