# Empty compiler generated dependencies file for micro_optimizers.
# This may be replaced when dependencies are built.
