file(REMOVE_RECURSE
  "CMakeFiles/dsl_explain.dir/dsl_explain.cc.o"
  "CMakeFiles/dsl_explain.dir/dsl_explain.cc.o.d"
  "dsl_explain"
  "dsl_explain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsl_explain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
