# Empty dependencies file for dsl_explain.
# This may be replaced when dependencies are built.
