file(REMOVE_RECURSE
  "CMakeFiles/plan_ranking.dir/plan_ranking.cc.o"
  "CMakeFiles/plan_ranking.dir/plan_ranking.cc.o.d"
  "plan_ranking"
  "plan_ranking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plan_ranking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
