# Empty compiler generated dependencies file for plan_ranking.
# This may be replaced when dependencies are built.
