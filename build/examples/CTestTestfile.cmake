# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_star_schema "/root/repo/build/examples/star_schema" "10")
set_tests_properties(example_star_schema PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_compare_algorithms "/root/repo/build/examples/compare_algorithms" "8")
set_tests_properties(example_compare_algorithms PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_optimize_and_execute "/root/repo/build/examples/optimize_and_execute")
set_tests_properties(example_optimize_and_execute PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_plan_ranking "/root/repo/build/examples/plan_ranking" "5")
set_tests_properties(example_plan_ranking PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
