
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analytics/brute_force.cc" "src/CMakeFiles/joinopt.dir/analytics/brute_force.cc.o" "gcc" "src/CMakeFiles/joinopt.dir/analytics/brute_force.cc.o.d"
  "/root/repo/src/analytics/counts.cc" "src/CMakeFiles/joinopt.dir/analytics/counts.cc.o" "gcc" "src/CMakeFiles/joinopt.dir/analytics/counts.cc.o.d"
  "/root/repo/src/analytics/tree_counts.cc" "src/CMakeFiles/joinopt.dir/analytics/tree_counts.cc.o" "gcc" "src/CMakeFiles/joinopt.dir/analytics/tree_counts.cc.o.d"
  "/root/repo/src/bitset/node_set.cc" "src/CMakeFiles/joinopt.dir/bitset/node_set.cc.o" "gcc" "src/CMakeFiles/joinopt.dir/bitset/node_set.cc.o.d"
  "/root/repo/src/catalog/catalog.cc" "src/CMakeFiles/joinopt.dir/catalog/catalog.cc.o" "gcc" "src/CMakeFiles/joinopt.dir/catalog/catalog.cc.o.d"
  "/root/repo/src/core/adaptive.cc" "src/CMakeFiles/joinopt.dir/core/adaptive.cc.o" "gcc" "src/CMakeFiles/joinopt.dir/core/adaptive.cc.o.d"
  "/root/repo/src/core/dp_cross_products.cc" "src/CMakeFiles/joinopt.dir/core/dp_cross_products.cc.o" "gcc" "src/CMakeFiles/joinopt.dir/core/dp_cross_products.cc.o.d"
  "/root/repo/src/core/dpccp.cc" "src/CMakeFiles/joinopt.dir/core/dpccp.cc.o" "gcc" "src/CMakeFiles/joinopt.dir/core/dpccp.cc.o.d"
  "/root/repo/src/core/dpsize.cc" "src/CMakeFiles/joinopt.dir/core/dpsize.cc.o" "gcc" "src/CMakeFiles/joinopt.dir/core/dpsize.cc.o.d"
  "/root/repo/src/core/dpsize_linear.cc" "src/CMakeFiles/joinopt.dir/core/dpsize_linear.cc.o" "gcc" "src/CMakeFiles/joinopt.dir/core/dpsize_linear.cc.o.d"
  "/root/repo/src/core/dpsub.cc" "src/CMakeFiles/joinopt.dir/core/dpsub.cc.o" "gcc" "src/CMakeFiles/joinopt.dir/core/dpsub.cc.o.d"
  "/root/repo/src/core/greedy.cc" "src/CMakeFiles/joinopt.dir/core/greedy.cc.o" "gcc" "src/CMakeFiles/joinopt.dir/core/greedy.cc.o.d"
  "/root/repo/src/core/idp.cc" "src/CMakeFiles/joinopt.dir/core/idp.cc.o" "gcc" "src/CMakeFiles/joinopt.dir/core/idp.cc.o.d"
  "/root/repo/src/core/ikkbz.cc" "src/CMakeFiles/joinopt.dir/core/ikkbz.cc.o" "gcc" "src/CMakeFiles/joinopt.dir/core/ikkbz.cc.o.d"
  "/root/repo/src/core/kbest.cc" "src/CMakeFiles/joinopt.dir/core/kbest.cc.o" "gcc" "src/CMakeFiles/joinopt.dir/core/kbest.cc.o.d"
  "/root/repo/src/core/lindp.cc" "src/CMakeFiles/joinopt.dir/core/lindp.cc.o" "gcc" "src/CMakeFiles/joinopt.dir/core/lindp.cc.o.d"
  "/root/repo/src/core/optimizer.cc" "src/CMakeFiles/joinopt.dir/core/optimizer.cc.o" "gcc" "src/CMakeFiles/joinopt.dir/core/optimizer.cc.o.d"
  "/root/repo/src/core/top_down.cc" "src/CMakeFiles/joinopt.dir/core/top_down.cc.o" "gcc" "src/CMakeFiles/joinopt.dir/core/top_down.cc.o.d"
  "/root/repo/src/cost/cardinality.cc" "src/CMakeFiles/joinopt.dir/cost/cardinality.cc.o" "gcc" "src/CMakeFiles/joinopt.dir/cost/cardinality.cc.o.d"
  "/root/repo/src/cost/cost_models.cc" "src/CMakeFiles/joinopt.dir/cost/cost_models.cc.o" "gcc" "src/CMakeFiles/joinopt.dir/cost/cost_models.cc.o.d"
  "/root/repo/src/cost/statistics.cc" "src/CMakeFiles/joinopt.dir/cost/statistics.cc.o" "gcc" "src/CMakeFiles/joinopt.dir/cost/statistics.cc.o.d"
  "/root/repo/src/dsl/hyper_parser.cc" "src/CMakeFiles/joinopt.dir/dsl/hyper_parser.cc.o" "gcc" "src/CMakeFiles/joinopt.dir/dsl/hyper_parser.cc.o.d"
  "/root/repo/src/dsl/parser.cc" "src/CMakeFiles/joinopt.dir/dsl/parser.cc.o" "gcc" "src/CMakeFiles/joinopt.dir/dsl/parser.cc.o.d"
  "/root/repo/src/dsl/sql_parser.cc" "src/CMakeFiles/joinopt.dir/dsl/sql_parser.cc.o" "gcc" "src/CMakeFiles/joinopt.dir/dsl/sql_parser.cc.o.d"
  "/root/repo/src/dsl/writer.cc" "src/CMakeFiles/joinopt.dir/dsl/writer.cc.o" "gcc" "src/CMakeFiles/joinopt.dir/dsl/writer.cc.o.d"
  "/root/repo/src/enumerate/cmp.cc" "src/CMakeFiles/joinopt.dir/enumerate/cmp.cc.o" "gcc" "src/CMakeFiles/joinopt.dir/enumerate/cmp.cc.o.d"
  "/root/repo/src/enumerate/csg.cc" "src/CMakeFiles/joinopt.dir/enumerate/csg.cc.o" "gcc" "src/CMakeFiles/joinopt.dir/enumerate/csg.cc.o.d"
  "/root/repo/src/exec/database.cc" "src/CMakeFiles/joinopt.dir/exec/database.cc.o" "gcc" "src/CMakeFiles/joinopt.dir/exec/database.cc.o.d"
  "/root/repo/src/exec/executor.cc" "src/CMakeFiles/joinopt.dir/exec/executor.cc.o" "gcc" "src/CMakeFiles/joinopt.dir/exec/executor.cc.o.d"
  "/root/repo/src/exec/table.cc" "src/CMakeFiles/joinopt.dir/exec/table.cc.o" "gcc" "src/CMakeFiles/joinopt.dir/exec/table.cc.o.d"
  "/root/repo/src/graph/bfs_numbering.cc" "src/CMakeFiles/joinopt.dir/graph/bfs_numbering.cc.o" "gcc" "src/CMakeFiles/joinopt.dir/graph/bfs_numbering.cc.o.d"
  "/root/repo/src/graph/connectivity.cc" "src/CMakeFiles/joinopt.dir/graph/connectivity.cc.o" "gcc" "src/CMakeFiles/joinopt.dir/graph/connectivity.cc.o.d"
  "/root/repo/src/graph/generators.cc" "src/CMakeFiles/joinopt.dir/graph/generators.cc.o" "gcc" "src/CMakeFiles/joinopt.dir/graph/generators.cc.o.d"
  "/root/repo/src/graph/query_graph.cc" "src/CMakeFiles/joinopt.dir/graph/query_graph.cc.o" "gcc" "src/CMakeFiles/joinopt.dir/graph/query_graph.cc.o.d"
  "/root/repo/src/hyper/dphyp.cc" "src/CMakeFiles/joinopt.dir/hyper/dphyp.cc.o" "gcc" "src/CMakeFiles/joinopt.dir/hyper/dphyp.cc.o.d"
  "/root/repo/src/hyper/hypergraph.cc" "src/CMakeFiles/joinopt.dir/hyper/hypergraph.cc.o" "gcc" "src/CMakeFiles/joinopt.dir/hyper/hypergraph.cc.o.d"
  "/root/repo/src/plan/dot_export.cc" "src/CMakeFiles/joinopt.dir/plan/dot_export.cc.o" "gcc" "src/CMakeFiles/joinopt.dir/plan/dot_export.cc.o.d"
  "/root/repo/src/plan/join_tree.cc" "src/CMakeFiles/joinopt.dir/plan/join_tree.cc.o" "gcc" "src/CMakeFiles/joinopt.dir/plan/join_tree.cc.o.d"
  "/root/repo/src/plan/plan_printer.cc" "src/CMakeFiles/joinopt.dir/plan/plan_printer.cc.o" "gcc" "src/CMakeFiles/joinopt.dir/plan/plan_printer.cc.o.d"
  "/root/repo/src/plan/plan_table.cc" "src/CMakeFiles/joinopt.dir/plan/plan_table.cc.o" "gcc" "src/CMakeFiles/joinopt.dir/plan/plan_table.cc.o.d"
  "/root/repo/src/plan/plan_validator.cc" "src/CMakeFiles/joinopt.dir/plan/plan_validator.cc.o" "gcc" "src/CMakeFiles/joinopt.dir/plan/plan_validator.cc.o.d"
  "/root/repo/src/util/random.cc" "src/CMakeFiles/joinopt.dir/util/random.cc.o" "gcc" "src/CMakeFiles/joinopt.dir/util/random.cc.o.d"
  "/root/repo/src/util/status.cc" "src/CMakeFiles/joinopt.dir/util/status.cc.o" "gcc" "src/CMakeFiles/joinopt.dir/util/status.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
