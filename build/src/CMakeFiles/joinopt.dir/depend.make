# Empty dependencies file for joinopt.
# This may be replaced when dependencies are built.
