file(REMOVE_RECURSE
  "CMakeFiles/algorithm_equivalence_test.dir/algorithm_equivalence_test.cc.o"
  "CMakeFiles/algorithm_equivalence_test.dir/algorithm_equivalence_test.cc.o.d"
  "algorithm_equivalence_test"
  "algorithm_equivalence_test.pdb"
  "algorithm_equivalence_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/algorithm_equivalence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
