# Empty compiler generated dependencies file for algorithm_equivalence_test.
# This may be replaced when dependencies are built.
