file(REMOVE_RECURSE
  "CMakeFiles/bfs_numbering_test.dir/bfs_numbering_test.cc.o"
  "CMakeFiles/bfs_numbering_test.dir/bfs_numbering_test.cc.o.d"
  "bfs_numbering_test"
  "bfs_numbering_test.pdb"
  "bfs_numbering_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bfs_numbering_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
