# Empty compiler generated dependencies file for bfs_numbering_test.
# This may be replaced when dependencies are built.
