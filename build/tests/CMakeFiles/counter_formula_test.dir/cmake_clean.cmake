file(REMOVE_RECURSE
  "CMakeFiles/counter_formula_test.dir/counter_formula_test.cc.o"
  "CMakeFiles/counter_formula_test.dir/counter_formula_test.cc.o.d"
  "counter_formula_test"
  "counter_formula_test.pdb"
  "counter_formula_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/counter_formula_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
