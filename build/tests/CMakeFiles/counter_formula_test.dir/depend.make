# Empty dependencies file for counter_formula_test.
# This may be replaced when dependencies are built.
