file(REMOVE_RECURSE
  "CMakeFiles/dp_cross_products_test.dir/dp_cross_products_test.cc.o"
  "CMakeFiles/dp_cross_products_test.dir/dp_cross_products_test.cc.o.d"
  "dp_cross_products_test"
  "dp_cross_products_test.pdb"
  "dp_cross_products_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dp_cross_products_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
