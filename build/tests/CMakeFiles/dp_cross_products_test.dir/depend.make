# Empty dependencies file for dp_cross_products_test.
# This may be replaced when dependencies are built.
