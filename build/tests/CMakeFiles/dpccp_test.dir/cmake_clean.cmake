file(REMOVE_RECURSE
  "CMakeFiles/dpccp_test.dir/dpccp_test.cc.o"
  "CMakeFiles/dpccp_test.dir/dpccp_test.cc.o.d"
  "dpccp_test"
  "dpccp_test.pdb"
  "dpccp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpccp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
