file(REMOVE_RECURSE
  "CMakeFiles/dphyp_test.dir/dphyp_test.cc.o"
  "CMakeFiles/dphyp_test.dir/dphyp_test.cc.o.d"
  "dphyp_test"
  "dphyp_test.pdb"
  "dphyp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dphyp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
