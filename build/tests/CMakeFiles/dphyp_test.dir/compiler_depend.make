# Empty compiler generated dependencies file for dphyp_test.
# This may be replaced when dependencies are built.
