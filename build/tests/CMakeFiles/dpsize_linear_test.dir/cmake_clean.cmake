file(REMOVE_RECURSE
  "CMakeFiles/dpsize_linear_test.dir/dpsize_linear_test.cc.o"
  "CMakeFiles/dpsize_linear_test.dir/dpsize_linear_test.cc.o.d"
  "dpsize_linear_test"
  "dpsize_linear_test.pdb"
  "dpsize_linear_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpsize_linear_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
