# Empty compiler generated dependencies file for dpsize_linear_test.
# This may be replaced when dependencies are built.
