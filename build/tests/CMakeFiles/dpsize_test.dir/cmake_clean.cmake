file(REMOVE_RECURSE
  "CMakeFiles/dpsize_test.dir/dpsize_test.cc.o"
  "CMakeFiles/dpsize_test.dir/dpsize_test.cc.o.d"
  "dpsize_test"
  "dpsize_test.pdb"
  "dpsize_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpsize_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
