# Empty dependencies file for dpsize_test.
# This may be replaced when dependencies are built.
