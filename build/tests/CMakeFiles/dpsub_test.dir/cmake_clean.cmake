file(REMOVE_RECURSE
  "CMakeFiles/dpsub_test.dir/dpsub_test.cc.o"
  "CMakeFiles/dpsub_test.dir/dpsub_test.cc.o.d"
  "dpsub_test"
  "dpsub_test.pdb"
  "dpsub_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpsub_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
