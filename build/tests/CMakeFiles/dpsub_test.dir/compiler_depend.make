# Empty compiler generated dependencies file for dpsub_test.
# This may be replaced when dependencies are built.
