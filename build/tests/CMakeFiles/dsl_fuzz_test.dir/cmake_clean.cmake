file(REMOVE_RECURSE
  "CMakeFiles/dsl_fuzz_test.dir/dsl_fuzz_test.cc.o"
  "CMakeFiles/dsl_fuzz_test.dir/dsl_fuzz_test.cc.o.d"
  "dsl_fuzz_test"
  "dsl_fuzz_test.pdb"
  "dsl_fuzz_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsl_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
