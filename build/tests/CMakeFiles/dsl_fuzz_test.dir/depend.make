# Empty dependencies file for dsl_fuzz_test.
# This may be replaced when dependencies are built.
