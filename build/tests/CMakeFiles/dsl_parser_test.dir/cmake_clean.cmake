file(REMOVE_RECURSE
  "CMakeFiles/dsl_parser_test.dir/dsl_parser_test.cc.o"
  "CMakeFiles/dsl_parser_test.dir/dsl_parser_test.cc.o.d"
  "dsl_parser_test"
  "dsl_parser_test.pdb"
  "dsl_parser_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsl_parser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
