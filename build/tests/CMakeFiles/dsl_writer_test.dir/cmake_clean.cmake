file(REMOVE_RECURSE
  "CMakeFiles/dsl_writer_test.dir/dsl_writer_test.cc.o"
  "CMakeFiles/dsl_writer_test.dir/dsl_writer_test.cc.o.d"
  "dsl_writer_test"
  "dsl_writer_test.pdb"
  "dsl_writer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsl_writer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
