file(REMOVE_RECURSE
  "CMakeFiles/enumerate_cmp_test.dir/enumerate_cmp_test.cc.o"
  "CMakeFiles/enumerate_cmp_test.dir/enumerate_cmp_test.cc.o.d"
  "enumerate_cmp_test"
  "enumerate_cmp_test.pdb"
  "enumerate_cmp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/enumerate_cmp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
