# Empty dependencies file for enumerate_cmp_test.
# This may be replaced when dependencies are built.
