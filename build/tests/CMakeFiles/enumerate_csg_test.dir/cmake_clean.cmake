file(REMOVE_RECURSE
  "CMakeFiles/enumerate_csg_test.dir/enumerate_csg_test.cc.o"
  "CMakeFiles/enumerate_csg_test.dir/enumerate_csg_test.cc.o.d"
  "enumerate_csg_test"
  "enumerate_csg_test.pdb"
  "enumerate_csg_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/enumerate_csg_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
