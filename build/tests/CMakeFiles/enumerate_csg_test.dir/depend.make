# Empty dependencies file for enumerate_csg_test.
# This may be replaced when dependencies are built.
