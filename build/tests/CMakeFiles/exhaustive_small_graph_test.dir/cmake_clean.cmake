file(REMOVE_RECURSE
  "CMakeFiles/exhaustive_small_graph_test.dir/exhaustive_small_graph_test.cc.o"
  "CMakeFiles/exhaustive_small_graph_test.dir/exhaustive_small_graph_test.cc.o.d"
  "exhaustive_small_graph_test"
  "exhaustive_small_graph_test.pdb"
  "exhaustive_small_graph_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exhaustive_small_graph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
