file(REMOVE_RECURSE
  "CMakeFiles/hyper_parser_test.dir/hyper_parser_test.cc.o"
  "CMakeFiles/hyper_parser_test.dir/hyper_parser_test.cc.o.d"
  "hyper_parser_test"
  "hyper_parser_test.pdb"
  "hyper_parser_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hyper_parser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
