file(REMOVE_RECURSE
  "CMakeFiles/idp_test.dir/idp_test.cc.o"
  "CMakeFiles/idp_test.dir/idp_test.cc.o.d"
  "idp_test"
  "idp_test.pdb"
  "idp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/idp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
