# Empty dependencies file for idp_test.
# This may be replaced when dependencies are built.
