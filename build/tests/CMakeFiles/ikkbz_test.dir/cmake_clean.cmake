file(REMOVE_RECURSE
  "CMakeFiles/ikkbz_test.dir/ikkbz_test.cc.o"
  "CMakeFiles/ikkbz_test.dir/ikkbz_test.cc.o.d"
  "ikkbz_test"
  "ikkbz_test.pdb"
  "ikkbz_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ikkbz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
