# Empty compiler generated dependencies file for ikkbz_test.
# This may be replaced when dependencies are built.
