file(REMOVE_RECURSE
  "CMakeFiles/kbest_test.dir/kbest_test.cc.o"
  "CMakeFiles/kbest_test.dir/kbest_test.cc.o.d"
  "kbest_test"
  "kbest_test.pdb"
  "kbest_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kbest_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
