# Empty compiler generated dependencies file for kbest_test.
# This may be replaced when dependencies are built.
