file(REMOVE_RECURSE
  "CMakeFiles/lindp_test.dir/lindp_test.cc.o"
  "CMakeFiles/lindp_test.dir/lindp_test.cc.o.d"
  "lindp_test"
  "lindp_test.pdb"
  "lindp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lindp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
