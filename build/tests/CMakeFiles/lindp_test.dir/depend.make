# Empty dependencies file for lindp_test.
# This may be replaced when dependencies are built.
