# Empty dependencies file for node_set_test.
# This may be replaced when dependencies are built.
