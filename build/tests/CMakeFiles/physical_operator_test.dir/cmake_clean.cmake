file(REMOVE_RECURSE
  "CMakeFiles/physical_operator_test.dir/physical_operator_test.cc.o"
  "CMakeFiles/physical_operator_test.dir/physical_operator_test.cc.o.d"
  "physical_operator_test"
  "physical_operator_test.pdb"
  "physical_operator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/physical_operator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
