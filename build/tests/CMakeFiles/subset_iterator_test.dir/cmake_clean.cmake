file(REMOVE_RECURSE
  "CMakeFiles/subset_iterator_test.dir/subset_iterator_test.cc.o"
  "CMakeFiles/subset_iterator_test.dir/subset_iterator_test.cc.o.d"
  "subset_iterator_test"
  "subset_iterator_test.pdb"
  "subset_iterator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/subset_iterator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
