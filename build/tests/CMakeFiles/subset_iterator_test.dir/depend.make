# Empty dependencies file for subset_iterator_test.
# This may be replaced when dependencies are built.
