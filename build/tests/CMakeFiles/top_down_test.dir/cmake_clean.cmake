file(REMOVE_RECURSE
  "CMakeFiles/top_down_test.dir/top_down_test.cc.o"
  "CMakeFiles/top_down_test.dir/top_down_test.cc.o.d"
  "top_down_test"
  "top_down_test.pdb"
  "top_down_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/top_down_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
