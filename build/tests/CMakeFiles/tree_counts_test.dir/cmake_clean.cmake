file(REMOVE_RECURSE
  "CMakeFiles/tree_counts_test.dir/tree_counts_test.cc.o"
  "CMakeFiles/tree_counts_test.dir/tree_counts_test.cc.o.d"
  "tree_counts_test"
  "tree_counts_test.pdb"
  "tree_counts_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tree_counts_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
