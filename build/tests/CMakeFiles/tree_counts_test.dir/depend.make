# Empty dependencies file for tree_counts_test.
# This may be replaced when dependencies are built.
