file(REMOVE_RECURSE
  "CMakeFiles/joinopt_cli.dir/joinopt_cli.cc.o"
  "CMakeFiles/joinopt_cli.dir/joinopt_cli.cc.o.d"
  "joinopt_cli"
  "joinopt_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/joinopt_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
