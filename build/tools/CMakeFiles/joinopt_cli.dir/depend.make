# Empty dependencies file for joinopt_cli.
# This may be replaced when dependencies are built.
