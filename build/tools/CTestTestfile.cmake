# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_generate_counters "/root/repo/build/tools/joinopt_cli" "counters" "star" "8")
set_tests_properties(cli_generate_counters PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;5;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_usage_error "/root/repo/build/tools/joinopt_cli")
set_tests_properties(cli_usage_error PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_explain_tpch "/root/repo/build/tools/joinopt_cli" "explain" "/root/repo/tools/../examples/queries/tpch_like.spec" "Adaptive" "bestof")
set_tests_properties(cli_explain_tpch PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_explain_star "/root/repo/build/tools/joinopt_cli" "explain" "/root/repo/tools/../examples/queries/star_warehouse.spec" "DPhyp" "cout")
set_tests_properties(cli_explain_star PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;11;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_sql "/root/repo/build/tools/joinopt_cli" "sql" "/root/repo/tools/../examples/queries/tpch_like.spec" "SELECT * FROM lineitem l, orders o WHERE l.ok = o.ok")
set_tests_properties(cli_sql PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;14;add_test;/root/repo/tools/CMakeLists.txt;0;")
