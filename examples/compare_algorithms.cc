/// Algorithm-comparison walkthrough: sweeps the paper's four query-graph
/// families at a chosen size and prints, for each algorithm, the
/// measured InnerCounter next to the paper's closed-form prediction and
/// the #ccp lower bound — a miniature, self-checking version of the
/// Section 2/4 analysis.
///
///   $ ./build/examples/compare_algorithms [n]    (default 10)

#include <cstdio>
#include <cstdlib>
#include <string>

#include "joinopt.h"

int main(int argc, char** argv) {
  using namespace joinopt;  // NOLINT(build/namespaces) — example brevity.

  const int n = argc > 1 ? std::atoi(argv[1]) : 10;
  if (n < 2 || n > 13) {
    std::fprintf(stderr,
                 "n must be in [2, 13] (DPsize on clique-%d would enumerate "
                 "too many pairs for an interactive demo)\n",
                 n);
    return 1;
  }

  const CoutCostModel cost_model;

  std::printf(
      "Search-space analysis at n = %d (measured vs closed-form predicted)\n",
      n);
  for (const QueryShape shape : {QueryShape::kChain, QueryShape::kCycle,
                                 QueryShape::kStar, QueryShape::kClique}) {
    Result<QueryGraph> graph = MakeShapeQuery(shape, n);
    if (!graph.ok()) {
      std::fprintf(stderr, "%s\n", graph.status().ToString().c_str());
      return 1;
    }
    std::printf("\n%s queries (#csg = %llu, #ccp lower bound = %llu)\n",
                std::string(QueryShapeName(shape)).c_str(),
                static_cast<unsigned long long>(CsgCount(shape, n)),
                static_cast<unsigned long long>(CcpCountUnordered(shape, n)));
    std::printf("  %-8s  %14s  %14s  %10s  %12s\n", "algo", "measured",
                "predicted", "match", "cost");

    const struct {
      const JoinOrderer* orderer;
      uint64_t predicted;
    } rows[] = {
        {OptimizerRegistry::Get("DPsize"),
         PredictedInnerCounterDPsize(shape, n)},
        {OptimizerRegistry::Get("DPsub"),
         PredictedInnerCounterDPsub(shape, n)},
        {OptimizerRegistry::Get("DPccp"),
         PredictedInnerCounterDPccp(shape, n)},
    };
    double reference_cost = -1.0;
    for (const auto& row : rows) {
      Result<OptimizationResult> result =
          row.orderer->Optimize(*graph, cost_model);
      if (!result.ok()) {
        std::fprintf(stderr, "%s failed: %s\n",
                     std::string(row.orderer->name()).c_str(),
                     result.status().ToString().c_str());
        return 1;
      }
      if (reference_cost < 0) {
        reference_cost = result->cost;
      }
      const bool counter_match = result->stats.inner_counter == row.predicted;
      const bool cost_match =
          result->cost <= reference_cost * (1 + 1e-9) &&
          result->cost >= reference_cost * (1 - 1e-9);
      std::printf("  %-8s  %14llu  %14llu  %10s  %12.6g%s\n",
                  std::string(row.orderer->name()).c_str(),
                  static_cast<unsigned long long>(result->stats.inner_counter),
                  static_cast<unsigned long long>(row.predicted),
                  counter_match ? "yes" : "MISMATCH", result->cost,
                  cost_match ? "" : "  <-- COST MISMATCH");
      if (!counter_match || !cost_match) {
        return 1;
      }
    }
  }
  std::printf(
      "\nAll counters match the paper's closed forms and all algorithms "
      "agree on the optimum.\n");
  return 0;
}
