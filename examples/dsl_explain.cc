/// DSL-driven explain tool: reads a query spec (see src/dsl/parser.h for
/// the format) from a file or stdin, optimizes it with a chosen
/// algorithm, and prints the plan.
///
///   $ ./build/examples/dsl_explain query.spec [DPccp|DPsize|DPsub|GOO|linear]
///   $ echo 'rel a 10
///           rel b 20
///           join a b 0.5' | ./build/examples/dsl_explain -

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "joinopt.h"

namespace {

joinopt::Result<std::string> ReadAll(const std::string& path) {
  if (path == "-") {
    std::ostringstream buffer;
    buffer << std::cin.rdbuf();
    return buffer.str();
  }
  std::ifstream file(path);
  if (!file) {
    return joinopt::Status::NotFound("cannot open '" + path + "'");
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return buffer.str();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace joinopt;  // NOLINT(build/namespaces) — example brevity.

  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s <spec-file|-> [DPccp|DPsize|DPsub|GOO|linear]\n",
                 argv[0]);
    return 2;
  }
  Result<std::string> text = ReadAll(argv[1]);
  if (!text.ok()) {
    std::fprintf(stderr, "%s\n", text.status().ToString().c_str());
    return 1;
  }
  Result<QueryGraph> graph = ParseQuerySpecToGraph(*text);
  if (!graph.ok()) {
    std::fprintf(stderr, "parse error: %s\n",
                 graph.status().ToString().c_str());
    return 1;
  }

  // Any registry name works; "linear" is kept as a legacy alias.
  std::string name = argc > 2 ? argv[2] : "DPccp";
  if (name == "linear") {
    name = "DPsizeLinear";
  }
  Result<const JoinOrderer*> lookup = OptimizerRegistry::GetOrError(name);
  if (!lookup.ok()) {
    std::fprintf(stderr, "%s\n", lookup.status().ToString().c_str());
    return 2;
  }
  const JoinOrderer* orderer = *lookup;

  const BestOfCostModel cost_model = BestOfCostModel::Standard();
  Result<OptimizationResult> result = orderer->Optimize(*graph, cost_model);
  if (!result.ok()) {
    std::fprintf(stderr, "optimization failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  std::printf("-- %s over %d relations, %d join predicates (cost model: "
              "best-of {hash, NL, sort-merge})\n\n",
              std::string(orderer->name()).c_str(), graph->relation_count(),
              graph->edge_count());
  std::printf("%s\n", PlanToExplainString(result->plan, *graph).c_str());
  std::printf("expression: %s\ncost: %.6g   rows: %.6g   pairs: %llu   "
              "time: %.4g s\n",
              PlanToExpression(result->plan, *graph).c_str(), result->cost,
              result->cardinality,
              static_cast<unsigned long long>(
                  result->stats.ono_lohman_counter),
              result->stats.elapsed_seconds);
  return 0;
}
