/// End-to-end demo: optimize a query, then actually EXECUTE the chosen
/// join tree on synthetic data — alongside a heuristic plan for the same
/// query — showing that every join order returns identical results while
/// the estimated cost differs.
///
///   $ ./build/examples/optimize_and_execute

#include <cstdio>

#include "joinopt.h"

int main() {
  using namespace joinopt;  // NOLINT(build/namespaces) — example brevity.

  Result<QueryGraph> graph = ParseQuerySpecToGraph(
      "rel facts 1500\n"
      "rel users 400\n"
      "rel items 300\n"
      "rel tags  50\n"
      "join facts users 0.0025\n"
      "join facts items 0.0033\n"
      "join items tags  0.02\n");
  if (!graph.ok()) {
    std::fprintf(stderr, "%s\n", graph.status().ToString().c_str());
    return 1;
  }

  DatabaseGenOptions gen_options;
  gen_options.seed = 2006;
  Result<Database> database = GenerateDatabase(*graph, gen_options);
  if (!database.ok()) {
    std::fprintf(stderr, "%s\n", database.status().ToString().c_str());
    return 1;
  }

  const CoutCostModel cost_model;
  const JoinOrderer* optimal = OptimizerRegistry::Get("DPccp");
  const JoinOrderer* left_deep = OptimizerRegistry::Get("DPsizeLinear");
  const JoinOrderer* greedy = OptimizerRegistry::Get("GOO");

  struct Row {
    const char* label;
    Result<OptimizationResult> result;
  } rows[] = {
      {"DPccp (optimal)", optimal->Optimize(*graph, cost_model)},
      {"left-deep DP", left_deep->Optimize(*graph, cost_model)},
      {"GOO (greedy)", greedy->Optimize(*graph, cost_model)},
  };

  bool all_identical = true;
  Result<Table> reference = Status::Internal("unset");
  for (Row& row : rows) {
    if (!row.result.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", row.label,
                   row.result.status().ToString().c_str());
      return 1;
    }
    Result<Table> executed = ExecutePlan(row.result->plan, *database);
    if (!executed.ok()) {
      std::fprintf(stderr, "%s execution failed: %s\n", row.label,
                   executed.status().ToString().c_str());
      return 1;
    }
    std::printf("%-16s %-44s est. Cout %12.6g   rows %lld\n", row.label,
                PlanToExpression(row.result->plan, *graph).c_str(),
                row.result->cost,
                static_cast<long long>(executed->row_count()));
    if (!reference.ok()) {
      reference = std::move(executed);
    } else if (executed->CanonicalRows() != reference->CanonicalRows()) {
      all_identical = false;
    }
  }

  std::printf("\nresults identical across join orders: %s\n",
              all_identical ? "yes" : "NO (bug!)");
  std::printf("estimated final cardinality: %.6g (actual %lld)\n",
              rows[0].result->cardinality,
              static_cast<long long>(reference->row_count()));
  return all_identical ? 0 : 1;
}
