/// Plan-ranking demo: the k cheapest join trees for one query, with the
/// cost gap to the optimum — the "how much does join order matter here?"
/// question a DBA actually asks.
///
///   $ ./build/examples/plan_ranking [k]    (default 5)

#include <cstdio>
#include <cstdlib>

#include "joinopt.h"

int main(int argc, char** argv) {
  using namespace joinopt;  // NOLINT(build/namespaces) — example brevity.

  const int k = argc > 1 ? std::atoi(argv[1]) : 5;
  if (k < 1 || k > 50) {
    std::fprintf(stderr, "k must be in [1, 50]\n");
    return 1;
  }

  Result<QueryGraph> graph = ParseQuerySpecToGraph(
      "rel fact 5000000\n"
      "rel dim_a 10000\n"
      "rel dim_b 500\n"
      "rel sub_a 200\n"
      "rel sub_b 40\n"
      "join fact dim_a 1e-4\n"
      "join fact dim_b 2e-3\n"
      "join dim_a sub_a 5e-3\n"
      "join dim_b sub_b 2.5e-2\n");
  if (!graph.ok()) {
    std::fprintf(stderr, "%s\n", graph.status().ToString().c_str());
    return 1;
  }

  const BestOfCostModel cost_model = BestOfCostModel::Standard();
  // KBestJoinOrderer returns a ranking, not a single plan, so it lives
  // outside the JoinOrderer registry and is constructed directly.
  Result<std::vector<RankedPlan>> plans =
      KBestJoinOrderer(k).Optimize(*graph, cost_model);
  if (!plans.ok()) {
    std::fprintf(stderr, "%s\n", plans.status().ToString().c_str());
    return 1;
  }
  // Sanity: the ranking's head must be the DPccp optimum.
  Result<OptimizationResult> optimum =
      OptimizerRegistry::Get("DPccp")->Optimize(*graph, cost_model);
  if (!optimum.ok() ||
      (*plans)[0].cost > optimum->cost * (1 + 1e-9)) {
    std::fprintf(stderr, "ranking head does not match the optimum!\n");
    return 1;
  }

  const uint64_t space = CountJoinTrees(*graph);
  std::printf("query has %llu ordered cross-product-free join trees; "
              "the %zu cheapest:\n\n",
              static_cast<unsigned long long>(space), plans->size());
  for (size_t i = 0; i < plans->size(); ++i) {
    const RankedPlan& ranked = (*plans)[i];
    std::printf("#%zu  cost %.6g  (%.4gx optimum)  %s\n", i + 1, ranked.cost,
                ranked.cost / (*plans)[0].cost,
                PlanToExpression(ranked.plan, *graph).c_str());
  }
  return 0;
}
