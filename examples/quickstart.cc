/// Quickstart: build a small query graph, optimize it with DPccp, and
/// print the chosen bushy join tree.
///
///   $ ./build/examples/quickstart

#include <cstdio>

#include "joinopt.h"

int main() {
  using namespace joinopt;  // NOLINT(build/namespaces) — example brevity.

  // A 5-relation chain: orders ⋈ customer ⋈ nation ⋈ region plus a
  // lineitem fact table hanging off orders.
  QueryGraph graph;
  const auto lineitem = graph.AddRelation(6'000'000, "lineitem");
  const auto orders = graph.AddRelation(1'500'000, "orders");
  const auto customer = graph.AddRelation(150'000, "customer");
  const auto nation = graph.AddRelation(25, "nation");
  const auto region = graph.AddRelation(5, "region");
  if (!lineitem.ok() || !orders.ok() || !customer.ok() || !nation.ok() ||
      !region.ok()) {
    std::fprintf(stderr, "failed to add relations\n");
    return 1;
  }
  // Key/foreign-key joins: selectivity = 1 / |referenced relation|.
  for (const Status& status : {
           graph.AddEdge(*lineitem, *orders, 1.0 / 1'500'000),
           graph.AddEdge(*orders, *customer, 1.0 / 150'000),
           graph.AddEdge(*customer, *nation, 1.0 / 25),
           graph.AddEdge(*nation, *region, 1.0 / 5),
       }) {
    if (!status.ok()) {
      std::fprintf(stderr, "failed to add edge: %s\n",
                   status.ToString().c_str());
      return 1;
    }
  }

  // Optimize with DPccp (the paper's algorithm of choice) under the
  // classic C_out cost model. Algorithms come from the registry; run
  // `joinopt_cli list` or OptimizerRegistry::Names() for the full menu.
  const CoutCostModel cost_model;
  const JoinOrderer* optimizer = OptimizerRegistry::Get("DPccp");
  Result<OptimizationResult> result = optimizer->Optimize(graph, cost_model);
  if (!result.ok()) {
    std::fprintf(stderr, "optimization failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  std::printf("Optimal bushy join tree (no cross products):\n\n%s\n",
              PlanToExplainString(result->plan, graph).c_str());
  std::printf("expression: %s\n", PlanToExpression(result->plan, graph).c_str());
  std::printf("cost (Cout): %.6g   estimated rows: %.6g\n", result->cost,
              result->cardinality);
  std::printf(
      "csg-cmp-pairs enumerated: %llu (the Ono-Lohman lower bound for this "
      "graph)\n",
      static_cast<unsigned long long>(result->stats.inner_counter));

  // Sanity: validate the plan independently.
  const Status valid = ValidatePlan(result->plan, graph, cost_model);
  std::printf("plan validation: %s\n", valid.ToString().c_str());
  return valid.ok() ? 0 : 1;
}
