/// Star-schema example: the workload the paper's conclusion highlights
/// ("star queries are of high practical importance in data warehouses").
///
/// Builds a fact table with d dimension tables, optimizes it with all
/// three DP algorithms plus the greedy and left-deep baselines, and
/// reports cost and enumeration effort side by side. Shows (a) all exact
/// algorithms agree on the optimum, (b) DPccp does exponentially less
/// enumeration work than DPsize/DPsub, (c) heuristics can lose.
///
///   $ ./build/examples/star_schema [dimensions]   (default 12)

#include <cstdio>
#include <cstdlib>
#include <string>

#include "joinopt.h"

namespace {

joinopt::Result<joinopt::QueryGraph> BuildStarSchema(int dimensions) {
  using joinopt::QueryGraph;
  using joinopt::Result;
  using joinopt::Status;

  QueryGraph graph;
  Result<int> fact = graph.AddRelation(100'000'000, "sales_fact");
  if (!fact.ok()) return fact.status();
  joinopt::Random rng(2006);
  for (int d = 0; d < dimensions; ++d) {
    // Dimension sizes spread from tiny (date) to large (customer).
    const double card = 10.0 * static_cast<double>(rng.Uniform(100'000) + 1);
    Result<int> dim = graph.AddRelation(card, "dim" + std::to_string(d));
    if (!dim.ok()) return dim.status();
    // FK join: one fact row matches one dimension row.
    const Status edge = graph.AddEdge(*fact, *dim, 1.0 / card);
    if (!edge.ok()) return edge;
  }
  return graph;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace joinopt;  // NOLINT(build/namespaces) — example brevity.

  const int dimensions = argc > 1 ? std::atoi(argv[1]) : 12;
  if (dimensions < 1 || dimensions > 20) {
    std::fprintf(stderr, "dimensions must be in [1, 20]\n");
    return 1;
  }
  Result<QueryGraph> graph = BuildStarSchema(dimensions);
  if (!graph.ok()) {
    std::fprintf(stderr, "%s\n", graph.status().ToString().c_str());
    return 1;
  }
  std::printf("star schema: 1 fact + %d dimensions (n = %d)\n\n", dimensions,
              graph->relation_count());

  const CoutCostModel cost_model;

  std::printf("%-14s  %14s  %16s  %12s\n", "algorithm", "cost(Cout)",
              "inner_counter", "time_s");
  for (const char* name : {"DPccp", "DPsub", "DPsize", "DPsizeLinear", "GOO"}) {
    const JoinOrderer* orderer = OptimizerRegistry::Get(name);
    // DPsize on big stars explodes (Figure 10); skip above 14 relations.
    if (orderer->name() == "DPsize" && graph->relation_count() > 14) {
      std::printf("%-14s  %14s\n", "DPsize", "(skipped: see Figure 10)");
      continue;
    }
    Result<OptimizationResult> result = orderer->Optimize(*graph, cost_model);
    if (!result.ok()) {
      std::fprintf(stderr, "%s failed: %s\n",
                   std::string(orderer->name()).c_str(),
                   result.status().ToString().c_str());
      return 1;
    }
    std::printf("%-14s  %14.6g  %16llu  %12.4g\n",
                std::string(orderer->name()).c_str(), result->cost,
                static_cast<unsigned long long>(result->stats.inner_counter),
                result->stats.elapsed_seconds);
  }

  Result<OptimizationResult> best =
      OptimizerRegistry::Get("DPccp")->Optimize(*graph, cost_model);
  if (best.ok()) {
    std::printf("\nDPccp plan:\n%s",
                PlanToExplainString(best->plan, *graph).c_str());
  }
  return 0;
}
