#include "analytics/brute_force.h"

#include <algorithm>

#include "bitset/subset_iterator.h"
#include "graph/connectivity.h"
#include "util/macros.h"

namespace joinopt {

namespace {

uint64_t SubsetSpaceLimit(const QueryGraph& graph) {
  const int n = graph.relation_count();
  JOINOPT_CHECK(n >= 1 && n <= 25);  // Oracles are for small test graphs.
  return (uint64_t{1} << n) - 1;
}

}  // namespace

std::vector<NodeSet> BruteForceConnectedSubsets(const QueryGraph& graph) {
  std::vector<NodeSet> result;
  const uint64_t limit = SubsetSpaceLimit(graph);
  for (uint64_t mask = 1; mask <= limit; ++mask) {
    const NodeSet s = NodeSet::FromMask(mask);
    if (IsConnectedSet(graph, s)) {
      result.push_back(s);
    }
  }
  return result;
}

uint64_t BruteForceCsgCount(const QueryGraph& graph) {
  return BruteForceConnectedSubsets(graph).size();
}

std::vector<uint64_t> BruteForceCsgCountBySize(const QueryGraph& graph) {
  std::vector<uint64_t> by_size(graph.relation_count() + 1, 0);
  for (const NodeSet s : BruteForceConnectedSubsets(graph)) {
    ++by_size[s.count()];
  }
  return by_size;
}

std::vector<std::pair<NodeSet, NodeSet>> BruteForceCsgCmpPairs(
    const QueryGraph& graph) {
  std::vector<std::pair<NodeSet, NodeSet>> pairs;
  // Every unordered pair (S1, S2) arises exactly once as a split of
  // S = S1 ∪ S2 where S1 is the part containing min(S).
  for (const NodeSet s : BruteForceConnectedSubsets(graph)) {
    if (s.count() < 2) {
      continue;
    }
    for (ProperSubsetIterator it(s); !it.Done(); it.Next()) {
      const NodeSet s1 = it.Current();
      if (!s1.Contains(s.Min())) {
        continue;  // Normalization: count each unordered split once.
      }
      const NodeSet s2 = s - s1;
      if (!IsConnectedSet(graph, s1) || !IsConnectedSet(graph, s2)) {
        continue;
      }
      if (!graph.AreConnected(s1, s2)) {
        continue;
      }
      pairs.emplace_back(s1, s2);
    }
  }
  std::sort(pairs.begin(), pairs.end(),
            [](const std::pair<NodeSet, NodeSet>& a,
               const std::pair<NodeSet, NodeSet>& b) {
              if (a.first != b.first) return a.first < b.first;
              return a.second < b.second;
            });
  return pairs;
}

uint64_t BruteForceCcpCountUnordered(const QueryGraph& graph) {
  return BruteForceCsgCmpPairs(graph).size();
}

uint64_t BruteForceInnerCounterDPsub(const QueryGraph& graph) {
  uint64_t total = 0;
  for (const NodeSet s : BruteForceConnectedSubsets(graph)) {
    total += (uint64_t{1} << s.count()) - 2;
  }
  return total;
}

uint64_t BruteForceInnerCounterDPsize(const QueryGraph& graph) {
  const std::vector<uint64_t> by_size = BruteForceCsgCountBySize(graph);
  const int n = graph.relation_count();
  uint64_t total = 0;
  for (int s = 2; s <= n; ++s) {
    for (int s1 = 1; 2 * s1 <= s; ++s1) {
      const int s2 = s - s1;
      const uint64_t c1 = by_size[s1];
      const uint64_t c2 = by_size[s2];
      total += (s1 == s2) ? c1 * (c1 - 1) / 2 : c1 * c2;
    }
  }
  return total;
}

}  // namespace joinopt
