#ifndef JOINOPT_ANALYTICS_BRUTE_FORCE_H_
#define JOINOPT_ANALYTICS_BRUTE_FORCE_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "bitset/node_set.h"
#include "graph/query_graph.h"

namespace joinopt {

/// Definition-level oracles for arbitrary query graphs. Everything here
/// scans all 2^n subsets (or worse) and exists to cross-check the fast
/// enumeration algorithms and the closed-form analytics in tests; keep n
/// small (<= ~16).

/// All non-empty connected subsets, in ascending mask order.
std::vector<NodeSet> BruteForceConnectedSubsets(const QueryGraph& graph);

/// #csg of the graph.
uint64_t BruteForceCsgCount(const QueryGraph& graph);

/// Connected-subset counts indexed by size (index 0 unused).
std::vector<uint64_t> BruteForceCsgCountBySize(const QueryGraph& graph);

/// All UNORDERED csg-cmp-pairs by definition (Section 2.3.1), each
/// normalized so that the component containing the smaller minimum
/// element comes first, sorted lexicographically by (first, second) mask.
std::vector<std::pair<NodeSet, NodeSet>> BruteForceCsgCmpPairs(
    const QueryGraph& graph);

/// Number of unordered csg-cmp-pairs (the Ono-Lohman count).
uint64_t BruteForceCcpCountUnordered(const QueryGraph& graph);

/// Predicted DPsub InnerCounter for an arbitrary graph:
/// Σ_{connected S} (2^|S| − 2).
uint64_t BruteForceInnerCounterDPsub(const QueryGraph& graph);

/// Predicted (optimized) DPsize InnerCounter for an arbitrary graph,
/// computed from the per-size connected-subset counts.
uint64_t BruteForceInnerCounterDPsize(const QueryGraph& graph);

}  // namespace joinopt

#endif  // JOINOPT_ANALYTICS_BRUTE_FORCE_H_
