#include "analytics/counts.h"

#include "util/macros.h"

namespace joinopt {

namespace {

constexpr int kMaxAnalyticsN = 30;

void CheckRange(int n) { JOINOPT_CHECK(n >= 1 && n <= kMaxAnalyticsN); }

uint64_t Pow2(int e) {
  JOINOPT_CHECK(e >= 0 && e < 64);
  return uint64_t{1} << e;
}

uint64_t Pow3(int e) {
  JOINOPT_CHECK(e >= 0 && e <= 40);
  uint64_t result = 1;
  for (int i = 0; i < e; ++i) {
    result *= 3;
  }
  return result;
}

/// Cycles below three nodes degenerate to chains (Figure 3 treats them
/// that way), mirroring MakeShapeQuery.
QueryShape Normalize(QueryShape shape, int n) {
  if (shape == QueryShape::kCycle && n < 3) {
    return QueryShape::kChain;
  }
  return shape;
}

}  // namespace

uint64_t Binomial(int n, int k) {
  if (k < 0 || k > n) {
    return 0;
  }
  if (k > n - k) {
    k = n - k;
  }
  unsigned __int128 result = 1;
  for (int i = 1; i <= k; ++i) {
    result = result * static_cast<unsigned>(n - k + i) / static_cast<unsigned>(i);
  }
  JOINOPT_CHECK(result <= ~uint64_t{0});
  return static_cast<uint64_t>(result);
}

uint64_t ConnectedSubsetCountBySize(QueryShape shape, int n, int k) {
  CheckRange(n);
  if (k < 1 || k > n) {
    return 0;
  }
  switch (Normalize(shape, n)) {
    case QueryShape::kChain:
      return static_cast<uint64_t>(n - k + 1);
    case QueryShape::kCycle:
      return k == n ? 1 : static_cast<uint64_t>(n);
    case QueryShape::kStar:
      return k == 1 ? static_cast<uint64_t>(n) : Binomial(n - 1, k - 1);
    case QueryShape::kClique:
      return Binomial(n, k);
  }
  return 0;
}

uint64_t CsgCount(QueryShape shape, int n) {
  CheckRange(n);
  const uint64_t un = static_cast<uint64_t>(n);
  switch (Normalize(shape, n)) {
    case QueryShape::kChain:
      return un * (un + 1) / 2;
    case QueryShape::kCycle:
      return un * un - un + 1;
    case QueryShape::kStar:
      return Pow2(n - 1) + un - 1;
    case QueryShape::kClique:
      return Pow2(n) - 1;
  }
  return 0;
}

uint64_t CcpCountUnordered(QueryShape shape, int n) {
  CheckRange(n);
  const uint64_t un = static_cast<uint64_t>(n);
  switch (Normalize(shape, n)) {
    case QueryShape::kChain:
      return (un * un * un - un) / 6;
    case QueryShape::kCycle:
      return (un * un * un - 2 * un * un + un) / 2;
    case QueryShape::kStar:
      return n == 1 ? 0 : (un - 1) * Pow2(n - 2);
    case QueryShape::kClique:
      return (Pow3(n) - Pow2(n + 1) + 1) / 2;
  }
  return 0;
}

uint64_t CcpCountOrdered(QueryShape shape, int n) {
  return 2 * CcpCountUnordered(shape, n);
}

uint64_t PredictedInnerCounterDPsize(QueryShape shape, int n) {
  CheckRange(n);
  uint64_t total = 0;
  for (int s = 2; s <= n; ++s) {
    for (int s1 = 1; 2 * s1 <= s; ++s1) {
      const int s2 = s - s1;
      const uint64_t c1 = ConnectedSubsetCountBySize(shape, n, s1);
      const uint64_t c2 = ConnectedSubsetCountBySize(shape, n, s2);
      total += (s1 == s2) ? c1 * (c1 - 1) / 2 : c1 * c2;
    }
  }
  return total;
}

uint64_t PredictedInnerCounterDPsub(QueryShape shape, int n) {
  CheckRange(n);
  const uint64_t un = static_cast<uint64_t>(n);
  switch (Normalize(shape, n)) {
    case QueryShape::kChain:
      // 2^{n+2} - n^2 - 3n - 4 (the paper's Eq. 1 with the OCR'd "n^n"
      // corrected to n²; verified against Figure 3).
      return Pow2(n + 2) - un * un - 3 * un - 4;
    case QueryShape::kCycle:
      // Eq. 2: n·2^n + 2^n - 2n² - 2.
      return un * Pow2(n) + Pow2(n) - 2 * un * un - 2;
    case QueryShape::kStar:
      // Eq. 3: 2·3^{n-1} - 2^n.
      return 2 * Pow3(n - 1) - Pow2(n);
    case QueryShape::kClique:
      // Eq. 4: 3^n - 2^{n+1} + 1.
      return Pow3(n) - Pow2(n + 1) + 1;
  }
  return 0;
}

uint64_t PredictedInnerCounterDPccp(QueryShape shape, int n) {
  return CcpCountUnordered(shape, n);
}

uint64_t PredictedDPsubConnectednessFailures(QueryShape shape, int n) {
  CheckRange(n);
  return Pow2(n) - CsgCount(shape, n) - 1;
}

}  // namespace joinopt
