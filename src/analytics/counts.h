#ifndef JOINOPT_ANALYTICS_COUNTS_H_
#define JOINOPT_ANALYTICS_COUNTS_H_

#include <cstdint>

#include "graph/generators.h"

namespace joinopt {

/// Closed-form search-space analytics for the paper's four query-graph
/// families (Sections 2.1-2.3). All functions require 1 <= n <= 30 (the
/// clique values overflow uint64 shortly beyond that) and treat a "cycle"
/// with n < 3 as a chain, like MakeShapeQuery.
///
/// Note on sources: the OCR of the paper garbles several formulas; these
/// implementations are the corrected forms, each verified against the
/// paper's Figure 3 table by the test suite (see DESIGN.md §2).

/// C(n, k) without overflow for the supported range.
uint64_t Binomial(int n, int k);

/// Number of size-k subsets inducing a connected subgraph:
/// chain: n-k+1; cycle: n (k<n), 1 (k=n); star: n (k=1), C(n-1,k-1);
/// clique: C(n,k). Returns 0 for k outside [1, n].
uint64_t ConnectedSubsetCountBySize(QueryShape shape, int n, int k);

/// #csg(n): the number of non-empty connected subsets (Eq. 5/7/9/11).
uint64_t CsgCount(QueryShape shape, int n);

/// The number of UNORDERED csg-cmp-pairs — the paper's OnoLohmanCounter
/// and the "#ccp" column of Figure 3:
/// chain (n³-n)/6; cycle (n³-2n²+n)/2; star (n-1)·2^{n-2};
/// clique (3^n-2^{n+1}+1)/2.
uint64_t CcpCountUnordered(QueryShape shape, int n);

/// The number of ORDERED csg-cmp-pairs (#ccp including symmetric pairs,
/// Eq. 6/8/10/12 corrected): 2 * CcpCountUnordered.
uint64_t CcpCountOrdered(QueryShape shape, int n);

/// Predicted InnerCounter of the optimized DPsize (Figure 1) at
/// termination, computed combinatorially from the per-size connected-
/// subset counts:
///   Σ_{s=2..n} Σ_{s1=1..⌊s/2⌋} pairs(s1, s-s1)
/// where pairs(k, k) = C(c(k), 2) and pairs(k, m) = c(k)·c(m) otherwise.
uint64_t PredictedInnerCounterDPsize(QueryShape shape, int n);

/// Predicted InnerCounter of DPsub (Figure 2) at termination:
///   Σ_{connected S} (2^|S| - 2),
/// evaluated in closed form per shape (e.g. chain: 2^{n+2} - n² - 3n - 4).
uint64_t PredictedInnerCounterDPsub(QueryShape shape, int n);

/// Predicted InnerCounter of DPccp (Figure 4): equals CcpCountUnordered.
uint64_t PredictedInnerCounterDPccp(QueryShape shape, int n);

/// Predicted number of failures of DPsub's additional connectedness check
/// (the "(*)" line of Figure 2): 2^n - #csg(n) - 1 (Section 2.2).
uint64_t PredictedDPsubConnectednessFailures(QueryShape shape, int n);

}  // namespace joinopt

#endif  // JOINOPT_ANALYTICS_COUNTS_H_
