#include "analytics/tree_counts.h"

#include <unordered_map>

#include "bitset/node_set.h"
#include "enumerate/cmp.h"

namespace joinopt {

namespace {

/// Shared DP driver: accumulates per-set tree counts over the csg-cmp
/// pairs (emitted subsets-before-supersets, so operand counts are final
/// when used). `orders_per_pair` is 2 for ordered trees, 1 for shapes.
uint64_t CountTrees(const QueryGraph& graph, unsigned orders_per_pair) {
  std::unordered_map<NodeSet, unsigned __int128, NodeSetHash> count;
  count.reserve(256);
  for (int i = 0; i < graph.relation_count(); ++i) {
    count[NodeSet::Singleton(i)] = 1;
  }
  EnumerateCsgCmpPairs(graph, [&](NodeSet s1, NodeSet s2) {
    const auto left = count.find(s1);
    const auto right = count.find(s2);
    JOINOPT_CHECK(left != count.end() && right != count.end());
    unsigned __int128& total = count[s1 | s2];
    total += orders_per_pair * left->second * right->second;
    JOINOPT_CHECK(total <= ~uint64_t{0});
  });
  const auto it = count.find(graph.AllRelations());
  return it == count.end() ? 0 : static_cast<uint64_t>(it->second);
}

}  // namespace

uint64_t CountJoinTrees(const QueryGraph& graph) {
  JOINOPT_CHECK(graph.relation_count() >= 1);
  return CountTrees(graph, 2);
}

uint64_t CountJoinTreeShapes(const QueryGraph& graph) {
  JOINOPT_CHECK(graph.relation_count() >= 1);
  return CountTrees(graph, 1);
}

uint64_t ChainJoinTreeCountClosedForm(int n) {
  JOINOPT_CHECK(n >= 1 && n <= 20);
  // Catalan(n-1) * 2^(n-1).
  unsigned __int128 catalan = 1;
  for (int k = 0; k < n - 1; ++k) {
    // C_{k+1} = C_k * 2(2k+1) / (k+2).
    catalan = catalan * 2 * (2 * static_cast<unsigned>(k) + 1) /
              (static_cast<unsigned>(k) + 2);
  }
  const unsigned __int128 total = catalan << (n - 1);
  JOINOPT_CHECK(total <= ~uint64_t{0});
  return static_cast<uint64_t>(total);
}

}  // namespace joinopt
