#ifndef JOINOPT_ANALYTICS_TREE_COUNTS_H_
#define JOINOPT_ANALYTICS_TREE_COUNTS_H_

#include <cstdint>

#include "graph/query_graph.h"

namespace joinopt {

/// Search-space sizes one level above the paper's counters: not how many
/// PAIRS the DP touches, but how many complete JOIN TREES the search
/// space contains. Complements Section 2's analysis (Ono & Lohman's
/// original paper tabulates these as well).

/// Number of distinct bushy join trees without cross products for the
/// whole query, counting commuted operands as DIFFERENT trees (i.e.
/// ordered binary trees, the space a cost model with asymmetric inputs
/// really ranks):
///   trees({r}) = 1;
///   trees(S)   = Σ_{csg-cmp splits (S1,S2) of S} 2·trees(S1)·trees(S2).
/// Computed by DP over connected subsets; overflow-checked (fails fast
/// via JOINOPT_CHECK well below uint64 wrap, so keep n modest — the
/// counts grow super-exponentially).
uint64_t CountJoinTrees(const QueryGraph& graph);

/// Same, but counting commuted operands once (unordered/shape count).
uint64_t CountJoinTreeShapes(const QueryGraph& graph);

/// Closed forms for chains [Ono & Lohman]: the number of ordered bushy
/// cross-product-free trees for a chain of n relations is
///   n = 1: 1;  n > 1: 2^{n-1} · C_{n-1}   with Catalan C_k.
/// Exposed for the analytics tests.
uint64_t ChainJoinTreeCountClosedForm(int n);

}  // namespace joinopt

#endif  // JOINOPT_ANALYTICS_TREE_COUNTS_H_
