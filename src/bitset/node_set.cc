#include "bitset/node_set.h"

#include <ostream>
#include <sstream>

namespace joinopt {

std::string NodeSet::ToString() const {
  std::ostringstream out;
  out << *this;
  return out.str();
}

std::ostream& operator<<(std::ostream& os, NodeSet set) {
  os << '{';
  bool first = true;
  for (int v : set) {
    if (!first) {
      os << ", ";
    }
    os << v;
    first = false;
  }
  os << '}';
  return os;
}

}  // namespace joinopt
