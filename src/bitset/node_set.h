#ifndef JOINOPT_BITSET_NODE_SET_H_
#define JOINOPT_BITSET_NODE_SET_H_

#include <bit>
#include <cstdint>
#include <initializer_list>
#include <iosfwd>
#include <string>

#include "util/macros.h"

namespace joinopt {

/// Maximum number of relations a NodeSet can hold.
inline constexpr int kMaxRelations = 64;

/// A set of relation (query-graph node) indices in [0, 64), represented as
/// a 64-bit mask.
///
/// This is the central data type of the library: dynamic-programming tables
/// are keyed by NodeSet, the csg-cmp-pair enumeration of Moerkotte &
/// Neumann operates on NodeSets, and the subset enumeration uses the
/// Vance-Maier bit trick. All operations are O(1) (word ops / popcount /
/// count-trailing-zeros).
///
/// NodeSet is a value type: trivially copyable, hashable, and totally
/// ordered by its bit pattern (the order DPsub's integer enumeration uses).
class NodeSet {
 public:
  /// Constructs the empty set.
  constexpr NodeSet() : bits_(0) {}

  /// Constructs a set from an explicit bit mask.
  static constexpr NodeSet FromMask(uint64_t mask) { return NodeSet(mask); }

  /// Constructs the singleton set {index}. Requires 0 <= index < 64.
  static constexpr NodeSet Singleton(int index) {
    return NodeSet(uint64_t{1} << index);
  }

  /// Constructs the set {0, 1, ..., n-1}. Requires 0 <= n <= 64.
  static constexpr NodeSet Prefix(int n) {
    return NodeSet(n >= 64 ? ~uint64_t{0} : (uint64_t{1} << n) - 1);
  }

  /// Constructs a set from a list of indices, e.g. NodeSet::Of({0, 2, 5}).
  static constexpr NodeSet Of(std::initializer_list<int> indices) {
    uint64_t mask = 0;
    for (int i : indices) {
      mask |= uint64_t{1} << i;
    }
    return NodeSet(mask);
  }

  /// The raw 64-bit mask.
  constexpr uint64_t mask() const { return bits_; }

  /// True iff the set is empty.
  constexpr bool empty() const { return bits_ == 0; }

  /// Number of elements.
  constexpr int count() const { return std::popcount(bits_); }

  /// True iff `index` is a member. Requires 0 <= index < 64.
  constexpr bool Contains(int index) const {
    return (bits_ >> index) & uint64_t{1};
  }

  /// True iff every element of `other` is also in this set.
  constexpr bool ContainsAll(NodeSet other) const {
    return (other.bits_ & ~bits_) == 0;
  }

  /// True iff the two sets share at least one element.
  constexpr bool Intersects(NodeSet other) const {
    return (bits_ & other.bits_) != 0;
  }

  /// True iff this is a (possibly equal) subset of `other`.
  constexpr bool IsSubsetOf(NodeSet other) const {
    return (bits_ & ~other.bits_) == 0;
  }

  /// The smallest element. Requires a non-empty set.
  constexpr int Min() const {
    JOINOPT_DCHECK(!empty());
    return std::countr_zero(bits_);
  }

  /// The largest element. Requires a non-empty set.
  constexpr int Max() const {
    JOINOPT_DCHECK(!empty());
    return 63 - std::countl_zero(bits_);
  }

  /// The singleton containing only the smallest element. Requires a
  /// non-empty set.
  constexpr NodeSet LowestBit() const {
    JOINOPT_DCHECK(!empty());
    return NodeSet(bits_ & (~bits_ + 1));
  }

  /// Set algebra.
  constexpr NodeSet Union(NodeSet other) const {
    return NodeSet(bits_ | other.bits_);
  }
  constexpr NodeSet Intersect(NodeSet other) const {
    return NodeSet(bits_ & other.bits_);
  }
  constexpr NodeSet Minus(NodeSet other) const {
    return NodeSet(bits_ & ~other.bits_);
  }

  /// In-place element insertion/removal.
  constexpr void Add(int index) { bits_ |= uint64_t{1} << index; }
  constexpr void Remove(int index) { bits_ &= ~(uint64_t{1} << index); }

  /// Operator aliases for the set algebra; `|`, `&`, `-` mirror
  /// union/intersection/difference.
  friend constexpr NodeSet operator|(NodeSet a, NodeSet b) {
    return a.Union(b);
  }
  friend constexpr NodeSet operator&(NodeSet a, NodeSet b) {
    return a.Intersect(b);
  }
  friend constexpr NodeSet operator-(NodeSet a, NodeSet b) {
    return a.Minus(b);
  }
  constexpr NodeSet& operator|=(NodeSet b) {
    bits_ |= b.bits_;
    return *this;
  }
  constexpr NodeSet& operator&=(NodeSet b) {
    bits_ &= b.bits_;
    return *this;
  }
  constexpr NodeSet& operator-=(NodeSet b) {
    bits_ &= ~b.bits_;
    return *this;
  }

  friend constexpr bool operator==(NodeSet a, NodeSet b) {
    return a.bits_ == b.bits_;
  }
  friend constexpr bool operator!=(NodeSet a, NodeSet b) {
    return a.bits_ != b.bits_;
  }
  /// Orders sets by their integer representation (DPsub enumeration order).
  friend constexpr bool operator<(NodeSet a, NodeSet b) {
    return a.bits_ < b.bits_;
  }

  /// Iterates over the elements of the set in ascending order.
  ///
  ///   for (int v : set) { ... }
  class Iterator {
   public:
    explicit constexpr Iterator(uint64_t bits) : bits_(bits) {}
    constexpr int operator*() const { return std::countr_zero(bits_); }
    constexpr Iterator& operator++() {
      bits_ &= bits_ - 1;  // Clear the lowest set bit.
      return *this;
    }
    friend constexpr bool operator!=(Iterator a, Iterator b) {
      return a.bits_ != b.bits_;
    }
    friend constexpr bool operator==(Iterator a, Iterator b) {
      return a.bits_ == b.bits_;
    }

   private:
    uint64_t bits_;
  };

  constexpr Iterator begin() const { return Iterator(bits_); }
  constexpr Iterator end() const { return Iterator(0); }

  /// "{0, 3, 7}" rendering for logs and tests.
  std::string ToString() const;

 private:
  explicit constexpr NodeSet(uint64_t bits) : bits_(bits) {}

  uint64_t bits_;
};

/// Prints a NodeSet as "{a, b, c}".
std::ostream& operator<<(std::ostream& os, NodeSet set);

/// Hash functor so NodeSet can key unordered containers.
struct NodeSetHash {
  size_t operator()(NodeSet s) const {
    // Fibonacci hashing; the raw masks of DP subproblems are highly
    // clustered, so mix before bucketing.
    return static_cast<size_t>(s.mask() * 0x9e3779b97f4a7c15ULL);
  }
};

}  // namespace joinopt

#endif  // JOINOPT_BITSET_NODE_SET_H_
