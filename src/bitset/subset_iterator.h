#ifndef JOINOPT_BITSET_SUBSET_ITERATOR_H_
#define JOINOPT_BITSET_SUBSET_ITERATOR_H_

#include <cstdint>

#include "bitset/node_set.h"

namespace joinopt {

/// Enumerates all non-empty subsets of a NodeSet in ascending numeric order
/// of their masks, using the Vance-Maier increment
///
///     next = (current - superset) & superset
///
/// which steps through exactly the masks contained in `superset` [Vance &
/// Maier, SIGMOD '96]. Ascending numeric order guarantees that every proper
/// subset of a set is produced before the set itself, which is the property
/// dynamic programming needs.
///
/// Usage:
///   for (SubsetIterator it(s); !it.Done(); it.Next()) {
///     NodeSet subset = it.Current();   // non-empty, subset of s
///   }
///
/// The superset itself IS produced (as the last subset). Use
/// ProperSubsetIterator to exclude it.
class SubsetIterator {
 public:
  /// Starts the enumeration over the non-empty subsets of `superset`.
  /// An empty superset yields an enumeration that is immediately Done().
  explicit SubsetIterator(NodeSet superset)
      : superset_(superset.mask()),
        current_((0 - superset.mask()) & superset.mask()),
        done_(superset.empty()) {}

  /// True when the enumeration is exhausted.
  bool Done() const { return done_; }

  /// The current subset. Requires !Done().
  NodeSet Current() const { return NodeSet::FromMask(current_); }

  /// Advances to the next subset.
  void Next() {
    if (current_ == superset_) {
      done_ = true;
      return;
    }
    current_ = (current_ - superset_) & superset_;
  }

 private:
  uint64_t superset_;
  uint64_t current_;
  bool done_;
};

/// Enumerates the non-empty *proper* subsets of a NodeSet (i.e. excludes
/// the superset itself), in ascending numeric order. This is exactly the
/// inner loop of DPsub: 2^|S| - 2 iterations for |S| >= 1.
class ProperSubsetIterator {
 public:
  explicit ProperSubsetIterator(NodeSet superset)
      : superset_(superset.mask()),
        current_((0 - superset_) & superset_),
        done_(superset.count() <= 1) {}

  bool Done() const { return done_; }

  NodeSet Current() const { return NodeSet::FromMask(current_); }

  void Next() {
    current_ = (current_ - superset_) & superset_;
    if (current_ == superset_) {
      done_ = true;
    }
  }

 private:
  uint64_t superset_;
  uint64_t current_;
  bool done_;
};

}  // namespace joinopt

#endif  // JOINOPT_BITSET_SUBSET_ITERATOR_H_
