#include "catalog/catalog.h"

#include <utility>

namespace joinopt {

Result<int> Catalog::AddRelation(std::string name, double cardinality) {
  if (name.empty()) {
    return Status::InvalidArgument("relation name must be non-empty");
  }
  if (!(cardinality > 0.0)) {
    return Status::InvalidArgument("cardinality of '" + name +
                                   "' must be positive");
  }
  if (index_by_name_.contains(name)) {
    return Status::InvalidArgument("duplicate relation name '" + name + "'");
  }
  if (relation_count() >= kMaxRelations) {
    return Status::OutOfRange("catalog already holds 64 relations");
  }
  const int index = relation_count();
  index_by_name_.emplace(name, index);
  relations_.push_back(RelationInfo{std::move(name), cardinality});
  return index;
}

Status Catalog::AddJoin(std::string_view left, std::string_view right,
                        double selectivity) {
  Result<int> left_index = RelationIndex(left);
  JOINOPT_RETURN_IF_ERROR(left_index.status());
  Result<int> right_index = RelationIndex(right);
  JOINOPT_RETURN_IF_ERROR(right_index.status());
  if (*left_index == *right_index) {
    return Status::InvalidArgument("cannot join relation '" +
                                   std::string(left) + "' with itself");
  }
  if (!(selectivity > 0.0) || selectivity > 1.0) {
    return Status::InvalidArgument("selectivity must be in (0, 1]");
  }
  joins_.push_back(JoinInfo{*left_index, *right_index, selectivity});
  return Status::OK();
}

Result<int> Catalog::RelationIndex(std::string_view name) const {
  const auto it = index_by_name_.find(std::string(name));
  if (it == index_by_name_.end()) {
    return Status::NotFound("unknown relation '" + std::string(name) + "'");
  }
  return it->second;
}

Result<QueryGraph> Catalog::BuildQueryGraph() const {
  if (relations_.empty()) {
    return Status::FailedPrecondition("catalog has no relations");
  }
  QueryGraph graph;
  for (const RelationInfo& relation : relations_) {
    Result<int> added = graph.AddRelation(relation.cardinality, relation.name);
    JOINOPT_RETURN_IF_ERROR(added.status());
  }
  for (const JoinInfo& join : joins_) {
    JOINOPT_RETURN_IF_ERROR(
        graph.AddEdge(join.left, join.right, join.selectivity));
  }
  return graph;
}

}  // namespace joinopt
