#include "catalog/catalog.h"

#include <cmath>
#include <limits>
#include <utility>

#include "testing/adversarial.h"
#include "testing/fault_injection.h"

namespace joinopt {

Result<int> Catalog::AddRelation(std::string name, double cardinality) {
  if (name.empty()) {
    return Status::InvalidArgument("relation name must be non-empty");
  }
  if (!(cardinality > 0.0) || !std::isfinite(cardinality)) {
    return Status::InvalidArgument("cardinality of '" + name +
                                   "' must be finite and positive");
  }
  if (index_by_name_.contains(name)) {
    return Status::InvalidArgument("duplicate relation name '" + name + "'");
  }
  if (relation_count() >= kMaxRelations) {
    return Status::OutOfRange("catalog already holds 64 relations");
  }
  const int index = relation_count();
  index_by_name_.emplace(name, index);
  relations_.push_back(RelationInfo{std::move(name), cardinality});
  ++generation_;
  return index;
}

Status Catalog::AddJoin(std::string_view left, std::string_view right,
                        double selectivity) {
  Result<int> left_index = RelationIndex(left);
  JOINOPT_RETURN_IF_ERROR(left_index.status());
  Result<int> right_index = RelationIndex(right);
  JOINOPT_RETURN_IF_ERROR(right_index.status());
  if (*left_index == *right_index) {
    return Status::InvalidArgument("cannot join relation '" +
                                   std::string(left) + "' with itself");
  }
  if (!(selectivity > 0.0) || selectivity > 1.0) {
    return Status::InvalidArgument("selectivity must be in (0, 1]");
  }
  joins_.push_back(JoinInfo{*left_index, *right_index, selectivity});
  ++generation_;
  return Status::OK();
}

Result<int> Catalog::RelationIndex(std::string_view name) const {
  const auto it = index_by_name_.find(std::string(name));
  if (it == index_by_name_.end()) {
    return Status::NotFound("unknown relation '" + std::string(name) + "'");
  }
  return it->second;
}

Status Catalog::Validate() const {
  if (relations_.empty()) {
    return Status::InvalidCatalog("catalog has no relations");
  }
  for (size_t i = 0; i < relations_.size(); ++i) {
    const RelationInfo& relation = relations_[i];
    if (relation.name.empty()) {
      return Status::InvalidCatalog("relation " + std::to_string(i) +
                                    " has an empty name");
    }
    const auto it = index_by_name_.find(relation.name);
    if (it == index_by_name_.end() || it->second != static_cast<int>(i)) {
      return Status::InvalidCatalog("relation name '" + relation.name +
                                    "' is not uniquely indexed");
    }
    if (!(relation.cardinality > 0.0) || !std::isfinite(relation.cardinality)) {
      return Status::InvalidCatalog(
          "relation '" + relation.name + "' has cardinality " +
          std::to_string(relation.cardinality) +
          "; must be finite and positive");
    }
  }
  for (const JoinInfo& join : joins_) {
    if (join.left < 0 || join.left >= relation_count() || join.right < 0 ||
        join.right >= relation_count()) {
      return Status::InvalidCatalog("join references an unknown relation");
    }
    if (join.left == join.right) {
      return Status::InvalidCatalog("relation '" +
                                    relations_[join.left].name +
                                    "' is joined with itself");
    }
    if (!(join.selectivity > 0.0) || join.selectivity > 1.0) {
      return Status::InvalidCatalog(
          "join " + relations_[join.left].name + "-" +
          relations_[join.right].name + " has selectivity " +
          std::to_string(join.selectivity) + "; must be in (0, 1]");
    }
  }
  return Status::OK();
}

Result<QueryGraph> Catalog::BuildQueryGraph() const {
  JOINOPT_RETURN_IF_ERROR(Validate());
  QueryGraph graph;
  for (const RelationInfo& relation : relations_) {
    Result<int> added = graph.AddRelation(relation.cardinality, relation.name);
    JOINOPT_RETURN_IF_ERROR(added.status());
  }
  for (const JoinInfo& join : joins_) {
    JOINOPT_RETURN_IF_ERROR(
        graph.AddEdge(join.left, join.right, join.selectivity));
  }
  // Test-only: the "catalog returns adversarial statistics" fault point.
  // Fires after validation on purpose — it models a catalog whose checks
  // passed but whose stats pipeline later handed the optimizer garbage,
  // which the optimizer prologue must catch (kDegenerateStatistics).
  if (JOINOPT_UNLIKELY(testing::FaultInjector::Instance().enabled()) &&
      testing::FaultInjector::Instance().ShouldFire(
          testing::FaultPoint::kAdversarialStats)) {
    testing::StatsCorruptor::SetCardinality(
        graph, 0, std::numeric_limits<double>::quiet_NaN());
  }
  return graph;
}

}  // namespace joinopt
