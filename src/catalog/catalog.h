#ifndef JOINOPT_CATALOG_CATALOG_H_
#define JOINOPT_CATALOG_CATALOG_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "graph/query_graph.h"
#include "util/status.h"

namespace joinopt {

/// A named-relation registry used by the DSL front end and the examples.
///
/// The optimizer core works on integer relation indices; Catalog provides
/// the by-name layer on top: register relations with cardinalities, declare
/// join predicates between named relations, then lower everything into a
/// QueryGraph whose node i corresponds to the i-th registered relation.
class Catalog {
 public:
  Catalog() = default;

  /// Registers a relation. Names must be unique and non-empty;
  /// cardinality must be finite and positive. Returns the relation's
  /// index.
  Result<int> AddRelation(std::string name, double cardinality);

  /// Declares a join predicate between two previously registered relations
  /// with the given selectivity in (0, 1].
  Status AddJoin(std::string_view left, std::string_view right,
                 double selectivity);

  /// Index lookup by name.
  Result<int> RelationIndex(std::string_view name) const;

  /// Number of registered relations.
  int relation_count() const { return static_cast<int>(relations_.size()); }

  /// Holistic re-validation of everything the mutators enforced
  /// incrementally: at least one relation, unique non-empty names, finite
  /// positive cardinalities, join endpoints in range, selectivities in
  /// (0, 1]. Failures are kInvalidCatalog. Every loader (DSL, SQL front
  /// end) calls this before handing the catalog out, so a catalog that
  /// reaches an optimizer has one documented invariant regardless of how
  /// it was built or what later code (statistics refresh, fault
  /// injection) touched it.
  Status Validate() const;

  /// Lowers the catalog into a QueryGraph (relation i of the graph is the
  /// i-th registered relation). Validates first; fails with
  /// kInvalidCatalog if the catalog is malformed. When the
  /// kAdversarialStats fault point is armed (test-only), the returned
  /// graph's statistics are deliberately corrupted AFTER validation — the
  /// downstream optimizer prologue must then reject the graph with
  /// kDegenerateStatistics.
  Result<QueryGraph> BuildQueryGraph() const;

  /// Monotonic statistics generation. Starts at 1 and advances on every
  /// mutation (AddRelation, AddJoin, BumpGeneration). A plan cached for an
  /// earlier generation is stale: the serving layer stamps each cache
  /// entry with the generation it was computed under and treats a
  /// mismatch as a miss. BumpGeneration models an out-of-band statistics
  /// refresh (ANALYZE) that changes estimates without structural edits.
  uint64_t generation() const { return generation_; }
  void BumpGeneration() { ++generation_; }

 private:
  struct RelationInfo {
    std::string name;
    double cardinality;
  };
  struct JoinInfo {
    int left;
    int right;
    double selectivity;
  };

  std::vector<RelationInfo> relations_;
  std::vector<JoinInfo> joins_;
  std::unordered_map<std::string, int> index_by_name_;
  uint64_t generation_ = 1;
};

}  // namespace joinopt

#endif  // JOINOPT_CATALOG_CATALOG_H_
