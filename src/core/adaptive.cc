#include "core/adaptive.h"

#include "core/dp_cross_products.h"
#include "core/dpccp.h"
#include "core/idp.h"
#include "enumerate/cmp.h"
#include "graph/connectivity.h"

namespace joinopt {

std::string_view AdaptiveOptimizer::ChooseAlgorithm(
    const QueryGraph& graph) const {
  if (graph.relation_count() > 0 && !IsConnectedGraph(graph)) {
    return "DPsizeCP";
  }
  const uint64_t pairs = CountCsgCmpPairsUpTo(graph, exact_pair_budget_ + 1);
  return pairs <= exact_pair_budget_ ? "DPccp" : "IDP1";
}

Result<OptimizationResult> AdaptiveOptimizer::Optimize(
    const QueryGraph& graph, const CostModel& cost_model) const {
  if (graph.relation_count() == 0) {
    return Status::InvalidArgument("query graph has no relations");
  }
  const std::string_view choice = ChooseAlgorithm(graph);
  if (choice == "DPsizeCP") {
    return DPsizeCP().Optimize(graph, cost_model);
  }
  if (choice == "DPccp") {
    return DPccp().Optimize(graph, cost_model);
  }
  return IDP1(idp_block_size_).Optimize(graph, cost_model);
}

}  // namespace joinopt
