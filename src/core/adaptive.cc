#include "core/adaptive.h"

#include <string>
#include <vector>

#include "core/dp_cross_products.h"
#include "core/dpccp.h"
#include "core/greedy.h"
#include "core/idp.h"
#include "enumerate/cmp.h"
#include "graph/connectivity.h"

namespace joinopt {

namespace {

/// Runs one ladder rung in its own single-use context. Each attempt needs
/// a FRESH context: the governor's limit state is sticky, so a tripped
/// budget would otherwise poison every later rung.
Result<OptimizationResult> RunRung(std::string_view algorithm,
                                   int idp_block_size, const QueryGraph& graph,
                                   const CostModel& cost_model,
                                   const OptimizeOptions& options) {
  OptimizerContext sub(graph, cost_model, options);
  if (algorithm == "DPsizeCP") {
    return DPsizeCP().Optimize(sub);
  }
  if (algorithm == "DPccp") {
    return DPccp().Optimize(sub);
  }
  if (algorithm == "IDP1") {
    return IDP1(idp_block_size).Optimize(sub);
  }
  JOINOPT_DCHECK(algorithm == "GOO");
  return GreedyOperatorOrdering().Optimize(sub);
}

}  // namespace

std::string_view AdaptiveOptimizer::ChooseAlgorithm(
    const QueryGraph& graph) const {
  if (graph.relation_count() > 0 && !IsConnectedGraph(graph)) {
    return "DPsizeCP";
  }
  const uint64_t pairs = CountCsgCmpPairsUpTo(graph, exact_pair_budget_ + 1);
  return pairs <= exact_pair_budget_ ? "DPccp" : "IDP1";
}

Result<OptimizationResult> AdaptiveOptimizer::Optimize(
    OptimizerContext& ctx) const {
  JOINOPT_RETURN_IF_ERROR(
      internal::BeginOptimize(ctx, name(), /*require_connected=*/false));
  const QueryGraph& graph = ctx.graph();
  const CostModel& cost_model = ctx.cost_model();
  const OptimizeOptions& options = ctx.options();

  // The degradation ladder: the gate's choice first, then successively
  // cheaper algorithms when a resource limit trips.
  std::vector<std::string_view> ladder;
  const std::string_view choice = ChooseAlgorithm(graph);
  ladder.push_back(choice);
  if (choice == "DPsizeCP") {
    // Cross products required: no heuristic in the library handles
    // disconnected graphs, so degrade by rerunning DPsizeCP unlimited
    // (bounded in practice by its own n <= 24 gate).
    ladder.push_back("DPsizeCP");
  } else {
    if (choice != "IDP1") {
      ladder.push_back("IDP1");
    }
    ladder.push_back("GOO");
  }

  std::string fallback_from;
  Result<OptimizationResult> result = Status::Internal("unset");
  for (size_t rung = 0; rung < ladder.size(); ++rung) {
    const bool last = rung + 1 == ladder.size();
    OptimizeOptions rung_options = options;
    if (last && rung > 0) {
      // Final rung: strip the limits (tracing and counter reporting stay)
      // — another kBudgetExceeded would leave the caller with no plan.
      rung_options.memo_entry_budget = 0;
      rung_options.deadline_seconds = 0.0;
    }
    result =
        RunRung(ladder[rung], idp_block_size_, graph, cost_model, rung_options);
    if (result.ok() || last ||
        result.status().code() != StatusCode::kBudgetExceeded) {
      break;
    }
    if (!fallback_from.empty()) {
      fallback_from += ",";
    }
    fallback_from += ladder[rung];
    if (JOINOPT_UNLIKELY(options.trace != nullptr)) {
      ctx.governor().GuardedTrace([&] {
        options.trace->OnFallback(ladder[rung], ladder[rung + 1],
                                  result.status());
      });
      if (JOINOPT_UNLIKELY(ctx.exhausted())) {
        return ctx.limit_status();
      }
    }
  }
  JOINOPT_RETURN_IF_ERROR(result.status());

  result->stats.fallback_from = fallback_from;
  // Charge the gate and every abandoned attempt to the reported time.
  result->stats.elapsed_seconds = ctx.ElapsedSeconds();
  ctx.stats() = result->stats;
  return result;
}

}  // namespace joinopt
