#include "core/adaptive.h"

#include <cstdlib>
#include <utility>

#include "core/policy.h"
#include "enumerate/cmp.h"
#include "graph/connectivity.h"

namespace joinopt {

std::string_view AdaptiveOptimizer::ChooseAlgorithm(
    const QueryGraph& graph) const {
  if (graph.relation_count() > 0 && !IsConnectedGraph(graph)) {
    return "DPsizeCP";
  }
  const uint64_t pairs = CountCsgCmpPairsUpTo(graph, exact_pair_budget_ + 1);
  return pairs <= exact_pair_budget_ ? "DPccp" : "IDP1";
}

Result<OptimizationResult> AdaptiveOptimizer::Optimize(
    OptimizerContext& ctx) const {
  JOINOPT_RETURN_IF_ERROR(
      internal::BeginOptimize(ctx, name(), /*require_connected=*/false));

  // A JOINOPT_POLICY override replaces the gate's built-in ladder
  // entirely; a malformed policy is a hard InvalidArgument rather than a
  // silent fall-through to defaults.
  const char* env = std::getenv("JOINOPT_POLICY");
  if (env != nullptr && *env != '\0') {
    Result<DegradationPolicy> policy = DegradationPolicy::Parse(env);
    JOINOPT_RETURN_IF_ERROR(policy.status());
    return RunDegradationPolicy(*policy, ctx);
  }

  // The built-in ladder, expressed as a policy: the gate's choice first,
  // then successively cheaper algorithms when a resource limit trips.
  // Disconnected graphs have no heuristic rung in the library, so there
  // the ladder is DPsizeCP -> DPsizeCP (the executor strips the limits
  // off the final step, reproducing the historical unlimited rerun;
  // DPsizeCP stays bounded in practice by its own n <= 24 gate).
  const std::string_view choice = ChooseAlgorithm(ctx.graph());
  const bool salvage = ctx.options().salvage_on_interrupt;
  DegradationPolicy policy;
  if (choice == "DPsizeCP") {
    policy.Append(PolicyStep{.algorithm = "DPsizeCP", .salvage = salvage});
    policy.Append(PolicyStep{.algorithm = "DPsizeCP"});
  } else {
    if (choice != "IDP1") {
      policy.Append(PolicyStep{.algorithm = "DPccp", .salvage = salvage});
    }
    policy.Append(PolicyStep{
        .algorithm = "IDP1", .k = idp_block_size_, .salvage = salvage});
    policy.Append(PolicyStep{.algorithm = "GOO"});
  }
  return RunDegradationPolicy(policy, ctx);
}

}  // namespace joinopt
