#ifndef JOINOPT_CORE_ADAPTIVE_H_
#define JOINOPT_CORE_ADAPTIVE_H_

#include "core/optimizer.h"

namespace joinopt {

/// The productized "algorithm of choice" (the paper's conclusion says
/// DPccp should be it): a facade that inspects the query and dispatches:
///
///   * disconnected graph          -> DPsizeCP (cross products required;
///                                    only possible for n <= 24),
///   * #ccp within the exact budget -> DPccp (optimal),
///   * otherwise                    -> IDP1 (valid, near-optimal, always
///                                    polynomial per round).
///
/// The #ccp gate is computed by running the pair enumeration in counting
/// mode with an early exit, so the gate itself never exceeds the budget.
///
/// Graceful degradation: when the chosen algorithm aborts with
/// kBudgetExceeded (a memo budget or deadline from OptimizeOptions), the
/// facade falls back down the ladder choice -> IDP1 -> GOO instead of
/// failing; the final rung runs with the limits stripped so the caller
/// always gets SOME plan. (Disconnected graphs have no heuristic rung in
/// the library, so there the ladder is DPsizeCP -> DPsizeCP unlimited.)
/// Every abandoned attempt is appended to OptimizerStats::fallback_from
/// and reported through TraceSink::OnFallback; stats.algorithm names the
/// algorithm that actually produced the plan.
class AdaptiveOptimizer final : public JoinOrderer {
 public:
  /// `exact_pair_budget`: run exact DPccp when the query graph has at
  /// most this many csg-cmp-pairs (default ~ a second of optimization);
  /// `idp_block_size`: block size handed to IDP1 beyond the budget.
  explicit AdaptiveOptimizer(uint64_t exact_pair_budget = 20'000'000,
                             int idp_block_size = 10)
      : exact_pair_budget_(exact_pair_budget),
        idp_block_size_(idp_block_size) {}

  std::string_view name() const override { return "Adaptive"; }

  using JoinOrderer::Optimize;
  Result<OptimizationResult> Optimize(OptimizerContext& ctx) const override;

  /// Which underlying algorithm Optimize would try first for `graph`
  /// (exposed for tests and EXPLAIN output): "DPsizeCP", "DPccp", or
  /// "IDP1".
  std::string_view ChooseAlgorithm(const QueryGraph& graph) const;

 private:
  uint64_t exact_pair_budget_;
  int idp_block_size_;
};

}  // namespace joinopt

#endif  // JOINOPT_CORE_ADAPTIVE_H_
