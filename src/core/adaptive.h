#ifndef JOINOPT_CORE_ADAPTIVE_H_
#define JOINOPT_CORE_ADAPTIVE_H_

#include "core/optimizer.h"

namespace joinopt {

/// The productized "algorithm of choice" (the paper's conclusion says
/// DPccp should be it): a facade that inspects the query and dispatches:
///
///   * disconnected graph          -> DPsizeCP (cross products required;
///                                    only possible for n <= 24),
///   * #ccp within the exact budget -> DPccp (optimal),
///   * otherwise                    -> IDP1 (valid, near-optimal, always
///                                    polynomial per round).
///
/// The #ccp gate is computed by running the pair enumeration in counting
/// mode with an early exit, so the gate itself never exceeds the budget.
class AdaptiveOptimizer final : public JoinOrderer {
 public:
  /// `exact_pair_budget`: run exact DPccp when the query graph has at
  /// most this many csg-cmp-pairs (default ~ a second of optimization);
  /// `idp_block_size`: block size handed to IDP1 beyond the budget.
  explicit AdaptiveOptimizer(uint64_t exact_pair_budget = 20'000'000,
                             int idp_block_size = 10)
      : exact_pair_budget_(exact_pair_budget),
        idp_block_size_(idp_block_size) {}

  std::string_view name() const override { return "Adaptive"; }

  Result<OptimizationResult> Optimize(
      const QueryGraph& graph, const CostModel& cost_model) const override;

  /// Which underlying algorithm Optimize would use for `graph` (exposed
  /// for tests and EXPLAIN output): "DPsizeCP", "DPccp", or "IDP1".
  std::string_view ChooseAlgorithm(const QueryGraph& graph) const;

 private:
  uint64_t exact_pair_budget_;
  int idp_block_size_;
};

}  // namespace joinopt

#endif  // JOINOPT_CORE_ADAPTIVE_H_
