#include "core/dp_cross_products.h"

#include <vector>

#include "bitset/subset_iterator.h"

namespace joinopt {

Result<OptimizationResult> DPsizeCP::Optimize(OptimizerContext& ctx) const {
  JOINOPT_RETURN_IF_ERROR(
      internal::BeginOptimize(ctx, name(), /*require_connected=*/false));
  const QueryGraph& graph = ctx.graph();
  const int n = graph.relation_count();
  if (n > 24) {
    // With cross products every one of the 2^n subsets gets a plan;
    // beyond ~24 relations the table alone is hopeless.
    return Status::InvalidArgument(
        "DPsizeCP materializes all 2^n subsets; refusing n > 24");
  }

  ctx.InstallTable(
      PlanTable(n, /*dense_limit=*/24, ctx.options().memo_entry_budget));
  OptimizerStats& stats = ctx.stats();
  PlanTable& table = ctx.table();
  bool live = internal::SeedLeafPlans(ctx);

  std::vector<std::vector<NodeSet>> plans_by_size(n + 1);
  for (int i = 0; i < n; ++i) {
    plans_by_size[1].push_back(NodeSet::Singleton(i));
  }

  const auto consider = [&](NodeSet s1, NodeSet s2) -> bool {
    ++stats.inner_counter;
    if (s1.Intersects(s2)) {
      return !ctx.Tick();
    }
    stats.csg_cmp_pair_counter += 2;
    ctx.TraceCsgCmpPair(s1, s2);
    const NodeSet combined = s1 | s2;
    const bool existed = table.Find(combined) != nullptr;
    if (!internal::CreateJoinTreeBothOrders(ctx, s1, s2)) {
      return false;
    }
    if (!existed) {
      plans_by_size[combined.count()].push_back(combined);
    }
    return !ctx.Tick();
  };

  for (int s = 2; live && s <= n; ++s) {
    for (int s1 = 1; live && 2 * s1 <= s; ++s1) {
      const int s2 = s - s1;
      const std::vector<NodeSet>& left_list = plans_by_size[s1];
      const std::vector<NodeSet>& right_list = plans_by_size[s2];
      if (s1 == s2) {
        for (size_t i = 0; live && i < left_list.size(); ++i) {
          for (size_t j = i + 1; j < left_list.size(); ++j) {
            if (!consider(left_list[i], left_list[j])) {
              live = false;
              break;
            }
          }
        }
      } else {
        for (size_t i = 0; live && i < left_list.size(); ++i) {
          const NodeSet s1_set = left_list[i];
          for (const NodeSet s2_set : right_list) {
            if (!consider(s1_set, s2_set)) {
              live = false;
              break;
            }
          }
        }
      }
    }
  }

  stats.ono_lohman_counter = stats.csg_cmp_pair_counter / 2;
  return internal::FinishOptimize(ctx, /*allow_cross_products=*/true);
}

Result<OptimizationResult> DPsubCP::Optimize(OptimizerContext& ctx) const {
  JOINOPT_RETURN_IF_ERROR(
      internal::BeginOptimize(ctx, name(), /*require_connected=*/false));
  const QueryGraph& graph = ctx.graph();
  const int n = graph.relation_count();
  if (n > 24) {
    return Status::InvalidArgument(
        "DPsubCP enumerates 3^n splits; refusing n > 24");
  }

  ctx.InstallTable(
      PlanTable(n, /*dense_limit=*/24, ctx.options().memo_entry_budget));
  OptimizerStats& stats = ctx.stats();
  bool live = internal::SeedLeafPlans(ctx);

  const uint64_t limit = (uint64_t{1} << n) - 1;
  // Strided deadline tick inside the subset loop, same rationale as
  // DPsub: one outer mask owns up to 2^(n-1) subsets, far too much work
  // to leave between deadline checks.
  constexpr uint64_t kTickStride = 256;
  uint64_t since_tick = 0;
  for (uint64_t mask = 1; live && mask <= limit; ++mask) {
    const NodeSet s = NodeSet::FromMask(mask);
    if (s.count() == 1) {
      continue;
    }
    for (ProperSubsetIterator it(s); !it.Done(); it.Next()) {
      ++stats.inner_counter;
      if ((++since_tick & (kTickStride - 1)) == 0 && ctx.Tick()) {
        live = false;
        break;
      }
      ++stats.csg_cmp_pair_counter;
      const NodeSet s1 = it.Current();
      ctx.TraceCsgCmpPair(s1, s - s1);
      if (!internal::CreateJoinTree(ctx, s1, s - s1)) {
        live = false;
        break;
      }
    }
    // Historical per-mask boundary tick kept alongside the stride: at a
    // mask boundary the memo is coherent, which the anytime salvage
    // cadence relies on (see the same pattern in dpsub.cc).
    if (live && ctx.Tick()) {
      live = false;
    }
  }

  stats.ono_lohman_counter = stats.csg_cmp_pair_counter / 2;
  return internal::FinishOptimize(ctx, /*allow_cross_products=*/true);
}

}  // namespace joinopt
