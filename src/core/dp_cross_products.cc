#include "core/dp_cross_products.h"

#include <vector>

#include "bitset/subset_iterator.h"

namespace joinopt {

Result<OptimizationResult> DPsizeCP::Optimize(OptimizerContext& ctx) const {
  JOINOPT_RETURN_IF_ERROR(
      internal::BeginOptimize(ctx, name(), /*require_connected=*/false));
  const QueryGraph& graph = ctx.graph();
  const int n = graph.relation_count();
  if (n > 24) {
    // With cross products every one of the 2^n subsets gets a plan;
    // beyond ~24 relations the table alone is hopeless.
    return Status::InvalidArgument(
        "DPsizeCP materializes all 2^n subsets; refusing n > 24");
  }

  ctx.InstallTable(
      PlanTable(n, /*dense_limit=*/24, ctx.options().memo_entry_budget));
  OptimizerStats& stats = ctx.stats();
  PlanTable& table = ctx.table();
  bool live = internal::SeedLeafPlans(ctx);

  // Slab iteration plus strided ticks, exactly like DPsize (see
  // dpsize.cc); the only difference is the missing connectivity check.
  constexpr uint64_t kTickStride = 256;
  uint64_t since_tick = 0;
  const auto consider = [&](PlanRef r1, PlanRef r2) -> bool {
    ++stats.inner_counter;
    const NodeSet s1 = table.set(r1);
    const NodeSet s2 = table.set(r2);
    if (!s1.Intersects(s2)) {
      stats.csg_cmp_pair_counter += 2;
      ctx.TraceCsgCmpPair(s1, s2);
      if (!internal::CreateJoinTreeBothOrders(ctx, r1, r2)) {
        return false;
      }
    }
    return !((++since_tick & (kTickStride - 1)) == 0 && ctx.Tick());
  };

  for (int s = 2; live && s <= n; ++s) {
    table.FreezeLayer(s - 1);
    for (int s1 = 1; live && 2 * s1 <= s; ++s1) {
      const int s2 = s - s1;
      const uint32_t left_count = table.LayerSize(s1);
      const uint32_t right_count = table.LayerSize(s2);
      if (s1 == s2) {
        for (uint32_t i = 0; live && i < left_count; ++i) {
          for (uint32_t j = i + 1; j < left_count; ++j) {
            if (!consider(MakePlanRef(s1, i), MakePlanRef(s1, j))) {
              live = false;
              break;
            }
          }
        }
      } else {
        for (uint32_t i = 0; live && i < left_count; ++i) {
          for (uint32_t j = 0; j < right_count; ++j) {
            if (!consider(MakePlanRef(s1, i), MakePlanRef(s2, j))) {
              live = false;
              break;
            }
          }
        }
      }
    }
    if (live && ctx.Tick()) {
      live = false;  // Layer-boundary tick (coherent-memo arrival).
    }
  }

  stats.ono_lohman_counter = stats.csg_cmp_pair_counter / 2;
  return internal::FinishOptimize(ctx, /*allow_cross_products=*/true);
}

Result<OptimizationResult> DPsubCP::Optimize(OptimizerContext& ctx) const {
  JOINOPT_RETURN_IF_ERROR(
      internal::BeginOptimize(ctx, name(), /*require_connected=*/false));
  const QueryGraph& graph = ctx.graph();
  const int n = graph.relation_count();
  if (n > 24) {
    return Status::InvalidArgument(
        "DPsubCP enumerates 3^n splits; refusing n > 24");
  }

  ctx.InstallTable(
      PlanTable(n, /*dense_limit=*/24, ctx.options().memo_entry_budget));
  OptimizerStats& stats = ctx.stats();
  bool live = internal::SeedLeafPlans(ctx);

  const uint64_t limit = (uint64_t{1} << n) - 1;
  // Strided deadline tick inside the subset loop, same rationale as
  // DPsub: one outer mask owns up to 2^(n-1) subsets, far too much work
  // to leave between deadline checks.
  constexpr uint64_t kTickStride = 256;
  uint64_t since_tick = 0;
  for (uint64_t mask = 1; live && mask <= limit; ++mask) {
    const NodeSet s = NodeSet::FromMask(mask);
    if (s.count() == 1) {
      continue;
    }
    for (ProperSubsetIterator it(s); !it.Done(); it.Next()) {
      ++stats.inner_counter;
      if ((++since_tick & (kTickStride - 1)) == 0 && ctx.Tick()) {
        live = false;
        break;
      }
      ++stats.csg_cmp_pair_counter;
      const NodeSet s1 = it.Current();
      ctx.TraceCsgCmpPair(s1, s - s1);
      if (!internal::CreateJoinTree(ctx, s1, s - s1)) {
        live = false;
        break;
      }
    }
    // Historical per-mask boundary tick kept alongside the stride: at a
    // mask boundary the memo is coherent, which the anytime salvage
    // cadence relies on (see the same pattern in dpsub.cc).
    if (live && ctx.Tick()) {
      live = false;
    }
  }

  stats.ono_lohman_counter = stats.csg_cmp_pair_counter / 2;
  return internal::FinishOptimize(ctx, /*allow_cross_products=*/true);
}

}  // namespace joinopt
