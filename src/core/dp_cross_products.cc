#include "core/dp_cross_products.h"

#include <vector>

#include "bitset/subset_iterator.h"
#include "util/stopwatch.h"

namespace joinopt {

Result<OptimizationResult> DPsizeCP::Optimize(
    const QueryGraph& graph, const CostModel& cost_model) const {
  JOINOPT_RETURN_IF_ERROR(
      internal::ValidateOptimizerInput(graph, /*require_connected=*/false));
  const Stopwatch stopwatch;
  const int n = graph.relation_count();
  if (n > 24) {
    // With cross products every one of the 2^n subsets gets a plan;
    // beyond ~24 relations the table alone is hopeless.
    return Status::InvalidArgument(
        "DPsizeCP materializes all 2^n subsets; refusing n > 24");
  }

  PlanTable table(n, /*dense_limit=*/24);
  OptimizerStats stats;
  internal::SeedLeafPlans(graph, &table, &stats);

  std::vector<std::vector<NodeSet>> plans_by_size(n + 1);
  for (int i = 0; i < n; ++i) {
    plans_by_size[1].push_back(NodeSet::Singleton(i));
  }

  const auto consider = [&](NodeSet s1, NodeSet s2) {
    ++stats.inner_counter;
    if (s1.Intersects(s2)) {
      return;
    }
    stats.csg_cmp_pair_counter += 2;
    const NodeSet combined = s1 | s2;
    const bool existed = table.Find(combined) != nullptr;
    internal::CreateJoinTreeBothOrders(graph, cost_model, s1, s2, &table,
                                       &stats);
    if (!existed) {
      plans_by_size[combined.count()].push_back(combined);
    }
  };

  for (int s = 2; s <= n; ++s) {
    for (int s1 = 1; 2 * s1 <= s; ++s1) {
      const int s2 = s - s1;
      const std::vector<NodeSet>& left_list = plans_by_size[s1];
      const std::vector<NodeSet>& right_list = plans_by_size[s2];
      if (s1 == s2) {
        for (size_t i = 0; i < left_list.size(); ++i) {
          for (size_t j = i + 1; j < left_list.size(); ++j) {
            consider(left_list[i], left_list[j]);
          }
        }
      } else {
        for (const NodeSet s1_set : left_list) {
          for (const NodeSet s2_set : right_list) {
            consider(s1_set, s2_set);
          }
        }
      }
    }
  }

  stats.ono_lohman_counter = stats.csg_cmp_pair_counter / 2;
  stats.elapsed_seconds = stopwatch.ElapsedSeconds();
  return internal::ExtractResult(graph, table, stats);
}

Result<OptimizationResult> DPsubCP::Optimize(
    const QueryGraph& graph, const CostModel& cost_model) const {
  JOINOPT_RETURN_IF_ERROR(
      internal::ValidateOptimizerInput(graph, /*require_connected=*/false));
  const Stopwatch stopwatch;
  const int n = graph.relation_count();
  if (n > 24) {
    return Status::InvalidArgument(
        "DPsubCP enumerates 3^n splits; refusing n > 24");
  }

  PlanTable table(n, /*dense_limit=*/24);
  OptimizerStats stats;
  internal::SeedLeafPlans(graph, &table, &stats);

  const uint64_t limit = (uint64_t{1} << n) - 1;
  for (uint64_t mask = 1; mask <= limit; ++mask) {
    const NodeSet s = NodeSet::FromMask(mask);
    if (s.count() == 1) {
      continue;
    }
    for (ProperSubsetIterator it(s); !it.Done(); it.Next()) {
      ++stats.inner_counter;
      ++stats.csg_cmp_pair_counter;
      internal::CreateJoinTree(graph, cost_model, it.Current(),
                               s - it.Current(), &table, &stats);
    }
  }

  stats.ono_lohman_counter = stats.csg_cmp_pair_counter / 2;
  stats.elapsed_seconds = stopwatch.ElapsedSeconds();
  return internal::ExtractResult(graph, table, stats);
}

}  // namespace joinopt
