#ifndef JOINOPT_CORE_DP_CROSS_PRODUCTS_H_
#define JOINOPT_CORE_DP_CROSS_PRODUCTS_H_

#include "core/optimizer.h"

namespace joinopt {

/// DPsize over the FULL bushy search space including cross products: the
/// connectivity tests of Figure 1 are dropped, so every pair of disjoint
/// subsets is a legal combination. Provided as the baseline the paper
/// contrasts against (Ono & Lohman observe that admitting cross products
/// vastly enlarges the search space) and to let users optimize
/// disconnected query graphs.
///
/// Note: optimal plans may contain cross products even for connected
/// graphs when selectivities make them attractive; validate with
/// PlanValidationOptions{.forbid_cross_products = false}.
class DPsizeCP final : public JoinOrderer {
 public:
  DPsizeCP() = default;

  std::string_view name() const override { return "DPsizeCP"; }

  using JoinOrderer::Optimize;
  Result<OptimizationResult> Optimize(OptimizerContext& ctx) const override;
};

/// DPsub over the full bushy search space including cross products — the
/// original Vance–Maier "rapid bushy" algorithm [SIGMOD '96]: every
/// integer 1..2^n − 1 is a valid set and every strict-subset split a
/// valid combination, so the enumeration runs with no tests at all.
class DPsubCP final : public JoinOrderer {
 public:
  DPsubCP() = default;

  std::string_view name() const override { return "DPsubCP"; }

  using JoinOrderer::Optimize;
  Result<OptimizationResult> Optimize(OptimizerContext& ctx) const override;
};

}  // namespace joinopt

#endif  // JOINOPT_CORE_DP_CROSS_PRODUCTS_H_
