#include "core/dp_parallel.h"

#include <atomic>
#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "bitset/subset_iterator.h"
#include "cost/saturation.h"
#include "graph/connectivity.h"
#include "util/thread_pool.h"

namespace joinopt {
namespace {

/// Worker-local paper counters, folded into ctx.stats() at the end of the
/// run. All three are order-independent sums over fixed candidate sets,
/// which is what keeps the reported counters thread-count-invariant.
struct WorkerCounters {
  uint64_t inner = 0;
  uint64_t csg_cmp = 0;
  uint64_t create_calls = 0;
};

/// Lock-free deadline observation for workers, which must not touch the
/// governor (its tick state is coordinator-owned). Workers poll the
/// governor's monotonic stopwatch on a stride; once one observes the
/// deadline past, every worker winds down and the coordinator promotes
/// the observation via ResourceGovernor::CheckDeadlineNow() at the
/// barrier (monotonic clock: the re-check cannot disagree).
class DeadlineWatch {
 public:
  DeadlineWatch(const ResourceGovernor& governor, double deadline_seconds)
      : governor_(governor), deadline_seconds_(deadline_seconds) {}

  void Poll() {
    if (deadline_seconds_ > 0 &&
        !cancelled_.load(std::memory_order_relaxed) &&
        governor_.ElapsedSeconds() > deadline_seconds_) {
      cancelled_.store(true, std::memory_order_relaxed);
    }
  }

  bool cancelled() const {
    return deadline_seconds_ > 0 && cancelled_.load(std::memory_order_relaxed);
  }

 private:
  const ResourceGovernor& governor_;
  const double deadline_seconds_;
  std::atomic<bool> cancelled_{false};
};

/// How many inner iterations a worker runs between deadline polls.
constexpr uint64_t kWorkerPollStride = 4096;

/// DPsubPar coordinator-side block size: at most this many size-k masks
/// are in flight per fork-join batch, bounding the candidate buffer to a
/// few MB regardless of n.
constexpr uint64_t kBlockMasks = uint64_t{1} << 16;

/// Gosper's hack: the next integer with the same popcount.
uint64_t NextSameCount(uint64_t v) {
  const uint64_t c = v & (0 - v);
  const uint64_t r = v + c;
  return r | (((v ^ r) >> 2) / c);
}

/// Strictly-better total order on candidates for one set: lowest cost,
/// then lexicographic (left, right) masks. Matches MergeLayer's sort so
/// worker-local reductions and the barrier merge pick the same winner.
bool CandidateBeats(const PlanEntry& a, const PlanEntry& b) {
  if (a.cost != b.cost) {
    return a.cost < b.cost;
  }
  if (a.left.mask() != b.left.mask()) {
    return a.left.mask() < b.left.mask();
  }
  return a.right.mask() < b.right.mask();
}

/// The number of threads a parallel orderer actually uses: the resolved
/// OptimizeOptions::threads, clamped to 1 when a trace sink is installed
/// (sinks are user code; all trace dispatch must stay on the coordinator).
int EffectiveThreads(const OptimizerContext& ctx) {
  if (ctx.has_trace()) {
    return 1;
  }
  return ThreadPool::ResolveThreadCount(ctx.options().threads);
}

/// The coordinator-side gate run by MergeLayer after each winner: one
/// governor tick per merged set (the deterministic arrival stream for
/// deadline faults), memo-budget accounting for fresh entries, and the
/// OnPlanInserted trace. Returns false when a limit tripped.
bool MergeGate(OptimizerContext& ctx, const PlanTable::LayerCandidate& winner,
               bool newly_populated) {
  if (ctx.Tick()) {
    return false;
  }
  if (newly_populated) {
    ctx.stats().plans_stored = ctx.table().populated_count();
    if (!ctx.WithinMemoBudget(ctx.table().populated_count())) {
      return false;
    }
    ctx.TracePlanInserted(winner.set, winner.entry.cost,
                          winner.entry.cardinality);
    if (ctx.exhausted()) {
      return false;  // The trace sink threw.
    }
  }
  return true;
}

}  // namespace

Result<OptimizationResult> DPsizePar::Optimize(OptimizerContext& ctx) const {
  JOINOPT_RETURN_IF_ERROR(
      internal::BeginOptimize(ctx, name(), /*require_connected=*/true));
  const QueryGraph& graph = ctx.graph();
  const int n = graph.relation_count();
  const int threads = EffectiveThreads(ctx);

  ctx.InstallTable(internal::MakeAdaptivePlanTable(
      graph, ctx.options().memo_entry_budget, threads));
  OptimizerStats& stats = ctx.stats();
  PlanTable& table = ctx.table();
  bool live = internal::SeedLeafPlans(ctx);

  // Same layer lists as serial DPsize, except each list is rebuilt in
  // ascending mask order at its layer's barrier (the serial creation
  // order is partition-dependent; the set of members is not).
  std::vector<std::vector<NodeSet>> plans_by_size(n + 1);
  plans_by_size[1].reserve(n);
  for (int i = 0; i < n; ++i) {
    plans_by_size[1].push_back(NodeSet::Singleton(i));
  }

  ThreadPool pool(threads);
  DeadlineWatch watch(ctx.governor(), ctx.options().deadline_seconds);
  std::vector<WorkerCounters> counters(pool.thread_count());
  using Reduction = std::unordered_map<NodeSet, PlanEntry, NodeSetHash>;
  std::vector<Reduction> reductions(pool.thread_count());

  for (int k = 2; live && k <= n; ++k) {
    // One task per left operand of one (s1_size, s2_size) split; the
    // worker sweeps the whole right list (or the i < j triangle for the
    // equal-size split, matching serial DPsize's optimized enumeration).
    struct SizeTask {
      int s1_size;
      uint32_t left_index;
    };
    std::vector<SizeTask> tasks;
    for (int s1_size = 1; 2 * s1_size <= k; ++s1_size) {
      const size_t left_count = plans_by_size[s1_size].size();
      for (size_t i = 0; i < left_count; ++i) {
        tasks.push_back({s1_size, static_cast<uint32_t>(i)});
      }
    }

    pool.Run(tasks.size(), [&](uint64_t task_index, int worker) {
      const SizeTask task = tasks[task_index];
      const int s2_size = k - task.s1_size;
      const std::vector<NodeSet>& left_list = plans_by_size[task.s1_size];
      const std::vector<NodeSet>& right_list = plans_by_size[s2_size];
      const NodeSet s1 = left_list[task.left_index];
      const PlanEntry* left = table.Find(s1);
      JOINOPT_DCHECK(left != nullptr);
      WorkerCounters& wc = counters[worker];
      Reduction& reduction = reductions[worker];
      uint64_t since_poll = 0;

      const size_t j_begin =
          task.s1_size == s2_size ? task.left_index + 1 : 0;
      for (size_t j = j_begin; j < right_list.size(); ++j) {
        ++wc.inner;
        if ((++since_poll & (kWorkerPollStride - 1)) == 0) {
          watch.Poll();
          if (watch.cancelled()) {
            return;  // Deadline observed: wind down mid-layer.
          }
        }
        const NodeSet s2 = right_list[j];
        if (s1.Intersects(s2) || !graph.AreConnected(s1, s2)) {
          continue;
        }
        wc.csg_cmp += 2;
        wc.create_calls += 2;
        if (JOINOPT_UNLIKELY(ctx.has_trace())) {
          // Only reachable single-threaded (EffectiveThreads clamps), so
          // the sink still runs on the coordinator.
          ctx.TraceCsgCmpPair(s1, s2);
        }
        const NodeSet combined = s1 | s2;
        // Canonical per-set estimate (split-invariant under saturation);
        // recomputed per surviving pair since workers share no memo.
        const double out_card = ctx.estimator().EstimateSet(combined);
        const PlanEntry* right = table.Find(s2);
        JOINOPT_DCHECK(right != nullptr);
        const CostModel& model = ctx.cost_model();
        PlanEntry candidate;
        candidate.cardinality = out_card;
        // Both operand orders, like serial CreateJoinTreeBothOrders.
        for (int order = 0; order < 2; ++order) {
          const PlanEntry* build = order == 0 ? left : right;
          const PlanEntry* probe = order == 0 ? right : left;
          candidate.left = order == 0 ? s1 : s2;
          candidate.right = order == 0 ? s2 : s1;
          candidate.cost = SaturateCost(
              build->cost + probe->cost +
              model.JoinCost(build->cardinality, probe->cardinality,
                             out_card));
          candidate.op = model.OperatorFor(build->cardinality,
                                           probe->cardinality, out_card);
          const auto [it, inserted] = reduction.try_emplace(combined);
          if (inserted || CandidateBeats(candidate, it->second)) {
            it->second = candidate;
          }
        }
      }
    });

    // Barrier: drain the worker reductions into one candidate list and
    // reconcile deterministically.
    std::vector<PlanTable::LayerCandidate> candidates;
    for (Reduction& reduction : reductions) {
      for (const auto& [set, entry] : reduction) {
        candidates.push_back({set, entry});
      }
      reduction.clear();
    }
    std::vector<NodeSet>& layer = plans_by_size[k];
    live = table.MergeLayer(
        candidates, [&](const PlanTable::LayerCandidate& winner,
                        bool newly_populated) {
          if (!MergeGate(ctx, winner, newly_populated)) {
            return false;
          }
          if (newly_populated) {
            layer.push_back(winner.set);
          }
          return true;
        });
    if (watch.cancelled() && ctx.governor().CheckDeadlineNow()) {
      live = false;
    }
  }

  for (const WorkerCounters& wc : counters) {
    stats.inner_counter += wc.inner;
    stats.csg_cmp_pair_counter += wc.csg_cmp;
    stats.create_join_tree_calls += wc.create_calls;
  }
  stats.ono_lohman_counter = stats.csg_cmp_pair_counter / 2;
  return internal::FinishOptimize(ctx);
}

Result<OptimizationResult> DPsubPar::Optimize(OptimizerContext& ctx) const {
  JOINOPT_RETURN_IF_ERROR(
      internal::BeginOptimize(ctx, name(), /*require_connected=*/true));
  const QueryGraph& graph = ctx.graph();
  const int n = graph.relation_count();
  if (n >= 40) {
    // Same bound as serial DPsub: 2^n masks are infeasible regardless of
    // the thread count.
    return Status::InvalidArgument(
        "DPsubPar enumerates 2^n subsets; refusing n >= 40");
  }
  const int threads = EffectiveThreads(ctx);

  ctx.InstallTable(PlanTable(n, /*dense_limit=*/20,
                             ctx.options().memo_entry_budget, threads));
  OptimizerStats& stats = ctx.stats();
  PlanTable& table = ctx.table();
  bool live = internal::SeedLeafPlans(ctx);

  ThreadPool pool(threads);
  DeadlineWatch watch(ctx.governor(), ctx.options().deadline_seconds);
  std::vector<WorkerCounters> counters(pool.thread_count());

  const uint64_t limit = (uint64_t{1} << n) - 1;
  std::vector<uint64_t> block;
  block.reserve(kBlockMasks);
  struct MaskResult {
    bool valid = false;
    PlanTable::LayerCandidate candidate;
  };
  std::vector<MaskResult> results(kBlockMasks);
  std::vector<PlanTable::LayerCandidate> candidates;

  for (int k = 2; live && k <= n; ++k) {
    // All size-k masks in ascending order (Gosper's hack), processed in
    // blocks so the per-mask result buffer stays bounded.
    uint64_t mask = (uint64_t{1} << k) - 1;
    while (live && mask <= limit) {
      block.clear();
      while (mask <= limit && block.size() < kBlockMasks) {
        block.push_back(mask);
        mask = NextSameCount(mask);
      }

      pool.Run(block.size(), [&](uint64_t task_index, int worker) {
        MaskResult& result = results[task_index];
        result.valid = false;
        const NodeSet s = NodeSet::FromMask(block[task_index]);
        if (!IsConnectedSet(graph, s)) {
          return;  // The additional check (*) of Figure 2.
        }
        WorkerCounters& wc = counters[worker];
        uint64_t since_poll = 0;
        // Replay serial DPsub's per-mask sweep exactly: ascending strict
        // subsets, table-presence connectivity (every strict subset is
        // final — it lives in a lower, already-merged layer), strict-<
        // improvement. The surviving candidate is bit-identical to the
        // entry serial DPsub would have stored.
        PlanEntry best;
        double out_card = 0.0;
        bool reached = false;
        for (ProperSubsetIterator it(s); !it.Done(); it.Next()) {
          ++wc.inner;
          if ((++since_poll & (kWorkerPollStride - 1)) == 0) {
            watch.Poll();
            if (watch.cancelled()) {
              return;  // Deadline observed: drop the partial candidate.
            }
          }
          const NodeSet s1 = it.Current();
          const NodeSet s2 = s - s1;
          const PlanEntry* left = table.Find(s1);
          if (left == nullptr) continue;
          const PlanEntry* right = table.Find(s2);
          if (right == nullptr) continue;
          if (!graph.AreConnected(s1, s2)) {
            continue;
          }
          ++wc.csg_cmp;
          ++wc.create_calls;
          if (JOINOPT_UNLIKELY(ctx.has_trace())) {
            // Single-threaded by the EffectiveThreads clamp.
            ctx.TraceCsgCmpPair(s1, s2);
          }
          if (!reached) {
            out_card = ctx.estimator().EstimateSet(s);
            reached = true;
          }
          const CostModel& model = ctx.cost_model();
          const double cost = SaturateCost(
              left->cost + right->cost +
              model.JoinCost(left->cardinality, right->cardinality,
                             out_card));
          if (cost < best.cost) {
            best.left = s1;
            best.right = s2;
            best.cost = cost;
            best.cardinality = out_card;
            best.op = model.OperatorFor(left->cardinality,
                                        right->cardinality, out_card);
          }
        }
        if (best.has_plan()) {
          result.valid = true;
          result.candidate = {s, best};
        }
      });

      candidates.clear();
      for (size_t i = 0; i < block.size(); ++i) {
        if (results[i].valid) {
          candidates.push_back(results[i].candidate);
        }
      }
      live = table.MergeLayer(
          candidates, [&](const PlanTable::LayerCandidate& winner,
                          bool newly_populated) {
            return MergeGate(ctx, winner, newly_populated);
          });
      if (watch.cancelled() && ctx.governor().CheckDeadlineNow()) {
        live = false;
      }
    }
  }

  for (const WorkerCounters& wc : counters) {
    stats.inner_counter += wc.inner;
    stats.csg_cmp_pair_counter += wc.csg_cmp;
    stats.create_join_tree_calls += wc.create_calls;
  }
  stats.ono_lohman_counter = stats.csg_cmp_pair_counter / 2;
  return internal::FinishOptimize(ctx);
}

}  // namespace joinopt
