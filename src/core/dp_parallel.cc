#include "core/dp_parallel.h"

#include <atomic>
#include <cstdint>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "bitset/subset_iterator.h"
#include "cost/saturation.h"
#include "graph/connectivity.h"
#include "util/thread_pool.h"

namespace joinopt {
namespace {

/// Worker-local paper counters, folded into ctx.stats() at the end of the
/// run. All three are order-independent sums over fixed candidate sets,
/// which is what keeps the reported counters thread-count-invariant.
struct WorkerCounters {
  uint64_t inner = 0;
  uint64_t csg_cmp = 0;
  uint64_t create_calls = 0;
};

/// Lock-free deadline observation for workers, which must not touch the
/// governor (its tick state is coordinator-owned). Workers poll the
/// governor's monotonic stopwatch on a stride; once one observes the
/// deadline past, every worker winds down and the coordinator promotes
/// the observation via ResourceGovernor::CheckDeadlineNow() at the
/// barrier (monotonic clock: the re-check cannot disagree).
class DeadlineWatch {
 public:
  DeadlineWatch(const ResourceGovernor& governor, double deadline_seconds)
      : governor_(governor), deadline_seconds_(deadline_seconds) {}

  void Poll() {
    if (deadline_seconds_ > 0 &&
        !cancelled_.load(std::memory_order_relaxed) &&
        governor_.ElapsedSeconds() > deadline_seconds_) {
      cancelled_.store(true, std::memory_order_relaxed);
    }
  }

  bool cancelled() const {
    return deadline_seconds_ > 0 && cancelled_.load(std::memory_order_relaxed);
  }

 private:
  const ResourceGovernor& governor_;
  const double deadline_seconds_;
  std::atomic<bool> cancelled_{false};
};

/// How many inner iterations a worker runs between deadline polls.
constexpr uint64_t kWorkerPollStride = 4096;

/// DPsubPar coordinator-side block size: at most this many size-k masks
/// are in flight per fork-join batch, bounding the candidate buffer to a
/// few MB regardless of n.
constexpr uint64_t kBlockMasks = uint64_t{1} << 16;

/// Gosper's hack: the next integer with the same popcount.
uint64_t NextSameCount(uint64_t v) {
  const uint64_t c = v & (0 - v);
  const uint64_t r = v + c;
  return r | (((v ^ r) >> 2) / c);
}

/// Worker-local best-candidate reduction for one DPsizePar size layer,
/// keyed by the combined set's mask. This replaces the per-worker
/// std::unordered_map<NodeSet, PlanEntry> of the first parallel
/// implementation, which dominated the whole run (a node allocation plus
/// a hashed probe per operand order per surviving pair).
///
/// Slots are epoch-stamped: BeginLayer bumps the epoch instead of
/// clearing memory, so a layer transition is O(1) and the buffers are
/// reused for the whole run (including the occupied list, whose
/// high-water reservation survives across layers).
///
/// Two placements share the slot layout:
///  * direct — for small n the slot index IS the mask (2^n slots). No
///    probing, no keys to compare; the clique workloads the parallel DP
///    exists for live here.
///  * hashed — open-addressed with linear probing for larger n, grown at
///    2/3 load, never shrunk.
///
/// The slot also memoizes the set's canonical cardinality: EstimateSet
/// runs once per distinct set per worker per layer instead of once per
/// surviving pair — on clique-16 that is 65k estimates instead of 21.5M,
/// the single largest source of the old @1-thread overhead.
class LayerReduction {
 public:
  struct Slot {
    uint64_t mask = 0;
    double cost = 0.0;
    double cardinality = 0.0;
    PlanRef left = kInvalidPlanRef;
    PlanRef right = kInvalidPlanRef;
    JoinOperator op = JoinOperator::kUnspecified;
    uint32_t epoch = 0;
  };

  /// Called once before the first layer. Direct placement when the mask
  /// space fits a few MB of slots; hashed otherwise.
  void Configure(int relation_count) {
    direct_ = relation_count <= kDirectBits;
    if (direct_) {
      slots_.resize(uint64_t{1} << relation_count);
    } else {
      slots_.resize(kInitialHashedSlots);
    }
  }

  void BeginLayer() {
    ++epoch_;
    occupied_.clear();
    live_ = 0;
  }

  /// The slot for `mask`, creating it (epoch-stamping, recording in the
  /// occupied list) when this is its first touch of the layer. `created`
  /// tells the caller to initialize cost/cardinality.
  Slot& Touch(uint64_t mask, bool& created) {
    if (direct_) {
      Slot& slot = slots_[mask];
      created = slot.epoch != epoch_;
      if (created) {
        slot.epoch = epoch_;
        slot.mask = mask;
        occupied_.push_back(static_cast<uint32_t>(mask));
      }
      return slot;
    }
    if ((live_ + 1) * 3 >= slots_.size() * 2) {
      Grow();
    }
    const size_t cap_mask = slots_.size() - 1;
    size_t index = HashMask(mask) & cap_mask;
    while (true) {
      Slot& slot = slots_[index];
      if (slot.epoch != epoch_) {
        created = true;
        slot.epoch = epoch_;
        slot.mask = mask;
        occupied_.push_back(static_cast<uint32_t>(index));
        ++live_;
        return slot;
      }
      if (slot.mask == mask) {
        created = false;
        return slot;
      }
      index = (index + 1) & cap_mask;
    }
  }

  /// Drains this layer's slots into `candidates` (append).
  void Drain(std::vector<PlanTable::LayerCandidate>& candidates) const {
    for (const uint32_t index : occupied_) {
      const Slot& slot = slots_[index];
      candidates.push_back({NodeSet::FromMask(slot.mask), slot.cost,
                            slot.cardinality, slot.left, slot.right,
                            slot.op});
    }
  }

  size_t occupied_count() const { return occupied_.size(); }

 private:
  static constexpr int kDirectBits = 17;  // 2^17 slots ~ 7 MB per worker.
  static constexpr size_t kInitialHashedSlots = size_t{1} << 12;

  static uint64_t HashMask(uint64_t mask) {
    return NodeSetHash{}(NodeSet::FromMask(mask));
  }

  void Grow() {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(old.size() * 2, Slot{});
    const size_t cap_mask = slots_.size() - 1;
    std::vector<uint32_t> old_occupied = std::move(occupied_);
    occupied_.clear();
    occupied_.reserve(old_occupied.size() * 2);
    for (const uint32_t old_index : old_occupied) {
      const Slot& slot = old[old_index];
      size_t index = HashMask(slot.mask) & cap_mask;
      while (slots_[index].epoch == epoch_) {
        index = (index + 1) & cap_mask;
      }
      slots_[index] = slot;
      occupied_.push_back(static_cast<uint32_t>(index));
    }
  }

  bool direct_ = true;
  std::vector<Slot> slots_;
  std::vector<uint32_t> occupied_;
  size_t live_ = 0;
  uint32_t epoch_ = 0;
};

/// The number of threads a parallel orderer actually uses: the resolved
/// OptimizeOptions::threads, clamped to 1 when a trace sink is installed
/// (sinks are user code; all trace dispatch must stay on the coordinator).
int EffectiveThreads(const OptimizerContext& ctx) {
  if (ctx.has_trace()) {
    return 1;
  }
  return ThreadPool::ResolveThreadCount(ctx.options().threads);
}

/// The coordinator-side gate run by MergeLayer after each winner: one
/// governor tick per merged set (the deterministic arrival stream for
/// deadline faults), memo-budget accounting for fresh entries, and the
/// OnPlanInserted trace. Returns false when a limit tripped.
bool MergeGate(OptimizerContext& ctx, const PlanTable::LayerCandidate& winner,
               bool newly_populated) {
  if (ctx.Tick()) {
    return false;
  }
  if (newly_populated) {
    ctx.stats().plans_stored = ctx.table().populated_count();
    if (!ctx.WithinMemoBudget(ctx.table().populated_count())) {
      return false;
    }
    ctx.TracePlanInserted(winner.set, winner.cost, winner.cardinality);
    if (ctx.exhausted()) {
      return false;  // The trace sink threw.
    }
  }
  return true;
}

}  // namespace

Result<OptimizationResult> DPsizePar::Optimize(OptimizerContext& ctx) const {
  JOINOPT_RETURN_IF_ERROR(
      internal::BeginOptimize(ctx, name(), /*require_connected=*/true));
  const QueryGraph& graph = ctx.graph();
  const int n = graph.relation_count();
  const int threads = EffectiveThreads(ctx);

  ctx.InstallTable(internal::MakeAdaptivePlanTable(
      graph, ctx.options().memo_entry_budget));
  OptimizerStats& stats = ctx.stats();
  PlanTable& table = ctx.table();
  bool live = internal::SeedLeafPlans(ctx);

  ThreadPool pool(threads);
  DeadlineWatch watch(ctx.governor(), ctx.options().deadline_seconds);
  std::vector<WorkerCounters> counters(pool.thread_count());
  std::vector<LayerReduction> reductions(pool.thread_count());
  for (LayerReduction& reduction : reductions) {
    reduction.Configure(n);
  }
  // The barrier's candidate buffer is reused across layers; its capacity
  // ratchets up to the run's high-water mark instead of reallocating
  // from scratch every layer.
  std::vector<PlanTable::LayerCandidate> candidates;

  for (int k = 2; live && k <= n; ++k) {
    // Layers below k are complete: workers stream their frozen slabs
    // while the coordinator merges into slab k at the barrier.
    table.FreezeLayer(k - 1);
    // One task per left operand of one (s1_size, s2_size) split; the
    // worker sweeps the whole right slab (or the i < j triangle for the
    // equal-size split, matching serial DPsize's optimized enumeration).
    struct SizeTask {
      int s1_size;
      uint32_t left_offset;
    };
    std::vector<SizeTask> tasks;
    for (int s1_size = 1; 2 * s1_size <= k; ++s1_size) {
      const uint32_t left_count = table.LayerSize(s1_size);
      for (uint32_t i = 0; i < left_count; ++i) {
        tasks.push_back({s1_size, i});
      }
    }
    for (LayerReduction& reduction : reductions) {
      reduction.BeginLayer();
    }

    pool.Run(tasks.size(), [&](uint64_t task_index, int worker) {
      const SizeTask task = tasks[task_index];
      const int s2_size = k - task.s1_size;
      const PlanRef left_ref = MakePlanRef(task.s1_size, task.left_offset);
      const NodeSet s1 = table.set(left_ref);
      const double left_cost = table.cost(left_ref);
      const double left_card = table.cardinality(left_ref);
      const uint32_t right_count = table.LayerSize(s2_size);
      // Stream the frozen right slab's columns directly (no per-element
      // slab dispatch) — this loop runs 1.2e9 times on clique-16.
      const NodeSet* right_sets = table.LayerSets(s2_size);
      const double* right_costs = table.LayerCosts(s2_size);
      const double* right_cards = table.LayerCards(s2_size);
      WorkerCounters& wc = counters[worker];
      LayerReduction& reduction = reductions[worker];
      const CostModel& model = ctx.cost_model();
      uint64_t since_poll = 0;

      const uint32_t j_begin =
          task.s1_size == s2_size ? task.left_offset + 1 : 0;
      for (uint32_t j = j_begin; j < right_count; ++j) {
        ++wc.inner;
        if ((++since_poll & (kWorkerPollStride - 1)) == 0) {
          watch.Poll();
          if (watch.cancelled()) {
            return;  // Deadline observed: wind down mid-layer.
          }
        }
        const NodeSet s2 = right_sets[j];
        if (s1.Intersects(s2) || !graph.AreConnected(s1, s2)) {
          continue;
        }
        const PlanRef right_ref = MakePlanRef(s2_size, j);
        wc.csg_cmp += 2;
        wc.create_calls += 2;
        if (JOINOPT_UNLIKELY(ctx.has_trace())) {
          // Only reachable single-threaded (EffectiveThreads clamps), so
          // the sink still runs on the coordinator.
          ctx.TraceCsgCmpPair(s1, s2);
        }
        const NodeSet combined = s1 | s2;
        bool created = false;
        LayerReduction::Slot& slot =
            reduction.Touch(combined.mask(), created);
        if (created) {
          // Canonical per-set estimate (split-invariant under
          // saturation), memoized in the reduction slot: one scan per
          // distinct set per layer, not one per surviving pair.
          slot.cardinality = ctx.estimator().EstimateSet(combined);
          slot.cost = std::numeric_limits<double>::infinity();
        }
        const double right_cost = right_costs[j];
        const double right_card = right_cards[j];
        // Both operand orders, like serial CreateJoinTreeBothOrders; the
        // relax uses the same branch-free (cost, left, right) total
        // order as MergeLayer, so worker-local reductions and the
        // barrier pick the same winner no matter the partitioning.
        const double cost_lr = SaturateCost(
            left_cost + right_cost +
            model.JoinCost(left_card, right_card, slot.cardinality));
        if (PlanCandidateBeats(cost_lr, left_ref, right_ref, slot.cost,
                               slot.left, slot.right)) {
          slot.cost = cost_lr;
          slot.left = left_ref;
          slot.right = right_ref;
          slot.op =
              model.OperatorFor(left_card, right_card, slot.cardinality);
        }
        const double cost_rl = SaturateCost(
            left_cost + right_cost +
            model.JoinCost(right_card, left_card, slot.cardinality));
        if (PlanCandidateBeats(cost_rl, right_ref, left_ref, slot.cost,
                               slot.left, slot.right)) {
          slot.cost = cost_rl;
          slot.left = right_ref;
          slot.right = left_ref;
          slot.op =
              model.OperatorFor(right_card, left_card, slot.cardinality);
        }
      }
    });

    // Barrier: drain the worker reductions into one candidate list and
    // reconcile deterministically.
    size_t drained = 0;
    for (const LayerReduction& reduction : reductions) {
      drained += reduction.occupied_count();
    }
    candidates.clear();
    candidates.reserve(drained);
    for (const LayerReduction& reduction : reductions) {
      reduction.Drain(candidates);
    }
    live = table.MergeLayer(
        candidates, [&](const PlanTable::LayerCandidate& winner,
                        bool newly_populated) {
          return MergeGate(ctx, winner, newly_populated);
        });
    if (JOINOPT_UNLIKELY(!live && !ctx.exhausted())) {
      // MergeLayer stopped without the gate tripping: the size layer
      // overflowed the 26-bit PlanRef offset space. Promote it into the
      // governor's sticky typed state so salvage/policies see it as a
      // budget exhaustion.
      ctx.governor().InjectFailure(Status::BudgetExceeded(
          "plan table layer " + std::to_string(k) +
          " overflowed the 26-bit PlanRef offset space"));
    }
    if (watch.cancelled() && ctx.governor().CheckDeadlineNow()) {
      live = false;
    }
  }

  for (const WorkerCounters& wc : counters) {
    stats.inner_counter += wc.inner;
    stats.csg_cmp_pair_counter += wc.csg_cmp;
    stats.create_join_tree_calls += wc.create_calls;
  }
  stats.ono_lohman_counter = stats.csg_cmp_pair_counter / 2;
  return internal::FinishOptimize(ctx);
}

Result<OptimizationResult> DPsubPar::Optimize(OptimizerContext& ctx) const {
  JOINOPT_RETURN_IF_ERROR(
      internal::BeginOptimize(ctx, name(), /*require_connected=*/true));
  const QueryGraph& graph = ctx.graph();
  const int n = graph.relation_count();
  if (n >= 40) {
    // Same bound as serial DPsub: 2^n masks are infeasible regardless of
    // the thread count.
    return Status::InvalidArgument(
        "DPsubPar enumerates 2^n subsets; refusing n >= 40");
  }
  const int threads = EffectiveThreads(ctx);

  ctx.InstallTable(PlanTable(n, /*dense_limit=*/20,
                             ctx.options().memo_entry_budget));
  OptimizerStats& stats = ctx.stats();
  PlanTable& table = ctx.table();
  bool live = internal::SeedLeafPlans(ctx);

  ThreadPool pool(threads);
  DeadlineWatch watch(ctx.governor(), ctx.options().deadline_seconds);
  std::vector<WorkerCounters> counters(pool.thread_count());

  const uint64_t limit = (uint64_t{1} << n) - 1;
  std::vector<uint64_t> block;
  block.reserve(kBlockMasks);
  struct MaskResult {
    bool valid = false;
    PlanTable::LayerCandidate candidate;
  };
  std::vector<MaskResult> results(kBlockMasks);
  std::vector<PlanTable::LayerCandidate> candidates;

  for (int k = 2; live && k <= n; ++k) {
    // Every strict subset of a size-k mask lives in a lower,
    // already-merged layer, so the lower slabs are frozen for the
    // duration of this layer's blocks.
    table.FreezeLayer(k - 1);
    // All size-k masks in ascending order (Gosper's hack), processed in
    // blocks so the per-mask result buffer stays bounded.
    uint64_t mask = (uint64_t{1} << k) - 1;
    while (live && mask <= limit) {
      block.clear();
      while (mask <= limit && block.size() < kBlockMasks) {
        block.push_back(mask);
        mask = NextSameCount(mask);
      }

      pool.Run(block.size(), [&](uint64_t task_index, int worker) {
        MaskResult& result = results[task_index];
        result.valid = false;
        const NodeSet s = NodeSet::FromMask(block[task_index]);
        if (!IsConnectedSet(graph, s)) {
          return;  // The additional check (*) of Figure 2.
        }
        WorkerCounters& wc = counters[worker];
        const CostModel& model = ctx.cost_model();
        uint64_t since_poll = 0;
        // Replay serial DPsub's per-mask sweep exactly: ascending strict
        // subsets, table-presence connectivity (every strict subset is
        // final — it lives in a lower, already-merged layer), strict-<
        // improvement. The surviving candidate is bit-identical to the
        // entry serial DPsub would have stored.
        PlanTable::LayerCandidate best;
        best.set = s;
        best.cost = std::numeric_limits<double>::infinity();
        double out_card = 0.0;
        bool reached = false;
        for (ProperSubsetIterator it(s); !it.Done(); it.Next()) {
          ++wc.inner;
          if ((++since_poll & (kWorkerPollStride - 1)) == 0) {
            watch.Poll();
            if (watch.cancelled()) {
              return;  // Deadline observed: drop the partial candidate.
            }
          }
          const NodeSet s1 = it.Current();
          const NodeSet s2 = s - s1;
          const PlanRef left = table.Find(s1);
          if (left == kInvalidPlanRef) continue;
          const PlanRef right = table.Find(s2);
          if (right == kInvalidPlanRef) continue;
          if (!graph.AreConnected(s1, s2)) {
            continue;
          }
          ++wc.csg_cmp;
          ++wc.create_calls;
          if (JOINOPT_UNLIKELY(ctx.has_trace())) {
            // Single-threaded by the EffectiveThreads clamp.
            ctx.TraceCsgCmpPair(s1, s2);
          }
          if (!reached) {
            out_card = ctx.estimator().EstimateSet(s);
            reached = true;
          }
          const double cost = SaturateCost(
              table.cost(left) + table.cost(right) +
              model.JoinCost(table.cardinality(left),
                             table.cardinality(right), out_card));
          if (cost < best.cost) {
            best.left = left;
            best.right = right;
            best.cost = cost;
            best.cardinality = out_card;
            best.op = model.OperatorFor(table.cardinality(left),
                                        table.cardinality(right), out_card);
          }
        }
        if (best.left != kInvalidPlanRef) {
          result.valid = true;
          result.candidate = best;
        }
      });

      candidates.clear();
      for (size_t i = 0; i < block.size(); ++i) {
        if (results[i].valid) {
          candidates.push_back(results[i].candidate);
        }
      }
      live = table.MergeLayer(
          candidates, [&](const PlanTable::LayerCandidate& winner,
                          bool newly_populated) {
            return MergeGate(ctx, winner, newly_populated);
          });
      if (JOINOPT_UNLIKELY(!live && !ctx.exhausted())) {
        // Non-gate merge stop: PlanRef offset overflow (see DPsizePar).
        ctx.governor().InjectFailure(Status::BudgetExceeded(
            "plan table layer " + std::to_string(k) +
            " overflowed the 26-bit PlanRef offset space"));
      }
      if (watch.cancelled() && ctx.governor().CheckDeadlineNow()) {
        live = false;
      }
    }
  }

  for (const WorkerCounters& wc : counters) {
    stats.inner_counter += wc.inner;
    stats.csg_cmp_pair_counter += wc.csg_cmp;
    stats.create_join_tree_calls += wc.create_calls;
  }
  stats.ono_lohman_counter = stats.csg_cmp_pair_counter / 2;
  return internal::FinishOptimize(ctx);
}

}  // namespace joinopt
