#ifndef JOINOPT_CORE_DP_PARALLEL_H_
#define JOINOPT_CORE_DP_PARALLEL_H_

#include "core/optimizer.h"

namespace joinopt {

/// Intra-query parallel variants of the paper's two size-layered DPs.
///
/// Both exploit the same barrier structure: every plan of size k combines
/// only plans of sizes < k, so the size-k layer is embarrassingly
/// parallel once the lower layers are final. Each layer fans out across a
/// reusable fork-join pool (util/thread_pool.h); workers stream the
/// frozen lower-layer slabs by PlanRef and accumulate best candidates in
/// epoch-stamped per-thread reductions, and the coordinator reconciles
/// them at the layer barrier through PlanTable::MergeLayer with a
/// total-order tie-break (lowest cost, then lexicographic (left, right)
/// child refs).
///
/// Determinism: the merged table — and the OutcomeSignature — is
/// bit-for-bit identical for every thread count, because each set's
/// winner is the minimum of a fixed candidate multiset under a total
/// order, which no work partition can change. DPsubPar moreover
/// replicates serial DPsub's ascending-subset evaluation per set, so its
/// signature matches serial DPsub exactly; DPsizePar matches serial
/// DPsize's signature (cost/counters), though the recorded plan SHAPE may
/// differ from serial on exact-cost ties. The only documented exception
/// is a run interrupted by the wall-clock deadline, which is
/// timing-dependent exactly like the serial orderers' deadline_seconds.
///
/// Resource-limit contract: all governor interaction (deadline ticks,
/// memo-budget checks, fault-injection arrivals, trace dispatch) happens
/// on the coordinator thread in ascending set order, so budgets, faults,
/// and traces behave deterministically and thread-count-independently.
/// Workers observe a blown deadline through a lock-free watch polled on a
/// stride and stop early; the coordinator then promotes the observation
/// into the governor at the barrier. When a trace sink is installed the
/// effective thread count is clamped to 1 (sinks are user code with no
/// thread-safety contract); OnPruned is not emitted by the parallel
/// orderers (rejected candidates die inside worker-local reductions).

/// Parallel DPsize: each size layer's (smaller, larger) list pairs are
/// fanned out one left-operand at a time; workers price both operand
/// orders into per-thread reduction maps.
class DPsizePar final : public JoinOrderer {
 public:
  std::string_view name() const override { return "DPsizePar"; }

  using JoinOrderer::Optimize;
  Result<OptimizationResult> Optimize(OptimizerContext& ctx) const override;
};

/// Parallel DPsub: the size-k masks (Gosper enumeration, blocked to bound
/// transient memory) fan out one mask per task; each worker replays
/// serial DPsub's ascending strict-subset sweep for its mask against the
/// finalized lower layers, producing at most one candidate per mask.
class DPsubPar final : public JoinOrderer {
 public:
  std::string_view name() const override { return "DPsubPar"; }

  using JoinOrderer::Optimize;
  Result<OptimizationResult> Optimize(OptimizerContext& ctx) const override;
};

}  // namespace joinopt

#endif  // JOINOPT_CORE_DP_PARALLEL_H_
