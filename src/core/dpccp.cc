#include "core/dpccp.h"

#include <utility>

#include "enumerate/cmp.h"
#include "graph/bfs_numbering.h"

namespace joinopt {

Result<OptimizationResult> DPccp::Optimize(OptimizerContext& ctx) const {
  JOINOPT_RETURN_IF_ERROR(
      internal::BeginOptimize(ctx, name(), /*require_connected=*/true));
  const QueryGraph& graph = ctx.graph();

  // Establish the BFS-numbering precondition of EnumerateCsg/EnumerateCmp.
  Result<BfsNumbering> numbering = ComputeBfsNumbering(graph, /*start=*/0);
  JOINOPT_RETURN_IF_ERROR(numbering.status());
  const bool identity = numbering->IsIdentity();
  const QueryGraph relabeled_storage =
      identity ? QueryGraph() : RelabelGraph(graph, *numbering);
  // The numbering rides along so per-set estimates are computed in the
  // ORIGINAL label order — bit-identical to the non-relabeling DPs.
  const WorkGraphScope scope(ctx, identity ? graph : relabeled_storage,
                             identity ? nullptr : &numbering->new_to_old);
  const QueryGraph& work_graph = ctx.work_graph();

  ctx.InstallTable(internal::MakeAdaptivePlanTable(
      work_graph, ctx.options().memo_entry_budget));
  OptimizerStats& stats = ctx.stats();
  if (internal::SeedLeafPlans(ctx)) {
    EnumerateCsgCmpPairsUntil(work_graph, [&](NodeSet s1, NodeSet s2) {
      ++stats.inner_counter;
      ++stats.ono_lohman_counter;
      ctx.TraceCsgCmpPair(s1, s2);
      if (!internal::CreateJoinTreeBothOrders(ctx, s1, s2)) {
        return false;  // Memo budget tripped: unwind the enumeration.
      }
      return !ctx.Tick();
    });
  }
  stats.csg_cmp_pair_counter = 2 * stats.ono_lohman_counter;

  // FinishOptimize runs inside the WorkGraphScope: the memo (and any
  // salvaged completion of it) speaks the BFS numbering, and the relabel
  // below applies to best-effort plans exactly like exact ones.
  Result<OptimizationResult> result = internal::FinishOptimize(ctx);
  JOINOPT_RETURN_IF_ERROR(result.status());
  if (!identity) {
    result->plan.RelabelLeaves(numbering->new_to_old);
  }
  return result;
}

}  // namespace joinopt
