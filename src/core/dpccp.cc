#include "core/dpccp.h"

#include <utility>

#include "enumerate/cmp.h"
#include "graph/bfs_numbering.h"
#include "util/stopwatch.h"

namespace joinopt {

Result<OptimizationResult> DPccp::Optimize(const QueryGraph& graph,
                                           const CostModel& cost_model) const {
  JOINOPT_RETURN_IF_ERROR(
      internal::ValidateOptimizerInput(graph, /*require_connected=*/true));
  const Stopwatch stopwatch;

  // Establish the BFS-numbering precondition of EnumerateCsg/EnumerateCmp.
  Result<BfsNumbering> numbering = ComputeBfsNumbering(graph, /*start=*/0);
  JOINOPT_RETURN_IF_ERROR(numbering.status());
  const bool identity = numbering->IsIdentity();
  const QueryGraph relabeled_storage =
      identity ? QueryGraph() : RelabelGraph(graph, *numbering);
  const QueryGraph& work_graph = identity ? graph : relabeled_storage;

  PlanTable table = internal::MakeAdaptivePlanTable(work_graph);
  OptimizerStats stats;
  internal::SeedLeafPlans(work_graph, &table, &stats);

  EnumerateCsgCmpPairs(work_graph, [&](NodeSet s1, NodeSet s2) {
    ++stats.inner_counter;
    ++stats.ono_lohman_counter;
    internal::CreateJoinTreeBothOrders(work_graph, cost_model, s1, s2, &table,
                                       &stats);
  });
  stats.csg_cmp_pair_counter = 2 * stats.ono_lohman_counter;
  stats.elapsed_seconds = stopwatch.ElapsedSeconds();

  Result<OptimizationResult> result =
      internal::ExtractResult(work_graph, table, stats);
  JOINOPT_RETURN_IF_ERROR(result.status());
  if (!identity) {
    result->plan.RelabelLeaves(numbering->new_to_old);
  }
  return result;
}

}  // namespace joinopt
