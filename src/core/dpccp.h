#ifndef JOINOPT_CORE_DPCCP_H_
#define JOINOPT_CORE_DPCCP_H_

#include "core/optimizer.h"

namespace joinopt {

/// DPccp (Figure 4 of the paper): the paper's new algorithm. It
/// enumerates exactly the csg-cmp-pairs of the query graph — the lower
/// bound for any cross-product-free DP join orderer — via EnumerateCsg /
/// EnumerateCmp (Section 3), and prices both join orders of each pair.
///
/// InnerCounter semantics: incremented once per csg-cmp-pair, so at
/// termination InnerCounter == OnoLohmanCounter == #ccp / 2.
///
/// The enumeration's correctness proofs require the nodes to be numbered
/// breadth-first; DPccp computes a BFS numbering internally, runs on the
/// relabeled graph, and maps the final plan back to the caller's
/// numbering, so callers may use any numbering.
class DPccp final : public JoinOrderer {
 public:
  DPccp() = default;

  std::string_view name() const override { return "DPccp"; }

  using JoinOrderer::Optimize;
  Result<OptimizationResult> Optimize(OptimizerContext& ctx) const override;
};

}  // namespace joinopt

#endif  // JOINOPT_CORE_DPCCP_H_
