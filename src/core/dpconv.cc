#include "core/dpconv.h"

#include <algorithm>
#include <limits>
#include <vector>

#include "graph/connectivity.h"

namespace joinopt {

namespace {

constexpr double kUnreached = std::numeric_limits<double>::infinity();

/// Advances a Gosper sweep: the next mask with the same popcount, in
/// ascending order. The caller's loop bound handles the final overflow.
inline uint64_t NextSameCount(uint64_t mask) {
  const uint64_t low = mask & (~mask + 1);
  const uint64_t carry = mask + low;
  return carry | (((mask ^ carry) >> 2) / low);
}

}  // namespace

Result<OptimizationResult> DPconv::Optimize(OptimizerContext& ctx) const {
  JOINOPT_RETURN_IF_ERROR(
      internal::BeginOptimize(ctx, name(), /*require_connected=*/true));
  // Cout only: the subset-convolution identity prices a partition as
  // C(T) + C(S∖T) + |⋈ S|, which is exactly Cout's recurrence. For any
  // other model (asymmetric build/probe terms, operator-dependent costs)
  // the winning split of the sum is NOT the winning plan, and silently
  // returning a suboptimal tree is worse than refusing.
  if (ctx.cost_model().name() != "Cout") {
    return Status::InvalidArgument(
        "DPconv requires the Cout cost model (subset convolution prices "
        "partitions, not operator orders); got \"" +
        std::string(ctx.cost_model().name()) + "\"");
  }
  const QueryGraph& graph = ctx.graph();
  const int n = graph.relation_count();
  if (n > 24) {
    // The workspace materializes all 2^n masks (vs. DPsub's 2^n loop
    // without the array): 128 MiB of doubles at n = 24 is the ceiling.
    return Status::InvalidArgument(
        "DPconv materializes a dense 2^n cost workspace; refusing n > 24");
  }

  ctx.InstallTable(
      PlanTable(n, /*dense_limit=*/20, ctx.options().memo_entry_budget));
  OptimizerStats& stats = ctx.stats();
  PlanTable& table = ctx.table();
  bool live = internal::SeedLeafPlans(ctx);

  const uint64_t size = uint64_t{1} << n;
  // cost[mask] mirrors the memo's final cost column: 0 for singletons,
  // the winning saturated Cout for every materialized connected set, and
  // +inf everywhere else. All real costs saturate at 1e300 < inf, so
  // disconnected halves poison their candidate sums and can never win
  // the min — the branch-free connectivity masking of the sweep.
  std::vector<double> cost(size, kUnreached);
  for (int i = 0; i < n; ++i) {
    cost[uint64_t{1} << i] = 0.0;
  }

  // Ranked min-plus zeta transforms, rank-major: zeta[(j-2)*size + mask]
  // holds ζ_j(mask) for j in [2, n-1]. ζ_1 ≡ 0 (every singleton costs
  // 0), so it is never stored. Gated to dense graphs where the 3^n
  // sweep dominates the n²·2^n transform cost; the gate is a pure
  // function of the graph, so counters stay deterministic per input.
  const bool zeta_enabled = use_zeta_pruning_ && n >= 10 && n <= 17 &&
                            4 * graph.edge_count() >= n * (n - 1);
  std::vector<double> zeta;
  if (zeta_enabled) {
    zeta.assign(static_cast<size_t>(n - 2) * size, kUnreached);
  }

  // Strided deadline ticks inside the sweeps (DPsub's cadence: the
  // governor's own 8k countdown composes on top), plus one unconditional
  // tick per layer boundary — the coherent-memo arrival the anytime
  // suite pins. Each materialized set holds its FINAL plan the moment it
  // is registered, so even a mid-layer stop leaves a salvageable memo.
  constexpr uint64_t kTickStride = 256;
  uint64_t since_tick = 0;

  for (int k = 2; live && k <= n; ++k) {
    table.FreezeLayer(k - 1);
    for (uint64_t mask = (uint64_t{1} << k) - 1; live && mask < size;
         mask = NextSameCount(mask)) {
      if ((++since_tick & (kTickStride - 1)) == 0 && ctx.Tick()) {
        live = false;
        break;
      }
      const NodeSet s = NodeSet::FromMask(mask);
      if (!IsConnectedSet(graph, s)) {
        continue;  // The masking of the convolution to connected sets.
      }

      // Exact lower bound on every split's sum via the relaxed (non-
      // disjoint) convolution of the ranked transforms. -inf when the
      // machinery is off: the early exit then never fires.
      double lower_bound = -kUnreached;
      if (zeta_enabled) {
        lower_bound = k == 2 ? 0.0 : zeta[(k - 3) * size + mask];  // j = 1
        for (int j = 2; 2 * j <= k; ++j) {
          lower_bound = std::min(lower_bound, zeta[(j - 2) * size + mask] +
                                                  zeta[(k - j - 2) * size +
                                                       mask]);
        }
      }

      // Lowbit-anchored Vance–Maier sweep: T always contains lowbit(S),
      // so each unordered partition arises exactly once. U = rest is
      // included on purpose — it pairs S with the empty set, whose +inf
      // workspace slot keeps the loop branch-free.
      const uint64_t low = mask & (~mask + 1);
      const uint64_t rest = mask ^ low;
      double best_sum = kUnreached;
      uint64_t best_left = 0;
      for (uint64_t u = 0;;) {
        ++stats.inner_counter;
        const uint64_t left = low | u;
        const double sum = cost[left] + cost[mask ^ left];
        if (sum < best_sum) {
          best_sum = sum;
          best_left = left;
          if (sum <= lower_bound) {
            break;  // No split can beat the bound; first-minimal found.
          }
        }
        u = (u - rest) & rest;
        if (u == 0) {
          break;
        }
        if ((++since_tick & (kTickStride - 1)) == 0 && ctx.Tick()) {
          live = false;
          break;
        }
      }
      if (!live) {
        break;
      }
      // A connected S always has a partition into two connected halves
      // (drop a spanning-tree leaf), so best_sum is finite here.
      const NodeSet s1 = NodeSet::FromMask(best_left);
      const NodeSet s2 = NodeSet::FromMask(mask ^ best_left);
      ++stats.csg_cmp_pair_counter;
      ctx.TraceCsgCmpPair(s1, s2);
      if (!internal::CreateJoinTree(ctx, s1, s2)) {
        live = false;
        break;
      }
      // Mirror the memo's saturated cost (sum + |⋈ S| through the shared
      // CreateJoinTree arithmetic) so higher layers convolve the exact
      // doubles the other DPs store.
      cost[mask] = table.cost(table.Find(s));
    }
    if (live && ctx.Tick()) {
      live = false;  // Layer-boundary tick (coherent-memo arrival).
    }

    // Fold the completed layer into its ranked transform: ζ_k(S) =
    // min{cost[T] : T ⊆ S, |T| = k} via the standard subset-sum DP.
    // Layer n has no consumers (and rank n-1 feeds only layer n's j = 1
    // term), so ranks stop at n-1.
    if (zeta_enabled && live && k < n) {
      double* z = zeta.data() + (k - 2) * size;
      for (uint64_t mask = (uint64_t{1} << k) - 1; mask < size;
           mask = NextSameCount(mask)) {
        z[mask] = cost[mask];
      }
      for (int b = 0; live && b < n; ++b) {
        const uint64_t bit = uint64_t{1} << b;
        for (uint64_t m = bit; m < size; ++m) {
          m |= bit;  // Skip straight to the next mask containing b.
          z[m] = std::min(z[m], z[m ^ bit]);
        }
        if (ctx.Tick()) {
          live = false;  // The transform is deadline-relevant work too.
        }
      }
    }
  }

  stats.ono_lohman_counter = stats.csg_cmp_pair_counter;
  return internal::FinishOptimize(ctx);
}

}  // namespace joinopt
