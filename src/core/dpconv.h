#ifndef JOINOPT_CORE_DPCONV_H_
#define JOINOPT_CORE_DPCONV_H_

#include "core/optimizer.h"

namespace joinopt {

/// DPconv ("DPconv: Super-Polynomially Faster Join Ordering",
/// arXiv 2409.08013): the layered DP reformulated as min-plus subset
/// convolution over a dense per-mask cost workspace.
///
/// For Cout the cost of the best plan for a connected set S is
///
///     C(S) = |⋈ S| + min over partitions S = T ⊎ (S∖T)
///                    of C(T) + C(S∖T)
///
/// i.e. layer k of the DP is the min-plus subset convolution of the
/// lower layers with itself, shifted by the set's own cardinality. The
/// inner minimization runs over a dense `cost[mask]` array instead of
/// the memo: one lowbit-anchored Vance–Maier subset sweep per connected
/// set (each unordered partition exactly once, ~3^n/2 array probes
/// total) with no hashing, no interning, and no per-candidate trace
/// dispatch — only each set's WINNING split is materialized into the
/// slab `PlanTable` via the shared CreateJoinTree arithmetic, so the
/// stored costs are bit-identical to DPccp/DPsub/DPsize on every input.
///
/// Zeta-transform pruning: after layer j completes, its costs are folded
/// into a rank-j min-plus zeta transform ζ_j(S) = min{C(T) : T ⊆ S,
/// |T| = j}. At layer k the relaxed convolution lb(S) = min_j ζ_j(S) +
/// ζ_{k−j}(S) is an exact lower bound on every split of S (it drops the
/// disjointness constraint), so the sweep stops as soon as its running
/// best reaches lb. Stopping cannot change the winner: updates are
/// strict, so the running best is the FIRST split attaining the final
/// minimum — the same split the unpruned sweep selects. Full fast subset
/// convolution à la Björklund is intentionally NOT used: Möbius
/// inversion needs additive inverses, which (min,+) lacks, and the
/// quantized O(2^n·M) workaround would break the bit-identical-cost
/// contract (see DESIGN.md §12). The ranked transforms cost O(n²·2^n)
/// and are gated to dense graphs (n in [10, 17], edge density ≥ 1/2)
/// where the 3^n sweep actually dominates.
///
/// Cross products never arise: the sweep skips disconnected S (DPsub's
/// bitset-BFS connectivity test), and for connected S any partition into
/// two connected halves is automatically joined by an edge (a spanning
/// path of S crosses every cut), so +inf-poisoned workspace entries are
/// the only masking the inner loop needs — disconnected halves carry
/// C = +inf and can never win the min.
///
/// Contract: Cout only — any other cost model is rejected with a typed
/// kInvalidArgument at Optimize entry (for asymmetric models the
/// convolution identity does not hold and a silently suboptimal plan is
/// not an acceptable failure mode). n > 24 is refused the same way (the
/// dense workspace materializes all 2^n masks). Deadline ticks run at
/// convolution-layer boundaries (the coherent-memo arrivals the anytime
/// suite pins) plus strided inside the sweeps; memo budget and layer
/// overflow surface through the shared CreateJoinTree path, and an
/// interrupted run salvages through internal::FinishOptimize like every
/// other memo-based orderer.
///
/// Counter semantics: inner_counter counts subset-sweep probes (pruning
/// shortens it deterministically); csg_cmp_pair_counter counts PRICED
/// pairs — exactly one winning split per connected set — and
/// ono_lohman_counter equals it (each unordered pair is priced once).
class DPconv final : public JoinOrderer {
 public:
  /// `use_zeta_pruning` keeps the ranked zeta transforms and the
  /// lower-bound early exit (default). The ablation variant sweeps every
  /// split; plans and costs are identical either way (only
  /// inner_counter and wall-clock differ), which the unit suite pins.
  explicit DPconv(bool use_zeta_pruning = true)
      : use_zeta_pruning_(use_zeta_pruning) {}

  std::string_view name() const override { return "DPconv"; }

  using JoinOrderer::Optimize;
  Result<OptimizationResult> Optimize(OptimizerContext& ctx) const override;

 private:
  bool use_zeta_pruning_;
};

}  // namespace joinopt

#endif  // JOINOPT_CORE_DPCONV_H_
