#include "core/dpsize.h"

#include <vector>

#include "util/stopwatch.h"

namespace joinopt {

Result<OptimizationResult> DPsize::Optimize(const QueryGraph& graph,
                                            const CostModel& cost_model) const {
  JOINOPT_RETURN_IF_ERROR(
      internal::ValidateOptimizerInput(graph, /*require_connected=*/true));
  const Stopwatch stopwatch;
  const int n = graph.relation_count();

  PlanTable table = internal::MakeAdaptivePlanTable(graph);
  OptimizerStats stats;
  internal::SeedLeafPlans(graph, &table, &stats);

  // plans_by_size[s] lists the sets (all connected) that have a plan of
  // size s, in creation order — the "linked list of plans of equal size"
  // of Section 2.1.
  std::vector<std::vector<NodeSet>> plans_by_size(n + 1);
  plans_by_size[1].reserve(n);
  for (int i = 0; i < n; ++i) {
    plans_by_size[1].push_back(NodeSet::Singleton(i));
  }

  // Pairs (s1, s2): prices s1 ⋈ s2 in both orders, registering the result
  // set in its size list on first creation.
  const auto consider = [&](NodeSet s1, NodeSet s2) {
    ++stats.inner_counter;
    if (s1.Intersects(s2)) {
      return;
    }
    if (!graph.AreConnected(s1, s2)) {
      return;
    }
    stats.csg_cmp_pair_counter += 2;
    const NodeSet combined = s1 | s2;
    const bool existed = table.Find(combined) != nullptr;
    internal::CreateJoinTreeBothOrders(graph, cost_model, s1, s2, &table,
                                       &stats);
    if (!existed) {
      plans_by_size[combined.count()].push_back(combined);
    }
  };

  for (int s = 2; s <= n; ++s) {
    for (int s1 = 1; 2 * s1 <= s; ++s1) {
      const int s2 = s - s1;
      const std::vector<NodeSet>& left_list = plans_by_size[s1];
      const std::vector<NodeSet>& right_list = plans_by_size[s2];
      if (s1 == s2 && use_equal_size_optimization_) {
        // Each unordered pair of distinct equal-size plans once: pair
        // every plan with its successors in the list.
        for (size_t i = 0; i < left_list.size(); ++i) {
          for (size_t j = i + 1; j < left_list.size(); ++j) {
            consider(left_list[i], left_list[j]);
          }
        }
      } else {
        for (const NodeSet s1_set : left_list) {
          for (const NodeSet s2_set : right_list) {
            if (s1 == s2 && s1_set == s2_set) {
              continue;  // Unoptimized equal-size case: skip self-pairs.
            }
            consider(s1_set, s2_set);
          }
        }
      }
    }
  }

  stats.ono_lohman_counter = stats.csg_cmp_pair_counter / 2;
  stats.elapsed_seconds = stopwatch.ElapsedSeconds();
  return internal::ExtractResult(graph, table, stats);
}

}  // namespace joinopt
