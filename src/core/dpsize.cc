#include "core/dpsize.h"

namespace joinopt {

Result<OptimizationResult> DPsize::Optimize(OptimizerContext& ctx) const {
  JOINOPT_RETURN_IF_ERROR(
      internal::BeginOptimize(ctx, name(), /*require_connected=*/true));
  const QueryGraph& graph = ctx.graph();
  const int n = graph.relation_count();

  ctx.InstallTable(internal::MakeAdaptivePlanTable(
      graph, ctx.options().memo_entry_budget));
  OptimizerStats& stats = ctx.stats();
  PlanTable& table = ctx.table();
  bool live = internal::SeedLeafPlans(ctx);

  // The table's size layers ARE the "linked list of plans of equal size"
  // of Section 2.1: slab k holds the size-k sets in creation order, so
  // the enumeration iterates slab refs directly instead of keeping its
  // own NodeSet lists (and the operand lookups inside CreateJoinTree
  // disappear — the refs are the operands).
  //
  // The deadline tick runs on a stride instead of per pair: the governor
  // poll is cheap but not free, and on clique-16 the inner loop runs
  // 1.2e9 times. Layer boundaries add one unconditional tick each — a
  // boundary is where the memo is coherent, so a deadline fault that
  // fires "at the last tick" still observes a complete memo (the anytime
  // suite pins that contract).
  constexpr uint64_t kTickStride = 256;
  uint64_t since_tick = 0;

  // A pair that passed the disjointness + connectivity filter: price
  // both operand orders. Returns false when a resource limit tripped.
  const auto survive = [&](NodeSet a, NodeSet b, PlanRef r1,
                           PlanRef r2) -> bool {
    stats.csg_cmp_pair_counter += 2;
    ctx.TraceCsgCmpPair(a, b);
    return internal::CreateJoinTreeBothOrders(ctx, r1, r2);
  };

  for (int s = 2; live && s <= n; ++s) {
    table.FreezeLayer(s - 1);  // Layers below s are complete from here on.
    for (int s1 = 1; live && 2 * s1 <= s; ++s1) {
      const int s2 = s - s1;
      const uint32_t left_count = table.LayerSize(s1);
      const uint32_t right_count = table.LayerSize(s2);
      // Hot loop: stream the frozen slabs' set columns directly — one
      // contiguous NodeSet array per side, no per-element slab dispatch.
      const NodeSet* left_sets = table.LayerSets(s1);
      const NodeSet* right_sets = table.LayerSets(s2);
      if (s1 == s2 && use_equal_size_optimization_) {
        // Each unordered pair of distinct equal-size plans once: pair
        // every plan with its successors in the slab.
        for (uint32_t i = 0; live && i < left_count; ++i) {
          const NodeSet a = left_sets[i];
          for (uint32_t j = i + 1; j < left_count; ++j) {
            ++stats.inner_counter;
            const NodeSet b = right_sets[j];
            if (!a.Intersects(b) && graph.AreConnected(a, b) &&
                !survive(a, b, MakePlanRef(s1, i), MakePlanRef(s1, j))) {
              live = false;
              break;
            }
            if ((++since_tick & (kTickStride - 1)) == 0 && ctx.Tick()) {
              live = false;
              break;
            }
          }
        }
      } else {
        for (uint32_t i = 0; live && i < left_count; ++i) {
          const NodeSet a = left_sets[i];
          for (uint32_t j = 0; j < right_count; ++j) {
            if (s1 == s2 && i == j) {
              continue;  // Unoptimized equal-size case: skip self-pairs.
            }
            ++stats.inner_counter;
            const NodeSet b = right_sets[j];
            if (!a.Intersects(b) && graph.AreConnected(a, b) &&
                !survive(a, b, MakePlanRef(s1, i), MakePlanRef(s2, j))) {
              live = false;
              break;
            }
            if ((++since_tick & (kTickStride - 1)) == 0 && ctx.Tick()) {
              live = false;
              break;
            }
          }
        }
      }
    }
    if (live && ctx.Tick()) {
      live = false;  // Layer-boundary tick (coherent-memo arrival).
    }
  }

  stats.ono_lohman_counter = stats.csg_cmp_pair_counter / 2;
  return internal::FinishOptimize(ctx);
}

}  // namespace joinopt
