#include "core/dpsize.h"

#include <vector>

namespace joinopt {

Result<OptimizationResult> DPsize::Optimize(OptimizerContext& ctx) const {
  JOINOPT_RETURN_IF_ERROR(
      internal::BeginOptimize(ctx, name(), /*require_connected=*/true));
  const QueryGraph& graph = ctx.graph();
  const int n = graph.relation_count();

  ctx.InstallTable(internal::MakeAdaptivePlanTable(
      graph, ctx.options().memo_entry_budget));
  OptimizerStats& stats = ctx.stats();
  PlanTable& table = ctx.table();
  bool live = internal::SeedLeafPlans(ctx);

  // plans_by_size[s] lists the sets (all connected) that have a plan of
  // size s, in creation order — the "linked list of plans of equal size"
  // of Section 2.1.
  std::vector<std::vector<NodeSet>> plans_by_size(n + 1);
  plans_by_size[1].reserve(n);
  for (int i = 0; i < n; ++i) {
    plans_by_size[1].push_back(NodeSet::Singleton(i));
  }

  // Pairs (s1, s2): prices s1 ⋈ s2 in both orders, registering the result
  // set in its size list on first creation. Returns false when a resource
  // limit tripped and the enumeration must stop.
  const auto consider = [&](NodeSet s1, NodeSet s2) -> bool {
    ++stats.inner_counter;
    if (s1.Intersects(s2)) {
      return !ctx.Tick();
    }
    if (!graph.AreConnected(s1, s2)) {
      return !ctx.Tick();
    }
    stats.csg_cmp_pair_counter += 2;
    ctx.TraceCsgCmpPair(s1, s2);
    const NodeSet combined = s1 | s2;
    const bool existed = table.Find(combined) != nullptr;
    if (!internal::CreateJoinTreeBothOrders(ctx, s1, s2)) {
      return false;
    }
    if (!existed) {
      plans_by_size[combined.count()].push_back(combined);
    }
    return !ctx.Tick();
  };

  for (int s = 2; live && s <= n; ++s) {
    for (int s1 = 1; live && 2 * s1 <= s; ++s1) {
      const int s2 = s - s1;
      const std::vector<NodeSet>& left_list = plans_by_size[s1];
      const std::vector<NodeSet>& right_list = plans_by_size[s2];
      if (s1 == s2 && use_equal_size_optimization_) {
        // Each unordered pair of distinct equal-size plans once: pair
        // every plan with its successors in the list.
        for (size_t i = 0; live && i < left_list.size(); ++i) {
          for (size_t j = i + 1; j < left_list.size(); ++j) {
            if (!consider(left_list[i], left_list[j])) {
              live = false;
              break;
            }
          }
        }
      } else {
        for (size_t i = 0; live && i < left_list.size(); ++i) {
          const NodeSet s1_set = left_list[i];
          for (const NodeSet s2_set : right_list) {
            if (s1 == s2 && s1_set == s2_set) {
              continue;  // Unoptimized equal-size case: skip self-pairs.
            }
            if (!consider(s1_set, s2_set)) {
              live = false;
              break;
            }
          }
        }
      }
    }
  }

  stats.ono_lohman_counter = stats.csg_cmp_pair_counter / 2;
  return internal::FinishOptimize(ctx);
}

}  // namespace joinopt
