#ifndef JOINOPT_CORE_DPSIZE_H_
#define JOINOPT_CORE_DPSIZE_H_

#include "core/optimizer.h"

namespace joinopt {

/// DPsize (Figure 1 of the paper): size-driven dynamic programming over
/// bushy join trees without cross products, in the optimized variant whose
/// counter formulas the paper reports.
///
/// Plans are kept in per-size lists. For target size s the algorithm pairs
/// plans of sizes (s1, s − s1) for s1 = 1..⌊s/2⌋; for s1 = s2 each
/// unordered pair of distinct plans is enumerated once (the linked-list
/// optimization of Section 2.1). Because the size loop is halved, both
/// operand orders are costed for every surviving pair, so asymmetric cost
/// models are handled and CsgCmpPairCounter advances by 2 per pair.
///
/// InnerCounter semantics: incremented once per enumerated plan pair,
/// before the disjointness test — matching the Figure 3 values (e.g.
/// chain n=5 → 73, clique n=5 → 280).
class DPsize final : public JoinOrderer {
 public:
  /// When `use_equal_size_optimization` is false, the s1 = s2 case pairs
  /// every ordered combination like the unoptimized pseudocode; exposed
  /// for the ablation benchmark.
  explicit DPsize(bool use_equal_size_optimization = true)
      : use_equal_size_optimization_(use_equal_size_optimization) {}

  std::string_view name() const override { return "DPsize"; }

  using JoinOrderer::Optimize;
  Result<OptimizationResult> Optimize(OptimizerContext& ctx) const override;

 private:
  bool use_equal_size_optimization_;
};

}  // namespace joinopt

#endif  // JOINOPT_CORE_DPSIZE_H_
