#include "core/dpsize_linear.h"

#include <vector>

#include "util/stopwatch.h"

namespace joinopt {

Result<OptimizationResult> DPsizeLinear::Optimize(
    const QueryGraph& graph, const CostModel& cost_model) const {
  JOINOPT_RETURN_IF_ERROR(
      internal::ValidateOptimizerInput(graph, /*require_connected=*/true));
  const Stopwatch stopwatch;
  const int n = graph.relation_count();

  PlanTable table = internal::MakeAdaptivePlanTable(graph);
  OptimizerStats stats;
  internal::SeedLeafPlans(graph, &table, &stats);

  std::vector<std::vector<NodeSet>> plans_by_size(n + 1);
  for (int i = 0; i < n; ++i) {
    plans_by_size[1].push_back(NodeSet::Singleton(i));
  }

  for (int s = 2; s <= n; ++s) {
    for (const NodeSet base : plans_by_size[s - 1]) {
      // Extend only by adjacent relations: left-deep, cross-product-free.
      for (const int next : graph.Neighborhood(base)) {
        ++stats.inner_counter;
        stats.csg_cmp_pair_counter += 2;
        const NodeSet leaf = NodeSet::Singleton(next);
        const NodeSet combined = base | leaf;
        const bool existed = table.Find(combined) != nullptr;
        // Left-deep: the existing plan stays on the left, the new base
        // relation joins on the right.
        internal::CreateJoinTree(graph, cost_model, base, leaf, &table,
                                 &stats);
        if (!existed) {
          plans_by_size[s].push_back(combined);
        }
      }
    }
  }

  stats.ono_lohman_counter = stats.csg_cmp_pair_counter / 2;
  stats.elapsed_seconds = stopwatch.ElapsedSeconds();
  return internal::ExtractResult(graph, table, stats);
}

}  // namespace joinopt
