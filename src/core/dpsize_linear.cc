#include "core/dpsize_linear.h"

#include <vector>

namespace joinopt {

Result<OptimizationResult> DPsizeLinear::Optimize(OptimizerContext& ctx) const {
  JOINOPT_RETURN_IF_ERROR(
      internal::BeginOptimize(ctx, name(), /*require_connected=*/true));
  const QueryGraph& graph = ctx.graph();
  const int n = graph.relation_count();

  ctx.InstallTable(internal::MakeAdaptivePlanTable(
      graph, ctx.options().memo_entry_budget));
  OptimizerStats& stats = ctx.stats();
  PlanTable& table = ctx.table();
  bool live = internal::SeedLeafPlans(ctx);

  std::vector<std::vector<NodeSet>> plans_by_size(n + 1);
  for (int i = 0; i < n; ++i) {
    plans_by_size[1].push_back(NodeSet::Singleton(i));
  }

  for (int s = 2; live && s <= n; ++s) {
    for (size_t b = 0; live && b < plans_by_size[s - 1].size(); ++b) {
      const NodeSet base = plans_by_size[s - 1][b];
      // Extend only by adjacent relations: left-deep, cross-product-free.
      for (const int next : graph.Neighborhood(base)) {
        ++stats.inner_counter;
        stats.csg_cmp_pair_counter += 2;
        const NodeSet leaf = NodeSet::Singleton(next);
        ctx.TraceCsgCmpPair(base, leaf);
        const NodeSet combined = base | leaf;
        const bool existed = table.Find(combined) != nullptr;
        // Left-deep: the existing plan stays on the left, the new base
        // relation joins on the right.
        if (!internal::CreateJoinTree(ctx, base, leaf)) {
          live = false;
          break;
        }
        if (!existed) {
          plans_by_size[s].push_back(combined);
        }
      }
      if (ctx.Tick()) {
        live = false;
      }
    }
  }

  stats.ono_lohman_counter = stats.csg_cmp_pair_counter / 2;
  return internal::FinishOptimize(ctx);
}

}  // namespace joinopt
