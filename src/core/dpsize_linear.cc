#include "core/dpsize_linear.h"

#include <vector>

namespace joinopt {

Result<OptimizationResult> DPsizeLinear::Optimize(OptimizerContext& ctx) const {
  JOINOPT_RETURN_IF_ERROR(
      internal::BeginOptimize(ctx, name(), /*require_connected=*/true));
  const QueryGraph& graph = ctx.graph();
  const int n = graph.relation_count();

  ctx.InstallTable(internal::MakeAdaptivePlanTable(
      graph, ctx.options().memo_entry_budget));
  OptimizerStats& stats = ctx.stats();
  PlanTable& table = ctx.table();
  bool live = internal::SeedLeafPlans(ctx);

  // The table's size layers replace the per-size lists: slab s-1 holds
  // the bases for layer s in creation order (see dpsize.cc).
  for (int s = 2; live && s <= n; ++s) {
    table.FreezeLayer(s - 1);
    const uint32_t base_count = table.LayerSize(s - 1);
    for (uint32_t b = 0; live && b < base_count; ++b) {
      const NodeSet base = table.set(MakePlanRef(s - 1, b));
      // Extend only by adjacent relations: left-deep, cross-product-free.
      for (const int next : graph.Neighborhood(base)) {
        ++stats.inner_counter;
        stats.csg_cmp_pair_counter += 2;
        const NodeSet leaf = NodeSet::Singleton(next);
        ctx.TraceCsgCmpPair(base, leaf);
        // Left-deep: the existing plan stays on the left, the new base
        // relation joins on the right.
        if (!internal::CreateJoinTree(ctx, base, leaf)) {
          live = false;
          break;
        }
      }
      if (ctx.Tick()) {
        live = false;
      }
    }
  }

  stats.ono_lohman_counter = stats.csg_cmp_pair_counter / 2;
  return internal::FinishOptimize(ctx);
}

}  // namespace joinopt
