#ifndef JOINOPT_CORE_DPSIZE_LINEAR_H_
#define JOINOPT_CORE_DPSIZE_LINEAR_H_

#include "core/optimizer.h"

namespace joinopt {

/// Selinger-style dynamic programming restricted to LEFT-DEEP join trees
/// without cross products [Selinger et al., SIGMOD '79] — the historical
/// baseline the paper's introduction departs from.
///
/// A plan of size s is always "plan of size s−1 ⋈ base relation", with the
/// base relation on the right; only relations adjacent to the partial
/// plan are considered (no cross products). The optimal left-deep tree is
/// generally more expensive than the optimal bushy tree, which the
/// example programs demonstrate.
class DPsizeLinear final : public JoinOrderer {
 public:
  DPsizeLinear() = default;

  std::string_view name() const override { return "DPsizeLinear"; }

  using JoinOrderer::Optimize;
  Result<OptimizationResult> Optimize(OptimizerContext& ctx) const override;
};

}  // namespace joinopt

#endif  // JOINOPT_CORE_DPSIZE_LINEAR_H_
