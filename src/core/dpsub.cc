#include "core/dpsub.h"

#include "bitset/subset_iterator.h"
#include "graph/connectivity.h"

namespace joinopt {

Result<OptimizationResult> DPsub::Optimize(OptimizerContext& ctx) const {
  JOINOPT_RETURN_IF_ERROR(
      internal::BeginOptimize(ctx, name(), /*require_connected=*/true));
  const QueryGraph& graph = ctx.graph();
  const int n = graph.relation_count();
  if (n >= 40) {
    // 2^n outer iterations are infeasible long before this bound; fail
    // fast instead of looping for years.
    return Status::InvalidArgument(
        "DPsub enumerates 2^n subsets; refusing n >= 40");
  }

  ctx.InstallTable(PlanTable(n));
  OptimizerStats& stats = ctx.stats();
  PlanTable& table = ctx.table();
  bool live = internal::SeedLeafPlans(ctx);

  const uint64_t limit = (uint64_t{1} << n) - 1;
  for (uint64_t mask = 1; live && mask <= limit; ++mask) {
    const NodeSet s = NodeSet::FromMask(mask);
    if (s.count() == 1) {
      continue;  // Leaf plans are already seeded; no strict subsets.
    }
    if (!IsConnectedSet(graph, s)) {
      continue;  // The additional check (*) of Figure 2.
    }
    for (ProperSubsetIterator it(s); !it.Done(); it.Next()) {
      ++stats.inner_counter;
      const NodeSet s1 = it.Current();
      const NodeSet s2 = s - s1;
      // Connectivity of the parts: via table presence (every strict
      // subset of `s` was finalized in an earlier outer iteration) or via
      // explicit BFS for the ablation variant.
      if (use_table_connectivity_test_) {
        if (table.Find(s1) == nullptr) continue;
        if (table.Find(s2) == nullptr) continue;
      } else {
        if (!IsConnectedSet(graph, s1)) continue;
        if (!IsConnectedSet(graph, s2)) continue;
      }
      if (!graph.AreConnected(s1, s2)) {
        continue;
      }
      ++stats.csg_cmp_pair_counter;
      ctx.TraceCsgCmpPair(s1, s2);
      if (!internal::CreateJoinTree(ctx, s1, s2)) {
        live = false;
        break;
      }
    }
    // The deadline tick stays out of the subset loop: one check per outer
    // mask keeps the paper's hot loop untouched, and a single mask's
    // subsets bound the overrun (n < 40 caps them at one inner sweep).
    if (ctx.Tick()) {
      live = false;
    }
  }

  stats.ono_lohman_counter = stats.csg_cmp_pair_counter / 2;
  return internal::FinishOptimize(ctx);
}

}  // namespace joinopt
