#include "core/dpsub.h"

#include "bitset/subset_iterator.h"
#include "graph/connectivity.h"
#include "util/stopwatch.h"

namespace joinopt {

Result<OptimizationResult> DPsub::Optimize(const QueryGraph& graph,
                                           const CostModel& cost_model) const {
  JOINOPT_RETURN_IF_ERROR(
      internal::ValidateOptimizerInput(graph, /*require_connected=*/true));
  const Stopwatch stopwatch;
  const int n = graph.relation_count();
  if (n >= 40) {
    // 2^n outer iterations are infeasible long before this bound; fail
    // fast instead of looping for years.
    return Status::InvalidArgument(
        "DPsub enumerates 2^n subsets; refusing n >= 40");
  }

  PlanTable table(n);
  OptimizerStats stats;
  internal::SeedLeafPlans(graph, &table, &stats);

  const uint64_t limit = (uint64_t{1} << n) - 1;
  for (uint64_t mask = 1; mask <= limit; ++mask) {
    const NodeSet s = NodeSet::FromMask(mask);
    if (s.count() == 1) {
      continue;  // Leaf plans are already seeded; no strict subsets.
    }
    if (!IsConnectedSet(graph, s)) {
      continue;  // The additional check (*) of Figure 2.
    }
    for (ProperSubsetIterator it(s); !it.Done(); it.Next()) {
      ++stats.inner_counter;
      const NodeSet s1 = it.Current();
      const NodeSet s2 = s - s1;
      // Connectivity of the parts: via table presence (every strict
      // subset of `s` was finalized in an earlier outer iteration) or via
      // explicit BFS for the ablation variant.
      if (use_table_connectivity_test_) {
        if (table.Find(s1) == nullptr) continue;
        if (table.Find(s2) == nullptr) continue;
      } else {
        if (!IsConnectedSet(graph, s1)) continue;
        if (!IsConnectedSet(graph, s2)) continue;
      }
      if (!graph.AreConnected(s1, s2)) {
        continue;
      }
      ++stats.csg_cmp_pair_counter;
      internal::CreateJoinTree(graph, cost_model, s1, s2, &table, &stats);
    }
  }

  stats.ono_lohman_counter = stats.csg_cmp_pair_counter / 2;
  stats.elapsed_seconds = stopwatch.ElapsedSeconds();
  return internal::ExtractResult(graph, table, stats);
}

}  // namespace joinopt
