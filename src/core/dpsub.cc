#include "core/dpsub.h"

#include "bitset/subset_iterator.h"
#include "graph/connectivity.h"

namespace joinopt {

Result<OptimizationResult> DPsub::Optimize(OptimizerContext& ctx) const {
  JOINOPT_RETURN_IF_ERROR(
      internal::BeginOptimize(ctx, name(), /*require_connected=*/true));
  const QueryGraph& graph = ctx.graph();
  const int n = graph.relation_count();
  if (n >= 40) {
    // 2^n outer iterations are infeasible long before this bound; fail
    // fast instead of looping for years.
    return Status::InvalidArgument(
        "DPsub enumerates 2^n subsets; refusing n >= 40");
  }

  ctx.InstallTable(
      PlanTable(n, /*dense_limit=*/20, ctx.options().memo_entry_budget));
  OptimizerStats& stats = ctx.stats();
  PlanTable& table = ctx.table();
  bool live = internal::SeedLeafPlans(ctx);

  const uint64_t limit = (uint64_t{1} << n) - 1;
  // The deadline tick runs strided INSIDE the subset loop: a single outer
  // mask owns up to 2^(n-1) subsets (~2^29 at the n < 40 bound), so a
  // per-mask check could overshoot the deadline by seconds. The stride
  // composes with the governor's own 8k-call countdown: one clock read
  // per ~stride * 8192 subset enumerations, fault arrivals every
  // `stride` of them.
  constexpr uint64_t kTickStride = 256;
  uint64_t since_tick = 0;
  for (uint64_t mask = 1; live && mask <= limit; ++mask) {
    // The outer sweep ticks on the same stride: on chain-like graphs
    // almost every mask fails the connectivity check below, and 2^n
    // IsConnectedSet calls are deadline-relevant work of their own.
    if ((++since_tick & (kTickStride - 1)) == 0 && ctx.Tick()) {
      break;
    }
    const NodeSet s = NodeSet::FromMask(mask);
    if (s.count() == 1) {
      continue;  // Leaf plans are already seeded; no strict subsets.
    }
    if (!IsConnectedSet(graph, s)) {
      continue;  // The additional check (*) of Figure 2.
    }
    for (ProperSubsetIterator it(s); !it.Done(); it.Next()) {
      ++stats.inner_counter;
      if ((++since_tick & (kTickStride - 1)) == 0 && ctx.Tick()) {
        live = false;
        break;
      }
      const NodeSet s1 = it.Current();
      const NodeSet s2 = s - s1;
      // Connectivity of the parts: via table presence (every strict
      // subset of `s` was finalized in an earlier outer iteration) or via
      // explicit BFS for the ablation variant.
      if (use_table_connectivity_test_) {
        if (table.Find(s1) == kInvalidPlanRef) continue;
        if (table.Find(s2) == kInvalidPlanRef) continue;
      } else {
        if (!IsConnectedSet(graph, s1)) continue;
        if (!IsConnectedSet(graph, s2)) continue;
      }
      if (!graph.AreConnected(s1, s2)) {
        continue;
      }
      ++stats.csg_cmp_pair_counter;
      ctx.TraceCsgCmpPair(s1, s2);
      if (!internal::CreateJoinTree(ctx, s1, s2)) {
        live = false;
        break;
      }
    }
    // One more tick at the mask boundary, on top of the strided ones: a
    // mask boundary is where the memo is coherent (every processed set is
    // final), so keeping the historical per-mask arrival here means a
    // deadline fault that fires "at the last tick" still observes a
    // complete memo — the anytime/fault suites pin that cadence.
    if (live && ctx.Tick()) {
      break;
    }
  }

  stats.ono_lohman_counter = stats.csg_cmp_pair_counter / 2;
  return internal::FinishOptimize(ctx);
}

}  // namespace joinopt
