#ifndef JOINOPT_CORE_DPSUB_H_
#define JOINOPT_CORE_DPSUB_H_

#include "core/optimizer.h"

namespace joinopt {

/// DPsub (Figure 2 of the paper): subset-driven dynamic programming over
/// bushy join trees without cross products.
///
/// The outer loop walks the integers 1..2^n − 1; each integer's bit
/// pattern is a relation set S, and ascending order guarantees every
/// subset is handled before its supersets. Disconnected S are skipped
/// (the marked test of Figure 2). The inner loop enumerates the non-empty
/// strict subsets S1 of S with the Vance–Maier increment and prices
/// S1 ⋈ (S \ S1); both orders of every pair arise naturally, so a single
/// CreateJoinTree per iteration suffices even for asymmetric cost models.
///
/// InnerCounter semantics: incremented once per inner-loop iteration
/// (2^|S| − 2 per connected S), matching the Figure 3 values (e.g. chain
/// n=5 → 84, clique n=5 → 180).
class DPsub final : public JoinOrderer {
 public:
  /// When `use_table_connectivity_test` is true (default), "S1 induces a
  /// connected subgraph" is tested via plan-table presence (an entry
  /// exists iff the set is connected, since ascending enumeration has
  /// already finished all subsets); otherwise a bitset-BFS runs per
  /// subset. Exposed for the ablation benchmark; counters are identical.
  explicit DPsub(bool use_table_connectivity_test = true)
      : use_table_connectivity_test_(use_table_connectivity_test) {}

  std::string_view name() const override { return "DPsub"; }

  using JoinOrderer::Optimize;
  Result<OptimizationResult> Optimize(OptimizerContext& ctx) const override;

 private:
  bool use_table_connectivity_test_;
};

}  // namespace joinopt

#endif  // JOINOPT_CORE_DPSUB_H_
