#include "core/greedy.h"

#include <vector>

namespace joinopt {

Result<OptimizationResult> GreedyOperatorOrdering::Optimize(
    OptimizerContext& ctx) const {
  JOINOPT_RETURN_IF_ERROR(
      internal::BeginOptimize(ctx, name(), /*require_connected=*/true));
  const QueryGraph& graph = ctx.graph();
  const int n = graph.relation_count();

  // The greedy merges are recorded as plan-table breadcrumbs so the final
  // tree can be materialized with the shared reconstruction path.
  ctx.InstallTable(internal::MakeAdaptivePlanTable(
      graph, ctx.options().memo_entry_budget));
  OptimizerStats& stats = ctx.stats();
  bool live = internal::SeedLeafPlans(ctx);
  const CardinalityEstimator& estimator = ctx.estimator();

  struct Component {
    NodeSet set;
    double cardinality;
  };
  std::vector<Component> components;
  components.reserve(n);
  for (int i = 0; i < n; ++i) {
    components.push_back({NodeSet::Singleton(i), graph.cardinality(i)});
  }

  while (live && components.size() > 1) {
    // Find the connected pair with the smallest join cardinality.
    int best_i = -1;
    int best_j = -1;
    double best_card = 0.0;
    for (size_t i = 0; i < components.size(); ++i) {
      for (size_t j = i + 1; j < components.size(); ++j) {
        ++stats.inner_counter;
        if (!graph.AreConnected(components[i].set, components[j].set)) {
          continue;
        }
        const double card = estimator.JoinCardinality(
            components[i].set, components[i].cardinality, components[j].set,
            components[j].cardinality);
        if (best_i < 0 || card < best_card) {
          best_i = static_cast<int>(i);
          best_j = static_cast<int>(j);
          best_card = card;
        }
      }
    }
    if (best_i < 0) {
      return Status::Internal(
          "no joinable component pair; graph connectivity was violated");
    }

    // Record the merge; CreateJoinTree picks the cheaper operand order.
    stats.csg_cmp_pair_counter += 2;
    ctx.TraceCsgCmpPair(components[best_i].set, components[best_j].set);
    if (!internal::CreateJoinTreeBothOrders(ctx, components[best_i].set,
                                            components[best_j].set)) {
      live = false;
      break;
    }
    components[best_i] = {components[best_i].set | components[best_j].set,
                          best_card};
    components.erase(components.begin() + best_j);
    if (ctx.Tick()) {
      live = false;
    }
  }

  stats.ono_lohman_counter = stats.csg_cmp_pair_counter / 2;
  return internal::FinishOptimize(ctx);
}

}  // namespace joinopt
