#ifndef JOINOPT_CORE_GREEDY_H_
#define JOINOPT_CORE_GREEDY_H_

#include "core/optimizer.h"

namespace joinopt {

/// Greedy Operator Ordering (GOO) [Fegaras '98]: a polynomial-time
/// heuristic baseline. Starting from one component per relation, it
/// repeatedly merges the edge-connected pair of components whose join has
/// the smallest estimated output cardinality, until one component (the
/// full bushy tree) remains.
///
/// Unlike the DP algorithms, GOO does not guarantee optimality; the test
/// suite checks that its cost is always >= the DP optimum, and the
/// examples use it to show how far greedy can drift.
class GreedyOperatorOrdering final : public JoinOrderer {
 public:
  GreedyOperatorOrdering() = default;

  std::string_view name() const override { return "GOO"; }

  using JoinOrderer::Optimize;
  Result<OptimizationResult> Optimize(OptimizerContext& ctx) const override;
};

}  // namespace joinopt

#endif  // JOINOPT_CORE_GREEDY_H_
