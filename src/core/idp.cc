#include "core/idp.h"

#include <limits>
#include <unordered_set>
#include <vector>

#include "cost/cardinality.h"

namespace joinopt {

namespace {

/// One IDP component: a set of original relations with its estimated
/// cardinality. Its best join tree lives in the global plan table.
struct Component {
  NodeSet relations;
  double cardinality;
};

}  // namespace

Result<OptimizationResult> IDP1::Optimize(OptimizerContext& ctx) const {
  if (k_ < 2) {
    return Status::InvalidArgument("IDP1 block size must be >= 2");
  }
  JOINOPT_RETURN_IF_ERROR(
      internal::BeginOptimize(ctx, name(), /*require_connected=*/true));
  const QueryGraph& graph = ctx.graph();
  const int n = graph.relation_count();

  // Global table over ORIGINAL relation sets; each round's DP writes its
  // decompositions here so the final tree reconstructs in one pass.
  ctx.InstallTable(internal::MakeAdaptivePlanTable(
      graph, ctx.options().memo_entry_budget));
  OptimizerStats& stats = ctx.stats();
  PlanTable& table = ctx.table();
  bool live = internal::SeedLeafPlans(ctx);

  std::vector<Component> components;
  components.reserve(n);
  for (int i = 0; i < n; ++i) {
    components.push_back({NodeSet::Singleton(i), graph.cardinality(i)});
  }

  while (live && components.size() > 1) {
    const int m = static_cast<int>(components.size());
    const int block = std::min(k_, m);

    // Size-bounded DPsize over the component graph. Plans are keyed by
    // ORIGINAL relation sets (the union of their components' sets);
    // operand lookups and the cost bookkeeping reuse the global table.
    std::vector<std::vector<NodeSet>> plans_by_size(block + 1);
    // Sets registered in THIS round's size lists. Global-table presence
    // is the wrong test: an intermediate built (but not collapsed) in an
    // earlier round must still be re-registered here or it could never
    // grow further this round.
    std::unordered_set<uint64_t> round_seen;
    for (const Component& component : components) {
      plans_by_size[1].push_back(component.relations);
      round_seen.insert(component.relations.mask());
    }

    const auto consider = [&](NodeSet s1, NodeSet s2) -> bool {
      ++stats.inner_counter;
      if (s1.Intersects(s2)) {
        return !ctx.Tick();
      }
      if (!graph.AreConnected(s1, s2)) {
        return !ctx.Tick();
      }
      stats.csg_cmp_pair_counter += 2;
      ctx.TraceCsgCmpPair(s1, s2);
      const NodeSet combined = s1 | s2;
      if (!internal::CreateJoinTreeBothOrders(ctx, s1, s2)) {
        return false;
      }
      if (round_seen.insert(combined.mask()).second) {
        // Size in COMPONENTS: count of constituent components.
        int size = 0;
        for (const Component& component : components) {
          if (component.relations.IsSubsetOf(combined)) {
            ++size;
          }
        }
        JOINOPT_DCHECK(size >= 2 && size <= block);
        plans_by_size[size].push_back(combined);
      }
      return !ctx.Tick();
    };

    for (int s = 2; live && s <= block; ++s) {
      for (int s1 = 1; live && 2 * s1 <= s; ++s1) {
        const int s2 = s - s1;
        const auto& left_list = plans_by_size[s1];
        const auto& right_list = plans_by_size[s2];
        if (s1 == s2) {
          for (size_t i = 0; live && i < left_list.size(); ++i) {
            for (size_t j = i + 1; j < left_list.size(); ++j) {
              if (!consider(left_list[i], left_list[j])) {
                live = false;
                break;
              }
            }
          }
        } else {
          for (size_t i = 0; live && i < left_list.size(); ++i) {
            const NodeSet a = left_list[i];
            for (const NodeSet b : right_list) {
              if (!consider(a, b)) {
                live = false;
                break;
              }
            }
          }
        }
      }
    }
    if (!live) {
      break;
    }

    if (m <= k_) {
      break;  // The last DP covered everything: the full plan exists.
    }

    // Select the cheapest size-`block` plan and collapse it.
    NodeSet best_set;
    double best_cost = std::numeric_limits<double>::infinity();
    for (const NodeSet candidate : plans_by_size[block]) {
      const PlanRef entry = table.Find(candidate);
      JOINOPT_DCHECK(entry != kInvalidPlanRef);
      if (table.cost(entry) < best_cost) {
        best_cost = table.cost(entry);
        best_set = candidate;
      }
    }
    if (best_set.empty()) {
      // No size-`block` plan: with a connected component graph this
      // cannot happen (connected graphs have connected subsets of every
      // size), so treat it as an internal error.
      return Status::Internal("IDP1 round produced no size-k plan");
    }
    const PlanRef best_entry = table.Find(best_set);
    std::vector<Component> next;
    next.reserve(components.size());
    next.push_back({best_set, table.cardinality(best_entry)});
    for (const Component& component : components) {
      if (!component.relations.IsSubsetOf(best_set)) {
        next.push_back(component);
      }
    }
    components = std::move(next);
  }

  stats.ono_lohman_counter = stats.csg_cmp_pair_counter / 2;
  return internal::FinishOptimize(ctx);
}

}  // namespace joinopt
