#ifndef JOINOPT_CORE_IDP_H_
#define JOINOPT_CORE_IDP_H_

#include "core/optimizer.h"

namespace joinopt {

/// IDP1 — Iterative Dynamic Programming [Kossmann & Stocker, TODS 2000],
/// the DP-based heuristic the paper's introduction cites as research
/// built on Selinger-style DP. Bridges exact DP (exponential, small n)
/// and greedy (polynomial, any n):
///
///   while more than one component remains:
///     run bushy cross-product-free DP over the component graph, but
///     only up to plans of size k;
///     if everything fit in one DP (components <= k), done;
///     otherwise pick the cheapest size-k plan, collapse it into a
///     single compound relation, and iterate.
///
/// With k >= n IDP1 degenerates to exact DP (and must match DPccp's
/// optimum — asserted by the tests); with k = 2 it behaves like a
/// cheapest-pair greedy. Runtime per round is the DPsize cost capped at
/// size k, so large chains/stars far beyond exact-DP reach stay cheap.
class IDP1 final : public JoinOrderer {
 public:
  /// `k` is the DP block size, >= 2.
  explicit IDP1(int k) : k_(k) {}

  std::string_view name() const override { return "IDP1"; }

  using JoinOrderer::Optimize;
  Result<OptimizationResult> Optimize(OptimizerContext& ctx) const override;

 private:
  int k_;
};

}  // namespace joinopt

#endif  // JOINOPT_CORE_IDP_H_
