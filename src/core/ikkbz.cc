#include "core/ikkbz.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "cost/saturation.h"

namespace joinopt {

namespace {

/// A module of the precedence chain: a sequence of relations treated as
/// one unit, with the aggregate T (cardinality factor) and C (C_out
/// contribution) of the sequence.
struct Module {
  double t = 1.0;
  double c = 0.0;
  std::vector<int> relations;

  /// (T - 1) / C, the ASI rank. C > 0 for every real module. Saturated
  /// statistics can drive T and C to the ceiling together, where the
  /// quotient degenerates to NaN — mapped to a neutral 0 rank, because a
  /// NaN in the comparator below would break stable_sort's strict weak
  /// ordering (undefined behavior, not just a bad ordering).
  double Rank() const {
    const double rank = (t - 1.0) / c;
    return std::isnan(rank) ? 0.0 : rank;
  }
};

/// Concatenation: C(AB) = C(A) + T(A)·C(B), T(AB) = T(A)·T(B).
Module Concat(Module a, const Module& b) {
  a.c += a.t * b.c;
  a.t *= b.t;
  a.relations.insert(a.relations.end(), b.relations.begin(),
                     b.relations.end());
  return a;
}

/// Per-root working data: the query tree rooted at some relation.
struct RootedTree {
  std::vector<int> parent;          // -1 for the root.
  std::vector<double> t;            // T_i = sel(edge to parent) * n_i.
  std::vector<std::vector<int>> children;
};

RootedTree RootTree(const QueryGraph& graph, int root) {
  const int n = graph.relation_count();
  RootedTree tree;
  tree.parent.assign(n, -1);
  tree.t.assign(n, 1.0);
  tree.children.assign(n, {});

  // BFS from the root over the (acyclic) graph.
  std::vector<int> queue = {root};
  NodeSet visited = NodeSet::Singleton(root);
  for (size_t head = 0; head < queue.size(); ++head) {
    const int v = queue[head];
    for (const int w : graph.Neighbors(v)) {
      if (visited.Contains(w)) {
        continue;
      }
      visited.Add(w);
      tree.parent[w] = v;
      tree.children[v].push_back(w);
      queue.push_back(w);
    }
  }
  for (int v = 0; v < n; ++v) {
    if (v != root) {
      tree.t[v] = graph.cardinality(v) *
                  graph.SelectivityBetween(NodeSet::Singleton(v),
                                           NodeSet::Singleton(tree.parent[v]));
    }
  }
  return tree;
}

/// Linearizes the subtree rooted at `v` into a normalized (rank-
/// ascending) module chain whose first module contains v.
/// `comparisons` accumulates into the InnerCounter.
std::vector<Module> Linearize(const RootedTree& tree, int v,
                              uint64_t* comparisons) {
  // Merge the children's chains by ascending rank. Each child chain is
  // already ascending, so a stable sort by rank is a valid k-way merge
  // that cannot hoist a descendant above its ancestor.
  std::vector<Module> merged;
  for (const int child : tree.children[v]) {
    std::vector<Module> chain = Linearize(tree, child, comparisons);
    merged.insert(merged.end(), std::make_move_iterator(chain.begin()),
                  std::make_move_iterator(chain.end()));
  }
  std::stable_sort(merged.begin(), merged.end(),
                   [comparisons](const Module& a, const Module& b) {
                     ++*comparisons;
                     return a.Rank() < b.Rank();
                   });

  // Prepend v's own module and normalize the front: while v (or the
  // compound it grew into) out-ranks its successor, the successor can
  // never be scheduled later than v profitably, so fuse them.
  Module head;
  head.t = tree.t[v];
  head.c = tree.t[v];
  head.relations = {v};
  std::vector<Module> chain;
  chain.reserve(merged.size() + 1);
  chain.push_back(std::move(head));
  size_t next = 0;
  while (next < merged.size() && chain.back().Rank() > merged[next].Rank()) {
    ++*comparisons;
    chain.back() = Concat(std::move(chain.back()), merged[next]);
    ++next;
  }
  for (; next < merged.size(); ++next) {
    chain.push_back(std::move(merged[next]));
  }
  return chain;
}

}  // namespace

namespace internal {

Result<std::vector<int>> IkkbzLinearize(const QueryGraph& graph,
                                        uint64_t* comparisons) {
  JOINOPT_RETURN_IF_ERROR(
      ValidateOptimizerInput(graph, /*require_connected=*/true));
  const int n = graph.relation_count();
  if (graph.edge_count() != n - 1) {
    return Status::InvalidArgument(
        "IKKBZ requires an acyclic (tree) query graph; this one has " +
        std::to_string(graph.edge_count()) + " edges for " +
        std::to_string(n) + " relations");
  }
  uint64_t local_comparisons = 0;
  if (comparisons == nullptr) {
    comparisons = &local_comparisons;
  }

  // Try every relation as the sequence head; keep the cheapest C_out.
  std::vector<int> best_sequence;
  double best_cost = std::numeric_limits<double>::infinity();
  for (int root = 0; root < n; ++root) {
    const RootedTree tree = RootTree(graph, root);
    const std::vector<Module> chain = Linearize(tree, root, comparisons);

    // Flatten and price: C_out over the left-deep sequence.
    std::vector<int> sequence;
    sequence.reserve(n);
    for (const Module& module : chain) {
      sequence.insert(sequence.end(), module.relations.begin(),
                      module.relations.end());
    }
    JOINOPT_DCHECK(static_cast<int>(sequence.size()) == n);
    JOINOPT_DCHECK(sequence[0] == root);
    double cardinality = graph.cardinality(root);
    double cost = 0.0;
    for (int k = 1; k < n; ++k) {
      // Saturation keeps inf/NaN out of the best-root comparison below.
      cardinality = SaturateCardinality(cardinality * tree.t[sequence[k]]);
      cost = SaturateCost(cost + cardinality);
    }
    if (cost < best_cost) {
      best_cost = cost;
      best_sequence = std::move(sequence);
    }
  }
  return best_sequence;
}

}  // namespace internal

Result<OptimizationResult> IKKBZ::Optimize(OptimizerContext& ctx) const {
  JOINOPT_RETURN_IF_ERROR(
      internal::BeginOptimize(ctx, name(), /*require_connected=*/true));
  const QueryGraph& graph = ctx.graph();
  OptimizerStats& stats = ctx.stats();
  Result<std::vector<int>> sequence =
      internal::IkkbzLinearize(graph, &stats.inner_counter);
  JOINOPT_RETURN_IF_ERROR(sequence.status());
  const std::vector<int>& best_sequence = *sequence;
  const int n = graph.relation_count();

  // Materialize the winning sequence as a left-deep plan, priced under
  // the CALLER's cost model (the ordering itself is C_out-optimal; see
  // the class comment).
  ctx.InstallTable(internal::MakeAdaptivePlanTable(
      graph, ctx.options().memo_entry_budget));
  bool live = internal::SeedLeafPlans(ctx);
  NodeSet prefix = NodeSet::Singleton(best_sequence[0]);
  for (int k = 1; live && k < n; ++k) {
    const NodeSet leaf = NodeSet::Singleton(best_sequence[k]);
    stats.csg_cmp_pair_counter += 2;
    ctx.TraceCsgCmpPair(prefix, leaf);
    if (!internal::CreateJoinTree(ctx, prefix, leaf)) {
      live = false;
    }
    prefix |= leaf;
  }

  stats.ono_lohman_counter = stats.csg_cmp_pair_counter / 2;
  return internal::FinishOptimize(ctx);
}

}  // namespace joinopt
