#ifndef JOINOPT_CORE_IKKBZ_H_
#define JOINOPT_CORE_IKKBZ_H_

#include "core/optimizer.h"

namespace joinopt {

/// IKKBZ [Ibaraki & Kameda '84; Krishnamurthy, Boral & Zaniolo '86]: the
/// classic POLYNOMIAL-TIME exact algorithm for a restricted problem —
/// optimal LEFT-DEEP join trees without cross products for TREE query
/// graphs under an ASI (adjacent-sequence-interchange) cost function.
/// This implementation minimizes C_out restricted to left-deep trees,
/// which satisfies ASI; on tree-shaped queries it must therefore match
/// DPsizeLinear{CoutCostModel} exactly (asserted by the test suite) while
/// running in O(n² log n) instead of exponential time.
///
/// Historical context for this repository: IKKBZ is the other classical
/// exact join orderer besides Selinger DP, and Moerkotte's group later
/// combined it with DPccp (linearized DP) — so it rounds out the
/// algorithm family the paper sits in.
///
/// The algorithm: for every candidate first relation, root the query
/// tree there, assign each node the rank (T − 1) / C with T = s·n, and
/// repeatedly normalize (merge any child whose rank is below its
/// parent's into a compound node) until the precedence tree is a chain
/// ordered by ascending rank; the cheapest chain over all roots wins.
///
/// Optimize fails on non-tree graphs (cycles) — use the DP algorithms
/// there — and on disconnected graphs.
class IKKBZ final : public JoinOrderer {
 public:
  IKKBZ() = default;

  std::string_view name() const override { return "IKKBZ"; }

  using JoinOrderer::Optimize;
  Result<OptimizationResult> Optimize(OptimizerContext& ctx) const override;
};

namespace internal {

/// The linearization step of IKKBZ, exposed for LinDP: the C_out-optimal
/// left-deep relation order for a connected TREE query graph (fails on
/// cyclic or disconnected input). Every prefix of the returned order is
/// connected. `comparisons`, if non-null, accumulates rank comparisons
/// (the InnerCounter contribution).
Result<std::vector<int>> IkkbzLinearize(const QueryGraph& graph,
                                        uint64_t* comparisons);

}  // namespace internal

}  // namespace joinopt

#endif  // JOINOPT_CORE_IKKBZ_H_
