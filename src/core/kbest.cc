#include "core/kbest.h"

#include <algorithm>
#include <unordered_map>
#include <utility>

#include "cost/cardinality.h"
#include "cost/saturation.h"
#include "enumerate/cmp.h"
#include "graph/bfs_numbering.h"
#include "graph/connectivity.h"

namespace joinopt {

namespace {

/// One ranked alternative for a set: its cost and its decomposition,
/// with child ranks selecting entries in the operand sets' lists.
struct RankedEntry {
  double cost = 0.0;
  NodeSet left;
  NodeSet right;
  int left_rank = -1;  // -1 marks a leaf entry.
  int right_rank = -1;
  JoinOperator op = JoinOperator::kUnspecified;
};

struct SetPlans {
  double cardinality = 0.0;
  std::vector<RankedEntry> ranked;  // Ascending cost, size <= k.
};

using Memo = std::unordered_map<NodeSet, SetPlans, NodeSetHash>;

/// Inserts a candidate into the top-k list (ascending by cost).
void Offer(SetPlans* plans, const RankedEntry& candidate, int k) {
  auto& list = plans->ranked;
  if (static_cast<int>(list.size()) == k &&
      candidate.cost >= list.back().cost) {
    return;
  }
  const auto position =
      std::upper_bound(list.begin(), list.end(), candidate,
                       [](const RankedEntry& a, const RankedEntry& b) {
                         return a.cost < b.cost;
                       });
  list.insert(position, candidate);
  if (static_cast<int>(list.size()) > k) {
    list.pop_back();
  }
}

/// Materializes the tree for (set, rank) from the memo.
int BuildTree(const Memo& memo, NodeSet set, int rank,
              std::vector<JoinTreeNode>* nodes) {
  const SetPlans& plans = memo.at(set);
  const RankedEntry& entry = plans.ranked[static_cast<size_t>(rank)];
  JoinTreeNode node;
  node.relations = set;
  node.cardinality = plans.cardinality;
  node.cost = entry.cost;
  node.op = entry.op;
  if (entry.left_rank < 0) {
    node.relation = set.Min();
  } else {
    node.left = BuildTree(memo, entry.left, entry.left_rank, nodes);
    node.right = BuildTree(memo, entry.right, entry.right_rank, nodes);
  }
  nodes->push_back(node);
  return static_cast<int>(nodes->size()) - 1;
}

}  // namespace

Result<std::vector<RankedPlan>> KBestJoinOrderer::Optimize(
    const QueryGraph& graph, const CostModel& cost_model,
    const OptimizeOptions& options) const {
  OptimizerContext ctx(graph, cost_model, options);
  return Optimize(ctx);
}

Result<std::vector<RankedPlan>> KBestJoinOrderer::Optimize(
    OptimizerContext& ctx) const {
  if (k_ < 1) {
    return Status::InvalidArgument("k must be >= 1");
  }
  JOINOPT_RETURN_IF_ERROR(
      internal::BeginOptimize(ctx, name(), /*require_connected=*/true));
  const QueryGraph& graph = ctx.graph();
  const CostModel& cost_model = ctx.cost_model();

  // BFS-renumber like DPccp (the enumeration precondition).
  Result<BfsNumbering> numbering = ComputeBfsNumbering(graph, /*start=*/0);
  JOINOPT_RETURN_IF_ERROR(numbering.status());
  const bool identity = numbering->IsIdentity();
  const QueryGraph relabeled_storage =
      identity ? QueryGraph() : RelabelGraph(graph, *numbering);
  // Numbering-invariant estimates, exactly as in DPccp (see there).
  const WorkGraphScope scope(ctx, identity ? graph : relabeled_storage,
                             identity ? nullptr : &numbering->new_to_old);
  const QueryGraph& work_graph = ctx.work_graph();
  OptimizerStats& stats = ctx.stats();

  Memo memo;
  memo.reserve(256);
  for (int i = 0; i < work_graph.relation_count(); ++i) {
    SetPlans& plans = memo[NodeSet::Singleton(i)];
    plans.cardinality = work_graph.cardinality(i);
    plans.ranked.push_back(RankedEntry{0.0, NodeSet(), NodeSet(), -1, -1,
                                       JoinOperator::kUnspecified});
  }

  const CardinalityEstimator& estimator = ctx.estimator();
  EnumerateCsgCmpPairsUntil(work_graph, [&](NodeSet s1, NodeSet s2) {
    ++stats.inner_counter;
    ++stats.ono_lohman_counter;
    ctx.TraceCsgCmpPair(s1, s2);
    const SetPlans& left = memo.at(s1);
    const SetPlans& right = memo.at(s2);
    SetPlans& combined = memo[s1 | s2];
    if (combined.cardinality == 0.0) {
      // Canonical per-set estimate, matching CreateJoinTree (the
      // incremental join formula is split-dependent under saturation).
      combined.cardinality = estimator.EstimateSet(s1 | s2);
      // The memo plays the plan table's role here, so the memo budget
      // counts its entries.
      if (!ctx.WithinMemoBudget(memo.size())) {
        return false;
      }
    }
    for (int li = 0; li < static_cast<int>(left.ranked.size()); ++li) {
      for (int ri = 0; ri < static_cast<int>(right.ranked.size()); ++ri) {
        const double subtree_cost =
            left.ranked[li].cost + right.ranked[ri].cost;
        // Both operand orders.
        Offer(&combined,
              RankedEntry{
                  SaturateCost(subtree_cost +
                               cost_model.JoinCost(left.cardinality,
                                                   right.cardinality,
                                                   combined.cardinality)),
                  s1, s2, li, ri,
                  cost_model.OperatorFor(left.cardinality, right.cardinality,
                                         combined.cardinality)},
              k_);
        Offer(&combined,
              RankedEntry{
                  SaturateCost(subtree_cost +
                               cost_model.JoinCost(right.cardinality,
                                                   left.cardinality,
                                                   combined.cardinality)),
                  s2, s1, ri, li,
                  cost_model.OperatorFor(right.cardinality, left.cardinality,
                                         combined.cardinality)},
              k_);
      }
    }
    return !ctx.Tick();
  });
  stats.csg_cmp_pair_counter = 2 * stats.ono_lohman_counter;
  stats.plans_stored = memo.size();
  if (ctx.exhausted()) {
    return ctx.limit_status();
  }

  const auto root = memo.find(work_graph.AllRelations());
  if (root == memo.end() || root->second.ranked.empty()) {
    return Status::Internal("k-best DP produced no full plan");
  }
  std::vector<RankedPlan> results;
  results.reserve(root->second.ranked.size());
  for (int rank = 0; rank < static_cast<int>(root->second.ranked.size());
       ++rank) {
    std::vector<JoinTreeNode> nodes;
    BuildTree(memo, work_graph.AllRelations(), rank, &nodes);
    Result<JoinTree> tree = JoinTree::FromNodes(std::move(nodes));
    JOINOPT_RETURN_IF_ERROR(tree.status());
    if (!identity) {
      tree->RelabelLeaves(numbering->new_to_old);
    }
    const double cost = tree->cost();
    results.push_back(RankedPlan{std::move(*tree), cost});
  }
  return results;
}

}  // namespace joinopt
