#ifndef JOINOPT_CORE_KBEST_H_
#define JOINOPT_CORE_KBEST_H_

#include <vector>

#include "core/optimizer.h"

namespace joinopt {

/// One plan of a k-best result, cheapest first.
struct RankedPlan {
  JoinTree plan;
  double cost = 0.0;
};

/// K-best join ordering: DPccp's enumeration with a top-k memo per
/// connected subset instead of a single best entry, yielding the k
/// cheapest distinct join trees for the whole query (cheapest first).
///
/// Use cases: plan robustness studies (how much worse is the runner-up?),
/// hinting/plan-pinning UIs, and testing — the k = 1 result must equal
/// DPccp's, and on small queries the full ranking must match a
/// brute-force enumeration of every ordered tree (both asserted by the
/// test suite).
///
/// Admissibility: the i-th best plan for a set only ever composes
/// plans within the top-i of its subsets (swapping in a cheaper subplan
/// yields a different, cheaper tree), so per-set top-k lists suffice.
/// Cost: DPccp's pair count times k² per pair.
class KBestJoinOrderer {
 public:
  /// `k` >= 1: how many plans to produce.
  explicit KBestJoinOrderer(int k) : k_(k) {}

  std::string_view name() const { return "KBestDPccp"; }

  /// Returns min(k, number of existing trees) plans, cheapest first.
  /// Fails on empty or disconnected graphs, and with kBudgetExceeded when
  /// a limit in ctx.options() trips (the memo budget counts this
  /// orderer's per-set top-k memo entries).
  ///
  /// KBestJoinOrderer is not a JoinOrderer — it returns a ranking, not a
  /// single plan — but it threads the same OptimizerContext so budgets,
  /// deadlines, and traces apply uniformly.
  Result<std::vector<RankedPlan>> Optimize(OptimizerContext& ctx) const;

  /// Convenience overload building a single-use context.
  Result<std::vector<RankedPlan>> Optimize(
      const QueryGraph& graph, const CostModel& cost_model,
      const OptimizeOptions& options = OptimizeOptions()) const;

 private:
  int k_;
};

}  // namespace joinopt

#endif  // JOINOPT_CORE_KBEST_H_
