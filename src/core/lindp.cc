#include "core/lindp.h"

#include <algorithm>
#include <numeric>
#include <vector>

#include "core/ikkbz.h"

namespace joinopt {

namespace {

/// Kruskal union-find for the minimum-selectivity spanning tree.
class UnionFind {
 public:
  explicit UnionFind(int n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  int Find(int v) {
    while (parent_[v] != v) {
      parent_[v] = parent_[parent_[v]];
      v = parent_[v];
    }
    return v;
  }
  bool Union(int a, int b) {
    const int ra = Find(a);
    const int rb = Find(b);
    if (ra == rb) {
      return false;
    }
    parent_[ra] = rb;
    return true;
  }

 private:
  std::vector<int> parent_;
};

/// Spanning tree keeping the most selective (smallest-selectivity)
/// predicates — the edges that shrink intermediates most, which is what
/// the linearization should schedule around. Standard LinDP adaptation
/// for cyclic graphs.
Result<QueryGraph> MinSelectivitySpanningTree(const QueryGraph& graph) {
  QueryGraph tree;
  for (int i = 0; i < graph.relation_count(); ++i) {
    Result<int> added = tree.AddRelation(graph.cardinality(i), graph.name(i));
    JOINOPT_RETURN_IF_ERROR(added.status());
  }
  std::vector<int> edge_order(graph.edge_count());
  std::iota(edge_order.begin(), edge_order.end(), 0);
  std::sort(edge_order.begin(), edge_order.end(), [&graph](int a, int b) {
    return graph.edges()[a].selectivity < graph.edges()[b].selectivity;
  });
  UnionFind components(graph.relation_count());
  for (const int e : edge_order) {
    const JoinEdge& edge = graph.edges()[e];
    if (components.Union(edge.left, edge.right)) {
      JOINOPT_RETURN_IF_ERROR(
          tree.AddEdge(edge.left, edge.right, edge.selectivity));
    }
  }
  return tree;
}

}  // namespace

Result<OptimizationResult> LinDP::Optimize(OptimizerContext& ctx) const {
  JOINOPT_RETURN_IF_ERROR(
      internal::BeginOptimize(ctx, name(), /*require_connected=*/true));
  const QueryGraph& graph = ctx.graph();
  const int n = graph.relation_count();
  OptimizerStats& stats = ctx.stats();

  // Step 1: linearize. Trees go straight to IKKBZ; cyclic graphs through
  // the minimum-selectivity spanning tree.
  Result<std::vector<int>> order = Status::Internal("unset");
  if (graph.edge_count() == n - 1) {
    order = internal::IkkbzLinearize(graph, &stats.inner_counter);
  } else {
    Result<QueryGraph> spanning_tree = MinSelectivitySpanningTree(graph);
    JOINOPT_RETURN_IF_ERROR(spanning_tree.status());
    order = internal::IkkbzLinearize(*spanning_tree, &stats.inner_counter);
  }
  JOINOPT_RETURN_IF_ERROR(order.status());

  // Step 2: interval DP over the order (against the ORIGINAL graph, so
  // every cyclic edge still contributes its selectivity and adjacency).
  ctx.InstallTable(internal::MakeAdaptivePlanTable(
      graph, ctx.options().memo_entry_budget));
  PlanTable& table = ctx.table();
  bool live = internal::SeedLeafPlans(ctx);

  // interval_set[i][j] = set of relations order[i..j] inclusive.
  const auto interval_set = [&order](int i, int j) {
    NodeSet set;
    for (int k = i; k <= j; ++k) {
      set.Add((*order)[k]);
    }
    return set;
  };

  for (int length = 2; live && length <= n; ++length) {
    for (int i = 0; live && i + length - 1 < n; ++i) {
      const int j = i + length - 1;
      for (int split = i; split < j; ++split) {
        ++stats.inner_counter;
        const NodeSet left = interval_set(i, split);
        const NodeSet right = interval_set(split + 1, j);
        // Both halves must already have plans (connected intervals) and
        // be joined by an edge.
        if (table.Find(left) == kInvalidPlanRef ||
            table.Find(right) == kInvalidPlanRef) {
          continue;
        }
        if (!graph.AreConnected(left, right)) {
          continue;
        }
        stats.csg_cmp_pair_counter += 2;
        ctx.TraceCsgCmpPair(left, right);
        if (!internal::CreateJoinTreeBothOrders(ctx, left, right)) {
          live = false;
          break;
        }
      }
      if (ctx.Tick()) {
        live = false;
      }
    }
  }

  stats.ono_lohman_counter = stats.csg_cmp_pair_counter / 2;
  return internal::FinishOptimize(ctx);
}

}  // namespace joinopt
