#ifndef JOINOPT_CORE_LINDP_H_
#define JOINOPT_CORE_LINDP_H_

#include "core/optimizer.h"

namespace joinopt {

/// LinDP — linearized dynamic programming [Neumann & Radke, ICDE 2018
/// "Adaptive Optimization of Very Large Join Queries"]: the modern
/// technique for join counts far beyond exact-DP reach, built directly on
/// the two exact algorithms in this library.
///
///   1. Linearize: compute an optimal LEFT-DEEP relation order with
///      IKKBZ (exact for tree queries under C_out; for cyclic graphs a
///      minimum-selectivity spanning tree stands in — the standard
///      adaptation).
///   2. DP over intervals: run a matrix-chain-style DP over CONTIGUOUS
///      intervals of that order, allowing bushy trees but only interval
///      splits, skipping splits whose halves are not joined by an edge.
///      O(n³) interval pairs instead of exponential subsets.
///
/// The interval space contains the left-deep tree of the chosen order,
/// so LinDP is never worse than IKKBZ's plan; it is bounded below by the
/// DPccp optimum (both asserted by the tests). On tree queries it is
/// empirically near-exact; it handles hundreds of relations in principle
/// (here: up to the library's 64-relation bound).
class LinDP final : public JoinOrderer {
 public:
  LinDP() = default;

  std::string_view name() const override { return "LinDP"; }

  using JoinOrderer::Optimize;
  Result<OptimizationResult> Optimize(OptimizerContext& ctx) const override;
};

}  // namespace joinopt

#endif  // JOINOPT_CORE_LINDP_H_
