#include "core/optimizer.h"

#include <string>
#include <utility>

#include "cost/saturation.h"
#include "enumerate/csg.h"
#include "graph/connectivity.h"

namespace joinopt {

Result<OptimizationResult> JoinOrderer::Optimize(
    const QueryGraph& graph, const CostModel& cost_model,
    const OptimizeOptions& options) const {
  OptimizerContext ctx(graph, cost_model, options);
  return Optimize(ctx);
}

namespace internal {

PlanTable MakeAdaptivePlanTable(const QueryGraph& graph,
                                uint64_t memo_entry_budget) {
  const int n = graph.relation_count();
  constexpr int kDenseLimit = 20;
  if (n > kDenseLimit) {
    // Forced sparse.
    return PlanTable(n, kDenseLimit, memo_entry_budget);
  }
  if (n <= 14) {
    // Dense is always cheap here (budget permitting).
    return PlanTable(n, kDenseLimit, memo_entry_budget);
  }
  // Dense pays off above ~1/16 fill; the counting pre-pass costs
  // O(min(#csg, cap)), a fraction of the enumeration that follows.
  const uint64_t cap = (uint64_t{1} << n) / 16;
  const uint64_t csg_count = CountConnectedSubsetsUpTo(graph, cap);
  return PlanTable(n, csg_count >= cap ? kDenseLimit : 0, memo_entry_budget);
}

Status ValidateOptimizerInput(const QueryGraph& graph,
                              bool require_connected) {
  if (graph.relation_count() == 0) {
    return Status::InvalidArgument("query graph has no relations");
  }
  JOINOPT_RETURN_IF_ERROR(ValidateGraphStatistics(graph));
  if (require_connected && !IsConnectedGraph(graph)) {
    return Status::FailedPrecondition(
        "query graph is disconnected; cross-product-free join trees do not "
        "exist (use a cross-product-enabled variant)");
  }
  return Status::OK();
}

Status BeginOptimize(OptimizerContext& ctx, std::string_view algorithm,
                     bool require_connected) {
  JOINOPT_RETURN_IF_ERROR(
      ValidateOptimizerInput(ctx.graph(), require_connected));
  ctx.stats().algorithm = std::string(algorithm);
  if (JOINOPT_UNLIKELY(ctx.has_trace())) {
    ctx.governor().GuardedTrace(
        [&] { ctx.options().trace->OnAlgorithmStart(algorithm, ctx.graph()); });
    if (JOINOPT_UNLIKELY(ctx.exhausted())) {
      return ctx.limit_status();
    }
  }
  return Status::OK();
}

bool SeedLeafPlans(OptimizerContext& ctx) {
  const QueryGraph& graph = ctx.work_graph();
  PlanTable& table = ctx.table();
  for (int i = 0; i < graph.relation_count(); ++i) {
    const NodeSet leaf = NodeSet::Singleton(i);
    table.RegisterLeaf(leaf, graph.cardinality(i));
    ctx.TracePlanInserted(leaf, 0.0, graph.cardinality(i));
  }
  ctx.stats().plans_stored = table.populated_count();
  return ctx.WithinMemoBudget(table.populated_count());
}

namespace {

/// Interns the combined set, computing its canonical cardinality on the
/// first reach and running the memo-budget check for the fresh entry.
/// Under the independence model |⋈ S| is plan-independent, so the
/// selectivity scan runs only the FIRST time a set is reached; later
/// combinations reuse the stored estimate. On dense graphs (clique-20:
/// 1.7e9 pairs, 1e6 sets) this is the difference between minutes and
/// seconds. The estimate is the CANONICAL per-set product (EstimateSet,
/// fixed evaluation order) rather than the incremental
/// card(s1)·card(s2)·sel(s1,s2): algebraically identical, but under
/// ceiling-clamped saturation the incremental form depends on which
/// split reached the set first, which would let different enumeration
/// orders — and the plan validator — disagree on the same set.
PlanRef InternCombined(OptimizerContext& ctx, NodeSet combined,
                       bool& keep_going) {
  PlanTable& table = ctx.table();
  bool created = false;
  const PlanRef ref = table.Intern(combined, created, [&ctx, combined] {
    return ctx.estimator().EstimateSet(combined);
  });
  if (JOINOPT_UNLIKELY(ref == kInvalidPlanRef)) {
    // The size layer overflowed the 26-bit PlanRef offset space — a
    // memo-capacity exhaustion, reported through the same sticky typed
    // channel as the configured budget so salvage/policies handle both
    // identically.
    ctx.governor().InjectFailure(Status::BudgetExceeded(
        "plan table layer for " + std::to_string(combined.count()) +
        "-relation sets overflowed the 26-bit PlanRef offset space"));
    keep_going = false;
    return kInvalidPlanRef;
  }
  if (created) {
    ctx.stats().plans_stored = table.populated_count();
    keep_going = ctx.WithinMemoBudget(table.populated_count());
  }
  return ref;
}

/// Prices one operand order against the entry at `ref` and relaxes it.
/// Saturated: with ceiling-clamped costs `cost < table.cost(ref)` stays
/// a meaningful comparison even when adversarial statistics overflow —
/// inf would freeze entries at "unimprovable" and NaN would corrupt the
/// min (see cost/saturation.h). The relax stays a strict cost-only
/// compare on purpose: the serial DPs' first-minimal tie-break is part
/// of the pinned plan-shape contract (see the representation
/// equivalence suite); the (cost, left, right) tie-break exists only
/// where determinism across work partitionings requires it (MergeLayer
/// and the parallel workers' reductions).
void RelaxOneOrder(OptimizerContext& ctx, PlanRef ref, NodeSet combined,
                   double build_cost, double build_card, double probe_cost,
                   double probe_card, double out_card, PlanRef build_ref,
                   PlanRef probe_ref) {
  PlanTable& table = ctx.table();
  const double cost = SaturateCost(
      build_cost + probe_cost +
      ctx.cost_model().JoinCost(build_card, probe_card, out_card));
  if (cost < table.cost(ref)) {
    table.SetPlan(ref, cost, build_ref, probe_ref,
                  ctx.cost_model().OperatorFor(build_card, probe_card,
                                               out_card));
    ctx.TracePlanInserted(combined, cost, out_card);
  } else {
    ctx.TracePruned(combined, cost, table.cost(ref));
  }
}

}  // namespace

bool CreateJoinTree(OptimizerContext& ctx, NodeSet s1, NodeSet s2) {
  OptimizerStats& stats = ctx.stats();
  PlanTable& table = ctx.table();
  ++stats.create_join_tree_calls;

  const PlanRef left = table.Find(s1);
  const PlanRef right = table.Find(s2);
  JOINOPT_DCHECK(left != kInvalidPlanRef && right != kInvalidPlanRef);
  const double left_cost = table.cost(left);
  const double left_card = table.cardinality(left);
  const double right_cost = table.cost(right);
  const double right_card = table.cardinality(right);

  const NodeSet combined = s1 | s2;
  bool keep_going = true;
  const PlanRef ref = InternCombined(ctx, combined, keep_going);
  if (JOINOPT_UNLIKELY(ref == kInvalidPlanRef)) {
    return false;
  }
  RelaxOneOrder(ctx, ref, combined, left_cost, left_card, right_cost,
                right_card, table.cardinality(ref), left, right);
  return keep_going;
}

bool CreateJoinTreeBothOrders(OptimizerContext& ctx, PlanRef left_ref,
                              PlanRef right_ref) {
  OptimizerStats& stats = ctx.stats();
  PlanTable& table = ctx.table();
  stats.create_join_tree_calls += 2;

  const NodeSet s1 = table.set(left_ref);
  const NodeSet s2 = table.set(right_ref);
  const double left_cost = table.cost(left_ref);
  const double left_card = table.cardinality(left_ref);
  const double right_cost = table.cost(right_ref);
  const double right_card = table.cardinality(right_ref);

  const NodeSet combined = s1 | s2;
  bool keep_going = true;
  const PlanRef ref = InternCombined(ctx, combined, keep_going);
  if (JOINOPT_UNLIKELY(ref == kInvalidPlanRef)) {
    return false;
  }
  const double out_card = table.cardinality(ref);
  RelaxOneOrder(ctx, ref, combined, left_cost, left_card, right_cost,
                right_card, out_card, left_ref, right_ref);
  RelaxOneOrder(ctx, ref, combined, right_cost, right_card, left_cost,
                left_card, out_card, right_ref, left_ref);
  return keep_going;
}

bool CreateJoinTreeBothOrders(OptimizerContext& ctx, NodeSet s1, NodeSet s2) {
  PlanTable& table = ctx.table();
  const PlanRef left = table.Find(s1);
  const PlanRef right = table.Find(s2);
  JOINOPT_DCHECK(left != kInvalidPlanRef && right != kInvalidPlanRef);
  return CreateJoinTreeBothOrders(ctx, left, right);
}

Result<OptimizationResult> ExtractResult(OptimizerContext& ctx) {
  Result<JoinTree> tree =
      JoinTree::FromPlanTable(ctx.table(), ctx.work_graph().AllRelations());
  JOINOPT_RETURN_IF_ERROR(tree.status());
  OptimizerStats stats = ctx.stats();
  stats.elapsed_seconds = ctx.ElapsedSeconds();
  if (JOINOPT_UNLIKELY(!ctx.options().collect_counters)) {
    stats.inner_counter = 0;
    stats.csg_cmp_pair_counter = 0;
    stats.ono_lohman_counter = 0;
    stats.create_join_tree_calls = 0;
  }
  OptimizationResult result{std::move(*tree), 0.0, 0.0, std::move(stats),
                            DegradationReport()};
  result.cost = result.plan.cost();
  result.cardinality = result.plan.cardinality();
  return result;
}

Result<OptimizationResult> FinishOptimize(OptimizerContext& ctx,
                                          bool allow_cross_products) {
  if (JOINOPT_LIKELY(!ctx.exhausted())) {
    return ExtractResult(ctx);
  }
  if (!ctx.options().salvage_on_interrupt) {
    return ctx.limit_status();
  }
  const QueryGraph& graph = ctx.work_graph();
  Result<MemoSalvage::Outcome> salvaged = MemoSalvage::Run(
      ctx.table(), graph.AllRelations(), ctx.cost_model(),
      [&graph](NodeSet s1, NodeSet s2) { return graph.AreConnected(s1, s2); },
      [&ctx](NodeSet s) { return ctx.estimator().EstimateSet(s); },
      allow_cross_products, ctx.limit_status());
  if (!salvaged.ok()) {
    return ctx.limit_status();
  }
  OptimizerStats stats = ctx.stats();
  stats.plans_stored = ctx.table().populated_count();
  stats.elapsed_seconds = ctx.ElapsedSeconds();
  stats.best_effort = true;
  stats.memo_coverage = salvaged->report.memo_coverage;
  if (JOINOPT_UNLIKELY(!ctx.options().collect_counters)) {
    stats.inner_counter = 0;
    stats.csg_cmp_pair_counter = 0;
    stats.ono_lohman_counter = 0;
    stats.create_join_tree_calls = 0;
  }
  OptimizationResult result{std::move(salvaged->plan), 0.0, 0.0,
                            std::move(stats), std::move(salvaged->report)};
  result.cost = result.plan.cost();
  result.cardinality = result.plan.cardinality();
  return result;
}

}  // namespace internal
}  // namespace joinopt
