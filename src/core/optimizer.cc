#include "core/optimizer.h"

#include <string>
#include <utility>

#include "cost/saturation.h"
#include "enumerate/csg.h"
#include "graph/connectivity.h"

namespace joinopt {

Result<OptimizationResult> JoinOrderer::Optimize(
    const QueryGraph& graph, const CostModel& cost_model,
    const OptimizeOptions& options) const {
  OptimizerContext ctx(graph, cost_model, options);
  return Optimize(ctx);
}

namespace internal {

PlanTable MakeAdaptivePlanTable(const QueryGraph& graph,
                                uint64_t memo_entry_budget,
                                int sparse_shards) {
  const int n = graph.relation_count();
  constexpr int kDenseLimit = 20;
  if (n > kDenseLimit) {
    // Forced sparse.
    return PlanTable(n, kDenseLimit, memo_entry_budget, sparse_shards);
  }
  if (n <= 14) {
    // Dense is always cheap here (budget permitting).
    return PlanTable(n, kDenseLimit, memo_entry_budget, sparse_shards);
  }
  // Dense pays off above ~1/16 fill; the counting pre-pass costs
  // O(min(#csg, cap)), a fraction of the enumeration that follows.
  const uint64_t cap = (uint64_t{1} << n) / 16;
  const uint64_t csg_count = CountConnectedSubsetsUpTo(graph, cap);
  return PlanTable(n, csg_count >= cap ? kDenseLimit : 0, memo_entry_budget,
                   sparse_shards);
}

Status ValidateOptimizerInput(const QueryGraph& graph,
                              bool require_connected) {
  if (graph.relation_count() == 0) {
    return Status::InvalidArgument("query graph has no relations");
  }
  JOINOPT_RETURN_IF_ERROR(ValidateGraphStatistics(graph));
  if (require_connected && !IsConnectedGraph(graph)) {
    return Status::FailedPrecondition(
        "query graph is disconnected; cross-product-free join trees do not "
        "exist (use a cross-product-enabled variant)");
  }
  return Status::OK();
}

Status BeginOptimize(OptimizerContext& ctx, std::string_view algorithm,
                     bool require_connected) {
  JOINOPT_RETURN_IF_ERROR(
      ValidateOptimizerInput(ctx.graph(), require_connected));
  ctx.stats().algorithm = std::string(algorithm);
  if (JOINOPT_UNLIKELY(ctx.has_trace())) {
    ctx.governor().GuardedTrace(
        [&] { ctx.options().trace->OnAlgorithmStart(algorithm, ctx.graph()); });
    if (JOINOPT_UNLIKELY(ctx.exhausted())) {
      return ctx.limit_status();
    }
  }
  return Status::OK();
}

bool SeedLeafPlans(OptimizerContext& ctx) {
  const QueryGraph& graph = ctx.work_graph();
  PlanTable& table = ctx.table();
  for (int i = 0; i < graph.relation_count(); ++i) {
    const NodeSet leaf = NodeSet::Singleton(i);
    PlanEntry& entry = table.GetOrCreate(leaf);
    entry.left = NodeSet();
    entry.right = NodeSet();
    entry.cost = 0.0;
    entry.cardinality = graph.cardinality(i);
    table.NotePopulated();
    ctx.TracePlanInserted(leaf, 0.0, entry.cardinality);
  }
  ctx.stats().plans_stored = table.populated_count();
  return ctx.WithinMemoBudget(table.populated_count());
}

bool CreateJoinTree(OptimizerContext& ctx, NodeSet s1, NodeSet s2) {
  OptimizerStats& stats = ctx.stats();
  PlanTable& table = ctx.table();
  ++stats.create_join_tree_calls;

  const PlanTable::ConstRef left = table.FindRef(s1);
  const PlanTable::ConstRef right = table.FindRef(s2);
  JOINOPT_DCHECK(left && right);
  // Copy the operand fields before GetOrCreate: the sparse backend
  // invalidates outstanding entry references on mutation. ConstRef turns
  // a violation of that rule into a debug-build abort instead of silent
  // garbage.
  const double left_cost = left->cost;
  const double left_card = left->cardinality;
  const double right_cost = right->cost;
  const double right_card = right->cardinality;

  const NodeSet combined = s1 | s2;
  PlanEntry& entry = table.GetOrCreate(combined);
  // Under the independence model |⋈ S| is plan-independent, so the
  // selectivity scan runs only the FIRST time a set is reached; later
  // combinations reuse the stored estimate. On dense graphs (clique-20:
  // 1.7e9 pairs, 1e6 sets) this is the difference between minutes and
  // seconds. The estimate is the CANONICAL per-set product (EstimateSet,
  // fixed evaluation order) rather than the incremental
  // card(s1)·card(s2)·sel(s1,s2): algebraically identical, but under
  // ceiling-clamped saturation the incremental form depends on which
  // split reached the set first, which would let different enumeration
  // orders — and the plan validator — disagree on the same set.
  double out_card;
  bool keep_going = true;
  if (entry.has_plan()) {
    out_card = entry.cardinality;
  } else {
    out_card = ctx.estimator().EstimateSet(combined);
    entry.cardinality = out_card;
    table.NotePopulated();
    stats.plans_stored = table.populated_count();
    keep_going = ctx.WithinMemoBudget(table.populated_count());
  }

  // Saturated: with ceiling-clamped costs `cost < entry.cost` stays a
  // meaningful comparison even when adversarial statistics overflow —
  // inf would freeze entries at "unimprovable" and NaN would corrupt the
  // min (see cost/saturation.h).
  const double cost = SaturateCost(
      left_cost + right_cost +
      ctx.cost_model().JoinCost(left_card, right_card, out_card));
  if (cost < entry.cost) {
    entry.left = s1;
    entry.right = s2;
    entry.cost = cost;
    entry.op = ctx.cost_model().OperatorFor(left_card, right_card, out_card);
    ctx.TracePlanInserted(combined, cost, out_card);
  } else {
    ctx.TracePruned(combined, cost, entry.cost);
  }
  return keep_going;
}

Result<OptimizationResult> ExtractResult(OptimizerContext& ctx) {
  Result<JoinTree> tree =
      JoinTree::FromPlanTable(ctx.table(), ctx.work_graph().AllRelations());
  JOINOPT_RETURN_IF_ERROR(tree.status());
  OptimizerStats stats = ctx.stats();
  stats.elapsed_seconds = ctx.ElapsedSeconds();
  if (JOINOPT_UNLIKELY(!ctx.options().collect_counters)) {
    stats.inner_counter = 0;
    stats.csg_cmp_pair_counter = 0;
    stats.ono_lohman_counter = 0;
    stats.create_join_tree_calls = 0;
  }
  OptimizationResult result{std::move(*tree), 0.0, 0.0, std::move(stats),
                            DegradationReport()};
  result.cost = result.plan.cost();
  result.cardinality = result.plan.cardinality();
  return result;
}

Result<OptimizationResult> FinishOptimize(OptimizerContext& ctx,
                                          bool allow_cross_products) {
  if (JOINOPT_LIKELY(!ctx.exhausted())) {
    return ExtractResult(ctx);
  }
  if (!ctx.options().salvage_on_interrupt) {
    return ctx.limit_status();
  }
  const QueryGraph& graph = ctx.work_graph();
  Result<MemoSalvage::Outcome> salvaged = MemoSalvage::Run(
      ctx.table(), graph.AllRelations(), ctx.cost_model(),
      [&graph](NodeSet s1, NodeSet s2) { return graph.AreConnected(s1, s2); },
      [&ctx](NodeSet s) { return ctx.estimator().EstimateSet(s); },
      allow_cross_products, ctx.limit_status());
  if (!salvaged.ok()) {
    return ctx.limit_status();
  }
  OptimizerStats stats = ctx.stats();
  stats.plans_stored = ctx.table().populated_count();
  stats.elapsed_seconds = ctx.ElapsedSeconds();
  stats.best_effort = true;
  stats.memo_coverage = salvaged->report.memo_coverage;
  if (JOINOPT_UNLIKELY(!ctx.options().collect_counters)) {
    stats.inner_counter = 0;
    stats.csg_cmp_pair_counter = 0;
    stats.ono_lohman_counter = 0;
    stats.create_join_tree_calls = 0;
  }
  OptimizationResult result{std::move(salvaged->plan), 0.0, 0.0,
                            std::move(stats), std::move(salvaged->report)};
  result.cost = result.plan.cost();
  result.cardinality = result.plan.cardinality();
  return result;
}

}  // namespace internal
}  // namespace joinopt
