#include "core/optimizer.h"

#include <utility>

#include "enumerate/csg.h"
#include "graph/connectivity.h"

namespace joinopt {
namespace internal {

PlanTable MakeAdaptivePlanTable(const QueryGraph& graph) {
  const int n = graph.relation_count();
  constexpr int kDenseLimit = 20;
  if (n > kDenseLimit) {
    return PlanTable(n, kDenseLimit);  // Forced sparse.
  }
  if (n <= 14) {
    return PlanTable(n, kDenseLimit);  // Dense is always cheap here.
  }
  // Dense pays off above ~1/16 fill; the counting pre-pass costs
  // O(min(#csg, cap)), a fraction of the enumeration that follows.
  const uint64_t cap = (uint64_t{1} << n) / 16;
  const uint64_t csg_count = CountConnectedSubsetsUpTo(graph, cap);
  return PlanTable(n, csg_count >= cap ? kDenseLimit : 0);
}

Status ValidateOptimizerInput(const QueryGraph& graph,
                              bool require_connected) {
  if (graph.relation_count() == 0) {
    return Status::InvalidArgument("query graph has no relations");
  }
  if (require_connected && !IsConnectedGraph(graph)) {
    return Status::FailedPrecondition(
        "query graph is disconnected; cross-product-free join trees do not "
        "exist (use a cross-product-enabled variant)");
  }
  return Status::OK();
}

void SeedLeafPlans(const QueryGraph& graph, PlanTable* table,
                   OptimizerStats* stats) {
  for (int i = 0; i < graph.relation_count(); ++i) {
    PlanEntry& entry = table->GetOrCreate(NodeSet::Singleton(i));
    entry.left = NodeSet();
    entry.right = NodeSet();
    entry.cost = 0.0;
    entry.cardinality = graph.cardinality(i);
    table->NotePopulated();
  }
  stats->plans_stored = table->populated_count();
}

void CreateJoinTree(const QueryGraph& graph, const CostModel& cost_model,
                    NodeSet s1, NodeSet s2, PlanTable* table,
                    OptimizerStats* stats) {
  ++stats->create_join_tree_calls;

  const PlanEntry* left = table->Find(s1);
  const PlanEntry* right = table->Find(s2);
  JOINOPT_DCHECK(left != nullptr && right != nullptr);
  // Copy the operand fields before GetOrCreate: the sparse backend may
  // rehash and invalidate `left`/`right`.
  const double left_cost = left->cost;
  const double left_card = left->cardinality;
  const double right_cost = right->cost;
  const double right_card = right->cardinality;

  const NodeSet combined = s1 | s2;
  PlanEntry& entry = table->GetOrCreate(combined);
  // Under the independence model |⋈ S| is plan-independent, so the
  // crossing-edge selectivity scan runs only the FIRST time a set is
  // reached; later combinations reuse the stored estimate. On dense
  // graphs (clique-20: 1.7e9 pairs, 1e6 sets) this is the difference
  // between minutes and seconds.
  double out_card;
  if (entry.has_plan()) {
    out_card = entry.cardinality;
  } else {
    const CardinalityEstimator estimator(graph);
    out_card = estimator.JoinCardinality(s1, left_card, s2, right_card);
    entry.cardinality = out_card;
    table->NotePopulated();
    stats->plans_stored = table->populated_count();
  }

  const double cost =
      left_cost + right_cost +
      cost_model.JoinCost(left_card, right_card, out_card);
  if (cost < entry.cost) {
    entry.left = s1;
    entry.right = s2;
    entry.cost = cost;
    entry.op = cost_model.OperatorFor(left_card, right_card, out_card);
  }
}

Result<OptimizationResult> ExtractResult(const QueryGraph& graph,
                                         const PlanTable& table,
                                         OptimizerStats stats) {
  Result<JoinTree> tree = JoinTree::FromPlanTable(table, graph.AllRelations());
  JOINOPT_RETURN_IF_ERROR(tree.status());
  OptimizationResult result{std::move(*tree), 0.0, 0.0, stats};
  result.cost = result.plan.cost();
  result.cardinality = result.plan.cardinality();
  return result;
}

}  // namespace internal
}  // namespace joinopt
