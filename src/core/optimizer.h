#ifndef JOINOPT_CORE_OPTIMIZER_H_
#define JOINOPT_CORE_OPTIMIZER_H_

#include <cstdint>
#include <string_view>

#include "cost/cardinality.h"
#include "cost/cost_model.h"
#include "graph/query_graph.h"
#include "plan/join_tree.h"
#include "plan/plan_table.h"
#include "util/status.h"

namespace joinopt {

/// The instrumentation counters of the paper (Figures 1, 2, 4), plus a few
/// library-level extras. The analytical results of Section 2 are exactly
/// statements about these counters, and the test suite checks the
/// implementation against the closed forms through them.
struct OptimizerStats {
  /// Number of times the innermost loop body was entered (the paper's
  /// InnerCounter): candidate pairs enumerated, counted before any
  /// disjointness/connectivity test.
  uint64_t inner_counter = 0;
  /// Number of csg-cmp-pairs that survived all tests, counting (S1,S2)
  /// and (S2,S1) separately (the paper's CsgCmpPairCounter).
  uint64_t csg_cmp_pair_counter = 0;
  /// csg_cmp_pair_counter / 2 (the paper's OnoLohmanCounter).
  uint64_t ono_lohman_counter = 0;
  /// Number of CreateJoinTree invocations (plan constructions costed).
  uint64_t create_join_tree_calls = 0;
  /// Number of sets with a registered plan at termination (incl. leaves).
  uint64_t plans_stored = 0;
  /// Wall-clock optimization time.
  double elapsed_seconds = 0.0;
};

/// The output of a join orderer: the chosen plan plus instrumentation.
struct OptimizationResult {
  JoinTree plan;
  /// Total cost of `plan` under the cost model used.
  double cost = 0.0;
  /// Estimated result cardinality.
  double cardinality = 0.0;
  OptimizerStats stats;
};

/// Interface shared by every join-ordering algorithm in the library
/// (DPsize, DPsub, DPccp, the cross-product variants, the left-deep DP,
/// and the greedy baseline).
class JoinOrderer {
 public:
  virtual ~JoinOrderer() = default;

  /// Stable display name ("DPsize", "DPccp", ...).
  virtual std::string_view name() const = 0;

  /// Computes a join tree for `graph` under `cost_model`. The exact
  /// optimizers guarantee an optimal bushy tree in their search space;
  /// heuristics (GOO) return a valid but possibly suboptimal tree.
  ///
  /// Fails when the graph is empty or (for the cross-product-free
  /// algorithms) disconnected.
  virtual Result<OptimizationResult> Optimize(
      const QueryGraph& graph, const CostModel& cost_model) const = 0;
};

namespace internal {

/// Shared plumbing for the DP algorithm implementations. Not part of the
/// public API.

/// Validates the common preconditions: at least one relation and (when
/// `require_connected`) a connected graph.
Status ValidateOptimizerInput(const QueryGraph& graph, bool require_connected);

/// Builds a plan table with a backend chosen by the graph's search-space
/// density: a capped connected-subset count decides between the dense
/// array (stars/cliques: high fill fraction, O(1) access) and the hash
/// map (chains/cycles at large n: zero-filling 2^n dense slots would
/// dominate the whole optimization). Used by the enumeration-bounded
/// algorithms (DPsize, DPccp, ...); DPsub keeps the dense backend
/// unconditionally since its outer loop touches every mask anyway.
PlanTable MakeAdaptivePlanTable(const QueryGraph& graph);

/// Seeds `table` with the single-relation plans (cost 0, base
/// cardinality) and counts them in `stats`.
void SeedLeafPlans(const QueryGraph& graph, PlanTable* table,
                   OptimizerStats* stats);

/// The CreateJoinTree step shared by all DPs: prices joining the best
/// plans for `s1` and `s2` (in that order: s1 = left/build) and updates
/// the table entry for s1 ∪ s2 if cheaper. Requires both operand entries
/// to exist. Increments stats->create_join_tree_calls and
/// stats->plans_stored (via table bookkeeping) as appropriate.
void CreateJoinTree(const QueryGraph& graph, const CostModel& cost_model,
                    NodeSet s1, NodeSet s2, PlanTable* table,
                    OptimizerStats* stats);

/// CreateJoinTree for both operand orders (join commutativity), as DPccp
/// and the optimized DPsize require.
inline void CreateJoinTreeBothOrders(const QueryGraph& graph,
                                     const CostModel& cost_model, NodeSet s1,
                                     NodeSet s2, PlanTable* table,
                                     OptimizerStats* stats) {
  CreateJoinTree(graph, cost_model, s1, s2, table, stats);
  CreateJoinTree(graph, cost_model, s2, s1, table, stats);
}

/// Packages the table's plan for all relations of `graph` into an
/// OptimizationResult. Fails if the table holds no such plan (optimizer
/// bug or violated precondition).
Result<OptimizationResult> ExtractResult(const QueryGraph& graph,
                                         const PlanTable& table,
                                         OptimizerStats stats);

}  // namespace internal

}  // namespace joinopt

#endif  // JOINOPT_CORE_OPTIMIZER_H_
