#ifndef JOINOPT_CORE_OPTIMIZER_H_
#define JOINOPT_CORE_OPTIMIZER_H_

#include <cstdint>
#include <string_view>

#include "core/optimizer_context.h"
#include "cost/cardinality.h"
#include "cost/cost_model.h"
#include "graph/query_graph.h"
#include "plan/join_tree.h"
#include "plan/memo_salvage.h"
#include "plan/plan_table.h"
#include "util/status.h"

namespace joinopt {

/// The output of a join orderer: the chosen plan plus instrumentation.
struct OptimizationResult {
  JoinTree plan;
  /// Total cost of `plan` under the cost model used.
  double cost = 0.0;
  /// Estimated result cardinality.
  double cardinality = 0.0;
  OptimizerStats stats;
  /// How the plan degraded when the run was interrupted and salvaged
  /// (OptimizeOptions::salvage_on_interrupt). Inert (best_effort false)
  /// on exact results.
  DegradationReport degradation;
};

/// Interface shared by every join-ordering algorithm in the library
/// (DPsize, DPsub, DPccp, the cross-product variants, the left-deep DP,
/// the heuristics, and the adaptive facade).
///
/// Implementations are stateless apart from construction-time
/// configuration; all per-run state lives in the OptimizerContext, so one
/// orderer instance can serve concurrent runs (the OptimizerRegistry
/// hands out shared instances on that basis).
class JoinOrderer {
 public:
  virtual ~JoinOrderer() = default;

  /// Stable display name ("DPsize", "DPccp", ...).
  virtual std::string_view name() const = 0;

  /// Computes a join tree for ctx.graph() under ctx.cost_model(),
  /// honoring the resource limits and trace sink in ctx.options(). The
  /// exact optimizers guarantee an optimal bushy tree in their search
  /// space; heuristics (GOO, IDP, ...) return a valid but possibly
  /// suboptimal tree.
  ///
  /// Fails with InvalidArgument/FailedPrecondition when the graph is
  /// empty or violates an algorithm precondition (e.g. disconnected input
  /// to a cross-product-free DP), and with kBudgetExceeded when a memo
  /// budget or deadline tripped before a plan was found. The context is
  /// single-use; construct a fresh one per call.
  virtual Result<OptimizationResult> Optimize(OptimizerContext& ctx) const = 0;

  /// Convenience overload: builds a single-use context from the
  /// arguments. This is the drop-in replacement for the historical
  /// two-argument signature — existing `Optimize(graph, cost_model)`
  /// call sites compile unchanged and run unbounded, exactly as before.
  Result<OptimizationResult> Optimize(
      const QueryGraph& graph, const CostModel& cost_model,
      const OptimizeOptions& options = OptimizeOptions()) const;
};

namespace internal {

/// Shared plumbing for the DP algorithm implementations. Not part of the
/// public API.

/// Validates the common preconditions: at least one relation and (when
/// `require_connected`) a connected graph.
Status ValidateOptimizerInput(const QueryGraph& graph, bool require_connected);

/// Run prologue shared by every orderer: validates ctx.graph(), stamps
/// ctx.stats().algorithm, and fires TraceSink::OnAlgorithmStart.
Status BeginOptimize(OptimizerContext& ctx, std::string_view algorithm,
                     bool require_connected);

/// Builds a plan table with a backend chosen by the graph's search-space
/// density: a capped connected-subset count decides between the dense
/// array (stars/cliques: high fill fraction, O(1) access) and the hash
/// map (chains/cycles at large n: zero-filling 2^n dense slots would
/// dominate the whole optimization). Used by the enumeration-bounded
/// algorithms (DPsize, DPccp, ...); DPsub keeps the dense backend
/// unconditionally since its outer loop touches every mask anyway.
/// `memo_entry_budget` (pass ctx.options().memo_entry_budget) keeps the
/// dense 2^n preallocation honest: when it does not fit the budget the
/// table falls back to sparse, so the budget contract is
/// backend-independent. Sparse shard counts are chosen per layer by the
/// table itself (see PlanTable).
PlanTable MakeAdaptivePlanTable(const QueryGraph& graph,
                                uint64_t memo_entry_budget = 0);

/// Seeds ctx.table() with the single-relation plans of ctx.work_graph()
/// (cost 0, base cardinality) and counts them in ctx.stats(). Returns
/// false when the leaf seeds alone exceed the memo budget.
bool SeedLeafPlans(OptimizerContext& ctx);

/// The CreateJoinTree step shared by all DPs: prices joining the best
/// plans for `s1` and `s2` (in that order: s1 = left/build) and updates
/// the table entry for s1 ∪ s2 if cheaper. Requires both operand entries
/// to exist. Increments stats counters and fires the insert/prune trace
/// hooks. Returns false when populating a new entry tripped the memo
/// budget (or a limit had already tripped) — the caller must stop
/// enumerating and return ctx.limit_status().
bool CreateJoinTree(OptimizerContext& ctx, NodeSet s1, NodeSet s2);

/// CreateJoinTree for both operand orders (join commutativity), as DPccp
/// and the optimized DPsize require — fused: the operand lookups, the
/// intern of the combined set, and the budget check run once instead of
/// once per order. Counter and trace behavior is exactly two
/// CreateJoinTree calls (s1,s2 then s2,s1).
bool CreateJoinTreeBothOrders(OptimizerContext& ctx, NodeSet s1, NodeSet s2);

/// The ref-based fast path for callers that already hold the operand
/// refs (the layered DPs iterate slabs directly): skips both Finds.
bool CreateJoinTreeBothOrders(OptimizerContext& ctx, PlanRef left_ref,
                              PlanRef right_ref);

/// Packages the table's plan for all relations of ctx.work_graph() into
/// an OptimizationResult, stamping elapsed time and applying the
/// collect_counters reporting toggle. Fails if the table holds no such
/// plan (optimizer bug or violated precondition).
Result<OptimizationResult> ExtractResult(OptimizerContext& ctx);

/// Run epilogue shared by every memo-based orderer. On a clean run this
/// is ExtractResult; on an interrupted run (ctx.exhausted()) it returns
/// ctx.limit_status() — unless the caller opted into anytime mode
/// (OptimizeOptions::salvage_on_interrupt), in which case the partial
/// memo is completed into a best-effort plan via MemoSalvage, tagged in
/// stats and result.degradation. Must run while any WorkGraphScope is
/// still active: the salvage speaks the memo's numbering, and the caller
/// relabels the returned plan exactly like an exact result. Salvage
/// failure (nothing usable in the memo) falls back to the limit status.
Result<OptimizationResult> FinishOptimize(OptimizerContext& ctx,
                                          bool allow_cross_products = false);

}  // namespace internal

}  // namespace joinopt

#endif  // JOINOPT_CORE_OPTIMIZER_H_
