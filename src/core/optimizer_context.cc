#include "core/optimizer_context.h"

#include <cstdio>

#include "testing/fault_injection.h"

namespace joinopt {

ResourceGovernor::ResourceGovernor(const OptimizeOptions& options)
    : options_(options),
      unlimited_deadline_(options.deadline_seconds <= 0),
      fault_mode_(testing::FaultInjector::Instance().enabled()) {}

void ResourceGovernor::NoteDeadlineFault() {
  testing::FaultInjector& injector = testing::FaultInjector::Instance();
  if (!exhausted_ &&
      injector.ShouldFire(testing::FaultPoint::kDeadline)) {
    char msg[128];
    std::snprintf(msg, sizeof(msg),
                  "fault injection: deadline fired at enumeration tick %llu",
                  static_cast<unsigned long long>(
                      injector.arrivals(testing::FaultPoint::kDeadline)));
    InjectFailure(Status::BudgetExceeded(msg));
  }
}

void ResourceGovernor::NoteAllocFault(uint64_t populated) {
  if (!exhausted_ && testing::FaultInjector::Instance().ShouldFire(
                         testing::FaultPoint::kArenaAlloc)) {
    char msg[128];
    std::snprintf(msg, sizeof(msg),
                  "fault injection: memo arena allocation failed at entry %llu",
                  static_cast<unsigned long long>(populated));
    InjectFailure(Status::Internal(msg));
  }
}

bool ResourceGovernor::TickSlow() {
  tick_countdown_ = kTickInterval;
  return CheckDeadlineNow();
}

bool ResourceGovernor::CheckDeadlineNow() {
  if (exhausted_ || unlimited_deadline_) {
    return exhausted_;
  }
  const double elapsed = stopwatch_.ElapsedSeconds();
  if (elapsed > options_.deadline_seconds) {
    exhausted_ = true;
    char msg[128];
    std::snprintf(msg, sizeof(msg),
                  "optimization deadline of %.6g s exceeded (elapsed %.6g s)",
                  options_.deadline_seconds, elapsed);
    limit_status_ = Status::BudgetExceeded(msg);
  }
  return exhausted_;
}

bool ResourceGovernor::TripMemoBudget(uint64_t populated) {
  if (!exhausted_) {
    exhausted_ = true;
    char msg[128];
    std::snprintf(msg, sizeof(msg),
                  "memo-entry budget of %llu exceeded (%llu entries populated)",
                  static_cast<unsigned long long>(options_.memo_entry_budget),
                  static_cast<unsigned long long>(populated));
    limit_status_ = Status::BudgetExceeded(msg);
  }
  return true;
}

}  // namespace joinopt
