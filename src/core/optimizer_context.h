#ifndef JOINOPT_CORE_OPTIMIZER_CONTEXT_H_
#define JOINOPT_CORE_OPTIMIZER_CONTEXT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "bitset/node_set.h"
#include "cost/cardinality.h"
#include "cost/cost_model.h"
#include "graph/query_graph.h"
#include "plan/plan_table.h"
#include "util/macros.h"
#include "util/status.h"
#include "util/stopwatch.h"

namespace joinopt {

/// The instrumentation counters of the paper (Figures 1, 2, 4), plus a few
/// library-level extras. The analytical results of Section 2 are exactly
/// statements about these counters, and the test suite checks the
/// implementation against the closed forms through them.
struct OptimizerStats {
  /// Number of times the innermost loop body was entered (the paper's
  /// InnerCounter): candidate pairs enumerated, counted before any
  /// disjointness/connectivity test.
  uint64_t inner_counter = 0;
  /// Number of csg-cmp-pairs that survived all tests, counting (S1,S2)
  /// and (S2,S1) separately (the paper's CsgCmpPairCounter).
  uint64_t csg_cmp_pair_counter = 0;
  /// csg_cmp_pair_counter / 2 (the paper's OnoLohmanCounter).
  uint64_t ono_lohman_counter = 0;
  /// Number of CreateJoinTree invocations (plan constructions costed).
  uint64_t create_join_tree_calls = 0;
  /// Number of sets with a registered plan at termination (incl. leaves).
  uint64_t plans_stored = 0;
  /// Wall-clock optimization time.
  double elapsed_seconds = 0.0;
  /// Name of the algorithm that produced the result. For AdaptiveOptimizer
  /// this is the algorithm that actually ran to completion.
  std::string algorithm;
  /// Comma-separated names of algorithms that were started but abandoned
  /// after tripping a resource limit before a fallback produced this
  /// result (AdaptiveOptimizer's graceful degradation). Empty otherwise.
  std::string fallback_from;
  /// True when the plan was completed by MemoSalvage after an interrupted
  /// run rather than by the algorithm finishing (anytime mode; see
  /// plan/memo_salvage.h and OptimizeOptions::salvage_on_interrupt).
  bool best_effort = false;
  /// Fraction of the plan the memo had already decided when the run was
  /// interrupted, in [0, 1]; 1.0 on exact results.
  double memo_coverage = 1.0;
};

/// Observability seam for the optimization pipeline. Subclass and install
/// via OptimizeOptions::trace to watch the DP unfold; the default
/// implementations do nothing, and all call sites guard on a null sink so
/// the untraced hot loops pay a single predicted branch.
class TraceSink {
 public:
  virtual ~TraceSink() = default;

  /// An orderer started on `graph` (after input validation).
  virtual void OnAlgorithmStart(std::string_view algorithm,
                                const QueryGraph& graph) {
    (void)algorithm;
    (void)graph;
  }
  /// A csg-cmp-pair survived all disjointness/connectivity tests. Sets are
  /// in the orderer's working numbering (DPccp and k-best renumber
  /// internally; see OptimizerContext::work_graph).
  virtual void OnCsgCmpPair(NodeSet s1, NodeSet s2) {
    (void)s1;
    (void)s2;
  }
  /// A memo entry for `s` was created or improved.
  virtual void OnPlanInserted(NodeSet s, double cost, double cardinality) {
    (void)s;
    (void)cost;
    (void)cardinality;
  }
  /// A candidate plan for `s` was priced and rejected (>= best known).
  virtual void OnPruned(NodeSet s, double rejected_cost, double best_cost) {
    (void)s;
    (void)rejected_cost;
    (void)best_cost;
  }
  /// AdaptiveOptimizer abandoned `from` (which failed with `why`) and is
  /// retrying with `to`.
  virtual void OnFallback(std::string_view from, std::string_view to,
                          const Status& why) {
    (void)from;
    (void)to;
    (void)why;
  }
};

/// Knobs shared by every join orderer. The zero value of each limit means
/// "unlimited", so a default-constructed OptimizeOptions reproduces the
/// historical unbounded behavior.
struct OptimizeOptions {
  /// Maximum number of populated memo entries (including the leaf seeds)
  /// before the run aborts with kBudgetExceeded. 0 = unlimited. This is
  /// the memory lever: a memo entry is ~41 bytes of slab columns, so a
  /// budget of 2^20 caps the table near 43 MB regardless of query shape.
  uint64_t memo_entry_budget = 0;
  /// Wall-clock deadline for the run, in seconds. 0 = unlimited. Checked
  /// on an amortized schedule (one clock read per ~8k enumeration steps),
  /// so overrun is bounded by the cost of that many inner iterations.
  double deadline_seconds = 0.0;
  /// When false, the paper counters (inner/csg-cmp/Ono-Lohman/
  /// CreateJoinTree) are zeroed in the returned stats. The bookkeeping
  /// itself is branch-free increments cheaper than a per-step toggle
  /// test, so this only controls reporting, not collection.
  bool collect_counters = true;
  /// Optional observability sink; nullptr (the default) keeps every trace
  /// call site on its null fast path. The sink must outlive the run.
  TraceSink* trace = nullptr;
  /// Anytime mode: when a limit (memo budget, deadline) or an injected
  /// fault interrupts the run, complete a best-effort plan from the
  /// partial memo via MemoSalvage instead of failing with the bare limit
  /// status. The result is tagged stats.best_effort with a populated
  /// DegradationReport. Off by default: exact algorithms keep their
  /// fail-fast contract unless the caller opts into degraded answers.
  bool salvage_on_interrupt = false;
  /// Thread count for the parallel orderers (DPsizePar/DPsubPar).
  /// 0 = auto (hardware concurrency); positive values are used as-is,
  /// clamped to [1, 256]. Serial orderers ignore it. The parallel
  /// orderers' output is bit-for-bit identical for every thread count
  /// (see DESIGN.md), so this is purely a latency knob.
  int threads = 0;
};

/// Budget and deadline enforcement shared by OptimizerContext and the
/// optimizers that do not operate on a QueryGraph (DPhyp). Limit state is
/// sticky: once a limit trips, exhausted() stays true and limit_status()
/// carries the kBudgetExceeded explanation.
class ResourceGovernor {
 public:
  explicit ResourceGovernor(const OptimizeOptions& options);

  /// Amortized deadline check for hot loops: a countdown decrement on the
  /// fast path, a clock read once every kTickInterval calls. Returns the
  /// sticky exhausted flag so one call per iteration covers both limits.
  /// With fault injection armed (test-only), every tick also consults the
  /// kDeadline fault point so a deadline can fire at an exact step.
  bool Tick() {
    if (JOINOPT_UNLIKELY(fault_mode_)) {
      NoteDeadlineFault();
    }
    if (JOINOPT_LIKELY(--tick_countdown_ != 0)) {
      return exhausted_;
    }
    return TickSlow();
  }

  /// Memo-budget check, called whenever a new memo entry was populated
  /// with `populated` the new total. Returns false once the budget is
  /// exceeded (sticky, like Tick). With fault injection armed this is
  /// also the kArenaAlloc point: a scheduled allocation failure trips the
  /// governor with kInternal.
  bool WithinMemoBudget(uint64_t populated) {
    if (JOINOPT_UNLIKELY(fault_mode_)) {
      NoteAllocFault(populated);
    }
    if (JOINOPT_LIKELY(options_.memo_entry_budget == 0 ||
                       populated <= options_.memo_entry_budget)) {
      return !exhausted_;
    }
    return !TripMemoBudget(populated);
  }

  /// Trips the governor with an externally detected failure (an injected
  /// fault, a trace sink that threw). Sticky like the limits; the first
  /// failure wins.
  void InjectFailure(Status status) {
    if (!exhausted_) {
      exhausted_ = true;
      limit_status_ = std::move(status);
    }
  }

  /// Runs a user trace callback, containing any escaping exception: the
  /// library itself is exception-free, but a TraceSink is user code. An
  /// exception trips the governor with kInternal, so the run unwinds
  /// through the normal limit path instead of crashing.
  template <typename Fn>
  void GuardedTrace(Fn&& fn) {
    try {
      fn();
    } catch (...) {
      InjectFailure(Status::Internal(
          "user trace sink threw an exception; optimization aborted"));
    }
  }

  /// True once any limit has tripped.
  bool exhausted() const { return exhausted_; }

  /// kBudgetExceeded with the triggering limit (kInternal for injected
  /// failures), or OK while within limits.
  const Status& limit_status() const { return limit_status_; }

  const OptimizeOptions& options() const { return options_; }

  double ElapsedSeconds() const { return stopwatch_.ElapsedSeconds(); }

  /// Immediate (non-amortized) deadline check: reads the clock now and
  /// trips the governor when the deadline has passed, regardless of the
  /// tick countdown. The parallel orderers call this at a layer barrier
  /// after a worker observed the deadline, promoting the observation into
  /// the governor's sticky limit state. Returns exhausted().
  bool CheckDeadlineNow();

 private:
  bool TickSlow();
  bool TripMemoBudget(uint64_t populated);
  void NoteDeadlineFault();
  void NoteAllocFault(uint64_t populated);

  static constexpr uint32_t kTickInterval = 8192;

  OptimizeOptions options_;
  Stopwatch stopwatch_;
  uint32_t tick_countdown_ = kTickInterval;
  bool unlimited_deadline_;
  /// Cached FaultInjector::enabled() so un-faulted runs pay one predicted
  /// branch per tick.
  bool fault_mode_;
  bool exhausted_ = false;
  Status limit_status_;
};

/// Everything one optimization run needs, bundled: the query, the cost
/// model, the memo, the stats, the cardinality estimator, and the resource
/// governor. A context is single-use — construct one per Optimize call
/// (the two-argument JoinOrderer::Optimize convenience overload does
/// exactly that).
///
/// Algorithms that renumber relations internally (DPccp, k-best) install
/// the relabeled graph as the *work graph*; the memo, the estimator, and
/// every trace callback then speak the working numbering, while graph()
/// keeps returning the caller's original graph.
class OptimizerContext {
 public:
  /// Borrows `graph` and `cost_model` (and options.trace, when set); all
  /// must outlive the context.
  OptimizerContext(const QueryGraph& graph, const CostModel& cost_model,
                   const OptimizeOptions& options = OptimizeOptions())
      : graph_(&graph),
        work_graph_(&graph),
        cost_model_(&cost_model),
        estimator_(graph),
        table_(0),
        governor_(options) {}

  OptimizerContext(const OptimizerContext&) = delete;
  OptimizerContext& operator=(const OptimizerContext&) = delete;

  const QueryGraph& graph() const { return *graph_; }
  const CostModel& cost_model() const { return *cost_model_; }
  const OptimizeOptions& options() const { return governor_.options(); }

  OptimizerStats& stats() { return stats_; }
  const OptimizerStats& stats() const { return stats_; }

  /// The graph the DP currently enumerates over: the input graph, unless
  /// an algorithm installed a relabeled copy via SetWorkGraph.
  const QueryGraph& work_graph() const { return *work_graph_; }

  /// Points the context (and its estimator) at a relabeled graph. Use
  /// WorkGraphScope instead of calling this directly — the installed
  /// graph is typically a local of Optimize and must not outlive it.
  ///
  /// When `new_to_old` is supplied (work label -> original node index,
  /// borrowed for the scope's lifetime) the estimator stays bound to the
  /// ORIGINAL graph and translates sets back before evaluating, so
  /// per-set estimates — and therefore plan costs — are bit-identical
  /// across relabeled and non-relabeled enumerations (see
  /// cost/cardinality.h on numbering invariance).
  void SetWorkGraph(const QueryGraph& graph,
                    const std::vector<int>* new_to_old = nullptr) {
    work_graph_ = &graph;
    estimator_ = new_to_old == nullptr
                     ? CardinalityEstimator(graph)
                     : CardinalityEstimator(*graph_, *new_to_old);
  }
  void ResetWorkGraph() { SetWorkGraph(*graph_); }

  const CardinalityEstimator& estimator() const { return estimator_; }

  PlanTable& table() { return table_; }
  const PlanTable& table() const { return table_; }
  void InstallTable(PlanTable table) { table_ = std::move(table); }

  ResourceGovernor& governor() { return governor_; }

  /// Limit shorthands (see ResourceGovernor).
  bool Tick() { return governor_.Tick(); }
  bool WithinMemoBudget(uint64_t populated) {
    return governor_.WithinMemoBudget(populated);
  }
  bool exhausted() const { return governor_.exhausted(); }
  const Status& limit_status() const { return governor_.limit_status(); }
  double ElapsedSeconds() const { return governor_.ElapsedSeconds(); }

  /// Re-arms a context for another Optimize call. The context is
  /// single-use by default because the governor's limit state is sticky
  /// and the memo carries the previous run; this resets both (fresh
  /// governor under `options`, empty table, zeroed stats) without
  /// re-binding the graph or cost model — the recovery path after a
  /// kBudgetExceeded run (see the re-entrancy tests).
  void ResetForRerun(const OptimizeOptions& options = OptimizeOptions()) {
    governor_ = ResourceGovernor(options);
    stats_ = OptimizerStats();
    table_ = PlanTable(0);
    ResetWorkGraph();
  }

  /// Trace shorthands with the null-sink fast path inlined. Dispatch is
  /// exception-guarded: a throwing sink trips the governor with kInternal
  /// instead of propagating (see ResourceGovernor::GuardedTrace).
  bool has_trace() const { return options().trace != nullptr; }
  void TraceCsgCmpPair(NodeSet s1, NodeSet s2) {
    if (JOINOPT_UNLIKELY(has_trace())) {
      governor_.GuardedTrace(
          [&] { options().trace->OnCsgCmpPair(s1, s2); });
    }
  }
  void TracePlanInserted(NodeSet s, double cost, double cardinality) {
    if (JOINOPT_UNLIKELY(has_trace())) {
      governor_.GuardedTrace(
          [&] { options().trace->OnPlanInserted(s, cost, cardinality); });
    }
  }
  void TracePruned(NodeSet s, double rejected_cost, double best_cost) {
    if (JOINOPT_UNLIKELY(has_trace())) {
      governor_.GuardedTrace(
          [&] { options().trace->OnPruned(s, rejected_cost, best_cost); });
    }
  }

 private:
  const QueryGraph* graph_;
  const QueryGraph* work_graph_;
  const CostModel* cost_model_;
  CardinalityEstimator estimator_;
  PlanTable table_;
  OptimizerStats stats_;
  ResourceGovernor governor_;
};

/// RAII guard for OptimizerContext::SetWorkGraph: restores the context to
/// the original graph on scope exit, so a relabeled local graph can never
/// dangle inside a caller-owned context.
class WorkGraphScope {
 public:
  WorkGraphScope(OptimizerContext& ctx, const QueryGraph& work_graph,
                 const std::vector<int>* new_to_old = nullptr)
      : ctx_(ctx) {
    ctx_.SetWorkGraph(work_graph, new_to_old);
  }
  ~WorkGraphScope() { ctx_.ResetWorkGraph(); }

  WorkGraphScope(const WorkGraphScope&) = delete;
  WorkGraphScope& operator=(const WorkGraphScope&) = delete;

 private:
  OptimizerContext& ctx_;
};

}  // namespace joinopt

#endif  // JOINOPT_CORE_OPTIMIZER_CONTEXT_H_
