#include "core/outcome.h"

#include <bit>
#include <cinttypes>
#include <cstdio>

namespace joinopt {

namespace {

/// The replay contract is bit-for-bit, so compare representations: this
/// treats two NaNs with the same payload as equal (plain == would not)
/// and distinguishes +0 from -0 (both survive serialization unchanged).
bool BitEqual(double a, double b) {
  return std::bit_cast<uint64_t>(a) == std::bit_cast<uint64_t>(b);
}

void AppendDiff(std::string& out, const char* field, const std::string& got,
                const std::string& want) {
  if (!out.empty()) {
    out += '\n';
  }
  out += field;
  out += ": observed ";
  out += got;
  out += ", expected ";
  out += want;
}

std::string FormatG17(double value) {
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

std::string FormatU64(uint64_t value) {
  char buffer[24];
  std::snprintf(buffer, sizeof(buffer), "%" PRIu64, value);
  return buffer;
}

}  // namespace

bool operator==(const OutcomeSignature& a, const OutcomeSignature& b) {
  return a.status == b.status && BitEqual(a.cost, b.cost) &&
         BitEqual(a.cardinality, b.cardinality) &&
         a.inner_counter == b.inner_counter &&
         a.csg_cmp_pair_counter == b.csg_cmp_pair_counter &&
         a.create_join_tree_calls == b.create_join_tree_calls &&
         a.plans_stored == b.plans_stored && a.best_effort == b.best_effort &&
         a.trigger == b.trigger;
}

std::string OutcomeSignature::ToString() const {
  char buffer[256];
  std::snprintf(buffer, sizeof(buffer),
                "status=%s cost=%.17g rows=%.17g inner=%" PRIu64
                " pairs=%" PRIu64 " trees=%" PRIu64 " stored=%" PRIu64
                " best_effort=%d trigger=%s",
                std::string(StatusCodeToString(status)).c_str(), cost,
                cardinality, inner_counter, csg_cmp_pair_counter,
                create_join_tree_calls, plans_stored, best_effort ? 1 : 0,
                std::string(StatusCodeToString(trigger)).c_str());
  return buffer;
}

std::string OutcomeSignature::DiffAgainst(
    const OutcomeSignature& expected) const {
  std::string out;
  if (status != expected.status) {
    AppendDiff(out, "status", std::string(StatusCodeToString(status)),
               std::string(StatusCodeToString(expected.status)));
  }
  if (!BitEqual(cost, expected.cost)) {
    AppendDiff(out, "cost", FormatG17(cost), FormatG17(expected.cost));
  }
  if (!BitEqual(cardinality, expected.cardinality)) {
    AppendDiff(out, "cardinality", FormatG17(cardinality),
               FormatG17(expected.cardinality));
  }
  if (inner_counter != expected.inner_counter) {
    AppendDiff(out, "inner_counter", FormatU64(inner_counter),
               FormatU64(expected.inner_counter));
  }
  if (csg_cmp_pair_counter != expected.csg_cmp_pair_counter) {
    AppendDiff(out, "csg_cmp_pair_counter", FormatU64(csg_cmp_pair_counter),
               FormatU64(expected.csg_cmp_pair_counter));
  }
  if (create_join_tree_calls != expected.create_join_tree_calls) {
    AppendDiff(out, "create_join_tree_calls",
               FormatU64(create_join_tree_calls),
               FormatU64(expected.create_join_tree_calls));
  }
  if (plans_stored != expected.plans_stored) {
    AppendDiff(out, "plans_stored", FormatU64(plans_stored),
               FormatU64(expected.plans_stored));
  }
  if (best_effort != expected.best_effort) {
    AppendDiff(out, "best_effort", best_effort ? "on" : "off",
               expected.best_effort ? "on" : "off");
  }
  if (trigger != expected.trigger) {
    AppendDiff(out, "trigger", std::string(StatusCodeToString(trigger)),
               std::string(StatusCodeToString(expected.trigger)));
  }
  return out;
}

OutcomeSignature ExtractOutcomeSignature(
    const Result<OptimizationResult>& result,
    const OptimizerStats& run_stats) {
  OutcomeSignature sig;
  if (result.ok()) {
    sig.status = StatusCode::kOk;
    sig.cost = result->cost;
    sig.cardinality = result->cardinality;
    sig.inner_counter = result->stats.inner_counter;
    sig.csg_cmp_pair_counter = result->stats.csg_cmp_pair_counter;
    sig.create_join_tree_calls = result->stats.create_join_tree_calls;
    sig.plans_stored = result->stats.plans_stored;
    sig.best_effort = result->stats.best_effort;
    sig.trigger = result->degradation.trigger;
  } else {
    sig.status = result.status().code();
    sig.inner_counter = run_stats.inner_counter;
    sig.csg_cmp_pair_counter = run_stats.csg_cmp_pair_counter;
    sig.create_join_tree_calls = run_stats.create_join_tree_calls;
    sig.plans_stored = run_stats.plans_stored;
  }
  return sig;
}

}  // namespace joinopt
