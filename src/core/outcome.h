#ifndef JOINOPT_CORE_OUTCOME_H_
#define JOINOPT_CORE_OUTCOME_H_

#include <cstdint>
#include <string>

#include "core/optimizer.h"
#include "util/status.h"

namespace joinopt {

/// The deterministic fingerprint of one optimization run: everything a
/// replay must reproduce bit-for-bit, and nothing that legitimately
/// varies between runs (wall-clock time, machine, thread). Two runs of
/// the same ReproBundle on the same build must produce equal signatures;
/// the flight recorder (src/testing/repro.h) persists these as the
/// `expect` section of a bundle and the replay command diffs them.
struct OutcomeSignature {
  /// Terminal status of the run. kOk for a completed plan (exact or
  /// salvaged); the typed failure code otherwise.
  StatusCode status = StatusCode::kOk;
  /// Plan cost and estimated cardinality; 0 when the run failed.
  double cost = 0.0;
  double cardinality = 0.0;
  /// The paper counters plus plans_stored, as collected up to the moment
  /// the run terminated — interrupted runs keep their partial totals, so
  /// the firing step of a fault is pinned by these.
  uint64_t inner_counter = 0;
  uint64_t csg_cmp_pair_counter = 0;
  uint64_t create_join_tree_calls = 0;
  uint64_t plans_stored = 0;
  /// Degradation outcome: whether the plan was salvaged best-effort, and
  /// the StatusCode that triggered the salvage (kOk on exact results).
  bool best_effort = false;
  StatusCode trigger = StatusCode::kOk;

  friend bool operator==(const OutcomeSignature& a,
                         const OutcomeSignature& b);
  friend bool operator!=(const OutcomeSignature& a,
                         const OutcomeSignature& b) {
    return !(a == b);
  }

  /// One-line human rendering ("status=Internal cost=0 ...").
  std::string ToString() const;

  /// Empty string when *this equals `expected`; otherwise a description
  /// of every differing field, `field: observed X, expected Y` per line.
  /// Doubles are compared bit-for-bit (via their shortest round-trip
  /// text), matching the replay contract.
  std::string DiffAgainst(const OutcomeSignature& expected) const;

  /// True when `other` fails the same way: equal status, best_effort,
  /// and trigger. This is the coarse signature the delta-debugging
  /// minimizer preserves — cost and counters legitimately change as the
  /// query shrinks, the failure class must not.
  bool SameFailureKind(const OutcomeSignature& other) const {
    return status == other.status && best_effort == other.best_effort &&
           trigger == other.trigger;
  }
};

/// Extracts the signature of a finished run. `result` is the orderer's
/// return value; `run_stats` is the context's stats, which keep their
/// partial counter totals even when the run failed (the convenience
/// Optimize overload discards them, so replay drives its own
/// OptimizerContext). On success the counters are read from the result
/// itself so the collect_counters reporting toggle is honored.
OutcomeSignature ExtractOutcomeSignature(
    const Result<OptimizationResult>& result, const OptimizerStats& run_stats);

}  // namespace joinopt

#endif  // JOINOPT_CORE_OUTCOME_H_
