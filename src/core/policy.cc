#include "core/policy.h"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <thread>
#include <utility>

#include "core/idp.h"
#include "core/registry.h"

namespace joinopt {

namespace {

std::string_view Trim(std::string_view text) {
  while (!text.empty() && (text.front() == ' ' || text.front() == '\t')) {
    text.remove_prefix(1);
  }
  while (!text.empty() && (text.back() == ' ' || text.back() == '\t')) {
    text.remove_suffix(1);
  }
  return text;
}

/// Bounds keeping a mistyped policy from disabling limits outright: a
/// scale must be a positive fraction (<= 1: steps subdivide the caller's
/// envelope, they never enlarge it), retries stay small because each one
/// doubles the limits, and k is IDP1's documented block-size range.
constexpr int kMaxRetries = 8;

Status ParseAttribute(std::string_view attr, PolicyStep* step) {
  const size_t eq = attr.find('=');
  if (eq == std::string_view::npos) {
    return Status::InvalidArgument("policy attribute '" + std::string(attr) +
                                   "' is not key=value");
  }
  const std::string_view key = Trim(attr.substr(0, eq));
  const std::string value(Trim(attr.substr(eq + 1)));
  if (value.empty()) {
    return Status::InvalidArgument("policy attribute '" + std::string(key) +
                                   "' has an empty value");
  }
  char* end = nullptr;
  if (key == "budget" || key == "deadline") {
    const double parsed = std::strtod(value.c_str(), &end);
    if (end == nullptr || *end != '\0' || !(parsed > 0.0) || parsed > 1.0) {
      return Status::InvalidArgument(
          "policy attribute '" + std::string(key) + "=" + value +
          "' must be a fraction in (0, 1]");
    }
    (key == "budget" ? step->budget_scale : step->deadline_slice) = parsed;
    return Status::OK();
  }
  const long parsed = std::strtol(value.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') {
    return Status::InvalidArgument("policy attribute '" + std::string(key) +
                                   "=" + value + "' is not an integer");
  }
  if (key == "retries") {
    if (parsed < 0 || parsed > kMaxRetries) {
      return Status::InvalidArgument(
          "policy attribute 'retries=" + value + "' must be in [0, " +
          std::to_string(kMaxRetries) + "]");
    }
    step->retries = static_cast<int>(parsed);
    return Status::OK();
  }
  if (key == "k") {
    if (parsed < 2 || parsed > kMaxRelations) {
      return Status::InvalidArgument("policy attribute 'k=" + value +
                                     "' must be in [2, " +
                                     std::to_string(kMaxRelations) + "]");
    }
    step->k = static_cast<int>(parsed);
    return Status::OK();
  }
  return Status::InvalidArgument(
      "unknown policy attribute '" + std::string(key) +
      "'; expected budget=, deadline=, retries=, or k=");
}

Status ParseStep(std::string_view token, DegradationPolicy* policy) {
  if (token == "salvage") {
    if (policy->empty()) {
      return Status::InvalidArgument(
          "'salvage' must follow an algorithm step; it arms anytime salvage "
          "on the step before it");
    }
    // Appending through the public API only; mutate via a rebuild.
    PolicyStep step = policy->steps().back();
    step.salvage = true;
    DegradationPolicy rebuilt;
    for (size_t i = 0; i + 1 < policy->steps().size(); ++i) {
      rebuilt.Append(policy->steps()[i]);
    }
    rebuilt.Append(std::move(step));
    *policy = std::move(rebuilt);
    return Status::OK();
  }

  PolicyStep step;
  const size_t bracket = token.find('[');
  std::string_view name = token;
  if (bracket != std::string_view::npos) {
    if (token.back() != ']') {
      return Status::InvalidArgument("policy step '" + std::string(token) +
                                     "' has an unterminated attribute list");
    }
    name = Trim(token.substr(0, bracket));
    std::string_view attrs =
        token.substr(bracket + 1, token.size() - bracket - 2);
    while (!attrs.empty()) {
      const size_t comma = attrs.find(',');
      const std::string_view attr = Trim(attrs.substr(0, comma));
      if (attr.empty()) {
        return Status::InvalidArgument("policy step '" + std::string(token) +
                                       "' has an empty attribute");
      }
      JOINOPT_RETURN_IF_ERROR(ParseAttribute(attr, &step));
      if (comma == std::string_view::npos) {
        break;
      }
      attrs = attrs.substr(comma + 1);
    }
  }
  if (name.empty()) {
    return Status::InvalidArgument("policy has an empty step name");
  }
  if (OptimizerRegistry::Get(name) == nullptr) {
    std::string names;
    for (const std::string& known : OptimizerRegistry::Names()) {
      if (!names.empty()) {
        names += ", ";
      }
      names += known;
    }
    return Status::InvalidArgument("unknown algorithm '" + std::string(name) +
                                   "' in policy; registered: " + names);
  }
  step.algorithm = std::string(name);
  policy->Append(std::move(step));
  return Status::OK();
}

}  // namespace

DegradationPolicy DegradationPolicy::Default() {
  DegradationPolicy policy;
  policy.Append(PolicyStep{.algorithm = "DPccp", .salvage = true});
  policy.Append(PolicyStep{.algorithm = "IDP1", .k = 5});
  policy.Append(PolicyStep{.algorithm = "GOO"});
  return policy;
}

Result<DegradationPolicy> DegradationPolicy::Parse(std::string_view text) {
  DegradationPolicy policy;
  std::string_view rest = text;
  while (true) {
    const size_t arrow = rest.find("->");
    const std::string_view token = Trim(rest.substr(0, arrow));
    if (token.empty()) {
      return Status::InvalidArgument("degradation policy '" +
                                     std::string(text) +
                                     "' has an empty step");
    }
    JOINOPT_RETURN_IF_ERROR(ParseStep(token, &policy));
    if (arrow == std::string_view::npos) {
      break;
    }
    rest = rest.substr(arrow + 2);
  }
  return policy;
}

Result<DegradationPolicy> DegradationPolicy::FromEnv() {
  const char* env = std::getenv("JOINOPT_POLICY");
  if (env == nullptr || *env == '\0') {
    return Default();
  }
  return Parse(env);
}

std::string DegradationPolicy::ToString() const {
  std::string out;
  char buffer[64];
  for (const PolicyStep& step : steps_) {
    if (!out.empty()) {
      out += " -> ";
    }
    out += step.algorithm;
    std::string attrs;
    const auto append_attr = [&attrs](const std::string& attr) {
      if (!attrs.empty()) {
        attrs += ",";
      }
      attrs += attr;
    };
    if (step.budget_scale != 1.0) {
      std::snprintf(buffer, sizeof(buffer), "budget=%g", step.budget_scale);
      append_attr(buffer);
    }
    if (step.deadline_slice != 1.0) {
      std::snprintf(buffer, sizeof(buffer), "deadline=%g",
                    step.deadline_slice);
      append_attr(buffer);
    }
    if (step.retries != 0) {
      append_attr("retries=" + std::to_string(step.retries));
    }
    if (step.k != 0) {
      append_attr("k=" + std::to_string(step.k));
    }
    if (!attrs.empty()) {
      out += "[" + attrs + "]";
    }
    if (step.salvage) {
      out += " -> salvage";
    }
  }
  return out;
}

Result<OptimizationResult> RunDegradationPolicy(const DegradationPolicy& policy,
                                                OptimizerContext& ctx) {
  if (policy.empty()) {
    return Status::InvalidArgument("degradation policy has no steps");
  }
  const QueryGraph& graph = ctx.graph();
  const CostModel& cost_model = ctx.cost_model();
  const OptimizeOptions& base = ctx.options();
  const std::vector<PolicyStep>& steps = policy.steps();

  std::string fallback_from;
  Result<OptimizationResult> result = Status::Internal("policy ran no step");
  // ONE sub-context serves every attempt, re-armed through ResetForRerun:
  // the governor's limit state is sticky, so each attempt needs a reset,
  // and reusing the context exercises the documented re-entrancy contract
  // instead of sidestepping it with fresh contexts.
  std::unique_ptr<OptimizerContext> sub;

  for (size_t si = 0; si < steps.size(); ++si) {
    const PolicyStep& step = steps[si];
    const bool last = si + 1 == steps.size();

    // Resolve the orderer; an explicit k overrides the registry's
    // default-configured IDP1.
    const IDP1 idp_override(step.k >= 2 ? step.k : 2);
    const JoinOrderer* orderer;
    if (step.algorithm == "IDP1" && step.k >= 2) {
      orderer = &idp_override;
    } else {
      Result<const JoinOrderer*> lookup =
          OptimizerRegistry::GetOrError(step.algorithm);
      JOINOPT_RETURN_IF_ERROR(lookup.status());
      orderer = *lookup;
    }

    for (int attempt = 0; attempt <= step.retries; ++attempt) {
      OptimizeOptions options = base;
      const double boost = static_cast<double>(uint64_t{1} << attempt);
      if (base.memo_entry_budget != 0) {
        const double scaled =
            static_cast<double>(base.memo_entry_budget) * step.budget_scale *
            boost;
        // Clamp up: rounding to 0 would mean "unlimited".
        options.memo_entry_budget =
            scaled < 1.0 ? 1 : static_cast<uint64_t>(scaled);
      }
      if (base.deadline_seconds != 0.0) {
        options.deadline_seconds =
            base.deadline_seconds * step.deadline_slice * boost;
      }
      options.salvage_on_interrupt = step.salvage;
      if (last && si > 0) {
        // Final step reached after a failure: strip the limits (tracing
        // and counter reporting stay) — another kBudgetExceeded would
        // leave the caller with no plan at all.
        options.memo_entry_budget = 0;
        options.deadline_seconds = 0.0;
      }
      if (sub == nullptr) {
        sub = std::make_unique<OptimizerContext>(graph, cost_model, options);
      } else {
        sub->ResetForRerun(options);
      }
      result = orderer->Optimize(*sub);
      if (result.ok()) {
        break;
      }
      const StatusCode code = result.status().code();
      // Retry the SAME step (with doubled limits) on resource trips and
      // contained faults; anything else is a hard error for this step.
      if (code != StatusCode::kBudgetExceeded &&
          code != StatusCode::kInternal) {
        break;
      }
    }
    if (result.ok() || last) {
      break;
    }
    // Step-to-step fallback is reserved for resource trips; a kInternal
    // that survived its retries is a real failure and propagates (the
    // historical ladder contract).
    if (result.status().code() != StatusCode::kBudgetExceeded) {
      break;
    }
    if (!fallback_from.empty()) {
      fallback_from += ",";
    }
    fallback_from += step.algorithm;
    if (JOINOPT_UNLIKELY(base.trace != nullptr)) {
      ctx.governor().GuardedTrace([&] {
        base.trace->OnFallback(step.algorithm, steps[si + 1].algorithm,
                               result.status());
      });
      if (JOINOPT_UNLIKELY(ctx.exhausted())) {
        return ctx.limit_status();
      }
    }
  }
  JOINOPT_RETURN_IF_ERROR(result.status());

  // A composite step (e.g. Adaptive's internal ladder) may have recorded
  // its own fallbacks in the result's stats. Preserve them — the serving
  // layer's cacheability check relies on fallback_from to tell an exact
  // plan from one shaped by this request's budget, and clobbering the
  // nested marker would let a budget-degraded plan be cached as exact.
  if (!result->stats.fallback_from.empty()) {
    fallback_from = fallback_from.empty()
                        ? result->stats.fallback_from
                        : fallback_from + "," + result->stats.fallback_from;
  }
  result->stats.fallback_from = fallback_from;
  // Charge the gate and every abandoned attempt to the reported time.
  result->stats.elapsed_seconds = ctx.ElapsedSeconds();
  if (result->stats.best_effort) {
    result->degradation.policy = policy.ToString();
  }
  ctx.stats() = result->stats;
  return result;
}

Result<OptimizationResult> RunPolicyWithRetry(const DegradationPolicy& policy,
                                              OptimizerContext& ctx,
                                              const RetryOptions& retry) {
  const OptimizeOptions base = ctx.options();
  const double growth = retry.limit_growth > 1.0 ? retry.limit_growth : 2.0;
  Result<OptimizationResult> result = Status::Internal("policy never ran");
  for (int attempt = 0; attempt <= retry.max_retries; ++attempt) {
    if (attempt > 0) {
      if (retry.backoff_seconds > 0.0) {
        const double sleep_s =
            retry.backoff_seconds * static_cast<double>(1 << (attempt - 1));
        std::this_thread::sleep_for(std::chrono::duration<double>(sleep_s));
      }
      OptimizeOptions grown = base;
      const double scale = std::pow(growth, static_cast<double>(attempt));
      if (base.memo_entry_budget != 0) {
        const double scaled =
            static_cast<double>(base.memo_entry_budget) * scale;
        grown.memo_entry_budget =
            scaled < 1.0 ? 1 : static_cast<uint64_t>(scaled);
      }
      if (base.deadline_seconds != 0.0) {
        grown.deadline_seconds = base.deadline_seconds * scale;
      }
      ctx.ResetForRerun(grown);
    }
    result = RunDegradationPolicy(policy, ctx);
    if (result.ok()) {
      return result;
    }
    const StatusCode code = result.status().code();
    if (code != StatusCode::kBudgetExceeded && code != StatusCode::kInternal) {
      return result;  // Not a resource trip or contained fault.
    }
  }
  return result;
}

}  // namespace joinopt
