#ifndef JOINOPT_CORE_POLICY_H_
#define JOINOPT_CORE_POLICY_H_

#include <string>
#include <string_view>
#include <vector>

#include "core/optimizer.h"

namespace joinopt {

/// One rung of a degradation policy: which algorithm to run and how much
/// of the caller's resource envelope to give it. Scales apply to the base
/// OptimizeOptions the policy runs under; zero ("unlimited") limits stay
/// zero regardless of scale.
struct PolicyStep {
  /// Registry name of the orderer ("DPccp", "IDP1", "GOO", ...).
  std::string algorithm;
  /// Fraction of the base memo_entry_budget this step may use (attribute
  /// `budget=`). Scaled budgets are clamped to at least one entry so a
  /// small fraction can never round down to 0 = unlimited.
  double budget_scale = 1.0;
  /// Fraction of the base deadline_seconds this step may use (`deadline=`).
  double deadline_slice = 1.0;
  /// Extra attempts after a resource-limit or injected-fault failure
  /// (`retries=`), each with the step's limits doubled (exponential
  /// backoff in budget space).
  int retries = 0;
  /// IDP1 block-size override (`k=`); 0 keeps the registry default. Only
  /// meaningful for the IDP1 step.
  int k = 0;
  /// Anytime mode for this step (`-> salvage` in the grammar): an
  /// interrupted run completes a best-effort plan from the partial memo
  /// instead of falling through to the next step.
  bool salvage = false;
};

/// An ordered list of PolicySteps — the declarative replacement for
/// AdaptiveOptimizer's historical hard-coded ladder. The textual grammar
/// (JOINOPT_POLICY, CLI):
///
///   policy  := step (" -> " step)*
///   step    := NAME attrs? | "salvage"
///   attrs   := "[" attr ("," attr)* "]"
///   attr    := "budget=" FLOAT | "deadline=" FLOAT
///            | "retries=" INT | "k=" INT
///
/// "salvage" is a pseudo-step that arms anytime salvage on the step
/// before it. Example (the library default):
///
///   DPccp -> salvage -> IDP1[k=5] -> GOO
///
/// reads: try exact DPccp; if a limit trips, salvage a best-effort plan
/// from its memo; if even salvage cannot complete a plan, rerun with
/// IDP1 (block size 5), then GOO (the final step runs limits-stripped so
/// the caller always gets SOME plan).
class DegradationPolicy {
 public:
  /// The documented default: `DPccp -> salvage -> IDP1[k=5] -> GOO`.
  static DegradationPolicy Default();

  /// Parses the grammar above. Fails with InvalidArgument on syntax
  /// errors, unknown algorithm names (checked against the registry),
  /// out-of-range attributes, or a leading "salvage".
  static Result<DegradationPolicy> Parse(std::string_view text);

  /// Parse(JOINOPT_POLICY) when the variable is set and non-empty,
  /// Default() otherwise.
  static Result<DegradationPolicy> FromEnv();

  void Append(PolicyStep step) { steps_.push_back(std::move(step)); }

  const std::vector<PolicyStep>& steps() const { return steps_; }
  bool empty() const { return steps_.empty(); }

  /// Round-trips through Parse (modulo whitespace).
  std::string ToString() const;

 private:
  std::vector<PolicyStep> steps_;
};

/// Executes `policy` for ctx's query: each step runs in a sub-context
/// re-armed via ResetForRerun with the step's scaled limits, retrying
/// with doubled limits up to `retries` times on kBudgetExceeded /
/// kInternal, and falling through to the next step on kBudgetExceeded.
/// The final step, when reached after a failure, runs limits-stripped.
/// Abandoned steps are appended to stats.fallback_from and reported via
/// TraceSink::OnFallback, exactly like the historical Adaptive ladder;
/// best-effort results get the policy string stamped into their
/// DegradationReport. ctx.stats() mirrors the returned stats.
Result<OptimizationResult> RunDegradationPolicy(const DegradationPolicy& policy,
                                                OptimizerContext& ctx);

/// Whole-policy retry envelope for the serving layer, layered ON TOP of
/// RunDegradationPolicy's per-step retries: when the entire policy fails
/// with a retryable code (kBudgetExceeded / kInternal — resource trips
/// and contained faults), the policy is re-run from the top with the
/// context's base limits multiplied by `limit_growth` per attempt, after
/// an optional backoff sleep that doubles per attempt. Non-retryable
/// failures (bad input, degenerate statistics) return immediately.
struct RetryOptions {
  /// Extra whole-policy attempts after the first failure.
  int max_retries = 0;
  /// Sleep before the first retry; doubles each further attempt. 0 = no
  /// sleep (tests and non-latency-sensitive batch callers).
  double backoff_seconds = 0.0;
  /// Base-limit multiplier per retry (memo budget and deadline; zero
  /// "unlimited" limits stay zero).
  double limit_growth = 2.0;
};

/// Runs `policy` under `ctx` with the retry envelope above. Each retry
/// re-arms `ctx` via ResetForRerun with the grown limits, exercising the
/// documented re-entrancy contract. ctx.stats() mirrors the returned
/// stats, exactly like RunDegradationPolicy.
Result<OptimizationResult> RunPolicyWithRetry(const DegradationPolicy& policy,
                                              OptimizerContext& ctx,
                                              const RetryOptions& retry);

}  // namespace joinopt

#endif  // JOINOPT_CORE_POLICY_H_
