#include "core/registry.h"

#include <map>
#include <utility>

#include "core/adaptive.h"
#include "core/dp_cross_products.h"
#include "core/dp_parallel.h"
#include "core/dpccp.h"
#include "core/dpconv.h"
#include "core/dpsize.h"
#include "core/dpsize_linear.h"
#include "core/dpsub.h"
#include "core/greedy.h"
#include "core/idp.h"
#include "core/ikkbz.h"
#include "core/lindp.h"
#include "core/top_down.h"
#include "hyper/dphyp.h"

namespace joinopt {

namespace {

/// Presents DPhyp as a JoinOrderer: lifts the query graph to a
/// hypergraph (every binary edge becomes a simple hyperedge) and runs
/// the hypergraph DP, which must match DPccp exactly on such inputs.
class DPhypAdapter final : public JoinOrderer {
 public:
  std::string_view name() const override { return "DPhyp"; }

  using JoinOrderer::Optimize;
  Result<OptimizationResult> Optimize(OptimizerContext& ctx) const override {
    JOINOPT_RETURN_IF_ERROR(
        internal::BeginOptimize(ctx, name(), /*require_connected=*/true));
    const Hypergraph hyper = Hypergraph::FromQueryGraph(ctx.graph());
    Result<OptimizationResult> result =
        DPhyp().Optimize(hyper, ctx.cost_model(), ctx.options());
    if (result.ok()) {
      ctx.stats() = result->stats;
    }
    return result;
  }
};

// Transparent comparison lets Get() look up a string_view without
// materializing a std::string per call.
using OrdererMap =
    std::map<std::string, std::unique_ptr<const JoinOrderer>, std::less<>>;

OrdererMap BuildBuiltins() {
  OrdererMap map;
  map.emplace("DPsize", std::make_unique<DPsize>());
  map.emplace("DPsizeBasic",
              std::make_unique<DPsize>(/*use_equal_size_optimization=*/false));
  map.emplace("DPsizePar", std::make_unique<DPsizePar>());
  map.emplace("DPsub", std::make_unique<DPsub>());
  map.emplace("DPsubPar", std::make_unique<DPsubPar>());
  map.emplace("DPsubBFS",
              std::make_unique<DPsub>(/*use_table_connectivity_test=*/false));
  map.emplace("DPccp", std::make_unique<DPccp>());
  map.emplace("DPconv", std::make_unique<DPconv>());
  map.emplace("DPsizeLinear", std::make_unique<DPsizeLinear>());
  map.emplace("DPsizeCP", std::make_unique<DPsizeCP>());
  map.emplace("DPsubCP", std::make_unique<DPsubCP>());
  map.emplace("GOO", std::make_unique<GreedyOperatorOrdering>());
  map.emplace("IDP1", std::make_unique<IDP1>(/*k=*/10));
  map.emplace("IKKBZ", std::make_unique<IKKBZ>());
  map.emplace("LinDP", std::make_unique<LinDP>());
  map.emplace("TDBasic", std::make_unique<TDBasic>());
  map.emplace("DPhyp", std::make_unique<DPhypAdapter>());
  map.emplace("Adaptive", std::make_unique<AdaptiveOptimizer>());
  return map;
}

OrdererMap& Registry() {
  static OrdererMap& map = *new OrdererMap(BuildBuiltins());
  return map;
}

}  // namespace

const JoinOrderer* OptimizerRegistry::Get(std::string_view name) {
  const OrdererMap& map = Registry();
  const auto it = map.find(name);
  return it == map.end() ? nullptr : it->second.get();
}

Result<const JoinOrderer*> OptimizerRegistry::GetOrError(
    std::string_view name) {
  const JoinOrderer* orderer = Get(name);
  if (orderer != nullptr) {
    return orderer;
  }
  std::string known;
  for (const std::string& candidate : Names()) {
    if (!known.empty()) {
      known += ", ";
    }
    known += candidate;
  }
  return Status::InvalidArgument("unknown join orderer \"" +
                                 std::string(name) + "\"; registered: " +
                                 known);
}

std::vector<std::string> OptimizerRegistry::Names() {
  std::vector<std::string> names;
  const OrdererMap& map = Registry();
  names.reserve(map.size());
  for (const auto& [name, orderer] : map) {
    names.push_back(name);
  }
  return names;
}

bool OptimizerRegistry::Register(std::string name,
                                 std::unique_ptr<JoinOrderer> orderer) {
  if (orderer == nullptr) {
    return false;
  }
  return Registry().emplace(std::move(name), std::move(orderer)).second;
}

}  // namespace joinopt
