#ifndef JOINOPT_CORE_REGISTRY_H_
#define JOINOPT_CORE_REGISTRY_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/optimizer.h"

namespace joinopt {

/// Central catalog of the library's join orderers, keyed by name. Every
/// driver (benchmarks, the CLI, the examples, conformance tests) obtains
/// its algorithms here instead of hard-coding constructor calls, so a new
/// orderer registered once becomes visible everywhere at once.
///
/// Built-in entries (shared, stateless, default-configured instances):
///
///   DPsize, DPsub, DPccp, DPsizeLinear  — the paper's algorithms
///   DPsizeBasic, DPsubBFS               — ablation variants (unoptimized
///                                         equal-size pairing / BFS
///                                         connectivity test); note their
///                                         name() still reports the base
///                                         algorithm, only the key differs
///   DPsizeCP, DPsubCP                   — cross-product search space
///   GOO, IDP1, IKKBZ, LinDP             — heuristics / linearized DP
///   TDBasic                             — top-down enumeration
///   DPhyp                               — via an adapter lifting the
///                                         query graph with
///                                         Hypergraph::FromQueryGraph
///   Adaptive                            — the dispatching facade
///
/// KBestJoinOrderer is absent: it returns a ranking, not a single plan,
/// so it does not satisfy the JoinOrderer interface.
///
/// Instances are shared and must stay stateless across Optimize calls
/// (all per-run state lives in the OptimizerContext), which makes
/// registry lookups and the returned orderers safe for concurrent use.
class OptimizerRegistry {
 public:
  /// Returns the orderer registered under `name`, or nullptr if unknown.
  static const JoinOrderer* Get(std::string_view name);

  /// Like Get, but reports unknown names as InvalidArgument listing the
  /// registered names.
  static Result<const JoinOrderer*> GetOrError(std::string_view name);

  /// All registered names in sorted order.
  static std::vector<std::string> Names();

  /// Adds an orderer under `name` (e.g. a differently-parameterized IDP1
  /// or an out-of-library extension). Returns false and leaves the
  /// registry unchanged when the name is already taken. Not thread-safe
  /// against concurrent lookups; register during startup.
  static bool Register(std::string name, std::unique_ptr<JoinOrderer> orderer);
};

}  // namespace joinopt

#endif  // JOINOPT_CORE_REGISTRY_H_
