#include "core/top_down.h"

#include <unordered_set>

#include "bitset/subset_iterator.h"
#include "graph/connectivity.h"

namespace joinopt {

namespace {

/// Recursion state for one optimization run.
class TopDownSolver {
 public:
  explicit TopDownSolver(OptimizerContext& ctx)
      : ctx_(ctx), graph_(ctx.graph()), stats_(ctx.stats()) {}

  /// Ensures `s` (a connected set) has its optimal plan in the table.
  /// Returns false when a resource limit tripped and the recursion must
  /// unwind.
  bool Solve(NodeSet s) {
    JOINOPT_DCHECK(IsConnectedSet(graph_, s));
    const PlanRef existing = ctx_.table().Find(s);
    if (existing != kInvalidPlanRef && solved_.Contains(s)) {
      return true;
    }
    if (s.count() == 1) {
      return true;  // Leaves are seeded.
    }
    // Mark first: the split recursion below only descends into strict
    // subsets, so no cycle is possible, but re-entry via other parents
    // must see the set as in-progress-or-done only AFTER its own
    // children are solved; since subsets are strictly smaller, marking
    // before recursion is safe.
    solved_.Insert(s);

    // Enumerate unordered splits once: keep the half containing min(s).
    const int anchor = s.Min();
    for (ProperSubsetIterator it(s); !it.Done(); it.Next()) {
      const NodeSet s1 = it.Current();
      ++stats_.inner_counter;
      if (!s1.Contains(anchor)) {
        continue;
      }
      const NodeSet s2 = s - s1;
      if (!IsConnectedSet(graph_, s1) || !IsConnectedSet(graph_, s2)) {
        continue;
      }
      if (!graph_.AreConnected(s1, s2)) {
        continue;
      }
      stats_.csg_cmp_pair_counter += 2;
      ctx_.TraceCsgCmpPair(s1, s2);
      if (!Solve(s1) || !Solve(s2)) {
        return false;
      }
      if (!internal::CreateJoinTreeBothOrders(ctx_, s1, s2)) {
        return false;
      }
      if (ctx_.Tick()) {
        return false;
      }
    }
    return true;
  }

 private:
  /// Tracks memoized sets. Table presence alone is not enough: an entry
  /// appears as soon as the FIRST split is priced, before the remaining
  /// splits have been tried.
  class SolvedSet {
   public:
    bool Contains(NodeSet s) const { return set_.contains(s.mask()); }
    void Insert(NodeSet s) { set_.insert(s.mask()); }

   private:
    std::unordered_set<uint64_t> set_;
  };

  OptimizerContext& ctx_;
  const QueryGraph& graph_;
  OptimizerStats& stats_;
  SolvedSet solved_;
};

}  // namespace

Result<OptimizationResult> TDBasic::Optimize(OptimizerContext& ctx) const {
  JOINOPT_RETURN_IF_ERROR(
      internal::BeginOptimize(ctx, name(), /*require_connected=*/true));
  const QueryGraph& graph = ctx.graph();
  if (graph.relation_count() >= 40) {
    return Status::InvalidArgument(
        "TDBasic's split enumeration is exponential; refusing n >= 40");
  }

  ctx.InstallTable(internal::MakeAdaptivePlanTable(
      graph, ctx.options().memo_entry_budget));
  OptimizerStats& stats = ctx.stats();
  if (internal::SeedLeafPlans(ctx)) {
    TopDownSolver solver(ctx);
    solver.Solve(graph.AllRelations());
  }

  stats.ono_lohman_counter = stats.csg_cmp_pair_counter / 2;
  return internal::FinishOptimize(ctx);
}

}  // namespace joinopt
