#include "core/top_down.h"

#include <unordered_set>

#include "bitset/subset_iterator.h"
#include "graph/connectivity.h"
#include "util/stopwatch.h"

namespace joinopt {

namespace {

/// Recursion state for one optimization run.
class TopDownSolver {
 public:
  TopDownSolver(const QueryGraph& graph, const CostModel& cost_model,
                PlanTable* table, OptimizerStats* stats)
      : graph_(graph), cost_model_(cost_model), table_(table), stats_(stats) {}

  /// Ensures `s` (a connected set) has its optimal plan in the table.
  void Solve(NodeSet s) {
    JOINOPT_DCHECK(IsConnectedSet(graph_, s));
    const PlanEntry* existing = table_->Find(s);
    if (existing != nullptr && solved_.Contains(s)) {
      return;
    }
    if (s.count() == 1) {
      return;  // Leaves are seeded.
    }
    // Mark first: the split recursion below only descends into strict
    // subsets, so no cycle is possible, but re-entry via other parents
    // must see the set as in-progress-or-done only AFTER its own
    // children are solved; since subsets are strictly smaller, marking
    // before recursion is safe.
    solved_.Insert(s);

    // Enumerate unordered splits once: keep the half containing min(s).
    const int anchor = s.Min();
    for (ProperSubsetIterator it(s); !it.Done(); it.Next()) {
      const NodeSet s1 = it.Current();
      ++stats_->inner_counter;
      if (!s1.Contains(anchor)) {
        continue;
      }
      const NodeSet s2 = s - s1;
      if (!IsConnectedSet(graph_, s1) || !IsConnectedSet(graph_, s2)) {
        continue;
      }
      if (!graph_.AreConnected(s1, s2)) {
        continue;
      }
      stats_->csg_cmp_pair_counter += 2;
      Solve(s1);
      Solve(s2);
      internal::CreateJoinTreeBothOrders(graph_, cost_model_, s1, s2, table_,
                                         stats_);
    }
  }

 private:
  /// Tracks memoized sets. Table presence alone is not enough: an entry
  /// appears as soon as the FIRST split is priced, before the remaining
  /// splits have been tried.
  class SolvedSet {
   public:
    bool Contains(NodeSet s) const { return set_.contains(s.mask()); }
    void Insert(NodeSet s) { set_.insert(s.mask()); }

   private:
    std::unordered_set<uint64_t> set_;
  };

  const QueryGraph& graph_;
  const CostModel& cost_model_;
  PlanTable* table_;
  OptimizerStats* stats_;
  SolvedSet solved_;
};

}  // namespace

Result<OptimizationResult> TDBasic::Optimize(
    const QueryGraph& graph, const CostModel& cost_model) const {
  JOINOPT_RETURN_IF_ERROR(
      internal::ValidateOptimizerInput(graph, /*require_connected=*/true));
  if (graph.relation_count() >= 40) {
    return Status::InvalidArgument(
        "TDBasic's split enumeration is exponential; refusing n >= 40");
  }
  const Stopwatch stopwatch;

  PlanTable table = internal::MakeAdaptivePlanTable(graph);
  OptimizerStats stats;
  internal::SeedLeafPlans(graph, &table, &stats);

  TopDownSolver solver(graph, cost_model, &table, &stats);
  solver.Solve(graph.AllRelations());

  stats.ono_lohman_counter = stats.csg_cmp_pair_counter / 2;
  stats.elapsed_seconds = stopwatch.ElapsedSeconds();
  return internal::ExtractResult(graph, table, stats);
}

}  // namespace joinopt
