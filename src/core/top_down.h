#ifndef JOINOPT_CORE_TOP_DOWN_H_
#define JOINOPT_CORE_TOP_DOWN_H_

#include "core/optimizer.h"

namespace joinopt {

/// TDBasic: naive TOP-DOWN join enumeration with memoization — the
/// mirror image of the paper's bottom-up algorithms, included as the
/// baseline of the top-down partition-search line of work (DeHaan &
/// Tompa SIGMOD'07; Fender & Moerkotte's later minimal-cut algorithms).
///
/// BestPlan(S) recurses: for every split (S1, S \ S1) with S1 containing
/// min(S), both halves connected, and at least one crossing edge, price
/// BestPlan(S1) ⋈ BestPlan(S2) in both orders. Memoization makes every
/// set solved once, so the set of CreateJoinTree calls is exactly the
/// csg-cmp-pairs — the same work as DPccp — but the generate-and-test
/// split enumeration costs 2^|S| per solved set, which is DPsub's
/// complexity profile. InnerCounter counts split candidates (one per
/// strict-subset half, i.e. 2^|S|-1 - 1 per memoized connected set).
///
/// The upside of top-down enumeration (not exercised here) is
/// branch-and-bound pruning; TDBasic exists to cross-check the bottom-up
/// algorithms from the opposite direction and as the natural base for
/// such extensions.
class TDBasic final : public JoinOrderer {
 public:
  TDBasic() = default;

  std::string_view name() const override { return "TDBasic"; }

  using JoinOrderer::Optimize;
  Result<OptimizationResult> Optimize(OptimizerContext& ctx) const override;
};

}  // namespace joinopt

#endif  // JOINOPT_CORE_TOP_DOWN_H_
