#include "cost/cardinality.h"

namespace joinopt {

double CardinalityEstimator::EstimateSet(NodeSet s) const {
  JOINOPT_DCHECK(!s.empty());
  double cardinality = 1.0;
  for (int v : s) {
    cardinality *= graph_->cardinality(v);
  }
  return SaturateCardinality(cardinality * graph_->SelectivityWithin(s));
}

}  // namespace joinopt
