#include "cost/cardinality.h"

namespace joinopt {

double CardinalityEstimator::EstimateSet(NodeSet s) const {
  JOINOPT_DCHECK(!s.empty());
  s = ToOriginal(s);
  double cardinality = 1.0;
  for (int v : s) {
    cardinality *= graph_->cardinality(v);
  }
  return SaturateCardinality(cardinality * graph_->SelectivityWithin(s));
}

}  // namespace joinopt
