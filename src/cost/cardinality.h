#ifndef JOINOPT_COST_CARDINALITY_H_
#define JOINOPT_COST_CARDINALITY_H_

#include "bitset/node_set.h"
#include "cost/saturation.h"
#include "graph/query_graph.h"

namespace joinopt {

/// The textbook independence-assumption cardinality model:
///
///   |⋈ S| = ∏_{R ∈ S} |R| · ∏_{(u,v) ∈ E, u,v ∈ S} sel(u, v)
///
/// Under this model the estimate for a set is independent of the join order
/// used to produce it, which is exactly the property dynamic programming
/// over sets relies on. The incremental form used by the DP combine step,
///
///   |S1 ⋈ S2| = |S1| · |S2| · ∏_{edges crossing (S1, S2)} sel
///
/// is algebraically identical; JoinCardinality computes it from the two
/// operand estimates, and EstimateSet recomputes a set's estimate from
/// scratch in a fixed evaluation order.
///
/// The two forms part ways once saturation clamps (cost/saturation.h):
/// the incremental form then depends on which split reached the set
/// first, i.e. on enumeration order. The memoizing DPs and the plan
/// validator therefore use EstimateSet — the canonical, split-invariant
/// value — and JoinCardinality remains for order-insensitive uses
/// (greedy pair selection, cross-product variants).
class CardinalityEstimator {
 public:
  /// The estimator borrows `graph`; the graph must outlive it.
  explicit CardinalityEstimator(const QueryGraph& graph) : graph_(&graph) {}

  /// From-scratch estimate of |⋈ s|. Requires a non-empty set. Saturated
  /// into [0, kCardinalityCeiling]; see cost/saturation.h.
  double EstimateSet(NodeSet s) const;

  /// Incremental estimate of |S1 ⋈ S2| from operand estimates. The sets
  /// must be disjoint. If no edge crosses the cut, this degenerates to the
  /// cross-product cardinality — the cross-product-enabled algorithm
  /// variants rely on that. Saturated into [0, kCardinalityCeiling] so
  /// overflowing statistics can never feed inf/NaN into a plan-cost
  /// comparison.
  double JoinCardinality(NodeSet s1, double card1, NodeSet s2,
                         double card2) const {
    return SaturateCardinality(card1 * card2 *
                               graph_->SelectivityBetween(s1, s2));
  }

 private:
  const QueryGraph* graph_;
};

}  // namespace joinopt

#endif  // JOINOPT_COST_CARDINALITY_H_
