#ifndef JOINOPT_COST_CARDINALITY_H_
#define JOINOPT_COST_CARDINALITY_H_

#include <vector>

#include "bitset/node_set.h"
#include "cost/saturation.h"
#include "graph/query_graph.h"

namespace joinopt {

/// The textbook independence-assumption cardinality model:
///
///   |⋈ S| = ∏_{R ∈ S} |R| · ∏_{(u,v) ∈ E, u,v ∈ S} sel(u, v)
///
/// Under this model the estimate for a set is independent of the join order
/// used to produce it, which is exactly the property dynamic programming
/// over sets relies on. The incremental form used by the DP combine step,
///
///   |S1 ⋈ S2| = |S1| · |S2| · ∏_{edges crossing (S1, S2)} sel
///
/// is algebraically identical; JoinCardinality computes it from the two
/// operand estimates, and EstimateSet recomputes a set's estimate from
/// scratch in a fixed evaluation order.
///
/// The two forms part ways once saturation clamps (cost/saturation.h):
/// the incremental form then depends on which split reached the set
/// first, i.e. on enumeration order. The memoizing DPs and the plan
/// validator therefore use EstimateSet — the canonical, split-invariant
/// value — and JoinCardinality remains for order-insensitive uses
/// (greedy pair selection, cross-product variants).
///
/// Canonical also means NUMBERING-invariant. Floating-point
/// multiplication is commutative but not associative, so evaluating the
/// same product over a BFS-relabeled copy of the graph (DPccp, k-best)
/// accumulates in a different index order and can drift by an ulp —
/// enough to flip a tie-break or break bit-exact cross-algorithm
/// differentials. The remapping constructor therefore translates work-
/// graph sets back to ORIGINAL labels and evaluates against the original
/// graph, in its index order, so every orderer prices a set with the
/// same rounded double.
class CardinalityEstimator {
 public:
  /// The estimator borrows `graph`; the graph must outlive it.
  explicit CardinalityEstimator(const QueryGraph& graph) : graph_(&graph) {}

  /// Numbering-invariant estimator for an algorithm running on a
  /// relabeled work graph: sets arrive in work labels, are translated
  /// through `new_to_old` (work label -> original node index), and are
  /// evaluated against `original` in its canonical index order. Both
  /// referents are borrowed and must outlive the estimator.
  CardinalityEstimator(const QueryGraph& original,
                       const std::vector<int>& new_to_old)
      : graph_(&original), new_to_old_(&new_to_old) {}

  /// From-scratch estimate of |⋈ s|. Requires a non-empty set. Saturated
  /// into [0, kCardinalityCeiling]; see cost/saturation.h.
  double EstimateSet(NodeSet s) const;

  /// Incremental estimate of |S1 ⋈ S2| from operand estimates. The sets
  /// must be disjoint. If no edge crosses the cut, this degenerates to the
  /// cross-product cardinality — the cross-product-enabled algorithm
  /// variants rely on that. Saturated into [0, kCardinalityCeiling] so
  /// overflowing statistics can never feed inf/NaN into a plan-cost
  /// comparison.
  double JoinCardinality(NodeSet s1, double card1, NodeSet s2,
                         double card2) const {
    return SaturateCardinality(
        card1 * card2 *
        graph_->SelectivityBetween(ToOriginal(s1), ToOriginal(s2)));
  }

 private:
  /// Identity without a remap; otherwise the set translated into the
  /// original numbering (iterating the result then visits nodes in
  /// ascending ORIGINAL index, the canonical accumulation order).
  NodeSet ToOriginal(NodeSet s) const {
    if (new_to_old_ == nullptr) {
      return s;
    }
    NodeSet original;
    for (int v : s) {
      original.Add((*new_to_old_)[v]);
    }
    return original;
  }

  const QueryGraph* graph_;
  const std::vector<int>* new_to_old_ = nullptr;
};

}  // namespace joinopt

#endif  // JOINOPT_COST_CARDINALITY_H_
