#ifndef JOINOPT_COST_COST_MODEL_H_
#define JOINOPT_COST_COST_MODEL_H_

#include <memory>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace joinopt {

/// Physical join operator chosen by a cost model. kUnspecified means the
/// model is purely logical (C_out); the executor then uses its default
/// (hash join).
enum class JoinOperator {
  kUnspecified = 0,
  kHashJoin,
  kNestedLoop,
  kSortMerge,
};

/// Stable display name ("HashJoin", ...).
std::string_view JoinOperatorName(JoinOperator op);

/// Interface for join cost models.
///
/// A cost model prices a single binary join given the operand and output
/// cardinality estimates; the optimizer sums join costs over the tree
/// (leaf scans are free, the convention of the C_out family). The paper's
/// results are cost-model independent — the counters and runtimes depend
/// only on the query graph — but a real plan generator needs one, and an
/// ASYMMETRIC model (e.g. hash join with distinct build/probe costs) is
/// what makes the commutativity handling in DPsize/DPccp observable.
///
/// `left` is the left/outer (or build) input, `right` the right/inner (or
/// probe) input.
class CostModel {
 public:
  virtual ~CostModel() = default;

  /// Cost of one join producing `output_card` rows from inputs of
  /// `left_card` and `right_card` rows. Must be non-negative.
  virtual double JoinCost(double left_card, double right_card,
                          double output_card) const = 0;

  /// True when JoinCost(l, r, o) == JoinCost(r, l, o) for all inputs.
  /// Symmetric models let implementations skip the commuted retry.
  virtual bool IsSymmetric() const { return false; }

  /// The physical operator whose cost JoinCost models for these inputs.
  /// The optimizer records it in the plan; the executor dispatches on it.
  /// Default: kUnspecified (logical model).
  virtual JoinOperator OperatorFor(double left_card, double right_card,
                                   double output_card) const {
    (void)left_card;
    (void)right_card;
    (void)output_card;
    return JoinOperator::kUnspecified;
  }

  /// Stable display name for reports.
  virtual std::string_view name() const = 0;
};

/// C_out [Cluet & Moerkotte]: the cost of a join is its output cardinality;
/// total cost is the sum of all intermediate-result sizes. The classic
/// yardstick for join-ordering studies and the default model in this
/// library's examples and benchmarks.
class CoutCostModel final : public CostModel {
 public:
  double JoinCost(double /*left_card*/, double /*right_card*/,
                  double output_card) const override {
    return output_card;
  }
  bool IsSymmetric() const override { return true; }
  std::string_view name() const override { return "Cout"; }
  // kUnspecified: C_out is a logical model, it prices no operator.
};

/// In-memory nested-loop join: cost proportional to |L| * |R|.
class NestedLoopCostModel final : public CostModel {
 public:
  double JoinCost(double left_card, double right_card,
                  double /*output_card*/) const override {
    return left_card * right_card;
  }
  bool IsSymmetric() const override { return true; }
  JoinOperator OperatorFor(double, double, double) const override {
    return JoinOperator::kNestedLoop;
  }
  std::string_view name() const override { return "NestedLoop"; }
};

/// Hash join with the build side on the left: cost = c_build * |L| +
/// c_probe * |R| + |out|. Deliberately asymmetric so that join order
/// (not just join-tree shape) matters.
class HashJoinCostModel final : public CostModel {
 public:
  /// `build_factor` > `probe_factor` models the usual build-side premium.
  explicit HashJoinCostModel(double build_factor = 2.0,
                             double probe_factor = 1.0)
      : build_factor_(build_factor), probe_factor_(probe_factor) {}

  double JoinCost(double left_card, double right_card,
                  double output_card) const override {
    return build_factor_ * left_card + probe_factor_ * right_card +
           output_card;
  }
  bool IsSymmetric() const override { return build_factor_ == probe_factor_; }
  JoinOperator OperatorFor(double, double, double) const override {
    return JoinOperator::kHashJoin;
  }
  std::string_view name() const override { return "HashJoin"; }

 private:
  double build_factor_;
  double probe_factor_;
};

/// Sort-merge join: cost = |L| log |L| + |R| log |R| + |out| (both inputs
/// sorted from scratch, then merged).
class SortMergeCostModel final : public CostModel {
 public:
  double JoinCost(double left_card, double right_card,
                  double output_card) const override;
  bool IsSymmetric() const override { return true; }
  JoinOperator OperatorFor(double, double, double) const override {
    return JoinOperator::kSortMerge;
  }
  std::string_view name() const override { return "SortMerge"; }
};

/// System-R-flavored disk model: block nested-loop join priced in page
/// I/Os. With P(x) = ceil(rows / rows_per_page):
///
///   cost = P(L) + ceil(P(L) / (buffer_pages - 2)) * P(R) + P(out)
///
/// The outer (left) input is scanned once; the inner is rescanned once
/// per outer buffer-load; the result is written out. Strongly
/// asymmetric: the smaller input belongs on the left.
class DiskNestedLoopCostModel final : public CostModel {
 public:
  /// Requires rows_per_page >= 1 and buffer_pages >= 3 (one input
  /// window, one inner page, one output page).
  explicit DiskNestedLoopCostModel(double rows_per_page = 100.0,
                                   double buffer_pages = 10.0);

  double JoinCost(double left_card, double right_card,
                  double output_card) const override;
  bool IsSymmetric() const override { return false; }
  JoinOperator OperatorFor(double, double, double) const override {
    return JoinOperator::kNestedLoop;
  }
  std::string_view name() const override { return "DiskNestedLoop"; }

 private:
  double rows_per_page_;
  double buffer_pages_;
};

/// Physical-operator choice: the cost of a join is the minimum over a set
/// of member models (e.g. "pick hash or nested-loop, whichever is
/// cheaper"). Mirrors what a plan generator with several join
/// implementations does inside CreateJoinTree.
class BestOfCostModel final : public CostModel {
 public:
  /// Takes ownership of the member models; at least one is required.
  explicit BestOfCostModel(std::vector<std::unique_ptr<CostModel>> members);

  /// Convenience factory with the standard trio (hash, nested-loop,
  /// sort-merge).
  static BestOfCostModel Standard();

  double JoinCost(double left_card, double right_card,
                  double output_card) const override;
  bool IsSymmetric() const override;
  /// The operator of the member whose cost is the minimum — this is the
  /// physical operator selection a real plan generator performs inside
  /// CreateJoinTree.
  JoinOperator OperatorFor(double left_card, double right_card,
                           double output_card) const override;
  std::string_view name() const override { return "BestOf"; }

 private:
  std::vector<std::unique_ptr<CostModel>> members_;
};

/// Resolves a short cost-model name to a fresh instance. The names are the
/// ones the CLI, repro bundles, and the serving layer all share:
/// cout | bestof | hash | nlj | smj. Unknown names are a typed
/// kInvalidArgument listing the accepted set.
Result<std::unique_ptr<CostModel>> MakeCostModelByName(std::string_view name);

}  // namespace joinopt

#endif  // JOINOPT_COST_COST_MODEL_H_
