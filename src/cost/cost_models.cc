#include "cost/cost_model.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "util/macros.h"

namespace joinopt {

std::string_view JoinOperatorName(JoinOperator op) {
  switch (op) {
    case JoinOperator::kUnspecified:
      return "Join";
    case JoinOperator::kHashJoin:
      return "HashJoin";
    case JoinOperator::kNestedLoop:
      return "NestedLoopJoin";
    case JoinOperator::kSortMerge:
      return "SortMergeJoin";
  }
  return "Join";
}

namespace {

/// n log2(n), guarded for n < 1 so tiny estimates don't go negative.
double SortCost(double n) { return n * std::log2(std::max(n, 2.0)); }

}  // namespace

double SortMergeCostModel::JoinCost(double left_card, double right_card,
                                    double output_card) const {
  return SortCost(left_card) + SortCost(right_card) + output_card;
}

DiskNestedLoopCostModel::DiskNestedLoopCostModel(double rows_per_page,
                                                 double buffer_pages)
    : rows_per_page_(rows_per_page), buffer_pages_(buffer_pages) {
  JOINOPT_CHECK(rows_per_page_ >= 1.0);
  JOINOPT_CHECK(buffer_pages_ >= 3.0);
}

double DiskNestedLoopCostModel::JoinCost(double left_card, double right_card,
                                         double output_card) const {
  const auto pages = [this](double rows) {
    return std::ceil(std::max(rows, 1.0) / rows_per_page_);
  };
  const double outer = pages(left_card);
  const double window = buffer_pages_ - 2.0;
  return outer + std::ceil(outer / window) * pages(right_card) +
         pages(output_card);
}

BestOfCostModel::BestOfCostModel(
    std::vector<std::unique_ptr<CostModel>> members)
    : members_(std::move(members)) {
  JOINOPT_CHECK(!members_.empty());
}

BestOfCostModel BestOfCostModel::Standard() {
  std::vector<std::unique_ptr<CostModel>> members;
  members.push_back(std::make_unique<HashJoinCostModel>());
  members.push_back(std::make_unique<NestedLoopCostModel>());
  members.push_back(std::make_unique<SortMergeCostModel>());
  return BestOfCostModel(std::move(members));
}

double BestOfCostModel::JoinCost(double left_card, double right_card,
                                 double output_card) const {
  double best = std::numeric_limits<double>::infinity();
  for (const auto& member : members_) {
    best = std::min(best, member->JoinCost(left_card, right_card, output_card));
  }
  return best;
}

JoinOperator BestOfCostModel::OperatorFor(double left_card, double right_card,
                                          double output_card) const {
  double best = std::numeric_limits<double>::infinity();
  JoinOperator op = JoinOperator::kUnspecified;
  for (const auto& member : members_) {
    const double cost = member->JoinCost(left_card, right_card, output_card);
    if (cost < best) {
      best = cost;
      op = member->OperatorFor(left_card, right_card, output_card);
    }
  }
  return op;
}

bool BestOfCostModel::IsSymmetric() const {
  // The minimum of symmetric functions is symmetric; with any asymmetric
  // member we conservatively report asymmetric.
  for (const auto& member : members_) {
    if (!member->IsSymmetric()) {
      return false;
    }
  }
  return true;
}

Result<std::unique_ptr<CostModel>> MakeCostModelByName(std::string_view name) {
  if (name == "cout") {
    return std::unique_ptr<CostModel>(std::make_unique<CoutCostModel>());
  }
  if (name == "bestof") {
    return std::unique_ptr<CostModel>(
        std::make_unique<BestOfCostModel>(BestOfCostModel::Standard()));
  }
  if (name == "hash") {
    return std::unique_ptr<CostModel>(std::make_unique<HashJoinCostModel>());
  }
  if (name == "nlj") {
    return std::unique_ptr<CostModel>(std::make_unique<NestedLoopCostModel>());
  }
  if (name == "smj") {
    return std::unique_ptr<CostModel>(std::make_unique<SortMergeCostModel>());
  }
  return Status::InvalidArgument("unknown cost model '" + std::string(name) +
                                 "' (cout|bestof|hash|nlj|smj)");
}

}  // namespace joinopt
