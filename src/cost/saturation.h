#ifndef JOINOPT_COST_SATURATION_H_
#define JOINOPT_COST_SATURATION_H_

#include "util/macros.h"

namespace joinopt {

/// Finite ceiling for every cardinality and cost the optimizer computes.
///
/// Adversarial-but-legal statistics (cardinalities near DBL_MAX,
/// selectivities near DBL_MIN) make the DP's products and sums overflow
/// to inf, and inf poisons plan-cost comparisons: `inf < inf` is false,
/// so a memo entry whose first candidate overflowed can never be
/// improved, and a whole run can terminate "successfully" with no plan
/// for the root set. Saturating at a large finite ceiling keeps every
/// comparison a total order over reachable values: saturated plans stay
/// comparable (ties break toward the incumbent, as everywhere else in
/// the DP) and the run always completes with a structurally valid tree.
///
/// The ceiling is far above any meaningful estimate (1e300, within a
/// factor ~1e8 of DBL_MAX) so saturation only engages on degenerate
/// inputs; ordinary workloads never observe it.
inline constexpr double kCardinalityCeiling = 1e300;
inline constexpr double kCostCeiling = 1e300;

/// Clamps a computed cardinality or cost into [0, ceiling]. NaN (which
/// compares false against everything) maps to the ceiling: it can only
/// arise from degenerate arithmetic on already-saturated operands (e.g.
/// ceiling * 0), and pricing such a plan as maximally expensive keeps it
/// comparable without letting it win.
inline double SaturateCardinality(double x) {
  if (JOINOPT_UNLIKELY(!(x < kCardinalityCeiling))) {
    return kCardinalityCeiling;  // Catches +inf, NaN, and >= ceiling.
  }
  if (JOINOPT_UNLIKELY(x < 0.0)) {
    return 0.0;
  }
  return x;
}

inline double SaturateCost(double x) {
  if (JOINOPT_UNLIKELY(!(x < kCostCeiling))) {
    return kCostCeiling;
  }
  if (JOINOPT_UNLIKELY(x < 0.0)) {
    return 0.0;
  }
  return x;
}

}  // namespace joinopt

#endif  // JOINOPT_COST_SATURATION_H_
