#include "cost/statistics.h"

#include <algorithm>
#include <string>

#include "exec/executor.h"

namespace joinopt {

Result<QueryGraph> MeasureStatistics(const QueryGraph& graph,
                                     const Database& database) {
  if (static_cast<int>(database.tables.size()) != graph.relation_count()) {
    return Status::InvalidArgument(
        "database has " + std::to_string(database.tables.size()) +
        " tables but the graph has " +
        std::to_string(graph.relation_count()) + " relations");
  }

  QueryGraph measured;
  for (int i = 0; i < graph.relation_count(); ++i) {
    const int64_t rows = database.tables[i].row_count();
    if (rows < 1) {
      return Status::InvalidArgument("relation " + graph.name(i) +
                                     " is empty; cardinality must be >= 1");
    }
    Result<int> added =
        measured.AddRelation(static_cast<double>(rows), graph.name(i));
    JOINOPT_RETURN_IF_ERROR(added.status());
  }

  for (const JoinEdge& edge : graph.edges()) {
    const Table& left = database.tables[edge.left];
    const Table& right = database.tables[edge.right];
    Result<Table> joined = HashJoin(left, right);
    JOINOPT_RETURN_IF_ERROR(joined.status());
    const double denominator = static_cast<double>(left.row_count()) *
                               static_cast<double>(right.row_count());
    double selectivity =
        static_cast<double>(joined->row_count()) / denominator;
    // An empty measured join would zero out every containing estimate;
    // clamp to "at most one result row".
    selectivity = std::clamp(selectivity, 1.0 / denominator, 1.0);
    JOINOPT_RETURN_IF_ERROR(
        measured.AddEdge(edge.left, edge.right, selectivity));
  }
  return measured;
}

}  // namespace joinopt
