#ifndef JOINOPT_COST_STATISTICS_H_
#define JOINOPT_COST_STATISTICS_H_

#include "exec/database.h"
#include "graph/query_graph.h"
#include "util/status.h"

namespace joinopt {

/// Closes the optimizer/executor loop from the data side: derives a
/// query graph's statistics from an actual Database instead of trusting
/// the annotations.
///
/// For every relation the TRUE row count is taken; for every edge the
/// TRUE join selectivity is computed as
///
///   sel(u, v) = |u ⋈ v| / (|u| * |v|)
///
/// by joining the two base tables on their shared attribute. Returns a
/// new QueryGraph with identical topology and measured statistics.
/// Edges whose measured join is empty get the smallest representable
/// positive selectivity (a selectivity of 0 would make every containing
/// plan cost 0 and is rejected by QueryGraph anyway).
///
/// Intended uses: re-optimizing with honest statistics (the examples
/// show estimate drift), and testing that the estimator's independence
/// assumption is exact at the single-edge level.
Result<QueryGraph> MeasureStatistics(const QueryGraph& graph,
                                     const Database& database);

}  // namespace joinopt

#endif  // JOINOPT_COST_STATISTICS_H_
