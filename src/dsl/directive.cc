#include "dsl/directive.h"

#include <charconv>

namespace joinopt {

namespace {

std::string LineContext(std::string_view what, int line) {
  return "line " + std::to_string(line) + ": " + std::string(what);
}

}  // namespace

std::string Directive::JoinedArgs() const {
  std::string out;
  for (const std::string& arg : args) {
    if (!out.empty()) {
      out += ' ';
    }
    out += arg;
  }
  return out;
}

std::vector<Directive> ParseDirectives(std::string_view text) {
  std::vector<Directive> out;
  int line_number = 0;
  size_t pos = 0;
  while (pos <= text.size()) {
    const size_t eol = text.find('\n', pos);
    std::string_view line = text.substr(
        pos, eol == std::string_view::npos ? std::string_view::npos
                                           : eol - pos);
    ++line_number;
    pos = eol == std::string_view::npos ? text.size() + 1 : eol + 1;

    const size_t hash = line.find('#');
    if (hash != std::string_view::npos) {
      line = line.substr(0, hash);
    }
    Directive directive;
    directive.line = line_number;
    size_t cursor = 0;
    while (cursor < line.size()) {
      while (cursor < line.size() &&
             (line[cursor] == ' ' || line[cursor] == '\t' ||
              line[cursor] == '\r')) {
        ++cursor;
      }
      const size_t start = cursor;
      while (cursor < line.size() && line[cursor] != ' ' &&
             line[cursor] != '\t' && line[cursor] != '\r') {
        ++cursor;
      }
      if (cursor > start) {
        if (directive.keyword.empty()) {
          directive.keyword = std::string(line.substr(start, cursor - start));
        } else {
          directive.args.emplace_back(line.substr(start, cursor - start));
        }
      }
    }
    if (!directive.keyword.empty()) {
      out.push_back(std::move(directive));
    }
  }
  return out;
}

Result<uint64_t> ParseU64Field(std::string_view token, std::string_view what,
                               int line) {
  uint64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), value);
  if (ec != std::errc() || ptr != token.data() + token.size()) {
    return Status::InvalidArgument(LineContext(what, line) + " '" +
                                   std::string(token) +
                                   "' is not an unsigned integer");
  }
  return value;
}

Result<double> ParseDoubleField(std::string_view token, std::string_view what,
                                int line) {
  double value = 0.0;
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), value);
  // std::from_chars(double) accepts "inf"/"nan" spellings per
  // chars_format::general, so serialized degenerate statistics parse
  // back; out-of-range magnitudes (1e999) are rejected like garbage.
  if (ec != std::errc() || ptr != token.data() + token.size()) {
    return Status::InvalidArgument(LineContext(what, line) + " '" +
                                   std::string(token) +
                                   "' is not a number");
  }
  return value;
}

Result<bool> ParseBoolField(std::string_view token, std::string_view what,
                            int line) {
  if (token == "on" || token == "1" || token == "true") {
    return true;
  }
  if (token == "off" || token == "0" || token == "false") {
    return false;
  }
  return Status::InvalidArgument(LineContext(what, line) + " '" +
                                 std::string(token) +
                                 "' is not a boolean (on/off)");
}

}  // namespace joinopt
