#ifndef JOINOPT_DSL_DIRECTIVE_H_
#define JOINOPT_DSL_DIRECTIVE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace joinopt {

/// One line of a directive-stream file: a keyword followed by
/// whitespace-separated arguments, annotated with its 1-based source line
/// for error messages. The repro-bundle grammar (src/testing/repro.h) is
/// layered on this, the same line discipline the query-spec language
/// uses: `#` starts a comment, blank lines are skipped.
struct Directive {
  int line = 0;
  std::string keyword;
  std::vector<std::string> args;

  /// The arguments re-joined with single spaces — for directives whose
  /// payload is free text (notes, policy strings).
  std::string JoinedArgs() const;
};

/// Splits `text` into directives. Never fails by itself (an empty input
/// yields an empty stream); malformed *content* is for the layered
/// grammar to reject, with the carried line numbers.
std::vector<Directive> ParseDirectives(std::string_view text);

/// Typed field parsers with line-anchored kInvalidArgument errors, shared
/// by every grammar layered on directives. `what` names the field in the
/// message ("fire step", "cardinality", ...).
Result<uint64_t> ParseU64Field(std::string_view token, std::string_view what,
                               int line);
/// Accepts everything std::from_chars does, plus "inf"/"nan" spellings —
/// serialized degenerate statistics must survive the round trip.
Result<double> ParseDoubleField(std::string_view token, std::string_view what,
                                int line);
/// Accepts "on"/"off"/"1"/"0"/"true"/"false".
Result<bool> ParseBoolField(std::string_view token, std::string_view what,
                            int line);

}  // namespace joinopt

#endif  // JOINOPT_DSL_DIRECTIVE_H_
