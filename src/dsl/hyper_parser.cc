#include "dsl/hyper_parser.h"

#include <charconv>
#include <string>
#include <unordered_map>
#include <vector>

namespace joinopt {

namespace {

std::vector<std::string_view> Tokenize(std::string_view line) {
  std::vector<std::string_view> tokens;
  size_t pos = 0;
  while (pos < line.size()) {
    while (pos < line.size() && (line[pos] == ' ' || line[pos] == '\t')) {
      ++pos;
    }
    const size_t start = pos;
    while (pos < line.size() && line[pos] != ' ' && line[pos] != '\t') {
      ++pos;
    }
    if (pos > start) {
      tokens.push_back(line.substr(start, pos - start));
    }
  }
  return tokens;
}

Status LineError(int line_number, const std::string& message) {
  return Status::InvalidArgument("line " + std::to_string(line_number) + ": " +
                                 message);
}

Result<double> ParseDouble(std::string_view token, int line_number) {
  double value = 0.0;
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), value);
  if (ec != std::errc() || ptr != token.data() + token.size()) {
    return LineError(line_number, "expected a number, got '" +
                                      std::string(token) + "'");
  }
  return value;
}

/// Resolves "a,b,c" into a node set using the name registry.
Result<NodeSet> ParseEndpoint(
    std::string_view token,
    const std::unordered_map<std::string, int>& index_by_name,
    int line_number) {
  NodeSet set;
  size_t pos = 0;
  while (pos <= token.size()) {
    const size_t comma = token.find(',', pos);
    const std::string_view name =
        comma == std::string_view::npos ? token.substr(pos)
                                        : token.substr(pos, comma - pos);
    if (name.empty()) {
      return LineError(line_number, "empty relation name in endpoint list");
    }
    const auto it = index_by_name.find(std::string(name));
    if (it == index_by_name.end()) {
      return LineError(line_number,
                       "unknown relation '" + std::string(name) + "'");
    }
    set.Add(it->second);
    if (comma == std::string_view::npos) {
      break;
    }
    pos = comma + 1;
  }
  return set;
}

}  // namespace

Result<Hypergraph> ParseHypergraphSpec(std::string_view text) {
  Hypergraph graph;
  std::unordered_map<std::string, int> index_by_name;
  int line_number = 0;
  while (!text.empty()) {
    ++line_number;
    const size_t newline = text.find('\n');
    std::string_view line =
        newline == std::string_view::npos ? text : text.substr(0, newline);
    text = newline == std::string_view::npos ? std::string_view()
                                             : text.substr(newline + 1);
    if (!line.empty() && line.back() == '\r') {
      line.remove_suffix(1);
    }
    const size_t hash = line.find('#');
    if (hash != std::string_view::npos) {
      line = line.substr(0, hash);
    }
    const std::vector<std::string_view> tokens = Tokenize(line);
    if (tokens.empty()) {
      continue;
    }

    if (tokens[0] == "rel") {
      if (tokens.size() != 3) {
        return LineError(line_number, "expected: rel <name> <cardinality>");
      }
      const std::string name(tokens[1]);
      if (index_by_name.contains(name)) {
        return LineError(line_number, "duplicate relation '" + name + "'");
      }
      Result<double> cardinality = ParseDouble(tokens[2], line_number);
      JOINOPT_RETURN_IF_ERROR(cardinality.status());
      Result<int> added = graph.AddRelation(*cardinality, name);
      if (!added.ok()) {
        return LineError(line_number, added.status().message());
      }
      index_by_name.emplace(name, *added);
    } else if (tokens[0] == "join" || tokens[0] == "hyperjoin") {
      if (tokens.size() != 4) {
        return LineError(line_number,
                         "expected: " + std::string(tokens[0]) +
                             " <endpoint> <endpoint> <selectivity>");
      }
      Result<NodeSet> left =
          ParseEndpoint(tokens[1], index_by_name, line_number);
      JOINOPT_RETURN_IF_ERROR(left.status());
      Result<NodeSet> right =
          ParseEndpoint(tokens[2], index_by_name, line_number);
      JOINOPT_RETURN_IF_ERROR(right.status());
      if (tokens[0] == "join" &&
          (left->count() != 1 || right->count() != 1)) {
        return LineError(line_number,
                         "'join' takes single relations; use 'hyperjoin' "
                         "for complex endpoints");
      }
      Result<double> selectivity = ParseDouble(tokens[3], line_number);
      JOINOPT_RETURN_IF_ERROR(selectivity.status());
      const Status status = graph.AddEdge(*left, *right, *selectivity);
      if (!status.ok()) {
        return LineError(line_number, status.message());
      }
    } else {
      return LineError(line_number,
                       "unknown directive '" + std::string(tokens[0]) +
                           "' (expected 'rel', 'join', or 'hyperjoin')");
    }
  }
  if (graph.relation_count() == 0) {
    return Status::InvalidArgument("hypergraph spec declares no relations");
  }
  return graph;
}

}  // namespace joinopt
