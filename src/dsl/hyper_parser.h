#ifndef JOINOPT_DSL_HYPER_PARSER_H_
#define JOINOPT_DSL_HYPER_PARSER_H_

#include <string_view>

#include "hyper/hypergraph.h"
#include "util/status.h"

namespace joinopt {

/// Parses the hypergraph query-spec language — the plain spec language
/// plus complex predicates:
///
///   rel       <name> <cardinality>
///   join      <name> <name> <selectivity>          # simple edge
///   hyperjoin <name[,name...]> <name[,name...]> <selectivity>
///
/// e.g. `hyperjoin r1,r2 r3 0.05` declares a predicate usable only once
/// r1 and r2 are both on one side of a join and r3 on the other (DPhyp
/// territory). Endpoint lists are comma-separated without spaces; the
/// two lists must be disjoint. Comments (#) and blank lines as in the
/// plain spec language; errors carry 1-based line numbers.
Result<Hypergraph> ParseHypergraphSpec(std::string_view text);

}  // namespace joinopt

#endif  // JOINOPT_DSL_HYPER_PARSER_H_
