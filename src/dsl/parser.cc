#include "dsl/parser.h"

#include <charconv>
#include <string>
#include <vector>

namespace joinopt {

namespace {

/// Splits a line into whitespace-separated tokens.
std::vector<std::string_view> Tokenize(std::string_view line) {
  std::vector<std::string_view> tokens;
  size_t pos = 0;
  while (pos < line.size()) {
    while (pos < line.size() && (line[pos] == ' ' || line[pos] == '\t')) {
      ++pos;
    }
    const size_t start = pos;
    while (pos < line.size() && line[pos] != ' ' && line[pos] != '\t') {
      ++pos;
    }
    if (pos > start) {
      tokens.push_back(line.substr(start, pos - start));
    }
  }
  return tokens;
}

Result<double> ParseDouble(std::string_view token, int line_number) {
  double value = 0.0;
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), value);
  if (ec != std::errc() || ptr != token.data() + token.size()) {
    return Status::InvalidArgument("line " + std::to_string(line_number) +
                                   ": expected a number, got '" +
                                   std::string(token) + "'");
  }
  return value;
}

Status LineError(int line_number, const std::string& message) {
  return Status::InvalidArgument("line " + std::to_string(line_number) + ": " +
                                 message);
}

}  // namespace

Result<Catalog> ParseQuerySpec(std::string_view text) {
  Catalog catalog;
  int line_number = 0;
  while (!text.empty()) {
    ++line_number;
    const size_t newline = text.find('\n');
    std::string_view line =
        newline == std::string_view::npos ? text : text.substr(0, newline);
    text = newline == std::string_view::npos ? std::string_view()
                                             : text.substr(newline + 1);
    // Strip carriage returns and comments.
    if (!line.empty() && line.back() == '\r') {
      line.remove_suffix(1);
    }
    const size_t hash = line.find('#');
    if (hash != std::string_view::npos) {
      line = line.substr(0, hash);
    }
    const std::vector<std::string_view> tokens = Tokenize(line);
    if (tokens.empty()) {
      continue;
    }

    if (tokens[0] == "rel") {
      if (tokens.size() != 3) {
        return LineError(line_number, "expected: rel <name> <cardinality>");
      }
      Result<double> cardinality = ParseDouble(tokens[2], line_number);
      JOINOPT_RETURN_IF_ERROR(cardinality.status());
      Result<int> added =
          catalog.AddRelation(std::string(tokens[1]), *cardinality);
      if (!added.ok()) {
        return LineError(line_number, added.status().message());
      }
    } else if (tokens[0] == "join") {
      if (tokens.size() != 4) {
        return LineError(line_number,
                         "expected: join <name> <name> <selectivity>");
      }
      Result<double> selectivity = ParseDouble(tokens[3], line_number);
      JOINOPT_RETURN_IF_ERROR(selectivity.status());
      const Status status =
          catalog.AddJoin(tokens[1], tokens[2], *selectivity);
      if (!status.ok()) {
        return LineError(line_number, status.message());
      }
    } else {
      return LineError(line_number, "unknown directive '" +
                                        std::string(tokens[0]) +
                                        "' (expected 'rel' or 'join')");
    }
  }
  if (catalog.relation_count() == 0) {
    return Status::InvalidArgument("query spec declares no relations");
  }
  // Line-level checks above catch each error where it happens; this is
  // the loader-boundary contract check (kInvalidCatalog) every loader
  // runs before handing a catalog out.
  JOINOPT_RETURN_IF_ERROR(catalog.Validate());
  return catalog;
}

Result<QueryGraph> ParseQuerySpecToGraph(std::string_view text) {
  Result<Catalog> catalog = ParseQuerySpec(text);
  JOINOPT_RETURN_IF_ERROR(catalog.status());
  return catalog->BuildQueryGraph();
}

}  // namespace joinopt
