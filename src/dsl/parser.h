#ifndef JOINOPT_DSL_PARSER_H_
#define JOINOPT_DSL_PARSER_H_

#include <string_view>

#include "catalog/catalog.h"
#include "graph/query_graph.h"
#include "util/status.h"

namespace joinopt {

/// Parses the library's tiny query-specification language:
///
///   # comment (also: empty lines are skipped)
///   rel  <name> <cardinality>
///   join <name> <name> <selectivity>
///
/// e.g.
///
///   rel orders 1500000
///   rel customer 150000
///   join orders customer 0.0000066
///
/// Relations must be declared before they appear in a join; cardinalities
/// must be positive; selectivities must lie in (0, 1]. Errors carry the
/// 1-based line number.
Result<Catalog> ParseQuerySpec(std::string_view text);

/// Convenience: parse and lower directly to a QueryGraph.
Result<QueryGraph> ParseQuerySpecToGraph(std::string_view text);

}  // namespace joinopt

#endif  // JOINOPT_DSL_PARSER_H_
