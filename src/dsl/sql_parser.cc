#include "dsl/sql_parser.h"

#include <algorithm>
#include <cctype>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace joinopt {

namespace {

/// Token kinds of the SQL subset.
enum class TokenKind {
  kIdentifier,
  kComma,
  kDot,
  kEquals,
  kSemicolon,
  kEnd,
};

struct Token {
  TokenKind kind;
  std::string text;  // Original spelling (identifiers).
};

/// Lexes the statement; identifiers keep their case, keyword matching is
/// done case-insensitively by the parser.
Result<std::vector<Token>> Lex(std::string_view sql) {
  std::vector<Token> tokens;
  size_t pos = 0;
  while (pos < sql.size()) {
    const char c = sql[pos];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++pos;
      continue;
    }
    if (c == ',') {
      tokens.push_back({TokenKind::kComma, ","});
      ++pos;
      continue;
    }
    if (c == '.') {
      tokens.push_back({TokenKind::kDot, "."});
      ++pos;
      continue;
    }
    if (c == '=') {
      tokens.push_back({TokenKind::kEquals, "="});
      ++pos;
      continue;
    }
    if (c == ';') {
      tokens.push_back({TokenKind::kSemicolon, ";"});
      ++pos;
      continue;
    }
    if (c == '*') {  // Select-list star.
      tokens.push_back({TokenKind::kIdentifier, "*"});
      ++pos;
      continue;
    }
    if (std::isalnum(static_cast<unsigned char>(c)) || c == '_') {
      const size_t start = pos;
      while (pos < sql.size() &&
             (std::isalnum(static_cast<unsigned char>(sql[pos])) ||
              sql[pos] == '_')) {
        ++pos;
      }
      tokens.push_back(
          {TokenKind::kIdentifier, std::string(sql.substr(start, pos - start))});
      continue;
    }
    return Status::InvalidArgument(std::string("unexpected character '") + c +
                                   "' in SQL text");
  }
  tokens.push_back({TokenKind::kEnd, ""});
  return tokens;
}

bool KeywordIs(const Token& token, std::string_view keyword) {
  if (token.kind != TokenKind::kIdentifier ||
      token.text.size() != keyword.size()) {
    return false;
  }
  for (size_t i = 0; i < keyword.size(); ++i) {
    if (std::toupper(static_cast<unsigned char>(token.text[i])) != keyword[i]) {
      return false;
    }
  }
  return true;
}

/// Cursor over the token stream.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  const Token& Peek() const { return tokens_[pos_]; }
  const Token& Next() { return tokens_[std::min(pos_++, tokens_.size() - 1)]; }
  bool AtEnd() const { return Peek().kind == TokenKind::kEnd; }

  Result<std::string> ExpectIdentifier(std::string_view what) {
    const Token& token = Next();
    if (token.kind != TokenKind::kIdentifier) {
      return Status::InvalidArgument("expected " + std::string(what) +
                                     ", got '" + token.text + "'");
    }
    return token.text;
  }

 private:
  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

bool AtFrom(const Parser& parser) { return KeywordIs(parser.Peek(), "FROM"); }

/// One side of an equality predicate: alias.column.
struct ColumnRef {
  std::string alias;
  std::string column;
};

Result<ColumnRef> ParseColumnRef(Parser& parser) {
  Result<std::string> alias = parser.ExpectIdentifier("a table alias");
  JOINOPT_RETURN_IF_ERROR(alias.status());
  if (parser.Peek().kind != TokenKind::kDot) {
    return Status::InvalidArgument("expected '.' after alias '" + *alias +
                                   "' (predicates must be alias.column)");
  }
  parser.Next();
  Result<std::string> column = parser.ExpectIdentifier("a column name");
  JOINOPT_RETURN_IF_ERROR(column.status());
  return ColumnRef{std::move(*alias), std::move(*column)};
}

}  // namespace

Result<QueryGraph> ParseSqlJoinQuery(std::string_view sql,
                                     const Catalog& catalog) {
  Result<std::vector<Token>> tokens = Lex(sql);
  JOINOPT_RETURN_IF_ERROR(tokens.status());
  Parser parser(std::move(*tokens));

  // SELECT <anything> FROM ...
  if (!KeywordIs(parser.Peek(), "SELECT")) {
    return Status::InvalidArgument("statement must start with SELECT");
  }
  parser.Next();
  while (!AtFrom(parser)) {
    if (parser.AtEnd()) {
      return Status::InvalidArgument("missing FROM clause");
    }
    parser.Next();  // The select list is not interpreted.
  }
  parser.Next();  // Consume FROM.

  // FROM list: rel [AS alias] (, rel [AS alias])*
  Result<QueryGraph> catalog_graph = catalog.BuildQueryGraph();
  JOINOPT_RETURN_IF_ERROR(catalog_graph.status());
  QueryGraph graph;
  std::map<std::string, int> node_by_alias;
  for (;;) {
    Result<std::string> relation = parser.ExpectIdentifier("a relation name");
    JOINOPT_RETURN_IF_ERROR(relation.status());
    Result<int> base = catalog.RelationIndex(*relation);
    JOINOPT_RETURN_IF_ERROR(base.status());

    std::string alias = *relation;
    if (KeywordIs(parser.Peek(), "AS")) {
      parser.Next();
      Result<std::string> named = parser.ExpectIdentifier("an alias");
      JOINOPT_RETURN_IF_ERROR(named.status());
      alias = *named;
    } else if (parser.Peek().kind == TokenKind::kIdentifier &&
               !KeywordIs(parser.Peek(), "WHERE")) {
      alias = parser.Next().text;  // Implicit alias: FROM t t1.
    }
    if (node_by_alias.contains(alias)) {
      return Status::InvalidArgument("duplicate alias '" + alias + "'");
    }

    Result<int> node =
        graph.AddRelation(catalog_graph->cardinality(*base), alias);
    JOINOPT_RETURN_IF_ERROR(node.status());
    node_by_alias.emplace(alias, *node);

    if (parser.Peek().kind == TokenKind::kComma) {
      parser.Next();
      continue;
    }
    break;
  }

  // Optional WHERE with AND-separated equalities.
  // Accumulate selectivities per node pair (conjuncts multiply).
  std::map<std::pair<int, int>, double> selectivity_by_pair;
  if (KeywordIs(parser.Peek(), "WHERE")) {
    parser.Next();
    for (;;) {
      Result<ColumnRef> left = ParseColumnRef(parser);
      JOINOPT_RETURN_IF_ERROR(left.status());
      if (parser.Peek().kind != TokenKind::kEquals) {
        return Status::InvalidArgument(
            "only equality join predicates are supported");
      }
      parser.Next();
      Result<ColumnRef> right = ParseColumnRef(parser);
      JOINOPT_RETURN_IF_ERROR(right.status());

      const auto left_node = node_by_alias.find(left->alias);
      const auto right_node = node_by_alias.find(right->alias);
      if (left_node == node_by_alias.end()) {
        return Status::InvalidArgument("unknown alias '" + left->alias + "'");
      }
      if (right_node == node_by_alias.end()) {
        return Status::InvalidArgument("unknown alias '" + right->alias + "'");
      }
      if (left_node->second == right_node->second) {
        return Status::InvalidArgument(
            "predicate references alias '" + left->alias +
            "' on both sides; only join predicates are supported");
      }
      // Textbook key/foreign-key default selectivity.
      const double selectivity =
          1.0 / std::max(graph.cardinality(left_node->second),
                         graph.cardinality(right_node->second));
      const std::pair<int, int> key = {
          std::min(left_node->second, right_node->second),
          std::max(left_node->second, right_node->second)};
      auto [it, inserted] = selectivity_by_pair.emplace(key, selectivity);
      if (!inserted) {
        it->second *= selectivity;  // Conjunctive predicates multiply.
      }

      if (KeywordIs(parser.Peek(), "AND")) {
        parser.Next();
        continue;
      }
      break;
    }
  }
  if (parser.Peek().kind == TokenKind::kSemicolon) {
    parser.Next();
  }
  if (!parser.AtEnd()) {
    return Status::InvalidArgument("unexpected trailing token '" +
                                   parser.Peek().text + "'");
  }

  for (const auto& [pair, selectivity] : selectivity_by_pair) {
    JOINOPT_RETURN_IF_ERROR(
        graph.AddEdge(pair.first, pair.second, std::max(selectivity, 1e-300)));
  }
  return graph;
}

}  // namespace joinopt
