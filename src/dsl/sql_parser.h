#ifndef JOINOPT_DSL_SQL_PARSER_H_
#define JOINOPT_DSL_SQL_PARSER_H_

#include <string_view>

#include "catalog/catalog.h"
#include "graph/query_graph.h"
#include "util/status.h"

namespace joinopt {

/// Parses the join-relevant SQL subset into a query graph:
///
///   SELECT <anything without FROM>
///   FROM   rel [AS alias], rel [AS alias], ...
///   WHERE  a.x = b.y AND c.z = a.w AND ... ;
///
/// Semantics:
///  * every FROM item becomes one query-graph node (so `t AS t1, t AS
///    t2` is a self join with two nodes), with the base relation's
///    cardinality taken from `catalog`;
///  * every equality predicate between two different FROM items becomes
///    a join edge; its selectivity defaults to the textbook primary-key
///    estimate 1 / max(|left|, |right|), and multiple predicates between
///    the same pair multiply;
///  * keywords are case-insensitive; the select list is not interpreted;
///    a trailing semicolon is optional.
///
/// Rejected with a descriptive error: unknown relations, duplicate
/// aliases, predicates referencing undeclared aliases or only one side,
/// non-equality predicates, and empty FROM lists.
Result<QueryGraph> ParseSqlJoinQuery(std::string_view sql,
                                     const Catalog& catalog);

}  // namespace joinopt

#endif  // JOINOPT_DSL_SQL_PARSER_H_
