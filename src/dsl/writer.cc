#include "dsl/writer.h"

#include <charconv>
#include <cstdio>

namespace joinopt {

std::string FormatDoubleShortest(double value) {
  char buffer[64];
  const auto [ptr, ec] =
      std::to_chars(buffer, buffer + sizeof(buffer), value);
  JOINOPT_CHECK(ec == std::errc());
  return std::string(buffer, ptr);
}

std::string WriteQuerySpec(const QueryGraph& graph) {
  std::string out;
  out.reserve(64 * static_cast<size_t>(graph.relation_count() +
                                       graph.edge_count()));
  for (int i = 0; i < graph.relation_count(); ++i) {
    out += "rel ";
    out += graph.name(i);
    out += ' ';
    out += FormatDoubleShortest(graph.cardinality(i));
    out += '\n';
  }
  for (const JoinEdge& edge : graph.edges()) {
    out += "join ";
    out += graph.name(edge.left);
    out += ' ';
    out += graph.name(edge.right);
    out += ' ';
    out += FormatDoubleShortest(edge.selectivity);
    out += '\n';
  }
  return out;
}

}  // namespace joinopt
