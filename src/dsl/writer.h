#ifndef JOINOPT_DSL_WRITER_H_
#define JOINOPT_DSL_WRITER_H_

#include <string>

#include "graph/query_graph.h"

namespace joinopt {

/// Shortest decimal text that std::from_chars parses back to exactly the
/// same double (std::to_chars shortest form; "inf"/"nan" for non-finite
/// values). The serialization primitive behind WriteQuerySpec and the
/// repro-bundle writer: every number the flight recorder persists goes
/// through this so Parse(Write(x)) is bit-for-bit.
std::string FormatDoubleShortest(double value);

/// Serializes a query graph back into the query-spec language accepted
/// by ParseQuerySpec: one `rel` line per relation (in index order, so
/// relation indices survive the round trip) followed by one `join` line
/// per edge. Numbers are printed with enough precision that
/// ParseQuerySpecToGraph(WriteQuerySpec(g)) reproduces `g` exactly —
/// the round-trip property the test suite asserts.
std::string WriteQuerySpec(const QueryGraph& graph);

}  // namespace joinopt

#endif  // JOINOPT_DSL_WRITER_H_
