#include "enumerate/cmp.h"

namespace joinopt {

std::vector<std::pair<NodeSet, NodeSet>> CollectCsgCmpPairs(
    const QueryGraph& graph) {
  std::vector<std::pair<NodeSet, NodeSet>> result;
  EnumerateCsgCmpPairs(
      graph, [&result](NodeSet s1, NodeSet s2) { result.emplace_back(s1, s2); });
  return result;
}

namespace {

/// EnumerateCsgRec in counting mode (complement growth): every emission
/// is one more pair. Returns false once the cap is reached.
bool CountComplementGrowth(const QueryGraph& graph, NodeSet s, NodeSet x,
                           uint64_t cap, uint64_t* count) {
  const NodeSet neighborhood = graph.Neighborhood(s) - x;
  if (neighborhood.empty()) {
    return true;
  }
  for (SubsetIterator it(neighborhood); !it.Done(); it.Next()) {
    if (++*count >= cap) {
      return false;
    }
  }
  for (SubsetIterator it(neighborhood); !it.Done(); it.Next()) {
    if (!CountComplementGrowth(graph, s | it.Current(), x | neighborhood, cap,
                               count)) {
      return false;
    }
  }
  return true;
}

/// EnumerateCmp in counting mode for one primary component s1.
bool CountComplementsFor(const QueryGraph& graph, NodeSet s1, uint64_t cap,
                         uint64_t* count) {
  const NodeSet x = NodeSet::Prefix(s1.Min() + 1) | s1;
  const NodeSet neighborhood = graph.Neighborhood(s1) - x;
  NodeSet remaining = neighborhood;
  while (!remaining.empty()) {
    const int i = remaining.Max();
    if (++*count >= cap) {
      return false;
    }
    const NodeSet b_i_of_n = neighborhood & NodeSet::Prefix(i + 1);
    if (!CountComplementGrowth(graph, NodeSet::Singleton(i), x | b_i_of_n,
                               cap, count)) {
      return false;
    }
    remaining.Remove(i);
  }
  return true;
}

/// EnumerateCsgRec in counting mode (primary growth): every emission is
/// a primary component whose complements are then counted.
bool CountPrimaryGrowth(const QueryGraph& graph, NodeSet s, NodeSet x,
                        uint64_t cap, uint64_t* count) {
  const NodeSet neighborhood = graph.Neighborhood(s) - x;
  if (neighborhood.empty()) {
    return true;
  }
  for (SubsetIterator it(neighborhood); !it.Done(); it.Next()) {
    if (!CountComplementsFor(graph, s | it.Current(), cap, count)) {
      return false;
    }
  }
  for (SubsetIterator it(neighborhood); !it.Done(); it.Next()) {
    if (!CountPrimaryGrowth(graph, s | it.Current(), x | neighborhood, cap,
                            count)) {
      return false;
    }
  }
  return true;
}

}  // namespace

uint64_t CountCsgCmpPairsUpTo(const QueryGraph& graph, uint64_t cap) {
  if (cap == 0) {
    return 0;
  }
  uint64_t count = 0;
  for (int i = graph.relation_count() - 1; i >= 0; --i) {
    const NodeSet start = NodeSet::Singleton(i);
    if (!CountComplementsFor(graph, start, cap, &count)) {
      return count;
    }
    if (!CountPrimaryGrowth(graph, start, NodeSet::Prefix(i + 1), cap,
                            &count)) {
      return count;
    }
  }
  return count;
}

}  // namespace joinopt
