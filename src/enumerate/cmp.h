#ifndef JOINOPT_ENUMERATE_CMP_H_
#define JOINOPT_ENUMERATE_CMP_H_

#include <utility>
#include <vector>

#include "bitset/node_set.h"
#include "enumerate/csg.h"
#include "graph/query_graph.h"

namespace joinopt {

/// EnumerateCmp (Moerkotte & Neumann, Section 3.3): given a connected set
/// `s1`, emits every `s2` such that (s1, s2) is a csg-cmp-pair and
/// min(s2) > min(s1) — i.e. each unordered pair is produced for exactly
/// one of its two components.
///
/// Precondition: BFS numbering (as for EnumerateCsg); `s1` non-empty and
/// connected.
///
/// Implementation note: the VLDB'06 pseudocode passes `X ∪ N` to the
/// recursive call, which over-prunes — on a triangle with s1 = {0} it
/// never produces s2 = {1, 2}, because each neighbor's recursion excludes
/// the other neighbor. The corrected exclusion set (used in Moerkotte's
/// later expositions of the same algorithm) is `X ∪ B_i(N)`: only the
/// neighbors with label <= the current start label are excluded, which is
/// exactly what duplicate suppression needs. We implement the corrected
/// version; the test suite verifies the enumeration against a brute-force
/// oracle on many graphs.
template <typename Emit>
void EnumerateCmp(const QueryGraph& graph, NodeSet s1, Emit&& emit) {
  JOINOPT_DCHECK(!s1.empty());
  const NodeSet x = NodeSet::Prefix(s1.Min() + 1) | s1;
  const NodeSet neighborhood = graph.Neighborhood(s1) - x;
  if (neighborhood.empty()) {
    return;
  }
  // Visit neighbors by descending index; each start node may grow through
  // neighbors of s1 with a LARGER index (they are not in B_i(N)), but not
  // through ones already used as start nodes.
  NodeSet remaining = neighborhood;
  while (!remaining.empty()) {
    const int i = remaining.Max();
    const NodeSet start = NodeSet::Singleton(i);
    emit(start);
    const NodeSet b_i_of_n = neighborhood & NodeSet::Prefix(i + 1);
    EnumerateCsgRec(graph, start, x | b_i_of_n, emit);
    remaining.Remove(i);
  }
}

/// Enumerates all csg-cmp-pairs of the graph, invoking
/// emit(s1, s2) once per unordered pair, in an order valid for dynamic
/// programming (all sub-pairs of s1 and s2 emitted earlier). This is the
/// driving loop of DPccp.
///
/// Precondition: BFS numbering.
template <typename EmitPair>
void EnumerateCsgCmpPairs(const QueryGraph& graph, EmitPair&& emit) {
  EnumerateCsg(graph, [&graph, &emit](NodeSet s1) {
    EnumerateCmp(graph, s1, [&emit, s1](NodeSet s2) { emit(s1, s2); });
  });
}

/// EnumerateCmp with early termination: `emit` returns false to stop.
/// Returns false when the enumeration was stopped.
template <typename Emit>
bool EnumerateCmpUntil(const QueryGraph& graph, NodeSet s1, Emit&& emit) {
  JOINOPT_DCHECK(!s1.empty());
  const NodeSet x = NodeSet::Prefix(s1.Min() + 1) | s1;
  const NodeSet neighborhood = graph.Neighborhood(s1) - x;
  if (neighborhood.empty()) {
    return true;
  }
  NodeSet remaining = neighborhood;
  while (!remaining.empty()) {
    const int i = remaining.Max();
    const NodeSet start = NodeSet::Singleton(i);
    if (!emit(start)) {
      return false;
    }
    const NodeSet b_i_of_n = neighborhood & NodeSet::Prefix(i + 1);
    if (!EnumerateCsgRecUntil(graph, start, x | b_i_of_n, emit)) {
      return false;
    }
    remaining.Remove(i);
  }
  return true;
}

/// EnumerateCsgCmpPairs with early termination: emit(s1, s2) returns
/// false to unwind the whole enumeration immediately — this is what lets
/// a resource budget abort DPccp on a hostile clique without walking the
/// remaining ~2^n pairs. Returns false when stopped.
template <typename EmitPair>
bool EnumerateCsgCmpPairsUntil(const QueryGraph& graph, EmitPair&& emit) {
  return EnumerateCsgUntil(graph, [&graph, &emit](NodeSet s1) {
    return EnumerateCmpUntil(graph, s1,
                             [&emit, s1](NodeSet s2) { return emit(s1, s2); });
  });
}

/// Materializing convenience wrapper for tests/tools.
std::vector<std::pair<NodeSet, NodeSet>> CollectCsgCmpPairs(
    const QueryGraph& graph);

/// Counts csg-cmp-pairs (unordered), stopping early once `cap` is
/// reached. O(min(#ccp, cap)): the AdaptiveOptimizer's gate for "is
/// exact DP affordable here" costs at most the budget itself.
uint64_t CountCsgCmpPairsUpTo(const QueryGraph& graph, uint64_t cap);

}  // namespace joinopt

#endif  // JOINOPT_ENUMERATE_CMP_H_
