#include "enumerate/csg.h"

namespace joinopt {

std::vector<NodeSet> CollectConnectedSubsets(const QueryGraph& graph) {
  std::vector<NodeSet> result;
  EnumerateCsg(graph, [&result](NodeSet s) { result.push_back(s); });
  return result;
}

namespace {

/// EnumerateCsgRec with an early-exit counter; returns false once the
/// cap is reached.
bool CountCsgRec(const QueryGraph& graph, NodeSet s, NodeSet x, uint64_t cap,
                 uint64_t* count) {
  const NodeSet neighborhood = graph.Neighborhood(s) - x;
  if (neighborhood.empty()) {
    return true;
  }
  for (SubsetIterator it(neighborhood); !it.Done(); it.Next()) {
    if (++*count >= cap) {
      return false;
    }
  }
  for (SubsetIterator it(neighborhood); !it.Done(); it.Next()) {
    if (!CountCsgRec(graph, s | it.Current(), x | neighborhood, cap, count)) {
      return false;
    }
  }
  return true;
}

}  // namespace

uint64_t CountConnectedSubsetsUpTo(const QueryGraph& graph, uint64_t cap) {
  if (cap == 0) {
    return 0;
  }
  uint64_t count = 0;
  for (int i = graph.relation_count() - 1; i >= 0; --i) {
    if (++count >= cap) {
      return count;
    }
    if (!CountCsgRec(graph, NodeSet::Singleton(i), NodeSet::Prefix(i + 1), cap,
                     &count)) {
      return count;
    }
  }
  return count;
}

}  // namespace joinopt
