#ifndef JOINOPT_ENUMERATE_CSG_H_
#define JOINOPT_ENUMERATE_CSG_H_

#include <vector>

#include "bitset/node_set.h"
#include "bitset/subset_iterator.h"
#include "graph/query_graph.h"

namespace joinopt {

/// EnumerateCsgRec (Moerkotte & Neumann, Section 3.2): grows the connected
/// set `s` by every non-empty subset of its neighborhood outside the
/// exclusion set `x`, emitting each enlarged set and recursing.
///
/// `emit` is invoked as emit(NodeSet) once per enumerated connected set,
/// in an order where every connected subset of an emitted set that will be
/// emitted at all has been emitted before it (the DP-validity property,
/// Lemma 12). Templated on the callback so the hot loop inlines.
///
/// Precondition: `s` is non-empty and induces a connected subgraph;
/// `x` contains `s`.
template <typename Emit>
void EnumerateCsgRec(const QueryGraph& graph, NodeSet s, NodeSet x,
                     Emit&& emit) {
  const NodeSet neighborhood = graph.Neighborhood(s) - x;
  if (neighborhood.empty()) {
    return;
  }
  // First pass: emit all enlargements (subsets before supersets, which the
  // ascending-mask order of SubsetIterator guarantees).
  for (SubsetIterator it(neighborhood); !it.Done(); it.Next()) {
    emit(s | it.Current());
  }
  // Second pass: recurse, excluding the whole neighborhood so deeper
  // recursion levels cannot regenerate these sets.
  for (SubsetIterator it(neighborhood); !it.Done(); it.Next()) {
    EnumerateCsgRec(graph, s | it.Current(), x | neighborhood, emit);
  }
}

/// EnumerateCsgRec with early termination: `emit` returns false to stop
/// the whole enumeration (resource budgets, first-match searches). The
/// function returns false when the enumeration was stopped. The void
/// variant above stays separate so its hot loop carries no result checks.
template <typename Emit>
bool EnumerateCsgRecUntil(const QueryGraph& graph, NodeSet s, NodeSet x,
                          Emit&& emit) {
  const NodeSet neighborhood = graph.Neighborhood(s) - x;
  if (neighborhood.empty()) {
    return true;
  }
  for (SubsetIterator it(neighborhood); !it.Done(); it.Next()) {
    if (!emit(s | it.Current())) {
      return false;
    }
  }
  for (SubsetIterator it(neighborhood); !it.Done(); it.Next()) {
    if (!EnumerateCsgRecUntil(graph, s | it.Current(), x | neighborhood,
                              emit)) {
      return false;
    }
  }
  return true;
}

/// EnumerateCsg (Moerkotte & Neumann, Section 3.2): emits every non-empty
/// set of nodes that induces a connected subgraph of `graph`, exactly
/// once, in an order valid for dynamic programming.
///
/// Precondition: the nodes of `graph` are numbered breadth-first (see
/// ComputeBfsNumbering); DPccp's correctness proofs assume it. The
/// enumeration itself visits start nodes in descending index order and
/// forbids each start node's connected sets from containing smaller
/// indices (the B_i trick that suppresses duplicates).
template <typename Emit>
void EnumerateCsg(const QueryGraph& graph, Emit&& emit) {
  const int n = graph.relation_count();
  for (int i = n - 1; i >= 0; --i) {
    const NodeSet start = NodeSet::Singleton(i);
    emit(start);
    EnumerateCsgRec(graph, start, NodeSet::Prefix(i + 1), emit);
  }
}

/// EnumerateCsg with early termination (see EnumerateCsgRecUntil).
/// Returns false when `emit` stopped the enumeration.
template <typename Emit>
bool EnumerateCsgUntil(const QueryGraph& graph, Emit&& emit) {
  const int n = graph.relation_count();
  for (int i = n - 1; i >= 0; --i) {
    const NodeSet start = NodeSet::Singleton(i);
    if (!emit(start)) {
      return false;
    }
    if (!EnumerateCsgRecUntil(graph, start, NodeSet::Prefix(i + 1), emit)) {
      return false;
    }
  }
  return true;
}

/// Materializing convenience wrapper: all connected subsets, in emission
/// order. Intended for tests and tools, not hot paths.
std::vector<NodeSet> CollectConnectedSubsets(const QueryGraph& graph);

/// Counts connected subsets, stopping early once `cap` is reached (the
/// result is then exactly `cap`). An O(min(#csg, cap)) pre-pass the DP
/// optimizers use to size their plan table: a near-full table (stars,
/// cliques) wants the dense array backend, a sparse one (chains, cycles)
/// wants the hash map — zero-filling 2^n dense entries would otherwise
/// dominate sub-millisecond optimizations.
uint64_t CountConnectedSubsetsUpTo(const QueryGraph& graph, uint64_t cap);

}  // namespace joinopt

#endif  // JOINOPT_ENUMERATE_CSG_H_
