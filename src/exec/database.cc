#include "exec/database.h"

#include <algorithm>
#include <cmath>
#include <string>

namespace joinopt {

namespace {

std::string JoinAttributeName(int u, int v) {
  if (u > v) {
    std::swap(u, v);
  }
  return "j_" + std::to_string(u) + "_" + std::to_string(v);
}

}  // namespace

Result<Database> GenerateDatabase(const QueryGraph& graph,
                                  const DatabaseGenOptions& options) {
  if (graph.relation_count() == 0) {
    return Status::InvalidArgument("cannot materialize an empty graph");
  }
  if (options.max_rows < 1) {
    return Status::InvalidArgument("max_rows must be positive");
  }
  Random rng(options.seed);
  Database database;
  database.tables.reserve(graph.relation_count());

  for (int i = 0; i < graph.relation_count(); ++i) {
    // Schema: own row id plus one join attribute per incident edge.
    std::vector<std::string> columns = {"id_" + std::to_string(i)};
    for (const JoinEdge& edge : graph.edges()) {
      if (edge.left == i || edge.right == i) {
        columns.push_back(JoinAttributeName(edge.left, edge.right));
      }
    }
    Result<Table> table = Table::WithColumns(std::move(columns));
    JOINOPT_RETURN_IF_ERROR(table.status());

    const int64_t rows = std::min<int64_t>(
        options.max_rows,
        std::max<int64_t>(1, std::llround(graph.cardinality(i))));
    table->mutable_column(0).reserve(static_cast<size_t>(rows));
    for (int64_t r = 0; r < rows; ++r) {
      table->mutable_column(0).push_back(r);
    }
    int column = 1;
    for (const JoinEdge& edge : graph.edges()) {
      if (edge.left != i && edge.right != i) {
        continue;
      }
      // Domain sized so P(match) = 1/domain ≈ the edge's selectivity.
      const uint64_t domain = std::max<uint64_t>(
          1, static_cast<uint64_t>(std::llround(1.0 / edge.selectivity)));
      auto& values = table->mutable_column(column);
      values.reserve(static_cast<size_t>(rows));
      for (int64_t r = 0; r < rows; ++r) {
        values.push_back(static_cast<int64_t>(rng.Uniform(domain)));
      }
      ++column;
    }
    table->set_row_count(rows);
    database.tables.push_back(std::move(*table));
  }
  return database;
}

}  // namespace joinopt
