#ifndef JOINOPT_EXEC_DATABASE_H_
#define JOINOPT_EXEC_DATABASE_H_

#include <vector>

#include "exec/table.h"
#include "graph/query_graph.h"
#include "util/random.h"
#include "util/status.h"

namespace joinopt {

/// A synthetic database instantiating a query graph: one Table per
/// relation. Column naming convention: the predicate of the graph edge
/// between relations u < v is an equi-join on the attribute
/// "j_<u>_<v>", present in both tables; every table also carries its own
/// row id "id_<i>" so join results distinguish source rows.
struct Database {
  std::vector<Table> tables;
};

/// Options for the generator.
struct DatabaseGenOptions {
  uint64_t seed = 42;
  /// Base-table row counts are min(graph cardinality, max_rows) — keeps
  /// execution of plans over "1e8-row" graphs feasible in tests.
  int64_t max_rows = 2000;
};

/// Materializes `graph` into data: relation i gets min(card_i, max_rows)
/// rows; the join attribute for edge (u, v) with selectivity s is drawn
/// uniformly from a domain of round(1 / s) values, so that the expected
/// actual join selectivity matches the graph's annotation
/// (|u ⋈ v| ≈ |u| · |v| · s). With that, executed row counts track the
/// optimizer's independence-model estimates on average.
Result<Database> GenerateDatabase(const QueryGraph& graph,
                                  const DatabaseGenOptions& options = {});

}  // namespace joinopt

#endif  // JOINOPT_EXEC_DATABASE_H_
