#include "exec/executor.h"

#include <algorithm>
#include <numeric>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace joinopt {

namespace {

/// The shared structure of all three join operators: which columns form
/// the equi-join key and how the output schema is assembled.
struct JoinLayout {
  std::vector<int> left_key_columns;
  std::vector<int> right_key_columns;
  std::vector<int> right_payload_columns;
  Result<Table> output = Status::Internal("uninitialized");

  bool IsCrossProduct() const { return left_key_columns.empty(); }
};

JoinLayout PlanJoin(const Table& left, const Table& right) {
  JoinLayout layout;
  for (int rc = 0; rc < right.column_count(); ++rc) {
    const int lc = left.ColumnIndex(right.column_names()[rc]);
    if (lc >= 0) {
      layout.left_key_columns.push_back(lc);
      layout.right_key_columns.push_back(rc);
    } else {
      layout.right_payload_columns.push_back(rc);
    }
  }
  std::vector<std::string> out_columns = left.column_names();
  for (const int rc : layout.right_payload_columns) {
    out_columns.push_back(right.column_names()[rc]);
  }
  layout.output = Table::WithColumns(std::move(out_columns));
  return layout;
}

/// Appends the combined row (left_row ++ right payload) to the output.
void EmitMatch(const Table& left, const Table& right, const JoinLayout& layout,
               Table* out, int64_t left_row, int64_t right_row) {
  for (int c = 0; c < left.column_count(); ++c) {
    out->mutable_column(c).push_back(left.at(left_row, c));
  }
  int out_col = left.column_count();
  for (const int rc : layout.right_payload_columns) {
    out->mutable_column(out_col).push_back(right.at(right_row, rc));
    ++out_col;
  }
  out->set_row_count(out->row_count() + 1);
}

bool KeysEqual(const Table& left, const Table& right, const JoinLayout& layout,
               int64_t left_row, int64_t right_row) {
  for (size_t k = 0; k < layout.left_key_columns.size(); ++k) {
    if (left.at(left_row, layout.left_key_columns[k]) !=
        right.at(right_row, layout.right_key_columns[k])) {
      return false;
    }
  }
  return true;
}

/// FNV-1a over a row's key values — good enough for synthetic data.
struct KeyHash {
  size_t operator()(const std::vector<int64_t>& key) const {
    uint64_t hash = 1469598103934665603ULL;
    for (const int64_t value : key) {
      hash ^= static_cast<uint64_t>(value);
      hash *= 1099511628211ULL;
    }
    return static_cast<size_t>(hash);
  }
};

std::vector<int64_t> ExtractKey(const Table& table,
                                const std::vector<int>& columns, int64_t row) {
  std::vector<int64_t> key;
  key.reserve(columns.size());
  for (const int c : columns) {
    key.push_back(table.at(row, c));
  }
  return key;
}

/// Three-way comparison of key tuples for the sort-merge operator.
int CompareKeys(const Table& a, const std::vector<int>& a_columns, int64_t ar,
                const Table& b, const std::vector<int>& b_columns,
                int64_t br) {
  for (size_t k = 0; k < a_columns.size(); ++k) {
    const int64_t av = a.at(ar, a_columns[k]);
    const int64_t bv = b.at(br, b_columns[k]);
    if (av < bv) return -1;
    if (av > bv) return 1;
  }
  return 0;
}

Result<Table> CrossProduct(const Table& left, const Table& right,
                           JoinLayout layout) {
  Table out = std::move(*layout.output);
  for (int64_t lr = 0; lr < left.row_count(); ++lr) {
    for (int64_t rr = 0; rr < right.row_count(); ++rr) {
      EmitMatch(left, right, layout, &out, lr, rr);
    }
  }
  return out;
}

}  // namespace

Result<Table> HashJoin(const Table& left, const Table& right) {
  JoinLayout layout = PlanJoin(left, right);
  JOINOPT_RETURN_IF_ERROR(layout.output.status());
  if (layout.IsCrossProduct()) {
    return CrossProduct(left, right, std::move(layout));
  }
  Table out = std::move(*layout.output);

  // Build on the right side, probe with the left.
  std::unordered_map<std::vector<int64_t>, std::vector<int64_t>, KeyHash>
      build;
  build.reserve(static_cast<size_t>(right.row_count()));
  for (int64_t rr = 0; rr < right.row_count(); ++rr) {
    build[ExtractKey(right, layout.right_key_columns, rr)].push_back(rr);
  }
  for (int64_t lr = 0; lr < left.row_count(); ++lr) {
    const auto it = build.find(ExtractKey(left, layout.left_key_columns, lr));
    if (it == build.end()) {
      continue;
    }
    for (const int64_t rr : it->second) {
      EmitMatch(left, right, layout, &out, lr, rr);
    }
  }
  return out;
}

Result<Table> NestedLoopJoin(const Table& left, const Table& right) {
  JoinLayout layout = PlanJoin(left, right);
  JOINOPT_RETURN_IF_ERROR(layout.output.status());
  if (layout.IsCrossProduct()) {
    return CrossProduct(left, right, std::move(layout));
  }
  Table out = std::move(*layout.output);
  for (int64_t lr = 0; lr < left.row_count(); ++lr) {
    for (int64_t rr = 0; rr < right.row_count(); ++rr) {
      if (KeysEqual(left, right, layout, lr, rr)) {
        EmitMatch(left, right, layout, &out, lr, rr);
      }
    }
  }
  return out;
}

Result<Table> SortMergeJoin(const Table& left, const Table& right) {
  JoinLayout layout = PlanJoin(left, right);
  JOINOPT_RETURN_IF_ERROR(layout.output.status());
  if (layout.IsCrossProduct()) {
    return CrossProduct(left, right, std::move(layout));
  }
  Table out = std::move(*layout.output);

  // Sort row indices of both inputs by their key tuples.
  std::vector<int64_t> left_order(static_cast<size_t>(left.row_count()));
  std::vector<int64_t> right_order(static_cast<size_t>(right.row_count()));
  std::iota(left_order.begin(), left_order.end(), 0);
  std::iota(right_order.begin(), right_order.end(), 0);
  std::sort(left_order.begin(), left_order.end(),
            [&](int64_t a, int64_t b) {
              return CompareKeys(left, layout.left_key_columns, a, left,
                                 layout.left_key_columns, b) < 0;
            });
  std::sort(right_order.begin(), right_order.end(),
            [&](int64_t a, int64_t b) {
              return CompareKeys(right, layout.right_key_columns, a, right,
                                 layout.right_key_columns, b) < 0;
            });

  // Merge with group-wise cartesian emission on equal keys.
  size_t li = 0;
  size_t ri = 0;
  while (li < left_order.size() && ri < right_order.size()) {
    const int cmp =
        CompareKeys(left, layout.left_key_columns, left_order[li], right,
                    layout.right_key_columns, right_order[ri]);
    if (cmp < 0) {
      ++li;
      continue;
    }
    if (cmp > 0) {
      ++ri;
      continue;
    }
    // Find the extent of the equal-key group on both sides.
    size_t left_end = li + 1;
    while (left_end < left_order.size() &&
           CompareKeys(left, layout.left_key_columns, left_order[left_end],
                       left, layout.left_key_columns, left_order[li]) == 0) {
      ++left_end;
    }
    size_t right_end = ri + 1;
    while (right_end < right_order.size() &&
           CompareKeys(right, layout.right_key_columns,
                       right_order[right_end], right,
                       layout.right_key_columns, right_order[ri]) == 0) {
      ++right_end;
    }
    for (size_t l = li; l < left_end; ++l) {
      for (size_t r = ri; r < right_end; ++r) {
        EmitMatch(left, right, layout, &out, left_order[l], right_order[r]);
      }
    }
    li = left_end;
    ri = right_end;
  }
  return out;
}

namespace {

Result<Table> DispatchJoin(JoinOperator op, const Table& left,
                           const Table& right) {
  switch (op) {
    case JoinOperator::kNestedLoop:
      return NestedLoopJoin(left, right);
    case JoinOperator::kSortMerge:
      return SortMergeJoin(left, right);
    case JoinOperator::kHashJoin:
    case JoinOperator::kUnspecified:
      return HashJoin(left, right);
  }
  return HashJoin(left, right);
}

Result<Table> ExecuteNode(const JoinTree& tree, int index,
                          const Database& database) {
  const JoinTreeNode& node = tree.nodes()[index];
  if (node.IsLeaf()) {
    if (node.relation < 0 ||
        node.relation >= static_cast<int>(database.tables.size())) {
      return Status::InvalidArgument(
          "plan references relation " + std::to_string(node.relation) +
          " absent from the database");
    }
    return database.tables[node.relation];
  }
  Result<Table> left = ExecuteNode(tree, node.left, database);
  JOINOPT_RETURN_IF_ERROR(left.status());
  Result<Table> right = ExecuteNode(tree, node.right, database);
  JOINOPT_RETURN_IF_ERROR(right.status());
  return DispatchJoin(node.op, *left, *right);
}

}  // namespace

Result<Table> ExecutePlan(const JoinTree& tree, const Database& database) {
  if (tree.nodes().empty()) {
    return Status::InvalidArgument("empty plan");
  }
  return ExecuteNode(tree, tree.root_index(), database);
}

}  // namespace joinopt
