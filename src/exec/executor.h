#ifndef JOINOPT_EXEC_EXECUTOR_H_
#define JOINOPT_EXEC_EXECUTOR_H_

#include "exec/database.h"
#include "exec/table.h"
#include "plan/join_tree.h"
#include "util/status.h"

namespace joinopt {

/// Executes a join tree against a materialized database and returns the
/// result table.
///
/// Each join node runs the physical operator the optimizer's cost model
/// selected (JoinTreeNode::op): hash join (also the default for
/// kUnspecified / logical models), nested-loop join, or sort-merge join.
/// All operators equi-join on ALL columns the two inputs share by name
/// (the generator gives the two endpoint tables of a graph edge a common
/// join-attribute column, so cross-product-free plans always join on at
/// least one column). Inputs sharing no column degenerate to a cross
/// product, which is what the cross-product-enabled optimizer variants
/// produce.
///
/// Two correctness properties — checked by the test suite — follow: EVERY
/// valid join tree for the same query produces the same result rows, and
/// every physical operator produces the same rows for the same tree; the
/// optimizer's choices affect speed only.
Result<Table> ExecutePlan(const JoinTree& tree, const Database& database);

/// Single-join building blocks (exposed for tests). Output columns:
/// left's columns followed by right's non-shared columns; all three
/// produce identical row multisets.
Result<Table> HashJoin(const Table& left, const Table& right);
Result<Table> NestedLoopJoin(const Table& left, const Table& right);
Result<Table> SortMergeJoin(const Table& left, const Table& right);

}  // namespace joinopt

#endif  // JOINOPT_EXEC_EXECUTOR_H_
