#include "exec/table.h"

#include <algorithm>
#include <numeric>
#include <set>
#include <utility>

namespace joinopt {

Result<Table> Table::WithColumns(std::vector<std::string> column_names) {
  std::set<std::string> seen;
  for (const std::string& name : column_names) {
    if (name.empty()) {
      return Status::InvalidArgument("column names must be non-empty");
    }
    if (!seen.insert(name).second) {
      return Status::InvalidArgument("duplicate column name '" + name + "'");
    }
  }
  Table table;
  table.names_ = std::move(column_names);
  table.columns_.resize(table.names_.size());
  return table;
}

int Table::ColumnIndex(const std::string& name) const {
  for (int c = 0; c < column_count(); ++c) {
    if (names_[c] == name) {
      return c;
    }
  }
  return -1;
}

void Table::AppendRow(const std::vector<int64_t>& values) {
  JOINOPT_CHECK(static_cast<int>(values.size()) == column_count());
  for (int c = 0; c < column_count(); ++c) {
    columns_[c].push_back(values[c]);
  }
  ++rows_;
}

std::vector<std::vector<int64_t>> Table::CanonicalRows() const {
  // Column order: ascending name.
  std::vector<int> order(names_.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [this](int a, int b) { return names_[a] < names_[b]; });

  std::vector<std::vector<int64_t>> rows(static_cast<size_t>(rows_));
  for (int64_t r = 0; r < rows_; ++r) {
    auto& row = rows[static_cast<size_t>(r)];
    row.reserve(order.size());
    for (const int c : order) {
      row.push_back(columns_[c][static_cast<size_t>(r)]);
    }
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

}  // namespace joinopt
