#ifndef JOINOPT_EXEC_TABLE_H_
#define JOINOPT_EXEC_TABLE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/macros.h"
#include "util/status.h"

namespace joinopt {

/// A tiny columnar table of int64 attributes — just enough substrate to
/// EXECUTE the join trees the optimizers produce, so that plan
/// correctness ("every join order yields the same result") and estimate
/// quality can be checked end to end rather than taken on faith.
class Table {
 public:
  Table() = default;

  /// Creates an empty table with the given column names (must be unique
  /// and non-empty).
  static Result<Table> WithColumns(std::vector<std::string> column_names);

  int column_count() const { return static_cast<int>(names_.size()); }
  int64_t row_count() const { return rows_; }
  const std::vector<std::string>& column_names() const { return names_; }

  /// Index of the column named `name`, or -1.
  int ColumnIndex(const std::string& name) const;

  /// The values of column `c`.
  const std::vector<int64_t>& column(int c) const {
    JOINOPT_DCHECK(c >= 0 && c < column_count());
    return columns_[c];
  }

  /// Cell accessor.
  int64_t at(int64_t row, int col) const {
    JOINOPT_DCHECK(row >= 0 && row < rows_);
    return columns_[col][static_cast<size_t>(row)];
  }

  /// Appends a row; the value count must equal column_count().
  void AppendRow(const std::vector<int64_t>& values);

  /// Direct column append (used by the bulk generator / join); caller
  /// must keep all columns the same length and then call set_row_count.
  std::vector<int64_t>& mutable_column(int c) {
    JOINOPT_DCHECK(c >= 0 && c < column_count());
    return columns_[c];
  }
  void set_row_count(int64_t rows) { rows_ = rows; }

  /// Returns all rows as vectors, sorted lexicographically with columns
  /// reordered by ascending column NAME — a canonical form in which two
  /// tables holding the same relation (same column names, any column and
  /// row order) compare equal. Intended for tests.
  std::vector<std::vector<int64_t>> CanonicalRows() const;

 private:
  std::vector<std::string> names_;
  std::vector<std::vector<int64_t>> columns_;
  int64_t rows_ = 0;
};

}  // namespace joinopt

#endif  // JOINOPT_EXEC_TABLE_H_
