#include "graph/bfs_numbering.h"

#include <string>

namespace joinopt {

bool BfsNumbering::IsIdentity() const {
  for (int i = 0; i < static_cast<int>(new_to_old.size()); ++i) {
    if (new_to_old[i] != i) {
      return false;
    }
  }
  return true;
}

Result<BfsNumbering> ComputeBfsNumbering(const QueryGraph& graph, int start) {
  const int n = graph.relation_count();
  if (n == 0) {
    return Status::FailedPrecondition("cannot BFS-number an empty graph");
  }
  if (start < 0 || start >= n) {
    return Status::InvalidArgument("BFS start node out of range");
  }

  BfsNumbering numbering;
  numbering.new_to_old.reserve(n);
  numbering.old_to_new.assign(n, -1);

  // Generation-at-a-time BFS over node sets. Within a generation, nodes are
  // labeled in ascending original index; any intra-generation order yields
  // a valid BFS numbering per the paper's definition.
  NodeSet visited;
  NodeSet frontier = NodeSet::Singleton(start);
  int next_label = 0;
  while (!frontier.empty()) {
    for (int v : frontier) {
      numbering.old_to_new[v] = next_label;
      numbering.new_to_old.push_back(v);
      ++next_label;
    }
    visited |= frontier;
    frontier = graph.Neighborhood(visited);
  }

  if (next_label != n) {
    return Status::FailedPrecondition(
        "query graph is disconnected: only " + std::to_string(next_label) +
        " of " + std::to_string(n) + " relations reachable from start");
  }
  return numbering;
}

QueryGraph RelabelGraph(const QueryGraph& graph,
                        const BfsNumbering& numbering) {
  QueryGraph relabeled;
  const int n = graph.relation_count();
  for (int label = 0; label < n; ++label) {
    const int old = numbering.new_to_old[label];
    Result<int> added =
        relabeled.AddRelation(graph.cardinality(old), graph.name(old));
    JOINOPT_CHECK(added.ok());
  }
  for (const JoinEdge& edge : graph.edges()) {
    const Status status =
        relabeled.AddEdge(numbering.old_to_new[edge.left],
                          numbering.old_to_new[edge.right], edge.selectivity);
    JOINOPT_CHECK(status.ok());
  }
  return relabeled;
}

}  // namespace joinopt
