#ifndef JOINOPT_GRAPH_BFS_NUMBERING_H_
#define JOINOPT_GRAPH_BFS_NUMBERING_H_

#include <vector>

#include "bitset/node_set.h"
#include "graph/query_graph.h"
#include "util/status.h"

namespace joinopt {

/// A relabeling of the query graph's nodes produced by a breadth-first
/// search, as required by the preconditions of EnumerateCsg/EnumerateCmp
/// (Section 3.4.1 of the paper): label 0 is the start node and each BFS
/// generation receives a contiguous block of labels.
///
/// The mapping is stored both ways so that optimizers can translate sets
/// between the user's numbering and BFS numbering in O(n).
struct BfsNumbering {
  /// new_to_old[label] = original node index carrying that BFS label.
  std::vector<int> new_to_old;
  /// old_to_new[node] = BFS label assigned to the original node.
  std::vector<int> old_to_new;

  /// Translates a set of original node indices into BFS-label space.
  NodeSet ToBfs(NodeSet original) const {
    NodeSet result;
    for (int v : original) {
      result.Add(old_to_new[v]);
    }
    return result;
  }

  /// Translates a set of BFS labels back to original node indices.
  NodeSet ToOriginal(NodeSet bfs) const {
    NodeSet result;
    for (int v : bfs) {
      result.Add(new_to_old[v]);
    }
    return result;
  }

  /// True iff the numbering is the identity permutation (the common case
  /// for generated chain/star graphs, where the remap can be skipped).
  bool IsIdentity() const;
};

/// Computes a BFS numbering of `graph` starting at `start`. Fails when the
/// graph is empty, `start` is out of range, or the graph is disconnected
/// (nodes unreachable from `start` cannot receive a valid BFS label).
Result<BfsNumbering> ComputeBfsNumbering(const QueryGraph& graph, int start);

/// Builds a copy of `graph` whose node i is the original node
/// numbering.new_to_old[i]; cardinalities, names, edges, and selectivities
/// are carried over. DPccp runs on this relabeled graph and maps results
/// back through `numbering`.
QueryGraph RelabelGraph(const QueryGraph& graph, const BfsNumbering& numbering);

}  // namespace joinopt

#endif  // JOINOPT_GRAPH_BFS_NUMBERING_H_
