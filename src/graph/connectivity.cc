#include "graph/connectivity.h"

namespace joinopt {

NodeSet ConnectedComponentOf(const QueryGraph& graph, int start,
                             NodeSet within) {
  JOINOPT_DCHECK(within.Contains(start));
  NodeSet reached = NodeSet::Singleton(start);
  for (;;) {
    // All unvisited nodes of `within` adjacent to the frontier.
    const NodeSet expansion = graph.Neighborhood(reached) & within;
    if (expansion.empty()) {
      return reached;
    }
    reached |= expansion;
  }
}

bool IsConnectedSet(const QueryGraph& graph, NodeSet s) {
  if (s.empty()) {
    return false;
  }
  return ConnectedComponentOf(graph, s.Min(), s) == s;
}

bool IsConnectedGraph(const QueryGraph& graph) {
  if (graph.relation_count() == 0) {
    return false;
  }
  return IsConnectedSet(graph, graph.AllRelations());
}

std::vector<NodeSet> ConnectedComponents(const QueryGraph& graph, NodeSet s) {
  std::vector<NodeSet> components;
  NodeSet remaining = s;
  while (!remaining.empty()) {
    const NodeSet component =
        ConnectedComponentOf(graph, remaining.Min(), remaining);
    components.push_back(component);
    remaining -= component;
  }
  return components;
}

}  // namespace joinopt
