#ifndef JOINOPT_GRAPH_CONNECTIVITY_H_
#define JOINOPT_GRAPH_CONNECTIVITY_H_

#include <vector>

#include "bitset/node_set.h"
#include "graph/query_graph.h"

namespace joinopt {

/// True iff the subgraph induced by `s` is connected (the paper's
/// "connected subset" test). The empty set is not connected; singletons
/// are. Runs a bitset-BFS: O(|s|) neighborhood expansions, each O(|s|)
/// word operations.
bool IsConnectedSet(const QueryGraph& graph, NodeSet s);

/// True iff the whole query graph is connected (precondition of every
/// algorithm in the paper).
bool IsConnectedGraph(const QueryGraph& graph);

/// The connected component of `start` within the induced subgraph `within`.
/// Requires `within.Contains(start)`.
NodeSet ConnectedComponentOf(const QueryGraph& graph, int start,
                             NodeSet within);

/// Decomposes `s` into its connected components (in ascending order of
/// their minimum element). The union of the result equals `s`.
std::vector<NodeSet> ConnectedComponents(const QueryGraph& graph, NodeSet s);

}  // namespace joinopt

#endif  // JOINOPT_GRAPH_CONNECTIVITY_H_
