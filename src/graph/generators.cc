#include "graph/generators.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <utility>
#include <vector>

namespace joinopt {

namespace {

/// Draws a base cardinality from the configured range, log-uniformly so
/// that small and large tables are both represented (real catalogs span
/// orders of magnitude).
double DrawCardinality(const WorkloadConfig& config, Random& rng) {
  const double lo = std::log(config.min_cardinality);
  const double hi = std::log(config.max_cardinality);
  if (!(hi > lo)) {
    return config.min_cardinality;
  }
  return std::exp(rng.UniformDouble(lo, hi));
}

/// Draws an edge selectivity, also log-uniformly.
double DrawSelectivity(const WorkloadConfig& config, Random& rng) {
  const double lo = std::log(config.min_selectivity);
  const double hi = std::log(config.max_selectivity);
  if (!(hi > lo)) {
    return config.min_selectivity;
  }
  return std::exp(rng.UniformDouble(lo, hi));
}

/// Creates n relations with randomized cardinalities.
Result<QueryGraph> MakeRelations(int n, const WorkloadConfig& config,
                                 Random& rng) {
  if (n < 1 || n > kMaxRelations) {
    return Status::InvalidArgument("relation count must be in [1, 64], got " +
                                   std::to_string(n));
  }
  QueryGraph graph;
  for (int i = 0; i < n; ++i) {
    Result<int> added = graph.AddRelation(DrawCardinality(config, rng));
    JOINOPT_RETURN_IF_ERROR(added.status());
  }
  return graph;
}

}  // namespace

std::string_view QueryShapeName(QueryShape shape) {
  switch (shape) {
    case QueryShape::kChain:
      return "chain";
    case QueryShape::kCycle:
      return "cycle";
    case QueryShape::kStar:
      return "star";
    case QueryShape::kClique:
      return "clique";
  }
  return "unknown";
}

Result<QueryGraph> MakeChainQuery(int n, const WorkloadConfig& config) {
  Random rng(config.seed);
  Result<QueryGraph> graph = MakeRelations(n, config, rng);
  JOINOPT_RETURN_IF_ERROR(graph.status());
  for (int i = 0; i + 1 < n; ++i) {
    JOINOPT_RETURN_IF_ERROR(
        graph->AddEdge(i, i + 1, DrawSelectivity(config, rng)));
  }
  return graph;
}

Result<QueryGraph> MakeCycleQuery(int n, const WorkloadConfig& config) {
  if (n < 3) {
    return Status::InvalidArgument(
        "a cycle needs at least 3 relations; use MakeChainQuery for n < 3");
  }
  Random rng(config.seed);
  Result<QueryGraph> graph = MakeRelations(n, config, rng);
  JOINOPT_RETURN_IF_ERROR(graph.status());
  for (int i = 0; i + 1 < n; ++i) {
    JOINOPT_RETURN_IF_ERROR(
        graph->AddEdge(i, i + 1, DrawSelectivity(config, rng)));
  }
  JOINOPT_RETURN_IF_ERROR(graph->AddEdge(n - 1, 0, DrawSelectivity(config, rng)));
  return graph;
}

Result<QueryGraph> MakeStarQuery(int n, const WorkloadConfig& config) {
  Random rng(config.seed);
  Result<QueryGraph> graph = MakeRelations(n, config, rng);
  JOINOPT_RETURN_IF_ERROR(graph.status());
  for (int leaf = 1; leaf < n; ++leaf) {
    JOINOPT_RETURN_IF_ERROR(
        graph->AddEdge(0, leaf, DrawSelectivity(config, rng)));
  }
  return graph;
}

Result<QueryGraph> MakeCliqueQuery(int n, const WorkloadConfig& config) {
  Random rng(config.seed);
  Result<QueryGraph> graph = MakeRelations(n, config, rng);
  JOINOPT_RETURN_IF_ERROR(graph.status());
  for (int u = 0; u < n; ++u) {
    for (int v = u + 1; v < n; ++v) {
      JOINOPT_RETURN_IF_ERROR(
          graph->AddEdge(u, v, DrawSelectivity(config, rng)));
    }
  }
  return graph;
}

Result<QueryGraph> MakeShapeQuery(QueryShape shape, int n,
                                  const WorkloadConfig& config) {
  switch (shape) {
    case QueryShape::kChain:
      return MakeChainQuery(n, config);
    case QueryShape::kCycle:
      return n < 3 ? MakeChainQuery(n, config) : MakeCycleQuery(n, config);
    case QueryShape::kStar:
      return MakeStarQuery(n, config);
    case QueryShape::kClique:
      return MakeCliqueQuery(n, config);
  }
  return Status::InvalidArgument("unknown query shape");
}

Result<QueryGraph> MakeSnowflakeQuery(int arms, int arm_length,
                                      const WorkloadConfig& config) {
  if (arms < 1 || arm_length < 1) {
    return Status::InvalidArgument(
        "snowflake needs at least one arm of length one");
  }
  Random rng(config.seed);
  Result<QueryGraph> graph =
      MakeRelations(1 + arms * arm_length, config, rng);
  JOINOPT_RETURN_IF_ERROR(graph.status());
  for (int arm = 0; arm < arms; ++arm) {
    int previous = 0;  // Each arm hangs off the hub.
    for (int depth = 0; depth < arm_length; ++depth) {
      const int node = 1 + arm * arm_length + depth;
      JOINOPT_RETURN_IF_ERROR(
          graph->AddEdge(previous, node, DrawSelectivity(config, rng)));
      previous = node;
    }
  }
  return graph;
}

Result<QueryGraph> MakeGridQuery(int rows, int cols,
                                 const WorkloadConfig& config) {
  if (rows < 1 || cols < 1) {
    return Status::InvalidArgument("grid dimensions must be positive");
  }
  Random rng(config.seed);
  Result<QueryGraph> graph = MakeRelations(rows * cols, config, rng);
  JOINOPT_RETURN_IF_ERROR(graph.status());
  const auto node = [cols](int r, int c) { return r * cols + c; };
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      if (c + 1 < cols) {
        JOINOPT_RETURN_IF_ERROR(graph->AddEdge(node(r, c), node(r, c + 1),
                                               DrawSelectivity(config, rng)));
      }
      if (r + 1 < rows) {
        JOINOPT_RETURN_IF_ERROR(graph->AddEdge(node(r, c), node(r + 1, c),
                                               DrawSelectivity(config, rng)));
      }
    }
  }
  return graph;
}

Result<QueryGraph> MakeRandomTreeQuery(int n, const WorkloadConfig& config) {
  Random rng(config.seed);
  Result<QueryGraph> graph = MakeRelations(n, config, rng);
  JOINOPT_RETURN_IF_ERROR(graph.status());
  // Random-parent construction: node i attaches to a uniformly random
  // earlier node, yielding a random (non-uniform-spanning-tree, but well
  // mixed) tree.
  for (int i = 1; i < n; ++i) {
    const int parent = static_cast<int>(rng.Uniform(static_cast<uint64_t>(i)));
    JOINOPT_RETURN_IF_ERROR(
        graph->AddEdge(parent, i, DrawSelectivity(config, rng)));
  }
  return graph;
}

Result<QueryGraph> MakeRandomConnectedQuery(int n, int extra_edges,
                                            const WorkloadConfig& config) {
  if (extra_edges < 0) {
    return Status::InvalidArgument("extra_edges must be non-negative");
  }
  Result<QueryGraph> graph = MakeRandomTreeQuery(n, config);
  JOINOPT_RETURN_IF_ERROR(graph.status());
  Random rng(config.seed ^ 0xabcdef1234567890ULL);
  const int max_edges = n * (n - 1) / 2;
  const int target = std::min(max_edges, (n - 1) + extra_edges);
  int attempts = 0;
  while (graph->edge_count() < target && attempts < 64 * max_edges) {
    ++attempts;
    const int u = static_cast<int>(rng.Uniform(static_cast<uint64_t>(n)));
    const int v = static_cast<int>(rng.Uniform(static_cast<uint64_t>(n)));
    if (u == v || graph->HasEdge(u, v)) {
      continue;
    }
    JOINOPT_RETURN_IF_ERROR(
        graph->AddEdge(u, v, DrawSelectivity(config, rng)));
  }
  return graph;
}

QueryGraph ShuffleLabels(const QueryGraph& graph, Random& rng,
                         std::vector<int>* permutation_out) {
  const int n = graph.relation_count();
  std::vector<int> old_to_new(n);
  for (int i = 0; i < n; ++i) {
    old_to_new[i] = i;
  }
  // Fisher-Yates with our deterministic RNG.
  for (int i = n - 1; i > 0; --i) {
    const int j =
        static_cast<int>(rng.Uniform(static_cast<uint64_t>(i) + 1));
    std::swap(old_to_new[i], old_to_new[j]);
  }

  QueryGraph shuffled;
  std::vector<int> new_to_old(n);
  for (int old = 0; old < n; ++old) {
    new_to_old[old_to_new[old]] = old;
  }
  for (int label = 0; label < n; ++label) {
    const int old = new_to_old[label];
    Result<int> added =
        shuffled.AddRelation(graph.cardinality(old), graph.name(old));
    JOINOPT_CHECK(added.ok());
  }
  for (const JoinEdge& edge : graph.edges()) {
    const Status status = shuffled.AddEdge(
        old_to_new[edge.left], old_to_new[edge.right], edge.selectivity);
    JOINOPT_CHECK(status.ok());
  }
  if (permutation_out != nullptr) {
    *permutation_out = std::move(old_to_new);
  }
  return shuffled;
}

}  // namespace joinopt
