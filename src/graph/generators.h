#ifndef JOINOPT_GRAPH_GENERATORS_H_
#define JOINOPT_GRAPH_GENERATORS_H_

#include <string_view>

#include "graph/query_graph.h"
#include "util/random.h"
#include "util/status.h"

namespace joinopt {

/// The four query-graph families the paper analyzes, plus the extra shapes
/// the library's own tests and benchmarks use.
enum class QueryShape {
  kChain,   ///< R0 - R1 - ... - R{n-1}
  kCycle,   ///< chain plus the closing edge R{n-1} - R0
  kStar,    ///< hub R0 joined to every leaf R1..R{n-1}
  kClique,  ///< every pair of relations joined
};

/// Stable lower-case name of a shape ("chain", "cycle", "star", "clique").
std::string_view QueryShapeName(QueryShape shape);

/// Statistics randomization for generated workloads. Every generator draws
/// base cardinalities and edge selectivities from these ranges using the
/// given seed, so a (shape, n, config) triple is fully reproducible.
struct WorkloadConfig {
  uint64_t seed = 42;          ///< RNG seed for cards and selectivities.
  double min_cardinality = 10.0;    ///< Inclusive lower bound, >= 1.
  double max_cardinality = 100000.0;  ///< Upper bound.
  double min_selectivity = 0.001;     ///< Inclusive lower bound, > 0.
  double max_selectivity = 0.5;       ///< Upper bound, <= 1.
};

/// Builds a chain query graph R0 - R1 - ... - R{n-1}. Requires n >= 1.
Result<QueryGraph> MakeChainQuery(int n, const WorkloadConfig& config = {});

/// Builds a cycle query graph. Requires n >= 3 (a 2-cycle would be a
/// duplicate edge; the paper's n=2 cycle row degenerates to a chain, which
/// callers model with MakeChainQuery).
Result<QueryGraph> MakeCycleQuery(int n, const WorkloadConfig& config = {});

/// Builds a star query graph with hub R0 and leaves R1..R{n-1}.
/// Requires n >= 1.
Result<QueryGraph> MakeStarQuery(int n, const WorkloadConfig& config = {});

/// Builds a clique query graph on n relations. Requires n >= 1.
Result<QueryGraph> MakeCliqueQuery(int n, const WorkloadConfig& config = {});

/// Dispatches to the right Make*Query for `shape`. For kCycle with n < 3
/// this falls back to a chain, matching how the paper's Figure 3 treats
/// the degenerate cycle sizes.
Result<QueryGraph> MakeShapeQuery(QueryShape shape, int n,
                                  const WorkloadConfig& config = {});

/// Builds a snowflake schema graph: a hub (relation 0) with `arms`
/// dimension chains of length `arm_length` each — the generalization of
/// star queries that real warehouse schemas normalize into. Total
/// relations: 1 + arms * arm_length. Requires arms >= 1, arm_length >= 1.
Result<QueryGraph> MakeSnowflakeQuery(int arms, int arm_length,
                                      const WorkloadConfig& config = {});

/// Builds a rows x cols grid graph (each node joined to its right and down
/// neighbors); a standard "moderately dense" stress shape that is neither
/// of the paper's extremes. Requires rows, cols >= 1.
Result<QueryGraph> MakeGridQuery(int rows, int cols,
                                 const WorkloadConfig& config = {});

/// Builds a uniformly random spanning tree on n relations (random-parent
/// construction). Requires n >= 1. Uses config.seed for both the topology
/// and the statistics.
Result<QueryGraph> MakeRandomTreeQuery(int n, const WorkloadConfig& config = {});

/// Builds a random connected graph: a random spanning tree plus
/// `extra_edges` additional distinct random edges (silently capped at the
/// complete graph). Requires n >= 1.
Result<QueryGraph> MakeRandomConnectedQuery(int n, int extra_edges,
                                            const WorkloadConfig& config = {});

/// Returns a copy of `graph` whose node indices have been shuffled by a
/// random permutation drawn from `rng`. Used by tests to verify that the
/// algorithms are invariant under relabeling (DPccp must renumber
/// internally). `permutation_out`, if non-null, receives old->new.
QueryGraph ShuffleLabels(const QueryGraph& graph, Random& rng,
                         std::vector<int>* permutation_out = nullptr);

}  // namespace joinopt

#endif  // JOINOPT_GRAPH_GENERATORS_H_
