#include "graph/query_graph.h"

#include <cmath>
#include <string>
#include <utility>

namespace joinopt {

Result<QueryGraph> QueryGraph::WithRelations(int n, double cardinality) {
  if (n < 0 || n > kMaxRelations) {
    return Status::InvalidArgument("relation count must be in [0, 64], got " +
                                   std::to_string(n));
  }
  QueryGraph graph;
  for (int i = 0; i < n; ++i) {
    Result<int> added = graph.AddRelation(cardinality);
    JOINOPT_RETURN_IF_ERROR(added.status());
  }
  return graph;
}

Result<int> QueryGraph::AddRelation(double cardinality, std::string name) {
  if (relation_count() >= kMaxRelations) {
    return Status::OutOfRange("graph already holds 64 relations");
  }
  if (!(cardinality > 0.0) || !std::isfinite(cardinality)) {
    return Status::InvalidArgument("cardinality must be finite and positive");
  }
  const int index = relation_count();
  cardinalities_.push_back(cardinality);
  if (name.empty()) {
    name = "R" + std::to_string(index);
  }
  names_.push_back(std::move(name));
  neighbor_masks_.push_back(NodeSet());
  edge_ids_.emplace_back();
  return index;
}

Status QueryGraph::AddEdge(int u, int v, double selectivity) {
  if (u < 0 || u >= relation_count() || v < 0 || v >= relation_count()) {
    return Status::InvalidArgument("edge endpoint out of range");
  }
  if (u == v) {
    return Status::InvalidArgument("self-loops are not meaningful join edges");
  }
  if (!(selectivity > 0.0) || selectivity > 1.0) {
    return Status::InvalidArgument("selectivity must be in (0, 1]");
  }
  if (HasEdge(u, v)) {
    return Status::InvalidArgument("duplicate edge " + std::to_string(u) +
                                   "-" + std::to_string(v) +
                                   "; fold conjunctive predicates into one "
                                   "selectivity");
  }
  const int edge_id = edge_count();
  edges_.push_back(JoinEdge{u, v, selectivity});
  neighbor_masks_[u].Add(v);
  neighbor_masks_[v].Add(u);
  edge_ids_[u].push_back(edge_id);
  edge_ids_[v].push_back(edge_id);
  return Status::OK();
}

NodeSet QueryGraph::Neighborhood(NodeSet s) const {
  NodeSet result;
  for (int v : s) {
    result |= neighbor_masks_[v];
  }
  return result - s;
}

double QueryGraph::SelectivityBetween(NodeSet s1, NodeSet s2) const {
  JOINOPT_DCHECK(!s1.Intersects(s2));
  // Iterate the smaller side's incident edges.
  const NodeSet small = s1.count() <= s2.count() ? s1 : s2;
  const NodeSet other = s1.count() <= s2.count() ? s2 : s1;
  double product = 1.0;
  for (int v : small) {
    for (int edge_id : edge_ids_[v]) {
      const JoinEdge& edge = edges_[edge_id];
      const int peer = edge.left == v ? edge.right : edge.left;
      if (other.Contains(peer)) {
        product *= edge.selectivity;
      }
    }
  }
  return product;
}

double QueryGraph::SelectivityWithin(NodeSet s) const {
  double product = 1.0;
  for (const JoinEdge& edge : edges_) {
    if (s.Contains(edge.left) && s.Contains(edge.right)) {
      product *= edge.selectivity;
    }
  }
  return product;
}

Status ValidateGraphStatistics(const QueryGraph& graph) {
  for (int i = 0; i < graph.relation_count(); ++i) {
    const double card = graph.cardinality(i);
    if (!(card > 0.0) || !std::isfinite(card)) {
      return Status::DegenerateStatistics(
          "relation '" + graph.name(i) + "' has cardinality " +
          std::to_string(card) + "; must be finite and positive");
    }
  }
  for (const JoinEdge& edge : graph.edges()) {
    // !(s > 0) also catches NaN; s > 1 catches +inf.
    if (!(edge.selectivity > 0.0) || edge.selectivity > 1.0) {
      return Status::DegenerateStatistics(
          "edge " + graph.name(edge.left) + "-" + graph.name(edge.right) +
          " has selectivity " + std::to_string(edge.selectivity) +
          "; must be in (0, 1]");
    }
  }
  return Status::OK();
}

}  // namespace joinopt
