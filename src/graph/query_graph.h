#ifndef JOINOPT_GRAPH_QUERY_GRAPH_H_
#define JOINOPT_GRAPH_QUERY_GRAPH_H_

#include <string>
#include <vector>

#include "bitset/node_set.h"
#include "util/status.h"

namespace joinopt {

namespace testing {
class StatsCorruptor;  // Validation-bypassing backdoor; see src/testing.
}  // namespace testing

/// An undirected join edge between two relations, annotated with the join
/// predicate's selectivity. Joining plans for S1 and S2 multiplies in the
/// selectivities of all edges crossing the cut (S1, S2).
struct JoinEdge {
  int left = 0;          ///< Relation index of one endpoint.
  int right = 0;         ///< Relation index of the other endpoint.
  double selectivity = 1.0;  ///< Predicate selectivity in (0, 1].
};

/// The query graph of a conjunctive join query: one node per relation
/// (identified by index 0..n-1), one undirected edge per join predicate.
///
/// Nodes carry base-table cardinalities and edges carry selectivities; this
/// is all the optimizer's cardinality estimator and cost models need. The
/// graph also precomputes per-node neighbor masks so that neighborhoods,
/// connectivity tests, and cut selectivities are cheap bit operations.
///
/// A QueryGraph is immutable once handed to an optimizer; the builder-style
/// mutators (AddRelation/AddEdge) are for construction only.
class QueryGraph {
 public:
  /// Creates an empty graph. Add relations before edges.
  QueryGraph() = default;

  /// Creates a graph with `n` relations of the given uniform cardinality
  /// and no edges. Requires 0 <= n <= kMaxRelations.
  static Result<QueryGraph> WithRelations(int n, double cardinality = 1000.0);

  /// Adds a relation with the given base cardinality (finite and > 0);
  /// returns its index. Fails when the graph is full (kMaxRelations).
  Result<int> AddRelation(double cardinality, std::string name = "");

  /// Adds an undirected join edge between distinct relations `u` and `v`
  /// with the given selectivity in (0, 1]. Duplicate edges and self-loops
  /// are rejected.
  Status AddEdge(int u, int v, double selectivity = 0.1);

  /// Number of relations.
  int relation_count() const { return static_cast<int>(cardinalities_.size()); }

  /// Number of join edges.
  int edge_count() const { return static_cast<int>(edges_.size()); }

  /// The set {0, ..., n-1} of all relations.
  NodeSet AllRelations() const { return NodeSet::Prefix(relation_count()); }

  /// Base cardinality of relation `i`.
  double cardinality(int i) const {
    JOINOPT_DCHECK(i >= 0 && i < relation_count());
    return cardinalities_[i];
  }

  /// Display name of relation `i` ("R<i>" when none was given).
  const std::string& name(int i) const {
    JOINOPT_DCHECK(i >= 0 && i < relation_count());
    return names_[i];
  }

  /// All join edges, in insertion order.
  const std::vector<JoinEdge>& edges() const { return edges_; }

  /// The set of direct neighbors of node `v` (excluding `v` itself).
  NodeSet Neighbors(int v) const {
    JOINOPT_DCHECK(v >= 0 && v < relation_count());
    return neighbor_masks_[v];
  }

  /// N(S): all nodes adjacent to some node in S, excluding S itself
  /// (Section 3.2 of the paper).
  NodeSet Neighborhood(NodeSet s) const;

  /// True iff some edge crosses the cut (s1, s2), i.e. "S1 connected to
  /// S2" in the paper's pseudocode. The sets need not be disjoint, but the
  /// typical caller guarantees it.
  bool AreConnected(NodeSet s1, NodeSet s2) const {
    return Neighborhood(s1).Intersects(s2);
  }

  /// True iff there is an edge directly between nodes u and v.
  bool HasEdge(int u, int v) const {
    return u != v && neighbor_masks_[u].Contains(v);
  }

  /// Product of the selectivities of all edges with one endpoint in `s1`
  /// and the other in `s2`. Returns 1.0 when no edge crosses (a cross
  /// product). The sets must be disjoint.
  double SelectivityBetween(NodeSet s1, NodeSet s2) const;

  /// Product of the selectivities of all edges with both endpoints inside
  /// `s` (used by the plan validator to recompute |⋈ s| from scratch).
  double SelectivityWithin(NodeSet s) const;

 private:
  friend class testing::StatsCorruptor;

  std::vector<double> cardinalities_;
  std::vector<std::string> names_;
  std::vector<JoinEdge> edges_;
  std::vector<NodeSet> neighbor_masks_;
  /// edge_ids_[v] lists indices into edges_ of the edges incident to v.
  std::vector<std::vector<int>> edge_ids_;
};

/// Re-checks every statistic the optimizers will price plans with:
/// cardinalities must be finite and strictly positive, selectivities in
/// (0, 1]. The builder mutators enforce this at insertion, so a graph
/// built through the public API always passes; the check exists because
/// statistics can also arrive from outside the builders (a corrupted or
/// fault-injected catalog, a deserialized graph, a future stats refresh)
/// and a single inf/NaN silently poisons every cost comparison
/// downstream. Every optimizer prologue calls this; failures are
/// kDegenerateStatistics.
Status ValidateGraphStatistics(const QueryGraph& graph);

}  // namespace joinopt

#endif  // JOINOPT_GRAPH_QUERY_GRAPH_H_
