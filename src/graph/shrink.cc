#include "graph/shrink.h"

#include <limits>

#include "graph/connectivity.h"

namespace joinopt {

Result<std::vector<std::pair<int, int>>> PlanRelationRemoval(
    const QueryGraph& graph, int victim) {
  if (victim < 0 || victim >= graph.relation_count()) {
    return Status::InvalidArgument("victim relation index out of range");
  }
  if (graph.relation_count() < 2) {
    return Status::InvalidArgument(
        "cannot remove the last relation of a graph");
  }
  const NodeSet remaining = graph.AllRelations().Minus(NodeSet::Singleton(victim));
  const std::vector<NodeSet> components =
      ConnectedComponents(graph, remaining);
  std::vector<std::pair<int, int>> reconnect;
  if (components.size() <= 1) {
    return reconnect;
  }
  // One anchor per component: its smallest member that was adjacent to
  // the victim. Components are stitched star-wise onto the first one —
  // each added edge contracts the 2-hop path anchor — victim — anchor.
  const NodeSet victim_neighbors = graph.Neighbors(victim);
  std::vector<int> anchors;
  anchors.reserve(components.size());
  for (const NodeSet component : components) {
    const NodeSet touching = component & victim_neighbors;
    if (touching.empty()) {
      return Status::FailedPrecondition(
          "graph is disconnected even with the victim present");
    }
    anchors.push_back(touching.Min());
  }
  for (size_t c = 1; c < anchors.size(); ++c) {
    reconnect.emplace_back(anchors[0], anchors[c]);
  }
  return reconnect;
}

bool CanRemoveEdge(const QueryGraph& graph, int edge_id) {
  JOINOPT_DCHECK(edge_id >= 0 && edge_id < graph.edge_count());
  const JoinEdge& edge = graph.edges()[edge_id];
  // The edge is removable iff its endpoints stay connected without it:
  // BFS from `left` over all edges except (left, right). Equivalent to a
  // component check on a copy, but without rebuilding the graph.
  NodeSet frontier = NodeSet::Singleton(edge.left);
  NodeSet visited = frontier;
  while (!frontier.empty()) {
    NodeSet next;
    for (const int v : frontier) {
      NodeSet neighbors = graph.Neighbors(v);
      if (v == edge.left) {
        neighbors.Remove(edge.right);
      } else if (v == edge.right) {
        neighbors.Remove(edge.left);
      }
      next |= neighbors;
    }
    frontier = next - visited;
    visited |= frontier;
    if (visited.Contains(edge.right)) {
      return true;
    }
  }
  return false;
}

Result<QueryGraph> RemoveRelationReconnect(const QueryGraph& graph,
                                           int victim) {
  Result<std::vector<std::pair<int, int>>> plan =
      PlanRelationRemoval(graph, victim);
  JOINOPT_RETURN_IF_ERROR(plan.status());

  QueryGraph shrunk;
  std::vector<int> renumber(graph.relation_count(), -1);
  for (int i = 0; i < graph.relation_count(); ++i) {
    if (i == victim) {
      continue;
    }
    Result<int> added = shrunk.AddRelation(graph.cardinality(i),
                                           graph.name(i));
    JOINOPT_RETURN_IF_ERROR(added.status());
    renumber[i] = *added;
  }
  // Selectivity of a victim-incident edge, for pricing contracted paths.
  const auto victim_edge_selectivity = [&](int other) {
    for (const JoinEdge& edge : graph.edges()) {
      if ((edge.left == victim && edge.right == other) ||
          (edge.right == victim && edge.left == other)) {
        return edge.selectivity;
      }
    }
    return 1.0;
  };
  for (const JoinEdge& edge : graph.edges()) {
    if (edge.left == victim || edge.right == victim) {
      continue;
    }
    JOINOPT_RETURN_IF_ERROR(shrunk.AddEdge(
        renumber[edge.left], renumber[edge.right], edge.selectivity));
  }
  for (const auto& [a, b] : *plan) {
    double selectivity =
        victim_edge_selectivity(a) * victim_edge_selectivity(b);
    if (!(selectivity > 0.0)) {  // Underflow to 0 (or worse).
      selectivity = std::numeric_limits<double>::min();
    } else if (selectivity > 1.0) {
      selectivity = 1.0;
    }
    JOINOPT_RETURN_IF_ERROR(
        shrunk.AddEdge(renumber[a], renumber[b], selectivity));
  }
  return shrunk;
}

}  // namespace joinopt
