#ifndef JOINOPT_GRAPH_SHRINK_H_
#define JOINOPT_GRAPH_SHRINK_H_

#include <utility>
#include <vector>

#include "graph/query_graph.h"
#include "util/status.h"

namespace joinopt {

/// Connectivity-preserving shrink steps for delta-debugging query graphs
/// (the repro-bundle minimizer, src/testing/repro.h). Every step keeps a
/// connected graph connected, so the cross-product-free DPs' connectivity
/// precondition survives arbitrary shrink sequences.

/// The edges that must be ADDED (as pairs of surviving relation indices,
/// in the ORIGINAL numbering) so that removing `victim` leaves the graph
/// connected. Removing a node can split the rest into components; each
/// split-off component was reachable only through the victim, so one
/// shortest path through it — two hops, victim's neighbor to victim's
/// neighbor — is contracted into a direct edge per extra component. The
/// result is empty when the remaining graph is already connected.
///
/// Fails with kFailedPrecondition when the input graph was itself
/// disconnected without the victim's help (a split-off component with no
/// edge to the victim), with kInvalidArgument for an out-of-range victim
/// or a single-relation graph (nothing would remain).
Result<std::vector<std::pair<int, int>>> PlanRelationRemoval(
    const QueryGraph& graph, int victim);

/// True iff dropping edge `edge_id` keeps the graph connected (a cycle
/// edge). Requires a valid edge id.
bool CanRemoveEdge(const QueryGraph& graph, int edge_id);

/// Applies PlanRelationRemoval: a copy of `graph` without `victim`,
/// surviving relations renumbered downward in order, reconnect edges
/// added with the product of the two contracted victim-edge
/// selectivities (clamped into (0, 1], the builder's legal range).
/// Requires legal statistics (the builders re-validate); the minimizer
/// applies the same plan to raw spec values itself so degenerate bundles
/// can shrink too.
Result<QueryGraph> RemoveRelationReconnect(const QueryGraph& graph,
                                           int victim);

}  // namespace joinopt

#endif  // JOINOPT_GRAPH_SHRINK_H_
