#include "hyper/dphyp.h"

#include <cmath>
#include <utility>

#include "bitset/subset_iterator.h"
#include "cost/saturation.h"
#include "plan/memo_salvage.h"

namespace joinopt {

namespace {

/// One DPhyp run: holds the table and counters, and implements the five
/// mutually recursive routines of the SIGMOD'08 paper (Solve, EmitCsg,
/// EnumerateCsgRec, EmitCsgCmp, EnumerateCmpRec). Every routine returns
/// false when a resource limit tripped, unwinding the recursion
/// immediately instead of walking the remaining enumeration.
class DPhypRunner {
 public:
  DPhypRunner(const Hypergraph& graph, const CostModel& cost_model,
              const OptimizeOptions& options)
      : graph_(graph),
        cost_model_(cost_model),
        table_(graph.relation_count()),
        governor_(options),
        trace_(options.trace) {}

  Result<OptimizationResult> Run() {
    stats_.algorithm = "DPhyp";
    if (SeedLeaves()) {
      Solve();
    }
    stats_.csg_cmp_pair_counter = 2 * stats_.ono_lohman_counter;
    stats_.elapsed_seconds = governor_.ElapsedSeconds();
    if (governor_.exhausted()) {
      return Salvage();
    }

    Result<JoinTree> tree =
        JoinTree::FromPlanTable(table_, graph_.AllRelations());
    if (!tree.ok()) {
      return Status::FailedPrecondition(
          "no cross-product-free join tree exists for this hypergraph "
          "(complex predicates leave the root set undecomposable)");
    }
    ToggleCounters();
    OptimizationResult result{std::move(*tree), 0.0, 0.0, stats_,
                              DegradationReport()};
    result.cost = result.plan.cost();
    result.cardinality = result.plan.cardinality();
    return result;
  }

 private:
  void ToggleCounters() {
    if (!governor_.options().collect_counters) {
      stats_.inner_counter = 0;
      stats_.csg_cmp_pair_counter = 0;
      stats_.ono_lohman_counter = 0;
      stats_.create_join_tree_calls = 0;
    }
  }

  /// Anytime epilogue: the hypergraph twin of internal::FinishOptimize.
  /// Completes a best-effort plan from the partial memo when the caller
  /// opted in; otherwise (or when salvage itself cannot complete a plan,
  /// e.g. complex hyperedges leave the remaining fragments unjoinable)
  /// returns the limit status unchanged.
  Result<OptimizationResult> Salvage() {
    if (!governor_.options().salvage_on_interrupt) {
      return governor_.limit_status();
    }
    Result<MemoSalvage::Outcome> salvaged = MemoSalvage::Run(
        table_, graph_.AllRelations(), cost_model_,
        [this](NodeSet s1, NodeSet s2) { return graph_.AreConnected(s1, s2); },
        [this](NodeSet s) {
          // The same canonical estimate EmitCsgCmp stores on first reach.
          double product = 1.0;
          for (const int v : s) {
            product *= graph_.cardinality(v);
          }
          return SaturateCardinality(product * graph_.SelectivityWithin(s));
        },
        /*allow_cross_products=*/false, governor_.limit_status());
    if (!salvaged.ok()) {
      return governor_.limit_status();
    }
    stats_.plans_stored = table_.populated_count();
    stats_.best_effort = true;
    stats_.memo_coverage = salvaged->report.memo_coverage;
    ToggleCounters();
    OptimizationResult result{std::move(salvaged->plan), 0.0, 0.0, stats_,
                              std::move(salvaged->report)};
    result.cost = result.plan.cost();
    result.cardinality = result.plan.cardinality();
    return result;
  }

  bool SeedLeaves() {
    for (int i = 0; i < graph_.relation_count(); ++i) {
      table_.RegisterLeaf(NodeSet::Singleton(i), graph_.cardinality(i));
      if (JOINOPT_UNLIKELY(trace_ != nullptr)) {
        governor_.GuardedTrace([&, i] {
          trace_->OnPlanInserted(NodeSet::Singleton(i), 0.0,
                                 graph_.cardinality(i));
        });
      }
    }
    stats_.plans_stored = table_.populated_count();
    return governor_.WithinMemoBudget(table_.populated_count());
  }

  /// Top-level loop: every node is a primary-component start, in
  /// descending index order (duplicate suppression via B_i, exactly as in
  /// DPccp's EnumerateCsg).
  bool Solve() {
    for (int i = graph_.relation_count() - 1; i >= 0; --i) {
      const NodeSet start = NodeSet::Singleton(i);
      if (!EmitCsg(start)) {
        return false;
      }
      if (!EnumerateCsgRec(start, NodeSet::Prefix(i + 1))) {
        return false;
      }
    }
    return true;
  }

  /// Grows the primary component s1; emits every enlargement that is a
  /// connected set (= has a plan: all its decompositions were enumerated
  /// earlier by the subsets-first order) and recurses.
  bool EnumerateCsgRec(NodeSet s1, NodeSet x) {
    const NodeSet neighborhood = graph_.Neighborhood(s1, x);
    if (neighborhood.empty()) {
      return true;
    }
    for (SubsetIterator it(neighborhood); !it.Done(); it.Next()) {
      const NodeSet enlarged = s1 | it.Current();
      if (table_.Find(enlarged) != kInvalidPlanRef) {
        if (!EmitCsg(enlarged)) {
          return false;
        }
      }
    }
    for (SubsetIterator it(neighborhood); !it.Done(); it.Next()) {
      if (!EnumerateCsgRec(s1 | it.Current(), x | neighborhood)) {
        return false;
      }
    }
    return true;
  }

  /// Enumerates the complement components of a connected s1.
  bool EmitCsg(NodeSet s1) {
    const NodeSet x = NodeSet::Prefix(s1.Min() + 1) | s1;
    const NodeSet neighborhood = graph_.Neighborhood(s1, x);
    NodeSet remaining = neighborhood;
    while (!remaining.empty()) {
      const int v = remaining.Max();
      const NodeSet s2 = NodeSet::Singleton(v);
      if (graph_.AreConnected(s1, s2)) {
        if (!EmitCsgCmp(s1, s2)) {
          return false;
        }
      }
      // Grow s2 excluding smaller-indexed representatives (B_v(N)), the
      // corrected EnumerateCmp exclusion (see enumerate/cmp.h).
      if (!EnumerateCmpRec(s1, s2,
                           x | (neighborhood & NodeSet::Prefix(v + 1)))) {
        return false;
      }
      remaining.Remove(v);
    }
    return true;
  }

  /// Grows the complement component s2; emits every enlargement that is
  /// connected AND actually joined to s1 by some hyperedge.
  bool EnumerateCmpRec(NodeSet s1, NodeSet s2, NodeSet x) {
    const NodeSet neighborhood = graph_.Neighborhood(s2, x);
    if (neighborhood.empty()) {
      return true;
    }
    for (SubsetIterator it(neighborhood); !it.Done(); it.Next()) {
      const NodeSet enlarged = s2 | it.Current();
      if (table_.Find(enlarged) != kInvalidPlanRef &&
          graph_.AreConnected(s1, enlarged)) {
        if (!EmitCsgCmp(s1, enlarged)) {
          return false;
        }
      }
    }
    for (SubsetIterator it(neighborhood); !it.Done(); it.Next()) {
      if (!EnumerateCmpRec(s1, s2 | it.Current(), x | neighborhood)) {
        return false;
      }
    }
    return true;
  }

  /// The DP combine step: price s1 ⋈ s2 in both orders. Returns false
  /// when a resource limit tripped.
  bool EmitCsgCmp(NodeSet s1, NodeSet s2) {
    ++stats_.inner_counter;
    ++stats_.ono_lohman_counter;
    if (JOINOPT_UNLIKELY(trace_ != nullptr)) {
      governor_.GuardedTrace([&] { trace_->OnCsgCmpPair(s1, s2); });
    }

    const PlanRef left = table_.Find(s1);
    const PlanRef right = table_.Find(s2);
    JOINOPT_DCHECK(left != kInvalidPlanRef && right != kInvalidPlanRef);
    const double left_cost = table_.cost(left);
    const double left_card = table_.cardinality(left);
    const double right_cost = table_.cost(right);
    const double right_card = table_.cardinality(right);

    bool keep_going = true;
    const NodeSet combined = s1 | s2;
    // |⋈ S| is plan-independent: estimate only on first reach of the
    // set (Intern runs the lambda on creation only), and use the
    // CANONICAL per-set product (same evaluation order as
    // CardinalityEstimator::EstimateSet over the lifted query graph) so
    // saturated estimates agree bit-for-bit with the graph-based DPs
    // and the plan validator (see core/optimizer.cc for the rationale).
    bool created = false;
    const PlanRef ref = table_.Intern(combined, created, [&] {
      double product = 1.0;
      for (const int v : combined) {
        product *= graph_.cardinality(v);
      }
      return SaturateCardinality(product * graph_.SelectivityWithin(combined));
    });
    if (JOINOPT_UNLIKELY(ref == kInvalidPlanRef)) {
      // Size layer overflowed the 26-bit PlanRef offset space; same typed
      // exhaustion channel as the configured memo budget.
      governor_.InjectFailure(Status::BudgetExceeded(
          "plan table layer for " + std::to_string(combined.count()) +
          "-relation sets overflowed the 26-bit PlanRef offset space"));
      return false;
    }
    const double out_card = table_.cardinality(ref);
    if (created) {
      stats_.plans_stored = table_.populated_count();
      keep_going = governor_.WithinMemoBudget(table_.populated_count());
    }

    // Saturated like core CreateJoinTree; see cost/saturation.h.
    const double cost_lr = SaturateCost(
        left_cost + right_cost +
        cost_model_.JoinCost(left_card, right_card, out_card));
    const double cost_rl = SaturateCost(
        left_cost + right_cost +
        cost_model_.JoinCost(right_card, left_card, out_card));
    stats_.create_join_tree_calls += 2;

    if (cost_lr < table_.cost(ref)) {
      table_.SetPlan(ref, cost_lr, left, right,
                     cost_model_.OperatorFor(left_card, right_card, out_card));
      if (JOINOPT_UNLIKELY(trace_ != nullptr)) {
        governor_.GuardedTrace(
            [&] { trace_->OnPlanInserted(combined, cost_lr, out_card); });
      }
    } else if (JOINOPT_UNLIKELY(trace_ != nullptr)) {
      governor_.GuardedTrace(
          [&] { trace_->OnPruned(combined, cost_lr, table_.cost(ref)); });
    }
    if (cost_rl < table_.cost(ref)) {
      table_.SetPlan(ref, cost_rl, right, left,
                     cost_model_.OperatorFor(right_card, left_card, out_card));
      if (JOINOPT_UNLIKELY(trace_ != nullptr)) {
        governor_.GuardedTrace(
            [&] { trace_->OnPlanInserted(combined, cost_rl, out_card); });
      }
    } else if (JOINOPT_UNLIKELY(trace_ != nullptr)) {
      governor_.GuardedTrace(
          [&] { trace_->OnPruned(combined, cost_rl, table_.cost(ref)); });
    }
    return keep_going && !governor_.Tick();
  }

  const Hypergraph& graph_;
  const CostModel& cost_model_;
  PlanTable table_;
  OptimizerStats stats_;
  ResourceGovernor governor_;
  TraceSink* trace_;
};

}  // namespace

namespace {

/// Hypergraph twin of ValidateGraphStatistics: rejects non-finite /
/// non-positive cardinalities and out-of-range selectivities before they
/// reach a plan-cost comparison.
Status ValidateHypergraphStatistics(const Hypergraph& graph) {
  for (int i = 0; i < graph.relation_count(); ++i) {
    const double card = graph.cardinality(i);
    if (!(card > 0.0) || !std::isfinite(card)) {
      return Status::DegenerateStatistics(
          "relation '" + graph.name(i) + "' has cardinality " +
          std::to_string(card) + "; must be finite and positive");
    }
  }
  for (const HyperEdge& edge : graph.edges()) {
    if (!(edge.selectivity > 0.0) || edge.selectivity > 1.0) {
      return Status::DegenerateStatistics(
          "hyperedge " + edge.left.ToString() + "-" + edge.right.ToString() +
          " has selectivity " + std::to_string(edge.selectivity) +
          "; must be in (0, 1]");
    }
  }
  return Status::OK();
}

}  // namespace

Result<OptimizationResult> DPhyp::Optimize(
    const Hypergraph& graph, const CostModel& cost_model,
    const OptimizeOptions& options) const {
  if (graph.relation_count() == 0) {
    return Status::InvalidArgument("hypergraph has no relations");
  }
  JOINOPT_RETURN_IF_ERROR(ValidateHypergraphStatistics(graph));
  if (!graph.IsConnected()) {
    return Status::FailedPrecondition(
        "hypergraph is disconnected; cross-product-free join trees do not "
        "exist");
  }
  DPhypRunner runner(graph, cost_model, options);
  return runner.Run();
}

}  // namespace joinopt
