#ifndef JOINOPT_HYPER_DPHYP_H_
#define JOINOPT_HYPER_DPHYP_H_

#include "core/optimizer.h"
#include "hyper/hypergraph.h"

namespace joinopt {

/// DPhyp [Moerkotte & Neumann, "Dynamic Programming Strikes Back",
/// SIGMOD 2008]: the successor of DPccp that generalizes the csg-cmp-pair
/// enumeration from query graphs to query HYPERgraphs, handling complex
/// (non-binary) join predicates. Included here as the paper's realized
/// future work; on hypergraphs lifted from plain query graphs it must
/// behave exactly like DPccp (same optimum, same pair count) — a property
/// the test suite asserts.
///
/// Counter semantics match DPccp: InnerCounter == OnoLohmanCounter ==
/// number of csg-cmp-pairs of the hypergraph; both join orders of each
/// pair are costed.
///
/// Note: a connected hypergraph may still admit NO cross-product-free
/// join tree (complex predicates can make every split of the root set a
/// cross product); Optimize reports FailedPrecondition in that case.
///
/// DPhyp is not a JoinOrderer (its input is a Hypergraph, not a
/// QueryGraph), but it honors the same OptimizeOptions: memo budgets and
/// deadlines abort with kBudgetExceeded, and the pair/insert/prune trace
/// hooks fire with the hypergraph's node numbering (OnAlgorithmStart is
/// skipped — there is no QueryGraph to report). The registry exposes
/// DPhyp to QueryGraph callers through an adapter that lifts via
/// Hypergraph::FromQueryGraph.
class DPhyp {
 public:
  DPhyp() = default;

  std::string_view name() const { return "DPhyp"; }

  /// Computes an optimal bushy cross-product-free join tree for the
  /// hypergraph under the cost model, subject to the limits in `options`.
  Result<OptimizationResult> Optimize(
      const Hypergraph& graph, const CostModel& cost_model,
      const OptimizeOptions& options = OptimizeOptions()) const;
};

}  // namespace joinopt

#endif  // JOINOPT_HYPER_DPHYP_H_
