#include "hyper/hypergraph.h"

#include <utility>

namespace joinopt {

Hypergraph Hypergraph::FromQueryGraph(const QueryGraph& graph) {
  Hypergraph hyper;
  for (int i = 0; i < graph.relation_count(); ++i) {
    Result<int> added = hyper.AddRelation(graph.cardinality(i), graph.name(i));
    JOINOPT_CHECK(added.ok());
  }
  for (const JoinEdge& edge : graph.edges()) {
    const Status status =
        hyper.AddSimpleEdge(edge.left, edge.right, edge.selectivity);
    JOINOPT_CHECK(status.ok());
  }
  return hyper;
}

Result<int> Hypergraph::AddRelation(double cardinality, std::string name) {
  if (relation_count() >= kMaxRelations) {
    return Status::OutOfRange("hypergraph already holds 64 relations");
  }
  if (!(cardinality > 0.0)) {
    return Status::InvalidArgument("cardinality must be positive");
  }
  const int index = relation_count();
  cardinalities_.push_back(cardinality);
  if (name.empty()) {
    name = "R" + std::to_string(index);
  }
  names_.push_back(std::move(name));
  simple_neighbors_.push_back(NodeSet());
  return index;
}

Status Hypergraph::AddEdge(NodeSet u, NodeSet w, double selectivity) {
  if (u.empty() || w.empty()) {
    return Status::InvalidArgument("hyperedge endpoints must be non-empty");
  }
  if (u.Intersects(w)) {
    return Status::InvalidArgument("hyperedge endpoints must be disjoint");
  }
  if (!(u | w).IsSubsetOf(AllRelations())) {
    return Status::InvalidArgument("hyperedge endpoint out of range");
  }
  if (!(selectivity > 0.0) || selectivity > 1.0) {
    return Status::InvalidArgument("selectivity must be in (0, 1]");
  }
  const HyperEdge edge{u, w, selectivity};
  const int edge_id = edge_count();
  edges_.push_back(edge);
  if (edge.IsSimple()) {
    simple_neighbors_[u.Min()].Add(w.Min());
    simple_neighbors_[w.Min()].Add(u.Min());
  } else {
    complex_edges_.push_back(edge_id);
  }
  return Status::OK();
}

NodeSet Hypergraph::Neighborhood(NodeSet s, NodeSet x) const {
  NodeSet forbidden = s | x;
  NodeSet result;
  for (int v : s) {
    result |= simple_neighbors_[v];
  }
  result -= forbidden;
  for (const int edge_id : complex_edges_) {
    const HyperEdge& edge = edges_[edge_id];
    if (edge.left.IsSubsetOf(s) && !edge.right.Intersects(forbidden)) {
      result.Add(edge.right.Min());
    }
    if (edge.right.IsSubsetOf(s) && !edge.left.Intersects(forbidden)) {
      result.Add(edge.left.Min());
    }
  }
  return result;
}

bool Hypergraph::AreConnected(NodeSet s1, NodeSet s2) const {
  for (const HyperEdge& edge : edges_) {
    if ((edge.left.IsSubsetOf(s1) && edge.right.IsSubsetOf(s2)) ||
        (edge.left.IsSubsetOf(s2) && edge.right.IsSubsetOf(s1))) {
      return true;
    }
  }
  return false;
}

bool Hypergraph::IsConnectedSet(NodeSet s) const {
  if (s.empty()) {
    return false;
  }
  NodeSet reached = s.LowestBit();
  for (;;) {
    NodeSet expansion;
    for (const HyperEdge& edge : edges_) {
      if (!(edge.left | edge.right).IsSubsetOf(s)) {
        continue;  // Edge not induced by s.
      }
      if (edge.left.IsSubsetOf(reached) && !edge.right.IsSubsetOf(reached)) {
        expansion |= edge.right;
      }
      if (edge.right.IsSubsetOf(reached) && !edge.left.IsSubsetOf(reached)) {
        expansion |= edge.left;
      }
    }
    if (expansion.empty()) {
      return reached == s;
    }
    reached |= expansion;
  }
}

bool Hypergraph::IsConnected() const {
  return relation_count() > 0 && IsConnectedSet(AllRelations());
}

double Hypergraph::SelectivityBetween(NodeSet s1, NodeSet s2) const {
  JOINOPT_DCHECK(!s1.Intersects(s2));
  const NodeSet combined = s1 | s2;
  double product = 1.0;
  for (const HyperEdge& edge : edges_) {
    const NodeSet span = edge.left | edge.right;
    if (span.IsSubsetOf(combined) && !span.IsSubsetOf(s1) &&
        !span.IsSubsetOf(s2)) {
      product *= edge.selectivity;
    }
  }
  return product;
}

double Hypergraph::SelectivityWithin(NodeSet s) const {
  double product = 1.0;
  for (const HyperEdge& edge : edges_) {
    if ((edge.left | edge.right).IsSubsetOf(s)) {
      product *= edge.selectivity;
    }
  }
  return product;
}

}  // namespace joinopt
