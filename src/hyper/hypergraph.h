#ifndef JOINOPT_HYPER_HYPERGRAPH_H_
#define JOINOPT_HYPER_HYPERGRAPH_H_

#include <string>
#include <vector>

#include "bitset/node_set.h"
#include "graph/query_graph.h"
#include "util/status.h"

namespace joinopt {

/// A join hyperedge (u, w): a predicate that can only be evaluated once
/// ALL relations in u are on one side of a join and all relations in w on
/// the other (e.g. R1.a + R2.b = R3.c yields ({R1, R2}, {R3})). Simple
/// binary predicates are the special case |u| = |w| = 1.
struct HyperEdge {
  NodeSet left;
  NodeSet right;
  double selectivity = 1.0;

  /// True iff both endpoints are single relations.
  bool IsSimple() const { return left.count() == 1 && right.count() == 1; }
};

/// A query hypergraph: the input of DPhyp [Moerkotte & Neumann, SIGMOD
/// 2008], the successor of this paper's DPccp for queries with complex
/// (non-binary) join predicates.
///
/// Mirrors QueryGraph's API where the concepts coincide; the neighborhood
/// is the DPhyp notion (complex edges contribute only the minimum element
/// of their far side as a representative).
class Hypergraph {
 public:
  Hypergraph() = default;

  /// Lifts a plain query graph: every binary edge becomes a simple
  /// hyperedge. DPhyp on the result must behave exactly like DPccp on the
  /// original (a property the test suite checks).
  static Hypergraph FromQueryGraph(const QueryGraph& graph);

  /// Adds a relation with the given positive cardinality; returns its
  /// index. Fails when the graph is full.
  Result<int> AddRelation(double cardinality, std::string name = "");

  /// Adds the hyperedge (u, w) with a selectivity in (0, 1]. The endpoint
  /// sets must be non-empty, disjoint, and within range.
  Status AddEdge(NodeSet u, NodeSet w, double selectivity = 0.1);

  /// Convenience for simple edges.
  Status AddSimpleEdge(int u, int w, double selectivity = 0.1) {
    return AddEdge(NodeSet::Singleton(u), NodeSet::Singleton(w), selectivity);
  }

  int relation_count() const { return static_cast<int>(cardinalities_.size()); }
  int edge_count() const { return static_cast<int>(edges_.size()); }
  NodeSet AllRelations() const { return NodeSet::Prefix(relation_count()); }

  double cardinality(int i) const {
    JOINOPT_DCHECK(i >= 0 && i < relation_count());
    return cardinalities_[i];
  }
  const std::string& name(int i) const {
    JOINOPT_DCHECK(i >= 0 && i < relation_count());
    return names_[i];
  }
  const std::vector<HyperEdge>& edges() const { return edges_; }

  /// DPhyp neighborhood: the set of representative nodes through which a
  /// connected set containing `s` (and avoiding `x`) can grow. For every
  /// edge (u, w) with u ⊆ s, w ∩ s = ∅, w ∩ x = ∅ (in either
  /// orientation), contributes min(w). Simple edges therefore contribute
  /// their full far endpoint, like QueryGraph::Neighborhood.
  NodeSet Neighborhood(NodeSet s, NodeSet x) const;

  /// True iff some hyperedge (u, w) has u ⊆ s1 and w ⊆ s2 (in either
  /// orientation) — the condition for s1 ⋈ s2 to be a real join rather
  /// than a cross product.
  bool AreConnected(NodeSet s1, NodeSet s2) const;

  /// True iff `s` induces a connected subhypergraph: starting from
  /// min(s), repeatedly absorb any edge both of whose endpoints lie
  /// within `s` and one of which is already fully reached. Definition-
  /// level (used by oracles and validation, not by DPhyp's hot path).
  bool IsConnectedSet(NodeSet s) const;

  /// True iff the whole hypergraph is connected.
  bool IsConnected() const;

  /// Product of the selectivities of the edges that become evaluable at
  /// the join (s1, s2): edges with u ∪ w ⊆ s1 ∪ s2 but not contained in
  /// s1 alone or s2 alone. This containment semantics keeps |⋈ S| well
  /// defined per set, independent of the join order — the invariant DP
  /// needs.
  double SelectivityBetween(NodeSet s1, NodeSet s2) const;

  /// Product of the selectivities of all edges contained in `s`.
  double SelectivityWithin(NodeSet s) const;

 private:
  std::vector<double> cardinalities_;
  std::vector<std::string> names_;
  std::vector<HyperEdge> edges_;
  /// Union of simple-edge neighbors per node (fast path for the common
  /// all-simple case).
  std::vector<NodeSet> simple_neighbors_;
  /// Indices into edges_ of the complex (non-simple) edges.
  std::vector<int> complex_edges_;
};

}  // namespace joinopt

#endif  // JOINOPT_HYPER_HYPERGRAPH_H_
