#ifndef JOINOPT_JOINOPT_H_
#define JOINOPT_JOINOPT_H_

/// Umbrella header for the joinopt library: dynamic-programming join
/// ordering after Moerkotte & Neumann (VLDB 2006), with the DPsize,
/// DPsub, and DPccp algorithms, cross-product and left-deep variants, a
/// greedy baseline, query-graph generators, cost models, and the
/// search-space analytics used to reproduce the paper's evaluation.

#include "analytics/brute_force.h"
#include "analytics/counts.h"
#include "analytics/tree_counts.h"
#include "bitset/node_set.h"
#include "bitset/subset_iterator.h"
#include "catalog/catalog.h"
#include "core/dp_cross_products.h"
#include "core/dpccp.h"
#include "core/dpsize.h"
#include "core/dpsize_linear.h"
#include "core/dpsub.h"
#include "core/greedy.h"
#include "core/optimizer.h"
#include "core/optimizer_context.h"
#include "core/registry.h"
#include "cost/cardinality.h"
#include "cost/cost_model.h"
#include "cost/statistics.h"
#include "core/adaptive.h"
#include "core/idp.h"
#include "core/ikkbz.h"
#include "core/kbest.h"
#include "core/lindp.h"
#include "core/top_down.h"
#include "dsl/parser.h"
#include "dsl/hyper_parser.h"
#include "dsl/sql_parser.h"
#include "dsl/writer.h"
#include "exec/database.h"
#include "exec/executor.h"
#include "exec/table.h"
#include "enumerate/cmp.h"
#include "enumerate/csg.h"
#include "graph/bfs_numbering.h"
#include "hyper/dphyp.h"
#include "hyper/hypergraph.h"
#include "graph/connectivity.h"
#include "graph/generators.h"
#include "graph/query_graph.h"
#include "plan/dot_export.h"
#include "plan/join_tree.h"
#include "plan/plan_printer.h"
#include "plan/plan_table.h"
#include "plan/plan_validator.h"
#include "util/random.h"
#include "util/status.h"
#include "util/stopwatch.h"

#endif  // JOINOPT_JOINOPT_H_
