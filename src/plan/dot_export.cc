#include "plan/dot_export.h"

#include <sstream>

namespace joinopt {

namespace {

/// Escapes a string for use inside a double-quoted DOT label.
std::string EscapeLabel(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    if (c == '"' || c == '\\') {
      out += '\\';
    }
    out += c;
  }
  return out;
}

}  // namespace

std::string QueryGraphToDot(const QueryGraph& graph) {
  std::ostringstream out;
  out << "graph query_graph {\n"
      << "  node [shape=ellipse];\n";
  for (int i = 0; i < graph.relation_count(); ++i) {
    out << "  r" << i << " [label=\"" << EscapeLabel(graph.name(i)) << "\\n|"
        << graph.cardinality(i) << "|\"];\n";
  }
  for (const JoinEdge& edge : graph.edges()) {
    out << "  r" << edge.left << " -- r" << edge.right << " [label=\""
        << edge.selectivity << "\"];\n";
  }
  out << "}\n";
  return out.str();
}

std::string PlanToDot(const JoinTree& tree, const QueryGraph& graph) {
  std::ostringstream out;
  out << "digraph plan {\n"
      << "  node [shape=box];\n";
  for (size_t i = 0; i < tree.nodes().size(); ++i) {
    const JoinTreeNode& node = tree.nodes()[i];
    if (node.IsLeaf()) {
      out << "  n" << i << " [label=\"" << EscapeLabel(graph.name(node.relation))
          << "\\nrows=" << node.cardinality << "\"];\n";
    } else {
      out << "  n" << i << " [shape=ellipse, label=\"⋈\\nrows="
          << node.cardinality << "\\ncost=" << node.cost << "\"];\n";
      out << "  n" << i << " -> n" << node.left << ";\n";
      out << "  n" << i << " -> n" << node.right << ";\n";
    }
  }
  out << "}\n";
  return out.str();
}

}  // namespace joinopt
