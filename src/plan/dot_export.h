#ifndef JOINOPT_PLAN_DOT_EXPORT_H_
#define JOINOPT_PLAN_DOT_EXPORT_H_

#include <string>

#include "graph/query_graph.h"
#include "plan/join_tree.h"

namespace joinopt {

/// Renders the query graph in Graphviz DOT format: one node per relation
/// (labelled "name\ncard"), one undirected edge per join predicate
/// (labelled with its selectivity).
std::string QueryGraphToDot(const QueryGraph& graph);

/// Renders a join tree in Graphviz DOT format: leaves are relation scans
/// (boxes), inner nodes are joins labelled with estimated rows and
/// cumulative cost.
std::string PlanToDot(const JoinTree& tree, const QueryGraph& graph);

}  // namespace joinopt

#endif  // JOINOPT_PLAN_DOT_EXPORT_H_
