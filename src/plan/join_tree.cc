#include "plan/join_tree.h"

#include <algorithm>

namespace joinopt {

Result<JoinTree> JoinTree::FromPlanTable(const PlanTable& table,
                                         NodeSet root_set) {
  if (root_set.empty()) {
    return Status::InvalidArgument("cannot build a plan for the empty set");
  }
  const PlanRef root_ref = table.Find(root_set);
  if (root_ref == kInvalidPlanRef) {
    return Status::Internal("plan table holds no entry for " +
                            root_set.ToString());
  }
  JoinTree tree;
  Result<int> root = tree.Build(table, root_ref);
  JOINOPT_RETURN_IF_ERROR(root.status());
  JOINOPT_DCHECK(*root == tree.root_index());
  return tree;
}

Result<int> JoinTree::Build(const PlanTable& table, PlanRef ref) {
  const NodeSet set = table.set(ref);
  JoinTreeNode node;
  node.relations = set;
  node.cardinality = table.cardinality(ref);
  node.cost = table.cost(ref);

  if (table.IsLeaf(ref)) {
    if (set.count() != 1) {
      return Status::Internal("leaf entry for non-singleton set " +
                              set.ToString());
    }
    node.relation = set.Min();
    nodes_.push_back(node);
    return static_cast<int>(nodes_.size()) - 1;
  }

  // Child refs cannot dangle (slabs only grow), but the sets they lead
  // to must still partition the parent — salvage write-backs and the
  // orderers are checked here.
  const PlanRef left_ref = table.left(ref);
  const PlanRef right_ref = table.right(ref);
  const NodeSet left_set = table.set(left_ref);
  const NodeSet right_set = table.set(right_ref);
  if ((left_set | right_set) != set || left_set.Intersects(right_set) ||
      left_set.empty() || right_set.empty()) {
    return Status::Internal("inconsistent decomposition for " +
                            set.ToString());
  }
  Result<int> left = Build(table, left_ref);
  JOINOPT_RETURN_IF_ERROR(left.status());
  Result<int> right = Build(table, right_ref);
  JOINOPT_RETURN_IF_ERROR(right.status());
  node.left = *left;
  node.right = *right;
  node.op = table.op(ref);
  nodes_.push_back(node);
  return static_cast<int>(nodes_.size()) - 1;
}

Result<JoinTree> JoinTree::FromNodes(std::vector<JoinTreeNode> nodes) {
  if (nodes.empty()) {
    return Status::InvalidArgument("a join tree needs at least one node");
  }
  for (size_t i = 0; i < nodes.size(); ++i) {
    const JoinTreeNode& node = nodes[i];
    if (node.IsLeaf()) {
      continue;
    }
    if (node.left < 0 || node.right < 0 ||
        node.left >= static_cast<int>(i) ||
        node.right >= static_cast<int>(i)) {
      return Status::InvalidArgument(
          "children must precede their parent (node " + std::to_string(i) +
          ")");
    }
  }
  JoinTree tree;
  tree.nodes_ = std::move(nodes);
  return tree;
}

int JoinTree::LeafCount() const {
  return static_cast<int>(
      std::count_if(nodes_.begin(), nodes_.end(),
                    [](const JoinTreeNode& n) { return n.IsLeaf(); }));
}

int JoinTree::JoinCount() const {
  return static_cast<int>(nodes_.size()) - LeafCount();
}

int JoinTree::Height() const {
  // Children precede parents in nodes_, so one forward pass suffices.
  std::vector<int> height(nodes_.size(), 0);
  for (size_t i = 0; i < nodes_.size(); ++i) {
    const JoinTreeNode& node = nodes_[i];
    if (!node.IsLeaf()) {
      height[i] = 1 + std::max(height[node.left], height[node.right]);
    }
  }
  return nodes_.empty() ? 0 : height.back();
}

bool JoinTree::IsLeftDeep() const {
  for (const JoinTreeNode& node : nodes_) {
    if (!node.IsLeaf() && !nodes_[node.right].IsLeaf()) {
      return false;
    }
  }
  return true;
}

void JoinTree::RelabelLeaves(const std::vector<int>& new_to_old) {
  for (JoinTreeNode& node : nodes_) {
    if (node.IsLeaf()) {
      node.relation = new_to_old[node.relation];
      node.relations = NodeSet::Singleton(node.relation);
    }
  }
  // Rebuild interior sets bottom-up (children precede parents).
  for (JoinTreeNode& node : nodes_) {
    if (!node.IsLeaf()) {
      node.relations = nodes_[node.left].relations | nodes_[node.right].relations;
    }
  }
}

}  // namespace joinopt
