#include "plan/join_tree.h"

#include <algorithm>

namespace joinopt {

Result<JoinTree> JoinTree::FromPlanTable(const PlanTable& table,
                                         NodeSet root_set) {
  if (root_set.empty()) {
    return Status::InvalidArgument("cannot build a plan for the empty set");
  }
  JoinTree tree;
  Result<int> root = tree.Build(table, root_set);
  JOINOPT_RETURN_IF_ERROR(root.status());
  JOINOPT_DCHECK(*root == tree.root_index());
  return tree;
}

Result<int> JoinTree::Build(const PlanTable& table, NodeSet set) {
  const PlanEntry* entry = table.Find(set);
  if (entry == nullptr) {
    return Status::Internal("plan table holds no entry for " + set.ToString());
  }

  JoinTreeNode node;
  node.relations = set;
  node.cardinality = entry->cardinality;
  node.cost = entry->cost;

  if (entry->IsLeaf()) {
    if (set.count() != 1) {
      return Status::Internal("leaf entry for non-singleton set " +
                              set.ToString());
    }
    node.relation = set.Min();
    nodes_.push_back(node);
    return static_cast<int>(nodes_.size()) - 1;
  }

  if ((entry->left | entry->right) != set ||
      entry->left.Intersects(entry->right) || entry->left.empty() ||
      entry->right.empty()) {
    return Status::Internal("inconsistent decomposition for " +
                            set.ToString());
  }
  Result<int> left = Build(table, entry->left);
  JOINOPT_RETURN_IF_ERROR(left.status());
  Result<int> right = Build(table, entry->right);
  JOINOPT_RETURN_IF_ERROR(right.status());
  node.left = *left;
  node.right = *right;
  node.op = entry->op;
  nodes_.push_back(node);
  return static_cast<int>(nodes_.size()) - 1;
}

Result<JoinTree> JoinTree::FromNodes(std::vector<JoinTreeNode> nodes) {
  if (nodes.empty()) {
    return Status::InvalidArgument("a join tree needs at least one node");
  }
  for (size_t i = 0; i < nodes.size(); ++i) {
    const JoinTreeNode& node = nodes[i];
    if (node.IsLeaf()) {
      continue;
    }
    if (node.left < 0 || node.right < 0 ||
        node.left >= static_cast<int>(i) ||
        node.right >= static_cast<int>(i)) {
      return Status::InvalidArgument(
          "children must precede their parent (node " + std::to_string(i) +
          ")");
    }
  }
  JoinTree tree;
  tree.nodes_ = std::move(nodes);
  return tree;
}

int JoinTree::LeafCount() const {
  return static_cast<int>(
      std::count_if(nodes_.begin(), nodes_.end(),
                    [](const JoinTreeNode& n) { return n.IsLeaf(); }));
}

int JoinTree::JoinCount() const {
  return static_cast<int>(nodes_.size()) - LeafCount();
}

int JoinTree::Height() const {
  // Children precede parents in nodes_, so one forward pass suffices.
  std::vector<int> height(nodes_.size(), 0);
  for (size_t i = 0; i < nodes_.size(); ++i) {
    const JoinTreeNode& node = nodes_[i];
    if (!node.IsLeaf()) {
      height[i] = 1 + std::max(height[node.left], height[node.right]);
    }
  }
  return nodes_.empty() ? 0 : height.back();
}

bool JoinTree::IsLeftDeep() const {
  for (const JoinTreeNode& node : nodes_) {
    if (!node.IsLeaf() && !nodes_[node.right].IsLeaf()) {
      return false;
    }
  }
  return true;
}

void JoinTree::RelabelLeaves(const std::vector<int>& new_to_old) {
  for (JoinTreeNode& node : nodes_) {
    if (node.IsLeaf()) {
      node.relation = new_to_old[node.relation];
      node.relations = NodeSet::Singleton(node.relation);
    }
  }
  // Rebuild interior sets bottom-up (children precede parents).
  for (JoinTreeNode& node : nodes_) {
    if (!node.IsLeaf()) {
      node.relations = nodes_[node.left].relations | nodes_[node.right].relations;
    }
  }
}

}  // namespace joinopt
