#ifndef JOINOPT_PLAN_JOIN_TREE_H_
#define JOINOPT_PLAN_JOIN_TREE_H_

#include <vector>

#include "bitset/node_set.h"
#include "cost/cost_model.h"
#include "graph/query_graph.h"
#include "plan/plan_table.h"
#include "util/status.h"

namespace joinopt {

/// One node of a materialized join tree. Nodes live in the owning
/// JoinTree's vector and refer to children by index; -1 marks "no child"
/// (leaves).
struct JoinTreeNode {
  /// The relations covered by this subtree.
  NodeSet relations;
  /// Estimated output cardinality of this subtree.
  double cardinality = 0.0;
  /// Cumulative cost of this subtree (0 for leaves).
  double cost = 0.0;
  /// For leaves: the relation index. -1 for joins.
  int relation = -1;
  /// Child indices into JoinTree::nodes(); -1 for leaves.
  int left = -1;
  int right = -1;
  /// Physical operator for join nodes (kUnspecified under logical cost
  /// models); meaningless for leaves.
  JoinOperator op = JoinOperator::kUnspecified;

  bool IsLeaf() const { return relation >= 0; }
};

/// An immutable, value-semantic join tree materialized from a PlanTable.
///
/// The DP algorithms leave only decomposition breadcrumbs in the table;
/// FromPlanTable follows them from the root set down and assembles the
/// explicit tree the caller can print, validate, or hand to an executor.
class JoinTree {
 public:
  /// Reconstructs the best plan for `root_set` from `table`. Fails when
  /// the table holds no plan for `root_set` or the breadcrumbs are
  /// inconsistent (child sets that do not partition their parent — an
  /// optimizer bug). The walk follows child PlanRefs directly: no set is
  /// re-hashed during reconstruction.
  static Result<JoinTree> FromPlanTable(const PlanTable& table,
                                        NodeSet root_set);

  /// Wraps an explicitly assembled node vector (used by the k-best
  /// enumerator, which materializes trees from its own memo). Children
  /// must precede their parents; the root is the last node. Fails on an
  /// empty vector or malformed child indices.
  static Result<JoinTree> FromNodes(std::vector<JoinTreeNode> nodes);

  /// All nodes; the root is the last element.
  const std::vector<JoinTreeNode>& nodes() const { return nodes_; }

  /// The root node. Requires a non-empty tree.
  const JoinTreeNode& root() const {
    JOINOPT_DCHECK(!nodes_.empty());
    return nodes_.back();
  }

  /// Index of the root node.
  int root_index() const { return static_cast<int>(nodes_.size()) - 1; }

  /// The set of relations joined by the whole tree.
  NodeSet relations() const { return root().relations; }

  /// Total plan cost.
  double cost() const { return root().cost; }

  /// Estimated result cardinality.
  double cardinality() const { return root().cardinality; }

  /// Number of leaves (base relations).
  int LeafCount() const;

  /// Number of join (inner) nodes.
  int JoinCount() const;

  /// Height of the tree: 0 for a single leaf, else 1 + max child height.
  int Height() const;

  /// True iff every join has at least one leaf as its right child, i.e.
  /// the tree is left-deep (the Selinger search space).
  bool IsLeftDeep() const;

  /// Relabels every leaf's relation index through `new_to_old`
  /// (leaf.relation = new_to_old[leaf.relation]) and rebuilds the interior
  /// `relations` sets. DPccp uses this to translate a plan computed in
  /// BFS-label space back to the user's numbering.
  void RelabelLeaves(const std::vector<int>& new_to_old);

 private:
  JoinTree() = default;

  /// Recursive reconstruction helper; returns the index of the subtree
  /// root for the entry at `ref`, or an error.
  Result<int> Build(const PlanTable& table, PlanRef ref);

  std::vector<JoinTreeNode> nodes_;
};

}  // namespace joinopt

#endif  // JOINOPT_PLAN_JOIN_TREE_H_
