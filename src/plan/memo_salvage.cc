#include "plan/memo_salvage.h"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <utility>
#include <vector>

#include "cost/saturation.h"

namespace joinopt {

namespace {

/// One fragment of the interrupted memo, or one component of the greedy
/// composition: a set with the cost/cardinality of its best table plan
/// and the ref of that plan (composition write-backs record child REFS).
struct Fragment {
  NodeSet set;
  double cost = 0.0;
  double cardinality = 0.0;
  PlanRef ref = kInvalidPlanRef;
};

/// Cover preference: largest fragment first (it embodies the most DP
/// work), cheapest on ties, then by mask for cross-platform determinism.
bool CoverOrder(const Fragment& a, const Fragment& b) {
  if (a.set.count() != b.set.count()) {
    return a.set.count() > b.set.count();
  }
  if (a.cost != b.cost) {
    return a.cost < b.cost;
  }
  return a.set.mask() < b.set.mask();
}

}  // namespace

std::string DegradationReport::ToString() const {
  if (!best_effort) {
    return "exact (no degradation)";
  }
  char buffer[256];
  std::snprintf(buffer, sizeof(buffer),
                "best-effort: %s interrupted the run; salvaged %d fragment%s "
                "from %llu memo entries (coverage %.3f), cost %.6g",
                std::string(StatusCodeToString(trigger)).c_str(),
                fragments_used, fragments_used == 1 ? "" : "s",
                static_cast<unsigned long long>(memo_entries), memo_coverage,
                salvage_cost);
  std::string text = buffer;
  if (!trigger_message.empty()) {
    text += " [" + trigger_message + "]";
  }
  if (!policy.empty()) {
    text += " [policy: " + policy + "]";
  }
  return text;
}

Result<MemoSalvage::Outcome> MemoSalvage::Run(
    PlanTable& table, NodeSet all_relations, const CostModel& cost_model,
    const ConnectedFn& connected, const EstimateFn& estimate_set,
    bool allow_cross_products, const Status& trigger) {
  DegradationReport report;
  report.best_effort = true;
  report.trigger = trigger.code();
  report.trigger_message = trigger.message();
  report.memo_entries = table.populated_count();

  // The composition below writes into layers the enumeration had already
  // completed; lift the layer freeze first (every worker is long gone by
  // the time salvage runs).
  table.Thaw();

  // Every populated entry is a complete, costed plan for its set (the DPs
  // store decompositions bottom-up), so the memo is a pool of candidate
  // fragments.
  std::vector<Fragment> candidates;
  candidates.reserve(static_cast<size_t>(table.populated_count()));
  table.ForEach([&](NodeSet set, PlanRef ref) {
    if (set.IsSubsetOf(all_relations)) {
      candidates.push_back({set, table.cost(ref), table.cardinality(ref), ref});
    }
  });
  std::sort(candidates.begin(), candidates.end(), CoverOrder);

  // Greedy disjoint cover of all relations, largest fragments first. The
  // leaf seeds are always present (every orderer seeds all of them before
  // enumerating), so the cover completes whenever the memo is usable at
  // all.
  std::vector<Fragment> components;
  NodeSet covered;
  for (const Fragment& fragment : candidates) {
    if (fragment.set.Intersects(covered)) {
      continue;
    }
    components.push_back(fragment);
    covered |= fragment.set;
    if (covered == all_relations) {
      break;
    }
  }
  if (covered != all_relations || components.empty()) {
    return trigger;
  }
  report.fragments_used = static_cast<int>(components.size());
  const int n = all_relations.count();
  report.memo_coverage =
      n > 1 ? static_cast<double>(n - report.fragments_used) / (n - 1) : 1.0;

  // GOO-style composition: repeatedly merge the connected pair with the
  // smallest estimated output cardinality (falling back to the smallest
  // cross product only when allowed and no real join remains). Each merge
  // is priced in both operand orders and written back into the table so
  // the final tree reconstructs through the ordinary breadcrumb path.
  while (components.size() > 1) {
    size_t best_i = 0;
    size_t best_j = 0;
    double best_card = 0.0;
    bool best_joined = false;
    bool found = false;
    for (size_t i = 0; i < components.size(); ++i) {
      for (size_t j = i + 1; j < components.size(); ++j) {
        const bool joined = connected(components[i].set, components[j].set);
        if (!joined && !allow_cross_products) {
          continue;
        }
        const double card =
            estimate_set(components[i].set | components[j].set);
        // Real joins always beat cross products; among peers, smallest
        // output wins.
        if (!found || (joined && !best_joined) ||
            (joined == best_joined && card < best_card)) {
          best_i = i;
          best_j = j;
          best_card = card;
          best_joined = joined;
          found = true;
        }
      }
    }
    if (!found || (!best_joined && !allow_cross_products)) {
      // No mergeable pair: possible for hypergraphs whose complex edges
      // leave the remaining fragments unjoinable without a cross product.
      return trigger;
    }

    const Fragment left = components[best_i];
    const Fragment right = components[best_j];
    const NodeSet combined = left.set | right.set;
    bool created = false;
    const PlanRef ref =
        table.Intern(combined, created, [best_card] { return best_card; });
    if (JOINOPT_UNLIKELY(ref == kInvalidPlanRef)) {
      // Layer slab full (26-bit PlanRef offset space): the composition
      // cannot materialize further merges, so salvage fails back to the
      // triggering limit status.
      return trigger;
    }
    const double out_card = table.cardinality(ref);
    const double cost_lr =
        SaturateCost(left.cost + right.cost +
                     cost_model.JoinCost(left.cardinality, right.cardinality,
                                         out_card));
    const double cost_rl =
        SaturateCost(left.cost + right.cost +
                     cost_model.JoinCost(right.cardinality, left.cardinality,
                                         out_card));
    if (cost_lr <= cost_rl && cost_lr < table.cost(ref)) {
      table.SetPlan(ref, cost_lr, left.ref, right.ref,
                    cost_model.OperatorFor(left.cardinality, right.cardinality,
                                           out_card));
    } else if (cost_rl < cost_lr && cost_rl < table.cost(ref)) {
      table.SetPlan(ref, cost_rl, right.ref, left.ref,
                    cost_model.OperatorFor(right.cardinality, left.cardinality,
                                           out_card));
    }
    components[best_i] = {combined, table.cost(ref), table.cardinality(ref),
                          ref};
    components.erase(components.begin() + best_j);
  }

  Result<JoinTree> tree = JoinTree::FromPlanTable(table, all_relations);
  if (!tree.ok()) {
    return trigger;
  }
  report.salvage_cost = tree->cost();
  return Outcome{std::move(*tree), std::move(report)};
}

}  // namespace joinopt
