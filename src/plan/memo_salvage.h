#ifndef JOINOPT_PLAN_MEMO_SALVAGE_H_
#define JOINOPT_PLAN_MEMO_SALVAGE_H_

#include <functional>
#include <string>

#include "bitset/node_set.h"
#include "cost/cost_model.h"
#include "plan/join_tree.h"
#include "plan/plan_table.h"
#include "util/status.h"

namespace joinopt {

/// What happened when an optimization run could not finish exactly: the
/// limit that tripped, how much of the memo was usable, and what the
/// salvage pass had to do to still produce a plan. Attached to every
/// best-effort OptimizationResult (and empty/inert on exact results).
struct DegradationReport {
  /// True iff the plan was completed by MemoSalvage rather than by the
  /// DP running to the end.
  bool best_effort = false;
  /// The Status code of the interruption (kBudgetExceeded for budgets,
  /// deadlines, and injected deadline faults; kInternal for allocation
  /// failures and throwing trace sinks). kOk on exact results.
  StatusCode trigger = StatusCode::kOk;
  /// The interruption's human-readable explanation.
  std::string trigger_message;
  /// How much of the plan the memo already decided, in [0, 1]:
  /// (n - fragments_used) / (n - 1) for n relations. 1.0 means the memo
  /// held a full plan (the salvaged plan IS the DP's optimum); 0.0 means
  /// only the leaf seeds survived and the whole tree is greedy.
  double memo_coverage = 1.0;
  /// Number of disjoint memo fragments the greedy cover started from
  /// (1 when the memo already covered all relations).
  int fragments_used = 0;
  /// Populated memo entries at the moment of interruption.
  uint64_t memo_entries = 0;
  /// Cost of the salvaged plan (equals the result's cost).
  double salvage_cost = 0.0;
  /// The degradation-policy trail that led here (empty when the orderer
  /// was invoked directly rather than through a policy).
  std::string policy;

  /// One-line rendering for logs / the CLI's stderr report.
  std::string ToString() const;
};

/// Completes a full plan from a partially filled DP memo.
///
/// Every populated PlanTable entry is a valid, costed plan for its set
/// (the DPs build bottom-up and only ever store complete decompositions),
/// so an interrupted memo is a forest of optimal-for-their-set fragments.
/// Salvage picks a disjoint cover of all relations preferring the largest
/// (then cheapest) fragments, then composes them GOO-style: repeatedly
/// join the connected fragment pair with the smallest estimated output
/// cardinality, writing each merge back into the table so the final tree
/// reconstructs through the ordinary FromPlanTable path.
///
/// The table is mutated (merge entries are added); the caller's run is
/// over at this point, so that is safe — and intentional, because the
/// decomposition breadcrumbs must live in the table for reconstruction.
class MemoSalvage {
 public:
  /// True iff joining the two sets is a real join (some edge crosses the
  /// cut). Salvage never introduces a cross product unless
  /// `allow_cross_products` is set and no connected pair remains.
  using ConnectedFn = std::function<bool(NodeSet, NodeSet)>;
  /// The CANONICAL per-set cardinality estimate (the same fixed-order
  /// product the DP used — CardinalityEstimator::EstimateSet for query
  /// graphs, the lifted product x SelectivityWithin for hypergraphs), so
  /// salvaged plans agree bit-for-bit with the memo and the validator
  /// even under saturation.
  using EstimateFn = std::function<double(NodeSet)>;

  struct Outcome {
    JoinTree plan;
    DegradationReport report;
  };

  /// Runs the salvage pass over `table` for `all_relations` (the work
  /// graph's full set, in the table's numbering). `trigger` is the limit
  /// Status that interrupted the DP; it is recorded in the report.
  ///
  /// Fails (with `trigger`'s code) when no plan can be completed: an
  /// empty cover (nothing usable in the memo) or, without
  /// `allow_cross_products`, no connected fragment pair left to merge
  /// (possible for hypergraphs whose root set is undecomposable).
  static Result<Outcome> Run(PlanTable& table, NodeSet all_relations,
                             const CostModel& cost_model,
                             const ConnectedFn& connected,
                             const EstimateFn& estimate_set,
                             bool allow_cross_products, const Status& trigger);
};

}  // namespace joinopt

#endif  // JOINOPT_PLAN_MEMO_SALVAGE_H_
