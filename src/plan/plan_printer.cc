#include "plan/plan_printer.h"

#include <sstream>

namespace joinopt {

namespace {

void AppendExpression(const JoinTree& tree,
                      const std::vector<std::string>& names, int index,
                      std::string* out) {
  const JoinTreeNode& node = tree.nodes()[index];
  if (node.IsLeaf()) {
    *out += names[node.relation];
    return;
  }
  *out += '(';
  AppendExpression(tree, names, node.left, out);
  *out += " ⋈ ";  // U+22C8 BOWTIE
  AppendExpression(tree, names, node.right, out);
  *out += ')';
}

void AppendExplain(const JoinTree& tree, const std::vector<std::string>& names,
                   int index, int depth, std::ostringstream* out) {
  const JoinTreeNode& node = tree.nodes()[index];
  for (int i = 0; i < depth; ++i) {
    *out << "  ";
  }
  if (node.IsLeaf()) {
    *out << "Scan " << names[node.relation] << "  [rows=" << node.cardinality
         << "]\n";
    return;
  }
  *out << JoinOperatorName(node.op) << "  [cost=" << node.cost
       << " rows=" << node.cardinality << "]\n";
  AppendExplain(tree, names, node.left, depth + 1, out);
  AppendExplain(tree, names, node.right, depth + 1, out);
}

std::vector<std::string> Names(const QueryGraph& graph) {
  std::vector<std::string> names;
  names.reserve(graph.relation_count());
  for (int i = 0; i < graph.relation_count(); ++i) {
    names.push_back(graph.name(i));
  }
  return names;
}

std::vector<std::string> Names(const Hypergraph& graph) {
  std::vector<std::string> names;
  names.reserve(graph.relation_count());
  for (int i = 0; i < graph.relation_count(); ++i) {
    names.push_back(graph.name(i));
  }
  return names;
}

}  // namespace

std::string PlanToExpression(const JoinTree& tree,
                             const std::vector<std::string>& names) {
  std::string out;
  AppendExpression(tree, names, tree.root_index(), &out);
  return out;
}

std::string PlanToExpression(const JoinTree& tree, const QueryGraph& graph) {
  return PlanToExpression(tree, Names(graph));
}

std::string PlanToExpression(const JoinTree& tree, const Hypergraph& graph) {
  return PlanToExpression(tree, Names(graph));
}

std::string PlanToExplainString(const JoinTree& tree,
                                const std::vector<std::string>& names) {
  std::ostringstream out;
  AppendExplain(tree, names, tree.root_index(), 0, &out);
  return out.str();
}

std::string PlanToExplainString(const JoinTree& tree,
                                const QueryGraph& graph) {
  return PlanToExplainString(tree, Names(graph));
}

std::string PlanToExplainString(const JoinTree& tree,
                                const Hypergraph& graph) {
  return PlanToExplainString(tree, Names(graph));
}

}  // namespace joinopt
