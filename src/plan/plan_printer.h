#ifndef JOINOPT_PLAN_PLAN_PRINTER_H_
#define JOINOPT_PLAN_PLAN_PRINTER_H_

#include <string>
#include <vector>

#include "graph/query_graph.h"
#include "hyper/hypergraph.h"
#include "plan/join_tree.h"

namespace joinopt {

/// Renders a join tree as a one-line expression using relation names, e.g.
/// "((R0 ⋈ R1) ⋈ (R2 ⋈ R3))". Deterministic, intended for tests and logs.
std::string PlanToExpression(const JoinTree& tree, const QueryGraph& graph);

/// Overloads for hypergraph plans (DPhyp output) and bare name tables.
std::string PlanToExpression(const JoinTree& tree, const Hypergraph& graph);
std::string PlanToExpression(const JoinTree& tree,
                             const std::vector<std::string>& names);

/// Renders a join tree as an indented multi-line explain string:
///
///   Join  [cost=1234.5 rows=42]
///     Join  [cost=200.0 rows=7]
///       Scan R0  [rows=1000]
///       Scan R1  [rows=500]
///     Scan R2  [rows=10]
std::string PlanToExplainString(const JoinTree& tree, const QueryGraph& graph);

/// Overloads as for PlanToExpression.
std::string PlanToExplainString(const JoinTree& tree, const Hypergraph& graph);
std::string PlanToExplainString(const JoinTree& tree,
                                const std::vector<std::string>& names);

}  // namespace joinopt

#endif  // JOINOPT_PLAN_PLAN_PRINTER_H_
