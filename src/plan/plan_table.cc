#include "plan/plan_table.h"

#include "util/macros.h"

namespace joinopt {

PlanTable::PlanTable(int relation_count, int dense_limit) {
  JOINOPT_CHECK(relation_count >= 0 && relation_count <= kMaxRelations);
  if (relation_count <= dense_limit && relation_count < 63) {
    dense_.resize(uint64_t{1} << relation_count);
  } else {
    // Sparse: reserve for the common (chain-like) case; rehashing is fine.
    sparse_.reserve(1024);
  }
}

const PlanEntry* PlanTable::Find(NodeSet s) const {
  if (!dense_.empty()) {
    JOINOPT_DCHECK(s.mask() < dense_.size());
    const PlanEntry& entry = dense_[s.mask()];
    return entry.has_plan() ? &entry : nullptr;
  }
  const auto it = sparse_.find(s);
  if (it == sparse_.end() || !it->second.has_plan()) {
    return nullptr;
  }
  return &it->second;
}

PlanEntry& PlanTable::GetOrCreate(NodeSet s) {
  if (!dense_.empty()) {
    JOINOPT_DCHECK(s.mask() < dense_.size());
    return dense_[s.mask()];
  }
  const auto [it, inserted] = sparse_.try_emplace(s);
  if (inserted) {
    // Insertion may rehash; outstanding entry pointers are void per the
    // stability rule, and ConstRef's debug check keys off this counter.
    ++generation_;
  }
  return it->second;
}

void PlanTable::ForEach(
    const std::function<void(NodeSet, const PlanEntry&)>& fn) const {
  if (!dense_.empty()) {
    for (uint64_t mask = 0; mask < dense_.size(); ++mask) {
      if (dense_[mask].has_plan()) {
        fn(NodeSet::FromMask(mask), dense_[mask]);
      }
    }
    return;
  }
  for (const auto& [set, entry] : sparse_) {
    if (entry.has_plan()) {
      fn(set, entry);
    }
  }
}

}  // namespace joinopt
