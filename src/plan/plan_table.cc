#include "plan/plan_table.h"

#include <algorithm>

#include "util/macros.h"

namespace joinopt {
namespace {

/// Rounds `requested` down to a power of two in [1, 64].
int ClampShardCount(int requested) {
  int shards = 1;
  while (shards * 2 <= requested && shards < 64) {
    shards *= 2;
  }
  return shards;
}

}  // namespace

PlanTable::PlanTable(int relation_count, int dense_limit,
                     uint64_t memo_entry_budget, int sparse_shards) {
  JOINOPT_CHECK(relation_count >= 0 && relation_count <= kMaxRelations);
  const bool dense_fits_budget =
      memo_entry_budget == 0 ||
      (relation_count < 63 &&
       (uint64_t{1} << relation_count) <= memo_entry_budget);
  if (relation_count <= dense_limit && relation_count < 63 &&
      dense_fits_budget) {
    dense_.resize(uint64_t{1} << relation_count);
  } else {
    // Sparse: reserve for the common (chain-like) case; rehashing is fine.
    sparse_.resize(ClampShardCount(sparse_shards));
    for (SparseShard& shard : sparse_) {
      shard.reserve(1024 / sparse_.size());
    }
  }
}

const PlanEntry* PlanTable::Find(NodeSet s) const {
  if (!dense_.empty()) {
    JOINOPT_DCHECK(s.mask() < dense_.size());
    const PlanEntry& entry = dense_[s.mask()];
    return entry.has_plan() ? &entry : nullptr;
  }
  const SparseShard& shard = ShardFor(s);
  const auto it = shard.find(s);
  if (it == shard.end() || !it->second.has_plan()) {
    return nullptr;
  }
  return &it->second;
}

PlanEntry& PlanTable::GetOrCreate(NodeSet s) {
  if (!dense_.empty()) {
    JOINOPT_DCHECK(s.mask() < dense_.size());
    return dense_[s.mask()];
  }
  const auto [it, inserted] = ShardFor(s).try_emplace(s);
  if (inserted) {
    // Insertion may rehash; outstanding entry pointers are void per the
    // stability rule, and ConstRef's debug check keys off this counter.
    ++generation_;
  }
  return it->second;
}

bool PlanTable::MergeLayer(
    std::vector<LayerCandidate>& candidates,
    const std::function<bool(const LayerCandidate& winner,
                             bool newly_populated)>& gate) {
  // Total order: set, then cost, then lexicographic (left, right). The
  // first candidate of each set's run is its deterministic winner
  // regardless of how workers partitioned the layer.
  std::sort(candidates.begin(), candidates.end(),
            [](const LayerCandidate& a, const LayerCandidate& b) {
              if (a.set.mask() != b.set.mask()) {
                return a.set.mask() < b.set.mask();
              }
              if (a.entry.cost != b.entry.cost) {
                return a.entry.cost < b.entry.cost;
              }
              if (a.entry.left.mask() != b.entry.left.mask()) {
                return a.entry.left.mask() < b.entry.left.mask();
              }
              return a.entry.right.mask() < b.entry.right.mask();
            });
  NodeSet last_set;
  bool have_last = false;
  for (const LayerCandidate& candidate : candidates) {
    if (have_last && candidate.set == last_set) {
      continue;  // A worse candidate for a set already merged.
    }
    last_set = candidate.set;
    have_last = true;
    PlanEntry& entry = GetOrCreate(candidate.set);
    const bool newly_populated = !entry.has_plan();
    if (candidate.entry.cost < entry.cost) {
      entry = candidate.entry;
      if (newly_populated) {
        NotePopulated();
      }
    }
    if (!gate(candidate, newly_populated)) {
      return false;
    }
  }
  return true;
}

void PlanTable::ForEach(
    const std::function<void(NodeSet, const PlanEntry&)>& fn) const {
  if (!dense_.empty()) {
    for (uint64_t mask = 0; mask < dense_.size(); ++mask) {
      if (dense_[mask].has_plan()) {
        fn(NodeSet::FromMask(mask), dense_[mask]);
      }
    }
    return;
  }
  for (const SparseShard& shard : sparse_) {
    for (const auto& [set, entry] : shard) {
      if (entry.has_plan()) {
        fn(set, entry);
      }
    }
  }
}

}  // namespace joinopt
