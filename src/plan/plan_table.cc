#include "plan/plan_table.h"

#include "util/macros.h"

namespace joinopt {

PlanTable::PlanTable(int relation_count, int dense_limit,
                     uint64_t memo_entry_budget)
    : relation_count_(relation_count) {
  JOINOPT_CHECK(relation_count >= 0 && relation_count <= kMaxRelations);
  layers_.resize(static_cast<size_t>(relation_count));
  const bool dense_fits_budget =
      memo_entry_budget == 0 ||
      (relation_count < 63 &&
       (uint64_t{1} << relation_count) <= memo_entry_budget);
  if (relation_count <= dense_limit && relation_count < 63 &&
      dense_fits_budget) {
    dense_.assign(uint64_t{1} << relation_count, kInvalidPlanRef);
  }
}

PlanRef PlanTable::SparseFind(NodeSet s) const {
  const int count = s.count();
  if (count < 1 || count > static_cast<int>(layers_.size())) {
    return kInvalidPlanRef;
  }
  const Layer& layer = layers_[count - 1];
  if (layer.shards.empty()) {
    return kInvalidPlanRef;
  }
  const SparseShard& shard =
      layer.shards[(NodeSetHash{}(s) >> 58) & (layer.shards.size() - 1)];
  const auto it = shard.find(s);
  return it == shard.end() ? kInvalidPlanRef : it->second;
}

int PlanTable::AdaptiveShardCount(int layer) const {
  // The layer below is the best available predictor of this layer's
  // population (leaf count for layer 2; chains keep layers flat, cliques
  // grow them binomially — either way the previous layer tracks scale).
  const uint64_t below = layer >= 2
                             ? layers_[layer - 2].sets.size()
                             : static_cast<uint64_t>(relation_count_);
  int shards = 1;
  while (shards < 64 &&
         static_cast<uint64_t>(shards) * 2 * 4096 <= below) {
    shards *= 2;
  }
  return shards;
}

PlanRef* PlanTable::IndexSlot(NodeSet s) {
  if (!dense_.empty()) {
    JOINOPT_DCHECK(s.mask() < dense_.size());
    return &dense_[s.mask()];
  }
  const int count = s.count();
  JOINOPT_DCHECK(count >= 1 && count <= static_cast<int>(layers_.size()));
  Layer& layer = layers_[count - 1];
  if (JOINOPT_UNLIKELY(layer.shards.empty())) {
    // First insert into this layer: size the index from the layer below.
    const int shards = AdaptiveShardCount(count);
    layer.shards.resize(static_cast<size_t>(shards));
    const uint64_t below = count >= 2
                               ? layers_[count - 2].sets.size()
                               : static_cast<uint64_t>(relation_count_);
    for (SparseShard& shard : layer.shards) {
      shard.reserve(below / shards + 16);
    }
  }
  SparseShard& shard =
      layer.shards[(NodeSetHash{}(s) >> 58) & (layer.shards.size() - 1)];
  // The mapped PlanRef lives in a map node: stable across rehash, so the
  // caller may Append (which never touches this layer's index) and then
  // store through the returned pointer.
  return &shard.try_emplace(s, kInvalidPlanRef).first->second;
}

PlanRef PlanTable::Append(NodeSet s, double cost, double cardinality,
                          PlanRef left, PlanRef right, JoinOperator op) {
  const int count = s.count();
  JOINOPT_DCHECK(count >= 1 && count <= static_cast<int>(layers_.size()));
  JOINOPT_DCHECK((frozen_mask_ & (uint64_t{1} << (count - 1))) == 0);
  Layer& layer = layers_[count - 1];
  const uint32_t offset = static_cast<uint32_t>(layer.sets.size());
  if (JOINOPT_UNLIKELY(offset >= layer_capacity_)) {
    // The 26-bit offset field is exhausted (or the test cap was hit).
    // Refuse the insert instead of wrapping the packed layer|offset
    // encoding into an aliased ref; callers surface kBudgetExceeded.
    return kInvalidPlanRef;
  }
  layer.sets.push_back(s);
  layer.costs.push_back(cost);
  layer.cards.push_back(cardinality);
  layer.lefts.push_back(left);
  layer.rights.push_back(right);
  layer.ops.push_back(op);
  ++populated_;
  return MakePlanRef(count, offset);
}

PlanRef PlanTable::Register(NodeSet s, double cost, double cardinality,
                            PlanRef left, PlanRef right, JoinOperator op) {
  PlanRef* slot = IndexSlot(s);
  JOINOPT_DCHECK(*slot == kInvalidPlanRef);
  const PlanRef ref = Append(s, cost, cardinality, left, right, op);
  if (JOINOPT_UNLIKELY(ref == kInvalidPlanRef)) {
    return kInvalidPlanRef;  // Layer full; index slot stays vacant.
  }
  *slot = ref;
  return ref;
}

}  // namespace joinopt
