#ifndef JOINOPT_PLAN_PLAN_TABLE_H_
#define JOINOPT_PLAN_PLAN_TABLE_H_

#include <cstdint>
#include <functional>
#include <limits>
#include <unordered_map>
#include <vector>

#include "bitset/node_set.h"
#include "cost/cost_model.h"
#include "util/macros.h"

namespace joinopt {

/// One memo entry of the dynamic-programming table: the best plan found so
/// far for a set of relations, stored as its decomposition into the two
/// child sets (empty for base relations). The full join tree is
/// reconstructed from these breadcrumbs once the DP finishes.
struct PlanEntry {
  /// Best-known children; both empty for a leaf (single relation).
  NodeSet left;
  NodeSet right;
  /// Total cost of the best plan (sum of join costs in its subtree).
  double cost = std::numeric_limits<double>::infinity();
  /// Estimated output cardinality of the set (plan-independent under the
  /// independence model).
  double cardinality = 0.0;
  /// Physical operator chosen by the cost model for the best plan's root
  /// join (kUnspecified for leaves and logical cost models).
  JoinOperator op = JoinOperator::kUnspecified;

  /// True once any plan has been registered for the set.
  bool has_plan() const { return cost < std::numeric_limits<double>::infinity(); }
  /// True iff the entry is a base relation.
  bool IsLeaf() const { return left.empty() && right.empty() && has_plan(); }
};

/// The `BestPlan` table of the paper: a map from relation sets to their
/// best plan entry.
///
/// Two backends:
///  * dense — a flat vector indexed by the set's mask, used when
///    2^n entries fit the configured budget. O(1) access with no hashing;
///    this is what makes DPsub's tight loop fast on cliques.
///  * sparse — a hash map, used for larger n where the search space is
///    necessarily sparse (chains/stars at n > ~24).
///
/// The backend is an internal detail; the API is identical. Entry pointers
/// are stable in the dense backend and NOT stable across mutation in the
/// sparse backend — callers must re-Find after any mutation (the DP
/// algorithms in this library follow that rule). FindRef returns a handle
/// that enforces the rule in debug builds via the table's generation
/// counter; prefer it over Find in new code.
class PlanTable {
 public:
  /// Creates a table for sets over `relation_count` relations. The dense
  /// backend is chosen when relation_count <= dense_limit.
  explicit PlanTable(int relation_count, int dense_limit = 20);

  PlanTable(const PlanTable&) = delete;
  PlanTable& operator=(const PlanTable&) = delete;
  PlanTable(PlanTable&&) = default;
  PlanTable& operator=(PlanTable&&) = default;

  /// A debug-checked borrow of a table entry. In debug builds every
  /// dereference asserts that the table has not mutated (same generation)
  /// since the handle was taken — catching the stale-sparse-pointer bug
  /// class at the use site instead of as silent garbage. In NDEBUG builds
  /// this compiles down to a raw pointer.
  class ConstRef {
   public:
    ConstRef() = default;

    /// True when the lookup found a populated entry.
    explicit operator bool() const { return entry_ != nullptr; }

    const PlanEntry& operator*() const {
      AssertFresh();
      return *entry_;
    }
    const PlanEntry* operator->() const {
      AssertFresh();
      return entry_;
    }

   private:
    friend class PlanTable;
    ConstRef(const PlanEntry* entry, const PlanTable* table)
        : entry_(entry) {
#ifndef NDEBUG
      table_ = table;
      generation_ = table != nullptr ? table->generation() : 0;
#else
      (void)table;
#endif
    }

    void AssertFresh() const {
      JOINOPT_DCHECK(entry_ != nullptr);
#ifndef NDEBUG
      JOINOPT_DCHECK(table_ == nullptr ||
                     generation_ == table_->generation());
#endif
    }

    const PlanEntry* entry_ = nullptr;
#ifndef NDEBUG
    const PlanTable* table_ = nullptr;
    uint64_t generation_ = 0;
#endif
  };

  /// Returns the entry for `s` or nullptr when no plan is registered.
  const PlanEntry* Find(NodeSet s) const;

  /// Find, returning a debug-checked handle instead of a raw pointer.
  ConstRef FindRef(NodeSet s) const { return ConstRef(Find(s), this); }

  /// Mutable lookup; creates an empty (cost = inf) entry when absent.
  PlanEntry& GetOrCreate(NodeSet s);

  /// Number of sets with a registered plan.
  uint64_t populated_count() const { return populated_count_; }

  /// Marks `s` as populated (called by GetOrCreate callers when they first
  /// set a real cost). Internal bookkeeping for populated_count().
  void NotePopulated() { ++populated_count_; }

  /// True when the dense backend is active (exposed for tests/ablation).
  bool is_dense() const { return !dense_.empty(); }

  /// Mutation-generation counter backing the ConstRef staleness check.
  /// The sparse backend bumps it on every entry insertion (the mutations
  /// after which the documented pointer-stability rule voids outstanding
  /// entry pointers); the dense backend, whose entries never move, keeps
  /// it at zero.
  uint64_t generation() const { return generation_; }

  /// Invokes `fn(set, entry)` for every populated entry, in unspecified
  /// order.
  void ForEach(
      const std::function<void(NodeSet, const PlanEntry&)>& fn) const;

 private:
  // Dense backend: entry for mask m lives at dense_[m]. Empty when sparse.
  std::vector<PlanEntry> dense_;
  // Sparse backend.
  std::unordered_map<NodeSet, PlanEntry, NodeSetHash> sparse_;
  uint64_t populated_count_ = 0;
  uint64_t generation_ = 0;
};

}  // namespace joinopt

#endif  // JOINOPT_PLAN_PLAN_TABLE_H_
