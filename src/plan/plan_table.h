#ifndef JOINOPT_PLAN_PLAN_TABLE_H_
#define JOINOPT_PLAN_PLAN_TABLE_H_

#include <cstdint>
#include <functional>
#include <limits>
#include <unordered_map>
#include <vector>

#include "bitset/node_set.h"
#include "cost/cost_model.h"
#include "util/macros.h"

namespace joinopt {

/// One memo entry of the dynamic-programming table: the best plan found so
/// far for a set of relations, stored as its decomposition into the two
/// child sets (empty for base relations). The full join tree is
/// reconstructed from these breadcrumbs once the DP finishes.
struct PlanEntry {
  /// Best-known children; both empty for a leaf (single relation).
  NodeSet left;
  NodeSet right;
  /// Total cost of the best plan (sum of join costs in its subtree).
  double cost = std::numeric_limits<double>::infinity();
  /// Estimated output cardinality of the set (plan-independent under the
  /// independence model).
  double cardinality = 0.0;
  /// Physical operator chosen by the cost model for the best plan's root
  /// join (kUnspecified for leaves and logical cost models).
  JoinOperator op = JoinOperator::kUnspecified;

  /// True once any plan has been registered for the set.
  bool has_plan() const { return cost < std::numeric_limits<double>::infinity(); }
  /// True iff the entry is a base relation.
  bool IsLeaf() const { return left.empty() && right.empty() && has_plan(); }
};

/// The `BestPlan` table of the paper: a map from relation sets to their
/// best plan entry.
///
/// Two backends:
///  * dense — a flat vector indexed by the set's mask, used when
///    2^n entries fit the configured budget. O(1) access with no hashing;
///    this is what makes DPsub's tight loop fast on cliques.
///  * sparse — a hash map, used for larger n where the search space is
///    necessarily sparse (chains/stars at n > ~24). Optionally sharded
///    (striped by NodeSetHash) so the parallel DPs' layer-barrier merge
///    writes touch one shard at a time while worker reads of lower layers
///    never contend on a single map's buckets.
///
/// The backend is an internal detail; the API is identical. Entry pointers
/// are stable in the dense backend and NOT stable across mutation in the
/// sparse backend — callers must re-Find after any mutation (the DP
/// algorithms in this library follow that rule). FindRef returns a handle
/// that enforces the rule in debug builds via the table's generation
/// counter; prefer it over Find in new code.
///
/// Thread-safety: const lookups (Find/FindRef/ForEach) may run
/// concurrently from many threads as long as no mutation is in flight.
/// The parallel DPs rely on exactly that window — workers read the
/// finished lower layers while all writes are deferred to the
/// single-threaded MergeLayer barrier.
class PlanTable {
 public:
  /// Creates a table for sets over `relation_count` relations. The dense
  /// backend is chosen when relation_count <= dense_limit AND its 2^n
  /// preallocation fits `memo_entry_budget` (0 = unlimited) — a budget
  /// smaller than 2^n falls back to sparse so the budget contract is
  /// backend-independent. `sparse_shards` stripes the sparse backend;
  /// it is rounded down to a power of two in [1, 64] and is irrelevant
  /// for the dense backend.
  explicit PlanTable(int relation_count, int dense_limit = 20,
                     uint64_t memo_entry_budget = 0, int sparse_shards = 1);

  PlanTable(const PlanTable&) = delete;
  PlanTable& operator=(const PlanTable&) = delete;
  PlanTable(PlanTable&&) = default;
  PlanTable& operator=(PlanTable&&) = default;

  /// A debug-checked borrow of a table entry. In debug builds every
  /// dereference asserts that the table has not mutated (same generation)
  /// since the handle was taken — catching the stale-sparse-pointer bug
  /// class at the use site instead of as silent garbage. In NDEBUG builds
  /// this compiles down to a raw pointer.
  class ConstRef {
   public:
    ConstRef() = default;

    /// True when the lookup found a populated entry.
    explicit operator bool() const { return entry_ != nullptr; }

    const PlanEntry& operator*() const {
      AssertFresh();
      return *entry_;
    }
    const PlanEntry* operator->() const {
      AssertFresh();
      return entry_;
    }

   private:
    friend class PlanTable;
    ConstRef(const PlanEntry* entry, const PlanTable* table)
        : entry_(entry) {
#ifndef NDEBUG
      table_ = table;
      generation_ = table != nullptr ? table->generation() : 0;
#else
      (void)table;
#endif
    }

    void AssertFresh() const {
      JOINOPT_DCHECK(entry_ != nullptr);
#ifndef NDEBUG
      JOINOPT_DCHECK(table_ == nullptr ||
                     generation_ == table_->generation());
#endif
    }

    const PlanEntry* entry_ = nullptr;
#ifndef NDEBUG
    const PlanTable* table_ = nullptr;
    uint64_t generation_ = 0;
#endif
  };

  /// Returns the entry for `s` or nullptr when no plan is registered.
  const PlanEntry* Find(NodeSet s) const;

  /// Find, returning a debug-checked handle instead of a raw pointer.
  ConstRef FindRef(NodeSet s) const { return ConstRef(Find(s), this); }

  /// Mutable lookup; creates an empty (cost = inf) entry when absent.
  PlanEntry& GetOrCreate(NodeSet s);

  /// Number of sets with a registered plan.
  uint64_t populated_count() const { return populated_count_; }

  /// Marks `s` as populated (called by GetOrCreate callers when they first
  /// set a real cost). Internal bookkeeping for populated_count().
  void NotePopulated() { ++populated_count_; }

  /// True when the dense backend is active (exposed for tests/ablation).
  bool is_dense() const { return !dense_.empty(); }

  /// Number of stripes of the sparse backend (1 when dense or unsharded).
  int sparse_shard_count() const {
    return sparse_.empty() ? 1 : static_cast<int>(sparse_.size());
  }

  /// One worker-proposed best plan for a set, produced during a parallel
  /// size layer and reconciled at the barrier by MergeLayer.
  struct LayerCandidate {
    NodeSet set;
    PlanEntry entry;
  };

  /// Barrier-merge of one parallel size layer. Candidates are reconciled
  /// deterministically: per set the winner is the candidate with the
  /// lowest cost, ties broken by lexicographic (left, right) masks, so
  /// the merged table is identical no matter how the layer's work was
  /// partitioned across threads. Winners are applied in ascending set
  /// order (the serial DPs' enumeration order); after each applied winner
  /// `gate(winner, newly_populated)` runs — the coordinator's hook for
  /// deadline ticks, memo-budget checks, and trace emission. A false
  /// return from the gate stops the merge immediately and MergeLayer
  /// returns false (the table keeps the winners applied so far, matching
  /// a serial run interrupted mid-layer).
  ///
  /// `candidates` is sorted in place. Must be called from a single thread
  /// with no concurrent readers in flight (the barrier guarantees both).
  bool MergeLayer(
      std::vector<LayerCandidate>& candidates,
      const std::function<bool(const LayerCandidate& winner,
                               bool newly_populated)>& gate);

  /// Mutation-generation counter backing the ConstRef staleness check.
  /// The sparse backend bumps it on every entry insertion (the mutations
  /// after which the documented pointer-stability rule voids outstanding
  /// entry pointers); the dense backend, whose entries never move, keeps
  /// it at zero.
  uint64_t generation() const { return generation_; }

  /// Invokes `fn(set, entry)` for every populated entry, in unspecified
  /// order.
  void ForEach(
      const std::function<void(NodeSet, const PlanEntry&)>& fn) const;

 private:
  using SparseShard = std::unordered_map<NodeSet, PlanEntry, NodeSetHash>;

  /// The stripe holding `s`. NodeSetHash is a Fibonacci multiply whose
  /// quality lives in the high bits, so the stripe index comes from the
  /// top of the hash, masked down to the power-of-two shard count.
  SparseShard& ShardFor(NodeSet s) {
    return sparse_[(NodeSetHash{}(s) >> 58) & (sparse_.size() - 1)];
  }
  const SparseShard& ShardFor(NodeSet s) const {
    return sparse_[(NodeSetHash{}(s) >> 58) & (sparse_.size() - 1)];
  }

  // Dense backend: entry for mask m lives at dense_[m]. Empty when sparse.
  std::vector<PlanEntry> dense_;
  // Sparse backend, striped by NodeSetHash. Empty when dense.
  std::vector<SparseShard> sparse_;
  uint64_t populated_count_ = 0;
  uint64_t generation_ = 0;
};

}  // namespace joinopt

#endif  // JOINOPT_PLAN_PLAN_TABLE_H_
