#ifndef JOINOPT_PLAN_PLAN_TABLE_H_
#define JOINOPT_PLAN_PLAN_TABLE_H_

#include <algorithm>
#include <cstdint>
#include <limits>
#include <unordered_map>
#include <utility>
#include <vector>

#include "bitset/node_set.h"
#include "cost/cost_model.h"
#include "util/macros.h"

namespace joinopt {

/// A packed 32-bit reference to one memo entry: 6 bits of size layer
/// (the entry set's popcount, biased by one) and 26 bits of offset into
/// that layer's slab. Entries never move once created, so a PlanRef is
/// stable for the lifetime of the table — the property that lets plan
/// breadcrumbs store child REFERENCES instead of child sets, and plan
/// reconstruction walk indices instead of re-hashing sets.
///
/// PlanRefs order layer-major (layer, then insertion order within the
/// layer). Layers are filled in ascending-set order by the layered DPs,
/// so the order is deterministic for a given enumeration regardless of
/// how a parallel layer's work was partitioned — which is what lets the
/// candidate tie-break below compare raw refs.
using PlanRef = uint32_t;

inline constexpr PlanRef kInvalidPlanRef = 0xFFFFFFFFu;
inline constexpr int kPlanRefOffsetBits = 26;
inline constexpr uint32_t kPlanRefOffsetMask =
    (uint32_t{1} << kPlanRefOffsetBits) - 1;

constexpr PlanRef MakePlanRef(int layer, uint32_t offset) {
  return (static_cast<uint32_t>(layer - 1) << kPlanRefOffsetBits) | offset;
}
constexpr int PlanRefLayer(PlanRef ref) {
  return static_cast<int>(ref >> kPlanRefOffsetBits) + 1;
}
constexpr uint32_t PlanRefOffset(PlanRef ref) {
  return ref & kPlanRefOffsetMask;
}

/// Strictly-better total order on plan candidates for one set: lowest
/// cost, then lexicographic (left, right) refs. Written branch-free (all
/// comparisons evaluated, combined with non-short-circuiting bit ops) so
/// the relax loops of MergeLayer and the parallel workers never pay a
/// mispredicted branch on the cost tie tail.
inline bool PlanCandidateBeats(double a_cost, PlanRef a_left, PlanRef a_right,
                               double b_cost, PlanRef b_left,
                               PlanRef b_right) {
  const bool cost_lt = a_cost < b_cost;
  const bool cost_eq = a_cost == b_cost;
  const bool left_lt = a_left < b_left;
  const bool left_eq = a_left == b_left;
  const bool right_lt = a_right < b_right;
  return cost_lt | (cost_eq & (left_lt | (left_eq & right_lt)));
}

/// The `BestPlan` table of the paper: a map from relation sets to their
/// best plan found so far, stored data-oriented.
///
/// Storage is layered struct-of-arrays: all entries of set size k live in
/// slab k as parallel columns (set, cost, cardinality, left/right child
/// refs, operator). The DPs touch one column pattern per loop — the
/// relax loop reads costs and cardinalities, reconstruction walks child
/// refs, salvage scans sets — so each loop streams contiguous memory
/// instead of striding over 56-byte AoS entries.
///
/// Two lookup indexes map sets to PlanRefs:
///  * dense — a flat vector of packed refs indexed by the set's mask,
///    used when the 2^n preallocation fits the configured budget. Four
///    bytes per slot (vs. a full inline entry before this layout), so
///    DPsub's per-mask probes touch 14x less index memory.
///  * sparse — per-layer hash shards for larger n. The shard count of a
///    layer is chosen ADAPTIVELY from the observed population of the
///    layer below it (one shard per ~4096 expected entries, a power of
///    two in [1, 64]) instead of a global constant, so chain-like runs
///    with tiny layers stay unsharded while clique-like layers spread
///    inserts across many small maps.
///
/// Every entry is populated at creation (Register/Intern assign its
/// cardinality immediately and the caller relaxes a finite cost right
/// after), so populated_count() is simply the number of entries and the
/// old GetOrCreate + NotePopulated two-step does not exist.
///
/// Thread-safety: the parallel DPs rely on the layer protocol — workers
/// read only completed (frozen) layers while all writes happen on the
/// coordinator at the MergeLayer barrier. FreezeLayer documents and (in
/// debug builds) enforces that a completed layer is never appended to;
/// Thaw lifts the freeze for MemoSalvage, which runs strictly after all
/// workers have stopped.
class PlanTable {
 public:
  /// Creates a table for sets over `relation_count` relations. The dense
  /// index is chosen when relation_count <= dense_limit AND its 2^n
  /// preallocation fits `memo_entry_budget` (0 = unlimited) — a budget
  /// smaller than 2^n falls back to sparse so the budget contract is
  /// backend-independent.
  explicit PlanTable(int relation_count, int dense_limit = 20,
                     uint64_t memo_entry_budget = 0);

  PlanTable(const PlanTable&) = delete;
  PlanTable& operator=(const PlanTable&) = delete;
  PlanTable(PlanTable&&) = default;
  PlanTable& operator=(PlanTable&&) = default;

  /// Returns the ref of the entry for `s`, or kInvalidPlanRef.
  PlanRef Find(NodeSet s) const {
    if (!dense_.empty()) {
      JOINOPT_DCHECK(s.mask() < dense_.size());
      return dense_[s.mask()];
    }
    return SparseFind(s);
  }

  // Column accessors. Refs must come from this table (DCHECK-bounded).
  NodeSet set(PlanRef ref) const { return Slab(ref).sets[PlanRefOffset(ref)]; }
  double cost(PlanRef ref) const {
    return Slab(ref).costs[PlanRefOffset(ref)];
  }
  double cardinality(PlanRef ref) const {
    return Slab(ref).cards[PlanRefOffset(ref)];
  }
  PlanRef left(PlanRef ref) const {
    return Slab(ref).lefts[PlanRefOffset(ref)];
  }
  PlanRef right(PlanRef ref) const {
    return Slab(ref).rights[PlanRefOffset(ref)];
  }
  JoinOperator op(PlanRef ref) const {
    return Slab(ref).ops[PlanRefOffset(ref)];
  }
  /// True iff the entry is a base relation (no children).
  bool IsLeaf(PlanRef ref) const { return left(ref) == kInvalidPlanRef; }

  /// Replaces the plan of `ref` (cost, children, operator). The
  /// cardinality is set-determined and fixed at creation.
  void SetPlan(PlanRef ref, double cost, PlanRef left, PlanRef right,
               JoinOperator op) {
    Layer& layer = MutableSlab(ref);
    const uint32_t offset = PlanRefOffset(ref);
    layer.costs[offset] = cost;
    layer.lefts[offset] = left;
    layer.rights[offset] = right;
    layer.ops[offset] = op;
  }

  /// Creates the entry for `s` with the given plan, counting it as
  /// populated. `s` must not be present yet. Returns kInvalidPlanRef —
  /// without inserting — when the layer slab is full (see
  /// layer_capacity()); callers convert that into a typed
  /// kBudgetExceeded, never a silent wrap of the packed encoding.
  PlanRef Register(NodeSet s, double cost, double cardinality, PlanRef left,
                   PlanRef right, JoinOperator op);

  /// Leaf registration: cost 0, no children.
  PlanRef RegisterLeaf(NodeSet s, double cardinality) {
    return Register(s, 0.0, cardinality, kInvalidPlanRef, kInvalidPlanRef,
                    JoinOperator::kUnspecified);
  }

  /// Get-or-create: returns the existing ref for `s`, or creates a fresh
  /// entry whose cardinality comes from `estimate()` (invoked only on
  /// creation — the estimate is canonical per set, so later reaches reuse
  /// the stored value) and whose cost starts at +inf for the caller to
  /// relax. `created` reports which case ran. When the layer slab is full
  /// the entry is NOT created: returns kInvalidPlanRef with
  /// created=false, leaving the index unchanged (the reserved-but-invalid
  /// sparse slot reads back as "absent" everywhere).
  template <class EstimateFn>
  PlanRef Intern(NodeSet s, bool& created, EstimateFn&& estimate) {
    PlanRef* slot = IndexSlot(s);
    if (*slot != kInvalidPlanRef) {
      created = false;
      return *slot;
    }
    const PlanRef ref =
        Append(s, kUnreachableCost, estimate(), kInvalidPlanRef,
               kInvalidPlanRef, JoinOperator::kUnspecified);
    if (JOINOPT_UNLIKELY(ref == kInvalidPlanRef)) {
      created = false;  // Layer full: no entry, index untouched.
      return kInvalidPlanRef;
    }
    created = true;
    // Sparse IndexSlot pins the shard slot itself, so `slot` stays valid
    // across the append; the dense vector never moves.
    *slot = ref;
    return ref;
  }

  /// Max entries a single size layer can hold: the 26-bit PlanRef offset
  /// space by default. SetLayerCapacityForTesting shrinks it so the
  /// overflow path is testable without 2^26 real inserts.
  uint32_t layer_capacity() const { return layer_capacity_; }
  void SetLayerCapacityForTesting(uint32_t capacity) {
    layer_capacity_ = capacity;
  }

  /// Number of entries (every entry holds a plan).
  uint64_t populated_count() const { return populated_; }

  /// True when the dense index is active (exposed for tests/ablation).
  bool is_dense() const { return !dense_.empty(); }

  /// Entries in the size-`layer` slab so far. Layer slabs double as the
  /// paper's "list of plans of equal size": the layered DPs iterate
  /// refs MakePlanRef(layer, 0..LayerSize(layer)) instead of keeping
  /// their own NodeSet lists.
  uint32_t LayerSize(int layer) const {
    JOINOPT_DCHECK(layer >= 1 && layer <= static_cast<int>(layers_.size()));
    return static_cast<uint32_t>(layers_[layer - 1].sets.size());
  }

  /// Raw column pointers for the size-`layer` slab, for the DP inner
  /// loops that stream one column over a whole layer (the 1.2e9-iteration
  /// pair sweep of DPsize on clique-16 lives here; the per-ref accessors
  /// above would re-resolve the slab on every element). Valid until the
  /// layer grows — callers iterate layers strictly below the one being
  /// built (frozen in the layered DPs), so the pointers are stable for
  /// the whole sweep.
  const NodeSet* LayerSets(int layer) const {
    return layers_[layer - 1].sets.data();
  }
  const double* LayerCosts(int layer) const {
    return layers_[layer - 1].costs.data();
  }
  const double* LayerCards(int layer) const {
    return layers_[layer - 1].cards.data();
  }

  /// Hash shards of the size-`layer` index (1 when dense or before the
  /// layer saw its first sparse insert). Exposed for tests.
  int sparse_shard_count(int layer) const {
    if (!dense_.empty() || layers_[layer - 1].shards.empty()) {
      return 1;
    }
    return static_cast<int>(layers_[layer - 1].shards.size());
  }

  /// One worker-proposed best plan for a set, produced during a parallel
  /// size layer and reconciled at the barrier by MergeLayer. Children
  /// are refs into the (frozen) lower layers.
  struct LayerCandidate {
    NodeSet set;
    double cost = 0.0;
    double cardinality = 0.0;
    PlanRef left = kInvalidPlanRef;
    PlanRef right = kInvalidPlanRef;
    JoinOperator op = JoinOperator::kUnspecified;
  };

  /// Barrier-merge of one parallel size layer. Candidates are reconciled
  /// deterministically: per set the winner is the candidate with the
  /// lowest cost, ties broken by lexicographic (left, right) refs, so
  /// the merged table is identical no matter how the layer's work was
  /// partitioned across threads. Winners are applied in ascending set
  /// order (the serial DPs' enumeration order); after each applied winner
  /// `gate(winner, newly_populated)` runs — the coordinator's hook for
  /// deadline ticks, memo-budget checks, and trace emission. A false
  /// return from the gate stops the merge immediately and MergeLayer
  /// returns false (the table keeps the winners applied so far, matching
  /// a serial run interrupted mid-layer).
  ///
  /// `candidates` is sorted in place; the gate is a template parameter so
  /// the per-winner call inlines instead of dispatching through a
  /// std::function. Must be called from a single thread with no
  /// concurrent readers in flight (the barrier guarantees both).
  template <class Gate>
  bool MergeLayer(std::vector<LayerCandidate>& candidates, Gate&& gate) {
    std::sort(candidates.begin(), candidates.end(),
              [](const LayerCandidate& a, const LayerCandidate& b) {
                if (a.set.mask() != b.set.mask()) {
                  return a.set.mask() < b.set.mask();
                }
                return PlanCandidateBeats(a.cost, a.left, a.right, b.cost,
                                          b.left, b.right);
              });
    uint64_t last_mask = 0;
    bool have_last = false;
    for (const LayerCandidate& candidate : candidates) {
      if (have_last && candidate.set.mask() == last_mask) {
        continue;  // A worse candidate for a set already merged.
      }
      last_mask = candidate.set.mask();
      have_last = true;
      bool created = false;
      const PlanRef ref =
          Intern(candidate.set, created,
                 [&candidate] { return candidate.cardinality; });
      if (JOINOPT_UNLIKELY(ref == kInvalidPlanRef)) {
        // Layer slab full (26-bit PlanRef offset space). Stop like a
        // gate-tripped merge; the caller distinguishes overflow from a
        // gate stop by the governor's exhausted() state.
        return false;
      }
      if (candidate.cost < cost(ref)) {
        SetPlan(ref, candidate.cost, candidate.left, candidate.right,
                candidate.op);
      }
      if (!gate(candidate, created)) {
        return false;
      }
    }
    return true;
  }

  /// Invokes `fn(set, ref)` for every entry, ascending by layer and
  /// insertion order within a layer. Templated: the per-entry call
  /// inlines at the call site.
  template <class Fn>
  void ForEach(Fn&& fn) const {
    for (size_t layer = 0; layer < layers_.size(); ++layer) {
      const Layer& slab = layers_[layer];
      for (uint32_t offset = 0; offset < slab.sets.size(); ++offset) {
        fn(slab.sets[offset],
           MakePlanRef(static_cast<int>(layer) + 1, offset));
      }
    }
  }

  /// Declares the size-`layer` slab complete: no further entries may be
  /// created in it (debug-checked in Register/Intern). The layered DPs
  /// freeze layer k-1 before enumerating layer k; a frozen slab's
  /// columns can be read from worker threads while the coordinator
  /// appends to HIGHER layers, because std::vector growth only touches
  /// the growing layer's own columns.
  void FreezeLayer(int layer) {
    JOINOPT_DCHECK(layer >= 1 && layer <= 64);
    frozen_mask_ |= uint64_t{1} << (layer - 1);
  }

  /// Lifts every layer freeze. MemoSalvage composes fragments into
  /// arbitrary layers after the enumeration stopped (workers long gone),
  /// which is the one legitimate post-freeze writer.
  void Thaw() { frozen_mask_ = 0; }

 private:
  /// Cost of a freshly interned, not-yet-relaxed entry. All real costs
  /// are saturated BELOW +inf (cost/saturation.h), so the first relax
  /// always lands and every entry observable through Find has a plan.
  static constexpr double kUnreachableCost =
      std::numeric_limits<double>::infinity();

  using SparseShard = std::unordered_map<NodeSet, PlanRef, NodeSetHash>;

  /// One size layer's slab: parallel columns plus its sparse index
  /// stripes (empty vector when the table is dense or the layer has not
  /// seen an insert yet).
  struct Layer {
    std::vector<NodeSet> sets;
    std::vector<double> costs;
    std::vector<double> cards;
    std::vector<PlanRef> lefts;
    std::vector<PlanRef> rights;
    std::vector<JoinOperator> ops;
    std::vector<SparseShard> shards;
  };

  const Layer& Slab(PlanRef ref) const {
    JOINOPT_DCHECK(ref != kInvalidPlanRef);
    JOINOPT_DCHECK(PlanRefLayer(ref) <= static_cast<int>(layers_.size()));
    JOINOPT_DCHECK(PlanRefOffset(ref) <
                   layers_[PlanRefLayer(ref) - 1].sets.size());
    return layers_[PlanRefLayer(ref) - 1];
  }
  Layer& MutableSlab(PlanRef ref) {
    return const_cast<Layer&>(
        static_cast<const PlanTable*>(this)->Slab(ref));
  }

  PlanRef SparseFind(NodeSet s) const;

  /// The index slot for `s`: the dense cell, or the (possibly fresh)
  /// shard slot of s's layer. The returned pointer stays valid until the
  /// next index mutation for the same layer.
  PlanRef* IndexSlot(NodeSet s);

  /// Appends a fully-formed entry to s's layer slab and counts it.
  PlanRef Append(NodeSet s, double cost, double cardinality, PlanRef left,
                 PlanRef right, JoinOperator op);

  /// Shard count for a sparse layer index, sized from the observed
  /// population of the layer below (~4096 entries per shard, a power of
  /// two in [1, 64]).
  int AdaptiveShardCount(int layer) const;

  int relation_count_ = 0;
  // Layer slabs; layers_[k-1] holds the size-k sets. Sized once at
  // construction (one Layer per possible size), so slab addresses are
  // stable.
  std::vector<Layer> layers_;
  // Dense index: packed ref for mask m at dense_[m]. Empty when sparse.
  std::vector<PlanRef> dense_;
  uint64_t populated_ = 0;
  // Bit k-1 set = layer k frozen. Maintained in all builds (two
  // instructions per layer transition), enforced via DCHECK.
  uint64_t frozen_mask_ = 0;
  // Per-layer entry cap; kPlanRefOffsetMask except under test.
  uint32_t layer_capacity_ = kPlanRefOffsetMask;
};

}  // namespace joinopt

#endif  // JOINOPT_PLAN_PLAN_TABLE_H_
