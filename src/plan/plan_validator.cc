#include "plan/plan_validator.h"

#include <cmath>
#include <string>

#include "cost/cardinality.h"
#include "cost/saturation.h"

namespace joinopt {

namespace {

bool Close(double actual, double expected, double rel_tol) {
  const double diff = std::fabs(actual - expected);
  const double scale = std::fmax(std::fabs(actual), std::fabs(expected));
  return diff <= rel_tol * std::fmax(scale, 1.0);
}

}  // namespace

Status ValidatePlan(const JoinTree& tree, const QueryGraph& graph,
                    const CostModel& cost_model,
                    const PlanValidationOptions& options) {
  if (tree.nodes().empty()) {
    return Status::InvalidArgument("empty join tree");
  }
  const CardinalityEstimator estimator(graph);

  NodeSet seen_leaves;
  for (size_t i = 0; i < tree.nodes().size(); ++i) {
    const JoinTreeNode& node = tree.nodes()[i];
    const std::string where = " (node " + std::to_string(i) + ")";

    if (node.IsLeaf()) {
      if (node.relation < 0 || node.relation >= graph.relation_count()) {
        return Status::Internal("leaf relation index out of range" + where);
      }
      if (node.relations != NodeSet::Singleton(node.relation)) {
        return Status::Internal("leaf set does not match its relation" + where);
      }
      if (seen_leaves.Contains(node.relation)) {
        return Status::Internal("relation appears in two leaves" + where);
      }
      seen_leaves.Add(node.relation);
      if (node.cost != 0.0) {
        return Status::Internal("leaf has non-zero cost" + where);
      }
      if (!Close(node.cardinality, graph.cardinality(node.relation),
                 options.relative_tolerance)) {
        return Status::Internal("leaf cardinality mismatch" + where);
      }
      continue;
    }

    // Interior (join) node.
    const int node_count = static_cast<int>(tree.nodes().size());
    if (node.left < 0 || node.left >= node_count || node.right < 0 ||
        node.right >= node_count) {
      return Status::Internal("child index out of range" + where);
    }
    const JoinTreeNode& left = tree.nodes()[node.left];
    const JoinTreeNode& right = tree.nodes()[node.right];
    if (left.relations.Intersects(right.relations)) {
      return Status::Internal("children overlap" + where);
    }
    if ((left.relations | right.relations) != node.relations) {
      return Status::Internal("children do not partition the parent" + where);
    }
    if (options.forbid_cross_products &&
        !graph.AreConnected(left.relations, right.relations)) {
      return Status::Internal("cross product: no edge between " +
                              left.relations.ToString() + " and " +
                              right.relations.ToString() + where);
    }

    // EstimateSet, not the incremental join formula: the optimizers
    // memoize the canonical per-set product, and under saturation the
    // incremental form is split-dependent (see CreateJoinTree).
    const double expected_card = estimator.EstimateSet(node.relations);
    if (!Close(node.cardinality, expected_card, options.relative_tolerance)) {
      return Status::Internal("cardinality mismatch" + where);
    }
    // Saturated exactly like the optimizers' combine step, so plans
    // built under ceiling-clamped arithmetic revalidate bit-for-bit.
    const double expected_cost = SaturateCost(
        left.cost + right.cost +
        cost_model.JoinCost(left.cardinality, right.cardinality,
                            node.cardinality));
    if (!Close(node.cost, expected_cost, options.relative_tolerance)) {
      return Status::Internal("cost mismatch" + where);
    }
  }

  if (seen_leaves != tree.relations()) {
    return Status::Internal("leaves do not cover the root's relation set");
  }
  return Status::OK();
}

}  // namespace joinopt
