#ifndef JOINOPT_PLAN_PLAN_VALIDATOR_H_
#define JOINOPT_PLAN_PLAN_VALIDATOR_H_

#include "cost/cost_model.h"
#include "graph/query_graph.h"
#include "plan/join_tree.h"
#include "util/status.h"

namespace joinopt {

/// Options for ValidatePlan.
struct PlanValidationOptions {
  /// When true, every join must have at least one query-graph edge between
  /// its two inputs (the "no cross products" invariant of the paper).
  bool forbid_cross_products = true;
  /// Relative tolerance when comparing recomputed cardinalities/costs
  /// against the values stored in the tree.
  double relative_tolerance = 1e-9;
};

/// Structural and semantic validation of a join tree against its query
/// graph and cost model. Checks:
///   * every leaf is a distinct base relation of the graph,
///   * child relation-sets are disjoint and union to the parent's set,
///   * the root covers exactly the requested relations,
///   * no join is a cross product (unless allowed),
///   * stored cardinalities match the independence-model estimate,
///   * stored costs match leaf-cost-0 + sum of JoinCost over the tree.
///
/// This is the oracle used by the test suite to cross-check every
/// optimizer's output.
Status ValidatePlan(const JoinTree& tree, const QueryGraph& graph,
                    const CostModel& cost_model,
                    const PlanValidationOptions& options = {});

}  // namespace joinopt

#endif  // JOINOPT_PLAN_PLAN_VALIDATOR_H_
