#include "serve/client.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>
#include <utility>

#include "serve/wire.h"
#include "util/stopwatch.h"

#ifndef _WIN32
#include <cerrno>
#include <poll.h>
#endif

namespace joinopt {
namespace serve {

WireClient::WireClient(WireClientConfig config)
    : config_(std::move(config)), rng_(config_.seed) {
  net::IgnoreSigpipe();
  config_.io_timeout_seconds = std::max(config_.io_timeout_seconds, 1e-3);
  config_.max_retries = std::max(config_.max_retries, 0);
  config_.retry_backoff_seconds = std::max(config_.retry_backoff_seconds, 0.0);
}

WireClient::~WireClient() { Disconnect(); }

void WireClient::Disconnect() {
  net::CloseQuiet(fd_);
  fd_ = -1;
}

Status WireClient::EnsureConnected(double deadline_seconds) {
  if (fd_ >= 0) {
    return Status::OK();
  }
  Result<int> fd = net::ConnectTcp(config_.server, deadline_seconds);
  if (!fd.ok()) {
    return fd.status();
  }
  fd_ = *fd;
  return Status::OK();
}

#ifndef _WIN32

Result<ServeResponse> WireClient::Exchange(const ServeRequest& request,
                                           double deadline_seconds) {
  Stopwatch elapsed;
  const auto remaining = [&]() {
    return std::max(deadline_seconds - elapsed.ElapsedSeconds(), 1e-3);
  };
  JOINOPT_RETURN_IF_ERROR(EnsureConnected(remaining()));
  // Deadline propagation: the server sees only the time this attempt
  // still has, not the original budget.
  ServeRequest wire_request = request;
  wire_request.deadline_seconds = remaining();
  wire_request.faults.reset();  // Chaos seams never cross the wire.
  const std::string frame =
      EncodeFrame(FrameType::kRequest, EncodeRequestPayload(wire_request));
  Status sent = net::SendAll(fd_, frame.data(), frame.size(), remaining());
  if (!sent.ok()) {
    Disconnect();
    return sent;
  }
  std::string inbuf;
  char buf[4096];
  for (;;) {
    FrameDecodeResult decoded = DecodeFrame(inbuf);
    if (decoded.outcome == FrameDecode::kCorrupt) {
      Disconnect();
      return Status::Unavailable("wire: corrupt response frame (" +
                                 decoded.detail + ")");
    }
    if (decoded.outcome == FrameDecode::kFrame) {
      inbuf.erase(0, decoded.consumed);
      if (decoded.frame.type != FrameType::kResponse) {
        Disconnect();
        return Status::Unavailable("wire: unexpected request frame");
      }
      Result<ServeResponse> response =
          DecodeResponsePayload(decoded.frame.payload);
      if (!response.ok()) {
        // A frame that passed its CRC but carries an unparseable
        // payload: a server bug or a tampering middlebox — either way
        // the transport failed to produce an answer.
        Disconnect();
        return Status::Unavailable("wire: bad response payload: " +
                                   response.status().message());
      }
      return response;
    }
    const double wait = deadline_seconds - elapsed.ElapsedSeconds();
    if (wait <= 0) {
      Disconnect();
      return Status::Unavailable("wire: response deadline exceeded");
    }
    // Milliseconds for poll(2), capped at a day: a huge io_timeout
    // would otherwise overflow the int conversion into a negative
    // (infinite) poll timeout.
    const int wait_ms =
        static_cast<int>(std::min(wait * 1000.0, 86'400'000.0)) + 1;
    const int revents = net::PollRetry(fd_, POLLIN, wait_ms);
    if (revents < 0) {
      Disconnect();
      return Status::Unavailable("wire: poll failed while receiving");
    }
    if (revents == 0) {
      Disconnect();
      return Status::Unavailable("wire: response deadline exceeded");
    }
    const int64_t n = net::ReadRetry(fd_, buf, sizeof(buf));
    if (n == 0) {
      Disconnect();
      return Status::Unavailable("wire: server closed the connection");
    }
    if (n < 0) {
      const int err = static_cast<int>(-n);
      if (err == EAGAIN || err == EWOULDBLOCK) {
        continue;
      }
      Disconnect();
      return Status::Unavailable("wire: read failed while receiving");
    }
    inbuf.append(buf, static_cast<size_t>(n));
  }
}

#else  // _WIN32

Result<ServeResponse> WireClient::Exchange(const ServeRequest&, double) {
  return Status::Unimplemented("wire client: not supported on this platform");
}

#endif  // _WIN32

Result<ServeResponse> WireClient::CallOnce(const ServeRequest& request,
                                           double deadline_seconds) {
  return Exchange(request, deadline_seconds > 0 ? deadline_seconds
                                                : config_.io_timeout_seconds);
}

ServeResponse WireClient::Call(const ServeRequest& request) {
  // The end-to-end budget: the request's own deadline when it has one,
  // else one io_timeout per attempt (tracked attempt-locally below).
  const double total_budget = request.deadline_seconds;
  Stopwatch elapsed;
  Status last_failure = Status::Unavailable("wire: no attempt made");
  for (int attempt = 0; attempt <= config_.max_retries; ++attempt) {
    if (attempt > 0) {
      // Seeded exponential backoff with jitter in [0.5, 1.0) of the
      // doubled base. The exponent is clamped so a huge max_retries
      // cannot shift past the 64-bit width (UB); past 2^62 the delay is
      // budget-capped anyway. The cap at half the remaining budget keeps
      // the sleep from eating the whole deadline: the attempt after it
      // always wakes with at least as much budget as it slept.
      double delay = config_.retry_backoff_seconds *
                     std::ldexp(1.0, std::min(attempt - 1, 62)) *
                     (0.5 + 0.5 * rng_.NextDouble());
      if (total_budget > 0) {
        const double left = total_budget - elapsed.ElapsedSeconds();
        if (left <= 0) {
          last_failure = Status::Unavailable(
              "wire: deadline budget exhausted before retry (last: " +
              last_failure.message() + ")");
          break;
        }
        delay = std::min(delay, left * 0.5);
      }
      if (delay > 0) {
        std::this_thread::sleep_for(std::chrono::duration<double>(delay));
      }
    }
    double attempt_deadline = config_.io_timeout_seconds;
    if (total_budget > 0) {
      // Clamp the attempt to the time the caller actually has left. A
      // non-positive remainder means the budget ran out pre-connect
      // (e.g. the backoff sleep overshot on a loaded box): fail typed
      // instead of re-encoding a zero/negative deadline_s on the wire.
      attempt_deadline = total_budget - elapsed.ElapsedSeconds();
      if (attempt_deadline <= 0) {
        last_failure = Status::Unavailable(
            "wire: deadline budget exhausted before attempt (last: " +
            last_failure.message() + ")");
        break;
      }
    }
    Result<ServeResponse> outcome = Exchange(request, attempt_deadline);
    if (outcome.ok()) {
      if (outcome->shed &&
          outcome->status.code() == StatusCode::kOverloaded &&
          attempt < config_.max_retries) {
        // A typed shed is the server asking for backoff — exactly what
        // the retry envelope provides.
        last_failure = outcome->status;
        continue;
      }
      return std::move(*outcome);
    }
    last_failure = outcome.status();
  }
  ServeResponse unavailable;
  unavailable.status =
      last_failure.code() == StatusCode::kOverloaded
          ? Status::Unavailable("wire: retries exhausted against overload (" +
                                last_failure.message() + ")")
          : last_failure.code() == StatusCode::kUnavailable
                ? last_failure
                : Status::Unavailable(last_failure.ToString());
  return unavailable;
}

}  // namespace serve
}  // namespace joinopt
