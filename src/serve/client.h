#ifndef JOINOPT_SERVE_CLIENT_H_
#define JOINOPT_SERVE_CLIENT_H_

/// Blocking wire-protocol client (DESIGN.md §11). One connection, one
/// request in flight, typed outcomes everywhere:
///
///   - Deadline propagation: the request's end-to-end deadline bounds
///     connect + send + receive across ALL retry attempts, and the
///     REMAINING time at each attempt is what travels in the request's
///     deadline_s field — the server never works on time the client has
///     already spent.
///   - Seeded exponential backoff + jitter retry on kOverloaded sheds
///     and transient transport failures (connect refused, I/O error,
///     corrupt response frame). Optimization is idempotent (pure
///     function + idempotent cache fill), so at-least-once resend after
///     a mid-exchange failure is safe.
///   - Every give-up is a typed kUnavailable ServeResponse (transport
///     never produced an answer) or the server's own final typed
///     response (it did, and said no). Call() never throws, never
///     aborts, never returns an untyped failure.

#include <cstdint>
#include <string>

#include "serve/service.h"
#include "util/net.h"
#include "util/random.h"
#include "util/status.h"

namespace joinopt {
namespace serve {

struct WireClientConfig {
  net::Endpoint server{"127.0.0.1", 0};
  /// Per-operation I/O bound (connect, send, whole-response receive)
  /// applied when the request carries no end-to-end deadline.
  double io_timeout_seconds = 5.0;
  /// Extra attempts after the first (so max_retries=3 means up to 4
  /// exchanges). 0 disables retry.
  int max_retries = 3;
  /// Base backoff before attempt k is base * 2^(k-1), jittered to
  /// [0.5, 1.0) of itself so synchronized clients spread out.
  double retry_backoff_seconds = 0.05;
  /// Jitter seed — deterministic for the chaos harness.
  uint64_t seed = 1;
};

class WireClient {
 public:
  explicit WireClient(WireClientConfig config);
  ~WireClient();

  WireClient(const WireClient&) = delete;
  WireClient& operator=(const WireClient&) = delete;

  /// One request/response exchange with the full retry envelope. The
  /// connection persists across calls; any failure tears it down and
  /// the next attempt reconnects.
  ServeResponse Call(const ServeRequest& request);

  /// A single attempt, no retry, no backoff — the chaos harness uses
  /// this to observe raw transport outcomes. `deadline_seconds` <= 0
  /// falls back to config.io_timeout_seconds.
  Result<ServeResponse> CallOnce(const ServeRequest& request,
                                 double deadline_seconds);

  /// Drops the persistent connection (next Call reconnects).
  void Disconnect();

  bool connected() const { return fd_ >= 0; }

 private:
  Status EnsureConnected(double deadline_seconds);
  /// Sends one request and reads one response on the live connection.
  Result<ServeResponse> Exchange(const ServeRequest& request,
                                 double deadline_seconds);

  WireClientConfig config_;
  int fd_ = -1;
  Random rng_;
};

}  // namespace serve
}  // namespace joinopt

#endif  // JOINOPT_SERVE_CLIENT_H_
