#include "serve/fingerprint.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <utility>

#include "util/macros.h"

namespace joinopt {
namespace serve {

namespace {

/// splitmix64 finalizer: the mixing step of the WL refinement. Full
/// avalanche, so one differing neighbor bucket flips the whole invariant.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

uint64_t Combine(uint64_t a, uint64_t b) { return Mix(a ^ Mix(b)); }

uint64_t Fnv1a64(std::string_view text) {
  uint64_t hash = 0xcbf29ce484222325ull;
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ull;
  }
  return hash;
}

/// Rounds of neighborhood refinement. Workload graphs stay small (<= 64
/// relations); eight rounds separate everything short of large regular
/// graphs, where the original-index tie-break keeps the result
/// deterministic anyway.
constexpr int kRefinementRounds = 8;

}  // namespace

int64_t QuantizeStat(double x) {
  // 8 * 1020 keeps 2^(q/8) comfortably inside the finite double range in
  // both directions.
  constexpr int64_t kMaxBucket = 8 * 1020;
  // Guard BEFORE llround: log2 of zero/negative is -inf/NaN and
  // std::llround of a non-finite is unspecified (FE_INVALID plus an
  // arbitrary value), which would let an unvalidated stat plant a
  // garbage bucket in a canonical fingerprint. Zero, negatives, and NaN
  // pin to the bottom bucket; +inf to the top — both dequantize to
  // finite positive representatives.
  if (JOINOPT_UNLIKELY(!(x > 0.0))) {
    return -kMaxBucket;
  }
  if (JOINOPT_UNLIKELY(std::isinf(x))) {
    return kMaxBucket;
  }
  // Denormals (log2 ≈ -1074) and 1e300-saturated stats (log2 ≈ +996.6)
  // are finite here; the clamp absorbs the former, the latter fits.
  const int64_t q = std::llround(std::log2(x) * 8.0);
  return std::clamp(q, -kMaxBucket, kMaxBucket);
}

double DequantizeStat(int64_t q) {
  return std::exp2(static_cast<double>(q) / 8.0);
}

Result<CanonicalQuery> CanonicalizeQuery(const QueryGraph& graph,
                                         std::string_view intent,
                                         std::string_view cost_model) {
  if (graph.relation_count() == 0) {
    return Status::InvalidArgument("query graph has no relations");
  }
  // The same gate the optimizer prologue applies: inf/NaN stats never
  // reach the quantizer (log2 of a non-positive is exactly the poison
  // this rejects).
  JOINOPT_RETURN_IF_ERROR(ValidateGraphStatistics(graph));

  const int n = graph.relation_count();
  std::vector<int64_t> card_bucket(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    card_bucket[i] = QuantizeStat(graph.cardinality(i));
  }
  std::vector<int64_t> sel_bucket;
  sel_bucket.reserve(graph.edges().size());
  for (const JoinEdge& edge : graph.edges()) {
    // A selectivity bucket is never positive (sel <= 1), so the
    // representative stays a valid selectivity in (0, 1].
    sel_bucket.push_back(QuantizeStat(edge.selectivity));
  }

  // WL-style invariant refinement over the quantized graph.
  std::vector<uint64_t> invariant(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    invariant[i] = Mix(static_cast<uint64_t>(card_bucket[i]));
  }
  std::vector<uint64_t> next(static_cast<size_t>(n));
  std::vector<uint64_t> incident;
  for (int round = 0; round < kRefinementRounds; ++round) {
    for (int i = 0; i < n; ++i) {
      incident.clear();
      for (size_t e = 0; e < graph.edges().size(); ++e) {
        const JoinEdge& edge = graph.edges()[e];
        const int other =
            edge.left == i ? edge.right : (edge.right == i ? edge.left : -1);
        if (other < 0) {
          continue;
        }
        incident.push_back(Combine(static_cast<uint64_t>(sel_bucket[e]),
                                   invariant[other]));
      }
      // Sorted: the multiset of incident signals, independent of edge
      // insertion order.
      std::sort(incident.begin(), incident.end());
      uint64_t h = invariant[i];
      for (const uint64_t signal : incident) {
        h = Combine(h, signal);
      }
      next[i] = h;
    }
    invariant.swap(next);
  }

  // Canonical order: by invariant, original index breaking the ties the
  // refinement could not.
  std::vector<int> order(static_cast<size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    if (invariant[a] != invariant[b]) {
      return invariant[a] < invariant[b];
    }
    return a < b;
  });
  std::vector<int> position(static_cast<size_t>(n));
  for (int c = 0; c < n; ++c) {
    position[order[c]] = c;
  }

  CanonicalQuery out;
  out.canonical_to_original = order;

  // Rebuild the graph in canonical numbering with bucket-representative
  // statistics. The builders re-validate every stat; a dequantized bucket
  // is always in range, so these cannot fail on validated input.
  for (int c = 0; c < n; ++c) {
    Result<int> added =
        out.graph.AddRelation(DequantizeStat(card_bucket[order[c]]));
    JOINOPT_RETURN_IF_ERROR(added.status());
  }
  struct CanonicalEdge {
    int u;
    int v;
    int64_t sel;
  };
  std::vector<CanonicalEdge> edges;
  edges.reserve(graph.edges().size());
  for (size_t e = 0; e < graph.edges().size(); ++e) {
    const JoinEdge& edge = graph.edges()[e];
    int u = position[edge.left];
    int v = position[edge.right];
    if (u > v) {
      std::swap(u, v);
    }
    edges.push_back({u, v, sel_bucket[e]});
  }
  std::sort(edges.begin(), edges.end(),
            [](const CanonicalEdge& a, const CanonicalEdge& b) {
              return a.u != b.u ? a.u < b.u : a.v < b.v;
            });
  for (const CanonicalEdge& edge : edges) {
    JOINOPT_RETURN_IF_ERROR(
        out.graph.AddEdge(edge.u, edge.v, DequantizeStat(edge.sel)));
  }

  // The textual key: everything that selects a plan, nothing that does
  // not. Buckets are written as integers so the text is exact.
  std::string key = "jfp1;i=";
  key += intent;
  key += ";m=";
  key += cost_model;
  key += ";n=" + std::to_string(n) + ";c=";
  for (int c = 0; c < n; ++c) {
    if (c > 0) {
      key += ',';
    }
    key += std::to_string(card_bucket[order[c]]);
  }
  key += ";e=";
  for (size_t e = 0; e < edges.size(); ++e) {
    if (e > 0) {
      key += ',';
    }
    key += std::to_string(edges[e].u) + '-' + std::to_string(edges[e].v) +
           ':' + std::to_string(edges[e].sel);
  }
  out.hash = Fnv1a64(key);
  out.key = std::move(key);
  return out;
}

uint64_t FingerprintHash(std::string_view key) { return Fnv1a64(key); }

}  // namespace serve
}  // namespace joinopt
