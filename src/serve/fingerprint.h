#ifndef JOINOPT_SERVE_FINGERPRINT_H_
#define JOINOPT_SERVE_FINGERPRINT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "graph/query_graph.h"
#include "util/status.h"

namespace joinopt {
namespace serve {

/// Statistics quantization for plan-cache fingerprints: log2 bucketed at
/// eighth-octave resolution (8 buckets per power of two, ~9% relative
/// width). Two catalogs whose estimates differ by less than a bucket
/// produce the SAME fingerprint — and, because the serving layer
/// optimizes the dequantized canonical graph rather than the raw request
/// graph, they also produce the same plan, cost, and OutcomeSignature.
/// That is what makes a cache hit bit-identical to a miss by
/// construction instead of by approximation. Total on all doubles: zero,
/// negative, and NaN inputs pin to the bottom bucket and +inf to the top
/// (callers validate via ValidateGraphStatistics first, but the
/// quantizer no longer trusts that), and the bucket is clamped so
/// DequantizeStat always returns a finite positive double — canonical
/// fingerprints never contain a non-finite-derived bucket.
int64_t QuantizeStat(double x);

/// The representative value of bucket `q`: 2^(q/8).
double DequantizeStat(int64_t q);

/// Buckets per power of two in QuantizeStat. Baked into the snapshot
/// header: a snapshot written under a different resolution keys its
/// entries by incompatible fingerprints and must be rejected wholesale.
constexpr uint32_t kQuantizeBucketsPerOctave = 8;

/// The 64-bit FNV-1a hash CanonicalizeQuery assigns to `key`. Exposed so
/// the snapshot loader can recompute the shard/index hash from the stored
/// key instead of trusting a persisted value.
uint64_t FingerprintHash(std::string_view key);

/// A request query reduced to its cacheable essence.
struct CanonicalQuery {
  /// The graph the service actually optimizes: relations renumbered into
  /// canonical order, every cardinality and selectivity replaced by its
  /// bucket representative. Relation names are dropped (they never affect
  /// plan choice).
  QueryGraph graph;
  /// Maps canonical index -> the request's original index. Exactly the
  /// `new_to_old` vector JoinTree::RelabelLeaves wants for translating a
  /// canonical-numbering plan back to the caller's numbering.
  std::vector<int> canonical_to_original;
  /// 64-bit FNV-1a hash of `key` — the cache's shard/index hash.
  uint64_t hash = 0;
  /// The full canonical text. Cache lookups compare this byte-for-byte
  /// after the hash matches, so a hash collision can never serve a plan
  /// for a different query.
  std::string key;
};

/// Canonicalizes a request graph for fingerprinting and optimization.
///
/// Nodes are renumbered by a Weisfeiler-Lehman-style invariant refinement
/// over (cardinality bucket, incident (selectivity bucket, neighbor)
/// multisets): two requests that present the same quantized query shape
/// under different relation numberings converge to the same canonical
/// graph whenever the refinement separates the nodes; truly automorphic
/// nodes are interchangeable, so any tie order yields the identical
/// canonical graph. Ties between nodes the refinement cannot separate
/// fall back to the original index — deterministic for a given request,
/// at worst a missed cache hit across differently-numbered twins.
///
/// `intent` names what will run (an orderer registry name or a policy
/// string) and `cost_model` the pricing model; both are baked into the
/// key because they change the plan. Resource limits (budget, deadline,
/// threads) are deliberately NOT part of the key: only exact,
/// first-intent results are ever cached, and an exact result does not
/// depend on the limits under which it was computed.
///
/// Fails with kDegenerateStatistics / kInvalidArgument exactly where the
/// optimizer prologue would, so a malformed request never reaches the
/// cache or the queue.
Result<CanonicalQuery> CanonicalizeQuery(const QueryGraph& graph,
                                         std::string_view intent,
                                         std::string_view cost_model);

}  // namespace serve
}  // namespace joinopt

#endif  // JOINOPT_SERVE_FINGERPRINT_H_
