#include "serve/plan_cache.h"

#include <algorithm>
#include <utility>

#include "util/macros.h"

namespace joinopt {
namespace serve {

std::string_view CacheLookupName(CacheLookup outcome) {
  switch (outcome) {
    case CacheLookup::kHit:
      return "hit";
    case CacheLookup::kMiss:
      return "miss";
    case CacheLookup::kStale:
      return "stale";
  }
  return "unknown";
}

std::string_view CacheInsertName(CacheInsert outcome) {
  switch (outcome) {
    case CacheInsert::kInserted:
      return "inserted";
    case CacheInsert::kUpdated:
      return "updated";
    case CacheInsert::kRejectedCapacity:
      return "rejected_capacity";
    case CacheInsert::kRejectedUncacheable:
      return "rejected_uncacheable";
    case CacheInsert::kRejectedStale:
      return "rejected_stale";
  }
  return "unknown";
}

namespace {

int ClampShards(int requested) {
  int shards = 1;
  while (shards < 64 && shards * 2 <= std::max(requested, 1)) {
    shards *= 2;
  }
  return shards;
}

}  // namespace

PlanCache::PlanCache(const PlanCacheConfig& config) : config_(config) {
  const int shards = ClampShards(config.shards);
  shards_ = std::vector<Shard>(static_cast<size_t>(shards));
  shard_capacity_ = config.capacity / static_cast<uint64_t>(shards);
  if (config.capacity > 0 && shard_capacity_ == 0) {
    shard_capacity_ = 1;  // A tiny cache still caches something per shard.
  }
  const double share = std::clamp(config.protected_share, 0.0, 1.0);
  protected_capacity_ = static_cast<uint64_t>(
      static_cast<double>(shard_capacity_) * share);
}

PlanCache::LookupResult PlanCache::Lookup(uint64_t hash,
                                          std::string_view key) {
  Shard& shard = ShardFor(hash);
  const uint64_t current = generation();
  std::lock_guard<std::mutex> lock(shard.mu);
  const auto it = shard.index.find(std::string(key));
  if (it == shard.index.end()) {
    ++shard.stats.misses;
    return {CacheLookup::kMiss, std::nullopt};
  }
  Handle& handle = it->second;
  std::list<CachedPlan>& list =
      handle.in_protected ? shard.protect : shard.probation;
  if (handle.it->generation != current) {
    // Computed under an older catalog: reclaim now, report kStale so the
    // caller can distinguish an invalidation from a cold miss.
    ++shard.stats.stale;
    list.erase(handle.it);
    shard.index.erase(it);
    return {CacheLookup::kStale, std::nullopt};
  }
  ++shard.stats.hits;
  if (!handle.in_protected) {
    // First re-use earns protection (segmented LRU promotion).
    shard.protect.splice(shard.protect.begin(), shard.probation, handle.it);
    handle.in_protected = true;
    ++shard.stats.promoted;
    RebalanceProtected(shard);
  } else {
    shard.protect.splice(shard.protect.begin(), shard.protect, handle.it);
  }
  return {CacheLookup::kHit, *handle.it};
}

CacheInsert PlanCache::Insert(CachedPlan entry) {
  // Second line of defense: a hit must replay a fresh run bit-for-bit,
  // which only holds for exact, first-intent results.
  if (entry.signature.status != StatusCode::kOk ||
      entry.signature.best_effort || !entry.plan.has_value()) {
    Shard& shard = ShardFor(entry.hash);
    std::lock_guard<std::mutex> lock(shard.mu);
    ++shard.stats.rejected_uncacheable;
    return CacheInsert::kRejectedUncacheable;
  }
  Shard& shard = ShardFor(entry.hash);
  std::lock_guard<std::mutex> lock(shard.mu);
  if (shard_capacity_ == 0) {
    ++shard.stats.rejected_capacity;
    return CacheInsert::kRejectedCapacity;
  }
  if (entry.generation != generation()) {
    // The catalog moved while the plan was being computed.
    ++shard.stats.rejected_stale;
    return CacheInsert::kRejectedStale;
  }
  const auto it = shard.index.find(entry.key);
  if (it != shard.index.end()) {
    // Refresh in place, keeping the entry's current segment.
    Handle& handle = it->second;
    std::list<CachedPlan>& list =
        handle.in_protected ? shard.protect : shard.probation;
    *handle.it = std::move(entry);
    list.splice(list.begin(), list, handle.it);
    ++shard.stats.updated;
    return CacheInsert::kUpdated;
  }
  // Cost-aware admission: expensive plans go straight to protected.
  const bool protect = protected_capacity_ > 0 &&
                       entry.recompute_seconds >=
                           config_.protect_threshold_seconds;
  std::string key_copy = entry.key;
  if (protect) {
    shard.protect.push_front(std::move(entry));
    shard.index.emplace(std::move(key_copy),
                        Handle{true, shard.protect.begin()});
    RebalanceProtected(shard);
  } else {
    shard.probation.push_front(std::move(entry));
    shard.index.emplace(std::move(key_copy),
                        Handle{false, shard.probation.begin()});
  }
  ++shard.stats.inserted;
  EnforceCapacity(shard);
  return CacheInsert::kInserted;
}

void PlanCache::RebalanceProtected(Shard& shard) {
  while (shard.protect.size() > protected_capacity_ &&
         !shard.protect.empty()) {
    // Demote the protected LRU tail rather than evicting it outright: it
    // gets one more lap through probation to prove itself.
    auto tail = std::prev(shard.protect.end());
    Handle& handle = shard.index.at(tail->key);
    shard.probation.splice(shard.probation.begin(), shard.protect, tail);
    handle.in_protected = false;
  }
}

void PlanCache::EnforceCapacity(Shard& shard) {
  while (shard.probation.size() + shard.protect.size() > shard_capacity_) {
    if (!shard.probation.empty()) {
      const CachedPlan& victim = shard.probation.back();
      shard.index.erase(victim.key);
      shard.probation.pop_back();
      ++shard.stats.evicted_probation;
    } else {
      JOINOPT_DCHECK(!shard.protect.empty());
      const CachedPlan& victim = shard.protect.back();
      shard.index.erase(victim.key);
      shard.protect.pop_back();
      ++shard.stats.evicted_protected;
    }
  }
}

uint64_t PlanCache::AdvanceGenerationTo(uint64_t target) {
  uint64_t current = generation_.load(std::memory_order_acquire);
  while (current < target &&
         !generation_.compare_exchange_weak(current, target,
                                            std::memory_order_acq_rel)) {
    // `current` reloaded by the failed CAS; retry until caught up or past.
  }
  return generation_.load(std::memory_order_acquire);
}

std::vector<CachedPlan> PlanCache::Export() const {
  std::vector<CachedPlan> out;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (auto it = shard.probation.rbegin(); it != shard.probation.rend();
         ++it) {
      out.push_back(*it);
    }
    for (auto it = shard.protect.rbegin(); it != shard.protect.rend(); ++it) {
      out.push_back(*it);
    }
  }
  return out;
}

uint64_t PlanCache::size() const {
  uint64_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.probation.size() + shard.protect.size();
  }
  return total;
}

PlanCache::Stats PlanCache::Snapshot() const {
  Stats total;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    const Stats& s = shard.stats;
    total.hits += s.hits;
    total.misses += s.misses;
    total.stale += s.stale;
    total.inserted += s.inserted;
    total.updated += s.updated;
    total.rejected_capacity += s.rejected_capacity;
    total.rejected_uncacheable += s.rejected_uncacheable;
    total.rejected_stale += s.rejected_stale;
    total.evicted_probation += s.evicted_probation;
    total.evicted_protected += s.evicted_protected;
    total.promoted += s.promoted;
  }
  return total;
}

}  // namespace serve
}  // namespace joinopt
