#ifndef JOINOPT_SERVE_PLAN_CACHE_H_
#define JOINOPT_SERVE_PLAN_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/outcome.h"
#include "plan/join_tree.h"
#include "util/status.h"

namespace joinopt {
namespace serve {

/// Typed lookup outcomes. kStale means the key was present but stamped
/// with an earlier catalog generation; the entry is evicted on the spot
/// and the caller proceeds as a miss.
enum class CacheLookup { kHit, kMiss, kStale };

/// Typed insert outcomes — the "never a silent drop" contract. Every
/// refused insert names why, and every eviction an accepted insert forced
/// is counted in Stats.
enum class CacheInsert {
  kInserted,
  kUpdated,
  /// The cache is configured with zero capacity.
  kRejectedCapacity,
  /// The result is not cacheable: failed, best-effort, or produced by a
  /// fallback step rather than the fingerprinted intent. Caching any of
  /// these would let a hit diverge from a fresh run.
  kRejectedUncacheable,
  /// The entry was computed under an older catalog generation than the
  /// cache is currently serving.
  kRejectedStale,
};

std::string_view CacheLookupName(CacheLookup outcome);
std::string_view CacheInsertName(CacheInsert outcome);

struct PlanCacheConfig {
  /// Total entry budget across all shards. 0 disables storage (every
  /// insert returns kRejectedCapacity; lookups always miss).
  uint64_t capacity = 1024;
  /// Shard count; clamped to a power of two in [1, 64]. Each shard owns
  /// capacity/shards entries under its own mutex.
  int shards = 8;
  /// Fraction of each shard reserved for the protected segment of the
  /// segmented LRU, in [0, 1].
  double protected_share = 0.5;
  /// Cost-aware admission: entries whose plan took at least this many
  /// seconds to compute enter the protected segment directly — evicting a
  /// plan that cost 2 s of DP to make room for one that cost 40 us is the
  /// failure mode plain LRU has here. Cheap entries start on probation
  /// and earn protection on their first hit.
  double protect_threshold_seconds = 0.010;
};

/// One cached optimization outcome, stored in CANONICAL numbering (the
/// fingerprint's). `signature` is the OutcomeSignature of the miss run
/// that created the entry; a hit replays it verbatim, which is what makes
/// hit and miss bit-identical.
struct CachedPlan {
  std::string key;
  uint64_t hash = 0;
  /// Catalog generation the plan was computed under.
  uint64_t generation = 0;
  OutcomeSignature signature;
  double cost = 0.0;
  double cardinality = 0.0;
  std::string algorithm;
  /// Wall-clock seconds the miss run spent — the cost-aware LRU weight.
  double recompute_seconds = 0.0;
  /// The reconstructed plan over the canonical graph.
  std::optional<JoinTree> plan;
};

/// A sharded, bounded, generation-stamped plan cache with a segmented
/// (probation/protected) LRU per shard.
///
/// Concurrency: each shard is guarded by its own mutex; the generation
/// counter is a single atomic. Lookups copy the entry out under the shard
/// lock, so callers never hold references into the cache.
///
/// Invalidation: BumpGeneration() advances the atomic stamp; entries from
/// earlier generations are evicted lazily when a lookup touches them
/// (kStale) and inserts racing a bump are refused (kRejectedStale), so a
/// plan computed against old statistics can never be served after the
/// catalog moved on.
class PlanCache {
 public:
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t stale = 0;
    uint64_t inserted = 0;
    uint64_t updated = 0;
    uint64_t rejected_capacity = 0;
    uint64_t rejected_uncacheable = 0;
    uint64_t rejected_stale = 0;
    uint64_t evicted_probation = 0;
    uint64_t evicted_protected = 0;
    /// Probation -> protected promotions (first hit on a cheap entry).
    uint64_t promoted = 0;
  };

  explicit PlanCache(const PlanCacheConfig& config);

  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  struct LookupResult {
    CacheLookup outcome = CacheLookup::kMiss;
    std::optional<CachedPlan> entry;
  };

  /// Looks `key` up (hash first, then byte equality — a colliding hash
  /// cannot serve a foreign plan). A hit refreshes recency and promotes
  /// probation entries into the protected segment.
  LookupResult Lookup(uint64_t hash, std::string_view key);

  /// Inserts or refreshes an entry. The entry must carry the generation
  /// its plan was computed under; a bump since then refuses the insert.
  /// Uncacheable outcomes (non-OK, best-effort, fallback-produced) are
  /// refused here as a second line of defense even when the caller
  /// already filtered them.
  CacheInsert Insert(CachedPlan entry);

  /// Advances the catalog generation, logically invalidating every
  /// current entry. O(1); the entries are reclaimed lazily.
  void BumpGeneration() { generation_.fetch_add(1, std::memory_order_acq_rel); }

  /// The generation new plans should be stamped with.
  uint64_t generation() const {
    return generation_.load(std::memory_order_acquire);
  }

  /// Moves the generation forward to `target` if it is ahead of the
  /// current stamp; never moves backwards (a snapshot from the past must
  /// not resurrect plans the catalog already invalidated). Used by the
  /// snapshot loader to adopt the persisted generation before replaying
  /// entries. Returns the generation in effect afterwards.
  uint64_t AdvanceGenerationTo(uint64_t target);

  /// Copies every resident entry out, least-recently-used first (per
  /// shard: probation tail to front, then protected tail to front).
  /// Re-inserting the entries in this order into an empty cache
  /// approximates the recency and segment structure they had here — the
  /// snapshot writer's iteration order. Stale entries (older generation)
  /// are included; the snapshot writer filters them.
  std::vector<CachedPlan> Export() const;

  /// Entries currently resident (stale-but-unreclaimed included).
  uint64_t size() const;

  /// Counter totals across all shards.
  Stats Snapshot() const;

  const PlanCacheConfig& config() const { return config_; }

 private:
  struct Handle {
    bool in_protected = false;
    std::list<CachedPlan>::iterator it;
  };
  struct Shard {
    mutable std::mutex mu;
    /// Both lists keep MRU at the front.
    std::list<CachedPlan> probation;
    std::list<CachedPlan> protect;
    std::unordered_map<std::string, Handle> index;
    Stats stats;
  };

  Shard& ShardFor(uint64_t hash) {
    // Top bits: the low bits feed the intra-shard unordered_map.
    return shards_[(hash >> 56) & (shards_.size() - 1)];
  }

  /// Evicts from `shard` until it is within its entry budget. Probation
  /// tail first; the protected tail only when no probation entry is left.
  void EnforceCapacity(Shard& shard);

  /// Moves the protected tail down to probation's front when the
  /// protected segment outgrew its share.
  void RebalanceProtected(Shard& shard);

  PlanCacheConfig config_;
  uint64_t shard_capacity_ = 0;
  uint64_t protected_capacity_ = 0;
  std::vector<Shard> shards_;
  std::atomic<uint64_t> generation_{1};
};

}  // namespace serve
}  // namespace joinopt

#endif  // JOINOPT_SERVE_PLAN_CACHE_H_
