#include "serve/server.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>

#include "serve/wire.h"
#include "util/env.h"

#ifndef _WIN32
#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

namespace joinopt {
namespace serve {

Result<WireServerConfig> ServerConfigFromEnv() {
  WireServerConfig config;
  // The CLI-facing default: loopback on a fixed port, so `joinopt_cli
  // serve` and `query --connect` pair up with no configuration.
  config.listen = net::Endpoint{"127.0.0.1", 7788};
  if (const char* listen = std::getenv("JOINOPT_SERVE_LISTEN");
      listen != nullptr && listen[0] != '\0') {
    Result<net::Endpoint> parsed = net::ParseEndpoint(listen);
    if (!parsed.ok()) {
      return Status::InvalidArgument("JOINOPT_SERVE_LISTEN=\"" +
                                     std::string(listen) + "\" is invalid: " +
                                     parsed.status().message());
    }
    config.listen = *parsed;
  }
  Result<int> max_conns =
      EnvInt("JOINOPT_SERVE_MAX_CONNS", config.max_connections);
  if (!max_conns.ok()) {
    return max_conns.status();
  }
  config.max_connections = *max_conns;
  Result<double> timeout = EnvDouble("JOINOPT_SERVE_IO_TIMEOUT_S",
                                     config.io_timeout_seconds,
                                     /*require_positive=*/true);
  if (!timeout.ok()) {
    return timeout.status();
  }
  config.io_timeout_seconds = *timeout;
  return config;
}

#ifndef _WIN32

namespace {

using SteadyClock = std::chrono::steady_clock;

}  // namespace

struct WireServer::Connection {
  uint64_t id = 0;
  int fd = -1;
  std::string inbuf;
  std::string outbuf;
  size_t out_off = 0;
  /// A request was handed to the service; its completion re-enables
  /// reading. No pipelining: at most one in flight per connection.
  bool in_flight = false;
  /// Stop reading; close once the output buffer is flushed.
  bool draining = false;
  bool dead = false;
  /// Deadline for the connection's NEXT unit of progress (complete
  /// request frame in, or queued response flushed out). Armed whenever
  /// no request is in flight; trickled bytes do not extend it.
  SteadyClock::time_point deadline;
};

Result<std::unique_ptr<WireServer>> WireServer::Create(
    WireServerConfig config, OptimizerService* service) {
  net::IgnoreSigpipe();
  config.max_connections = std::max(config.max_connections, 1);
  config.io_timeout_seconds = std::max(config.io_timeout_seconds, 1e-3);
  config.backlog = std::max(config.backlog, 1);
  std::unique_ptr<WireServer> server(
      new WireServer(std::move(config), service));
  uint16_t bound_port = 0;
  Result<int> listen_fd = net::ListenTcp(server->config_.listen,
                                         server->config_.backlog, &bound_port);
  if (!listen_fd.ok()) {
    return listen_fd.status();
  }
  server->listen_fd_ = *listen_fd;
  server->port_ = bound_port;
  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) {
    return Status::Internal(std::string("pipe: ") + std::strerror(errno));
  }
  server->wake_read_fd_ = pipe_fds[0];
  server->wake_write_fd_ = pipe_fds[1];
  // Both ends non-blocking: the loop drains without stalling, and a
  // full pipe on the write side just means a wake is already pending.
  net::SetNonBlocking(server->wake_read_fd_);
  net::SetNonBlocking(server->wake_write_fd_);
  return server;
}

WireServer::WireServer(WireServerConfig config, OptimizerService* service)
    : config_(std::move(config)), service_(service) {}

WireServer::~WireServer() {
  Stop();
  for (const auto& conn : conns_) {
    net::CloseQuiet(conn->fd);
  }
  conns_.clear();
  net::CloseQuiet(listen_fd_);
  net::CloseQuiet(wake_read_fd_);
  net::CloseQuiet(wake_write_fd_);
}

void WireServer::RequestStop() {
  stop_.store(true, std::memory_order_release);
  // Async-signal-safe wake: one byte down the self-pipe. EAGAIN means a
  // wake is already pending, which is just as good.
  const char byte = 's';
  [[maybe_unused]] const ssize_t n = ::write(wake_write_fd_, &byte, 1);
}

void WireServer::Start() {
  thread_ = std::thread([this] { Run(); });
  started_ = true;
}

void WireServer::Stop() {
  RequestStop();
  if (started_ && thread_.joinable()) {
    thread_.join();
  }
  started_ = false;
}

WireServer::Stats WireServer::StatsSnapshot() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

void WireServer::QueueResponse(Connection& conn,
                               const ServeResponse& response) {
  conn.outbuf += EncodeFrame(FrameType::kResponse,
                             EncodeResponsePayload(response));
  std::lock_guard<std::mutex> lock(stats_mu_);
  ++stats_.responses;
}

void WireServer::ProcessInput(Connection& conn) {
  while (!conn.in_flight && !conn.draining && !conn.dead) {
    FrameDecodeResult decoded = DecodeFrame(conn.inbuf);
    if (decoded.outcome == FrameDecode::kIncomplete) {
      return;
    }
    if (decoded.outcome == FrameDecode::kCorrupt) {
      // Framing is lost: there is no trustworthy next boundary, so the
      // best possible outcome is a typed goodbye and a close.
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.protocol_errors;
      }
      ServeResponse error;
      error.status = Status::InvalidArgument("wire: " + decoded.detail);
      QueueResponse(conn, error);
      conn.inbuf.clear();
      conn.draining = true;
      return;
    }
    conn.inbuf.erase(0, decoded.consumed);
    if (decoded.frame.type != FrameType::kRequest) {
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.protocol_errors;
      }
      ServeResponse error;
      error.status =
          Status::InvalidArgument("wire: unexpected response frame");
      QueueResponse(conn, error);
      conn.draining = true;
      return;
    }
    Result<ServeRequest> request = DecodeRequestPayload(decoded.frame.payload);
    if (!request.ok()) {
      // A valid frame with a bad payload: typed response, connection
      // survives.
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.protocol_errors;
      }
      ServeResponse error;
      error.status = request.status();
      QueueResponse(conn, error);
      continue;
    }
    conn.in_flight = true;
    const uint64_t id = conn.id;
    // The callback runs on a worker thread (or inline for sheds): it
    // only enqueues and wakes the loop — never touches Connection
    // state, which the loop thread owns.
    service_->SubmitWithCallback(
        std::move(*request), [this, id](ServeResponse response) {
          {
            std::lock_guard<std::mutex> lock(completed_mu_);
            completed_.emplace_back(id, std::move(response));
          }
          const char byte = 'c';
          [[maybe_unused]] const ssize_t n =
              ::write(wake_write_fd_, &byte, 1);
        });
  }
}

void WireServer::HandleReadable(Connection& conn) {
  char buf[4096];
  while (!conn.dead && !conn.draining && !conn.in_flight) {
    const int64_t n = net::ReadRetry(conn.fd, buf, sizeof(buf));
    if (n > 0) {
      conn.inbuf.append(buf, static_cast<size_t>(n));
      // Process between reads so a burst of back-to-back requests is
      // gated to one in flight before the buffer grows unboundedly.
      ProcessInput(conn);
      continue;
    }
    if (n == 0) {
      // EOF. Anything still owed to the peer (queued output or an
      // in-flight request) is finished first; otherwise a clean close.
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.peer_closes;
      }
      if (conn.in_flight || conn.out_off < conn.outbuf.size()) {
        conn.draining = true;
      } else {
        conn.dead = true;
      }
      return;
    }
    const int err = static_cast<int>(-n);
    if (err == EAGAIN || err == EWOULDBLOCK) {
      return;
    }
    // ECONNRESET and friends: the peer is gone.
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.peer_closes;
    conn.dead = true;
    return;
  }
}

void WireServer::HandleWritable(Connection& conn) {
  while (!conn.dead && conn.out_off < conn.outbuf.size()) {
    const int64_t n = net::WriteRetry(conn.fd, conn.outbuf.data() + conn.out_off,
                                      conn.outbuf.size() - conn.out_off);
    if (n > 0) {
      conn.out_off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0) {
      const int err = static_cast<int>(-n);
      if (err == EAGAIN || err == EWOULDBLOCK) {
        return;  // Partial write: poll() resumes us.
      }
      // EPIPE/ECONNRESET: the peer closed mid-write. Typed I/O error
      // territory on the client; a counted clean close here.
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.peer_closes;
      conn.dead = true;
      return;
    }
    return;  // n == 0: no progress possible now.
  }
  if (conn.dead || conn.out_off < conn.outbuf.size()) {
    return;
  }
  // Fully flushed.
  conn.outbuf.clear();
  conn.out_off = 0;
  if (conn.draining || stop_.load(std::memory_order_acquire)) {
    conn.dead = true;
    return;
  }
  conn.deadline = SteadyClock::now() +
                  std::chrono::duration_cast<SteadyClock::duration>(
                      std::chrono::duration<double>(
                          config_.io_timeout_seconds));
  ProcessInput(conn);
}

void WireServer::DrainCompletions() {
  std::vector<std::pair<uint64_t, ServeResponse>> done;
  {
    std::lock_guard<std::mutex> lock(completed_mu_);
    done.swap(completed_);
  }
  for (auto& [id, response] : done) {
    Connection* conn = nullptr;
    for (const auto& candidate : conns_) {
      if (candidate->id == id) {
        conn = candidate.get();
        break;
      }
    }
    if (conn == nullptr || conn->dead) {
      continue;  // The connection died mid-flight; the work is discarded.
    }
    conn->in_flight = false;
    conn->deadline = SteadyClock::now() +
                     std::chrono::duration_cast<SteadyClock::duration>(
                         std::chrono::duration<double>(
                             config_.io_timeout_seconds));
    QueueResponse(*conn, response);
    HandleWritable(*conn);
  }
}

void WireServer::CloseConnection(uint64_t id) {
  for (auto it = conns_.begin(); it != conns_.end(); ++it) {
    if ((*it)->id == id) {
      net::CloseQuiet((*it)->fd);
      conns_.erase(it);
      return;
    }
  }
}

void WireServer::Run() {
  std::vector<struct pollfd> pfds;
  std::vector<Connection*> pfd_conns;
  while (true) {
    const bool stopping = stop_.load(std::memory_order_acquire);
    if (stopping) {
      if (listen_fd_ >= 0) {
        net::CloseQuiet(listen_fd_);
        listen_fd_ = -1;
      }
      for (const auto& conn : conns_) {
        if (!conn->in_flight) {
          conn->draining = true;
          if (conn->out_off >= conn->outbuf.size()) {
            conn->dead = true;
          }
        }
      }
    }
    // Reap the dead before building the poll set.
    for (size_t i = 0; i < conns_.size();) {
      if (conns_[i]->dead) {
        net::CloseQuiet(conns_[i]->fd);
        conns_.erase(conns_.begin() + static_cast<long>(i));
      } else {
        ++i;
      }
    }
    if (stopping && conns_.empty()) {
      return;
    }
    pfds.clear();
    pfd_conns.clear();
    pfds.push_back({wake_read_fd_, POLLIN, 0});
    if (listen_fd_ >= 0) {
      pfds.push_back({listen_fd_, POLLIN, 0});
    }
    const SteadyClock::time_point now = SteadyClock::now();
    int timeout_ms = -1;
    for (const auto& conn : conns_) {
      short events = 0;
      if (!conn->in_flight && !conn->draining) {
        events |= POLLIN;
      }
      if (conn->out_off < conn->outbuf.size()) {
        events |= POLLOUT;
      }
      pfds.push_back({conn->fd, events, 0});
      pfd_conns.push_back(conn.get());
      if (!conn->in_flight) {
        const auto remaining = std::chrono::duration_cast<
            std::chrono::milliseconds>(conn->deadline - now);
        const int ms =
            remaining.count() <= 0
                ? 0
                : static_cast<int>(std::min<int64_t>(remaining.count() + 1,
                                                     60 * 1000));
        timeout_ms = timeout_ms < 0 ? ms : std::min(timeout_ms, ms);
      }
    }
    int rc;
    do {
      rc = ::poll(pfds.data(), pfds.size(), timeout_ms);
    } while (rc < 0 && errno == EINTR);
    if (rc < 0) {
      // poll failing outright (ENOMEM) has no graceful recovery beyond
      // trying again; never crash the serving loop.
      continue;
    }
    size_t idx = 0;
    if (pfds[idx].revents & POLLIN) {
      char drain[64];
      while (net::ReadRetry(wake_read_fd_, drain, sizeof(drain)) > 0) {
      }
    }
    ++idx;
    if (listen_fd_ >= 0) {
      if (pfds[idx].revents & (POLLIN | POLLERR)) {
        for (;;) {
          const int fd = ::accept(listen_fd_, nullptr, nullptr);
          if (fd < 0) {
            if (errno == EINTR) {
              continue;
            }
            break;  // EAGAIN or a transient accept error: next poll.
          }
          {
            std::lock_guard<std::mutex> lock(stats_mu_);
            ++stats_.accepted;
          }
          if (conns_.size() >=
              static_cast<size_t>(config_.max_connections)) {
            // Table overflow: a best-effort typed shed frame, then a
            // close — the peer learns WHY instead of seeing a hangup.
            {
              std::lock_guard<std::mutex> lock(stats_mu_);
              ++stats_.overflow_sheds;
            }
            ServeResponse shed;
            shed.status = Status::Overloaded(
                "connection table full (max " +
                std::to_string(config_.max_connections) +
                "); retry after backoff");
            shed.shed = true;
            const std::string frame =
                EncodeFrame(FrameType::kResponse, EncodeResponsePayload(shed));
            net::SetNonBlocking(fd);
            net::WriteRetry(fd, frame.data(), frame.size());
            net::CloseQuiet(fd);
            continue;
          }
          if (!net::SetNonBlocking(fd).ok()) {
            net::CloseQuiet(fd);
            continue;
          }
          auto conn = std::make_unique<Connection>();
          conn->id = next_conn_id_++;
          conn->fd = fd;
          conn->deadline =
              SteadyClock::now() +
              std::chrono::duration_cast<SteadyClock::duration>(
                  std::chrono::duration<double>(config_.io_timeout_seconds));
          conns_.push_back(std::move(conn));
        }
      }
      ++idx;
    }
    for (size_t c = 0; c < pfd_conns.size(); ++c, ++idx) {
      Connection& conn = *pfd_conns[c];
      const short revents = pfds[idx].revents;
      if (conn.dead) {
        continue;
      }
      if (revents & (POLLERR | POLLNVAL)) {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.peer_closes;
        conn.dead = true;
        continue;
      }
      if (revents & POLLIN) {
        HandleReadable(conn);
      }
      if (!conn.dead && (revents & POLLOUT)) {
        HandleWritable(conn);
      }
      if (!conn.dead && (revents & POLLHUP) && conn.outbuf.empty() &&
          !conn.in_flight) {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.peer_closes;
        conn.dead = true;
      }
    }
    DrainCompletions();
    // Deadline sweep: any connection owing us progress (a complete
    // request, or room to flush a response) past its deadline is cut —
    // the slowloris defense and the stuck-reader bound in one rule.
    const SteadyClock::time_point after = SteadyClock::now();
    for (const auto& conn : conns_) {
      if (!conn->dead && !conn->in_flight && after >= conn->deadline) {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.deadline_closes;
        conn->dead = true;
      }
    }
  }
}

#else  // _WIN32: the serving stack is POSIX-only.

struct WireServer::Connection {};

Result<std::unique_ptr<WireServer>> WireServer::Create(WireServerConfig,
                                                       OptimizerService*) {
  return Status::Unimplemented("wire server: not supported on this platform");
}

WireServer::WireServer(WireServerConfig config, OptimizerService* service)
    : config_(std::move(config)), service_(service) {}
WireServer::~WireServer() = default;
void WireServer::Run() {}
void WireServer::Start() {}
void WireServer::Stop() {}
void WireServer::RequestStop() {}
WireServer::Stats WireServer::StatsSnapshot() const { return Stats(); }
void WireServer::HandleReadable(Connection&) {}
void WireServer::HandleWritable(Connection&) {}
void WireServer::ProcessInput(Connection&) {}
void WireServer::QueueResponse(Connection&, const ServeResponse&) {}
void WireServer::DrainCompletions() {}
void WireServer::CloseConnection(uint64_t) {}

#endif  // _WIN32

}  // namespace serve
}  // namespace joinopt
