#ifndef JOINOPT_SERVE_SERVER_H_
#define JOINOPT_SERVE_SERVER_H_

/// The network front end: a single-threaded poll() event loop that
/// speaks the wire protocol (serve/wire.h) in front of an
/// OptimizerService. Robustness contract (DESIGN.md §11): the server
/// never crashes on peer behavior — every outcome is a typed response
/// frame or a clean close.
///
///   - Bounded connection table: an accept past the cap gets a
///     best-effort typed kOverloaded frame, then a close — never a
///     silent drop.
///   - Per-connection read deadline: a complete request frame must
///     arrive within io_timeout_seconds of the connection becoming
///     idle, however slowly the bytes trickle (slowloris defense; the
///     deadline also bounds idle keep-alive connections).
///   - Partial reads and writes are first-class states, not errors.
///   - Corrupt framing (bad magic, hostile length, CRC mismatch) earns
///     a typed error response, then a close — framing is lost, so the
///     connection cannot continue. A malformed PAYLOAD in a valid frame
///     earns a typed kInvalidArgument response and the connection
///     lives on.
///   - Optimization runs on the OptimizerService's workers; completions
///     re-enter the loop through a self-pipe, so the loop never blocks
///     on the service and sheds keep flowing under overload.
///   - RequestStop() (async-signal-safe; SIGTERM handlers call it)
///     triggers a graceful drain: stop accepting, finish in-flight
///     work, flush every response, then return from Run(). Snapshot
///     persistence happens in OptimizerService::Shutdown, which the
///     owner calls after Run() returns.

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "serve/service.h"
#include "util/net.h"
#include "util/status.h"

namespace joinopt {
namespace serve {

struct WireServerConfig {
  /// Listen endpoint. Port 0 binds an ephemeral port, reported by
  /// WireServer::port().
  net::Endpoint listen{"127.0.0.1", 0};
  /// Connection-table bound. Clamped to >= 1.
  int max_connections = 64;
  /// Read-deadline / idle timeout in seconds. Clamped to > 0.
  double io_timeout_seconds = 5.0;
  /// listen(2) backlog.
  int backlog = 64;
};

/// WireServerConfig with the environment applied: JOINOPT_SERVE_LISTEN
/// (HOST:PORT; IPv4 or "localhost"), JOINOPT_SERVE_MAX_CONNS,
/// JOINOPT_SERVE_IO_TIMEOUT_S (> 0). Strict-parsed like every other
/// JOINOPT knob: the first malformed variable is a kInvalidArgument
/// naming it, never a silent fallback.
Result<WireServerConfig> ServerConfigFromEnv();

class WireServer {
 public:
  /// Counters for the chaos harness's oracles. Reads are safe from any
  /// thread.
  struct Stats {
    uint64_t accepted = 0;
    uint64_t responses = 0;
    uint64_t protocol_errors = 0;   ///< corrupt frames + bad payloads
    uint64_t deadline_closes = 0;   ///< slowloris / idle timeouts
    uint64_t overflow_sheds = 0;    ///< connection-table overflow
    uint64_t peer_closes = 0;       ///< EOF / reset from the peer
  };

  /// Binds the listen socket (so port() is valid immediately) and wires
  /// the self-pipe. `service` must outlive the server. Typed error when
  /// the endpoint cannot be bound.
  static Result<std::unique_ptr<WireServer>> Create(
      WireServerConfig config, OptimizerService* service);

  ~WireServer();

  WireServer(const WireServer&) = delete;
  WireServer& operator=(const WireServer&) = delete;

  /// The bound port (meaningful when config.listen.port was 0).
  uint16_t port() const { return port_; }

  /// Runs the event loop on the calling thread until RequestStop(),
  /// then drains (see the class comment) and returns.
  void Run();

  /// Run() on a background thread. Stop() (or the destructor) requests
  /// the drain and joins.
  void Start();
  void Stop();

  /// Requests a graceful drain. Async-signal-safe (an atomic store plus
  /// a write() to the self-pipe) — SIGTERM handlers call this directly.
  void RequestStop();

  Stats StatsSnapshot() const;

 private:
  struct Connection;

  WireServer(WireServerConfig config, OptimizerService* service);

  void HandleReadable(Connection& conn);
  void HandleWritable(Connection& conn);
  /// Decodes and dispatches whatever complete frames sit in the input
  /// buffer (at most one request goes in flight; no pipelining).
  void ProcessInput(Connection& conn);
  void QueueResponse(Connection& conn, const ServeResponse& response);
  void DrainCompletions();
  void CloseConnection(uint64_t id);

  WireServerConfig config_;
  OptimizerService* service_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  int wake_read_fd_ = -1;
  int wake_write_fd_ = -1;
  std::atomic<bool> stop_{false};

  /// Loop-owned state (only touched from Run's thread).
  std::vector<std::unique_ptr<Connection>> conns_;
  uint64_t next_conn_id_ = 1;

  /// Completions crossing from worker threads into the loop.
  std::mutex completed_mu_;
  std::vector<std::pair<uint64_t, ServeResponse>> completed_;

  /// In-flight submissions whose connection died before the worker
  /// finished; their completions are discarded on arrival.
  mutable std::mutex stats_mu_;
  Stats stats_;

  std::thread thread_;
  bool started_ = false;
};

}  // namespace serve
}  // namespace joinopt

#endif  // JOINOPT_SERVE_SERVER_H_
