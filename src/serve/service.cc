#include "serve/service.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <utility>

#include "core/registry.h"
#include "cost/cost_model.h"
#include "util/env.h"

namespace joinopt {
namespace serve {

namespace {

/// EMA smoothing for the shedding predictor: heavy enough to ride out one
/// outlier query, light enough to track a workload shift within ~10
/// queries.
constexpr double kEmaAlpha = 0.1;

}  // namespace

Result<ServiceConfig> ServiceConfigFromEnv() {
  ServiceConfig config;
  auto workers = EnvInt("JOINOPT_SERVE_WORKERS", config.workers);
  if (!workers.ok()) {
    return workers.status();
  }
  config.workers = *workers;
  auto depth = EnvInt("JOINOPT_QUEUE_DEPTH", config.queue_depth);
  if (!depth.ok()) {
    return depth.status();
  }
  config.queue_depth = *depth;
  auto shards = EnvInt("JOINOPT_CACHE_SHARDS", config.cache.shards);
  if (!shards.ok()) {
    return shards.status();
  }
  config.cache.shards = *shards;
  // Entry budget from a memory budget: ~1 KB per cached plan (key +
  // signature + a <=64-leaf join tree), so MB * 1024 entries.
  auto cache_mb = EnvUint64("JOINOPT_CACHE_MB",
                            config.cache.capacity / 1024);
  if (!cache_mb.ok()) {
    return cache_mb.status();
  }
  config.cache.capacity = *cache_mb * 1024;
  config.cache_enabled = config.cache.capacity > 0;
  if (const char* path = std::getenv("JOINOPT_SERVE_SNAPSHOT_PATH")) {
    config.snapshot_path = path;
  }
  auto period = EnvDouble("JOINOPT_SERVE_SNAPSHOT_PERIOD_S",
                          config.snapshot_period_seconds);
  if (!period.ok()) {
    return period.status();
  }
  config.snapshot_period_seconds = *period;
  return config;
}

Result<std::unique_ptr<OptimizerService>> OptimizerService::Create(
    ServiceConfig config) {
  config.workers = std::clamp(config.workers, 1, 256);
  config.queue_depth = std::max(config.queue_depth, 1);
  config.max_retries = std::max(config.max_retries, 0);
  config.retry_backoff_seconds = std::max(config.retry_backoff_seconds, 0.0);
  DegradationPolicy policy;
  if (config.policy.empty()) {
    policy = DegradationPolicy::Default();
  } else {
    auto parsed = DegradationPolicy::Parse(config.policy);
    if (!parsed.ok()) {
      return parsed.status();
    }
    policy = std::move(*parsed);
  }
  // Normalize so the fingerprint intent is the same string regardless of
  // how the caller spelled the policy.
  config.policy = policy.ToString();
  return std::unique_ptr<OptimizerService>(
      new OptimizerService(std::move(config), std::move(policy)));
}

OptimizerService::OptimizerService(ServiceConfig config,
                                   DegradationPolicy policy)
    : config_(std::move(config)),
      default_policy_(std::move(policy)),
      cache_(std::make_unique<PlanCache>(config_.cache)) {
  if (!config_.snapshot_path.empty()) {
    // Load BEFORE starting workers: the first request already sees the
    // warm cache, and no insert can race the replay. Corrupt or stale
    // snapshots degrade to a typed cold start, never to a failed boot.
    auto loaded = LoadSnapshot(*cache_, config_.snapshot_path);
    if (loaded.ok()) {
      load_stats_ = std::move(*loaded);
    } else {
      load_stats_.outcome = SnapshotLoad::kNoSnapshot;
      load_stats_.detail = loaded.status().ToString();
    }
    if (config_.snapshot_period_seconds > 0) {
      snapshot_thread_ = std::thread([this] { SnapshotLoop(); });
    }
  }
  workers_.reserve(static_cast<size_t>(config_.workers));
  for (int i = 0; i < config_.workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

OptimizerService::~OptimizerService() { Shutdown(/*drain=*/true); }

ServeResponse OptimizerService::ShedResponse(std::string why,
                                             uint64_t* counter) {
  // Callers hold mu_ (counter lives in stats_).
  ++*counter;
  ServeResponse response;
  response.status = Status::Overloaded(std::move(why));
  response.shed = true;
  return response;
}

std::future<ServeResponse> OptimizerService::Submit(ServeRequest request) {
  auto promise = std::make_shared<std::promise<ServeResponse>>();
  std::future<ServeResponse> future = promise->get_future();
  SubmitWithCallback(std::move(request), [promise](ServeResponse response) {
    promise->set_value(std::move(response));
  });
  return future;
}

void OptimizerService::SubmitWithCallback(
    ServeRequest request, std::function<void(ServeResponse)> done) {
  Pending pending;
  pending.request = std::move(request);
  pending.complete = std::move(done);
  pending.deadline_seconds = pending.request.deadline_seconds > 0
                                 ? pending.request.deadline_seconds
                                 : config_.default_deadline_seconds;
  std::optional<ServeResponse> shed;
  bool queued = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.submitted;
    if (stopping_) {
      shed = ShedResponse("optimizer service is shutting down",
                          &stats_.shed_shutdown);
    } else if (queue_.size() >= static_cast<size_t>(config_.queue_depth)) {
      shed = ShedResponse("admission queue full (depth " +
                              std::to_string(config_.queue_depth) +
                              "); resubmit after the backlog drains",
                          &stats_.shed_queue_full);
    } else if (pending.deadline_seconds > 0 && stats_.ema_exec_seconds > 0) {
      // Deadline-aware shedding: refuse work predicted to expire in the
      // queue instead of wasting a worker slot discovering that later.
      const double predicted_wait =
          static_cast<double>(queue_.size() + 1) * stats_.ema_exec_seconds /
          static_cast<double>(config_.workers);
      if (predicted_wait > pending.deadline_seconds) {
        shed = ShedResponse("predicted queue wait exceeds the request deadline",
                            &stats_.shed_predicted_deadline);
      }
    }
    if (!shed.has_value()) {
      pending.queued.Restart();
      queue_.push_back(std::move(pending));
      queued = true;
    }
  }
  if (shed.has_value()) {
    // Completed outside mu_: the sink may take its own locks (the wire
    // server's completion queue) and must never nest under ours.
    pending.complete(std::move(*shed));
    return;
  }
  if (queued) {
    cv_.notify_one();
  }
}

void OptimizerService::WorkerLoop() {
  while (true) {
    Pending pending;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // stopping_ and nothing left to drain.
      }
      pending = std::move(queue_.front());
      queue_.pop_front();
    }
    const double queue_seconds = pending.queued.ElapsedSeconds();
    ServeResponse response;
    if (pending.deadline_seconds > 0 &&
        queue_seconds >= pending.deadline_seconds) {
      // Fourth shed point: the deadline expired while queued. Running the
      // DP now could only produce an answer nobody is waiting for.
      std::lock_guard<std::mutex> lock(mu_);
      response = ShedResponse("deadline expired while queued",
                              &stats_.shed_queue_expired);
    } else {
      response =
          Execute(pending.request, queue_seconds, pending.deadline_seconds);
    }
    response.queue_seconds = queue_seconds;
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.completed;
      if (!response.status.ok() && !response.shed) {
        ++stats_.failed;
      }
      if (!response.shed && !response.cache_hit) {
        stats_.ema_exec_seconds =
            stats_.ema_exec_seconds <= 0
                ? response.exec_seconds
                : (1.0 - kEmaAlpha) * stats_.ema_exec_seconds +
                      kEmaAlpha * response.exec_seconds;
      }
    }
    pending.complete(std::move(response));
  }
}

ServeResponse OptimizerService::Execute(const ServeRequest& request,
                                        double queue_seconds,
                                        double deadline_seconds) {
  Stopwatch exec;
  ServeResponse response;
  // The intent is what the fingerprint keys on: the named orderer, or the
  // normalized policy string when the request defers to the service.
  const std::string& intent =
      request.orderer.empty() ? config_.policy : request.orderer;
  if (!request.orderer.empty()) {
    auto lookup = OptimizerRegistry::GetOrError(request.orderer);
    if (!lookup.ok()) {
      response.status = lookup.status();
      response.exec_seconds = exec.ElapsedSeconds();
      return response;
    }
  }
  auto canonical =
      CanonicalizeQuery(request.graph, intent, request.cost_model);
  if (!canonical.ok()) {
    response.status = canonical.status();
    response.exec_seconds = exec.ElapsedSeconds();
    return response;
  }
  // Snapshot the generation BEFORE the lookup/DP: if the catalog moves
  // mid-optimization the insert below is refused rather than poisoning
  // the cache with a plan computed against superseded statistics.
  const uint64_t generation = cache_->generation();
  if (config_.cache_enabled) {
    PlanCache::LookupResult found = cache_->Lookup(canonical->hash,
                                                   canonical->key);
    if (found.outcome == CacheLookup::kHit) {
      CachedPlan& entry = *found.entry;
      response.status = Status();
      response.plan = std::move(entry.plan);
      response.plan->RelabelLeaves(canonical->canonical_to_original);
      response.cost = entry.cost;
      response.cardinality = entry.cardinality;
      response.signature = entry.signature;
      response.algorithm = std::move(entry.algorithm);
      response.cache_hit = true;
      response.generation = entry.generation;
      response.exec_seconds = exec.ElapsedSeconds();
      return response;
    }
  }
  const double remaining = deadline_seconds > 0
                               ? std::max(deadline_seconds - queue_seconds,
                                          1e-6)
                               : 0.0;
  response = Optimize(request, *canonical, remaining, generation);
  response.exec_seconds = exec.ElapsedSeconds();
  return response;
}

ServeResponse OptimizerService::Optimize(const ServeRequest& request,
                                         const CanonicalQuery& canonical,
                                         double remaining_seconds,
                                         uint64_t generation) {
  ServeResponse response;
  response.generation = generation;
  auto cost_model = MakeCostModelByName(request.cost_model);
  if (!cost_model.ok()) {
    response.status = cost_model.status();
    return response;
  }
  // Explicit-orderer requests with retries available pursue the exact
  // answer first: salvage on attempt one would convert a transient fault
  // into a premature best-effort plan the envelope could have rescued.
  // Salvage is re-armed for the last-resort pass below.
  const bool exact_first = !request.orderer.empty() && config_.max_retries > 0;
  DegradationPolicy policy;
  if (request.orderer.empty()) {
    policy = default_policy_;
  } else {
    PolicyStep step;
    step.algorithm = request.orderer;
    step.salvage = !exact_first;
    policy.Append(std::move(step));
  }
  OptimizeOptions options;
  options.memo_entry_budget = request.memo_entry_budget;
  options.deadline_seconds = remaining_seconds;
  options.threads = request.threads;
  // The DP runs on the CANONICAL graph: same bucketed statistics, same
  // node order for every request that maps to this fingerprint. That —
  // not hope — is why a later cache hit replays this run bit-for-bit.
  OptimizerContext ctx(canonical.graph, **cost_model, options);
  RetryOptions retry;
  retry.max_retries = config_.max_retries;
  retry.backoff_seconds = config_.retry_backoff_seconds;
  const auto run = [&]() -> Result<OptimizationResult> {
    Result<OptimizationResult> attempt = RunPolicyWithRetry(policy, ctx, retry);
    if (exact_first && !attempt.ok() &&
        (attempt.status().code() == StatusCode::kBudgetExceeded ||
         attempt.status().code() == StatusCode::kInternal)) {
      // Retries exhausted without an exact plan: one salvage-armed pass
      // at base limits so the caller still gets a best-effort answer
      // where the old single-attempt path would have.
      DegradationPolicy salvage_policy;
      PolicyStep step;
      step.algorithm = request.orderer;
      step.salvage = true;
      salvage_policy.Append(std::move(step));
      ctx.ResetForRerun(options);
      attempt = RunDegradationPolicy(salvage_policy, ctx);
    }
    return attempt;
  };
  Result<OptimizationResult> result = [&] {
    if (request.faults.has_value()) {
      // Armed once around the whole retry envelope: the schedule is
      // fire-once per Configure, so the first attempt absorbs the fault
      // and retries run clean — exactly the transient-fault story the
      // envelope exists for.
      testing::ScopedFaultInjection scope(*request.faults);
      return run();
    }
    return run();
  }();
  response.signature = ExtractOutcomeSignature(result, ctx.stats());
  response.status = result.status();
  if (!result.ok()) {
    return response;
  }
  response.cost = result->cost;
  response.cardinality = result->cardinality;
  response.algorithm = result->stats.algorithm;
  const bool cacheable = !result->stats.best_effort &&
                         result->stats.fallback_from.empty();
  if (config_.cache_enabled && cacheable) {
    CachedPlan entry;
    entry.key = canonical.key;
    entry.hash = canonical.hash;
    entry.generation = generation;
    entry.signature = response.signature;
    entry.cost = response.cost;
    entry.cardinality = response.cardinality;
    entry.algorithm = response.algorithm;
    entry.recompute_seconds = result->stats.elapsed_seconds;
    entry.plan = result->plan;  // Canonical numbering: stored pre-relabel.
    cache_->Insert(std::move(entry));
  }
  response.plan = std::move(result->plan);
  response.plan->RelabelLeaves(canonical.canonical_to_original);
  return response;
}

SnapshotLoadStats OptimizerService::LoadStats() const {
  // Written once in the constructor before any worker starts; immutable
  // afterwards, so no lock is needed.
  return load_stats_;
}

Result<SnapshotSaveStats> OptimizerService::SaveSnapshotNow() {
  if (config_.snapshot_path.empty()) {
    return Status::FailedPrecondition(
        "snapshot persistence is disabled (no snapshot_path)");
  }
  std::lock_guard<std::mutex> lock(snapshot_io_mu_);
  auto saved = SaveSnapshot(*cache_, config_.snapshot_path);
  if (saved.ok()) {
    last_save_status_ = Status();
    last_save_stats_ = *saved;
  } else {
    last_save_status_ = saved.status();
  }
  return saved;
}

Result<SnapshotSaveStats> OptimizerService::LastSaveStats() const {
  std::lock_guard<std::mutex> lock(snapshot_io_mu_);
  if (!last_save_status_.ok()) {
    return last_save_status_;
  }
  return last_save_stats_;
}

void OptimizerService::SnapshotLoop() {
  const auto period = std::chrono::duration<double>(
      config_.snapshot_period_seconds);
  std::unique_lock<std::mutex> lock(snapshot_mu_);
  while (!snapshot_stop_) {
    if (snapshot_cv_.wait_for(lock, period,
                              [this] { return snapshot_stop_; })) {
      return;  // The drain path writes the final snapshot.
    }
    lock.unlock();
    // Failures are retained in LastSaveStats and retried next period: a
    // full disk must degrade persistence, not the serving path.
    SaveSnapshotNow();
    lock.lock();
  }
}

void OptimizerService::Shutdown(bool drain) {
  std::deque<Pending> flushed;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!stopping_) {
      stopping_ = true;
      drain_ = drain;
    }
    if (!drain_) {
      flushed.swap(queue_);
    }
  }
  // Completion sinks run outside the lock: a caller's continuation must
  // not run under mu_.
  for (Pending& pending : flushed) {
    ServeResponse response;
    {
      std::lock_guard<std::mutex> lock(mu_);
      response = ShedResponse("optimizer service is shutting down",
                              &stats_.shed_shutdown);
    }
    pending.complete(std::move(response));
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) {
      worker.join();
    }
  }
  workers_.clear();
  {
    std::lock_guard<std::mutex> lock(snapshot_mu_);
    snapshot_stop_ = true;
  }
  snapshot_cv_.notify_all();
  if (snapshot_thread_.joinable()) {
    snapshot_thread_.join();
  }
  if (!config_.snapshot_path.empty() && drain) {
    // Drain-time snapshot: workers are joined, so this captures every
    // insert the service ever accepted.
    SaveSnapshotNow();
  }
}

ServiceStats OptimizerService::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace serve
}  // namespace joinopt
