#ifndef JOINOPT_SERVE_SERVICE_H_
#define JOINOPT_SERVE_SERVICE_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/policy.h"
#include "graph/query_graph.h"
#include "plan/join_tree.h"
#include "serve/fingerprint.h"
#include "serve/plan_cache.h"
#include "serve/snapshot.h"
#include "testing/fault_injection.h"
#include "util/status.h"
#include "util/stopwatch.h"

namespace joinopt {
namespace serve {

/// Configuration of an OptimizerService instance. Values are validated by
/// OptimizerService::Create; the environment-driven entry points read the
/// JOINOPT_SERVE_WORKERS / JOINOPT_QUEUE_DEPTH / JOINOPT_CACHE_* knobs
/// into this struct.
struct ServiceConfig {
  /// Worker threads pulling from the queue. Clamped to [1, 256].
  int workers = 2;
  /// Bounded admission queue depth; a Submit finding the queue full is
  /// shed with kOverloaded instead of waiting. Clamped to >= 1.
  int queue_depth = 64;
  /// Per-query end-to-end deadline (queue wait + optimization) applied
  /// when a request does not carry its own. 0 = none.
  double default_deadline_seconds = 0.0;
  /// Whole-policy retry envelope layered on RunDegradationPolicy (see
  /// core/policy.h): extra attempts after kBudgetExceeded/kInternal,
  /// doubling backoff, limit growth per attempt.
  int max_retries = 1;
  double retry_backoff_seconds = 0.0;
  /// Degradation policy for requests that do not name an orderer. Empty =
  /// the library default (DPccp -> salvage -> IDP1[k=5] -> GOO).
  std::string policy;
  /// Plan cache; set cache_enabled=false to run every query through the
  /// DP (the cache object still exists so generation stamps stay
  /// meaningful).
  bool cache_enabled = true;
  PlanCacheConfig cache;
  /// Snapshot persistence (serve/snapshot.h). Empty path disables it.
  /// When set, the service loads the snapshot before accepting traffic,
  /// saves it at drain time, and — when snapshot_period_seconds > 0 —
  /// also saves periodically from a background thread, so a kill -9
  /// loses at most one period of cache warmth.
  std::string snapshot_path;
  double snapshot_period_seconds = 0.0;
};

/// The default ServiceConfig with the environment knobs applied:
/// JOINOPT_SERVE_WORKERS, JOINOPT_QUEUE_DEPTH, JOINOPT_CACHE_SHARDS, and
/// JOINOPT_CACHE_MB — the cache budget in megabytes, converted at an
/// estimated ~1 KB per cached plan (so CACHE_MB=4 buys ~4096 entries);
/// 0 disables caching entirely. JOINOPT_SERVE_SNAPSHOT_PATH names the
/// plan-cache snapshot file (empty/unset disables persistence) and
/// JOINOPT_SERVE_SNAPSHOT_PERIOD_S the periodic-save interval (>= 0;
/// 0 = save only at drain). All strict-parsed via util/env: the first
/// malformed variable is a kInvalidArgument naming it, never a silent
/// fallback.
Result<ServiceConfig> ServiceConfigFromEnv();

/// One optimization request. The graph is copied in: the caller may
/// mutate or destroy its catalog immediately after Submit returns.
struct ServeRequest {
  QueryGraph graph;
  /// Registry orderer to run ("DPccp", "DPsizePar", ...). The service
  /// wraps it as a single salvage-armed policy step. Empty: the service
  /// config's degradation policy runs instead.
  std::string orderer;
  /// Cost model name (cout|bestof|hash|nlj|smj).
  std::string cost_model = "cout";
  /// Per-run resource limits, same semantics as OptimizeOptions. The
  /// deadline is END-TO-END: time spent queued counts against it, and a
  /// request whose deadline expired before a worker picked it up is shed
  /// with kOverloaded rather than optimized late.
  uint64_t memo_entry_budget = 0;
  double deadline_seconds = 0.0;
  int threads = 0;
  /// Chaos seam: a deterministic fault schedule armed on the worker
  /// thread for exactly this request's optimization (see
  /// testing/fault_injection.h). Production requests leave it empty.
  std::optional<testing::FaultConfig> faults;
};

/// The outcome of one served request.
struct ServeResponse {
  /// kOk with a plan; kOverloaded when shed by admission control; the
  /// optimizer's typed error otherwise.
  Status status;
  /// The plan in the REQUEST's relation numbering (translated back from
  /// canonical numbering). Empty on failure.
  std::optional<JoinTree> plan;
  double cost = 0.0;
  double cardinality = 0.0;
  /// Deterministic fingerprint of the optimization outcome. For a cache
  /// hit this is the stored signature of the miss run that created the
  /// entry — bit-identical to what a fresh run would produce.
  OutcomeSignature signature;
  /// Algorithm that produced the plan.
  std::string algorithm;
  /// True when the plan came from the cache without running a DP.
  bool cache_hit = false;
  /// True when admission control shed the request (status is then
  /// kOverloaded and nothing ran).
  bool shed = false;
  /// Seconds spent waiting in the queue / executing on a worker.
  double queue_seconds = 0.0;
  double exec_seconds = 0.0;
  /// Catalog generation the response was computed (or cached) under.
  uint64_t generation = 0;
};

/// Service-level counters (cache counters live in PlanCache::Stats).
struct ServiceStats {
  uint64_t submitted = 0;
  uint64_t completed = 0;
  uint64_t failed = 0;
  uint64_t shed_queue_full = 0;
  uint64_t shed_predicted_deadline = 0;
  uint64_t shed_queue_expired = 0;
  uint64_t shed_shutdown = 0;
  /// Exponential moving average of per-query execution seconds — the
  /// predictor behind deadline-aware shedding.
  double ema_exec_seconds = 0.0;
};

/// The batch front end: N workers over a bounded queue, admission control
/// in front, the plan cache and the degradation-policy machinery behind.
///
/// Admission control sheds with a typed kOverloaded instead of queuing
/// forever, on three triggers: the queue is at depth, the predicted wait
/// (queue length x EMA latency / workers) already exceeds the request's
/// deadline, or the service is shutting down. A fourth, worker-side shed
/// catches requests whose deadline expired while queued.
///
/// Determinism contract: the service optimizes the CANONICAL QUANTIZED
/// graph from serve/fingerprint.h for every request, hit or miss, so a
/// cache hit's plan, cost, and OutcomeSignature are bit-identical to what
/// the DP would have produced — the chaos harness holds it to that with
/// fresh-re-run oracles. Only exact, first-intent results are cached
/// (no best-effort salvages, no fallback products, no stale
/// generations).
class OptimizerService {
 public:
  /// Validates and clamps `config` (policy string parse, worker/queue
  /// bounds) and starts the workers. kInvalidArgument on a malformed
  /// policy.
  static Result<std::unique_ptr<OptimizerService>> Create(
      ServiceConfig config);

  /// Drains and joins (Shutdown(true)).
  ~OptimizerService();

  OptimizerService(const OptimizerService&) = delete;
  OptimizerService& operator=(const OptimizerService&) = delete;

  /// Submits a request. Always returns a future that WILL be fulfilled —
  /// shed requests resolve immediately with kOverloaded, accepted ones
  /// when a worker finishes.
  std::future<ServeResponse> Submit(ServeRequest request);

  /// Submit with completion-callback delivery — the wire server's entry
  /// point, where a fulfilled future would have to be polled but a
  /// callback can wake the event loop. `done` is invoked EXACTLY once:
  /// inline on the calling thread for shed requests, on a worker thread
  /// otherwise. It must be cheap and must not re-enter the service
  /// (enqueue-and-wake, not work).
  void SubmitWithCallback(ServeRequest request,
                          std::function<void(ServeResponse)> done);

  /// Submit + get(), for synchronous callers and tests.
  ServeResponse SubmitAndWait(ServeRequest request) {
    return Submit(std::move(request)).get();
  }

  /// Signals a catalog statistics change: every cached plan computed
  /// before this call is invalidated (lazily). Safe from any thread,
  /// including mid-stream while workers are optimizing — in-flight
  /// results stamped with the old generation are refused at insert.
  void BumpCatalogGeneration() { cache_->BumpGeneration(); }
  uint64_t generation() const { return cache_->generation(); }

  /// Stops the service. drain=true (the default, and what the destructor
  /// does) lets workers finish every queued request; drain=false answers
  /// every still-queued request with kOverloaded and joins as soon as
  /// in-flight work completes. Idempotent.
  void Shutdown(bool drain = true);

  ServiceStats Snapshot() const;
  PlanCache::Stats CacheSnapshot() const { return cache_->Snapshot(); }
  uint64_t CacheSize() const { return cache_->size(); }
  const ServiceConfig& config() const { return config_; }

  /// Outcome of the load-on-start snapshot replay. kNoSnapshot (with an
  /// empty detail) when persistence is disabled.
  SnapshotLoadStats LoadStats() const;

  /// Writes a snapshot right now (also what the periodic thread and the
  /// drain path call). kFailedPrecondition when persistence is disabled;
  /// filesystem errors otherwise. The result is also retained for
  /// LastSaveStats().
  Result<SnapshotSaveStats> SaveSnapshotNow();

  /// The most recent save attempt's outcome (OK + zeroed stats before
  /// the first save).
  Result<SnapshotSaveStats> LastSaveStats() const;

 private:
  struct Pending {
    ServeRequest request;
    /// Completion sink, invoked exactly once outside mu_. The future
    /// path wraps a promise; the wire server enqueues and wakes poll().
    std::function<void(ServeResponse)> complete;
    Stopwatch queued;
    /// Resolved end-to-end deadline (request's, else config default).
    double deadline_seconds = 0.0;
  };

  explicit OptimizerService(ServiceConfig config, DegradationPolicy policy);

  void WorkerLoop();

  /// Runs one request on the calling worker thread. `queue_seconds` is
  /// the time it spent queued (already checked against the deadline).
  ServeResponse Execute(const ServeRequest& request, double queue_seconds,
                        double deadline_seconds);

  /// The miss path: DP on the canonical graph + cache fill.
  ServeResponse Optimize(const ServeRequest& request,
                         const CanonicalQuery& canonical,
                         double remaining_seconds, uint64_t generation);

  ServeResponse ShedResponse(std::string why, uint64_t* counter);

  ServiceConfig config_;
  DegradationPolicy default_policy_;
  std::unique_ptr<PlanCache> cache_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Pending> queue_;
  bool stopping_ = false;
  bool drain_ = true;
  ServiceStats stats_;

  std::vector<std::thread> workers_;

  /// Snapshot machinery. snapshot_io_mu_ serializes SaveSnapshot calls
  /// (periodic thread vs explicit vs drain); snapshot_mu_/cv_ only wake
  /// the periodic thread for shutdown.
  void SnapshotLoop();
  SnapshotLoadStats load_stats_;
  mutable std::mutex snapshot_io_mu_;
  Status last_save_status_;
  SnapshotSaveStats last_save_stats_;
  std::mutex snapshot_mu_;
  std::condition_variable snapshot_cv_;
  bool snapshot_stop_ = false;
  std::thread snapshot_thread_;
};

}  // namespace serve
}  // namespace joinopt

#endif  // JOINOPT_SERVE_SERVICE_H_
