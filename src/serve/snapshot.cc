#include "serve/snapshot.h"

#include <array>
#include <cerrno>
#include <cmath>
#include <cstring>
#include <utility>
#include <vector>

#include "bitset/node_set.h"
#include "plan/join_tree.h"
#include "serve/fingerprint.h"

#ifndef _WIN32
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#include <cstdio>
#include <fstream>
#endif

namespace joinopt {
namespace serve {

namespace {

constexpr char kMagic[8] = {'J', 'O', 'P', 'S', 'N', 'A', 'P', '1'};
constexpr uint32_t kFormatVersion = 1;
/// magic + version + quant + generation + record_count, before the CRC.
constexpr size_t kHeaderBodyBytes = 8 + 4 + 4 + 8 + 8;
constexpr size_t kHeaderBytes = kHeaderBodyBytes + 4;

/// Hostile-length ceilings. A valid record is a few KB (key + signature
/// + a <=127-node tree); anything past these is corruption or an attack,
/// not data — reject before allocating.
constexpr uint64_t kMaxSnapshotBytes = uint64_t{1} << 30;
constexpr uint32_t kMaxPayloadBytes = uint32_t{1} << 22;
constexpr uint32_t kMaxKeyBytes = uint32_t{1} << 20;
constexpr uint32_t kMaxAlgorithmBytes = 4096;
/// A join tree over <= kMaxRelations leaves has <= 2n-1 nodes.
constexpr uint32_t kMaxTreeNodes = 2 * kMaxRelations - 1;
/// Snapshots persist server-side outcomes only; kUnavailable is a
/// client-local verdict that never reaches a signature, so a record
/// carrying it is crafted and rejected.
constexpr uint32_t kMaxStatusCode = static_cast<uint32_t>(StatusCode::kOverloaded);
constexpr uint32_t kMaxJoinOperator = static_cast<uint32_t>(JoinOperator::kSortMerge);

// --- little-endian encoding -------------------------------------------

void AppendU32(std::string& out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void AppendU64(std::string& out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void AppendI32(std::string& out, int32_t v) {
  AppendU32(out, static_cast<uint32_t>(v));
}

void AppendDouble(std::string& out, double v) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v), "double must be 64-bit");
  std::memcpy(&bits, &v, sizeof(bits));
  AppendU64(out, bits);
}

void AppendBytes(std::string& out, std::string_view bytes) {
  AppendU32(out, static_cast<uint32_t>(bytes.size()));
  out.append(bytes.data(), bytes.size());
}

/// Bounds-checked forward reader. Every Read* returns false on overrun
/// instead of touching out-of-range bytes — the loader's first line of
/// defense against truncation and hostile lengths.
class Cursor {
 public:
  explicit Cursor(std::string_view data) : data_(data) {}

  size_t position() const { return pos_; }
  size_t remaining() const { return data_.size() - pos_; }
  bool AtEnd() const { return pos_ == data_.size(); }

  bool ReadU32(uint32_t* v) {
    if (remaining() < 4) return false;
    uint32_t out = 0;
    for (int i = 0; i < 4; ++i) {
      out |= static_cast<uint32_t>(
                 static_cast<unsigned char>(data_[pos_ + i]))
             << (8 * i);
    }
    pos_ += 4;
    *v = out;
    return true;
  }

  bool ReadU64(uint64_t* v) {
    if (remaining() < 8) return false;
    uint64_t out = 0;
    for (int i = 0; i < 8; ++i) {
      out |= static_cast<uint64_t>(
                 static_cast<unsigned char>(data_[pos_ + i]))
             << (8 * i);
    }
    pos_ += 8;
    *v = out;
    return true;
  }

  bool ReadI32(int32_t* v) {
    uint32_t raw = 0;
    if (!ReadU32(&raw)) return false;
    *v = static_cast<int32_t>(raw);
    return true;
  }

  bool ReadU8(uint8_t* v) {
    if (remaining() < 1) return false;
    *v = static_cast<unsigned char>(data_[pos_++]);
    return true;
  }

  bool ReadDouble(double* v) {
    uint64_t bits = 0;
    if (!ReadU64(&bits)) return false;
    std::memcpy(v, &bits, sizeof(bits));
    return true;
  }

  bool ReadBytes(uint32_t max_len, std::string* out) {
    uint32_t len = 0;
    if (!ReadU32(&len) || len > max_len || len > remaining()) return false;
    out->assign(data_.data() + pos_, len);
    pos_ += len;
    return true;
  }

  bool Skip(size_t n) {
    if (remaining() < n) return false;
    pos_ += n;
    return true;
  }

  std::string_view View(size_t len) const {
    return data_.substr(pos_, len);
  }

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

// --- record codec -----------------------------------------------------

void EncodeSignature(std::string& out, const OutcomeSignature& sig) {
  AppendU32(out, static_cast<uint32_t>(sig.status));
  AppendDouble(out, sig.cost);
  AppendDouble(out, sig.cardinality);
  AppendU64(out, sig.inner_counter);
  AppendU64(out, sig.csg_cmp_pair_counter);
  AppendU64(out, sig.create_join_tree_calls);
  AppendU64(out, sig.plans_stored);
  out.push_back(sig.best_effort ? 1 : 0);
  AppendU32(out, static_cast<uint32_t>(sig.trigger));
}

std::string EncodePayload(const CachedPlan& entry) {
  std::string out;
  AppendBytes(out, entry.key);
  AppendU64(out, entry.generation);
  AppendBytes(out, entry.algorithm);
  EncodeSignature(out, entry.signature);
  AppendDouble(out, entry.cost);
  AppendDouble(out, entry.cardinality);
  AppendDouble(out, entry.recompute_seconds);
  const std::vector<JoinTreeNode>& nodes = entry.plan->nodes();
  AppendU32(out, static_cast<uint32_t>(nodes.size()));
  for (const JoinTreeNode& node : nodes) {
    AppendU64(out, node.relations.mask());
    AppendDouble(out, node.cardinality);
    AppendDouble(out, node.cost);
    AppendI32(out, node.relation);
    AppendI32(out, node.left);
    AppendI32(out, node.right);
    out.push_back(static_cast<char>(node.op));
  }
  return out;
}

bool DecodeSignature(Cursor& cur, OutcomeSignature* sig) {
  uint32_t status = 0;
  uint32_t trigger = 0;
  uint8_t best_effort = 0;
  if (!cur.ReadU32(&status) || status > kMaxStatusCode) return false;
  if (!cur.ReadDouble(&sig->cost) || !std::isfinite(sig->cost)) return false;
  if (!cur.ReadDouble(&sig->cardinality) ||
      !std::isfinite(sig->cardinality)) {
    return false;
  }
  if (!cur.ReadU64(&sig->inner_counter) ||
      !cur.ReadU64(&sig->csg_cmp_pair_counter) ||
      !cur.ReadU64(&sig->create_join_tree_calls) ||
      !cur.ReadU64(&sig->plans_stored)) {
    return false;
  }
  if (!cur.ReadU8(&best_effort) || best_effort > 1) return false;
  if (!cur.ReadU32(&trigger) || trigger > kMaxStatusCode) return false;
  sig->status = static_cast<StatusCode>(status);
  sig->best_effort = best_effort != 0;
  sig->trigger = static_cast<StatusCode>(trigger);
  return true;
}

/// Decodes one record payload into an entry, revalidating every field.
/// The stored hash is never read back — it is recomputed from the key —
/// and the tree is structurally re-verified (leaf masks, join-node mask
/// partitioning, child ordering via JoinTree::FromNodes), so a record
/// that passes cannot violate the cache's invariants.
bool DecodeEntry(std::string_view payload, CachedPlan* entry) {
  Cursor cur(payload);
  if (!cur.ReadBytes(kMaxKeyBytes, &entry->key) || entry->key.empty()) {
    return false;
  }
  if (!cur.ReadU64(&entry->generation)) return false;
  if (!cur.ReadBytes(kMaxAlgorithmBytes, &entry->algorithm)) return false;
  if (!DecodeSignature(cur, &entry->signature)) return false;
  if (!cur.ReadDouble(&entry->cost) || !std::isfinite(entry->cost)) {
    return false;
  }
  if (!cur.ReadDouble(&entry->cardinality) ||
      !std::isfinite(entry->cardinality)) {
    return false;
  }
  if (!cur.ReadDouble(&entry->recompute_seconds) ||
      !std::isfinite(entry->recompute_seconds) ||
      entry->recompute_seconds < 0) {
    return false;
  }
  uint32_t node_count = 0;
  if (!cur.ReadU32(&node_count) || node_count == 0 ||
      node_count > kMaxTreeNodes) {
    return false;
  }
  std::vector<JoinTreeNode> nodes;
  nodes.reserve(node_count);
  for (uint32_t i = 0; i < node_count; ++i) {
    JoinTreeNode node;
    uint64_t mask = 0;
    uint8_t op = 0;
    if (!cur.ReadU64(&mask) || !cur.ReadDouble(&node.cardinality) ||
        !std::isfinite(node.cardinality) || !cur.ReadDouble(&node.cost) ||
        !std::isfinite(node.cost) || !cur.ReadI32(&node.relation) ||
        !cur.ReadI32(&node.left) || !cur.ReadI32(&node.right) ||
        !cur.ReadU8(&op) || op > kMaxJoinOperator) {
      return false;
    }
    node.relations = NodeSet::FromMask(mask);
    node.op = static_cast<JoinOperator>(op);
    if (node.relation < -1 || node.relation >= kMaxRelations) {
      return false;
    }
    if (node.IsLeaf()) {
      if (mask != (uint64_t{1} << node.relation)) return false;
    } else {
      // Children must already exist and partition the parent's set.
      if (node.left < 0 || node.right < 0 ||
          node.left >= static_cast<int>(i) ||
          node.right >= static_cast<int>(i)) {
        return false;
      }
      const uint64_t left_mask = nodes[node.left].relations.mask();
      const uint64_t right_mask = nodes[node.right].relations.mask();
      if ((left_mask & right_mask) != 0 ||
          (left_mask | right_mask) != mask) {
        return false;
      }
    }
    nodes.push_back(node);
  }
  if (!cur.AtEnd()) return false;  // Trailing bytes: not our record.
  auto tree = JoinTree::FromNodes(std::move(nodes));
  if (!tree.ok()) return false;
  entry->plan = std::move(*tree);
  entry->hash = FingerprintHash(entry->key);
  return true;
}

// --- file I/O ---------------------------------------------------------

#ifndef _WIN32

Status WriteFileAtomic(const std::string& path, std::string_view data) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::Internal("snapshot: cannot open " + tmp + ": " +
                            std::strerror(errno));
  }
  size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      const std::string why = std::strerror(errno);
      ::close(fd);
      ::unlink(tmp.c_str());
      return Status::Internal("snapshot: write to " + tmp + " failed: " + why);
    }
    off += static_cast<size_t>(n);
  }
  // fsync BEFORE rename: the rename must never make durable a file whose
  // data blocks are still only in the page cache.
  if (::fsync(fd) != 0) {
    const std::string why = std::strerror(errno);
    ::close(fd);
    ::unlink(tmp.c_str());
    return Status::Internal("snapshot: fsync of " + tmp + " failed: " + why);
  }
  if (::close(fd) != 0) {
    ::unlink(tmp.c_str());
    return Status::Internal("snapshot: close of " + tmp + " failed: " +
                            std::string(std::strerror(errno)));
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const std::string why = std::strerror(errno);
    ::unlink(tmp.c_str());
    return Status::Internal("snapshot: rename to " + path + " failed: " + why);
  }
  // Durable directory entry: fsync the parent so the rename itself
  // survives a crash. Best-effort — some filesystems refuse directory
  // fsync, and the data is already safe either way.
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
  return Status();
}

/// Reads the snapshot into `out`. missing=true (and OK) when the file
/// does not exist.
Status ReadFile(const std::string& path, std::string* out, bool* missing) {
  *missing = false;
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) {
      *missing = true;
      return Status();
    }
    return Status::Internal("snapshot: cannot open " + path + ": " +
                            std::strerror(errno));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    const std::string why = std::strerror(errno);
    ::close(fd);
    return Status::Internal("snapshot: stat of " + path + " failed: " + why);
  }
  if (static_cast<uint64_t>(st.st_size) > kMaxSnapshotBytes) {
    // Implausibly large: refuse to read it into memory. The caller maps
    // an empty buffer to kBadHeader, which is the right typed answer.
    ::close(fd);
    out->clear();
    return Status();
  }
  out->resize(static_cast<size_t>(st.st_size));
  size_t off = 0;
  while (off < out->size()) {
    const ssize_t n = ::read(fd, out->data() + off, out->size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      const std::string why = std::strerror(errno);
      ::close(fd);
      return Status::Internal("snapshot: read of " + path + " failed: " + why);
    }
    if (n == 0) {
      out->resize(off);  // Shrank mid-read; parse what we got.
      break;
    }
    off += static_cast<size_t>(n);
  }
  ::close(fd);
  return Status();
}

#else  // _WIN32: no fsync guarantees; plain buffered I/O + rename.

Status WriteFileAtomic(const std::string& path, std::string_view data) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out.write(data.data(), static_cast<std::streamsize>(data.size()))) {
      return Status::Internal("snapshot: write to " + tmp + " failed");
    }
  }
  std::remove(path.c_str());
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::Internal("snapshot: rename to " + path + " failed");
  }
  return Status();
}

Status ReadFile(const std::string& path, std::string* out, bool* missing) {
  *missing = false;
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    *missing = true;
    return Status();
  }
  out->assign(std::istreambuf_iterator<char>(in),
              std::istreambuf_iterator<char>());
  return Status();
}

#endif  // _WIN32

}  // namespace

uint32_t SnapshotCrc32(std::string_view data) {
  // Table-driven CRC-32 (IEEE 802.3, reflected 0xEDB88320).
  static const auto table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
      }
      t[i] = c;
    }
    return t;
  }();
  uint32_t crc = 0xFFFFFFFFu;
  for (const char ch : data) {
    crc = table[(crc ^ static_cast<unsigned char>(ch)) & 0xff] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

std::string_view SnapshotLoadName(SnapshotLoad outcome) {
  switch (outcome) {
    case SnapshotLoad::kLoaded:
      return "loaded";
    case SnapshotLoad::kNoSnapshot:
      return "no_snapshot";
    case SnapshotLoad::kBadHeader:
      return "bad_header";
    case SnapshotLoad::kStale:
      return "stale";
  }
  return "unknown";
}

std::string SnapshotLoadStats::ToString() const {
  std::string out = "outcome=";
  out += SnapshotLoadName(outcome);
  out += " generation=" + std::to_string(generation);
  out += " declared=" + std::to_string(declared_records);
  out += " restored=" + std::to_string(restored);
  out += " skipped_corrupt=" + std::to_string(skipped_corrupt);
  out += " skipped_stale=" + std::to_string(skipped_stale);
  out += " skipped_rejected=" + std::to_string(skipped_rejected);
  out += " bytes=" + std::to_string(bytes);
  if (!detail.empty()) {
    out += " detail=\"" + detail + "\"";
  }
  return out;
}

std::string SnapshotSaveStats::ToString() const {
  return "written=" + std::to_string(written) +
         " skipped_stale=" + std::to_string(skipped_stale) +
         " bytes=" + std::to_string(bytes) +
         " generation=" + std::to_string(generation);
}

Result<SnapshotSaveStats> SaveSnapshot(const PlanCache& cache,
                                       const std::string& path) {
  if (path.empty()) {
    return Status::InvalidArgument("snapshot: empty path");
  }
  SnapshotSaveStats stats;
  stats.generation = cache.generation();
  std::string body;
  for (const CachedPlan& entry : cache.Export()) {
    if (entry.generation != stats.generation || !entry.plan.has_value()) {
      // Lazily-unreclaimed stale state never reaches disk.
      ++stats.skipped_stale;
      continue;
    }
    const std::string payload = EncodePayload(entry);
    AppendU32(body, static_cast<uint32_t>(payload.size()));
    body += payload;
    AppendU32(body, SnapshotCrc32(payload));
    ++stats.written;
  }
  std::string file;
  file.reserve(kHeaderBytes + body.size());
  file.append(kMagic, sizeof(kMagic));
  AppendU32(file, kFormatVersion);
  AppendU32(file, kQuantizeBucketsPerOctave);
  AppendU64(file, stats.generation);
  AppendU64(file, stats.written);
  AppendU32(file, SnapshotCrc32(std::string_view(file)));
  file += body;
  stats.bytes = file.size();
  JOINOPT_RETURN_IF_ERROR(WriteFileAtomic(path, file));
  return stats;
}

Result<SnapshotLoadStats> LoadSnapshot(PlanCache& cache,
                                       const std::string& path,
                                       uint64_t required_generation) {
  if (path.empty()) {
    return Status::InvalidArgument("snapshot: empty path");
  }
  SnapshotLoadStats stats;
  std::string data;
  bool missing = false;
  JOINOPT_RETURN_IF_ERROR(ReadFile(path, &data, &missing));
  if (missing) {
    stats.outcome = SnapshotLoad::kNoSnapshot;
    stats.detail = "no snapshot at " + path;
    return stats;
  }
  stats.bytes = data.size();
  Cursor cur(data);
  const auto bad_header = [&](std::string why) {
    stats.outcome = SnapshotLoad::kBadHeader;
    stats.detail = std::move(why);
    return stats;
  };
  if (data.size() < kHeaderBytes) {
    return bad_header("file shorter than the header");
  }
  if (std::memcmp(data.data(), kMagic, sizeof(kMagic)) != 0) {
    return bad_header("bad magic");
  }
  const uint32_t header_crc = SnapshotCrc32(cur.View(kHeaderBodyBytes));
  cur.Skip(sizeof(kMagic));
  uint32_t version = 0;
  uint32_t quant = 0;
  uint32_t stored_crc = 0;
  cur.ReadU32(&version);
  cur.ReadU32(&quant);
  cur.ReadU64(&stats.generation);
  cur.ReadU64(&stats.declared_records);
  cur.ReadU32(&stored_crc);
  if (stored_crc != header_crc) {
    stats.generation = 0;
    stats.declared_records = 0;
    return bad_header("header CRC mismatch");
  }
  if (version != kFormatVersion) {
    return bad_header("unsupported format version " + std::to_string(version));
  }
  if (quant != kQuantizeBucketsPerOctave) {
    return bad_header("quantization resolution mismatch (" +
                      std::to_string(quant) + " buckets/octave)");
  }
  if (required_generation != 0 && stats.generation != required_generation) {
    // The catalog moved since the save (or the snapshot claims a future
    // catalog). Entries keyed under other statistics are dropped
    // wholesale — never silently revalidated.
    stats.outcome = SnapshotLoad::kStale;
    stats.detail = "snapshot generation " + std::to_string(stats.generation) +
                   " != required " + std::to_string(required_generation);
    return stats;
  }
  stats.outcome = SnapshotLoad::kLoaded;
  // Adopt the persisted generation (forward only): inserts below are
  // stamped with it, and a cache already past it refuses them as stale.
  cache.AdvanceGenerationTo(stats.generation);
  while (!cur.AtEnd()) {
    uint32_t payload_len = 0;
    if (!cur.ReadU32(&payload_len) || payload_len > kMaxPayloadBytes ||
        payload_len + 4 > cur.remaining()) {
      // Framing lost: without a trustworthy length there is no way to
      // find the next record boundary. Count and stop — never scan.
      ++stats.skipped_corrupt;
      stats.detail = "framing lost at byte " + std::to_string(cur.position());
      break;
    }
    const std::string_view payload = cur.View(payload_len);
    cur.Skip(payload_len);
    uint32_t record_crc = 0;
    cur.ReadU32(&record_crc);
    if (record_crc != SnapshotCrc32(payload)) {
      ++stats.skipped_corrupt;
      continue;  // Framing intact: just this record is bad.
    }
    CachedPlan entry;
    if (!DecodeEntry(payload, &entry)) {
      ++stats.skipped_corrupt;
      continue;
    }
    if (entry.generation != stats.generation) {
      // The writer filters these, so this is a crafted or spliced record.
      ++stats.skipped_stale;
      continue;
    }
    switch (cache.Insert(std::move(entry))) {
      case CacheInsert::kInserted:
      case CacheInsert::kUpdated:
        ++stats.restored;
        break;
      case CacheInsert::kRejectedStale:
        ++stats.skipped_stale;
        break;
      case CacheInsert::kRejectedCapacity:
      case CacheInsert::kRejectedUncacheable:
        ++stats.skipped_rejected;
        break;
    }
  }
  return stats;
}

}  // namespace serve
}  // namespace joinopt
