#ifndef JOINOPT_SERVE_SNAPSHOT_H_
#define JOINOPT_SERVE_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "serve/plan_cache.h"
#include "util/status.h"

namespace joinopt {
namespace serve {

/// Crash-safe persistence for the plan cache.
///
/// Format (all integers little-endian, doubles as raw IEEE-754 bit
/// patterns so a restored hit replays the miss run bit-for-bit):
///
///   header  := magic[8]="JOPSNAP1" version:u32 quant:u32
///              generation:u64 record_count:u64 crc:u32
///   record  := payload_len:u32 payload[payload_len] crc:u32
///   payload := key_len:u32 key[key_len] generation:u64
///              algo_len:u32 algo[algo_len]
///              signature (status:u32 cost:u64 card:u64 inner:u64
///                         csg_cmp:u64 create_calls:u64 plans_stored:u64
///                         best_effort:u8 trigger:u32)
///              cost:u64 cardinality:u64 recompute_seconds:u64
///              node_count:u32 node[node_count]
///   node    := relations_mask:u64 cardinality:u64 cost:u64
///              relation:i32 left:i32 right:i32 op:u8
///
/// Each CRC is CRC-32 (IEEE) over the bytes it follows: the header CRC
/// covers the 32 bytes before it, a record CRC covers that record's
/// payload. `quant` pins the fingerprint quantization resolution
/// (kQuantizeBucketsPerOctave): keys computed under a different
/// resolution are incompatible, so a mismatch rejects the whole file.
/// `record_count` is advisory — the loader is EOF-driven and framing is
/// carried by the per-record length prefixes, so a torn tail or appended
/// junk degrades to skipped records, never to undefined behavior.
///
/// Crash safety: SaveSnapshot writes `path + ".tmp"`, fsyncs it, then
/// atomically rename(2)s it over `path` and fsyncs the parent directory.
/// A crash at any point leaves either the old complete snapshot or the
/// new complete snapshot at `path` — never a torn file.
///
/// Corruption tolerance: no input — truncated, bit-flipped, duplicated,
/// hostile lengths — may crash LoadSnapshot or poison the cache. A bad
/// header is a typed cold start (kBadHeader), a bad record is skipped
/// and counted, a generation mismatch is dropped, and every stored field
/// is revalidated (hash recomputed from the key, status codes ranged,
/// doubles checked finite, tree structure re-validated by
/// JoinTree::FromNodes) before an entry is offered to the cache.

/// Typed result of a load attempt. Everything except kLoaded is a cold
/// start; the distinctions tell the operator why.
enum class SnapshotLoad {
  /// Header valid; entries replayed (possibly zero, with corrupt or
  /// stale records skipped and counted).
  kLoaded,
  /// No snapshot file exists at the path — a first boot.
  kNoSnapshot,
  /// The file is too short, the magic/version/quantization do not match,
  /// or the header CRC fails. Nothing in the file can be trusted.
  kBadHeader,
  /// The snapshot was written under a different catalog generation than
  /// the caller requires (Catalog::generation() moved since the save).
  /// Entries are dropped wholesale, never silently revalidated.
  kStale,
};

std::string_view SnapshotLoadName(SnapshotLoad outcome);

struct SnapshotLoadStats {
  SnapshotLoad outcome = SnapshotLoad::kNoSnapshot;
  /// Generation stamped in the snapshot header (0 when unreadable).
  uint64_t generation = 0;
  /// Advisory record count from the header (what the writer intended).
  uint64_t declared_records = 0;
  /// Entries accepted by the cache (inserted or refreshed).
  uint64_t restored = 0;
  /// Records dropped by CRC/bounds/structural validation.
  uint64_t skipped_corrupt = 0;
  /// Records dropped because their generation stamp is not current.
  uint64_t skipped_stale = 0;
  /// Structurally valid records the cache refused (capacity, uncacheable).
  uint64_t skipped_rejected = 0;
  /// Snapshot file size in bytes (0 when missing).
  uint64_t bytes = 0;
  /// Human-readable note for non-kLoaded outcomes and framing stops.
  std::string detail;

  std::string ToString() const;
};

struct SnapshotSaveStats {
  /// Entries serialized into the snapshot.
  uint64_t written = 0;
  /// Resident entries dropped at save time: stamped with a generation
  /// older than the cache's current one (lazily-unreclaimed stale state
  /// never reaches disk).
  uint64_t skipped_stale = 0;
  /// Bytes in the finished snapshot file.
  uint64_t bytes = 0;
  /// Generation the snapshot was written under (the header stamp).
  uint64_t generation = 0;

  std::string ToString() const;
};

/// Serializes the cache's current-generation entries to `path` via the
/// temp-file + fsync + atomic-rename protocol above. Returns the save
/// stats, or a Status error when the filesystem refuses (open/write/
/// rename failures). Safe to call while other threads use the cache —
/// entries are copied out under the shard locks.
Result<SnapshotSaveStats> SaveSnapshot(const PlanCache& cache,
                                       const std::string& path);

/// Replays a snapshot into `cache`. Hostile input never returns a Status
/// error: every recoverable-or-not content problem maps to a typed
/// outcome in the returned stats (the Result error channel is reserved
/// for filesystem failures like an unreadable existing file).
///
/// `required_generation` is the caller's Catalog::generation() (0 = no
/// requirement): when nonzero and different from the header stamp, the
/// outcome is kStale and nothing is replayed. On kLoaded the cache's
/// generation is advanced to the header stamp first (never moved
/// backwards), so records from a snapshot older than the cache's own
/// stamp are refused by the generation check at insert.
Result<SnapshotLoadStats> LoadSnapshot(PlanCache& cache,
                                       const std::string& path,
                                       uint64_t required_generation = 0);

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) over `data`.
/// Exposed for tests and the fuzzer's mutation oracle.
uint32_t SnapshotCrc32(std::string_view data);

}  // namespace serve
}  // namespace joinopt

#endif  // JOINOPT_SERVE_SNAPSHOT_H_
