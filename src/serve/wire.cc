#include "serve/wire.h"

#include <cstring>
#include <utility>
#include <vector>

#include "bitset/node_set.h"
#include "dsl/directive.h"
#include "dsl/writer.h"
#include "plan/join_tree.h"
#include "serve/snapshot.h"

namespace joinopt {
namespace serve {

namespace {

constexpr uint32_t kMaxWireStatusCode =
    static_cast<uint32_t>(StatusCode::kUnavailable);
constexpr uint32_t kMaxWireJoinOperator =
    static_cast<uint32_t>(JoinOperator::kSortMerge);
/// A join tree over <= kMaxRelations leaves has <= 2n-1 nodes.
constexpr uint32_t kMaxWireTreeNodes = 2 * kMaxRelations - 1;
/// A simple graph over n relations has <= n(n-1)/2 edges.
constexpr uint32_t kMaxWireEdges = kMaxRelations * (kMaxRelations - 1) / 2;

void AppendU32(std::string& out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

uint32_t LoadU32(std::string_view data, size_t pos) {
  uint32_t out = 0;
  for (int i = 0; i < 4; ++i) {
    out |= static_cast<uint32_t>(static_cast<unsigned char>(data[pos + i]))
           << (8 * i);
  }
  return out;
}

Status LineError(int line, const std::string& why) {
  return Status::InvalidArgument("wire payload line " + std::to_string(line) +
                                 ": " + why);
}

/// Signed integer field (plan-node child indices are -1 for leaves).
Result<int> ParseIntField(std::string_view token, std::string_view what,
                          int line) {
  bool negative = false;
  std::string_view digits = token;
  if (!digits.empty() && digits[0] == '-') {
    negative = true;
    digits.remove_prefix(1);
  }
  Result<uint64_t> parsed = ParseU64Field(digits, what, line);
  if (!parsed.ok()) {
    return parsed.status();
  }
  if (*parsed > (uint64_t{1} << 30)) {
    return LineError(line, std::string(what) + " out of range");
  }
  const int value = static_cast<int>(*parsed);
  return negative ? -value : value;
}

Result<StatusCode> ParseStatusField(std::string_view token,
                                    std::string_view what, int line) {
  const std::optional<StatusCode> code = StatusCodeFromString(token);
  if (!code.has_value() ||
      static_cast<uint32_t>(*code) > kMaxWireStatusCode) {
    return LineError(line, "unknown " + std::string(what) + " \"" +
                               std::string(token) + "\"");
  }
  return *code;
}

/// Cursor over the parsed directive stream with arity checking.
class DirectiveReader {
 public:
  explicit DirectiveReader(std::string_view text)
      : directives_(ParseDirectives(text)) {}

  bool AtEnd() const { return pos_ == directives_.size(); }
  const Directive* Peek() const {
    return AtEnd() ? nullptr : &directives_[pos_];
  }
  const Directive& Next() { return directives_[pos_++]; }
  int LastLine() const {
    return directives_.empty() ? 1 : directives_.back().line;
  }

  /// Consumes the next directive, requiring keyword + exact arg count.
  Result<const Directive*> Expect(std::string_view keyword, size_t args) {
    if (AtEnd()) {
      return LineError(LastLine(),
                       "expected \"" + std::string(keyword) + "\", got end");
    }
    const Directive& d = Next();
    if (d.keyword != keyword) {
      return LineError(d.line, "expected \"" + std::string(keyword) +
                                   "\", got \"" + d.keyword + "\"");
    }
    if (d.args.size() != args) {
      return LineError(d.line, "\"" + d.keyword + "\" takes " +
                                   std::to_string(args) + " argument(s)");
    }
    return &d;
  }

 private:
  std::vector<Directive> directives_;
  size_t pos_ = 0;
};

void AppendSignature(std::string& out, const OutcomeSignature& sig) {
  out += "signature ";
  out += StatusCodeToString(sig.status);
  out += ' ';
  out += FormatDoubleShortest(sig.cost);
  out += ' ';
  out += FormatDoubleShortest(sig.cardinality);
  out += ' ';
  out += std::to_string(sig.inner_counter);
  out += ' ';
  out += std::to_string(sig.csg_cmp_pair_counter);
  out += ' ';
  out += std::to_string(sig.create_join_tree_calls);
  out += ' ';
  out += std::to_string(sig.plans_stored);
  out += sig.best_effort ? " 1 " : " 0 ";
  out += StatusCodeToString(sig.trigger);
  out += '\n';
}

Status DecodeSignature(const Directive& d, OutcomeSignature* sig) {
  if (d.args.size() != 9) {
    return LineError(d.line, "\"signature\" takes 9 arguments");
  }
  Result<StatusCode> status = ParseStatusField(d.args[0], "status", d.line);
  if (!status.ok()) return status.status();
  Result<double> cost = ParseDoubleField(d.args[1], "signature cost", d.line);
  if (!cost.ok()) return cost.status();
  Result<double> card =
      ParseDoubleField(d.args[2], "signature cardinality", d.line);
  if (!card.ok()) return card.status();
  Result<uint64_t> inner = ParseU64Field(d.args[3], "inner counter", d.line);
  if (!inner.ok()) return inner.status();
  Result<uint64_t> csg = ParseU64Field(d.args[4], "csg counter", d.line);
  if (!csg.ok()) return csg.status();
  Result<uint64_t> create = ParseU64Field(d.args[5], "create counter", d.line);
  if (!create.ok()) return create.status();
  Result<uint64_t> stored = ParseU64Field(d.args[6], "plans stored", d.line);
  if (!stored.ok()) return stored.status();
  Result<bool> best = ParseBoolField(d.args[7], "best_effort", d.line);
  if (!best.ok()) return best.status();
  Result<StatusCode> trigger = ParseStatusField(d.args[8], "trigger", d.line);
  if (!trigger.ok()) return trigger.status();
  sig->status = *status;
  sig->cost = *cost;
  sig->cardinality = *card;
  sig->inner_counter = *inner;
  sig->csg_cmp_pair_counter = *csg;
  sig->create_join_tree_calls = *create;
  sig->plans_stored = *stored;
  sig->best_effort = *best;
  sig->trigger = *trigger;
  return Status::OK();
}

/// Preamble shared by both payloads: version line + kind line.
Status ExpectPreamble(DirectiveReader& reader, std::string_view kind) {
  Result<const Directive*> version = reader.Expect("joinopt-wire", 1);
  if (!version.ok()) return version.status();
  if ((*version)->args[0] != "v1") {
    return LineError((*version)->line, "unsupported wire payload version \"" +
                                           (*version)->args[0] + "\"");
  }
  Result<const Directive*> k = reader.Expect(kind, 0);
  if (!k.ok()) return k.status();
  return Status::OK();
}

}  // namespace

std::string EncodeFrame(FrameType type, std::string_view payload) {
  std::string out;
  out.reserve(kWireFrameOverheadBytes + payload.size());
  out.append(kWireMagic, sizeof(kWireMagic));
  out.push_back(static_cast<char>(type));
  AppendU32(out, static_cast<uint32_t>(payload.size()));
  out.append(payload.data(), payload.size());
  const std::string_view checked(out.data() + sizeof(kWireMagic),
                                 out.size() - sizeof(kWireMagic));
  AppendU32(out, SnapshotCrc32(checked));
  return out;
}

FrameDecodeResult DecodeFrame(std::string_view buffer) {
  FrameDecodeResult result;
  const auto corrupt = [&result](std::string why) {
    result.outcome = FrameDecode::kCorrupt;
    result.detail = std::move(why);
    return result;
  };
  if (buffer.empty()) {
    result.outcome = FrameDecode::kIncomplete;
    return result;
  }
  // Magic is checked byte-by-byte over whatever has arrived, so garbage
  // is rejected from the very first wrong byte instead of stalling in
  // kIncomplete until a full header trickles in.
  const size_t magic_avail =
      buffer.size() < sizeof(kWireMagic) ? buffer.size() : sizeof(kWireMagic);
  if (std::memcmp(buffer.data(), kWireMagic, magic_avail) != 0) {
    return corrupt("bad magic");
  }
  if (buffer.size() < kWireHeaderBytes) {
    result.outcome = FrameDecode::kIncomplete;
    return result;
  }
  const uint8_t raw_type =
      static_cast<unsigned char>(buffer[sizeof(kWireMagic)]);
  if (raw_type != static_cast<uint8_t>(FrameType::kRequest) &&
      raw_type != static_cast<uint8_t>(FrameType::kResponse)) {
    return corrupt("unknown frame type " + std::to_string(raw_type));
  }
  const uint32_t payload_len = LoadU32(buffer, sizeof(kWireMagic) + 1);
  if (payload_len > kMaxWirePayloadBytes) {
    // Hostile length: reject before believing it, let alone allocating.
    return corrupt("payload length " + std::to_string(payload_len) +
                   " exceeds ceiling " + std::to_string(kMaxWirePayloadBytes));
  }
  const size_t total = kWireFrameOverheadBytes + payload_len;
  if (buffer.size() < total) {
    result.outcome = FrameDecode::kIncomplete;
    return result;
  }
  const std::string_view checked =
      buffer.substr(sizeof(kWireMagic), 1 + 4 + payload_len);
  const uint32_t stored_crc = LoadU32(buffer, total - 4);
  if (stored_crc != SnapshotCrc32(checked)) {
    return corrupt("frame CRC mismatch");
  }
  result.outcome = FrameDecode::kFrame;
  result.frame.type = static_cast<FrameType>(raw_type);
  result.frame.payload.assign(buffer.substr(kWireHeaderBytes, payload_len));
  result.consumed = total;
  return result;
}

std::string EncodeRequestPayload(const ServeRequest& request) {
  std::string out = "joinopt-wire v1\nrequest\n";
  if (!request.orderer.empty()) {
    out += "orderer " + request.orderer + "\n";
  }
  out += "cost " + request.cost_model + "\n";
  if (request.memo_entry_budget != 0) {
    out += "budget " + std::to_string(request.memo_entry_budget) + "\n";
  }
  if (request.deadline_seconds != 0) {
    out += "deadline_s " + FormatDoubleShortest(request.deadline_seconds) +
           "\n";
  }
  if (request.threads != 0) {
    out += "threads " + std::to_string(request.threads) + "\n";
  }
  // The fault schedule is deliberately NOT serialized: chaos seams never
  // cross the wire.
  const QueryGraph& graph = request.graph;
  out += "graph " + std::to_string(graph.relation_count()) + " " +
         std::to_string(graph.edge_count()) + "\n";
  for (int i = 0; i < graph.relation_count(); ++i) {
    out += "rel " + std::to_string(i) + " " +
           FormatDoubleShortest(graph.cardinality(i)) + "\n";
  }
  for (const JoinEdge& edge : graph.edges()) {
    out += "join " + std::to_string(edge.left) + " " +
           std::to_string(edge.right) + " " +
           FormatDoubleShortest(edge.selectivity) + "\n";
  }
  out += "end\n";
  return out;
}

Result<ServeRequest> DecodeRequestPayload(std::string_view text) {
  DirectiveReader reader(text);
  JOINOPT_RETURN_IF_ERROR(ExpectPreamble(reader, "request"));
  ServeRequest request;
  bool saw_orderer = false;
  bool saw_cost = false;
  bool saw_budget = false;
  bool saw_deadline = false;
  bool saw_threads = false;
  // Optional scalar fields, each at most once, in any order before graph.
  while (!reader.AtEnd() && reader.Peek()->keyword != "graph") {
    const Directive& d = reader.Next();
    const auto once = [&d](bool* seen) -> Status {
      if (*seen) {
        return LineError(d.line, "duplicate \"" + d.keyword + "\"");
      }
      *seen = true;
      return Status::OK();
    };
    if (d.keyword == "orderer") {
      JOINOPT_RETURN_IF_ERROR(once(&saw_orderer));
      if (d.args.size() != 1) {
        return LineError(d.line, "\"orderer\" takes 1 argument");
      }
      request.orderer = d.args[0];
    } else if (d.keyword == "cost") {
      JOINOPT_RETURN_IF_ERROR(once(&saw_cost));
      if (d.args.size() != 1) {
        return LineError(d.line, "\"cost\" takes 1 argument");
      }
      request.cost_model = d.args[0];
    } else if (d.keyword == "budget") {
      JOINOPT_RETURN_IF_ERROR(once(&saw_budget));
      if (d.args.size() != 1) {
        return LineError(d.line, "\"budget\" takes 1 argument");
      }
      Result<uint64_t> v = ParseU64Field(d.args[0], "budget", d.line);
      if (!v.ok()) return v.status();
      request.memo_entry_budget = *v;
    } else if (d.keyword == "deadline_s") {
      JOINOPT_RETURN_IF_ERROR(once(&saw_deadline));
      if (d.args.size() != 1) {
        return LineError(d.line, "\"deadline_s\" takes 1 argument");
      }
      Result<double> v = ParseDoubleField(d.args[0], "deadline", d.line);
      if (!v.ok()) return v.status();
      request.deadline_seconds = *v;
    } else if (d.keyword == "threads") {
      JOINOPT_RETURN_IF_ERROR(once(&saw_threads));
      if (d.args.size() != 1) {
        return LineError(d.line, "\"threads\" takes 1 argument");
      }
      Result<int> v = ParseIntField(d.args[0], "threads", d.line);
      if (!v.ok()) return v.status();
      if (*v < 0) return LineError(d.line, "threads must be >= 0");
      request.threads = *v;
    } else {
      return LineError(d.line, "unknown request field \"" + d.keyword + "\"");
    }
  }
  if (!saw_cost) {
    return LineError(reader.LastLine(), "missing \"cost\"");
  }
  Result<const Directive*> graph_line = reader.Expect("graph", 2);
  if (!graph_line.ok()) return graph_line.status();
  const int line = (*graph_line)->line;
  Result<uint64_t> rel_count =
      ParseU64Field((*graph_line)->args[0], "relation count", line);
  if (!rel_count.ok()) return rel_count.status();
  Result<uint64_t> edge_count =
      ParseU64Field((*graph_line)->args[1], "edge count", line);
  if (!edge_count.ok()) return edge_count.status();
  if (*rel_count == 0 || *rel_count > static_cast<uint64_t>(kMaxRelations)) {
    return LineError(line, "relation count out of range");
  }
  if (*edge_count > kMaxWireEdges) {
    return LineError(line, "edge count out of range");
  }
  for (uint64_t i = 0; i < *rel_count; ++i) {
    Result<const Directive*> rel = reader.Expect("rel", 2);
    if (!rel.ok()) return rel.status();
    Result<int> index = ParseIntField((*rel)->args[0], "relation index",
                                      (*rel)->line);
    if (!index.ok()) return index.status();
    if (*index != static_cast<int>(i)) {
      return LineError((*rel)->line, "relation index out of order");
    }
    Result<double> card =
        ParseDoubleField((*rel)->args[1], "cardinality", (*rel)->line);
    if (!card.ok()) return card.status();
    Result<int> added = request.graph.AddRelation(*card);
    if (!added.ok()) {
      return LineError((*rel)->line, added.status().message());
    }
  }
  for (uint64_t i = 0; i < *edge_count; ++i) {
    Result<const Directive*> join = reader.Expect("join", 3);
    if (!join.ok()) return join.status();
    Result<int> left = ParseIntField((*join)->args[0], "edge endpoint",
                                     (*join)->line);
    if (!left.ok()) return left.status();
    Result<int> right = ParseIntField((*join)->args[1], "edge endpoint",
                                      (*join)->line);
    if (!right.ok()) return right.status();
    Result<double> sel =
        ParseDoubleField((*join)->args[2], "selectivity", (*join)->line);
    if (!sel.ok()) return sel.status();
    const Status added = request.graph.AddEdge(*left, *right, *sel);
    if (!added.ok()) {
      return LineError((*join)->line, added.message());
    }
  }
  Result<const Directive*> end = reader.Expect("end", 0);
  if (!end.ok()) return end.status();
  if (!reader.AtEnd()) {
    return LineError(reader.Peek()->line, "trailing content after \"end\"");
  }
  return request;
}

std::string EncodeResponsePayload(const ServeResponse& response) {
  std::string out = "joinopt-wire v1\nresponse\n";
  out += "status ";
  out += StatusCodeToString(response.status.code());
  out += '\n';
  if (!response.status.message().empty()) {
    out += "message " + response.status.message() + "\n";
  }
  if (!response.algorithm.empty()) {
    out += "algorithm " + response.algorithm + "\n";
  }
  out += "cost " + FormatDoubleShortest(response.cost) + "\n";
  out += "cardinality " + FormatDoubleShortest(response.cardinality) + "\n";
  out += std::string("cache_hit ") + (response.cache_hit ? "1" : "0") + "\n";
  out += std::string("shed ") + (response.shed ? "1" : "0") + "\n";
  out += "generation " + std::to_string(response.generation) + "\n";
  out += "queue_s " + FormatDoubleShortest(response.queue_seconds) + "\n";
  out += "exec_s " + FormatDoubleShortest(response.exec_seconds) + "\n";
  AppendSignature(out, response.signature);
  if (response.plan.has_value()) {
    const std::vector<JoinTreeNode>& nodes = response.plan->nodes();
    out += "plan " + std::to_string(nodes.size()) + "\n";
    for (const JoinTreeNode& node : nodes) {
      out += "node " + std::to_string(node.relations.mask()) + " " +
             FormatDoubleShortest(node.cardinality) + " " +
             FormatDoubleShortest(node.cost) + " " +
             std::to_string(node.relation) + " " + std::to_string(node.left) +
             " " + std::to_string(node.right) + " " +
             std::to_string(static_cast<int>(node.op)) + "\n";
    }
  }
  out += "end\n";
  return out;
}

Result<ServeResponse> DecodeResponsePayload(std::string_view text) {
  DirectiveReader reader(text);
  JOINOPT_RETURN_IF_ERROR(ExpectPreamble(reader, "response"));
  ServeResponse response;
  Result<const Directive*> status_line = reader.Expect("status", 1);
  if (!status_line.ok()) return status_line.status();
  Result<StatusCode> code =
      ParseStatusField((*status_line)->args[0], "status", (*status_line)->line);
  if (!code.ok()) return code.status();
  std::string message;
  if (!reader.AtEnd() && reader.Peek()->keyword == "message") {
    const Directive& d = reader.Next();
    if (d.args.empty()) {
      return LineError(d.line, "\"message\" takes free text");
    }
    message = d.JoinedArgs();
  }
  if (*code == StatusCode::kOk) {
    if (!message.empty()) {
      return LineError((*status_line)->line, "Ok status with a message");
    }
    response.status = Status::OK();
  } else {
    response.status = Status(*code, std::move(message));
  }
  if (!reader.AtEnd() && reader.Peek()->keyword == "algorithm") {
    const Directive& d = reader.Next();
    if (d.args.size() != 1) {
      return LineError(d.line, "\"algorithm\" takes 1 argument");
    }
    response.algorithm = d.args[0];
  }
  Result<const Directive*> cost_line = reader.Expect("cost", 1);
  if (!cost_line.ok()) return cost_line.status();
  Result<double> cost =
      ParseDoubleField((*cost_line)->args[0], "cost", (*cost_line)->line);
  if (!cost.ok()) return cost.status();
  response.cost = *cost;
  Result<const Directive*> card_line = reader.Expect("cardinality", 1);
  if (!card_line.ok()) return card_line.status();
  Result<double> card = ParseDoubleField((*card_line)->args[0], "cardinality",
                                         (*card_line)->line);
  if (!card.ok()) return card.status();
  response.cardinality = *card;
  Result<const Directive*> hit_line = reader.Expect("cache_hit", 1);
  if (!hit_line.ok()) return hit_line.status();
  Result<bool> hit =
      ParseBoolField((*hit_line)->args[0], "cache_hit", (*hit_line)->line);
  if (!hit.ok()) return hit.status();
  response.cache_hit = *hit;
  Result<const Directive*> shed_line = reader.Expect("shed", 1);
  if (!shed_line.ok()) return shed_line.status();
  Result<bool> shed =
      ParseBoolField((*shed_line)->args[0], "shed", (*shed_line)->line);
  if (!shed.ok()) return shed.status();
  response.shed = *shed;
  Result<const Directive*> gen_line = reader.Expect("generation", 1);
  if (!gen_line.ok()) return gen_line.status();
  Result<uint64_t> gen =
      ParseU64Field((*gen_line)->args[0], "generation", (*gen_line)->line);
  if (!gen.ok()) return gen.status();
  response.generation = *gen;
  Result<const Directive*> queue_line = reader.Expect("queue_s", 1);
  if (!queue_line.ok()) return queue_line.status();
  Result<double> queue_s = ParseDoubleField((*queue_line)->args[0], "queue_s",
                                            (*queue_line)->line);
  if (!queue_s.ok()) return queue_s.status();
  response.queue_seconds = *queue_s;
  Result<const Directive*> exec_line = reader.Expect("exec_s", 1);
  if (!exec_line.ok()) return exec_line.status();
  Result<double> exec_s = ParseDoubleField((*exec_line)->args[0], "exec_s",
                                           (*exec_line)->line);
  if (!exec_s.ok()) return exec_s.status();
  response.exec_seconds = *exec_s;
  if (reader.AtEnd()) {
    return LineError(reader.LastLine(), "expected \"signature\", got end");
  }
  const Directive& sig_line = reader.Next();
  if (sig_line.keyword != "signature") {
    return LineError(sig_line.line, "expected \"signature\", got \"" +
                                        sig_line.keyword + "\"");
  }
  JOINOPT_RETURN_IF_ERROR(DecodeSignature(sig_line, &response.signature));
  if (!reader.AtEnd() && reader.Peek()->keyword == "plan") {
    Result<const Directive*> plan_line = reader.Expect("plan", 1);
    if (!plan_line.ok()) return plan_line.status();
    Result<uint64_t> node_count = ParseU64Field(
        (*plan_line)->args[0], "plan node count", (*plan_line)->line);
    if (!node_count.ok()) return node_count.status();
    if (*node_count == 0 || *node_count > kMaxWireTreeNodes) {
      return LineError((*plan_line)->line, "plan node count out of range");
    }
    std::vector<JoinTreeNode> nodes;
    nodes.reserve(*node_count);
    for (uint64_t i = 0; i < *node_count; ++i) {
      Result<const Directive*> node_line = reader.Expect("node", 7);
      if (!node_line.ok()) return node_line.status();
      const Directive& d = **node_line;
      JoinTreeNode node;
      Result<uint64_t> mask = ParseU64Field(d.args[0], "node mask", d.line);
      if (!mask.ok()) return mask.status();
      Result<double> node_card =
          ParseDoubleField(d.args[1], "node cardinality", d.line);
      if (!node_card.ok()) return node_card.status();
      Result<double> node_cost =
          ParseDoubleField(d.args[2], "node cost", d.line);
      if (!node_cost.ok()) return node_cost.status();
      Result<int> relation = ParseIntField(d.args[3], "node relation", d.line);
      if (!relation.ok()) return relation.status();
      Result<int> left = ParseIntField(d.args[4], "node left", d.line);
      if (!left.ok()) return left.status();
      Result<int> right = ParseIntField(d.args[5], "node right", d.line);
      if (!right.ok()) return right.status();
      Result<int> op = ParseIntField(d.args[6], "node op", d.line);
      if (!op.ok()) return op.status();
      if (*op < 0 || static_cast<uint32_t>(*op) > kMaxWireJoinOperator) {
        return LineError(d.line, "node op out of range");
      }
      if (*relation < -1 || *relation >= kMaxRelations) {
        return LineError(d.line, "node relation out of range");
      }
      node.relations = NodeSet::FromMask(*mask);
      node.cardinality = *node_card;
      node.cost = *node_cost;
      node.relation = *relation;
      node.left = *left;
      node.right = *right;
      node.op = static_cast<JoinOperator>(*op);
      // Mask discipline beyond what FromNodes's ordering check covers:
      // a leaf's set is the singleton of its relation, and an interior
      // node's set is the DISJOINT union of its children's. A crafted
      // node list that passes cannot violate JoinTree's invariants.
      if (node.IsLeaf()) {
        if (node.relations != NodeSet::Singleton(node.relation)) {
          return LineError(d.line, "leaf mask does not match its relation");
        }
      } else {
        if (node.left < 0 || node.right < 0 ||
            node.left >= static_cast<int>(i) ||
            node.right >= static_cast<int>(i)) {
          return LineError(d.line, "plan children must precede their parent");
        }
        const NodeSet lhs = nodes[node.left].relations;
        const NodeSet rhs = nodes[node.right].relations;
        if (lhs.Intersects(rhs) || lhs.Union(rhs) != node.relations) {
          return LineError(d.line,
                           "plan node mask is not the disjoint union of its "
                           "children");
        }
      }
      nodes.push_back(node);
    }
    // Node ordering (children precede parents) is revalidated here.
    Result<JoinTree> tree = JoinTree::FromNodes(std::move(nodes));
    if (!tree.ok()) {
      return LineError(reader.LastLine(),
                       "plan rejected: " + tree.status().message());
    }
    response.plan = std::move(*tree);
  }
  Result<const Directive*> end = reader.Expect("end", 0);
  if (!end.ok()) return end.status();
  if (!reader.AtEnd()) {
    return LineError(reader.Peek()->line, "trailing content after \"end\"");
  }
  return response;
}

}  // namespace serve
}  // namespace joinopt
