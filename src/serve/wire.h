#ifndef JOINOPT_SERVE_WIRE_H_
#define JOINOPT_SERVE_WIRE_H_

/// The joinopt wire protocol (DESIGN.md §11): a versioned length-prefixed
/// binary frame carrying a directive-text payload.
///
///   frame   := magic type payload_len payload crc
///   magic   := "JOPW1"                      (5 bytes)
///   type    := u8                           (1 = request, 2 = response)
///   payload_len := u32 LE                   (<= kMaxWirePayloadBytes)
///   payload := payload_len bytes of directive text
///   crc     := u32 LE, CRC-32 (IEEE) over type + payload_len + payload
///              — the same polynomial/helper as the snapshot format
///
/// The payload is the existing DSL directive grammar (dsl/directive.h):
/// one keyword + arguments per line, every double printed via
/// FormatDoubleShortest so decode(encode(x)) is bit-for-bit. The payload
/// grammars are canonical and strict — exactly one spelling per message,
/// unknown or duplicated keywords rejected — so any frame that decodes
/// re-encodes to identical bytes (the fuzz oracle holds survivors to
/// that).
///
/// Decoding is streaming and hostile-input-safe: every outcome is a
/// typed value (frame / need-more-bytes / corrupt-with-reason), lengths
/// are ceiling-checked before any allocation, and nothing in this layer
/// aborts. A ServeRequest's fault-injection schedule deliberately has NO
/// wire spelling: chaos seams are armed by the process that owns them,
/// never accepted from the network.

#include <cstdint>
#include <string>
#include <string_view>

#include "serve/service.h"
#include "util/status.h"

namespace joinopt {
namespace serve {

/// Frame magic and hostile-length ceiling (mirrors the snapshot payload
/// ceiling in DESIGN.md §10: a real message is a few KB; anything near
/// the ceiling is corruption or an attack).
inline constexpr char kWireMagic[5] = {'J', 'O', 'P', 'W', '1'};
inline constexpr uint32_t kMaxWirePayloadBytes = uint32_t{1} << 22;
/// magic + type + payload_len.
inline constexpr size_t kWireHeaderBytes = sizeof(kWireMagic) + 1 + 4;
/// header + crc: the size of an empty-payload frame.
inline constexpr size_t kWireFrameOverheadBytes = kWireHeaderBytes + 4;

enum class FrameType : uint8_t {
  kRequest = 1,
  kResponse = 2,
};

struct WireFrame {
  FrameType type = FrameType::kRequest;
  std::string payload;
};

/// Streaming decode outcomes. kIncomplete is not an error: feed more
/// bytes and call again. kCorrupt means the buffer can never become a
/// valid frame — the connection's framing is lost and the peer must
/// close (there is no trustworthy way to find the next boundary).
enum class FrameDecode {
  kFrame,
  kIncomplete,
  kCorrupt,
};

struct FrameDecodeResult {
  FrameDecode outcome = FrameDecode::kIncomplete;
  /// Valid when outcome == kFrame.
  WireFrame frame;
  /// Bytes consumed from the front of the buffer (kFrame only).
  size_t consumed = 0;
  /// Why, when outcome == kCorrupt.
  std::string detail;
};

/// Encodes one frame. `payload` must be <= kMaxWirePayloadBytes (larger
/// payloads are a programming error upstream; the encoder clamps by
/// refusing at decode time anyway, so Encode asserts nothing and the
/// oversized frame is rejected by every conforming peer).
std::string EncodeFrame(FrameType type, std::string_view payload);

/// Attempts to decode one frame from the front of `buffer`. Never
/// throws, never aborts, never reads past the buffer.
FrameDecodeResult DecodeFrame(std::string_view buffer);

/// Payload codecs: ServeRequest/ServeResponse <-> canonical directive
/// text. Decoders return line-anchored kInvalidArgument on malformed
/// content (valid frame, bad payload — the connection survives those).
/// EncodeRequestPayload never emits the fault schedule and
/// DecodeRequestPayload has no grammar for one (faults is always empty
/// after decode).
std::string EncodeRequestPayload(const ServeRequest& request);
Result<ServeRequest> DecodeRequestPayload(std::string_view text);

std::string EncodeResponsePayload(const ServeResponse& response);
Result<ServeResponse> DecodeResponsePayload(std::string_view text);

}  // namespace serve
}  // namespace joinopt

#endif  // JOINOPT_SERVE_WIRE_H_
