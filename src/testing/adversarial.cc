#include "testing/adversarial.h"

#include <cmath>
#include <limits>

namespace joinopt {
namespace testing {

void ApplyExtremeStatistics(QueryGraph& graph, Random& rng) {
  for (int i = 0; i < graph.relation_count(); ++i) {
    // Log-uniform over [1, 1e305]: most draws land deep in overflow
    // territory once a handful are multiplied together.
    const double exponent = rng.UniformDouble(0.0, 305.0);
    StatsCorruptor::SetCardinality(graph, i, std::pow(10.0, exponent));
  }
  for (int e = 0; e < graph.edge_count(); ++e) {
    const double exponent = rng.UniformDouble(-305.0, 0.0);
    // pow(10, 0) == 1.0 keeps the upper bound legal.
    StatsCorruptor::SetSelectivity(graph, e, std::pow(10.0, exponent));
  }
}

void CorruptOneStatistic(QueryGraph& graph, Random& rng) {
  constexpr double kBadCardinalities[] = {
      std::numeric_limits<double>::quiet_NaN(),
      std::numeric_limits<double>::infinity(), 0.0, -42.0};
  constexpr double kBadSelectivities[] = {
      std::numeric_limits<double>::quiet_NaN(), 0.0, 1.5, -0.25};
  const bool corrupt_edge =
      graph.edge_count() > 0 && rng.Bernoulli(0.5);
  if (corrupt_edge) {
    const int edge = static_cast<int>(rng.Uniform(graph.edge_count()));
    StatsCorruptor::SetSelectivity(graph, edge,
                                   kBadSelectivities[rng.Uniform(4)]);
  } else {
    const int relation =
        static_cast<int>(rng.Uniform(graph.relation_count()));
    StatsCorruptor::SetCardinality(graph, relation,
                                   kBadCardinalities[rng.Uniform(4)]);
  }
}

}  // namespace testing
}  // namespace joinopt
