#ifndef JOINOPT_TESTING_ADVERSARIAL_H_
#define JOINOPT_TESTING_ADVERSARIAL_H_

#include <stdexcept>

#include "core/optimizer_context.h"
#include "graph/query_graph.h"
#include "testing/fault_injection.h"
#include "util/random.h"

namespace joinopt {
namespace testing {

/// Validation-bypassing statistics writer. QueryGraph's builders reject
/// non-finite cardinalities and out-of-range selectivities at insertion,
/// which is exactly right for production — and exactly wrong for testing
/// the downstream defenses (ValidateGraphStatistics, saturation). This
/// friend-class backdoor plants the illegal values those defenses exist
/// to catch. Test-only by construction: it lives in src/testing and no
/// library code calls it except the kAdversarialStats fault point.
class StatsCorruptor {
 public:
  /// Overwrites relation `i`'s cardinality with an arbitrary double
  /// (NaN, inf, 0, negative — anything).
  static void SetCardinality(QueryGraph& graph, int i, double value) {
    graph.cardinalities_[i] = value;
  }

  /// Overwrites edge `edge_id`'s selectivity with an arbitrary double.
  static void SetSelectivity(QueryGraph& graph, int edge_id, double value) {
    graph.edges_[edge_id].selectivity = value;
  }
};

/// Rewrites `graph`'s statistics with legal-but-extreme values drawn from
/// `rng`: cardinalities up to 1e305 and selectivities down to 1e-305.
/// Every value passes ValidateGraphStatistics, but products overflow /
/// underflow almost immediately — the workload the saturating arithmetic
/// in cost/saturation.h exists for.
void ApplyExtremeStatistics(QueryGraph& graph, Random& rng);

/// Plants one illegal statistic (chosen by `rng`: NaN, +inf, 0, or a
/// negative cardinality; 0, >1, or NaN selectivity) into `graph`. Every
/// optimizer must then fail with kDegenerateStatistics.
void CorruptOneStatistic(QueryGraph& graph, Random& rng);

/// The exception a hostile TraceSink throws; distinct type so tests can
/// assert nothing swallows it into a catch(std::runtime_error) elsewhere.
class TraceSinkError : public std::runtime_error {
 public:
  TraceSinkError() : std::runtime_error("injected trace-sink failure") {}
};

/// A TraceSink that throws TraceSinkError when the kTraceSink fault point
/// fires (every callback counts one arrival). The library contract under
/// test: the optimizer converts the escape into kInternal and never
/// crashes, leaks, or corrupts the memo.
class ThrowingTraceSink : public TraceSink {
 public:
  void OnAlgorithmStart(std::string_view, const QueryGraph&) override {
    MaybeThrow();
  }
  void OnCsgCmpPair(NodeSet, NodeSet) override { MaybeThrow(); }
  void OnPlanInserted(NodeSet, double, double) override { MaybeThrow(); }
  void OnPruned(NodeSet, double, double) override { MaybeThrow(); }
  void OnFallback(std::string_view, std::string_view,
                  const Status&) override {
    MaybeThrow();
  }

 private:
  static void MaybeThrow() {
    if (FaultInjector::Instance().ShouldFire(FaultPoint::kTraceSink)) {
      throw TraceSinkError();
    }
  }
};

}  // namespace testing
}  // namespace joinopt

#endif  // JOINOPT_TESTING_ADVERSARIAL_H_
