#include "testing/fault_injection.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <string>

namespace joinopt {
namespace testing {

namespace {

/// SplitMix64: the step schedule for seed mode. Deliberately independent
/// of util/random.h so reseeding the workload generators cannot shift
/// fault schedules (and vice versa).
uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Strict u64 parse: the whole token must be digits. An unset or empty
/// variable reads as 0 ("never"); anything else malformed is an error —
/// a typo'd fault knob must abort the harness, not silently test nothing.
Status EnvU64(const char* name, uint64_t* out) {
  const char* value = std::getenv(name);
  *out = 0;
  if (value == nullptr || *value == '\0') {
    return Status::OK();
  }
  char* end = nullptr;
  errno = 0;
  const uint64_t parsed = std::strtoull(value, &end, 10);
  if (end == value || *end != '\0' || errno == ERANGE) {
    return Status::InvalidArgument(std::string(name) + "='" + value +
                                   "' is not an unsigned integer");
  }
  *out = parsed;
  return Status::OK();
}

Result<FaultPoint> FaultPointFromName(std::string_view name) {
  for (int p = 0; p < kFaultPointCount; ++p) {
    const FaultPoint point = static_cast<FaultPoint>(p);
    if (FaultPointName(point) == name) {
      return point;
    }
  }
  return Status::InvalidArgument("unknown fault point '" +
                                 std::string(name) + "'");
}

}  // namespace

Result<FaultConfig> FaultConfigFromEnv() {
  FaultConfig config;
  JOINOPT_RETURN_IF_ERROR(EnvU64("JOINOPT_FAULT_SEED", &config.seed));
  JOINOPT_RETURN_IF_ERROR(
      EnvU64("JOINOPT_FAULT_ALLOC_AT", &config.at(FaultPoint::kArenaAlloc)));
  JOINOPT_RETURN_IF_ERROR(
      EnvU64("JOINOPT_FAULT_TRACE_AT", &config.at(FaultPoint::kTraceSink)));
  JOINOPT_RETURN_IF_ERROR(
      EnvU64("JOINOPT_FAULT_DEADLINE_AT", &config.at(FaultPoint::kDeadline)));
  JOINOPT_RETURN_IF_ERROR(EnvU64("JOINOPT_FAULT_STATS_AT",
                                 &config.at(FaultPoint::kAdversarialStats)));
  return config;
}

std::string ScheduleToString(const FaultConfig& config) {
  std::string out;
  const auto append = [&out](std::string_view key, uint64_t value) {
    if (!out.empty()) {
      out += ',';
    }
    out += key;
    out += '=';
    out += std::to_string(value);
  };
  if (config.seed != 0) {
    append("seed", config.seed);
    append("horizon", config.seed_horizon);
  }
  for (int p = 0; p < kFaultPointCount; ++p) {
    if (config.fire_at[p] != 0) {
      append(FaultPointName(static_cast<FaultPoint>(p)), config.fire_at[p]);
    }
  }
  return out.empty() ? "none" : out;
}

Result<FaultConfig> ParseFaultSchedule(std::string_view text) {
  FaultConfig config;
  if (text.empty() || text == "none") {
    return config;
  }
  size_t pos = 0;
  while (pos <= text.size()) {
    const size_t comma = text.find(',', pos);
    const std::string_view item = text.substr(
        pos, comma == std::string_view::npos ? std::string_view::npos
                                             : comma - pos);
    pos = comma == std::string_view::npos ? text.size() + 1 : comma + 1;
    const size_t eq = item.find('=');
    if (eq == std::string_view::npos) {
      return Status::InvalidArgument("fault schedule item '" +
                                     std::string(item) +
                                     "' is missing '='");
    }
    const std::string_view key = item.substr(0, eq);
    const std::string_view value = item.substr(eq + 1);
    uint64_t step = 0;
    {
      char* end = nullptr;
      const std::string value_str(value);
      errno = 0;
      step = std::strtoull(value_str.c_str(), &end, 10);
      // strtoull tolerates signs and leading whitespace; a schedule step
      // is digits only.
      if (value_str.empty() || *end != '\0' || errno == ERANGE ||
          !std::isdigit(static_cast<unsigned char>(value_str[0]))) {
        return Status::InvalidArgument("fault schedule value '" +
                                       value_str + "' for '" +
                                       std::string(key) +
                                       "' is not an unsigned integer");
      }
    }
    if (key == "seed") {
      config.seed = step;
    } else if (key == "horizon") {
      config.seed_horizon = step;
    } else {
      Result<FaultPoint> point = FaultPointFromName(key);
      JOINOPT_RETURN_IF_ERROR(point.status());
      config.at(*point) = step;
    }
  }
  return config;
}

std::string_view FaultPointName(FaultPoint point) {
  switch (point) {
    case FaultPoint::kArenaAlloc:
      return "arena_alloc";
    case FaultPoint::kTraceSink:
      return "trace_sink";
    case FaultPoint::kDeadline:
      return "deadline";
    case FaultPoint::kAdversarialStats:
      return "adversarial_stats";
  }
  return "unknown";
}

bool FaultConfig::armed() const {
  if (seed != 0) {
    return true;
  }
  for (const uint64_t step : fire_at) {
    if (step != 0) {
      return true;
    }
  }
  return false;
}

FaultInjector& FaultInjector::Instance() {
  // One injector per thread: schedules, arrival counters, and the armed
  // flag are all thread-local, so concurrent optimizations (the soak
  // harness) inject faults independently without synchronization and
  // without cross-thread schedule interference.
  thread_local FaultInjector instance;
  return instance;
}

FaultInjector::FaultInjector() {
  // First use on this thread: read the environment knobs. A malformed
  // knob disarms the injector and stashes the error for the harness
  // entry points (which call FaultConfigFromEnv themselves at startup
  // and abort with the typed status before any optimization runs).
  Result<FaultConfig> config = FaultConfigFromEnv();
  if (config.ok()) {
    Configure(*config);
  } else {
    env_status_ = config.status();
    Configure(FaultConfig());
  }
}

void FaultInjector::Configure(const FaultConfig& config) {
  config_ = config;
  if (config_.seed != 0) {
    // Materialize the seed-derived steps so config() reports the actual
    // schedule and explicit steps keep priority over the seed.
    for (int p = 0; p < kFaultPointCount; ++p) {
      if (config_.fire_at[p] == 0) {
        const uint64_t horizon =
            config_.seed_horizon != 0 ? config_.seed_horizon : 1;
        config_.fire_at[p] =
            1 + SplitMix64(config_.seed * kFaultPointCount + p) % horizon;
      }
    }
  }
  for (int p = 0; p < kFaultPointCount; ++p) {
    arrivals_[p] = 0;
    fired_[p] = false;
  }
  enabled_ = config_.armed();
}

void FaultInjector::Disable() { Configure(FaultConfig()); }

bool FaultInjector::ShouldFire(FaultPoint point) {
  const int p = static_cast<int>(point);
  ++arrivals_[p];
  if (fired_[p] || config_.fire_at[p] == 0 ||
      arrivals_[p] != config_.fire_at[p]) {
    return false;
  }
  fired_[p] = true;
  return true;
}

ScopedFaultInjection::ScopedFaultInjection(const FaultConfig& config)
    : previous_(FaultInjector::Instance().config()) {
  FaultInjector::Instance().Configure(config);
}

ScopedFaultInjection::~ScopedFaultInjection() {
  FaultInjector::Instance().Configure(previous_);
}

}  // namespace testing
}  // namespace joinopt
