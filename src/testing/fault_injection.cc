#include "testing/fault_injection.h"

#include <cstdlib>

namespace joinopt {
namespace testing {

namespace {

/// SplitMix64: the step schedule for seed mode. Deliberately independent
/// of util/random.h so reseeding the workload generators cannot shift
/// fault schedules (and vice versa).
uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

uint64_t EnvU64(const char* name) {
  const char* value = std::getenv(name);
  return value != nullptr ? std::strtoull(value, nullptr, 10) : 0;
}

FaultConfig ConfigFromEnv() {
  FaultConfig config;
  config.seed = EnvU64("JOINOPT_FAULT_SEED");
  config.at(FaultPoint::kArenaAlloc) = EnvU64("JOINOPT_FAULT_ALLOC_AT");
  config.at(FaultPoint::kTraceSink) = EnvU64("JOINOPT_FAULT_TRACE_AT");
  config.at(FaultPoint::kDeadline) = EnvU64("JOINOPT_FAULT_DEADLINE_AT");
  config.at(FaultPoint::kAdversarialStats) = EnvU64("JOINOPT_FAULT_STATS_AT");
  return config;
}

}  // namespace

std::string_view FaultPointName(FaultPoint point) {
  switch (point) {
    case FaultPoint::kArenaAlloc:
      return "arena_alloc";
    case FaultPoint::kTraceSink:
      return "trace_sink";
    case FaultPoint::kDeadline:
      return "deadline";
    case FaultPoint::kAdversarialStats:
      return "adversarial_stats";
  }
  return "unknown";
}

bool FaultConfig::armed() const {
  if (seed != 0) {
    return true;
  }
  for (const uint64_t step : fire_at) {
    if (step != 0) {
      return true;
    }
  }
  return false;
}

FaultInjector& FaultInjector::Instance() {
  // One injector per thread: schedules, arrival counters, and the armed
  // flag are all thread-local, so concurrent optimizations (the soak
  // harness) inject faults independently without synchronization and
  // without cross-thread schedule interference.
  thread_local FaultInjector instance;
  return instance;
}

FaultInjector::FaultInjector() { Configure(ConfigFromEnv()); }

void FaultInjector::Configure(const FaultConfig& config) {
  config_ = config;
  if (config_.seed != 0) {
    // Materialize the seed-derived steps so config() reports the actual
    // schedule and explicit steps keep priority over the seed.
    for (int p = 0; p < kFaultPointCount; ++p) {
      if (config_.fire_at[p] == 0) {
        const uint64_t horizon =
            config_.seed_horizon != 0 ? config_.seed_horizon : 1;
        config_.fire_at[p] =
            1 + SplitMix64(config_.seed * kFaultPointCount + p) % horizon;
      }
    }
  }
  for (int p = 0; p < kFaultPointCount; ++p) {
    arrivals_[p] = 0;
    fired_[p] = false;
  }
  enabled_ = config_.armed();
}

void FaultInjector::Disable() { Configure(FaultConfig()); }

bool FaultInjector::ShouldFire(FaultPoint point) {
  const int p = static_cast<int>(point);
  ++arrivals_[p];
  if (fired_[p] || config_.fire_at[p] == 0 ||
      arrivals_[p] != config_.fire_at[p]) {
    return false;
  }
  fired_[p] = true;
  return true;
}

ScopedFaultInjection::ScopedFaultInjection(const FaultConfig& config)
    : previous_(FaultInjector::Instance().config()) {
  FaultInjector::Instance().Configure(config);
}

ScopedFaultInjection::~ScopedFaultInjection() {
  FaultInjector::Instance().Configure(previous_);
}

}  // namespace testing
}  // namespace joinopt
