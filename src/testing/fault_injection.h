#ifndef JOINOPT_TESTING_FAULT_INJECTION_H_
#define JOINOPT_TESTING_FAULT_INJECTION_H_

#include <cstdint>

#include "util/status.h"

namespace joinopt {
namespace testing {

/// The library's fault-injection points. Each names a place where a
/// production deployment can fail mid-run and where the library promises
/// a typed Status instead of a crash:
///
///   kArenaAlloc        populating a new memo entry fails (allocation
///                      failure / arena exhaustion). Consulted by
///                      ResourceGovernor::WithinMemoBudget, so it covers
///                      every orderer including DPhyp.
///   kTraceSink         a user-installed TraceSink throws. Consulted by
///                      testing::ThrowingTraceSink; the library-side
///                      handling (catch + kInternal) lives in
///                      OptimizerContext / DPhyp regardless of this knob.
///   kDeadline          the wall clock fires at an exact enumeration
///                      step. Consulted by ResourceGovernor::Tick,
///                      bypassing the amortized 8k-step countdown so the
///                      trip point is deterministic.
///   kAdversarialStats  the catalog hands the optimizer degenerate
///                      statistics. Consulted by
///                      Catalog::BuildQueryGraph, which corrupts one
///                      cardinality to NaN after lowering — downstream
///                      validation must reject it as
///                      kDegenerateStatistics.
enum class FaultPoint : int {
  kArenaAlloc = 0,
  kTraceSink,
  kDeadline,
  kAdversarialStats,
};
inline constexpr int kFaultPointCount = 4;

/// Returns the stable lower_snake name of a point ("arena_alloc", ...).
std::string_view FaultPointName(FaultPoint point);

struct FaultConfig;

/// Serializes a schedule as comma-separated `key=value` pairs: `seed=S`
/// and `horizon=H` (only when seed mode is armed), then one
/// `<point_name>=<step>` per explicitly armed point, in FaultPoint order.
/// A schedule with nothing armed renders as "none". The textual form the
/// repro bundles persist and ParseFaultSchedule reads back.
std::string ScheduleToString(const FaultConfig& config);

/// Inverse of ScheduleToString. Accepts "none" and the empty string as
/// the disarmed schedule. Malformed input (unknown key, non-numeric
/// step, missing '=') is a typed kInvalidArgument.
Result<FaultConfig> ParseFaultSchedule(std::string_view text);

/// Reads the JOINOPT_FAULT_* environment knobs into a schedule. Unset or
/// empty variables contribute nothing; a malformed value (e.g.
/// JOINOPT_FAULT_ALLOC_AT=banana) is a typed kInvalidArgument naming the
/// variable — never silently ignored. Standalone binaries call this at
/// startup so a typo'd knob aborts the run instead of quietly testing
/// nothing.
Result<FaultConfig> FaultConfigFromEnv();

/// A deterministic fault schedule: for each point, the 1-based arrival
/// count at which it fires (0 = never). When `seed` is non-zero, every
/// point left at 0 gets a pseudo-random firing step derived from
/// (seed, point) in [1, seed_horizon] — the "seed-scheduled" mode the
/// differential fuzzer sweeps.
struct FaultConfig {
  uint64_t seed = 0;
  uint64_t seed_horizon = 4096;
  uint64_t fire_at[kFaultPointCount] = {0, 0, 0, 0};

  uint64_t& at(FaultPoint point) { return fire_at[static_cast<int>(point)]; }

  /// True when any point can ever fire.
  bool armed() const;
};

/// Per-thread deterministic fault injector.
///
/// Disabled (the default) it costs the instrumented code paths one
/// predicted branch on a cached bool. Tests arm it through
/// ScopedFaultInjection; standalone binaries arm it through the
/// environment, read once at each thread's first use:
///
///   JOINOPT_FAULT_SEED=<u64>        seed-schedule all points
///   JOINOPT_FAULT_ALLOC_AT=<k>      fire kArenaAlloc on its k-th arrival
///   JOINOPT_FAULT_TRACE_AT=<k>      fire kTraceSink on its k-th arrival
///   JOINOPT_FAULT_DEADLINE_AT=<k>   fire kDeadline on its k-th arrival
///   JOINOPT_FAULT_STATS_AT=<k>      fire kAdversarialStats on its k-th
///                                   arrival
///
/// Instance() is thread_local: schedules and arrival counters never cross
/// threads, so concurrent optimizations (the soak harness) can each run
/// their own fault schedule without synchronization. Counters stay plain
/// (not atomic) on that basis.
class FaultInjector {
 public:
  /// This thread's instance. The first call on each thread reads the
  /// JOINOPT_FAULT_* environment knobs.
  static FaultInjector& Instance();

  /// Installs a schedule and resets all arrival counters.
  void Configure(const FaultConfig& config);

  /// Disarms all points and resets counters.
  void Disable();

  /// True when any point is armed. Instrumented code caches this at
  /// run start to keep its fast path branch-predictable.
  bool enabled() const { return enabled_; }

  /// Counts one arrival at `point`; true exactly when the arrival count
  /// hits the scheduled firing step. Each point fires at most once per
  /// Configure (a fired fault does not repeat on later arrivals).
  bool ShouldFire(FaultPoint point);

  /// Arrivals at `point` since the last Configure/Disable.
  uint64_t arrivals(FaultPoint point) const {
    return arrivals_[static_cast<int>(point)];
  }

  /// The resolved schedule (seed-derived steps already materialized).
  const FaultConfig& config() const { return config_; }

  /// The Status of this thread's first-use environment read: OK when the
  /// JOINOPT_FAULT_* knobs parsed (or were unset), the kInvalidArgument
  /// from FaultConfigFromEnv otherwise — in which case the injector came
  /// up disarmed. Harness entry points surface this as a startup error.
  const Status& env_status() const { return env_status_; }

 private:
  FaultInjector();

  FaultConfig config_;
  uint64_t arrivals_[kFaultPointCount] = {0, 0, 0, 0};
  bool fired_[kFaultPointCount] = {false, false, false, false};
  bool enabled_ = false;
  Status env_status_;
};

/// RAII schedule installer for tests: arms the injector on construction,
/// restores the previous schedule (usually: disabled) on destruction.
class ScopedFaultInjection {
 public:
  explicit ScopedFaultInjection(const FaultConfig& config);
  ~ScopedFaultInjection();

  ScopedFaultInjection(const ScopedFaultInjection&) = delete;
  ScopedFaultInjection& operator=(const ScopedFaultInjection&) = delete;

 private:
  FaultConfig previous_;
};

}  // namespace testing
}  // namespace joinopt

#endif  // JOINOPT_TESTING_FAULT_INJECTION_H_
