#include "testing/repro.h"

#include <cmath>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/policy.h"
#include "core/registry.h"
#include "cost/cost_model.h"
#include "dsl/directive.h"
#include "dsl/writer.h"
#include "graph/shrink.h"
#include "testing/adversarial.h"

namespace joinopt {
namespace testing {

namespace {

Status LineError(int line, std::string message) {
  return Status::InvalidArgument("line " + std::to_string(line) + ": " +
                                 std::move(message));
}

void AppendLine(std::string& out, std::string_view keyword,
                std::string_view payload) {
  out += keyword;
  out += ' ';
  out += payload;
  out += '\n';
}

}  // namespace

std::string WriteReproBundle(const ReproBundle& bundle) {
  std::string out = "joinopt-repro v1\n";
  if (!bundle.note.empty()) {
    AppendLine(out, "note", bundle.note);
  }
  AppendLine(out, "orderer", bundle.orderer);
  AppendLine(out, "cost_model", bundle.cost_model);
  if (bundle.workload_seed != 0) {
    AppendLine(out, "workload_seed", std::to_string(bundle.workload_seed));
  }
  if (bundle.memo_entry_budget != 0) {
    AppendLine(out, "option memo_budget",
               std::to_string(bundle.memo_entry_budget));
  }
  if (bundle.deadline_seconds != 0.0) {
    AppendLine(out, "option deadline_s",
               FormatDoubleShortest(bundle.deadline_seconds));
  }
  if (bundle.deadline_ticks != 0) {
    AppendLine(out, "option deadline_ticks",
               std::to_string(bundle.deadline_ticks));
  }
  if (bundle.threads != 0) {
    AppendLine(out, "option threads", std::to_string(bundle.threads));
  }
  if (bundle.salvage_on_interrupt) {
    AppendLine(out, "option salvage", "on");
  }
  if (bundle.throwing_trace) {
    AppendLine(out, "option throwing_trace", "on");
  }
  if (!bundle.policy.empty()) {
    AppendLine(out, "option policy", bundle.policy);
  }
  if (bundle.fault.armed()) {
    AppendLine(out, "fault", ScheduleToString(bundle.fault));
  }
  for (const ReproBundle::Relation& rel : bundle.relations) {
    AppendLine(out, "rel",
               rel.name + ' ' + FormatDoubleShortest(rel.cardinality));
  }
  for (const ReproBundle::Edge& edge : bundle.edges) {
    AppendLine(out, "join",
               bundle.relations[static_cast<size_t>(edge.left)].name + ' ' +
                   bundle.relations[static_cast<size_t>(edge.right)].name +
                   ' ' + FormatDoubleShortest(edge.selectivity));
  }
  if (bundle.has_expected) {
    const OutcomeSignature& e = bundle.expected;
    AppendLine(out, "expect status",
               std::string(StatusCodeToString(e.status)));
    AppendLine(out, "expect cost", FormatDoubleShortest(e.cost));
    AppendLine(out, "expect cardinality",
               FormatDoubleShortest(e.cardinality));
    AppendLine(out, "expect counters",
               std::to_string(e.inner_counter) + ' ' +
                   std::to_string(e.csg_cmp_pair_counter) + ' ' +
                   std::to_string(e.create_join_tree_calls) + ' ' +
                   std::to_string(e.plans_stored));
    AppendLine(out, "expect best_effort", e.best_effort ? "on" : "off");
    AppendLine(out, "expect trigger",
               std::string(StatusCodeToString(e.trigger)));
  }
  return out;
}

Result<ReproBundle> ParseReproBundle(std::string_view text) {
  const std::vector<Directive> directives = ParseDirectives(text);
  if (directives.empty() || directives[0].keyword != "joinopt-repro") {
    return Status::InvalidArgument(
        "not a repro bundle: missing 'joinopt-repro v1' magic line");
  }
  if (directives[0].args != std::vector<std::string>{"v1"}) {
    return LineError(directives[0].line,
                     "unsupported bundle version '" +
                         directives[0].JoinedArgs() + "' (expected 'v1')");
  }

  ReproBundle bundle;
  std::unordered_map<std::string, int> relation_index;

  for (size_t d = 1; d < directives.size(); ++d) {
    const Directive& dir = directives[d];
    const int line = dir.line;
    const auto require_args = [&](size_t n) -> Status {
      if (dir.args.size() != n) {
        return LineError(line, "'" + dir.keyword + "' expects " +
                                   std::to_string(n) + " argument(s), got " +
                                   std::to_string(dir.args.size()));
      }
      return Status::OK();
    };

    if (dir.keyword == "note") {
      bundle.note = dir.JoinedArgs();
    } else if (dir.keyword == "orderer") {
      JOINOPT_RETURN_IF_ERROR(require_args(1));
      bundle.orderer = dir.args[0];
    } else if (dir.keyword == "cost_model") {
      JOINOPT_RETURN_IF_ERROR(require_args(1));
      bundle.cost_model = dir.args[0];
    } else if (dir.keyword == "workload_seed") {
      JOINOPT_RETURN_IF_ERROR(require_args(1));
      Result<uint64_t> seed = ParseU64Field(dir.args[0], "workload seed", line);
      JOINOPT_RETURN_IF_ERROR(seed.status());
      bundle.workload_seed = *seed;
    } else if (dir.keyword == "option") {
      if (dir.args.empty()) {
        return LineError(line, "'option' needs a key");
      }
      const std::string& key = dir.args[0];
      if (key == "policy") {
        std::string policy;
        for (size_t i = 1; i < dir.args.size(); ++i) {
          if (!policy.empty()) {
            policy += ' ';
          }
          policy += dir.args[i];
        }
        if (policy.empty()) {
          return LineError(line, "'option policy' needs a policy string");
        }
        bundle.policy = std::move(policy);
        continue;
      }
      if (dir.args.size() != 2) {
        return LineError(line, "'option " + key + "' expects one value");
      }
      const std::string& value = dir.args[1];
      if (key == "memo_budget") {
        Result<uint64_t> parsed = ParseU64Field(value, "memo budget", line);
        JOINOPT_RETURN_IF_ERROR(parsed.status());
        bundle.memo_entry_budget = *parsed;
      } else if (key == "deadline_s") {
        Result<double> parsed = ParseDoubleField(value, "deadline", line);
        JOINOPT_RETURN_IF_ERROR(parsed.status());
        bundle.deadline_seconds = *parsed;
      } else if (key == "deadline_ticks") {
        Result<uint64_t> parsed = ParseU64Field(value, "deadline ticks", line);
        JOINOPT_RETURN_IF_ERROR(parsed.status());
        bundle.deadline_ticks = *parsed;
      } else if (key == "threads") {
        Result<uint64_t> parsed = ParseU64Field(value, "threads", line);
        JOINOPT_RETURN_IF_ERROR(parsed.status());
        if (*parsed > 256) {
          return LineError(line, "'option threads' must be in [0, 256]");
        }
        bundle.threads = static_cast<int>(*parsed);
      } else if (key == "salvage") {
        Result<bool> parsed = ParseBoolField(value, "salvage", line);
        JOINOPT_RETURN_IF_ERROR(parsed.status());
        bundle.salvage_on_interrupt = *parsed;
      } else if (key == "throwing_trace") {
        Result<bool> parsed = ParseBoolField(value, "throwing_trace", line);
        JOINOPT_RETURN_IF_ERROR(parsed.status());
        bundle.throwing_trace = *parsed;
      } else {
        return LineError(line, "unknown option '" + key + "'");
      }
    } else if (dir.keyword == "fault") {
      JOINOPT_RETURN_IF_ERROR(require_args(1));
      Result<FaultConfig> fault = ParseFaultSchedule(dir.args[0]);
      if (!fault.ok()) {
        return LineError(line, fault.status().message());
      }
      bundle.fault = *fault;
    } else if (dir.keyword == "rel") {
      JOINOPT_RETURN_IF_ERROR(require_args(2));
      Result<double> cardinality =
          ParseDoubleField(dir.args[1], "cardinality", line);
      JOINOPT_RETURN_IF_ERROR(cardinality.status());
      const auto [it, inserted] = relation_index.emplace(
          dir.args[0], static_cast<int>(bundle.relations.size()));
      if (!inserted) {
        return LineError(line, "duplicate relation '" + dir.args[0] + "'");
      }
      bundle.relations.push_back({dir.args[0], *cardinality});
    } else if (dir.keyword == "join") {
      JOINOPT_RETURN_IF_ERROR(require_args(3));
      Result<double> selectivity =
          ParseDoubleField(dir.args[2], "selectivity", line);
      JOINOPT_RETURN_IF_ERROR(selectivity.status());
      ReproBundle::Edge edge;
      const std::string* endpoints[2] = {&dir.args[0], &dir.args[1]};
      int resolved[2];
      for (int i = 0; i < 2; ++i) {
        const auto it = relation_index.find(*endpoints[i]);
        if (it == relation_index.end()) {
          return LineError(line, "join references undeclared relation '" +
                                     *endpoints[i] + "'");
        }
        resolved[i] = it->second;
      }
      edge.left = resolved[0];
      edge.right = resolved[1];
      edge.selectivity = *selectivity;
      bundle.edges.push_back(edge);
    } else if (dir.keyword == "expect") {
      if (dir.args.empty()) {
        return LineError(line, "'expect' needs a field name");
      }
      bundle.has_expected = true;
      OutcomeSignature& e = bundle.expected;
      const std::string& field = dir.args[0];
      if (field == "status" || field == "trigger") {
        if (dir.args.size() != 2) {
          return LineError(line, "'expect " + field + "' expects one value");
        }
        const std::optional<StatusCode> code =
            StatusCodeFromString(dir.args[1]);
        if (!code.has_value()) {
          return LineError(line,
                           "unknown status code '" + dir.args[1] + "'");
        }
        (field == "status" ? e.status : e.trigger) = *code;
      } else if (field == "cost" || field == "cardinality") {
        if (dir.args.size() != 2) {
          return LineError(line, "'expect " + field + "' expects one value");
        }
        Result<double> parsed =
            ParseDoubleField(dir.args[1], "expected " + field, line);
        JOINOPT_RETURN_IF_ERROR(parsed.status());
        (field == "cost" ? e.cost : e.cardinality) = *parsed;
      } else if (field == "counters") {
        if (dir.args.size() != 5) {
          return LineError(line,
                           "'expect counters' expects <inner> <pairs> "
                           "<trees> <stored>");
        }
        uint64_t* slots[4] = {&e.inner_counter, &e.csg_cmp_pair_counter,
                              &e.create_join_tree_calls, &e.plans_stored};
        for (int i = 0; i < 4; ++i) {
          Result<uint64_t> parsed =
              ParseU64Field(dir.args[static_cast<size_t>(i) + 1],
                            "expected counter", line);
          JOINOPT_RETURN_IF_ERROR(parsed.status());
          *slots[i] = *parsed;
        }
      } else if (field == "best_effort") {
        if (dir.args.size() != 2) {
          return LineError(line, "'expect best_effort' expects one value");
        }
        Result<bool> parsed =
            ParseBoolField(dir.args[1], "expected best_effort", line);
        JOINOPT_RETURN_IF_ERROR(parsed.status());
        e.best_effort = *parsed;
      } else {
        return LineError(line, "unknown expect field '" + field + "'");
      }
    } else {
      return LineError(line, "unknown directive '" + dir.keyword + "'");
    }
  }
  return bundle;
}

Result<QueryGraph> BundleGraph(const ReproBundle& bundle) {
  QueryGraph graph;
  for (const ReproBundle::Relation& rel : bundle.relations) {
    const bool legal = std::isfinite(rel.cardinality) && rel.cardinality > 0.0;
    Result<int> index =
        graph.AddRelation(legal ? rel.cardinality : 1.0, rel.name);
    JOINOPT_RETURN_IF_ERROR(index.status());
    if (!legal) {
      StatsCorruptor::SetCardinality(graph, *index, rel.cardinality);
    }
  }
  for (const ReproBundle::Edge& edge : bundle.edges) {
    const bool legal = edge.selectivity > 0.0 && edge.selectivity <= 1.0;
    JOINOPT_RETURN_IF_ERROR(graph.AddEdge(edge.left, edge.right,
                                          legal ? edge.selectivity : 0.5));
    if (!legal) {
      StatsCorruptor::SetSelectivity(graph, graph.edge_count() - 1,
                                     edge.selectivity);
    }
  }
  return graph;
}

ReproBundle MakeReproBundle(const QueryGraph& graph, std::string_view orderer,
                            std::string_view cost_model,
                            const OptimizeOptions& options,
                            const FaultConfig& fault, bool throwing_trace,
                            uint64_t workload_seed, std::string note) {
  ReproBundle bundle;
  bundle.note = std::move(note);
  bundle.orderer = std::string(orderer);
  bundle.cost_model = std::string(cost_model);
  bundle.workload_seed = workload_seed;
  bundle.memo_entry_budget = options.memo_entry_budget;
  bundle.deadline_seconds = options.deadline_seconds;
  bundle.threads = options.threads;
  bundle.salvage_on_interrupt = options.salvage_on_interrupt;
  bundle.throwing_trace = throwing_trace;
  bundle.fault = fault;
  bundle.relations.reserve(static_cast<size_t>(graph.relation_count()));
  for (int i = 0; i < graph.relation_count(); ++i) {
    bundle.relations.push_back({graph.name(i), graph.cardinality(i)});
  }
  bundle.edges.reserve(static_cast<size_t>(graph.edge_count()));
  for (const JoinEdge& edge : graph.edges()) {
    bundle.edges.push_back({edge.left, edge.right, edge.selectivity});
  }
  return bundle;
}

Result<OutcomeSignature> ReplayBundle(const ReproBundle& bundle) {
  Result<QueryGraph> graph = BundleGraph(bundle);
  JOINOPT_RETURN_IF_ERROR(graph.status());
  Result<std::unique_ptr<CostModel>> cost_model =
      MakeCostModelByName(bundle.cost_model);
  JOINOPT_RETURN_IF_ERROR(cost_model.status());

  OptimizeOptions options;
  options.memo_entry_budget = bundle.memo_entry_budget;
  options.deadline_seconds = bundle.deadline_seconds;
  options.threads = bundle.threads;
  options.salvage_on_interrupt = bundle.salvage_on_interrupt;
  options.collect_counters = true;
  ThrowingTraceSink sink;
  if (bundle.throwing_trace) {
    options.trace = &sink;
  }

  FaultConfig fault = bundle.fault;
  if (bundle.deadline_ticks != 0 && fault.at(FaultPoint::kDeadline) == 0) {
    fault.at(FaultPoint::kDeadline) = bundle.deadline_ticks;
  }

  // Resolve the run target before arming faults so a bad name cannot be
  // mistaken for the recorded failure. A non-empty policy takes over the
  // whole run (that is what the original run executed); the orderer name
  // is then provenance only.
  DegradationPolicy policy;
  const bool use_policy = !bundle.policy.empty();
  if (use_policy) {
    Result<DegradationPolicy> parsed = DegradationPolicy::Parse(bundle.policy);
    JOINOPT_RETURN_IF_ERROR(parsed.status());
    policy = *parsed;
  }
  const JoinOrderer* orderer = nullptr;
  if (!use_policy) {
    Result<const JoinOrderer*> found =
        OptimizerRegistry::GetOrError(bundle.orderer);
    JOINOPT_RETURN_IF_ERROR(found.status());
    orderer = *found;
  }

  // The governor caches the injector's armed flag at context
  // construction, so the context must be built inside the scope.
  ScopedFaultInjection scoped(fault);
  OptimizerContext ctx(*graph, **cost_model, options);
  const Result<OptimizationResult> result =
      use_policy ? RunDegradationPolicy(policy, ctx) : orderer->Optimize(ctx);
  return ExtractOutcomeSignature(result, ctx.stats());
}

Result<ReplayVerdict> ReplayAndCompare(const ReproBundle& bundle) {
  Result<OutcomeSignature> observed = ReplayBundle(bundle);
  JOINOPT_RETURN_IF_ERROR(observed.status());
  ReplayVerdict verdict;
  verdict.observed = *observed;
  if (bundle.has_expected) {
    verdict.divergence = observed->DiffAgainst(bundle.expected);
    verdict.matches = verdict.divergence.empty();
  }
  return verdict;
}

namespace {

/// The bundle's graph with structure only: legal placeholder statistics
/// so the shrink planners (which require a buildable graph) work even
/// when the bundle's real statistics are degenerate.
Result<QueryGraph> SkeletonGraph(const ReproBundle& bundle) {
  QueryGraph graph;
  for (const ReproBundle::Relation& rel : bundle.relations) {
    Result<int> index = graph.AddRelation(1000.0, rel.name);
    JOINOPT_RETURN_IF_ERROR(index.status());
  }
  for (const ReproBundle::Edge& edge : bundle.edges) {
    JOINOPT_RETURN_IF_ERROR(graph.AddEdge(edge.left, edge.right, 0.5));
  }
  return graph;
}

double RawSelectivityWith(const ReproBundle& bundle, int a, int victim) {
  for (const ReproBundle::Edge& edge : bundle.edges) {
    if ((edge.left == a && edge.right == victim) ||
        (edge.left == victim && edge.right == a)) {
      return edge.selectivity;
    }
  }
  return 1.0;
}

/// Applies PlanRelationRemoval to the bundle's RAW spec values — unlike
/// graph::RemoveRelationReconnect this preserves degenerate statistics
/// (the reconnect selectivity is the unclamped product, NaN and all), so
/// a degenerate-statistics repro can shrink without losing its bug.
bool RemoveBundleRelation(const ReproBundle& in, int victim,
                          ReproBundle* out) {
  Result<QueryGraph> skeleton = SkeletonGraph(in);
  if (!skeleton.ok()) {
    return false;
  }
  Result<std::vector<std::pair<int, int>>> plan =
      PlanRelationRemoval(*skeleton, victim);
  if (!plan.ok()) {
    return false;
  }
  *out = in;
  out->relations.erase(out->relations.begin() + victim);
  const auto renumber = [victim](int i) { return i > victim ? i - 1 : i; };
  std::vector<ReproBundle::Edge> edges;
  edges.reserve(in.edges.size());
  for (const ReproBundle::Edge& edge : in.edges) {
    if (edge.left == victim || edge.right == victim) {
      continue;
    }
    edges.push_back(
        {renumber(edge.left), renumber(edge.right), edge.selectivity});
  }
  for (const auto& [a, b] : *plan) {
    edges.push_back({renumber(a), renumber(b),
                     RawSelectivityWith(in, a, victim) *
                         RawSelectivityWith(in, b, victim)});
  }
  out->edges = std::move(edges);
  return true;
}

}  // namespace

Result<ReproBundle> MinimizeBundle(const ReproBundle& bundle,
                                   MinimizeStats* stats) {
  MinimizeStats local;
  MinimizeStats& s = stats != nullptr ? *stats : local;
  s = MinimizeStats();

  Result<OutcomeSignature> baseline = ReplayBundle(bundle);
  ++s.replays;
  JOINOPT_RETURN_IF_ERROR(baseline.status());

  ReproBundle current = bundle;
  current.expected = *baseline;
  current.has_expected = true;

  // Accepts `candidate` iff it still fails the way the ORIGINAL bundle's
  // replay did. The coarse kind (not the full signature) is the invariant:
  // cost and counters legitimately change as the query shrinks. Every
  // accepted candidate's expectation is refreshed to its own replay, so
  // the minimized bundle always replays clean.
  const auto try_accept = [&](const ReproBundle& candidate) -> bool {
    Result<OutcomeSignature> observed = ReplayBundle(candidate);
    ++s.replays;
    if (!observed.ok() || !observed->SameFailureKind(*baseline)) {
      return false;
    }
    current = candidate;
    current.expected = *observed;
    current.has_expected = true;
    return true;
  };

  // Greedy ddmin to a fixed point, bounded defensively.
  constexpr int kMaxRounds = 64;
  bool changed = true;
  while (changed && s.rounds < kMaxRounds) {
    changed = false;
    ++s.rounds;

    // Relations, highest index first (stable indices below the victim).
    // Floor of two relations: one actual join must remain for a failure
    // to be about join ordering at all.
    for (int victim = static_cast<int>(current.relations.size()) - 1;
         victim >= 0 && current.relations.size() > 2; --victim) {
      ReproBundle candidate;
      if (!RemoveBundleRelation(current, victim, &candidate)) {
        continue;
      }
      if (try_accept(candidate)) {
        ++s.relations_dropped;
        changed = true;
      }
    }

    // Redundant (cycle) edges, highest id first.
    for (int e = static_cast<int>(current.edges.size()) - 1; e >= 0; --e) {
      Result<QueryGraph> skeleton = SkeletonGraph(current);
      if (!skeleton.ok()) {
        break;
      }
      if (e >= skeleton->edge_count() || !CanRemoveEdge(*skeleton, e)) {
        continue;
      }
      ReproBundle candidate = current;
      candidate.edges.erase(candidate.edges.begin() + e);
      if (try_accept(candidate)) {
        ++s.edges_dropped;
        changed = true;
      }
    }

    // Option / fault-schedule simplifications: drop every knob that is
    // not load-bearing for the failure.
    const auto simplify = [&](auto&& mutate) {
      ReproBundle candidate = current;
      if (!mutate(candidate)) {
        return;  // Already in its simplest state.
      }
      if (try_accept(candidate)) {
        ++s.simplifications;
        changed = true;
      }
    };
    simplify([](ReproBundle& b) {
      if (b.deadline_seconds == 0.0) return false;
      b.deadline_seconds = 0.0;
      return true;
    });
    simplify([](ReproBundle& b) {
      if (b.deadline_ticks == 0) return false;
      b.deadline_ticks = 0;
      return true;
    });
    simplify([](ReproBundle& b) {
      if (b.memo_entry_budget == 0) return false;
      b.memo_entry_budget = 0;
      return true;
    });
    simplify([](ReproBundle& b) {
      if (b.threads == 0) return false;
      b.threads = 0;
      return true;
    });
    simplify([](ReproBundle& b) {
      if (!b.salvage_on_interrupt) return false;
      b.salvage_on_interrupt = false;
      return true;
    });
    simplify([](ReproBundle& b) {
      if (!b.throwing_trace) return false;
      b.throwing_trace = false;
      return true;
    });
    simplify([](ReproBundle& b) {
      if (b.policy.empty()) return false;
      b.policy.clear();
      return true;
    });
    simplify([](ReproBundle& b) {
      if (b.workload_seed == 0) return false;
      b.workload_seed = 0;
      return true;
    });
    simplify([](ReproBundle& b) {
      if (b.fault.seed == 0) return false;
      b.fault.seed = 0;
      return true;
    });
    for (int p = 0; p < kFaultPointCount; ++p) {
      simplify([p](ReproBundle& b) {
        if (b.fault.fire_at[p] == 0) return false;
        b.fault.fire_at[p] = 0;
        return true;
      });
    }
  }
  return current;
}

}  // namespace testing
}  // namespace joinopt
