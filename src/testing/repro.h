#ifndef JOINOPT_TESTING_REPRO_H_
#define JOINOPT_TESTING_REPRO_H_

#include <string>
#include <string_view>
#include <vector>

#include "core/optimizer_context.h"
#include "core/outcome.h"
#include "graph/query_graph.h"
#include "testing/fault_injection.h"
#include "util/status.h"

namespace joinopt {
namespace testing {

/// The flight recorder: a self-contained, text-serializable record of
/// ONE optimization run — query, options, orderer, fault schedule, and
/// (optionally) the outcome it produced — sufficient to re-execute the
/// run deterministically on another machine and diff the result
/// bit-for-bit. The soak and fuzz harnesses write bundles when an oracle
/// trips; `joinopt_cli replay` re-executes them; `joinopt_cli minimize`
/// delta-debugs them down to the smallest still-failing configuration.
///
/// The file grammar extends the query-spec language (one directive per
/// line, `#` comments):
///
///   joinopt-repro v1                      # magic, must be first
///   note <free text>                      # provenance (optional)
///   orderer DPccp                         # registry name
///   cost_model cout                       # cout|bestof|hash|nlj|smj
///   workload_seed 123                     # provenance only (optional)
///   option memo_budget 17                 # OptimizeOptions knobs,
///   option deadline_s 0.001               # each optional
///   option deadline_ticks 12              # deterministic deadline: the
///                                         #   kDeadline point fires at
///                                         #   governor tick 12
///   option threads 4                      # parallel-orderer thread count
///   option salvage on
///   option throwing_trace on              # install a ThrowingTraceSink
///   option policy DPccp -> salvage -> GOO # degradation-policy override
///   fault arena_alloc=5,trace_sink=2      # ScheduleToString format
///   rel <name> <cardinality>              # the query, in the exact
///   join <name> <name> <selectivity>      #   WriteQuerySpec syntax
///   expect status Internal                # the recorded outcome —
///   expect cost 0                         #   absent on partial bundles
///   expect cardinality 0                  #   (pre-crash flushes)
///   expect counters <inner> <pairs> <trees> <stored>
///   expect best_effort off
///   expect trigger OK
///
/// Statistics may be degenerate (nan/inf/0) — that is often the bug
/// being reproduced — so the query section is loaded leniently, routing
/// values the builders reject through the StatsCorruptor backdoor.
///
/// Determinism: a replayed bundle reproduces its outcome exactly, with
/// one documented exception — a nonzero `deadline_s` races the wall
/// clock. Harness-written bundles therefore prefer `deadline_ticks` /
/// fault schedules (both fire at exact arrival counts); `deadline_s` is
/// preserved as a truthful record when a harness drew one.
struct ReproBundle {
  struct Relation {
    std::string name;
    double cardinality = 0.0;
  };
  struct Edge {
    int left = 0;
    int right = 0;
    double selectivity = 1.0;
  };

  std::string note;
  std::string orderer = "DPccp";
  std::string cost_model = "cout";
  uint64_t workload_seed = 0;

  uint64_t memo_entry_budget = 0;
  double deadline_seconds = 0.0;
  uint64_t deadline_ticks = 0;
  /// OptimizeOptions::threads for the parallel orderers (0 = auto). The
  /// determinism contract makes completed runs thread-count independent,
  /// but deadline-interrupted runs are not, so the truthful record keeps
  /// the count the run actually used.
  int threads = 0;
  bool salvage_on_interrupt = false;
  bool throwing_trace = false;
  std::string policy;
  FaultConfig fault;

  std::vector<Relation> relations;
  std::vector<Edge> edges;

  bool has_expected = false;
  OutcomeSignature expected;
};

/// Serializes a bundle in the grammar above. Write/Parse round-trips
/// exactly: Parse(Write(b)) == b field-for-field, and
/// Write(Parse(text)) == Write(b) (numbers go through
/// FormatDoubleShortest).
std::string WriteReproBundle(const ReproBundle& bundle);

/// Parses a bundle. kInvalidArgument with a line number on malformed
/// input, a missing/typo'd magic line, or references to undeclared
/// relations.
Result<ReproBundle> ParseReproBundle(std::string_view text);

/// Builds the bundle's query graph. Lenient: statistics the builders
/// reject (NaN, inf, non-positive cardinalities, out-of-range
/// selectivities) are planted via the StatsCorruptor backdoor, so a
/// degenerate-statistics repro survives the round trip. Structural
/// errors (unknown relation index, duplicate edge) still fail.
Result<QueryGraph> BundleGraph(const ReproBundle& bundle);

/// Snapshots a run's inputs into a bundle (no expected outcome yet).
/// `throwing_trace` records whether the run installed a
/// ThrowingTraceSink; options.trace itself is not serializable.
ReproBundle MakeReproBundle(const QueryGraph& graph, std::string_view orderer,
                            std::string_view cost_model,
                            const OptimizeOptions& options,
                            const FaultConfig& fault, bool throwing_trace,
                            uint64_t workload_seed, std::string note);

/// Re-executes the bundle's run: lenient graph build, cost model and
/// orderer resolved by name, fault schedule armed for exactly the one
/// Optimize call (deadline_ticks merges into the kDeadline point), a
/// policy string dispatched through RunDegradationPolicy. Returns the
/// observed signature — a failed *optimization* is a successful replay
/// (the failure is the recorded phenomenon); only setup errors (unknown
/// orderer/cost model, unbuildable graph) fail the call.
Result<OutcomeSignature> ReplayBundle(const ReproBundle& bundle);

/// ReplayBundle + comparison against the recorded outcome.
struct ReplayVerdict {
  /// True when the bundle has no expectation (nothing to diverge from)
  /// or the observed signature equals it bit-for-bit.
  bool matches = true;
  OutcomeSignature observed;
  /// Field-by-field divergence description; empty when matches.
  std::string divergence;
};
Result<ReplayVerdict> ReplayAndCompare(const ReproBundle& bundle);

/// Delta-debugging minimizer: greedily drops relations (reconnecting
/// via PlanRelationRemoval so connectivity survives), drops redundant
/// edges, and strips options / fault points, re-replaying after every
/// candidate and keeping only changes that preserve the failure KIND
/// (status + best_effort + trigger; see
/// OutcomeSignature::SameFailureKind) of the bundle's own replay.
/// Iterates to a fixed point. The returned bundle's `expect` section is
/// refreshed to its own replay signature, so the output replays clean.
struct MinimizeStats {
  int rounds = 0;
  int relations_dropped = 0;
  int edges_dropped = 0;
  int simplifications = 0;
  int replays = 0;
};
Result<ReproBundle> MinimizeBundle(const ReproBundle& bundle,
                                   MinimizeStats* stats = nullptr);

}  // namespace testing
}  // namespace joinopt

#endif  // JOINOPT_TESTING_REPRO_H_
