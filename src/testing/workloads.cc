#include "testing/workloads.h"

#include "graph/generators.h"

namespace joinopt {
namespace testing {

Result<QueryGraph> DrawWorkloadGraph(Random& rng, std::string* family) {
  WorkloadConfig config;
  config.seed = rng.NextUint64();
  switch (rng.Uniform(7)) {
    case 0:
      *family = "chain";
      return MakeChainQuery(2 + static_cast<int>(rng.Uniform(9)), config);
    case 1:
      *family = "cycle";
      return MakeCycleQuery(3 + static_cast<int>(rng.Uniform(8)), config);
    case 2:
      *family = "star";
      return MakeStarQuery(2 + static_cast<int>(rng.Uniform(9)), config);
    case 3:
      *family = "clique";
      return MakeCliqueQuery(2 + static_cast<int>(rng.Uniform(7)), config);
    case 4:
      *family = "snowflake";
      return MakeSnowflakeQuery(2 + static_cast<int>(rng.Uniform(2)),
                                1 + static_cast<int>(rng.Uniform(3)), config);
    case 5:
      *family = "grid";
      return MakeGridQuery(2 + static_cast<int>(rng.Uniform(2)),
                           2 + static_cast<int>(rng.Uniform(2)), config);
    default: {
      *family = "random";
      const int n = 2 + static_cast<int>(rng.Uniform(9));
      return MakeRandomConnectedQuery(n, static_cast<int>(rng.Uniform(n)),
                                      config);
    }
  }
}

}  // namespace testing
}  // namespace joinopt
