#ifndef JOINOPT_TESTING_WORKLOADS_H_
#define JOINOPT_TESTING_WORKLOADS_H_

#include <string>

#include "graph/query_graph.h"
#include "util/random.h"
#include "util/status.h"

namespace joinopt {
namespace testing {

/// Draws one of the seven graph families (chain, cycle, star, clique,
/// snowflake, grid, random-connected) with random size and random legal
/// statistics — the shared query stream of the differential fuzzer and
/// the concurrent soak harness. `family` receives the drawn family name.
/// Sizes stay small enough (2..10 relations) that an exact DPccp
/// baseline per query is cheap.
Result<QueryGraph> DrawWorkloadGraph(Random& rng, std::string* family);

}  // namespace testing
}  // namespace joinopt

#endif  // JOINOPT_TESTING_WORKLOADS_H_
