#include "util/env.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <string>

namespace joinopt {
namespace {

Status Malformed(const char* name, const char* value, const char* expected) {
  return Status::InvalidArgument(std::string(name) + "=\"" + value +
                                 "\" is not " + expected);
}

}  // namespace

Result<double> EnvDouble(const char* name, double fallback,
                         bool require_positive) {
  const char* value = std::getenv(name);
  if (value == nullptr || value[0] == '\0') {
    return fallback;
  }
  char* end = nullptr;
  const double parsed = std::strtod(value, &end);
  if (end == value || *end != '\0' || !std::isfinite(parsed)) {
    return Malformed(name, value, "a finite number");
  }
  if (require_positive ? parsed <= 0 : parsed < 0) {
    return Malformed(name, value,
                     require_positive ? "a positive number"
                                      : "a non-negative number");
  }
  return parsed;
}

Result<uint64_t> EnvUint64(const char* name, uint64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || value[0] == '\0') {
    return fallback;
  }
  // Digits only: strtoull would accept leading whitespace, '+', '-' (with
  // wraparound), and "123abc" prefixes — all of which we reject.
  for (const char* p = value; *p != '\0'; ++p) {
    if (!std::isdigit(static_cast<unsigned char>(*p))) {
      return Malformed(name, value, "an unsigned integer");
    }
  }
  errno = 0;
  char* end = nullptr;
  const uint64_t parsed = std::strtoull(value, &end, 10);
  if (errno == ERANGE) {
    return Malformed(name, value, "an unsigned integer in range");
  }
  return parsed;
}

Result<int> EnvInt(const char* name, int fallback) {
  Result<uint64_t> wide = EnvUint64(name, static_cast<uint64_t>(fallback));
  if (!wide.ok()) {
    return wide.status();
  }
  if (*wide > static_cast<uint64_t>(1) << 30) {
    return Malformed(name, std::getenv(name), "a reasonably small integer");
  }
  return static_cast<int>(*wide);
}

bool BuiltWithSanitizer() {
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
  return true;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
  return true;
#else
  return false;
#endif
#else
  return false;
#endif
}

Result<double> WatchdogSeconds() {
  constexpr double kDefaultSeconds = 30.0;
  constexpr double kSanitizerScale = 4.0;
  const double fallback =
      BuiltWithSanitizer() ? kDefaultSeconds * kSanitizerScale
                           : kDefaultSeconds;
  return EnvDouble("JOINOPT_WATCHDOG_S", fallback, /*require_positive=*/true);
}

Status ValidateLimitEnv() {
  JOINOPT_RETURN_IF_ERROR(
      EnvDouble("JOINOPT_DEADLINE_S", 0.0, /*require_positive=*/false)
          .status());
  JOINOPT_RETURN_IF_ERROR(EnvUint64("JOINOPT_MEMO_BUDGET", 0).status());
  JOINOPT_RETURN_IF_ERROR(EnvInt("JOINOPT_THREADS", 0).status());
  JOINOPT_RETURN_IF_ERROR(
      EnvDouble("JOINOPT_MAX_INNER", 1.0, /*require_positive=*/true)
          .status());
  JOINOPT_RETURN_IF_ERROR(
      EnvDouble("JOINOPT_WATCHDOG_S", 30.0, /*require_positive=*/true)
          .status());
  JOINOPT_RETURN_IF_ERROR(EnvUint64("JOINOPT_CACHE_MB", 0).status());
  JOINOPT_RETURN_IF_ERROR(EnvInt("JOINOPT_CACHE_SHARDS", 0).status());
  JOINOPT_RETURN_IF_ERROR(EnvInt("JOINOPT_QUEUE_DEPTH", 0).status());
  JOINOPT_RETURN_IF_ERROR(EnvInt("JOINOPT_SERVE_WORKERS", 0).status());
  JOINOPT_RETURN_IF_ERROR(
      EnvDouble("JOINOPT_SERVE_SNAPSHOT_PERIOD_S", 0.0,
                /*require_positive=*/false)
          .status());
  JOINOPT_RETURN_IF_ERROR(EnvInt("JOINOPT_SERVE_MAX_CONNS", 0).status());
  JOINOPT_RETURN_IF_ERROR(
      EnvDouble("JOINOPT_SERVE_IO_TIMEOUT_S", 1.0,
                /*require_positive=*/true)
          .status());
  return Status::OK();
}

}  // namespace joinopt
