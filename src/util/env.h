#ifndef JOINOPT_UTIL_ENV_H_
#define JOINOPT_UTIL_ENV_H_

#include <cstdint>

#include "util/status.h"

namespace joinopt {

/// Strict environment-knob parsing. The JOINOPT_* limit knobs used to go
/// through std::atof/strtoull, which silently map a typo'd value
/// ("abc", "1e-3s") to 0 and fall back to the default — the same failure
/// mode the JOINOPT_FAULT_* knobs already reject with a typed error.
/// These helpers give the limit knobs the identical contract: unset or
/// empty means "use the fallback", anything that does not parse in full
/// is a kInvalidArgument naming the variable, checked once at binary
/// startup so a typo aborts the run instead of quietly testing nothing.

/// Reads `name` as a finite double. When `require_positive` the value
/// must be > 0; otherwise it must be >= 0.
Result<double> EnvDouble(const char* name, double fallback,
                         bool require_positive = false);

/// Reads `name` as a base-10 unsigned integer (digits only — no sign,
/// whitespace, or exponent).
Result<uint64_t> EnvUint64(const char* name, uint64_t fallback);

/// Reads `name` as a non-negative base-10 int.
Result<int> EnvInt(const char* name, int fallback);

/// Resolves the soak/service watchdog stall limit in seconds.
/// `JOINOPT_WATCHDOG_S` (strict-parsed, must be > 0) overrides the
/// default of 30 s. When the binary is built under ASan or TSan and the
/// knob is unset, the default is scaled by 4x — sanitizer interception
/// slows the workers enough that a wall-clock stall detector tuned for
/// plain builds false-fires. An explicit env value is taken verbatim,
/// sanitizer or not.
Result<double> WatchdogSeconds();

/// True when this binary was compiled with ASan or TSan instrumentation.
/// Exposed so harnesses can scale iteration counts the same way
/// WatchdogSeconds scales its default.
bool BuiltWithSanitizer();

/// Validates every JOINOPT limit knob a binary honors (JOINOPT_DEADLINE_S,
/// JOINOPT_MEMO_BUDGET, JOINOPT_THREADS, JOINOPT_MAX_INNER,
/// JOINOPT_WATCHDOG_S, and the serving-layer knobs JOINOPT_CACHE_MB,
/// JOINOPT_CACHE_SHARDS, JOINOPT_QUEUE_DEPTH, JOINOPT_SERVE_WORKERS,
/// JOINOPT_SERVE_MAX_CONNS, JOINOPT_SERVE_IO_TIMEOUT_S) without
/// consuming the values. JOINOPT_SERVE_LISTEN (a HOST:PORT string) is
/// validated separately by serve::ServerConfigFromEnv, which owns the
/// endpoint grammar. Binaries call this at startup next to the
/// FaultConfigFromEnv check and exit on the first malformed variable.
Status ValidateLimitEnv();

}  // namespace joinopt

#endif  // JOINOPT_UTIL_ENV_H_
