#ifndef JOINOPT_UTIL_MACROS_H_
#define JOINOPT_UTIL_MACROS_H_

#include <cstdio>
#include <cstdlib>

/// JOINOPT_CHECK(cond): aborts with a diagnostic when `cond` is false, in
/// all build modes. Use for invariants whose violation would make continuing
/// unsafe (e.g. out-of-bounds plan-table access).
#define JOINOPT_CHECK(cond)                                              \
  do {                                                                   \
    if (!(cond)) {                                                       \
      std::fprintf(stderr, "JOINOPT_CHECK failed at %s:%d: %s\n",        \
                   __FILE__, __LINE__, #cond);                           \
      std::abort();                                                      \
    }                                                                    \
  } while (false)

/// JOINOPT_DCHECK(cond): like JOINOPT_CHECK but compiled out in NDEBUG
/// builds. Use for hot-path invariants.
#ifdef NDEBUG
#define JOINOPT_DCHECK(cond) \
  do {                       \
  } while (false)
#else
#define JOINOPT_DCHECK(cond) JOINOPT_CHECK(cond)
#endif

/// Branch-prediction hints for hot-path checks that almost always go one
/// way (e.g. the null-trace-sink fast path, the amortized deadline tick).
#if defined(__GNUC__) || defined(__clang__)
#define JOINOPT_LIKELY(x) (__builtin_expect(!!(x), 1))
#define JOINOPT_UNLIKELY(x) (__builtin_expect(!!(x), 0))
#else
#define JOINOPT_LIKELY(x) (x)
#define JOINOPT_UNLIKELY(x) (x)
#endif

#endif  // JOINOPT_UTIL_MACROS_H_
