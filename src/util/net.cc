#include "util/net.h"

#include <cctype>
#include <cerrno>
#include <cstring>

#ifndef _WIN32
#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

namespace joinopt {
namespace net {

namespace {

Status Unavail(const std::string& what, int err) {
  return Status::Unavailable(what + ": " + std::strerror(err));
}

}  // namespace

Result<Endpoint> ParseEndpoint(const std::string& spec) {
  const auto bad = [&spec](const char* why) {
    return Status::InvalidArgument("endpoint \"" + spec + "\": " + why);
  };
  const size_t colon = spec.rfind(':');
  if (colon == std::string::npos) {
    return bad("expected HOST:PORT");
  }
  Endpoint ep;
  ep.host = spec.substr(0, colon);
  const std::string port_text = spec.substr(colon + 1);
  if (ep.host.empty()) {
    return bad("empty host");
  }
  if (port_text.empty()) {
    return bad("empty port");
  }
  uint32_t port = 0;
  for (const char ch : port_text) {
    if (!std::isdigit(static_cast<unsigned char>(ch))) {
      return bad("port is not a number");
    }
    port = port * 10 + static_cast<uint32_t>(ch - '0');
    if (port > 65535) {
      return bad("port out of range");
    }
  }
  ep.port = static_cast<uint16_t>(port);
  if (ep.host != "localhost") {
    struct in_addr addr;
    if (::inet_pton(AF_INET, ep.host.c_str(), &addr) != 1) {
      return bad("host must be an IPv4 address or \"localhost\"");
    }
  }
  return ep;
}

#ifndef _WIN32

void IgnoreSigpipe() {
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = SIG_IGN;
  ::sigaction(SIGPIPE, &sa, nullptr);
}

namespace {

Result<struct sockaddr_in> ResolveV4(const Endpoint& endpoint) {
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(endpoint.port);
  const std::string host =
      endpoint.host == "localhost" ? "127.0.0.1" : endpoint.host;
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("endpoint host \"" + endpoint.host +
                                   "\" is not an IPv4 address");
  }
  return addr;
}

}  // namespace

Result<int> ListenTcp(const Endpoint& endpoint, int backlog,
                      uint16_t* bound_port) {
  Result<struct sockaddr_in> addr = ResolveV4(endpoint);
  if (!addr.ok()) {
    return addr.status();
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Unavail("socket", errno);
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd, reinterpret_cast<struct sockaddr*>(&*addr),
             sizeof(*addr)) != 0) {
    const int err = errno;
    CloseQuiet(fd);
    return Unavail("bind " + endpoint.host + ":" +
                       std::to_string(endpoint.port),
                   err);
  }
  if (::listen(fd, backlog) != 0) {
    const int err = errno;
    CloseQuiet(fd);
    return Unavail("listen", err);
  }
  const Status nb = SetNonBlocking(fd);
  if (!nb.ok()) {
    CloseQuiet(fd);
    return nb;
  }
  if (bound_port != nullptr) {
    struct sockaddr_in bound;
    socklen_t len = sizeof(bound);
    if (::getsockname(fd, reinterpret_cast<struct sockaddr*>(&bound),
                      &len) != 0) {
      const int err = errno;
      CloseQuiet(fd);
      return Unavail("getsockname", err);
    }
    *bound_port = ntohs(bound.sin_port);
  }
  return fd;
}

Result<int> ConnectTcp(const Endpoint& endpoint, double deadline_seconds) {
  Result<struct sockaddr_in> addr = ResolveV4(endpoint);
  if (!addr.ok()) {
    return addr.status();
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Unavail("socket", errno);
  }
  Status nb = SetNonBlocking(fd);
  if (!nb.ok()) {
    CloseQuiet(fd);
    return nb;
  }
  int rc = ::connect(fd, reinterpret_cast<struct sockaddr*>(&*addr),
                     sizeof(*addr));
  if (rc != 0 && errno == EINTR) {
    // POSIX: an EINTR'd connect continues asynchronously — poll for it.
    rc = -1;
    errno = EINPROGRESS;
  }
  if (rc != 0) {
    if (errno != EINPROGRESS) {
      const int err = errno;
      CloseQuiet(fd);
      return Unavail("connect " + endpoint.host + ":" +
                         std::to_string(endpoint.port),
                     err);
    }
    const int timeout_ms =
        deadline_seconds <= 0 ? -1
                              : static_cast<int>(deadline_seconds * 1000) + 1;
    const int revents = PollRetry(fd, POLLOUT, timeout_ms);
    if (revents < 0) {
      CloseQuiet(fd);
      return Unavail("poll during connect", -revents);
    }
    if (revents == 0) {
      CloseQuiet(fd);
      return Status::Unavailable("connect " + endpoint.host + ":" +
                                 std::to_string(endpoint.port) +
                                 ": timed out");
    }
    int so_error = 0;
    socklen_t len = sizeof(so_error);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &len) != 0 ||
        so_error != 0) {
      const int err = so_error != 0 ? so_error : errno;
      CloseQuiet(fd);
      return Unavail("connect " + endpoint.host + ":" +
                         std::to_string(endpoint.port),
                     err);
    }
  }
  // Back to blocking for the caller's deadline-polled I/O.
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags & ~O_NONBLOCK) != 0) {
    const int err = errno;
    CloseQuiet(fd);
    return Unavail("fcntl", err);
  }
  return fd;
}

int64_t ReadRetry(int fd, void* buf, size_t len) {
  for (;;) {
    const ssize_t n = ::read(fd, buf, len);
    if (n >= 0) {
      return n;
    }
    if (errno == EINTR) {
      continue;
    }
    return -static_cast<int64_t>(errno);
  }
}

int64_t WriteRetry(int fd, const void* buf, size_t len) {
  for (;;) {
    const ssize_t n = ::write(fd, buf, len);
    if (n >= 0) {
      return n;
    }
    if (errno == EINTR) {
      continue;
    }
    return -static_cast<int64_t>(errno);
  }
}

int PollRetry(int fd, short events, int timeout_ms) {
  for (;;) {
    struct pollfd pfd;
    pfd.fd = fd;
    pfd.events = events;
    pfd.revents = 0;
    const int rc = ::poll(&pfd, 1, timeout_ms);
    if (rc > 0) {
      return pfd.revents;
    }
    if (rc == 0) {
      return 0;
    }
    if (errno == EINTR) {
      continue;
    }
    return -errno;
  }
}

Status SendAll(int fd, const void* buf, size_t len, double deadline_seconds) {
  const char* p = static_cast<const char*>(buf);
  size_t off = 0;
  const int timeout_ms =
      deadline_seconds <= 0 ? -1
                            : static_cast<int>(deadline_seconds * 1000) + 1;
  while (off < len) {
    const int revents = PollRetry(fd, POLLOUT, timeout_ms);
    if (revents < 0) {
      return Unavail("poll during send", -revents);
    }
    if (revents == 0) {
      return Status::Unavailable("send: timed out");
    }
    const int64_t n = WriteRetry(fd, p + off, len - off);
    if (n < 0) {
      return Unavail("send", static_cast<int>(-n));
    }
    off += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) != 0) {
    return Status::Internal(std::string("fcntl O_NONBLOCK: ") +
                            std::strerror(errno));
  }
  return Status::OK();
}

void CloseQuiet(int fd) {
  if (fd >= 0) {
    ::close(fd);
  }
}

#else  // _WIN32: the serving stack is POSIX-only.

void IgnoreSigpipe() {}

Result<int> ListenTcp(const Endpoint&, int, uint16_t*) {
  return Status::Unimplemented("net: not supported on this platform");
}

Result<int> ConnectTcp(const Endpoint&, double) {
  return Status::Unimplemented("net: not supported on this platform");
}

int64_t ReadRetry(int, void*, size_t) { return -1; }
int64_t WriteRetry(int, const void*, size_t) { return -1; }
int PollRetry(int, short, int) { return -1; }

Status SendAll(int, const void*, size_t, double) {
  return Status::Unimplemented("net: not supported on this platform");
}

Status SetNonBlocking(int) {
  return Status::Unimplemented("net: not supported on this platform");
}

void CloseQuiet(int) {}

#endif  // _WIN32

}  // namespace net
}  // namespace joinopt
