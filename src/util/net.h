#ifndef JOINOPT_UTIL_NET_H_
#define JOINOPT_UTIL_NET_H_

/// Thin POSIX socket helpers for the wire layer (serve/server, serve/
/// client): EINTR-retrying I/O, poll with an absolute deadline, listen/
/// connect with typed errors, and process-wide SIGPIPE suppression. All
/// functions return typed Status/Result values — nothing here aborts,
/// throws, or raises a signal. Windows builds get kUnimplemented stubs
/// (the serving stack is POSIX-only, like the fork-based chaos harness).

#include <cstdint>
#include <string>

#include "util/status.h"

namespace joinopt {
namespace net {

/// Ignores SIGPIPE for the whole process so a peer closing mid-write
/// surfaces as an EPIPE write error (a typed Status) instead of killing
/// us. Idempotent; call it once at server/client/CLI startup before any
/// socket I/O. No-op on platforms without SIGPIPE.
void IgnoreSigpipe();

/// A parsed "HOST:PORT" endpoint. Host is IPv4 dotted-quad or
/// "localhost"; port 0 is allowed (ephemeral bind — the bound port is
/// reported by Listen).
struct Endpoint {
  std::string host;
  uint16_t port = 0;
};

/// Strict "HOST:PORT" parse: kInvalidArgument (quoting the input) on a
/// missing colon, empty host, non-numeric or out-of-range port, or a
/// host that is neither dotted-quad IPv4 nor "localhost".
Result<Endpoint> ParseEndpoint(const std::string& spec);

/// Creates a listening TCP socket bound to `endpoint` (SO_REUSEADDR so a
/// restarted server can rebind immediately), non-blocking, backlog
/// `backlog`. On success stores the actually-bound port (meaningful when
/// endpoint.port was 0) in *bound_port when non-null.
Result<int> ListenTcp(const Endpoint& endpoint, int backlog,
                      uint16_t* bound_port);

/// Blocking connect with a deadline: non-blocking connect + poll +
/// SO_ERROR. Returns a CONNECTED socket left in blocking mode, or
/// kUnavailable when the peer refuses / the deadline passes.
/// `deadline_seconds` <= 0 means no limit.
Result<int> ConnectTcp(const Endpoint& endpoint, double deadline_seconds);

/// read() retried on EINTR. Returns bytes read (0 = EOF), or a negative
/// errno value on error. Never raises SIGPIPE concerns (reads don't).
int64_t ReadRetry(int fd, void* buf, size_t len);

/// write() retried on EINTR. Returns bytes written (possibly short for
/// non-blocking fds), or a negative errno value on error (EPIPE included,
/// thanks to IgnoreSigpipe).
int64_t WriteRetry(int fd, const void* buf, size_t len);

/// poll() on one fd retried on EINTR. `events` is the POLLIN/POLLOUT
/// mask; `timeout_ms` < 0 blocks forever. Returns the revents mask
/// (0 = timeout) or a negative errno value.
int PollRetry(int fd, short events, int timeout_ms);

/// Writes all of `len` bytes on a blocking fd, bounded by
/// `deadline_seconds` (<= 0 = none) via per-chunk polls. kUnavailable on
/// peer close / I/O error / deadline.
Status SendAll(int fd, const void* buf, size_t len, double deadline_seconds);

/// Sets O_NONBLOCK on `fd`. kInternal on fcntl failure.
Status SetNonBlocking(int fd);

/// close() that swallows errors and EINTR — for teardown paths where a
/// failed close has no useful recovery.
void CloseQuiet(int fd);

}  // namespace net
}  // namespace joinopt

#endif  // JOINOPT_UTIL_NET_H_
