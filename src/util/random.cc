#include "util/random.h"

namespace joinopt {

namespace {

/// splitmix64: used to expand the 64-bit seed into the 256-bit xoshiro
/// state, as recommended by the xoshiro authors.
uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t RotL(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Random::Random(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : state_) {
    word = SplitMix64(&sm);
  }
}

uint64_t Random::NextUint64() {
  const uint64_t result = RotL(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = RotL(state_[3], 45);
  return result;
}

uint64_t Random::Uniform(uint64_t bound) {
  JOINOPT_DCHECK(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    const uint64_t r = NextUint64();
    if (r >= threshold) {
      return r % bound;
    }
  }
}

int64_t Random::UniformInRange(int64_t lo, int64_t hi) {
  JOINOPT_DCHECK(lo <= hi);
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  // span == 0 means the full 64-bit range.
  if (span == 0) {
    return static_cast<int64_t>(NextUint64());
  }
  return lo + static_cast<int64_t>(Uniform(span));
}

double Random::NextDouble() {
  // 53 high bits -> uniform double in [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Random::UniformDouble(double lo, double hi) {
  JOINOPT_DCHECK(lo < hi);
  return lo + (hi - lo) * NextDouble();
}

bool Random::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

}  // namespace joinopt
