#ifndef JOINOPT_UTIL_RANDOM_H_
#define JOINOPT_UTIL_RANDOM_H_

#include <cstdint>

#include "util/macros.h"

namespace joinopt {

/// A small, fast, deterministic pseudo-random generator (xoshiro256**).
///
/// Workload generation and property tests need reproducible randomness that
/// is stable across platforms and standard-library versions; std::mt19937
/// distributions are not portable, so we own both the engine and the
/// distribution helpers.
class Random {
 public:
  /// Seeds the generator. Two Random instances with the same seed produce
  /// identical streams on every platform.
  explicit Random(uint64_t seed);

  /// Returns the next raw 64-bit value.
  uint64_t NextUint64();

  /// Returns a uniformly distributed integer in [0, bound). `bound` must be
  /// positive. Uses rejection sampling, so the distribution is exact.
  uint64_t Uniform(uint64_t bound);

  /// Returns a uniformly distributed integer in [lo, hi] (inclusive).
  /// Requires lo <= hi.
  int64_t UniformInRange(int64_t lo, int64_t hi);

  /// Returns a uniformly distributed double in [0, 1).
  double NextDouble();

  /// Returns a double in [lo, hi). Requires lo < hi.
  double UniformDouble(double lo, double hi);

  /// Returns true with probability `p` (clamped to [0, 1]).
  bool Bernoulli(double p);

 private:
  uint64_t state_[4];
};

}  // namespace joinopt

#endif  // JOINOPT_UTIL_RANDOM_H_
