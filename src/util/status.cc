#include "util/status.h"

namespace joinopt {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kBudgetExceeded:
      return "BudgetExceeded";
    case StatusCode::kInvalidCatalog:
      return "InvalidCatalog";
    case StatusCode::kDegenerateStatistics:
      return "DegenerateStatistics";
    case StatusCode::kOverloaded:
      return "Overloaded";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

std::optional<StatusCode> StatusCodeFromString(std::string_view name) {
  static constexpr StatusCode kAll[] = {
      StatusCode::kOk,           StatusCode::kInvalidArgument,
      StatusCode::kFailedPrecondition, StatusCode::kNotFound,
      StatusCode::kOutOfRange,   StatusCode::kInternal,
      StatusCode::kUnimplemented, StatusCode::kBudgetExceeded,
      StatusCode::kInvalidCatalog, StatusCode::kDegenerateStatistics,
      StatusCode::kOverloaded,     StatusCode::kUnavailable,
  };
  for (const StatusCode code : kAll) {
    if (StatusCodeToString(code) == name) {
      return code;
    }
  }
  return std::nullopt;
}

std::string Status::ToString() const {
  if (ok()) {
    return "OK";
  }
  std::string out(StatusCodeToString(code_));
  out += ": ";
  out += message_;
  return out;
}

}  // namespace joinopt
