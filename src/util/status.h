#ifndef JOINOPT_UTIL_STATUS_H_
#define JOINOPT_UTIL_STATUS_H_

#include <optional>
#include <string>
#include <string_view>
#include <utility>

#include "util/macros.h"

namespace joinopt {

/// Error categories used across the library. Kept deliberately small; the
/// message carries the detail.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kFailedPrecondition,
  kNotFound,
  kOutOfRange,
  kInternal,
  kUnimplemented,
  /// An optimization run hit a resource limit (memo-entry budget or
  /// wall-clock deadline) from OptimizeOptions before finding a plan.
  kBudgetExceeded,
  /// A catalog failed holistic validation (Catalog::Validate): bad
  /// cardinalities/selectivities, dangling join endpoints, or duplicate
  /// names. Raised at load time, before any optimizer runs.
  kInvalidCatalog,
  /// A query graph carries statistics an optimizer cannot price safely:
  /// non-finite or non-positive cardinalities, or selectivities outside
  /// (0, 1]. Raised by the optimizer prologue so inf/NaN never reach a
  /// plan-cost comparison.
  kDegenerateStatistics,
  /// The serving layer shed a request instead of queuing it forever: the
  /// admission queue was full, the predicted wait exceeded the request's
  /// deadline, the deadline expired while queued, or the service was
  /// shutting down. Always a load-management decision, never a statement
  /// about the query itself — resubmitting later is expected to succeed.
  kOverloaded,
  /// A CLIENT-side verdict: the wire client could not obtain a response
  /// from the server at all — connect refused/timed out, the connection
  /// died mid-exchange, or the retry budget/deadline ran out before a
  /// typed answer arrived. Servers never emit this code; its presence
  /// means "the network or the peer, not the query".
  kUnavailable,
};

/// Returns a stable human-readable name for a status code ("OK",
/// "InvalidArgument", ...).
std::string_view StatusCodeToString(StatusCode code);

/// Inverse of StatusCodeToString: resolves a stable code name back to its
/// StatusCode, or nullopt for an unknown name. Used by serialized formats
/// (repro bundles) that persist status codes as text.
std::optional<StatusCode> StatusCodeFromString(std::string_view name);

/// A lightweight success-or-error value, modeled after absl::Status.
///
/// The library does not throw exceptions (per the database-engine coding
/// guides); every fallible public API returns a Status or a Result<T>.
/// Status is cheap to copy in the OK case (no allocation).
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message. A kOk code must
  /// not carry a message; use the default constructor for success.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  /// Factory helpers, one per error category.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status BudgetExceeded(std::string msg) {
    return Status(StatusCode::kBudgetExceeded, std::move(msg));
  }
  static Status InvalidCatalog(std::string msg) {
    return Status(StatusCode::kInvalidCatalog, std::move(msg));
  }
  static Status DegenerateStatistics(std::string msg) {
    return Status(StatusCode::kDegenerateStatistics, std::move(msg));
  }
  static Status Overloaded(std::string msg) {
    return Status(StatusCode::kOverloaded, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  /// True iff this status represents success.
  bool ok() const { return code_ == StatusCode::kOk; }

  /// The status code.
  StatusCode code() const { return code_; }

  /// The error message; empty for OK statuses.
  const std::string& message() const { return message_; }

  /// "<Code>: <message>" rendering for logs and test failures.
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// A value-or-error holder, modeled after absl::StatusOr<T>.
///
/// A Result is either OK and holds a T, or holds a non-OK Status. Accessing
/// the value of a non-OK Result aborts in debug builds and is undefined in
/// release builds; call ok() first.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from an error status. `status` must not be OK.
  Result(Status status)  // NOLINT(runtime/explicit)
      : status_(std::move(status)) {
    JOINOPT_DCHECK(!status_.ok());
  }

  /// True iff a value is present.
  bool ok() const { return status_.ok(); }

  /// The status; OK when a value is present.
  const Status& status() const { return status_; }

  /// Value accessors. Must only be called when ok().
  const T& value() const& {
    JOINOPT_DCHECK(ok());
    return *value_;
  }
  T& value() & {
    JOINOPT_DCHECK(ok());
    return *value_;
  }
  T&& value() && {
    JOINOPT_DCHECK(ok());
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace joinopt

/// Propagates a non-OK status from an expression, absl-style.
#define JOINOPT_RETURN_IF_ERROR(expr)                \
  do {                                               \
    ::joinopt::Status joinopt_status_tmp_ = (expr);  \
    if (!joinopt_status_tmp_.ok()) {                 \
      return joinopt_status_tmp_;                    \
    }                                                \
  } while (false)

#endif  // JOINOPT_UTIL_STATUS_H_
