#ifndef JOINOPT_UTIL_STOPWATCH_H_
#define JOINOPT_UTIL_STOPWATCH_H_

#include <chrono>
#include <cstdint>

namespace joinopt {

/// A monotonic wall-clock stopwatch used by the optimizer instrumentation
/// and the benchmark harness.
class Stopwatch {
 public:
  /// Starts (or restarts) the stopwatch.
  Stopwatch() { Restart(); }

  /// Resets the start point to now.
  void Restart() { start_ = Clock::now(); }

  /// Elapsed time since construction/Restart, in nanoseconds.
  int64_t ElapsedNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }

  /// Elapsed time in seconds as a double.
  double ElapsedSeconds() const {
    return static_cast<double>(ElapsedNanos()) * 1e-9;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace joinopt

#endif  // JOINOPT_UTIL_STOPWATCH_H_
