#include "util/thread_pool.h"

namespace joinopt {

ThreadPool::ThreadPool(int threads)
    : worker_count_(threads < 1 ? 0 : threads - 1) {
  workers_.reserve(worker_count_);
  for (int i = 0; i < worker_count_; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i + 1); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

int ThreadPool::ResolveThreadCount(int requested) {
  int resolved = requested;
  if (resolved <= 0) {
    resolved = static_cast<int>(std::thread::hardware_concurrency());
  }
  if (resolved < 1) {
    resolved = 1;
  }
  if (resolved > 256) {
    resolved = 256;
  }
  return resolved;
}

uint64_t ThreadPool::DrainTasks(int worker) {
  uint64_t done = 0;
  for (;;) {
    const uint64_t task = next_task_.fetch_add(1, std::memory_order_relaxed);
    if (task >= batch_task_count_) {
      return done;
    }
    (*batch_fn_)(task, worker);
    ++done;
  }
}

void ThreadPool::WorkerLoop(int worker) {
  uint64_t seen_generation = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_ready_.wait(lock, [&] {
        return shutting_down_ || batch_generation_ != seen_generation;
      });
      if (shutting_down_) {
        return;
      }
      seen_generation = batch_generation_;
    }
    const uint64_t done = DrainTasks(worker);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      batch_tasks_finished_ += done;
      if (batch_tasks_finished_ == batch_task_count_) {
        batch_done_.notify_all();
      }
    }
  }
}

void ThreadPool::Run(uint64_t task_count,
                     const std::function<void(uint64_t, int)>& fn) {
  if (task_count == 0) {
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    batch_task_count_ = task_count;
    batch_tasks_finished_ = 0;
    batch_fn_ = &fn;
    next_task_.store(0, std::memory_order_relaxed);
    ++batch_generation_;
  }
  work_ready_.notify_all();
  const uint64_t done = DrainTasks(0);
  std::unique_lock<std::mutex> lock(mutex_);
  batch_tasks_finished_ += done;
  batch_done_.wait(lock,
                   [&] { return batch_tasks_finished_ == batch_task_count_; });
  batch_fn_ = nullptr;
}

}  // namespace joinopt
