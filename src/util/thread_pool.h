#ifndef JOINOPT_UTIL_THREAD_POOL_H_
#define JOINOPT_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace joinopt {

/// A reusable fork-join thread pool for the parallel DP variants.
///
/// The pool is built for barrier-structured work: a coordinator thread
/// repeatedly calls Run() with a batch of independent tasks, the pool
/// executes them (the coordinator participates, so a 1-thread pool spawns
/// no workers and degenerates to a plain loop), and Run() returns only
/// when every task of the batch has finished. Between Run() calls the
/// workers sleep on a condition variable — one pool instance serves all
/// size layers of a DP run without re-spawning threads.
///
/// Tasks are claimed dynamically (an atomic task counter), so uneven task
/// costs balance across workers. Task functions must not throw: the
/// library is exception-free, and an exception escaping a worker would
/// terminate the process.
///
/// Thread-safety: Run() must only be called from one coordinator thread
/// at a time (the pool is not a general executor); the task function is
/// called concurrently from multiple threads and must synchronize any
/// shared state itself.
class ThreadPool {
 public:
  /// Creates a pool with `threads` total execution slots (the coordinator
  /// counts as one, so `threads - 1` workers are spawned). `threads < 1`
  /// is clamped to 1.
  explicit ThreadPool(int threads);

  /// Joins all workers. Must not be called while Run() is in flight.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total execution slots (workers + the coordinator).
  int thread_count() const { return worker_count_ + 1; }

  /// Executes fn(task_index, worker) for every task_index in
  /// [0, task_count), distributing indices dynamically across the workers
  /// and the calling thread. `worker` identifies the executing slot
  /// (coordinator = 0, spawned workers 1..thread_count()-1) so callers can
  /// keep per-worker accumulators without synchronization. Returns when
  /// all tasks have completed. `fn` must not throw.
  void Run(uint64_t task_count,
           const std::function<void(uint64_t, int)>& fn);

  /// The number of threads a caller should use for `requested`:
  /// `requested` itself when positive, otherwise (0 = "auto") the
  /// hardware concurrency, clamped to [1, 256].
  static int ResolveThreadCount(int requested);

 private:
  void WorkerLoop(int worker);
  /// Claims and runs tasks of the current batch until none remain;
  /// returns the number of tasks this thread completed.
  uint64_t DrainTasks(int worker);

  const int worker_count_;
  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable batch_done_;
  /// Incremented per Run() call; workers wake when it advances.
  uint64_t batch_generation_ = 0;
  uint64_t batch_task_count_ = 0;
  uint64_t batch_tasks_finished_ = 0;
  const std::function<void(uint64_t, int)>* batch_fn_ = nullptr;
  std::atomic<uint64_t> next_task_{0};
  bool shutting_down_ = false;
};

}  // namespace joinopt

#endif  // JOINOPT_UTIL_THREAD_POOL_H_
