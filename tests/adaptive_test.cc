#include "core/adaptive.h"

#include <gtest/gtest.h>

#include "analytics/counts.h"
#include "core/dpccp.h"
#include "cost/cost_model.h"
#include "enumerate/cmp.h"
#include "graph/generators.h"
#include "plan/plan_validator.h"

namespace joinopt {
namespace {

TEST(CountCsgCmpPairsUpToTest, UncappedMatchesClosedForms) {
  for (const QueryShape shape :
       {QueryShape::kChain, QueryShape::kCycle, QueryShape::kStar,
        QueryShape::kClique}) {
    for (const int n : {2, 5, 9, 12}) {
      Result<QueryGraph> graph = MakeShapeQuery(shape, n);
      ASSERT_TRUE(graph.ok());
      EXPECT_EQ(CountCsgCmpPairsUpTo(*graph, ~uint64_t{0}),
                CcpCountUnordered(shape, n))
          << QueryShapeName(shape) << n;
    }
  }
}

TEST(CountCsgCmpPairsUpToTest, CapStopsEarly) {
  Result<QueryGraph> graph = MakeCliqueQuery(10);  // #ccp = 28501.
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(CountCsgCmpPairsUpTo(*graph, 1000), 1000u);
  EXPECT_EQ(CountCsgCmpPairsUpTo(*graph, 0), 0u);
  EXPECT_EQ(CountCsgCmpPairsUpTo(*graph, 1u << 20), 28501u);
}

TEST(AdaptiveOptimizerTest, ChoosesDPccpForSmallQueries) {
  const AdaptiveOptimizer optimizer;
  Result<QueryGraph> graph = MakeCliqueQuery(10);
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(optimizer.ChooseAlgorithm(*graph), "DPccp");
  Result<OptimizationResult> result =
      optimizer.Optimize(*graph, CoutCostModel());
  ASSERT_TRUE(result.ok());
  // Exact: matches DPccp bit for bit.
  Result<OptimizationResult> exact = DPccp().Optimize(*graph, CoutCostModel());
  ASSERT_TRUE(exact.ok());
  EXPECT_DOUBLE_EQ(result->cost, exact->cost);
}

TEST(AdaptiveOptimizerTest, ChoosesIDPBeyondTheBudget) {
  // A tight budget forces the heuristic path even on a modest clique.
  const AdaptiveOptimizer optimizer(/*exact_pair_budget=*/1000,
                                    /*idp_block_size=*/6);
  Result<QueryGraph> graph = MakeCliqueQuery(10);  // #ccp = 28501 > 1000.
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(optimizer.ChooseAlgorithm(*graph), "IDP1");
  Result<OptimizationResult> result =
      optimizer.Optimize(*graph, CoutCostModel());
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(ValidatePlan(result->plan, *graph, CoutCostModel()).ok());
  Result<OptimizationResult> exact = DPccp().Optimize(*graph, CoutCostModel());
  ASSERT_TRUE(exact.ok());
  EXPECT_GE(result->cost, exact->cost * (1 - 1e-12));
}

TEST(AdaptiveOptimizerTest, ChoosesCrossProductsWhenDisconnected) {
  Result<QueryGraph> graph = QueryGraph::WithRelations(4);
  ASSERT_TRUE(graph.ok());
  ASSERT_TRUE(graph->AddEdge(0, 1).ok());
  ASSERT_TRUE(graph->AddEdge(2, 3).ok());
  const AdaptiveOptimizer optimizer;
  EXPECT_EQ(optimizer.ChooseAlgorithm(*graph), "DPsizeCP");
  Result<OptimizationResult> result =
      optimizer.Optimize(*graph, CoutCostModel());
  ASSERT_TRUE(result.ok());
  PlanValidationOptions options;
  options.forbid_cross_products = false;
  EXPECT_TRUE(ValidatePlan(result->plan, *graph, CoutCostModel(), options).ok());
}

TEST(AdaptiveOptimizerTest, HandlesHugeChainViaExactPath) {
  // A 64-relation chain has only 43680 pairs — exact remains affordable
  // even though n is far beyond DPsub/DPsize territory.
  Result<QueryGraph> graph = MakeChainQuery(64);
  ASSERT_TRUE(graph.ok());
  const AdaptiveOptimizer optimizer;
  EXPECT_EQ(optimizer.ChooseAlgorithm(*graph), "DPccp");
  Result<OptimizationResult> result =
      optimizer.Optimize(*graph, CoutCostModel());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->plan.LeafCount(), 64);
}

TEST(AdaptiveOptimizerTest, RejectsEmptyGraph) {
  EXPECT_FALSE(AdaptiveOptimizer().Optimize(QueryGraph(), CoutCostModel()).ok());
}

}  // namespace
}  // namespace joinopt
