/// Adversarial-statistics regression suite: every join orderer, under
/// every cost model, must either (a) reject illegal statistics with
/// kDegenerateStatistics before optimizing, or (b) absorb legal-but-
/// extreme statistics through the saturating arithmetic and still
/// produce a finite, validator-clean plan. No input in this file may
/// crash, abort, or produce inf/NaN in a result.

#include <cmath>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "cost/saturation.h"
#include "gtest/gtest.h"
#include "joinopt.h"
#include "testing/adversarial.h"

namespace joinopt {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
const double kNaN = std::numeric_limits<double>::quiet_NaN();

std::vector<std::unique_ptr<const CostModel>> AllCostModels() {
  std::vector<std::unique_ptr<const CostModel>> models;
  models.push_back(std::make_unique<CoutCostModel>());
  models.push_back(
      std::make_unique<BestOfCostModel>(BestOfCostModel::Standard()));
  models.push_back(std::make_unique<HashJoinCostModel>());
  models.push_back(std::make_unique<NestedLoopCostModel>());
  models.push_back(std::make_unique<SortMergeCostModel>());
  return models;
}

TEST(SaturationTest, ClampsOverflowInfAndNaN) {
  EXPECT_EQ(SaturateCardinality(kInf), kCardinalityCeiling);
  EXPECT_EQ(SaturateCardinality(kNaN), kCardinalityCeiling);
  EXPECT_EQ(SaturateCardinality(1e308), kCardinalityCeiling);
  EXPECT_EQ(SaturateCardinality(-3.0), 0.0);
  EXPECT_EQ(SaturateCardinality(42.0), 42.0);
  EXPECT_EQ(SaturateCost(kInf), kCostCeiling);
  EXPECT_EQ(SaturateCost(kNaN), kCostCeiling);
  EXPECT_EQ(SaturateCost(7.5), 7.5);
}

TEST(ValidateGraphStatisticsTest, AcceptsBoundaryLegalValues) {
  QueryGraph graph;
  ASSERT_TRUE(graph.AddRelation(1.0, "a").ok());    // Smallest legal card.
  ASSERT_TRUE(graph.AddRelation(1e308, "b").ok());  // Huge but finite.
  ASSERT_TRUE(graph.AddEdge(0, 1, 1.0).ok());       // Boundary selectivity.
  EXPECT_TRUE(ValidateGraphStatistics(graph).ok());
}

TEST(ValidateGraphStatisticsTest, RejectsEveryIllegalStatistic) {
  const double bad_cards[] = {kNaN, kInf, -kInf, 0.0, -42.0};
  for (const double bad : bad_cards) {
    QueryGraph graph;
    ASSERT_TRUE(graph.AddRelation(10.0, "a").ok());
    ASSERT_TRUE(graph.AddRelation(10.0, "b").ok());
    ASSERT_TRUE(graph.AddEdge(0, 1, 0.5).ok());
    testing::StatsCorruptor::SetCardinality(graph, 1, bad);
    const Status status = ValidateGraphStatistics(graph);
    EXPECT_EQ(status.code(), StatusCode::kDegenerateStatistics)
        << "cardinality " << bad << ": " << status.ToString();
  }
  const double bad_sels[] = {kNaN, kInf, 0.0, -0.25, 1.0000001, 1.5};
  for (const double bad : bad_sels) {
    QueryGraph graph;
    ASSERT_TRUE(graph.AddRelation(10.0, "a").ok());
    ASSERT_TRUE(graph.AddRelation(10.0, "b").ok());
    ASSERT_TRUE(graph.AddEdge(0, 1, 0.5).ok());
    testing::StatsCorruptor::SetSelectivity(graph, 0, bad);
    const Status status = ValidateGraphStatistics(graph);
    EXPECT_EQ(status.code(), StatusCode::kDegenerateStatistics)
        << "selectivity " << bad << ": " << status.ToString();
  }
}

/// Every registered orderer must refuse corrupted statistics with
/// kDegenerateStatistics — the prologue runs before any algorithm-
/// specific precondition, so even shape-restricted orderers (IKKBZ)
/// report the statistics problem, not a shape problem.
TEST(AdversarialStatsTest, AllOrderersRejectCorruptStatistics) {
  const double bad_values[] = {kNaN, kInf, 0.0, -1.0, -kInf};
  const CoutCostModel cost_model;
  for (const double bad : bad_values) {
    Result<QueryGraph> drawn = MakeChainQuery(5);
    ASSERT_TRUE(drawn.ok());
    QueryGraph graph = std::move(*drawn);
    testing::StatsCorruptor::SetCardinality(graph, 2, bad);
    for (const std::string& name : OptimizerRegistry::Names()) {
      const JoinOrderer* orderer = OptimizerRegistry::Get(name);
      Result<OptimizationResult> result =
          orderer->Optimize(graph, cost_model);
      ASSERT_FALSE(result.ok()) << name << " accepted cardinality " << bad;
      EXPECT_EQ(result.status().code(), StatusCode::kDegenerateStatistics)
          << name << " with cardinality " << bad << ": "
          << result.status().ToString();
    }
  }
}

TEST(AdversarialStatsTest, AllOrderersRejectOutOfRangeSelectivity) {
  const double bad_sels[] = {kNaN, 0.0, 1.5, -0.25};
  const CoutCostModel cost_model;
  for (const double bad : bad_sels) {
    Result<QueryGraph> drawn = MakeChainQuery(5);
    ASSERT_TRUE(drawn.ok());
    QueryGraph graph = std::move(*drawn);
    testing::StatsCorruptor::SetSelectivity(graph, 1, bad);
    for (const std::string& name : OptimizerRegistry::Names()) {
      Result<OptimizationResult> result =
          OptimizerRegistry::Get(name)->Optimize(graph, cost_model);
      ASSERT_FALSE(result.ok()) << name << " accepted selectivity " << bad;
      EXPECT_EQ(result.status().code(), StatusCode::kDegenerateStatistics)
          << name << " with selectivity " << bad << ": "
          << result.status().ToString();
    }
  }
}

/// Legal-but-extreme statistics: cardinalities near the double range
/// limit and selectivities near the underflow limit. Every orderer under
/// every cost model must terminate with a finite, below-ceiling cost and
/// a structurally valid plan — the saturating arithmetic absorbs the
/// overflow instead of comparing inf against inf.
TEST(AdversarialStatsTest, ExtremeLegalStatisticsStayFiniteEverywhere) {
  Result<QueryGraph> drawn = MakeChainQuery(6);
  ASSERT_TRUE(drawn.ok());
  QueryGraph graph = std::move(*drawn);
  Random rng(20060912);
  testing::ApplyExtremeStatistics(graph, rng);
  ASSERT_TRUE(ValidateGraphStatistics(graph).ok());

  const std::vector<std::unique_ptr<const CostModel>> models =
      AllCostModels();
  for (const std::string& name : OptimizerRegistry::Names()) {
    const JoinOrderer* orderer = OptimizerRegistry::Get(name);
    for (const auto& model : models) {
      Result<OptimizationResult> result = orderer->Optimize(graph, *model);
      if (name == "DPconv" && model->name() != "Cout") {
        // DPconv's contract: non-Cout models are refused typed at entry
        // (subset convolution prices partitions, not operator orders) —
        // never a silently suboptimal plan.
        ASSERT_FALSE(result.ok()) << model->name();
        EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument)
            << model->name() << ": " << result.status().ToString();
        continue;
      }
      ASSERT_TRUE(result.ok())
          << name << ": " << result.status().ToString();
      EXPECT_TRUE(std::isfinite(result->cost)) << name;
      EXPECT_LE(result->cost, kCostCeiling) << name;
      EXPECT_TRUE(std::isfinite(result->cardinality)) << name;
      PlanValidationOptions validation;
      // The cross-product variants may legally pick cross products, and
      // under these statistics a cross product can genuinely win.
      validation.forbid_cross_products = name.find("CP") == std::string::npos;
      const Status valid =
          ValidatePlan(result->plan, graph, *model, validation);
      EXPECT_TRUE(valid.ok()) << name << ": " << valid.ToString();
    }
  }
}

/// The worst case for naive arithmetic: every product overflows at the
/// first join (1e308 · 1e308). The exact DPs must still agree with each
/// other — the canonical per-set estimates make saturated values
/// enumeration-order-independent.
TEST(AdversarialStatsTest, ImmediateOverflowStillAgreesAcrossExactDPs) {
  Result<QueryGraph> drawn = MakeCliqueQuery(5);
  ASSERT_TRUE(drawn.ok());
  QueryGraph graph = std::move(*drawn);
  for (int i = 0; i < graph.relation_count(); ++i) {
    testing::StatsCorruptor::SetCardinality(graph, i, 1e308);
  }
  const CoutCostModel cost_model;
  const char* const exact[] = {"DPsize", "DPsub", "DPccp", "DPhyp"};
  double first_cost = -1.0;
  for (const char* name : exact) {
    Result<OptimizationResult> result =
        OptimizerRegistry::Get(name)->Optimize(graph, cost_model);
    ASSERT_TRUE(result.ok()) << name << ": " << result.status().ToString();
    EXPECT_TRUE(std::isfinite(result->cost)) << name;
    if (first_cost < 0.0) {
      first_cost = result->cost;
    } else {
      EXPECT_EQ(result->cost, first_cost) << name;
    }
  }
}

/// Underflow-rescale pattern: a clamped intermediate multiplied back
/// down by tiny selectivities. The memoized estimate must equal the
/// validator's recomputation (split-invariance of EstimateSet).
TEST(AdversarialStatsTest, RescaledSaturationRevalidates) {
  Result<QueryGraph> drawn = MakeStarQuery(5);
  ASSERT_TRUE(drawn.ok());
  QueryGraph graph = std::move(*drawn);
  for (int i = 0; i < graph.relation_count(); ++i) {
    testing::StatsCorruptor::SetCardinality(graph, i, 1e200);
  }
  for (int e = 0; e < graph.edge_count(); ++e) {
    testing::StatsCorruptor::SetSelectivity(graph, e, 1e-250);
  }
  const BestOfCostModel cost_model = BestOfCostModel::Standard();
  for (const char* name : {"DPsize", "DPsub", "DPccp", "DPhyp", "GOO"}) {
    Result<OptimizationResult> result =
        OptimizerRegistry::Get(name)->Optimize(graph, cost_model);
    ASSERT_TRUE(result.ok()) << name << ": " << result.status().ToString();
    const Status valid = ValidatePlan(result->plan, graph, cost_model);
    EXPECT_TRUE(valid.ok()) << name << ": " << valid.ToString();
  }
}

/// Catalog loaders reject illegal statistics at the boundary with
/// kInvalidCatalog — before a QueryGraph is ever built.
TEST(AdversarialStatsTest, LoadersRejectIllegalStatisticsAsInvalidCatalog) {
  // AddRelation rejects non-finite/non-positive cardinalities inline.
  Catalog catalog;
  EXPECT_FALSE(catalog.AddRelation("a", kNaN).ok());
  EXPECT_FALSE(catalog.AddRelation("a", kInf).ok());
  EXPECT_FALSE(catalog.AddRelation("a", 0.0).ok());
  // The DSL loader surfaces Validate() failures as kInvalidCatalog; inf
  // parses as a number but fails catalog validation.
  Result<Catalog> parsed = ParseQuerySpec("rel a inf\nrel b 10\n");
  if (!parsed.ok()) {
    // Either the line-level check or Validate() may catch it first;
    // both are load-time rejections.
    EXPECT_TRUE(parsed.status().code() == StatusCode::kInvalidArgument ||
                parsed.status().code() == StatusCode::kInvalidCatalog)
        << parsed.status().ToString();
  } else {
    ADD_FAILURE() << "loader accepted an infinite cardinality";
  }
}

}  // namespace
}  // namespace joinopt
