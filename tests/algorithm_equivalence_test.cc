#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/dpccp.h"
#include "core/dpsize.h"
#include "core/dpsub.h"
#include "cost/cost_model.h"
#include "graph/generators.h"
#include "plan/plan_validator.h"

namespace joinopt {
namespace {

/// The central cross-algorithm property of the paper: DPsize, DPsub, and
/// DPccp search the same space (bushy trees without cross products), so
/// on every query graph and cost model they must agree on
///   * the optimal cost,
///   * the number of surviving csg-cmp-pairs (the OnoLohmanCounter), and
///   * the number of plans stored (#csg of the graph).
/// This file sweeps that property across graph families, sizes, seeds,
/// and cost models.

struct Case {
  std::string label;
  QueryGraph graph;
};

std::vector<Case> AllCases() {
  std::vector<Case> cases;
  for (const QueryShape shape :
       {QueryShape::kChain, QueryShape::kCycle, QueryShape::kStar,
        QueryShape::kClique}) {
    for (const int n : {2, 3, 5, 8, 10}) {
      Result<QueryGraph> graph = MakeShapeQuery(shape, n);
      JOINOPT_CHECK(graph.ok());
      cases.push_back({std::string(QueryShapeName(shape)) + std::to_string(n),
                       std::move(*graph)});
    }
  }
  for (const int rows : {2, 3}) {
    Result<QueryGraph> grid = MakeGridQuery(rows, 4);
    JOINOPT_CHECK(grid.ok());
    cases.push_back({"grid" + std::to_string(rows) + "x4", std::move(*grid)});
  }
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    WorkloadConfig config;
    config.seed = seed;
    Result<QueryGraph> tree = MakeRandomTreeQuery(9, config);
    JOINOPT_CHECK(tree.ok());
    cases.push_back({"tree_seed" + std::to_string(seed), std::move(*tree)});
    Result<QueryGraph> dense = MakeRandomConnectedQuery(8, 8, config);
    JOINOPT_CHECK(dense.ok());
    cases.push_back({"dense_seed" + std::to_string(seed), std::move(*dense)});
  }
  return cases;
}

std::vector<std::unique_ptr<CostModel>> AllCostModels() {
  std::vector<std::unique_ptr<CostModel>> models;
  models.push_back(std::make_unique<CoutCostModel>());
  models.push_back(std::make_unique<NestedLoopCostModel>());
  models.push_back(std::make_unique<HashJoinCostModel>(2.0, 1.0));
  models.push_back(std::make_unique<SortMergeCostModel>());
  models.push_back(std::make_unique<DiskNestedLoopCostModel>());
  models.push_back(
      std::make_unique<BestOfCostModel>(BestOfCostModel::Standard()));
  return models;
}

TEST(AlgorithmEquivalenceTest, AllThreeAlgorithmsAgreeEverywhere) {
  const DPsize dpsize;
  const DPsub dpsub;
  const DPccp dpccp;
  const std::vector<std::unique_ptr<CostModel>> models = AllCostModels();

  for (const Case& test_case : AllCases()) {
    for (const auto& model : models) {
      Result<OptimizationResult> size_result =
          dpsize.Optimize(test_case.graph, *model);
      Result<OptimizationResult> sub_result =
          dpsub.Optimize(test_case.graph, *model);
      Result<OptimizationResult> ccp_result =
          dpccp.Optimize(test_case.graph, *model);
      ASSERT_TRUE(size_result.ok()) << test_case.label;
      ASSERT_TRUE(sub_result.ok()) << test_case.label;
      ASSERT_TRUE(ccp_result.ok()) << test_case.label;

      const std::string context =
          test_case.label + " under " + std::string(model->name());
      // Same optimum (allow for float associativity noise).
      EXPECT_NEAR(size_result->cost / ccp_result->cost, 1.0, 1e-9) << context;
      EXPECT_NEAR(sub_result->cost / ccp_result->cost, 1.0, 1e-9) << context;

      // Same surviving-pair count: a pure graph property.
      EXPECT_EQ(size_result->stats.ono_lohman_counter,
                ccp_result->stats.ono_lohman_counter)
          << context;
      EXPECT_EQ(sub_result->stats.ono_lohman_counter,
                ccp_result->stats.ono_lohman_counter)
          << context;

      // Same table population: one plan per connected subset.
      EXPECT_EQ(size_result->stats.plans_stored,
                ccp_result->stats.plans_stored)
          << context;
      EXPECT_EQ(sub_result->stats.plans_stored,
                ccp_result->stats.plans_stored)
          << context;

      // All plans validate against their cost model.
      EXPECT_TRUE(
          ValidatePlan(size_result->plan, test_case.graph, *model).ok())
          << context;
      EXPECT_TRUE(ValidatePlan(sub_result->plan, test_case.graph, *model).ok())
          << context;
      EXPECT_TRUE(ValidatePlan(ccp_result->plan, test_case.graph, *model).ok())
          << context;
    }
  }
}

TEST(AlgorithmEquivalenceTest, DPccpNeverExceedsOthersInnerCounter) {
  // #ccp/2 is the lower bound for any DP enumeration (Section 2.3);
  // DPccp attains it, so its inner counter can never exceed the others'.
  const DPsize dpsize;
  const DPsub dpsub;
  const DPccp dpccp;
  const CoutCostModel model;
  for (const Case& test_case : AllCases()) {
    Result<OptimizationResult> size_result =
        dpsize.Optimize(test_case.graph, model);
    Result<OptimizationResult> sub_result =
        dpsub.Optimize(test_case.graph, model);
    Result<OptimizationResult> ccp_result =
        dpccp.Optimize(test_case.graph, model);
    ASSERT_TRUE(size_result.ok() && sub_result.ok() && ccp_result.ok());
    EXPECT_LE(ccp_result->stats.inner_counter,
              size_result->stats.inner_counter)
        << test_case.label;
    EXPECT_LE(ccp_result->stats.inner_counter, sub_result->stats.inner_counter)
        << test_case.label;
    // And DPccp does exactly the lower bound: inner == surviving pairs.
    EXPECT_EQ(ccp_result->stats.inner_counter,
              ccp_result->stats.ono_lohman_counter)
        << test_case.label;
  }
}

TEST(AlgorithmEquivalenceTest, LabelShufflingIsInvisible) {
  // Optimal cost is invariant under relabeling for every algorithm.
  const DPsize dpsize;
  const DPsub dpsub;
  const DPccp dpccp;
  const CoutCostModel model;
  Random rng(4242);
  for (const uint64_t seed : {31u, 32u, 33u}) {
    WorkloadConfig config;
    config.seed = seed;
    Result<QueryGraph> graph = MakeRandomConnectedQuery(8, 4, config);
    ASSERT_TRUE(graph.ok());
    Result<OptimizationResult> reference = dpccp.Optimize(*graph, model);
    ASSERT_TRUE(reference.ok());
    for (int round = 0; round < 3; ++round) {
      const QueryGraph shuffled = ShuffleLabels(*graph, rng);
      for (const JoinOrderer* optimizer :
           {static_cast<const JoinOrderer*>(&dpsize),
            static_cast<const JoinOrderer*>(&dpsub),
            static_cast<const JoinOrderer*>(&dpccp)}) {
        Result<OptimizationResult> result =
            optimizer->Optimize(shuffled, model);
        ASSERT_TRUE(result.ok()) << optimizer->name();
        EXPECT_NEAR(result->cost / reference->cost, 1.0, 1e-9)
            << optimizer->name() << " seed " << seed;
      }
    }
  }
}

}  // namespace
}  // namespace joinopt
