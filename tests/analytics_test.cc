#include "analytics/counts.h"

#include <gtest/gtest.h>

#include "analytics/brute_force.h"
#include "graph/generators.h"

namespace joinopt {
namespace {

TEST(BinomialTest, SmallValues) {
  EXPECT_EQ(Binomial(0, 0), 1u);
  EXPECT_EQ(Binomial(5, 0), 1u);
  EXPECT_EQ(Binomial(5, 5), 1u);
  EXPECT_EQ(Binomial(5, 2), 10u);
  EXPECT_EQ(Binomial(10, 5), 252u);
  EXPECT_EQ(Binomial(5, 6), 0u);
  EXPECT_EQ(Binomial(5, -1), 0u);
}

TEST(BinomialTest, LargeValuesExact) {
  EXPECT_EQ(Binomial(40, 20), 137846528820ull);
  EXPECT_EQ(Binomial(60, 30), 118264581564861424ull);
}

TEST(AnalyticsTest, CsgCountClosedForms) {
  // Eq. 5: chain n(n+1)/2.
  EXPECT_EQ(CsgCount(QueryShape::kChain, 5), 15u);
  // Eq. 7: cycle n² - n + 1.
  EXPECT_EQ(CsgCount(QueryShape::kCycle, 5), 21u);
  // Eq. 9: star 2^{n-1} + n - 1.
  EXPECT_EQ(CsgCount(QueryShape::kStar, 5), 20u);
  // Eq. 11: clique 2^n - 1.
  EXPECT_EQ(CsgCount(QueryShape::kClique, 5), 31u);
}

TEST(AnalyticsTest, CsgCountMatchesBruteForce) {
  for (const QueryShape shape :
       {QueryShape::kChain, QueryShape::kCycle, QueryShape::kStar,
        QueryShape::kClique}) {
    for (int n = 2; n <= 12; ++n) {
      Result<QueryGraph> graph = MakeShapeQuery(shape, n);
      ASSERT_TRUE(graph.ok());
      EXPECT_EQ(CsgCount(shape, n), BruteForceCsgCount(*graph))
          << QueryShapeName(shape) << n;
    }
  }
}

TEST(AnalyticsTest, ConnectedSubsetCountBySizeSumsToCsgCount) {
  for (const QueryShape shape :
       {QueryShape::kChain, QueryShape::kCycle, QueryShape::kStar,
        QueryShape::kClique}) {
    for (const int n : {2, 5, 9, 14}) {
      uint64_t total = 0;
      for (int k = 1; k <= n; ++k) {
        total += ConnectedSubsetCountBySize(shape, n, k);
      }
      EXPECT_EQ(total, CsgCount(shape, n)) << QueryShapeName(shape) << n;
    }
  }
}

TEST(AnalyticsTest, ConnectedSubsetCountBySizeMatchesBruteForce) {
  for (const QueryShape shape :
       {QueryShape::kChain, QueryShape::kCycle, QueryShape::kStar,
        QueryShape::kClique}) {
    for (const int n : {3, 6, 10}) {
      Result<QueryGraph> graph = MakeShapeQuery(shape, n);
      ASSERT_TRUE(graph.ok());
      const std::vector<uint64_t> by_size = BruteForceCsgCountBySize(*graph);
      for (int k = 1; k <= n; ++k) {
        EXPECT_EQ(ConnectedSubsetCountBySize(shape, n, k), by_size[k])
            << QueryShapeName(shape) << " n=" << n << " k=" << k;
      }
    }
  }
}

TEST(AnalyticsTest, CcpCountMatchesBruteForce) {
  for (const QueryShape shape :
       {QueryShape::kChain, QueryShape::kCycle, QueryShape::kStar,
        QueryShape::kClique}) {
    for (int n = 2; n <= 11; ++n) {
      Result<QueryGraph> graph = MakeShapeQuery(shape, n);
      ASSERT_TRUE(graph.ok());
      EXPECT_EQ(CcpCountUnordered(shape, n), BruteForceCcpCountUnordered(*graph))
          << QueryShapeName(shape) << n;
      EXPECT_EQ(CcpCountOrdered(shape, n), 2 * CcpCountUnordered(shape, n));
    }
  }
}

TEST(AnalyticsTest, DegenerateCycleFallsBackToChain) {
  EXPECT_EQ(CsgCount(QueryShape::kCycle, 2), CsgCount(QueryShape::kChain, 2));
  EXPECT_EQ(CcpCountUnordered(QueryShape::kCycle, 2),
            CcpCountUnordered(QueryShape::kChain, 2));
  EXPECT_EQ(PredictedInnerCounterDPsub(QueryShape::kCycle, 2),
            PredictedInnerCounterDPsub(QueryShape::kChain, 2));
}

TEST(AnalyticsTest, SingleRelationEdgeCases) {
  for (const QueryShape shape :
       {QueryShape::kChain, QueryShape::kStar, QueryShape::kClique}) {
    EXPECT_EQ(CsgCount(shape, 1), 1u) << QueryShapeName(shape);
    EXPECT_EQ(CcpCountUnordered(shape, 1), 0u);
    EXPECT_EQ(PredictedInnerCounterDPsize(shape, 1), 0u);
    EXPECT_EQ(PredictedInnerCounterDPsub(shape, 1), 0u);
  }
}

TEST(AnalyticsTest, DPsubFailureCountFormula) {
  // Section 2.2: failures of the (*) check = 2^n - #csg - 1.
  EXPECT_EQ(PredictedDPsubConnectednessFailures(QueryShape::kChain, 5),
            32u - 15u - 1u);
  EXPECT_EQ(PredictedDPsubConnectednessFailures(QueryShape::kClique, 5), 0u);
}

TEST(AnalyticsTest, AsymptoticOrderingsFromThePaper) {
  // Section 2.4's qualitative conclusions, as inequalities at n = 18:
  // DPsize beats DPsub on chains/cycles, loses on stars/cliques, and
  // both dominate #ccp by orders of magnitude except DPsub on cliques.
  const int n = 18;
  EXPECT_LT(PredictedInnerCounterDPsize(QueryShape::kChain, n),
            PredictedInnerCounterDPsub(QueryShape::kChain, n));
  EXPECT_LT(PredictedInnerCounterDPsize(QueryShape::kCycle, n),
            PredictedInnerCounterDPsub(QueryShape::kCycle, n));
  EXPECT_GT(PredictedInnerCounterDPsize(QueryShape::kStar, n),
            PredictedInnerCounterDPsub(QueryShape::kStar, n));
  EXPECT_GT(PredictedInnerCounterDPsize(QueryShape::kClique, n),
            PredictedInnerCounterDPsub(QueryShape::kClique, n));
  // DPsub on cliques is exactly the ordered-pair count (its enumeration
  // wastes nothing there): I = #ccp (ordered) = 2 * OnoLohman.
  EXPECT_EQ(PredictedInnerCounterDPsub(QueryShape::kClique, n),
            CcpCountOrdered(QueryShape::kClique, n));
  // On chains the DP-variants are orders of magnitude above the bound.
  EXPECT_GT(PredictedInnerCounterDPsub(QueryShape::kChain, n),
            100 * CcpCountUnordered(QueryShape::kChain, n));
}

TEST(AnalyticsTest, Figure3SpotChecks) {
  // A few cells transcribed straight from the paper (more in
  // counter_formula_test.cc).
  EXPECT_EQ(PredictedInnerCounterDPsub(QueryShape::kChain, 20), 4193840u);
  EXPECT_EQ(PredictedInnerCounterDPsize(QueryShape::kStar, 20),
            59892991338u);
  EXPECT_EQ(CcpCountUnordered(QueryShape::kClique, 20), 1742343625u);
}

}  // namespace
}  // namespace joinopt
