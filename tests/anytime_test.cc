/// The anytime-optimization contract (see DESIGN.md): when a run is
/// interrupted mid-enumeration and the caller opted into salvage, every
/// exact DP must return a COMPLETE, validator-clean join tree assembled
/// from the partial memo, tagged best-effort with a populated
/// DegradationReport — never a bare kBudgetExceeded, never a crash.
///
/// The sweep interrupts each exact DP at three deterministic points of
/// its enumeration — the first governor tick, the middle one, and the
/// very last one — across all seven workload graph families. The fault
/// injector's kDeadline point makes the trip step exact: a prepass with
/// an unreachable firing step counts the ticks, then the real runs fire
/// at tick 1, T/2, and T.

#include <algorithm>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "joinopt.h"
#include "testing/fault_injection.h"

namespace joinopt {
namespace {

using testing::FaultConfig;
using testing::FaultInjector;
using testing::FaultPoint;
using testing::ScopedFaultInjection;

/// A firing step no run ever reaches: the prepass arms the deadline
/// point with it so arrivals are counted without tripping.
constexpr uint64_t kNeverFires = uint64_t{1} << 40;

const char* const kExactDPs[] = {"DPsize", "DPsub", "DPccp", "DPconv",
                                 "DPhyp"};

struct Family {
  std::string name;
  QueryGraph graph;
};

std::vector<Family> AllFamilies() {
  WorkloadConfig config;
  config.seed = 20060912;
  std::vector<Family> families;
  auto add = [&families](const char* name, Result<QueryGraph> graph) {
    EXPECT_TRUE(graph.ok()) << name << ": " << graph.status().ToString();
    if (graph.ok()) {
      families.push_back({name, *std::move(graph)});
    }
  };
  add("chain-8", MakeChainQuery(8, config));
  add("cycle-7", MakeCycleQuery(7, config));
  add("star-7", MakeStarQuery(7, config));
  add("clique-6", MakeCliqueQuery(6, config));
  add("snowflake-3x2", MakeSnowflakeQuery(3, 2, config));
  add("grid-3x3", MakeGridQuery(3, 3, config));
  add("random-8", MakeRandomConnectedQuery(8, 6, config));
  return families;
}

/// Runs `algorithm` with the deadline fault armed at `fire_at` ticks and
/// salvage enabled; returns the result.
Result<OptimizationResult> RunInterrupted(const char* algorithm,
                                          const QueryGraph& graph,
                                          const CostModel& cost_model,
                                          uint64_t fire_at) {
  FaultConfig config;
  config.at(FaultPoint::kDeadline) = fire_at;
  ScopedFaultInjection scoped(config);
  OptimizeOptions options;
  options.salvage_on_interrupt = true;
  return OptimizerRegistry::Get(algorithm)->Optimize(graph, cost_model,
                                                     options);
}

TEST(AnytimeTest, EveryExactDPSalvagesAtFirstMiddleAndLastTick) {
  const CoutCostModel cost_model;
  for (const Family& family : AllFamilies()) {
    Result<OptimizationResult> exact =
        OptimizerRegistry::Get("DPccp")->Optimize(family.graph, cost_model);
    ASSERT_TRUE(exact.ok()) << family.name;
    const double optimum = exact->cost;

    for (const char* algorithm : kExactDPs) {
      // Prepass: count the governor ticks of an uninterrupted run, and
      // keep its inner counter — if an interrupted run reaches the same
      // count, every cost comparison happened before the trip and the
      // memo is complete.
      uint64_t total_ticks = 0;
      uint64_t clean_inner = 0;
      double clean_cost = 0.0;
      {
        FaultConfig config;
        config.at(FaultPoint::kDeadline) = kNeverFires;
        ScopedFaultInjection scoped(config);
        Result<OptimizationResult> clean =
            OptimizerRegistry::Get(algorithm)->Optimize(family.graph,
                                                        cost_model);
        ASSERT_TRUE(clean.ok()) << family.name << "/" << algorithm;
        total_ticks =
            FaultInjector::Instance().arrivals(FaultPoint::kDeadline);
        clean_inner = clean->stats.inner_counter;
        clean_cost = clean->cost;
      }
      ASSERT_GE(total_ticks, 1u) << family.name << "/" << algorithm;

      uint64_t trip_points[] = {1, (total_ticks + 1) / 2, total_ticks};
      for (const uint64_t fire_at : trip_points) {
        SCOPED_TRACE(family.name + std::string("/") + algorithm +
                     " interrupted at tick " + std::to_string(fire_at) +
                     " of " + std::to_string(total_ticks));
        Result<OptimizationResult> salvaged =
            RunInterrupted(algorithm, family.graph, cost_model, fire_at);
        // The contract: a complete best-effort plan, not a bare error.
        ASSERT_TRUE(salvaged.ok()) << salvaged.status().ToString();
        EXPECT_TRUE(salvaged->stats.best_effort);
        EXPECT_TRUE(salvaged->degradation.best_effort);
        EXPECT_EQ(salvaged->degradation.trigger, StatusCode::kBudgetExceeded);
        EXPECT_FALSE(salvaged->degradation.trigger_message.empty());
        EXPECT_GE(salvaged->degradation.fragments_used, 1);
        EXPECT_GT(salvaged->degradation.memo_entries, 0u);
        EXPECT_GE(salvaged->degradation.memo_coverage, 0.0);
        EXPECT_LE(salvaged->degradation.memo_coverage, 1.0);
        EXPECT_TRUE(
            ValidatePlan(salvaged->plan, family.graph, cost_model).ok());
        // A salvaged plan is a real plan for the full query, so the true
        // optimum bounds it from below.
        EXPECT_GE(salvaged->cost, optimum - 1e-9 * std::max(1.0, optimum));
        // At the last tick the memo always has SOME plan for the root
        // set (full coverage) — though not necessarily the optimal one,
        // since the trip can land before the final cost comparisons.
        if (fire_at == total_ticks) {
          EXPECT_EQ(salvaged->degradation.memo_coverage, 1.0);
        }
        // When the interruption lands after the enumeration finished
        // (every pair was compared: same inner counter as the clean
        // run), salvage reduces to plain extraction and the "degraded"
        // plan IS the optimum. Note memo_coverage == 1.0 alone does NOT
        // imply this: the root set gets its first (possibly suboptimal)
        // plan long before its last decomposition is priced.
        if (salvaged->stats.inner_counter == clean_inner) {
          EXPECT_EQ(salvaged->degradation.memo_coverage, 1.0);
          EXPECT_EQ(salvaged->cost, clean_cost);
        }
      }
    }
  }
}

/// Without the opt-in, the same interruptions keep the historical
/// fail-fast contract: a bare kBudgetExceeded, no degraded plan.
TEST(AnytimeTest, SalvageStaysOptInUnderInterruption) {
  const CoutCostModel cost_model;
  Result<QueryGraph> graph = MakeCliqueQuery(6);
  ASSERT_TRUE(graph.ok());
  for (const char* algorithm : kExactDPs) {
    FaultConfig config;
    config.at(FaultPoint::kDeadline) = 5;
    ScopedFaultInjection scoped(config);
    Result<OptimizationResult> result =
        OptimizerRegistry::Get(algorithm)->Optimize(*graph, cost_model);
    ASSERT_FALSE(result.ok()) << algorithm;
    EXPECT_EQ(result.status().code(), StatusCode::kBudgetExceeded)
        << algorithm;
  }
}

/// Memo-budget trips (not just deadline trips) salvage the same way:
/// the leaves are always seeded before the first budget check, so even a
/// budget too small for a single join pair yields a complete plan.
TEST(AnytimeTest, MemoBudgetTripSalvagesFromLeavesOnly) {
  const CoutCostModel cost_model;
  Result<QueryGraph> graph = MakeChainQuery(8);
  ASSERT_TRUE(graph.ok());
  for (const char* algorithm : kExactDPs) {
    OptimizeOptions options;
    options.memo_entry_budget = 1;  // Tripped right after leaf seeding.
    options.salvage_on_interrupt = true;
    Result<OptimizationResult> result =
        OptimizerRegistry::Get(algorithm)->Optimize(*graph, cost_model,
                                                    options);
    ASSERT_TRUE(result.ok()) << algorithm << ": "
                             << result.status().ToString();
    EXPECT_TRUE(result->stats.best_effort) << algorithm;
    EXPECT_EQ(result->degradation.trigger, StatusCode::kBudgetExceeded)
        << algorithm;
    EXPECT_TRUE(ValidatePlan(result->plan, *graph, cost_model).ok())
        << algorithm;
  }
}

}  // namespace
}  // namespace joinopt
