#include "graph/bfs_numbering.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "graph/connectivity.h"
#include "graph/generators.h"

namespace joinopt {
namespace {

/// Checks the formal BFS-numbering property of Section 3.4.1: label 0 is
/// the start node and the k-th neighbor generation occupies a contiguous
/// label block after generation k-1.
void ExpectValidBfsNumbering(const QueryGraph& graph,
                             const BfsNumbering& numbering, int start) {
  const int n = graph.relation_count();
  ASSERT_EQ(static_cast<int>(numbering.new_to_old.size()), n);
  ASSERT_EQ(static_cast<int>(numbering.old_to_new.size()), n);
  EXPECT_EQ(numbering.new_to_old[0], start);

  // The two maps must be mutually inverse permutations.
  for (int label = 0; label < n; ++label) {
    EXPECT_EQ(numbering.old_to_new[numbering.new_to_old[label]], label);
  }

  // Walk generations and check label contiguity.
  NodeSet visited = NodeSet::Singleton(start);
  int next_label = 1;
  NodeSet generation = graph.Neighborhood(visited);
  while (!generation.empty()) {
    std::vector<int> labels;
    for (int v : generation) {
      labels.push_back(numbering.old_to_new[v]);
    }
    std::sort(labels.begin(), labels.end());
    for (const int label : labels) {
      EXPECT_EQ(label, next_label) << "generation labels not contiguous";
      ++next_label;
    }
    visited |= generation;
    generation = graph.Neighborhood(visited);
  }
  EXPECT_EQ(next_label, n);
}

TEST(BfsNumberingTest, ChainFromEndIsIdentity) {
  Result<QueryGraph> graph = MakeChainQuery(6);
  ASSERT_TRUE(graph.ok());
  Result<BfsNumbering> numbering = ComputeBfsNumbering(*graph, 0);
  ASSERT_TRUE(numbering.ok());
  EXPECT_TRUE(numbering->IsIdentity());
  ExpectValidBfsNumbering(*graph, *numbering, 0);
}

TEST(BfsNumberingTest, ChainFromMiddle) {
  Result<QueryGraph> graph = MakeChainQuery(5);
  ASSERT_TRUE(graph.ok());
  Result<BfsNumbering> numbering = ComputeBfsNumbering(*graph, 2);
  ASSERT_TRUE(numbering.ok());
  EXPECT_FALSE(numbering->IsIdentity());
  ExpectValidBfsNumbering(*graph, *numbering, 2);
}

TEST(BfsNumberingTest, StarFromHub) {
  Result<QueryGraph> graph = MakeStarQuery(6);
  ASSERT_TRUE(graph.ok());
  Result<BfsNumbering> numbering = ComputeBfsNumbering(*graph, 0);
  ASSERT_TRUE(numbering.ok());
  EXPECT_TRUE(numbering->IsIdentity());
}

TEST(BfsNumberingTest, StarFromLeaf) {
  Result<QueryGraph> graph = MakeStarQuery(5);
  ASSERT_TRUE(graph.ok());
  Result<BfsNumbering> numbering = ComputeBfsNumbering(*graph, 3);
  ASSERT_TRUE(numbering.ok());
  ExpectValidBfsNumbering(*graph, *numbering, 3);
  // Generation 1 is exactly the hub.
  EXPECT_EQ(numbering->old_to_new[0], 1);
}

TEST(BfsNumberingTest, RandomGraphsAllStartNodes) {
  for (const uint64_t seed : {1u, 2u, 3u}) {
    WorkloadConfig config;
    config.seed = seed;
    Result<QueryGraph> graph = MakeRandomConnectedQuery(9, 5, config);
    ASSERT_TRUE(graph.ok());
    for (int start = 0; start < 9; ++start) {
      Result<BfsNumbering> numbering = ComputeBfsNumbering(*graph, start);
      ASSERT_TRUE(numbering.ok());
      ExpectValidBfsNumbering(*graph, *numbering, start);
    }
  }
}

TEST(BfsNumberingTest, FailsOnDisconnectedGraph) {
  Result<QueryGraph> graph = QueryGraph::WithRelations(4);
  ASSERT_TRUE(graph.ok());
  ASSERT_TRUE(graph->AddEdge(0, 1).ok());
  ASSERT_TRUE(graph->AddEdge(2, 3).ok());
  const Result<BfsNumbering> numbering = ComputeBfsNumbering(*graph, 0);
  EXPECT_FALSE(numbering.ok());
  EXPECT_EQ(numbering.status().code(), StatusCode::kFailedPrecondition);
}

TEST(BfsNumberingTest, FailsOnEmptyGraphOrBadStart) {
  const QueryGraph empty;
  EXPECT_FALSE(ComputeBfsNumbering(empty, 0).ok());
  Result<QueryGraph> graph = MakeChainQuery(3);
  ASSERT_TRUE(graph.ok());
  EXPECT_FALSE(ComputeBfsNumbering(*graph, 3).ok());
  EXPECT_FALSE(ComputeBfsNumbering(*graph, -1).ok());
}

TEST(BfsNumberingTest, SetTranslationRoundTrips) {
  Result<QueryGraph> graph = MakeChainQuery(5);
  ASSERT_TRUE(graph.ok());
  Result<BfsNumbering> numbering = ComputeBfsNumbering(*graph, 2);
  ASSERT_TRUE(numbering.ok());
  for (uint64_t mask = 1; mask < 32; ++mask) {
    const NodeSet original = NodeSet::FromMask(mask);
    EXPECT_EQ(numbering->ToOriginal(numbering->ToBfs(original)), original);
  }
}

TEST(BfsNumberingTest, RelabelGraphPreservesStructureAndStats) {
  Result<QueryGraph> graph = MakeCycleQuery(6);
  ASSERT_TRUE(graph.ok());
  Result<BfsNumbering> numbering = ComputeBfsNumbering(*graph, 3);
  ASSERT_TRUE(numbering.ok());
  const QueryGraph relabeled = RelabelGraph(*graph, *numbering);

  ASSERT_EQ(relabeled.relation_count(), graph->relation_count());
  ASSERT_EQ(relabeled.edge_count(), graph->edge_count());
  // Node `label` of the relabeled graph is original node new_to_old[label].
  for (int label = 0; label < 6; ++label) {
    const int old = numbering->new_to_old[label];
    EXPECT_DOUBLE_EQ(relabeled.cardinality(label), graph->cardinality(old));
    EXPECT_EQ(relabeled.name(label), graph->name(old));
  }
  // Adjacency is preserved under the permutation.
  for (int u = 0; u < 6; ++u) {
    for (int v = 0; v < 6; ++v) {
      if (u == v) continue;
      EXPECT_EQ(
          relabeled.HasEdge(numbering->old_to_new[u], numbering->old_to_new[v]),
          graph->HasEdge(u, v));
    }
  }
  // The relabeled graph satisfies the BFS precondition from node 0.
  Result<BfsNumbering> renumbering = ComputeBfsNumbering(relabeled, 0);
  ASSERT_TRUE(renumbering.ok());
  EXPECT_TRUE(IsConnectedGraph(relabeled));
}

}  // namespace
}  // namespace joinopt
