#include "analytics/brute_force.h"

#include <gtest/gtest.h>

#include "graph/generators.h"

namespace joinopt {
namespace {

TEST(BruteForceTest, ChainConnectedSubsets) {
  Result<QueryGraph> graph = MakeChainQuery(3);
  ASSERT_TRUE(graph.ok());
  const std::vector<NodeSet> subsets = BruteForceConnectedSubsets(*graph);
  // {0}, {1}, {0,1}, {2}, {1,2}, {0,1,2} in ascending mask order.
  EXPECT_EQ(subsets,
            (std::vector<NodeSet>{NodeSet::Of({0}), NodeSet::Of({1}),
                                  NodeSet::Of({0, 1}), NodeSet::Of({2}),
                                  NodeSet::Of({1, 2}), NodeSet::Of({0, 1, 2})}));
}

TEST(BruteForceTest, CsgCountBySize) {
  Result<QueryGraph> graph = MakeChainQuery(4);
  ASSERT_TRUE(graph.ok());
  const std::vector<uint64_t> by_size = BruteForceCsgCountBySize(*graph);
  ASSERT_EQ(by_size.size(), 5u);
  EXPECT_EQ(by_size[1], 4u);
  EXPECT_EQ(by_size[2], 3u);
  EXPECT_EQ(by_size[3], 2u);
  EXPECT_EQ(by_size[4], 1u);
}

TEST(BruteForceTest, CsgCmpPairsOfTinyChain) {
  Result<QueryGraph> graph = MakeChainQuery(3);
  ASSERT_TRUE(graph.ok());
  const auto pairs = BruteForceCsgCmpPairs(*graph);
  // ({0},{1}), ({0},{1,2}), ({0,1},{2}), ({1},{2}) — 4 = (27-3)/6.
  ASSERT_EQ(pairs.size(), 4u);
  EXPECT_EQ(pairs[0].first, NodeSet::Of({0}));
  EXPECT_EQ(pairs[0].second, NodeSet::Of({1}));
  EXPECT_EQ(pairs[1].first, NodeSet::Of({0}));
  EXPECT_EQ(pairs[1].second, NodeSet::Of({1, 2}));
  EXPECT_EQ(pairs[2].first, NodeSet::Of({1}));
  EXPECT_EQ(pairs[2].second, NodeSet::Of({2}));
  EXPECT_EQ(pairs[3].first, NodeSet::Of({0, 1}));
  EXPECT_EQ(pairs[3].second, NodeSet::Of({2}));
}

TEST(BruteForceTest, PairComponentsAreAlwaysValid) {
  WorkloadConfig config;
  config.seed = 8;
  Result<QueryGraph> graph = MakeRandomConnectedQuery(8, 5, config);
  ASSERT_TRUE(graph.ok());
  for (const auto& [s1, s2] : BruteForceCsgCmpPairs(*graph)) {
    EXPECT_FALSE(s1.Intersects(s2));
    EXPECT_TRUE(graph->AreConnected(s1, s2));
    EXPECT_LT(s1.Min(), s2.Min());  // Normalization convention.
  }
}

TEST(BruteForceTest, StarPairCount) {
  Result<QueryGraph> graph = MakeStarQuery(6);
  ASSERT_TRUE(graph.ok());
  // (n-1)·2^{n-2} = 5 · 16 = 80.
  EXPECT_EQ(BruteForceCcpCountUnordered(*graph), 80u);
}

TEST(BruteForceTest, DisconnectedGraphHandled) {
  // Oracles are definition-level and do not require global connectivity.
  Result<QueryGraph> graph = QueryGraph::WithRelations(4);
  ASSERT_TRUE(graph.ok());
  ASSERT_TRUE(graph->AddEdge(0, 1).ok());
  ASSERT_TRUE(graph->AddEdge(2, 3).ok());
  EXPECT_EQ(BruteForceCsgCount(*graph), 6u);  // 4 singletons + 2 pairs.
  EXPECT_EQ(BruteForceCcpCountUnordered(*graph), 2u);
}

TEST(BruteForceTest, InnerCounterPredictorsOnKnownShapes) {
  Result<QueryGraph> chain = MakeChainQuery(5);
  ASSERT_TRUE(chain.ok());
  EXPECT_EQ(BruteForceInnerCounterDPsize(*chain), 73u);  // Figure 3.
  EXPECT_EQ(BruteForceInnerCounterDPsub(*chain), 84u);
  Result<QueryGraph> clique = MakeCliqueQuery(5);
  ASSERT_TRUE(clique.ok());
  EXPECT_EQ(BruteForceInnerCounterDPsize(*clique), 280u);
  EXPECT_EQ(BruteForceInnerCounterDPsub(*clique), 180u);
}

}  // namespace
}  // namespace joinopt
