#include "cost/cardinality.h"

#include <gtest/gtest.h>

#include "graph/generators.h"

namespace joinopt {
namespace {

QueryGraph SimpleChain() {
  // 0 -(0.1)- 1 -(0.5)- 2 with cards 100, 200, 400.
  QueryGraph graph;
  EXPECT_TRUE(graph.AddRelation(100.0).ok());
  EXPECT_TRUE(graph.AddRelation(200.0).ok());
  EXPECT_TRUE(graph.AddRelation(400.0).ok());
  EXPECT_TRUE(graph.AddEdge(0, 1, 0.1).ok());
  EXPECT_TRUE(graph.AddEdge(1, 2, 0.5).ok());
  return graph;
}

TEST(CardinalityTest, SingletonEstimateIsBaseCardinality) {
  const QueryGraph graph = SimpleChain();
  const CardinalityEstimator estimator(graph);
  EXPECT_DOUBLE_EQ(estimator.EstimateSet(NodeSet::Of({0})), 100.0);
  EXPECT_DOUBLE_EQ(estimator.EstimateSet(NodeSet::Of({2})), 400.0);
}

TEST(CardinalityTest, PairEstimateAppliesSelectivity) {
  const QueryGraph graph = SimpleChain();
  const CardinalityEstimator estimator(graph);
  EXPECT_DOUBLE_EQ(estimator.EstimateSet(NodeSet::Of({0, 1})),
                   100.0 * 200.0 * 0.1);
  EXPECT_DOUBLE_EQ(estimator.EstimateSet(NodeSet::Of({1, 2})),
                   200.0 * 400.0 * 0.5);
}

TEST(CardinalityTest, DisconnectedSetIsCrossProduct) {
  const QueryGraph graph = SimpleChain();
  const CardinalityEstimator estimator(graph);
  EXPECT_DOUBLE_EQ(estimator.EstimateSet(NodeSet::Of({0, 2})), 100.0 * 400.0);
}

TEST(CardinalityTest, FullSetEstimate) {
  const QueryGraph graph = SimpleChain();
  const CardinalityEstimator estimator(graph);
  EXPECT_DOUBLE_EQ(estimator.EstimateSet(NodeSet::Of({0, 1, 2})),
                   100.0 * 200.0 * 400.0 * 0.1 * 0.5);
}

TEST(CardinalityTest, JoinCardinalityMatchesFromScratch) {
  const QueryGraph graph = SimpleChain();
  const CardinalityEstimator estimator(graph);
  const double left = estimator.EstimateSet(NodeSet::Of({0, 1}));
  const double right = estimator.EstimateSet(NodeSet::Of({2}));
  EXPECT_DOUBLE_EQ(
      estimator.JoinCardinality(NodeSet::Of({0, 1}), left, NodeSet::Of({2}),
                                right),
      estimator.EstimateSet(NodeSet::Of({0, 1, 2})));
}

TEST(CardinalityTest, OrderIndependenceProperty) {
  // The independence model must yield the same estimate for a set no
  // matter how it is split — the invariant DP over sets relies on.
  WorkloadConfig config;
  config.seed = 5;
  Result<QueryGraph> graph = MakeRandomConnectedQuery(7, 5, config);
  ASSERT_TRUE(graph.ok());
  const CardinalityEstimator estimator(*graph);

  const NodeSet full = graph->AllRelations();
  const double reference = estimator.EstimateSet(full);
  // Split the full set along every 1-vs-rest and 2-vs-rest boundary.
  for (uint64_t mask = 1; mask < (1u << 7) - 1; ++mask) {
    const NodeSet s1 = NodeSet::FromMask(mask);
    const NodeSet s2 = full - s1;
    if (s2.empty()) continue;
    const double combined =
        estimator.JoinCardinality(s1, estimator.EstimateSet(s1), s2,
                                  estimator.EstimateSet(s2));
    EXPECT_NEAR(combined / reference, 1.0, 1e-9) << s1.ToString();
  }
}

TEST(CardinalityTest, CliqueMultipliesAllInternalEdges) {
  QueryGraph graph;
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(graph.AddRelation(10.0).ok());
  }
  ASSERT_TRUE(graph.AddEdge(0, 1, 0.5).ok());
  ASSERT_TRUE(graph.AddEdge(0, 2, 0.5).ok());
  ASSERT_TRUE(graph.AddEdge(1, 2, 0.5).ok());
  const CardinalityEstimator estimator(graph);
  EXPECT_DOUBLE_EQ(estimator.EstimateSet(NodeSet::Of({0, 1, 2})),
                   10.0 * 10.0 * 10.0 * 0.5 * 0.5 * 0.5);
}

}  // namespace
}  // namespace joinopt
