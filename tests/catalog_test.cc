#include "catalog/catalog.h"

#include <gtest/gtest.h>

#include "graph/connectivity.h"

namespace joinopt {
namespace {

TEST(CatalogTest, AddAndLookupRelations) {
  Catalog catalog;
  Result<int> orders = catalog.AddRelation("orders", 1000.0);
  Result<int> customer = catalog.AddRelation("customer", 200.0);
  ASSERT_TRUE(orders.ok());
  ASSERT_TRUE(customer.ok());
  EXPECT_EQ(*orders, 0);
  EXPECT_EQ(*customer, 1);
  EXPECT_EQ(catalog.relation_count(), 2);

  Result<int> found = catalog.RelationIndex("customer");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(*found, 1);
  EXPECT_EQ(catalog.RelationIndex("missing").status().code(),
            StatusCode::kNotFound);
}

TEST(CatalogTest, RejectsBadRelations) {
  Catalog catalog;
  EXPECT_FALSE(catalog.AddRelation("", 10.0).ok());
  EXPECT_FALSE(catalog.AddRelation("t", 0.0).ok());
  EXPECT_FALSE(catalog.AddRelation("t", -1.0).ok());
  ASSERT_TRUE(catalog.AddRelation("t", 10.0).ok());
  EXPECT_FALSE(catalog.AddRelation("t", 20.0).ok());  // Duplicate name.
}

TEST(CatalogTest, AddJoinValidation) {
  Catalog catalog;
  ASSERT_TRUE(catalog.AddRelation("a", 10.0).ok());
  ASSERT_TRUE(catalog.AddRelation("b", 10.0).ok());
  EXPECT_FALSE(catalog.AddJoin("a", "missing", 0.5).ok());
  EXPECT_FALSE(catalog.AddJoin("a", "a", 0.5).ok());
  EXPECT_FALSE(catalog.AddJoin("a", "b", 0.0).ok());
  EXPECT_FALSE(catalog.AddJoin("a", "b", 2.0).ok());
  EXPECT_TRUE(catalog.AddJoin("a", "b", 0.5).ok());
}

TEST(CatalogTest, BuildQueryGraph) {
  Catalog catalog;
  ASSERT_TRUE(catalog.AddRelation("fact", 1e6).ok());
  ASSERT_TRUE(catalog.AddRelation("dim1", 100.0).ok());
  ASSERT_TRUE(catalog.AddRelation("dim2", 50.0).ok());
  ASSERT_TRUE(catalog.AddJoin("fact", "dim1", 0.01).ok());
  ASSERT_TRUE(catalog.AddJoin("fact", "dim2", 0.02).ok());

  Result<QueryGraph> graph = catalog.BuildQueryGraph();
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph->relation_count(), 3);
  EXPECT_EQ(graph->edge_count(), 2);
  EXPECT_EQ(graph->name(0), "fact");
  EXPECT_DOUBLE_EQ(graph->cardinality(0), 1e6);
  EXPECT_TRUE(graph->HasEdge(0, 1));
  EXPECT_TRUE(graph->HasEdge(0, 2));
  EXPECT_FALSE(graph->HasEdge(1, 2));
  EXPECT_TRUE(IsConnectedGraph(*graph));
}

TEST(CatalogTest, BuildFailsWhenEmpty) {
  const Catalog catalog;
  // Build validates first, so the empty catalog is a load-time
  // kInvalidCatalog, not a generic precondition failure.
  EXPECT_EQ(catalog.BuildQueryGraph().status().code(),
            StatusCode::kInvalidCatalog);
  EXPECT_EQ(catalog.Validate().code(), StatusCode::kInvalidCatalog);
}

TEST(CatalogTest, GenerationAdvancesOnEveryMutation) {
  Catalog catalog;
  // Generation 0 is reserved so a zero-initialized cache stamp can never
  // accidentally match a live catalog.
  EXPECT_EQ(catalog.generation(), 1u);
  ASSERT_TRUE(catalog.AddRelation("a", 10.0).ok());
  EXPECT_EQ(catalog.generation(), 2u);
  ASSERT_TRUE(catalog.AddRelation("b", 20.0).ok());
  EXPECT_EQ(catalog.generation(), 3u);
  ASSERT_TRUE(catalog.AddJoin("a", "b", 0.5).ok());
  EXPECT_EQ(catalog.generation(), 4u);
  // An out-of-band statistics refresh (ANALYZE) has no structural edit
  // but still invalidates cached plans.
  catalog.BumpGeneration();
  EXPECT_EQ(catalog.generation(), 5u);
  // Read-side operations must not invalidate anything.
  ASSERT_TRUE(catalog.Validate().ok());
  ASSERT_TRUE(catalog.BuildQueryGraph().ok());
  ASSERT_TRUE(catalog.RelationIndex("a").ok());
  EXPECT_EQ(catalog.generation(), 5u);
}

TEST(CatalogTest, RejectedMutationsDoNotAdvanceGeneration) {
  Catalog catalog;
  ASSERT_TRUE(catalog.AddRelation("a", 10.0).ok());
  const uint64_t before = catalog.generation();
  EXPECT_FALSE(catalog.AddRelation("a", 5.0).ok());   // duplicate name
  EXPECT_FALSE(catalog.AddRelation("", 5.0).ok());    // empty name
  EXPECT_FALSE(catalog.AddJoin("a", "ghost", 0.5).ok());
  EXPECT_EQ(catalog.generation(), before);
}

TEST(CatalogTest, BuildSurfacesDuplicateJoin) {
  Catalog catalog;
  ASSERT_TRUE(catalog.AddRelation("a", 10.0).ok());
  ASSERT_TRUE(catalog.AddRelation("b", 10.0).ok());
  ASSERT_TRUE(catalog.AddJoin("a", "b", 0.5).ok());
  ASSERT_TRUE(catalog.AddJoin("b", "a", 0.25).ok());  // Accepted here...
  // ...but rejected at graph-build time (duplicate undirected edge).
  EXPECT_FALSE(catalog.BuildQueryGraph().ok());
}

}  // namespace
}  // namespace joinopt
