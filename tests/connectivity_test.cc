#include "graph/connectivity.h"

#include <gtest/gtest.h>

#include "graph/generators.h"

namespace joinopt {
namespace {

QueryGraph TwoTriangles() {
  // Two disjoint triangles: {0,1,2} and {3,4,5}.
  Result<QueryGraph> graph = QueryGraph::WithRelations(6);
  EXPECT_TRUE(graph.ok());
  EXPECT_TRUE(graph->AddEdge(0, 1).ok());
  EXPECT_TRUE(graph->AddEdge(1, 2).ok());
  EXPECT_TRUE(graph->AddEdge(0, 2).ok());
  EXPECT_TRUE(graph->AddEdge(3, 4).ok());
  EXPECT_TRUE(graph->AddEdge(4, 5).ok());
  EXPECT_TRUE(graph->AddEdge(3, 5).ok());
  return std::move(*graph);
}

TEST(ConnectivityTest, EmptySetIsNotConnected) {
  Result<QueryGraph> graph = MakeChainQuery(3);
  ASSERT_TRUE(graph.ok());
  EXPECT_FALSE(IsConnectedSet(*graph, NodeSet()));
}

TEST(ConnectivityTest, SingletonIsConnected) {
  Result<QueryGraph> graph = MakeChainQuery(3);
  ASSERT_TRUE(graph.ok());
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(IsConnectedSet(*graph, NodeSet::Singleton(i)));
  }
}

TEST(ConnectivityTest, ChainSubsets) {
  Result<QueryGraph> graph = MakeChainQuery(5);
  ASSERT_TRUE(graph.ok());
  EXPECT_TRUE(IsConnectedSet(*graph, NodeSet::Of({1, 2, 3})));
  EXPECT_TRUE(IsConnectedSet(*graph, NodeSet::Of({0, 1})));
  EXPECT_FALSE(IsConnectedSet(*graph, NodeSet::Of({0, 2})));
  EXPECT_FALSE(IsConnectedSet(*graph, NodeSet::Of({0, 1, 3, 4})));
  EXPECT_TRUE(IsConnectedSet(*graph, NodeSet::Of({0, 1, 2, 3, 4})));
}

TEST(ConnectivityTest, StarSubsetsRequireTheHub) {
  Result<QueryGraph> graph = MakeStarQuery(5);
  ASSERT_TRUE(graph.ok());
  EXPECT_TRUE(IsConnectedSet(*graph, NodeSet::Of({0, 2, 4})));
  EXPECT_FALSE(IsConnectedSet(*graph, NodeSet::Of({1, 2})));
  EXPECT_FALSE(IsConnectedSet(*graph, NodeSet::Of({1, 2, 3, 4})));
}

TEST(ConnectivityTest, CliqueEverySubsetConnected) {
  Result<QueryGraph> graph = MakeCliqueQuery(5);
  ASSERT_TRUE(graph.ok());
  for (uint64_t mask = 1; mask < 32; ++mask) {
    EXPECT_TRUE(IsConnectedSet(*graph, NodeSet::FromMask(mask))) << mask;
  }
}

TEST(ConnectivityTest, WholeGraphConnectivity) {
  Result<QueryGraph> chain = MakeChainQuery(6);
  ASSERT_TRUE(chain.ok());
  EXPECT_TRUE(IsConnectedGraph(*chain));
  EXPECT_FALSE(IsConnectedGraph(TwoTriangles()));
  EXPECT_FALSE(IsConnectedGraph(QueryGraph()));  // Empty graph.
}

TEST(ConnectivityTest, SingleRelationGraphIsConnected) {
  Result<QueryGraph> graph = QueryGraph::WithRelations(1);
  ASSERT_TRUE(graph.ok());
  EXPECT_TRUE(IsConnectedGraph(*graph));
}

TEST(ConnectivityTest, ConnectedComponentOfRespectsWithin) {
  Result<QueryGraph> graph = MakeChainQuery(5);
  ASSERT_TRUE(graph.ok());
  // Within {0,1,3,4}, node 0's component is {0,1} (2 is excluded).
  EXPECT_EQ(ConnectedComponentOf(*graph, 0, NodeSet::Of({0, 1, 3, 4})),
            NodeSet::Of({0, 1}));
  EXPECT_EQ(ConnectedComponentOf(*graph, 4, NodeSet::Of({0, 1, 3, 4})),
            NodeSet::Of({3, 4}));
}

TEST(ConnectivityTest, ConnectedComponentsPartition) {
  const QueryGraph graph = TwoTriangles();
  const std::vector<NodeSet> components =
      ConnectedComponents(graph, graph.AllRelations());
  ASSERT_EQ(components.size(), 2u);
  EXPECT_EQ(components[0], NodeSet::Of({0, 1, 2}));
  EXPECT_EQ(components[1], NodeSet::Of({3, 4, 5}));
}

TEST(ConnectivityTest, ConnectedComponentsOfSubset) {
  Result<QueryGraph> graph = MakeChainQuery(7);
  ASSERT_TRUE(graph.ok());
  const std::vector<NodeSet> components =
      ConnectedComponents(*graph, NodeSet::Of({0, 2, 3, 6}));
  ASSERT_EQ(components.size(), 3u);
  EXPECT_EQ(components[0], NodeSet::Of({0}));
  EXPECT_EQ(components[1], NodeSet::Of({2, 3}));
  EXPECT_EQ(components[2], NodeSet::Of({6}));
}

}  // namespace
}  // namespace joinopt
