#include "cost/cost_model.h"

#include <cmath>

#include <gtest/gtest.h>

namespace joinopt {
namespace {

TEST(CostModelTest, CoutIsOutputCardinality) {
  const CoutCostModel model;
  EXPECT_DOUBLE_EQ(model.JoinCost(10.0, 20.0, 55.0), 55.0);
  EXPECT_TRUE(model.IsSymmetric());
  EXPECT_EQ(model.name(), "Cout");
}

TEST(CostModelTest, NestedLoopIsProductOfInputs) {
  const NestedLoopCostModel model;
  EXPECT_DOUBLE_EQ(model.JoinCost(10.0, 20.0, 5.0), 200.0);
  EXPECT_TRUE(model.IsSymmetric());
}

TEST(CostModelTest, HashJoinIsAsymmetric) {
  const HashJoinCostModel model(2.0, 1.0);
  EXPECT_DOUBLE_EQ(model.JoinCost(10.0, 20.0, 5.0), 2.0 * 10 + 20 + 5);
  EXPECT_DOUBLE_EQ(model.JoinCost(20.0, 10.0, 5.0), 2.0 * 20 + 10 + 5);
  EXPECT_NE(model.JoinCost(10.0, 20.0, 5.0), model.JoinCost(20.0, 10.0, 5.0));
  EXPECT_FALSE(model.IsSymmetric());
}

TEST(CostModelTest, HashJoinEqualFactorsIsSymmetric) {
  const HashJoinCostModel model(1.0, 1.0);
  EXPECT_TRUE(model.IsSymmetric());
}

TEST(CostModelTest, SortMergeUsesNLogN) {
  const SortMergeCostModel model;
  const double expected =
      1000.0 * std::log2(1000.0) + 500.0 * std::log2(500.0) + 100.0;
  EXPECT_DOUBLE_EQ(model.JoinCost(1000.0, 500.0, 100.0), expected);
  EXPECT_TRUE(model.IsSymmetric());
}

TEST(CostModelTest, SortMergeGuardsTinyInputs) {
  const SortMergeCostModel model;
  // log2 of sub-1 cardinalities must not produce negative costs.
  EXPECT_GE(model.JoinCost(0.5, 0.5, 0.25), 0.0);
}

TEST(CostModelTest, DiskNestedLoopPagesMath) {
  // 100 rows/page, 10 buffer pages -> window of 8 outer pages per pass.
  const DiskNestedLoopCostModel model(100.0, 10.0);
  // L = 1000 rows = 10 pages; R = 500 rows = 5 pages; out = 100 = 1 page.
  // cost = 10 + ceil(10/8)*5 + 1 = 10 + 10 + 1 = 21.
  EXPECT_DOUBLE_EQ(model.JoinCost(1000.0, 500.0, 100.0), 21.0);
  // Swapped: 5 + ceil(5/8)*10 + 1 = 16 — smaller input on the left wins.
  EXPECT_DOUBLE_EQ(model.JoinCost(500.0, 1000.0, 100.0), 16.0);
  EXPECT_FALSE(model.IsSymmetric());
  EXPECT_EQ(model.OperatorFor(1, 1, 1), JoinOperator::kNestedLoop);
}

TEST(CostModelTest, DiskNestedLoopGuardsTinyInputs) {
  const DiskNestedLoopCostModel model;
  // Sub-row cardinalities still cost at least a page per stream.
  EXPECT_GE(model.JoinCost(0.1, 0.1, 0.01), 3.0);
}

TEST(CostModelTest, BestOfTakesTheMinimum) {
  const BestOfCostModel model = BestOfCostModel::Standard();
  const double hash = HashJoinCostModel().JoinCost(100.0, 100.0, 10.0);
  const double nlj = NestedLoopCostModel().JoinCost(100.0, 100.0, 10.0);
  const double smj = SortMergeCostModel().JoinCost(100.0, 100.0, 10.0);
  EXPECT_DOUBLE_EQ(model.JoinCost(100.0, 100.0, 10.0),
                   std::min({hash, nlj, smj}));
}

TEST(CostModelTest, BestOfPrefersNestedLoopForTinyInputs) {
  const BestOfCostModel model = BestOfCostModel::Standard();
  // 2 x 2 rows: NLJ costs 4, hash costs 2*2+2+1 = 7.
  EXPECT_DOUBLE_EQ(model.JoinCost(2.0, 2.0, 1.0), 4.0);
}

TEST(CostModelTest, BestOfSymmetryReporting) {
  std::vector<std::unique_ptr<CostModel>> symmetric_members;
  symmetric_members.push_back(std::make_unique<CoutCostModel>());
  symmetric_members.push_back(std::make_unique<NestedLoopCostModel>());
  const BestOfCostModel symmetric(std::move(symmetric_members));
  EXPECT_TRUE(symmetric.IsSymmetric());
  EXPECT_FALSE(BestOfCostModel::Standard().IsSymmetric());
}

}  // namespace
}  // namespace joinopt
