#include <string>

#include <gtest/gtest.h>

#include "analytics/brute_force.h"
#include "analytics/counts.h"
#include "core/dpccp.h"
#include "core/dpsize.h"
#include "core/dpsub.h"
#include "cost/cost_model.h"
#include "graph/generators.h"

namespace joinopt {
namespace {

/// The paper's analytical contribution (Section 2) states closed forms
/// for the InnerCounter of DPsize and DPsub and for #ccp, per graph
/// family. These tests are the heart of the reproduction: they check the
/// measured counters of the actual implementations against
///   (a) the closed forms in src/analytics, and
///   (b) the literal Figure 3 values.

struct ShapeCase {
  QueryShape shape;
  int n;
};

class CounterFormulaTest : public ::testing::TestWithParam<ShapeCase> {};

TEST_P(CounterFormulaTest, MeasuredCountersMatchClosedForms) {
  const auto [shape, n] = GetParam();
  Result<QueryGraph> graph = MakeShapeQuery(shape, n);
  ASSERT_TRUE(graph.ok());
  const CoutCostModel model;

  Result<OptimizationResult> size_result = DPsize().Optimize(*graph, model);
  Result<OptimizationResult> sub_result = DPsub().Optimize(*graph, model);
  Result<OptimizationResult> ccp_result = DPccp().Optimize(*graph, model);
  ASSERT_TRUE(size_result.ok());
  ASSERT_TRUE(sub_result.ok());
  ASSERT_TRUE(ccp_result.ok());

  EXPECT_EQ(size_result->stats.inner_counter,
            PredictedInnerCounterDPsize(shape, n));
  EXPECT_EQ(sub_result->stats.inner_counter,
            PredictedInnerCounterDPsub(shape, n));
  EXPECT_EQ(ccp_result->stats.inner_counter,
            PredictedInnerCounterDPccp(shape, n));

  const uint64_t ccp = CcpCountUnordered(shape, n);
  EXPECT_EQ(size_result->stats.ono_lohman_counter, ccp);
  EXPECT_EQ(sub_result->stats.ono_lohman_counter, ccp);
  EXPECT_EQ(ccp_result->stats.ono_lohman_counter, ccp);

  const uint64_t csg = CsgCount(shape, n);
  EXPECT_EQ(size_result->stats.plans_stored, csg);
  EXPECT_EQ(sub_result->stats.plans_stored, csg);
  EXPECT_EQ(ccp_result->stats.plans_stored, csg);
}

std::vector<ShapeCase> SweepCases() {
  std::vector<ShapeCase> cases;
  for (const QueryShape shape :
       {QueryShape::kChain, QueryShape::kCycle, QueryShape::kStar,
        QueryShape::kClique}) {
    for (int n = 2; n <= 13; ++n) {
      cases.push_back({shape, n});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    AllShapesAndSizes, CounterFormulaTest, ::testing::ValuesIn(SweepCases()),
    [](const ::testing::TestParamInfo<ShapeCase>& info) {
      return std::string(QueryShapeName(info.param.shape)) +
             std::to_string(info.param.n);
    });

/// Figure 3 verbatim. Rows: n = 2, 5, 10, 15 (the n = 20 DPsize/DPsub
/// cells are checked against the formulas only — running them takes
/// minutes and belongs to the benchmarks, not the unit tests).
struct Fig3Row {
  QueryShape shape;
  int n;
  uint64_t ccp;
  uint64_t dpsub;
  uint64_t dpsize;
};

constexpr Fig3Row kFig3[] = {
    {QueryShape::kChain, 2, 1, 2, 1},
    {QueryShape::kChain, 5, 20, 84, 73},
    {QueryShape::kChain, 10, 165, 3962, 1135},
    {QueryShape::kChain, 15, 560, 130798, 5628},
    {QueryShape::kChain, 20, 1330, 4193840, 17545},
    {QueryShape::kCycle, 2, 1, 2, 1},
    {QueryShape::kCycle, 5, 40, 140, 120},
    {QueryShape::kCycle, 10, 405, 11062, 2225},
    {QueryShape::kCycle, 15, 1470, 523836, 11760},
    {QueryShape::kCycle, 20, 3610, 22019294, 37900},
    {QueryShape::kStar, 2, 1, 2, 1},
    {QueryShape::kStar, 5, 32, 130, 110},
    {QueryShape::kStar, 10, 2304, 38342, 57888},
    {QueryShape::kStar, 15, 114688, 9533170, 57305929},
    {QueryShape::kStar, 20, 4980736, 2323474358, 59892991338},
    {QueryShape::kClique, 2, 1, 2, 1},
    {QueryShape::kClique, 5, 90, 180, 280},
    {QueryShape::kClique, 10, 28501, 57002, 306991},
    {QueryShape::kClique, 15, 7141686, 14283372, 307173877},
    {QueryShape::kClique, 20, 1742343625, 3484687250, 309338182241},
};

TEST(Figure3Test, ClosedFormsReproduceEveryCell) {
  for (const Fig3Row& row : kFig3) {
    const std::string context =
        std::string(QueryShapeName(row.shape)) + " n=" + std::to_string(row.n);
    EXPECT_EQ(CcpCountUnordered(row.shape, row.n), row.ccp) << context;
    EXPECT_EQ(PredictedInnerCounterDPsub(row.shape, row.n), row.dpsub)
        << context;
    EXPECT_EQ(PredictedInnerCounterDPsize(row.shape, row.n), row.dpsize)
        << context;
  }
}

TEST(Figure3Test, MeasuredCountersReproduceRowsUpTo15) {
  const CoutCostModel model;
  for (const Fig3Row& row : kFig3) {
    if (row.n > 15) {
      continue;  // Minutes of runtime; covered by bench/fig3_search_space.
    }
    // DPsub at clique-15 is ~14M iterations — fine; star-15 ~9.5M — fine.
    // DPsize at star/clique-15 is ~3·10^8 pair enumerations, too slow for
    // a unit test, so cap DPsize at n <= 12 for the dense shapes.
    const std::string context =
        std::string(QueryShapeName(row.shape)) + " n=" + std::to_string(row.n);
    Result<QueryGraph> graph = MakeShapeQuery(row.shape, row.n);
    ASSERT_TRUE(graph.ok());

    Result<OptimizationResult> sub_result = DPsub().Optimize(*graph, model);
    ASSERT_TRUE(sub_result.ok()) << context;
    EXPECT_EQ(sub_result->stats.inner_counter, row.dpsub) << context;
    EXPECT_EQ(sub_result->stats.ono_lohman_counter, row.ccp) << context;

    const bool dpsize_feasible =
        row.shape == QueryShape::kChain || row.shape == QueryShape::kCycle ||
        row.n <= 12;
    if (dpsize_feasible) {
      Result<OptimizationResult> size_result =
          DPsize().Optimize(*graph, model);
      ASSERT_TRUE(size_result.ok()) << context;
      EXPECT_EQ(size_result->stats.inner_counter, row.dpsize) << context;
      EXPECT_EQ(size_result->stats.ono_lohman_counter, row.ccp) << context;
    }

    Result<OptimizationResult> ccp_result = DPccp().Optimize(*graph, model);
    ASSERT_TRUE(ccp_result.ok()) << context;
    EXPECT_EQ(ccp_result->stats.inner_counter, row.ccp) << context;
  }
}

TEST(CounterFormulaTest, GenericGraphsMatchBruteForcePredictions) {
  // Beyond the paper's four families: on arbitrary connected graphs the
  // combinatorial predictors (derived from connected-subset counts) must
  // still equal the measured counters.
  const CoutCostModel model;
  for (const uint64_t seed : {41u, 42u, 43u, 44u}) {
    WorkloadConfig config;
    config.seed = seed;
    Result<QueryGraph> graph = MakeRandomConnectedQuery(9, 4, config);
    ASSERT_TRUE(graph.ok());

    Result<OptimizationResult> size_result = DPsize().Optimize(*graph, model);
    Result<OptimizationResult> sub_result = DPsub().Optimize(*graph, model);
    Result<OptimizationResult> ccp_result = DPccp().Optimize(*graph, model);
    ASSERT_TRUE(size_result.ok() && sub_result.ok() && ccp_result.ok());

    EXPECT_EQ(size_result->stats.inner_counter,
              BruteForceInnerCounterDPsize(*graph))
        << seed;
    EXPECT_EQ(sub_result->stats.inner_counter,
              BruteForceInnerCounterDPsub(*graph))
        << seed;
    EXPECT_EQ(ccp_result->stats.inner_counter,
              BruteForceCcpCountUnordered(*graph))
        << seed;
  }
}

}  // namespace
}  // namespace joinopt
