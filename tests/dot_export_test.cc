#include "plan/dot_export.h"

#include <gtest/gtest.h>

#include "core/dpccp.h"
#include "cost/cost_model.h"
#include "dsl/parser.h"

namespace joinopt {
namespace {

TEST(DotExportTest, QueryGraphDotContainsNodesAndEdges) {
  Result<QueryGraph> graph = ParseQuerySpecToGraph(
      "rel orders 1000\nrel customer 100\njoin orders customer 0.01\n");
  ASSERT_TRUE(graph.ok());
  const std::string dot = QueryGraphToDot(*graph);
  EXPECT_NE(dot.find("graph query_graph {"), std::string::npos);
  EXPECT_NE(dot.find("orders"), std::string::npos);
  EXPECT_NE(dot.find("customer"), std::string::npos);
  EXPECT_NE(dot.find("r0 -- r1"), std::string::npos);
  EXPECT_NE(dot.find("0.01"), std::string::npos);
  EXPECT_EQ(dot.back(), '\n');
}

TEST(DotExportTest, PlanDotHasOneEdgePerChildLink) {
  Result<QueryGraph> graph = ParseQuerySpecToGraph(
      "rel a 100\nrel b 50\nrel c 10\njoin a b 0.1\njoin b c 0.2\n");
  ASSERT_TRUE(graph.ok());
  Result<OptimizationResult> result =
      DPccp().Optimize(*graph, CoutCostModel());
  ASSERT_TRUE(result.ok());
  const std::string dot = PlanToDot(result->plan, *graph);
  EXPECT_NE(dot.find("digraph plan {"), std::string::npos);
  // 2 joins -> 4 parent->child edges.
  size_t arrows = 0;
  for (size_t pos = dot.find(" -> "); pos != std::string::npos;
       pos = dot.find(" -> ", pos + 1)) {
    ++arrows;
  }
  EXPECT_EQ(arrows, 4u);
  // All three relation names appear as leaf labels.
  EXPECT_NE(dot.find("\"a\\n"), std::string::npos);
  EXPECT_NE(dot.find("\"b\\n"), std::string::npos);
  EXPECT_NE(dot.find("\"c\\n"), std::string::npos);
}

TEST(DotExportTest, LabelsAreEscaped) {
  QueryGraph graph;
  ASSERT_TRUE(graph.AddRelation(10.0, "weird\"name").ok());
  const std::string dot = QueryGraphToDot(graph);
  EXPECT_NE(dot.find("weird\\\"name"), std::string::npos);
}

}  // namespace
}  // namespace joinopt
