#include "core/dp_cross_products.h"

#include <gtest/gtest.h>

#include "core/dpccp.h"
#include "cost/cost_model.h"
#include "dsl/parser.h"
#include "graph/generators.h"
#include "plan/plan_validator.h"

namespace joinopt {
namespace {

PlanValidationOptions AllowCross() {
  PlanValidationOptions options;
  options.forbid_cross_products = false;
  return options;
}

TEST(DPCrossProductsTest, HandleDisconnectedGraphs) {
  // Two islands: {a, b} and {c}. Only the CP variants can plan this.
  Result<QueryGraph> graph = ParseQuerySpecToGraph(
      "rel a 10\nrel b 20\nrel c 30\njoin a b 0.1\n");
  ASSERT_TRUE(graph.ok());
  const DPsizeCP dpsize_cp;
  const DPsubCP dpsub_cp;
  for (const JoinOrderer* optimizer :
       {static_cast<const JoinOrderer*>(&dpsize_cp),
        static_cast<const JoinOrderer*>(&dpsub_cp)}) {
    Result<OptimizationResult> result =
        optimizer->Optimize(*graph, CoutCostModel());
    ASSERT_TRUE(result.ok()) << optimizer->name();
    EXPECT_TRUE(ValidatePlan(result->plan, *graph, CoutCostModel(),
                             AllowCross())
                    .ok());
    // |a ⋈ b| = 20, times |c| = 30 as cross product -> 600; cost
    // Cout = 20 + 600.
    EXPECT_DOUBLE_EQ(result->cost, 620.0);
  }
}

TEST(DPCrossProductsTest, NeverWorseThanCrossProductFreeOptimum) {
  // The CP search space strictly contains the cross-product-free space,
  // so the CP optimum is <= the DPccp optimum.
  const DPsizeCP dpsize_cp;
  const DPsubCP dpsub_cp;
  const DPccp dpccp;
  for (const uint64_t seed : {1u, 2u, 3u, 4u}) {
    WorkloadConfig config;
    config.seed = seed;
    Result<QueryGraph> graph = MakeRandomConnectedQuery(7, 3, config);
    ASSERT_TRUE(graph.ok());
    Result<OptimizationResult> free_result =
        dpccp.Optimize(*graph, CoutCostModel());
    Result<OptimizationResult> size_cp =
        dpsize_cp.Optimize(*graph, CoutCostModel());
    Result<OptimizationResult> sub_cp =
        dpsub_cp.Optimize(*graph, CoutCostModel());
    ASSERT_TRUE(free_result.ok());
    ASSERT_TRUE(size_cp.ok());
    ASSERT_TRUE(sub_cp.ok());
    EXPECT_LE(size_cp->cost, free_result->cost * (1 + 1e-12));
    EXPECT_DOUBLE_EQ(size_cp->cost, sub_cp->cost);
  }
}

TEST(DPCrossProductsTest, CrossProductCanGenuinelyWin) {
  // Classic case: two tiny relations at opposite ends of a huge middle.
  // Cross-producting the tiny ones first is cheapest under Cout.
  Result<QueryGraph> graph = ParseQuerySpecToGraph(
      "rel tiny1 2\nrel huge 1000000\nrel tiny2 2\n"
      "join tiny1 huge 0.5\njoin huge tiny2 0.5\n");
  ASSERT_TRUE(graph.ok());
  Result<OptimizationResult> with_cp =
      DPsubCP().Optimize(*graph, CoutCostModel());
  Result<OptimizationResult> without_cp =
      DPccp().Optimize(*graph, CoutCostModel());
  ASSERT_TRUE(with_cp.ok());
  ASSERT_TRUE(without_cp.ok());
  // (tiny1 x tiny2) = 4, then join huge: 4*1e6*0.25 = 1e6: total 1000004.
  // Without CP: (tiny1 ⋈ huge) = 1e6 first: total 2e6.
  EXPECT_DOUBLE_EQ(with_cp->cost, 1000004.0);
  EXPECT_DOUBLE_EQ(without_cp->cost, 2000000.0);
  EXPECT_LT(with_cp->cost, without_cp->cost);
}

TEST(DPCrossProductsTest, DPsubCPInnerCounterIsExactly3nTerm) {
  // With no tests at all, the inner counter is Σ_{|S|>=2} (2^|S|-2)
  // over ALL subsets = 3^n - (n+2)·2^{n-1} ... simpler: check against a
  // directly computed sum.
  Result<QueryGraph> graph = MakeChainQuery(6);
  ASSERT_TRUE(graph.ok());
  Result<OptimizationResult> result =
      DPsubCP().Optimize(*graph, CoutCostModel());
  ASSERT_TRUE(result.ok());
  uint64_t expected = 0;
  for (uint64_t mask = 1; mask < 64; ++mask) {
    const int k = __builtin_popcountll(mask);
    if (k >= 2) {
      expected += (uint64_t{1} << k) - 2;
    }
  }
  EXPECT_EQ(result->stats.inner_counter, expected);
  // Every subset has a plan.
  EXPECT_EQ(result->stats.plans_stored, 63u);
}

TEST(DPCrossProductsTest, RefuseOversizedInputs) {
  Result<QueryGraph> graph = MakeChainQuery(25);
  ASSERT_TRUE(graph.ok());
  EXPECT_FALSE(DPsizeCP().Optimize(*graph, CoutCostModel()).ok());
  EXPECT_FALSE(DPsubCP().Optimize(*graph, CoutCostModel()).ok());
}

TEST(DPCrossProductsTest, AgreeWithConnectedOptimumOnCliques) {
  // On a clique every subset is connected, so CP and non-CP search spaces
  // coincide and the optima must match exactly.
  Result<QueryGraph> graph = MakeCliqueQuery(6);
  ASSERT_TRUE(graph.ok());
  Result<OptimizationResult> cp = DPsubCP().Optimize(*graph, CoutCostModel());
  Result<OptimizationResult> free_result =
      DPccp().Optimize(*graph, CoutCostModel());
  ASSERT_TRUE(cp.ok());
  ASSERT_TRUE(free_result.ok());
  EXPECT_DOUBLE_EQ(cp->cost, free_result->cost);
}

}  // namespace
}  // namespace joinopt
