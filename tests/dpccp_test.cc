#include "core/dpccp.h"

#include <gtest/gtest.h>

#include "analytics/counts.h"
#include "core/dpsub.h"
#include "cost/cost_model.h"
#include "dsl/parser.h"
#include "graph/generators.h"
#include "plan/plan_validator.h"

namespace joinopt {
namespace {

TEST(DPccpTest, SingleRelation) {
  Result<QueryGraph> graph = MakeChainQuery(1);
  ASSERT_TRUE(graph.ok());
  Result<OptimizationResult> result =
      DPccp().Optimize(*graph, CoutCostModel());
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->cost, 0.0);
  EXPECT_EQ(result->stats.inner_counter, 0u);
}

TEST(DPccpTest, RejectsEmptyAndDisconnected) {
  EXPECT_FALSE(DPccp().Optimize(QueryGraph(), CoutCostModel()).ok());
  Result<QueryGraph> graph = QueryGraph::WithRelations(2);
  ASSERT_TRUE(graph.ok());
  EXPECT_FALSE(DPccp().Optimize(*graph, CoutCostModel()).ok());
}

TEST(DPccpTest, InnerCounterEqualsOnoLohmanBound) {
  // The defining property of DPccp: no wasted inner-loop iterations.
  for (const QueryShape shape :
       {QueryShape::kChain, QueryShape::kCycle, QueryShape::kStar,
        QueryShape::kClique}) {
    for (const int n : {2, 5, 9}) {
      Result<QueryGraph> graph = MakeShapeQuery(shape, n);
      ASSERT_TRUE(graph.ok());
      Result<OptimizationResult> result =
          DPccp().Optimize(*graph, CoutCostModel());
      ASSERT_TRUE(result.ok());
      const uint64_t expected = CcpCountUnordered(shape, n);
      EXPECT_EQ(result->stats.inner_counter, expected)
          << QueryShapeName(shape) << " n=" << n;
      EXPECT_EQ(result->stats.ono_lohman_counter, expected);
      EXPECT_EQ(result->stats.csg_cmp_pair_counter, 2 * expected);
      EXPECT_EQ(result->stats.create_join_tree_calls, 2 * expected);
    }
  }
}

TEST(DPccpTest, OptimalOnHandCraftedBushyCase) {
  Result<QueryGraph> graph = ParseQuerySpecToGraph(
      "rel a 10000\nrel b 10\nrel c 10\nrel d 10000\n"
      "join a b 0.01\njoin b c 0.5\njoin c d 0.01\n");
  ASSERT_TRUE(graph.ok());
  Result<OptimizationResult> result =
      DPccp().Optimize(*graph, CoutCostModel());
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->cost, 502000.0);
  EXPECT_FALSE(result->plan.IsLeftDeep());
}

TEST(DPccpTest, HandlesNonBfsNumberedInput) {
  // A chain presented in scrambled numbering: DPccp must renumber
  // internally and still return a valid optimal plan in the caller's
  // numbering.
  Result<QueryGraph> chain = MakeChainQuery(7);
  ASSERT_TRUE(chain.ok());
  Random rng(99);
  for (int round = 0; round < 5; ++round) {
    const QueryGraph shuffled = ShuffleLabels(*chain, rng);
    Result<OptimizationResult> scrambled =
        DPccp().Optimize(shuffled, CoutCostModel());
    Result<OptimizationResult> reference =
        DPccp().Optimize(*chain, CoutCostModel());
    ASSERT_TRUE(scrambled.ok());
    ASSERT_TRUE(reference.ok());
    EXPECT_DOUBLE_EQ(scrambled->cost, reference->cost);
    EXPECT_EQ(scrambled->stats.inner_counter,
              reference->stats.inner_counter);
    EXPECT_EQ(scrambled->plan.relations(), shuffled.AllRelations());
    EXPECT_TRUE(ValidatePlan(scrambled->plan, shuffled, CoutCostModel()).ok());
  }
}

TEST(DPccpTest, CyclesRequireInternalRenumbering) {
  // The natural numbering of a cycle is NOT breadth-first; this exercises
  // the RelabelGraph path end to end.
  Result<QueryGraph> graph = MakeCycleQuery(8);
  ASSERT_TRUE(graph.ok());
  Result<OptimizationResult> ccp = DPccp().Optimize(*graph, CoutCostModel());
  Result<OptimizationResult> sub = DPsub().Optimize(*graph, CoutCostModel());
  ASSERT_TRUE(ccp.ok());
  ASSERT_TRUE(sub.ok());
  EXPECT_DOUBLE_EQ(ccp->cost, sub->cost);
  EXPECT_EQ(ccp->stats.ono_lohman_counter, sub->stats.ono_lohman_counter);
  EXPECT_EQ(ccp->stats.inner_counter, CcpCountUnordered(QueryShape::kCycle, 8));
  EXPECT_TRUE(ValidatePlan(ccp->plan, *graph, CoutCostModel()).ok());
}

TEST(DPccpTest, AsymmetricCostModel) {
  Result<QueryGraph> graph = MakeStarQuery(6);
  ASSERT_TRUE(graph.ok());
  const HashJoinCostModel model(5.0, 1.0);
  Result<OptimizationResult> ccp = DPccp().Optimize(*graph, model);
  Result<OptimizationResult> sub = DPsub().Optimize(*graph, model);
  ASSERT_TRUE(ccp.ok());
  ASSERT_TRUE(sub.ok());
  EXPECT_DOUBLE_EQ(ccp->cost, sub->cost);
  EXPECT_TRUE(ValidatePlan(ccp->plan, *graph, model).ok());
}

TEST(DPccpTest, PlansStoredEqualsCsgCount) {
  for (const QueryShape shape :
       {QueryShape::kChain, QueryShape::kStar, QueryShape::kClique}) {
    Result<QueryGraph> graph = MakeShapeQuery(shape, 8);
    ASSERT_TRUE(graph.ok());
    Result<OptimizationResult> result =
        DPccp().Optimize(*graph, CoutCostModel());
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->stats.plans_stored, CsgCount(shape, 8))
        << QueryShapeName(shape);
  }
}

TEST(DPccpTest, LargeChainStaysCheap) {
  // A 30-relation chain is far beyond DPsub's reach (2^30 outer
  // iterations) but trivial for DPccp (#ccp = (30³-30)/6 = 4495).
  Result<QueryGraph> graph = MakeChainQuery(30);
  ASSERT_TRUE(graph.ok());
  Result<OptimizationResult> result =
      DPccp().Optimize(*graph, CoutCostModel());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->stats.inner_counter, 4495u);
  EXPECT_TRUE(ValidatePlan(result->plan, *graph, CoutCostModel()).ok());
}

TEST(DPccpTest, SixtyFourRelationChain) {
  // The full bitset width. #ccp = (64³ - 64)/6 = 43680.
  Result<QueryGraph> graph = MakeChainQuery(64);
  ASSERT_TRUE(graph.ok());
  Result<OptimizationResult> result =
      DPccp().Optimize(*graph, CoutCostModel());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->stats.inner_counter, 43680u);
  EXPECT_EQ(result->plan.LeafCount(), 64);
}

}  // namespace
}  // namespace joinopt
