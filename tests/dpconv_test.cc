/// DPconv differential suite: the subset-convolution orderer against
/// DPccp, the paper's reference enumeration, across all seven workload
/// families.
///
/// The contract under test is stronger than "same optimum up to
/// tolerance": because both orderers price partitions through the shared
/// CreateJoinTree arithmetic over canonical (numbering-invariant)
/// per-set estimates, their optimal COST must be the same double, bit
/// for bit. On unique-cost instances the optimal plan is unique too, so
/// the result-shaped OutcomeSignature fields (status, cost, cardinality,
/// degradation) and the plan expression must coincide — only the
/// enumeration counters may differ, since the two algorithms visit the
/// search space in different orders.

#include "core/dpconv.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/outcome.h"
#include "joinopt.h"
#include "plan/plan_printer.h"

namespace joinopt {
namespace {

struct Family {
  std::string name;
  QueryGraph graph;
};

std::vector<Family> AllFamilies() {
  WorkloadConfig config;
  config.seed = 20060912;
  std::vector<Family> families;
  auto add = [&families](const char* name, Result<QueryGraph> graph) {
    EXPECT_TRUE(graph.ok()) << name << ": " << graph.status().ToString();
    if (graph.ok()) {
      families.push_back({name, *std::move(graph)});
    }
  };
  add("chain-10", MakeChainQuery(10, config));
  add("cycle-9", MakeCycleQuery(9, config));
  add("star-9", MakeStarQuery(9, config));
  add("clique-8", MakeCliqueQuery(8, config));
  add("snowflake-3x2", MakeSnowflakeQuery(3, 2, config));
  add("grid-3x3", MakeGridQuery(3, 3, config));
  add("random-10", MakeRandomConnectedQuery(10, 6, config));
  return families;
}

TEST(DPconvTest, CostBitIdenticalToDPccpAcrossAllFamilies) {
  const CoutCostModel cost_model;
  for (const Family& family : AllFamilies()) {
    SCOPED_TRACE(family.name);
    Result<OptimizationResult> conv =
        OptimizerRegistry::Get("DPconv")->Optimize(family.graph, cost_model);
    Result<OptimizationResult> ccp =
        OptimizerRegistry::Get("DPccp")->Optimize(family.graph, cost_model);
    ASSERT_TRUE(conv.ok()) << conv.status().ToString();
    ASSERT_TRUE(ccp.ok()) << ccp.status().ToString();
    // Bit-for-bit, not EXPECT_NEAR: both price the same partition space
    // through the same saturated arithmetic over canonical estimates.
    EXPECT_EQ(conv->cost, ccp->cost);
    EXPECT_EQ(conv->cardinality, ccp->cardinality);
    EXPECT_TRUE(ValidatePlan(conv->plan, family.graph, cost_model).ok());
  }
}

/// The generated families draw distinct random statistics, so join costs
/// are generically untied and the optimum is a UNIQUE plan: everything
/// about the result except the enumeration counters must coincide with
/// DPccp's — including the plan's shape.
TEST(DPconvTest, SignatureMatchesDPccpOnUniqueCostInstances) {
  const CoutCostModel cost_model;
  for (const Family& family : AllFamilies()) {
    SCOPED_TRACE(family.name);
    OptimizerContext conv_ctx(family.graph, cost_model);
    OptimizerContext ccp_ctx(family.graph, cost_model);
    Result<OptimizationResult> conv =
        OptimizerRegistry::Get("DPconv")->Optimize(conv_ctx);
    Result<OptimizationResult> ccp =
        OptimizerRegistry::Get("DPccp")->Optimize(ccp_ctx);
    ASSERT_TRUE(conv.ok() && ccp.ok());
    const OutcomeSignature conv_sig =
        ExtractOutcomeSignature(conv, conv_ctx.stats());
    const OutcomeSignature ccp_sig =
        ExtractOutcomeSignature(ccp, ccp_ctx.stats());
    EXPECT_EQ(conv_sig.status, ccp_sig.status);
    EXPECT_EQ(conv_sig.cost, ccp_sig.cost);
    EXPECT_EQ(conv_sig.cardinality, ccp_sig.cardinality);
    EXPECT_EQ(conv_sig.best_effort, ccp_sig.best_effort);
    EXPECT_EQ(conv_sig.trigger, ccp_sig.trigger);
    EXPECT_EQ(PlanToExpression(conv->plan, family.graph),
              PlanToExpression(ccp->plan, family.graph));
  }
}

/// The zeta-transform lower-bound pruning must be invisible in results:
/// strict-< updates make the running best the first achiever of the
/// final minimum, so the pruned sweep selects the same winning split as
/// the exhaustive one — fewer probes, identical memo.
TEST(DPconvTest, ZetaPruningIsResultInvariant) {
  const CoutCostModel cost_model;
  const DPconv pruned(/*use_zeta_pruning=*/true);
  const DPconv exhaustive(/*use_zeta_pruning=*/false);
  for (const int n : {10, 12}) {
    Result<QueryGraph> graph = MakeCliqueQuery(n);
    ASSERT_TRUE(graph.ok());
    SCOPED_TRACE("clique-" + std::to_string(n));
    Result<OptimizationResult> fast = pruned.Optimize(*graph, cost_model);
    Result<OptimizationResult> full = exhaustive.Optimize(*graph, cost_model);
    ASSERT_TRUE(fast.ok() && full.ok());
    EXPECT_EQ(fast->cost, full->cost);
    EXPECT_EQ(PlanToExpression(fast->plan, *graph),
              PlanToExpression(full->plan, *graph));
    // Pruning may only shorten the sweep, and the per-set winners — and
    // therefore everything materialized into the memo — must not move.
    EXPECT_LE(fast->stats.inner_counter, full->stats.inner_counter);
    EXPECT_EQ(fast->stats.csg_cmp_pair_counter,
              full->stats.csg_cmp_pair_counter);
    EXPECT_EQ(fast->stats.plans_stored, full->stats.plans_stored);
  }
}

TEST(DPconvTest, RejectsNonCoutCostModelsTyped) {
  Result<QueryGraph> graph = MakeChainQuery(5);
  ASSERT_TRUE(graph.ok());
  const BestOfCostModel bestof = BestOfCostModel::Standard();
  const NestedLoopCostModel nlj;
  for (const CostModel* model :
       std::vector<const CostModel*>{&bestof, &nlj}) {
    Result<OptimizationResult> result =
        OptimizerRegistry::Get("DPconv")->Optimize(*graph, *model);
    ASSERT_FALSE(result.ok()) << model->name();
    EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument)
        << model->name();
    EXPECT_NE(result.status().message().find("Cout"), std::string::npos)
        << result.status().message();
  }
}

}  // namespace
}  // namespace joinopt
