#include "hyper/dphyp.h"

#include <optional>
#include <vector>

#include <gtest/gtest.h>

#include "analytics/counts.h"
#include "bitset/subset_iterator.h"
#include "core/dpccp.h"
#include "cost/cost_model.h"
#include "graph/generators.h"

namespace joinopt {
namespace {

/// Definition-level reference DP over a hypergraph: enumerates every
/// subset ascending, every split, and keeps the best cost for connected
/// combinations. Deliberately naive (O(3^n) with per-split connectivity
/// scans); the oracle DPhyp is judged against.
struct ReferenceResult {
  std::optional<double> cost;
  uint64_t unordered_pairs = 0;
};

ReferenceResult ReferenceHyperDP(const Hypergraph& graph,
                                 const CostModel& cost_model) {
  const int n = graph.relation_count();
  const uint64_t limit = (uint64_t{1} << n) - 1;
  std::vector<double> best(limit + 1, -1.0);  // -1 = no plan.
  std::vector<double> card(limit + 1, 0.0);
  for (int i = 0; i < n; ++i) {
    best[uint64_t{1} << i] = 0.0;
    card[uint64_t{1} << i] = graph.cardinality(i);
  }
  ReferenceResult result;
  for (uint64_t mask = 1; mask <= limit; ++mask) {
    const NodeSet s = NodeSet::FromMask(mask);
    if (s.count() < 2) {
      continue;
    }
    for (ProperSubsetIterator it(s); !it.Done(); it.Next()) {
      const NodeSet s1 = it.Current();
      const NodeSet s2 = s - s1;
      if (best[s1.mask()] < 0 || best[s2.mask()] < 0) {
        continue;
      }
      if (!graph.IsConnectedSet(s1) || !graph.IsConnectedSet(s2)) {
        continue;  // Plan-existence and connectivity coincide except in
                   // pathological cases; test both to be safe.
      }
      if (!graph.AreConnected(s1, s2)) {
        continue;
      }
      if (s1.Contains(s.Min())) {
        ++result.unordered_pairs;  // Count each unordered split once.
      }
      const double out_card = card[s1.mask()] * card[s2.mask()] *
                              graph.SelectivityBetween(s1, s2);
      const double cost =
          best[s1.mask()] + best[s2.mask()] +
          std::min(cost_model.JoinCost(card[s1.mask()], card[s2.mask()],
                                       out_card),
                   cost_model.JoinCost(card[s2.mask()], card[s1.mask()],
                                       out_card));
      if (best[mask] < 0 || cost < best[mask]) {
        best[mask] = cost;
        card[mask] = out_card;
      }
    }
  }
  if (best[limit] >= 0) {
    result.cost = best[limit];
  }
  return result;
}

/// A deterministic random hypergraph: a random spanning tree of simple
/// edges plus a few complex edges.
Hypergraph RandomHypergraph(int n, int complex_edges, uint64_t seed) {
  Random rng(seed);
  Hypergraph graph;
  for (int i = 0; i < n; ++i) {
    JOINOPT_CHECK(
        graph.AddRelation(10.0 + static_cast<double>(rng.Uniform(10000))).ok());
  }
  for (int i = 1; i < n; ++i) {
    const int parent = static_cast<int>(rng.Uniform(static_cast<uint64_t>(i)));
    JOINOPT_CHECK(
        graph.AddSimpleEdge(parent, i, rng.UniformDouble(0.001, 0.5)).ok());
  }
  int added = 0;
  int attempts = 0;
  while (added < complex_edges && attempts < 200) {
    ++attempts;
    // Random disjoint endpoint sets of size 1-3 / 1-2.
    NodeSet left;
    NodeSet right;
    const int left_size = 1 + static_cast<int>(rng.Uniform(3));
    const int right_size = 1 + static_cast<int>(rng.Uniform(2));
    for (int k = 0; k < left_size; ++k) {
      left.Add(static_cast<int>(rng.Uniform(static_cast<uint64_t>(n))));
    }
    for (int k = 0; k < right_size; ++k) {
      right.Add(static_cast<int>(rng.Uniform(static_cast<uint64_t>(n))));
    }
    if (left.empty() || right.empty() || left.Intersects(right)) {
      continue;
    }
    if (graph.AddEdge(left, right, rng.UniformDouble(0.01, 0.9)).ok()) {
      ++added;
    }
  }
  return graph;
}

TEST(DPhypTest, RejectsEmptyAndDisconnected) {
  const DPhyp dphyp;
  EXPECT_FALSE(dphyp.Optimize(Hypergraph(), CoutCostModel()).ok());
  Hypergraph disconnected;
  ASSERT_TRUE(disconnected.AddRelation(10.0).ok());
  ASSERT_TRUE(disconnected.AddRelation(10.0).ok());
  EXPECT_FALSE(dphyp.Optimize(disconnected, CoutCostModel()).ok());
}

TEST(DPhypTest, SingleRelation) {
  Hypergraph graph;
  ASSERT_TRUE(graph.AddRelation(42.0).ok());
  Result<OptimizationResult> result =
      DPhyp().Optimize(graph, CoutCostModel());
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->cost, 0.0);
  EXPECT_EQ(result->stats.inner_counter, 0u);
}

TEST(DPhypTest, DegeneratesToDPccpOnSimpleGraphs) {
  // The headline property: on hypergraphs lifted from query graphs,
  // DPhyp enumerates exactly the csg-cmp-pairs and finds the DPccp
  // optimum — for every shape, including cycles (non-BFS numbering).
  const DPhyp dphyp;
  const DPccp dpccp;
  const CoutCostModel model;
  for (const QueryShape shape :
       {QueryShape::kChain, QueryShape::kCycle, QueryShape::kStar,
        QueryShape::kClique}) {
    for (const int n : {2, 5, 9}) {
      Result<QueryGraph> simple = MakeShapeQuery(shape, n);
      ASSERT_TRUE(simple.ok());
      const Hypergraph hyper = Hypergraph::FromQueryGraph(*simple);
      Result<OptimizationResult> hyper_result = dphyp.Optimize(hyper, model);
      Result<OptimizationResult> ccp_result = dpccp.Optimize(*simple, model);
      ASSERT_TRUE(hyper_result.ok()) << QueryShapeName(shape) << n;
      ASSERT_TRUE(ccp_result.ok());
      EXPECT_NEAR(hyper_result->cost / ccp_result->cost, 1.0, 1e-9)
          << QueryShapeName(shape) << n;
      EXPECT_EQ(hyper_result->stats.inner_counter, CcpCountUnordered(shape, n))
          << QueryShapeName(shape) << n;
      EXPECT_EQ(hyper_result->stats.plans_stored,
                ccp_result->stats.plans_stored);
    }
  }
}

TEST(DPhypTest, ComplexEdgeForcesGrouping) {
  // simple 0-1, 1-2 plus complex ({0,1},{3}): relation 3 can only join
  // after 0 and 1 are together.
  Hypergraph graph;
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(graph.AddRelation(100.0 * (i + 1)).ok());
  }
  ASSERT_TRUE(graph.AddSimpleEdge(0, 1, 0.1).ok());
  ASSERT_TRUE(graph.AddSimpleEdge(1, 2, 0.2).ok());
  ASSERT_TRUE(graph.AddEdge(NodeSet::Of({0, 1}), NodeSet::Of({3}), 0.05).ok());

  Result<OptimizationResult> result =
      DPhyp().Optimize(graph, CoutCostModel());
  ASSERT_TRUE(result.ok());
  // Every join with relation 3 on one side must have {0,1} complete on
  // the other.
  for (const JoinTreeNode& node : result->plan.nodes()) {
    if (node.IsLeaf()) continue;
    const NodeSet left = result->plan.nodes()[node.left].relations;
    const NodeSet right = result->plan.nodes()[node.right].relations;
    if (right == NodeSet::Of({3})) {
      EXPECT_TRUE(left.ContainsAll(NodeSet::Of({0, 1})));
    }
    if (left == NodeSet::Of({3})) {
      EXPECT_TRUE(right.ContainsAll(NodeSet::Of({0, 1})));
    }
  }
  const ReferenceResult reference = ReferenceHyperDP(graph, CoutCostModel());
  ASSERT_TRUE(reference.cost.has_value());
  EXPECT_NEAR(result->cost, *reference.cost, *reference.cost * 1e-9);
  EXPECT_EQ(result->stats.inner_counter, reference.unordered_pairs);
}

TEST(DPhypTest, UndecomposableHypergraphReported) {
  Hypergraph graph;
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(graph.AddRelation(10.0).ok());
  }
  ASSERT_TRUE(graph.AddEdge(NodeSet::Of({0}), NodeSet::Of({1, 2})).ok());
  ASSERT_TRUE(graph.AddEdge(NodeSet::Of({1}), NodeSet::Of({0, 2})).ok());
  const Result<OptimizationResult> result =
      DPhyp().Optimize(graph, CoutCostModel());
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST(DPhypTest, MatchesReferenceDPOnRandomHypergraphs) {
  const DPhyp dphyp;
  const CoutCostModel cout_model;
  const HashJoinCostModel hash_model(2.0, 1.0);
  int solvable = 0;
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    const Hypergraph graph = RandomHypergraph(7, 3, seed);
    for (const CostModel* model :
         {static_cast<const CostModel*>(&cout_model),
          static_cast<const CostModel*>(&hash_model)}) {
      const ReferenceResult reference = ReferenceHyperDP(graph, *model);
      Result<OptimizationResult> result = dphyp.Optimize(graph, *model);
      if (reference.cost.has_value()) {
        ++solvable;
        ASSERT_TRUE(result.ok()) << "seed " << seed;
        EXPECT_NEAR(result->cost / *reference.cost, 1.0, 1e-9)
            << "seed " << seed << " model " << model->name();
        EXPECT_EQ(result->stats.inner_counter, reference.unordered_pairs)
            << "seed " << seed;
      } else {
        EXPECT_FALSE(result.ok()) << "seed " << seed;
      }
    }
  }
  EXPECT_GT(solvable, 10);  // The corpus must actually exercise DPhyp.
}

TEST(DPhypTest, LargerMixedHypergraph) {
  const Hypergraph graph = RandomHypergraph(12, 4, 777);
  const ReferenceResult reference = ReferenceHyperDP(graph, CoutCostModel());
  Result<OptimizationResult> result =
      DPhyp().Optimize(graph, CoutCostModel());
  ASSERT_EQ(result.ok(), reference.cost.has_value());
  if (result.ok()) {
    EXPECT_NEAR(result->cost / *reference.cost, 1.0, 1e-9);
    EXPECT_EQ(result->stats.inner_counter, reference.unordered_pairs);
  }
}

}  // namespace
}  // namespace joinopt
