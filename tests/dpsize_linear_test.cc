#include "core/dpsize_linear.h"

#include <gtest/gtest.h>

#include "core/dpccp.h"
#include "cost/cost_model.h"
#include "dsl/parser.h"
#include "graph/generators.h"
#include "plan/plan_validator.h"

namespace joinopt {
namespace {

TEST(DPsizeLinearTest, AlwaysProducesLeftDeepTrees) {
  for (const QueryShape shape :
       {QueryShape::kChain, QueryShape::kCycle, QueryShape::kStar,
        QueryShape::kClique}) {
    Result<QueryGraph> graph = MakeShapeQuery(shape, 8);
    ASSERT_TRUE(graph.ok());
    Result<OptimizationResult> result =
        DPsizeLinear().Optimize(*graph, CoutCostModel());
    ASSERT_TRUE(result.ok()) << QueryShapeName(shape);
    EXPECT_TRUE(result->plan.IsLeftDeep()) << QueryShapeName(shape);
    EXPECT_TRUE(ValidatePlan(result->plan, *graph, CoutCostModel()).ok());
    EXPECT_EQ(result->plan.Height(), 7);  // Left-deep: height = n-1.
  }
}

TEST(DPsizeLinearTest, NeverBeatsBushyOptimum) {
  const DPsizeLinear linear;
  const DPccp bushy;
  for (const uint64_t seed : {1u, 2u, 3u, 4u, 5u, 6u}) {
    WorkloadConfig config;
    config.seed = seed;
    Result<QueryGraph> graph = MakeRandomConnectedQuery(8, 4, config);
    ASSERT_TRUE(graph.ok());
    Result<OptimizationResult> linear_result =
        linear.Optimize(*graph, CoutCostModel());
    Result<OptimizationResult> bushy_result =
        bushy.Optimize(*graph, CoutCostModel());
    ASSERT_TRUE(linear_result.ok());
    ASSERT_TRUE(bushy_result.ok());
    EXPECT_GE(linear_result->cost, bushy_result->cost * (1 - 1e-12));
  }
}

TEST(DPsizeLinearTest, OptimalAmongLeftDeepOnKnownCase) {
  // Chain a(1000) - b(10) - c(1000): both left-deep orders cost the same
  // 101000 under Cout (see dpsize_test); the linear DP must find it.
  Result<QueryGraph> graph = ParseQuerySpecToGraph(
      "rel a 1000\nrel b 10\nrel c 1000\njoin a b 0.1\njoin b c 0.1\n");
  ASSERT_TRUE(graph.ok());
  Result<OptimizationResult> result =
      DPsizeLinear().Optimize(*graph, CoutCostModel());
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->cost, 101000.0);
}

TEST(DPsizeLinearTest, StrictlyWorseWhenBushyWins) {
  Result<QueryGraph> graph = ParseQuerySpecToGraph(
      "rel a 10000\nrel b 10\nrel c 10\nrel d 10000\n"
      "join a b 0.01\njoin b c 0.5\njoin c d 0.01\n");
  ASSERT_TRUE(graph.ok());
  Result<OptimizationResult> linear =
      DPsizeLinear().Optimize(*graph, CoutCostModel());
  Result<OptimizationResult> bushy = DPccp().Optimize(*graph, CoutCostModel());
  ASSERT_TRUE(linear.ok());
  ASSERT_TRUE(bushy.ok());
  EXPECT_DOUBLE_EQ(bushy->cost, 502000.0);
  EXPECT_GT(linear->cost, bushy->cost);
}

TEST(DPsizeLinearTest, RejectsDisconnected) {
  Result<QueryGraph> graph = QueryGraph::WithRelations(3);
  ASSERT_TRUE(graph.ok());
  ASSERT_TRUE(graph->AddEdge(0, 1).ok());
  EXPECT_FALSE(DPsizeLinear().Optimize(*graph, CoutCostModel()).ok());
}

TEST(DPsizeLinearTest, SingleRelation) {
  Result<QueryGraph> graph = MakeChainQuery(1);
  ASSERT_TRUE(graph.ok());
  Result<OptimizationResult> result =
      DPsizeLinear().Optimize(*graph, CoutCostModel());
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->cost, 0.0);
}

}  // namespace
}  // namespace joinopt
