#include "core/dpsize.h"

#include <gtest/gtest.h>

#include "cost/cost_model.h"
#include "dsl/parser.h"
#include "graph/generators.h"
#include "plan/plan_printer.h"
#include "plan/plan_validator.h"

namespace joinopt {
namespace {

TEST(DPsizeTest, SingleRelation) {
  Result<QueryGraph> graph = MakeChainQuery(1);
  ASSERT_TRUE(graph.ok());
  const DPsize optimizer;
  Result<OptimizationResult> result =
      optimizer.Optimize(*graph, CoutCostModel());
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->cost, 0.0);
  EXPECT_EQ(result->plan.LeafCount(), 1);
  EXPECT_EQ(result->stats.inner_counter, 0u);
  EXPECT_EQ(result->stats.csg_cmp_pair_counter, 0u);
}

TEST(DPsizeTest, TwoRelations) {
  Result<QueryGraph> graph = ParseQuerySpecToGraph(
      "rel a 100\nrel b 50\njoin a b 0.1\n");
  ASSERT_TRUE(graph.ok());
  const DPsize optimizer;
  Result<OptimizationResult> result =
      optimizer.Optimize(*graph, CoutCostModel());
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->cost, 100.0 * 50.0 * 0.1);
  EXPECT_EQ(result->stats.inner_counter, 1u);
  EXPECT_EQ(result->stats.ono_lohman_counter, 1u);
  EXPECT_EQ(result->stats.create_join_tree_calls, 2u);  // Both orders.
}

TEST(DPsizeTest, RejectsEmptyGraph) {
  const QueryGraph graph;
  EXPECT_FALSE(DPsize().Optimize(graph, CoutCostModel()).ok());
}

TEST(DPsizeTest, RejectsDisconnectedGraph) {
  Result<QueryGraph> graph = QueryGraph::WithRelations(3);
  ASSERT_TRUE(graph.ok());
  ASSERT_TRUE(graph->AddEdge(0, 1).ok());
  const Result<OptimizationResult> result =
      DPsize().Optimize(*graph, CoutCostModel());
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST(DPsizeTest, KnownOptimalPlanOnHandCraftedChain) {
  // Chain a(1000) - b(10) - c(1000) with sel 0.1 both: the optimal Cout
  // bushy/linear plan joins the cheap middle pairs first; total cost of
  // ((a ⋈ b) ⋈ c) = 1000 + 100000... compute: |ab| = 1000*10*0.1 = 1000,
  // |abc| = 1000*1000*0.1 = 100000 -> cost 101000. (b ⋈ c) first is
  // symmetric. Cross-product-free alternatives are only those two.
  Result<QueryGraph> graph = ParseQuerySpecToGraph(
      "rel a 1000\nrel b 10\nrel c 1000\njoin a b 0.1\njoin b c 0.1\n");
  ASSERT_TRUE(graph.ok());
  const DPsize optimizer;
  Result<OptimizationResult> result =
      optimizer.Optimize(*graph, CoutCostModel());
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->cost, 101000.0);
  EXPECT_TRUE(ValidatePlan(result->plan, *graph, CoutCostModel()).ok());
}

TEST(DPsizeTest, PicksBushyWhenBushyWins) {
  // Star-ish chain where a bushy tree beats every left-deep tree under
  // Cout: chain of 4 with big ends and small middle.
  Result<QueryGraph> graph = ParseQuerySpecToGraph(
      "rel a 10000\nrel b 10\nrel c 10\nrel d 10000\n"
      "join a b 0.01\njoin b c 0.5\njoin c d 0.01\n");
  ASSERT_TRUE(graph.ok());
  const DPsize optimizer;
  Result<OptimizationResult> result =
      optimizer.Optimize(*graph, CoutCostModel());
  ASSERT_TRUE(result.ok());
  // (a ⋈ b) = 1000, (c ⋈ d) = 1000, join = 1000*1000*0.5 = 500000:
  // total 502000. Left-deep alternatives are more expensive (e.g.
  // ((a⋈b)⋈c)⋈d = 1000 + 5000 + 500000 = 506000).
  EXPECT_DOUBLE_EQ(result->cost, 502000.0);
  EXPECT_FALSE(result->plan.IsLeftDeep());
}

TEST(DPsizeTest, AsymmetricCostModelPicksCheaperOrder) {
  // With a hash join whose build side is expensive, the small relation
  // must end up on the left (build) side.
  Result<QueryGraph> graph = ParseQuerySpecToGraph(
      "rel big 100000\nrel small 10\njoin big small 0.001\n");
  ASSERT_TRUE(graph.ok());
  const HashJoinCostModel model(10.0, 1.0);
  Result<OptimizationResult> result = DPsize().Optimize(*graph, model);
  ASSERT_TRUE(result.ok());
  const JoinTreeNode& root = result->plan.root();
  EXPECT_EQ(result->plan.nodes()[root.left].relations, NodeSet::Of({1}))
      << PlanToExpression(result->plan, *graph);
  EXPECT_TRUE(ValidatePlan(result->plan, *graph, model).ok());
}

TEST(DPsizeTest, EqualSizeOptimizationDoesNotChangeResult) {
  const DPsize optimized(/*use_equal_size_optimization=*/true);
  const DPsize unoptimized(/*use_equal_size_optimization=*/false);
  for (const uint64_t seed : {1u, 2u, 3u}) {
    WorkloadConfig config;
    config.seed = seed;
    Result<QueryGraph> graph = MakeRandomConnectedQuery(8, 3, config);
    ASSERT_TRUE(graph.ok());
    Result<OptimizationResult> a = optimized.Optimize(*graph, CoutCostModel());
    Result<OptimizationResult> b =
        unoptimized.Optimize(*graph, CoutCostModel());
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_DOUBLE_EQ(a->cost, b->cost);
    // The unoptimized variant enumerates strictly more pairs whenever an
    // equal-size split exists.
    EXPECT_GE(b->stats.inner_counter, a->stats.inner_counter);
  }
}

TEST(DPsizeTest, StatsAreInternallyConsistent) {
  Result<QueryGraph> graph = MakeStarQuery(6);
  ASSERT_TRUE(graph.ok());
  Result<OptimizationResult> result =
      DPsize().Optimize(*graph, CoutCostModel());
  ASSERT_TRUE(result.ok());
  const OptimizerStats& stats = result->stats;
  EXPECT_EQ(stats.ono_lohman_counter * 2, stats.csg_cmp_pair_counter);
  EXPECT_EQ(stats.create_join_tree_calls, stats.csg_cmp_pair_counter);
  EXPECT_GE(stats.inner_counter, stats.ono_lohman_counter);
  // Plans exist for exactly the connected sets: #csg(star, 6) =
  // 2^5 + 6 - 1 = 37.
  EXPECT_EQ(stats.plans_stored, 37u);
  EXPECT_GE(stats.elapsed_seconds, 0.0);
}

TEST(DPsizeTest, PlanCoversAllRelationsOnEveryShape) {
  for (const QueryShape shape :
       {QueryShape::kChain, QueryShape::kCycle, QueryShape::kStar,
        QueryShape::kClique}) {
    Result<QueryGraph> graph = MakeShapeQuery(shape, 7);
    ASSERT_TRUE(graph.ok());
    Result<OptimizationResult> result =
        DPsize().Optimize(*graph, CoutCostModel());
    ASSERT_TRUE(result.ok()) << QueryShapeName(shape);
    EXPECT_EQ(result->plan.relations(), graph->AllRelations());
    EXPECT_TRUE(ValidatePlan(result->plan, *graph, CoutCostModel()).ok())
        << QueryShapeName(shape);
  }
}

}  // namespace
}  // namespace joinopt
