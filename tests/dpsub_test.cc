#include "core/dpsub.h"

#include <gtest/gtest.h>

#include "cost/cost_model.h"
#include "dsl/parser.h"
#include "graph/generators.h"
#include "plan/plan_validator.h"

namespace joinopt {
namespace {

TEST(DPsubTest, SingleRelation) {
  Result<QueryGraph> graph = MakeChainQuery(1);
  ASSERT_TRUE(graph.ok());
  Result<OptimizationResult> result =
      DPsub().Optimize(*graph, CoutCostModel());
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->cost, 0.0);
  EXPECT_EQ(result->stats.inner_counter, 0u);
}

TEST(DPsubTest, TwoRelations) {
  Result<QueryGraph> graph = ParseQuerySpecToGraph(
      "rel a 100\nrel b 50\njoin a b 0.1\n");
  ASSERT_TRUE(graph.ok());
  Result<OptimizationResult> result =
      DPsub().Optimize(*graph, CoutCostModel());
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->cost, 500.0);
  // Figure 3: chain n=2 -> DPsub inner counter 2 (both splits of {a, b}).
  EXPECT_EQ(result->stats.inner_counter, 2u);
  EXPECT_EQ(result->stats.csg_cmp_pair_counter, 2u);
  EXPECT_EQ(result->stats.ono_lohman_counter, 1u);
}

TEST(DPsubTest, RejectsEmptyAndDisconnected) {
  EXPECT_FALSE(DPsub().Optimize(QueryGraph(), CoutCostModel()).ok());
  Result<QueryGraph> graph = QueryGraph::WithRelations(4);
  ASSERT_TRUE(graph.ok());
  ASSERT_TRUE(graph->AddEdge(0, 1).ok());
  ASSERT_TRUE(graph->AddEdge(2, 3).ok());
  EXPECT_FALSE(DPsub().Optimize(*graph, CoutCostModel()).ok());
}

TEST(DPsubTest, RefusesAbsurdlyLargeN) {
  Result<QueryGraph> graph = MakeChainQuery(41);
  ASSERT_TRUE(graph.ok());
  const Result<OptimizationResult> result =
      DPsub().Optimize(*graph, CoutCostModel());
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(DPsubTest, MatchesDPsizeCostEverywhere) {
  const DPsub dpsub;
  for (const QueryShape shape :
       {QueryShape::kChain, QueryShape::kCycle, QueryShape::kStar,
        QueryShape::kClique}) {
    Result<QueryGraph> graph = MakeShapeQuery(shape, 8);
    ASSERT_TRUE(graph.ok());
    Result<OptimizationResult> result = dpsub.Optimize(*graph, CoutCostModel());
    ASSERT_TRUE(result.ok()) << QueryShapeName(shape);
    EXPECT_TRUE(ValidatePlan(result->plan, *graph, CoutCostModel()).ok());
  }
}

TEST(DPsubTest, ConnectivityTestVariantsAgree) {
  const DPsub with_table(/*use_table_connectivity_test=*/true);
  const DPsub with_bfs(/*use_table_connectivity_test=*/false);
  for (const uint64_t seed : {5u, 6u, 7u}) {
    WorkloadConfig config;
    config.seed = seed;
    Result<QueryGraph> graph = MakeRandomConnectedQuery(9, 6, config);
    ASSERT_TRUE(graph.ok());
    Result<OptimizationResult> a = with_table.Optimize(*graph, CoutCostModel());
    Result<OptimizationResult> b = with_bfs.Optimize(*graph, CoutCostModel());
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_DOUBLE_EQ(a->cost, b->cost);
    EXPECT_EQ(a->stats.inner_counter, b->stats.inner_counter);
    EXPECT_EQ(a->stats.csg_cmp_pair_counter, b->stats.csg_cmp_pair_counter);
  }
}

TEST(DPsubTest, AsymmetricCostModelHandledByNaturalBothOrders) {
  Result<QueryGraph> graph = ParseQuerySpecToGraph(
      "rel big 100000\nrel mid 1000\nrel small 10\n"
      "join big mid 0.001\njoin mid small 0.01\n");
  ASSERT_TRUE(graph.ok());
  const HashJoinCostModel model(10.0, 1.0);
  Result<OptimizationResult> result = DPsub().Optimize(*graph, model);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(ValidatePlan(result->plan, *graph, model).ok());
  // One CreateJoinTree per surviving ordered pair — never doubled.
  EXPECT_EQ(result->stats.create_join_tree_calls,
            result->stats.csg_cmp_pair_counter);
}

TEST(DPsubTest, PlansStoredEqualsCsgCount) {
  Result<QueryGraph> graph = MakeCycleQuery(7);
  ASSERT_TRUE(graph.ok());
  Result<OptimizationResult> result =
      DPsub().Optimize(*graph, CoutCostModel());
  ASSERT_TRUE(result.ok());
  // #csg(cycle, 7) = 49 - 7 + 1 = 43.
  EXPECT_EQ(result->stats.plans_stored, 43u);
}

}  // namespace
}  // namespace joinopt
