#include <string>

#include <gtest/gtest.h>

#include "dsl/parser.h"
#include "dsl/writer.h"
#include "graph/generators.h"
#include "util/random.h"

namespace joinopt {
namespace {

/// Deterministic fuzzing of the query-spec parser: any input must come
/// back as a value or an error Status — never crash, hang, or produce a
/// graph that violates its own invariants.

std::string RandomTokenSoup(Random& rng, int tokens) {
  static constexpr const char* kTokens[] = {
      "rel",  "join", "a",    "b",   "c",    "10",    "-5",  "0.5",
      "1e9",  "nan",  "inf",  "#",   "\n",   "\t",    " ",   "rel",
      "join", "x y",  "0",    "1.0", "2.5e", "..",    "--",  "join join",
      "\r\n", "z",    "1e-9", "64",  "()",   "\"q\"",
  };
  std::string out;
  for (int i = 0; i < tokens; ++i) {
    out += kTokens[rng.Uniform(sizeof(kTokens) / sizeof(kTokens[0]))];
    out += rng.Bernoulli(0.3) ? "\n" : " ";
  }
  return out;
}

TEST(DslFuzzTest, TokenSoupNeverCrashes) {
  Random rng(2006);
  int parsed_ok = 0;
  for (int round = 0; round < 2000; ++round) {
    std::string input = RandomTokenSoup(rng, 1 + rng.Uniform(30));
    if (rng.Bernoulli(0.5)) {
      // Half the inputs start from a valid fragment, so a useful share
      // reaches the later parser states (duplicate checks, join
      // resolution) instead of dying on the first line.
      input = "rel t0 10\nrel t1 20\njoin t0 t1 0.5\n" + input;
    }
    const Result<Catalog> result = ParseQuerySpec(input);
    if (result.ok()) {
      ++parsed_ok;
      // Anything that parses must lower to a self-consistent graph or
      // fail cleanly.
      const Result<QueryGraph> graph = result->BuildQueryGraph();
      if (graph.ok()) {
        EXPECT_GE(graph->relation_count(), 1);
        for (const JoinEdge& edge : graph->edges()) {
          EXPECT_GT(edge.selectivity, 0.0);
          EXPECT_LE(edge.selectivity, 1.0);
          EXPECT_NE(edge.left, edge.right);
        }
      }
    }
  }
  // The soup contains enough valid fragments that some inputs parse;
  // otherwise the fuzzer is exercising nothing.
  EXPECT_GT(parsed_ok, 0);
}

TEST(DslFuzzTest, MutatedValidSpecsNeverCrash) {
  Random rng(7);
  WorkloadConfig config;
  Result<QueryGraph> graph = MakeRandomConnectedQuery(8, 4, config);
  ASSERT_TRUE(graph.ok());
  const std::string valid = WriteQuerySpec(*graph);
  for (int round = 0; round < 2000; ++round) {
    std::string mutated = valid;
    const int mutations = 1 + static_cast<int>(rng.Uniform(4));
    for (int m = 0; m < mutations; ++m) {
      const size_t pos = rng.Uniform(mutated.size());
      switch (rng.Uniform(3)) {
        case 0:  // Flip a character.
          mutated[pos] = static_cast<char>(32 + rng.Uniform(95));
          break;
        case 1:  // Delete a character.
          mutated.erase(pos, 1);
          break;
        default:  // Duplicate a chunk.
          mutated.insert(pos, mutated.substr(pos, rng.Uniform(8)));
          break;
      }
      if (mutated.empty()) {
        break;
      }
    }
    const Result<Catalog> result = ParseQuerySpec(mutated);
    (void)result;  // ok or clean error; the point is no crash/UB.
  }
}

TEST(DslFuzzTest, BinaryGarbageNeverCrashes) {
  Random rng(99);
  for (int round = 0; round < 500; ++round) {
    std::string garbage;
    const int length = static_cast<int>(rng.Uniform(200));
    for (int i = 0; i < length; ++i) {
      garbage += static_cast<char>(rng.Uniform(256));
    }
    const Result<Catalog> result = ParseQuerySpec(garbage);
    (void)result;
  }
}

}  // namespace
}  // namespace joinopt
