#include "dsl/parser.h"

#include <gtest/gtest.h>

#include "core/dpccp.h"
#include "cost/cost_model.h"
#include "graph/connectivity.h"

namespace joinopt {
namespace {

TEST(DslParserTest, ParsesMinimalSpec) {
  Result<QueryGraph> graph = ParseQuerySpecToGraph(
      "rel a 100\n"
      "rel b 200\n"
      "join a b 0.25\n");
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph->relation_count(), 2);
  EXPECT_EQ(graph->edge_count(), 1);
  EXPECT_EQ(graph->name(0), "a");
  EXPECT_DOUBLE_EQ(graph->cardinality(1), 200.0);
  EXPECT_DOUBLE_EQ(graph->edges()[0].selectivity, 0.25);
}

TEST(DslParserTest, SkipsCommentsAndBlankLines) {
  Result<QueryGraph> graph = ParseQuerySpecToGraph(
      "# a comment line\n"
      "\n"
      "rel a 100   # trailing comment\n"
      "   \t  \n"
      "rel b 50\n"
      "join a b 0.5  # another\n");
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph->relation_count(), 2);
  EXPECT_EQ(graph->edge_count(), 1);
}

TEST(DslParserTest, HandlesCarriageReturnsAndMissingTrailingNewline) {
  Result<QueryGraph> graph =
      ParseQuerySpecToGraph("rel a 10\r\nrel b 20\r\njoin a b 0.1");
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph->relation_count(), 2);
}

TEST(DslParserTest, ScientificNotationCardinalities) {
  Result<QueryGraph> graph =
      ParseQuerySpecToGraph("rel fact 1.5e6\nrel dim 1e2\njoin fact dim 1e-4\n");
  ASSERT_TRUE(graph.ok());
  EXPECT_DOUBLE_EQ(graph->cardinality(0), 1.5e6);
  EXPECT_DOUBLE_EQ(graph->edges()[0].selectivity, 1e-4);
}

TEST(DslParserTest, ErrorsCarryLineNumbers) {
  const Result<Catalog> bad_token = ParseQuerySpec("rel a 10\nrel b ten\n");
  ASSERT_FALSE(bad_token.ok());
  EXPECT_NE(bad_token.status().message().find("line 2"), std::string::npos);

  const Result<Catalog> bad_directive = ParseQuerySpec("table a 10\n");
  ASSERT_FALSE(bad_directive.ok());
  EXPECT_NE(bad_directive.status().message().find("line 1"), std::string::npos);
  EXPECT_NE(bad_directive.status().message().find("table"), std::string::npos);

  const Result<Catalog> bad_arity = ParseQuerySpec("rel a\n");
  ASSERT_FALSE(bad_arity.ok());
  EXPECT_NE(bad_arity.status().message().find("line 1"), std::string::npos);
}

TEST(DslParserTest, RejectsUnknownRelationInJoin) {
  const Result<Catalog> result =
      ParseQuerySpec("rel a 10\njoin a ghost 0.5\n");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("ghost"), std::string::npos);
}

TEST(DslParserTest, RejectsEmptySpec) {
  EXPECT_FALSE(ParseQuerySpec("").ok());
  EXPECT_FALSE(ParseQuerySpec("# only comments\n\n").ok());
}

TEST(DslParserTest, RejectsDuplicateRelation) {
  EXPECT_FALSE(ParseQuerySpec("rel a 10\nrel a 20\n").ok());
}

TEST(DslParserTest, RejectsBadSelectivity) {
  EXPECT_FALSE(ParseQuerySpec("rel a 10\nrel b 10\njoin a b 0\n").ok());
  EXPECT_FALSE(ParseQuerySpec("rel a 10\nrel b 10\njoin a b 1.5\n").ok());
}

TEST(DslParserTest, ParsedGraphIsOptimizable) {
  Result<QueryGraph> graph = ParseQuerySpecToGraph(
      "# TPC-H-ish 4-relation join\n"
      "rel lineitem 6000000\n"
      "rel orders 1500000\n"
      "rel customer 150000\n"
      "rel nation 25\n"
      "join lineitem orders 1.6667e-7\n"
      "join orders customer 6.6667e-6\n"
      "join customer nation 0.04\n");
  ASSERT_TRUE(graph.ok());
  ASSERT_TRUE(IsConnectedGraph(*graph));
  Result<OptimizationResult> result =
      DPccp().Optimize(*graph, CoutCostModel());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->plan.LeafCount(), 4);
  EXPECT_GT(result->cost, 0.0);
}

}  // namespace
}  // namespace joinopt
