#include "dsl/writer.h"

#include <gtest/gtest.h>

#include <iterator>

#include "dsl/parser.h"
#include "graph/generators.h"
#include "util/random.h"

namespace joinopt {
namespace {

void ExpectRoundTrip(const QueryGraph& graph) {
  const std::string spec = WriteQuerySpec(graph);
  Result<QueryGraph> parsed = ParseQuerySpecToGraph(spec);
  ASSERT_TRUE(parsed.ok()) << spec << "\n" << parsed.status().ToString();
  ASSERT_EQ(parsed->relation_count(), graph.relation_count());
  ASSERT_EQ(parsed->edge_count(), graph.edge_count());
  for (int i = 0; i < graph.relation_count(); ++i) {
    EXPECT_EQ(parsed->name(i), graph.name(i));
    EXPECT_DOUBLE_EQ(parsed->cardinality(i), graph.cardinality(i));
  }
  for (int e = 0; e < graph.edge_count(); ++e) {
    EXPECT_EQ(parsed->edges()[e].left, graph.edges()[e].left);
    EXPECT_EQ(parsed->edges()[e].right, graph.edges()[e].right);
    EXPECT_DOUBLE_EQ(parsed->edges()[e].selectivity,
                     graph.edges()[e].selectivity);
  }
}

TEST(DslWriterTest, SimpleSpec) {
  Result<QueryGraph> graph = ParseQuerySpecToGraph(
      "rel a 100\nrel b 50\njoin a b 0.25\n");
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(WriteQuerySpec(*graph), "rel a 100\nrel b 50\njoin a b 0.25\n");
}

TEST(DslWriterTest, RoundTripsGeneratedShapes) {
  for (const QueryShape shape :
       {QueryShape::kChain, QueryShape::kCycle, QueryShape::kStar,
        QueryShape::kClique}) {
    Result<QueryGraph> graph = MakeShapeQuery(shape, 7);
    ASSERT_TRUE(graph.ok());
    ExpectRoundTrip(*graph);
  }
}

TEST(DslWriterTest, RoundTripsAwkwardDoubles) {
  // Log-uniform statistics produce doubles with no short decimal form;
  // std::to_chars shortest round-trip must preserve them bit for bit.
  for (const uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    WorkloadConfig config;
    config.seed = seed;
    config.min_selectivity = 1e-9;
    Result<QueryGraph> graph = MakeRandomConnectedQuery(10, 8, config);
    ASSERT_TRUE(graph.ok());
    ExpectRoundTrip(*graph);
  }
}

TEST(DslWriterTest, RoundTripsExtremeValueSweep) {
  // The flight recorder leans on WriteQuerySpec/FormatDoubleShortest to
  // persist whatever statistics a failing run had — including values at
  // the edges of the double range. Sweep randomized combinations of
  // denormals, near-overflow magnitudes, and awkward fractions.
  const double kCards[] = {5e-324,  // Smallest positive denormal.
                           2.2250738585072014e-308,  // DBL_MIN.
                           1e300, 1.7976931348623157e308,  // DBL_MAX.
                           0.1 + 0.2, 3.0, 1e18};
  const double kSels[] = {5e-324, 1e-300, 1e-9, 0.30000000000000004, 1.0};
  Random rng(0xfeedface);
  for (int trial = 0; trial < 50; ++trial) {
    QueryGraph graph;
    const int n = 2 + static_cast<int>(rng.Uniform(5));
    for (int i = 0; i < n; ++i) {
      ASSERT_TRUE(
          graph.AddRelation(kCards[rng.Uniform(std::size(kCards))]).ok());
    }
    for (int i = 1; i < n; ++i) {
      ASSERT_TRUE(
          graph.AddEdge(i - 1, i, kSels[rng.Uniform(std::size(kSels))]).ok());
    }
    ExpectRoundTrip(graph);
  }
}

TEST(DslWriterTest, SingleRelationNoEdges) {
  Result<QueryGraph> graph = ParseQuerySpecToGraph("rel solo 7\n");
  ASSERT_TRUE(graph.ok());
  ExpectRoundTrip(*graph);
}

}  // namespace
}  // namespace joinopt
