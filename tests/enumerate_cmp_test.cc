#include "enumerate/cmp.h"

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "analytics/brute_force.h"
#include "analytics/counts.h"
#include "graph/bfs_numbering.h"
#include "graph/connectivity.h"
#include "graph/generators.h"

namespace joinopt {
namespace {

/// Normalizes a pair so the component with the smaller minimum comes
/// first (the convention of the brute-force oracle).
std::pair<NodeSet, NodeSet> Normalize(NodeSet a, NodeSet b) {
  return a.Min() < b.Min() ? std::make_pair(a, b) : std::make_pair(b, a);
}

/// Asserts Theorem 2 on `graph` (must be BFS-numbered): the pair
/// enumeration yields exactly the csg-cmp-pairs, each once, in an order
/// where both components' plans are already derivable.
void ExpectCorrectPairEnumeration(const QueryGraph& graph) {
  const std::vector<std::pair<NodeSet, NodeSet>> emitted =
      CollectCsgCmpPairs(graph);

  // Each emitted pair satisfies the csg-cmp-pair definition.
  for (const auto& [s1, s2] : emitted) {
    EXPECT_TRUE(IsConnectedSet(graph, s1)) << s1.ToString();
    EXPECT_TRUE(IsConnectedSet(graph, s2)) << s2.ToString();
    EXPECT_FALSE(s1.Intersects(s2));
    EXPECT_TRUE(graph.AreConnected(s1, s2));
  }

  // Exactly the brute-force pairs (completeness + uniqueness, including
  // commutative-duplicate suppression).
  std::vector<std::pair<uint64_t, uint64_t>> emitted_norm;
  for (const auto& [s1, s2] : emitted) {
    const auto [a, b] = Normalize(s1, s2);
    emitted_norm.emplace_back(a.mask(), b.mask());
  }
  std::sort(emitted_norm.begin(), emitted_norm.end());
  EXPECT_TRUE(std::adjacent_find(emitted_norm.begin(), emitted_norm.end()) ==
              emitted_norm.end())
      << "a pair (or its commuted twin) was emitted twice";

  std::vector<std::pair<uint64_t, uint64_t>> expected_norm;
  for (const auto& [s1, s2] : BruteForceCsgCmpPairs(graph)) {
    expected_norm.emplace_back(s1.mask(), s2.mask());
  }
  std::sort(expected_norm.begin(), expected_norm.end());
  EXPECT_EQ(emitted_norm, expected_norm);

  // DP-validity: when (s1, s2) is emitted, every connected proper subset
  // split of s1 and of s2 must already have been emitted, i.e. the union
  // sets "completed" so far suffice to have built plans. We check the
  // operational form: maintain the set of relation-sets with known plans
  // (singletons seeded) and require s1 and s2 to be known, then mark
  // s1 ∪ s2 known.
  std::set<uint64_t> known;
  for (int i = 0; i < graph.relation_count(); ++i) {
    known.insert(NodeSet::Singleton(i).mask());
  }
  for (const auto& [s1, s2] : emitted) {
    EXPECT_TRUE(known.contains(s1.mask()))
        << "no plan yet for s1 = " << s1.ToString();
    EXPECT_TRUE(known.contains(s2.mask()))
        << "no plan yet for s2 = " << s2.ToString();
    known.insert((s1 | s2).mask());
  }
}

TEST(EnumerateCmpTest, TriangleComplementOfZeroIncludesBothLeaves) {
  // Regression for the paper's X ∪ N over-pruning (see cmp.h): on the
  // triangle, S1 = {0} must yield S2 ∈ {{1}, {2}, {1, 2}}.
  Result<QueryGraph> graph = MakeCliqueQuery(3);
  ASSERT_TRUE(graph.ok());
  std::vector<NodeSet> complements;
  EnumerateCmp(*graph, NodeSet::Of({0}),
               [&complements](NodeSet s) { complements.push_back(s); });
  std::sort(complements.begin(), complements.end(),
            [](NodeSet a, NodeSet b) { return a.mask() < b.mask(); });
  EXPECT_EQ(complements,
            (std::vector<NodeSet>{NodeSet::Of({1}), NodeSet::Of({2}),
                                  NodeSet::Of({1, 2})}));
}

TEST(EnumerateCmpTest, PaperWorkedExample) {
  // Section 3.3's example on the Figure 6 graph: S1 = {1} yields {4},
  // then {2,4}, {3,4}, {2,3,4}.
  Result<QueryGraph> graph = QueryGraph::WithRelations(5);
  ASSERT_TRUE(graph.ok());
  ASSERT_TRUE(graph->AddEdge(0, 1).ok());
  ASSERT_TRUE(graph->AddEdge(0, 2).ok());
  ASSERT_TRUE(graph->AddEdge(0, 3).ok());
  ASSERT_TRUE(graph->AddEdge(1, 4).ok());
  ASSERT_TRUE(graph->AddEdge(2, 3).ok());
  ASSERT_TRUE(graph->AddEdge(2, 4).ok());
  ASSERT_TRUE(graph->AddEdge(3, 4).ok());

  std::vector<NodeSet> complements;
  EnumerateCmp(*graph, NodeSet::Of({1}),
               [&complements](NodeSet s) { complements.push_back(s); });
  ASSERT_EQ(complements.size(), 4u);
  EXPECT_EQ(complements[0], NodeSet::Of({4}));
  // The remaining three (in EnumerateCsgRec order).
  const std::set<uint64_t> rest = {complements[1].mask(), complements[2].mask(),
                                   complements[3].mask()};
  EXPECT_TRUE(rest.contains(NodeSet::Of({2, 4}).mask()));
  EXPECT_TRUE(rest.contains(NodeSet::Of({3, 4}).mask()));
  EXPECT_TRUE(rest.contains(NodeSet::Of({2, 3, 4}).mask()));
}

TEST(EnumerateCmpTest, ComplementsRespectTheOrdering) {
  // For any S1, every emitted S2 has min(S2) > min(S1).
  Result<QueryGraph> graph = MakeCycleQuery(6);
  ASSERT_TRUE(graph.ok());
  EnumerateCsgCmpPairs(*graph, [](NodeSet s1, NodeSet s2) {
    EXPECT_GT(s2.Min(), s1.Min())
        << s1.ToString() << " vs " << s2.ToString();
  });
}

struct ShapeCase {
  QueryShape shape;
  int n;
};

class EnumerateCmpShapeTest : public ::testing::TestWithParam<ShapeCase> {};

TEST_P(EnumerateCmpShapeTest, MatchesOracleAndClosedForm) {
  const ShapeCase param = GetParam();
  Result<QueryGraph> graph = MakeShapeQuery(param.shape, param.n);
  ASSERT_TRUE(graph.ok());
  ExpectCorrectPairEnumeration(*graph);
  EXPECT_EQ(CollectCsgCmpPairs(*graph).size(),
            CcpCountUnordered(param.shape, param.n));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, EnumerateCmpShapeTest,
    ::testing::Values(ShapeCase{QueryShape::kChain, 2},
                      ShapeCase{QueryShape::kChain, 6},
                      ShapeCase{QueryShape::kChain, 11},
                      ShapeCase{QueryShape::kCycle, 3},
                      ShapeCase{QueryShape::kCycle, 7},
                      ShapeCase{QueryShape::kCycle, 11},
                      ShapeCase{QueryShape::kStar, 2},
                      ShapeCase{QueryShape::kStar, 6},
                      ShapeCase{QueryShape::kStar, 11},
                      ShapeCase{QueryShape::kClique, 3},
                      ShapeCase{QueryShape::kClique, 6},
                      ShapeCase{QueryShape::kClique, 9}),
    [](const ::testing::TestParamInfo<ShapeCase>& info) {
      return std::string(QueryShapeName(info.param.shape)) +
             std::to_string(info.param.n);
    });

TEST(EnumerateCmpTest, RandomGraphsAfterBfsRelabeling) {
  for (const uint64_t seed : {21u, 22u, 23u, 24u, 25u}) {
    WorkloadConfig config;
    config.seed = seed;
    Result<QueryGraph> graph = MakeRandomConnectedQuery(8, 5, config);
    ASSERT_TRUE(graph.ok());
    Result<BfsNumbering> numbering = ComputeBfsNumbering(*graph, 0);
    ASSERT_TRUE(numbering.ok());
    const QueryGraph relabeled = RelabelGraph(*graph, *numbering);
    ExpectCorrectPairEnumeration(relabeled);
  }
}

TEST(EnumerateCmpTest, GridGraph) {
  Result<QueryGraph> graph = MakeGridQuery(2, 4);
  ASSERT_TRUE(graph.ok());
  Result<BfsNumbering> numbering = ComputeBfsNumbering(*graph, 0);
  ASSERT_TRUE(numbering.ok());
  const QueryGraph relabeled = RelabelGraph(*graph, *numbering);
  ExpectCorrectPairEnumeration(relabeled);
}

}  // namespace
}  // namespace joinopt
